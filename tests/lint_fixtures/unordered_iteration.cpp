// Golden fixture: unordered-iteration — a range-for over an unordered map.
// The visit order depends on the hash seed and load factor, so any
// reduction or serialization fed from it is not reproducible.
#include <string>
#include <unordered_map>

double total_weight(const std::unordered_map<int, double>& weights) {
  double total = 0.0;
  for (const auto& kv : weights) {
    total = total + kv.second;
  }
  return total;
}
