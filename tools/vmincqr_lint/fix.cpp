#include "fix.hpp"

#include <cstddef>
#include <vector>

#include "token.hpp"

namespace vmincqr::lint {
namespace {

bool is_header_path(const std::string& path) {
  return path.size() >= 4 && path.compare(path.size() - 4, 4, ".hpp") == 0;
}

/// Replaces every `std::endl` / `endl` token with `"\n"`. Works on byte
/// offsets from the token stream, so occurrences in comments and string
/// literals are untouched.
std::string fix_no_endl(const std::string& content) {
  const Unit unit = tokenize(content);
  struct Span {
    std::size_t begin;
    std::size_t end;  // half-open byte range to replace
  };
  std::vector<Span> spans;
  const auto& t = unit.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent || t[i].text != "endl") continue;
    if (is_allowed(unit, "no-endl", t[i].line)) continue;
    std::size_t begin = t[i].offset;
    // Swallow a directly preceding `std::` qualifier.
    if (i >= 2 && t[i - 1].text == "::" && t[i - 2].text == "std") {
      begin = t[i - 2].offset;
    }
    spans.push_back({begin, t[i].offset + 4});
  }
  std::string out;
  out.reserve(content.size());
  std::size_t pos = 0;
  for (const Span& span : spans) {
    out += content.substr(pos, span.begin - pos);
    out += "\"\\n\"";
    pos = span.end;
  }
  out += content.substr(pos);
  return out;
}

/// Inserts `#pragma once` after the leading comment block of a header that
/// has none anywhere. A header whose pragma merely sits in the wrong place
/// is left for a human — moving directives around blind is not "safe".
std::string fix_pragma_once(const std::string& content) {
  const Unit unit = tokenize(content);
  for (const auto& [line, text] : unit.directives) {
    (void)line;
    if (text == "#pragma once") return content;
  }
  if (!unit.directives.empty() && is_allowed(unit, "pragma-once",
                                             unit.directives.front().first)) {
    return content;
  }
  // Skip the leading run of full-line comments and blank lines.
  std::size_t pos = 0;
  while (pos < content.size()) {
    // Blank line.
    std::size_t probe = pos;
    while (probe < content.size() &&
           (content[probe] == ' ' || content[probe] == '\t')) {
      ++probe;
    }
    if (probe < content.size() && content[probe] == '\n') {
      pos = probe + 1;
      continue;
    }
    // Line comment.
    if (probe + 1 < content.size() && content[probe] == '/' &&
        content[probe + 1] == '/') {
      const auto nl = content.find('\n', probe);
      if (nl == std::string::npos) break;
      pos = nl + 1;
      continue;
    }
    // Block comment.
    if (probe + 1 < content.size() && content[probe] == '/' &&
        content[probe + 1] == '*') {
      const auto close = content.find("*/", probe + 2);
      if (close == std::string::npos) break;
      const auto nl = content.find('\n', close + 2);
      pos = nl == std::string::npos ? content.size() : nl + 1;
      continue;
    }
    break;
  }
  return content.substr(0, pos) + "#pragma once\n" + content.substr(pos);
}

}  // namespace

std::string apply_fixes(const std::string& path, const std::string& content) {
  std::string out = fix_no_endl(content);
  if (is_header_path(path)) out = fix_pragma_once(out);
  return out;
}

}  // namespace vmincqr::lint
