// Cross-model property suites (TEST_P):
//  * every quantile-capable model's pinball predictions order correctly in q
//    and bracket roughly the right data fraction;
//  * loss derivatives agree with finite differences;
//  * clone_config reproduces identical fits for every model kind;
//  * LabelScaler-equivariance: shifting labels shifts predictions.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "models/factory.hpp"
#include "rng/rng.hpp"
#include "stats/descriptive.hpp"
#include "stats/metrics.hpp"

namespace vmincqr::models {
namespace {

struct Problem {
  Matrix x;
  Vector y;
};

Problem make_problem(std::size_t n, std::uint64_t seed) {
  rng::Rng rng(seed);
  Problem p{Matrix(n, 3), Vector(n)};
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t c = 0; c < 3; ++c) p.x(i, c) = rng.normal();
    p.y[i] = p.x(i, 0) - 0.5 * p.x(i, 1) + rng.normal(0.0, 0.4);
  }
  return p;
}

// ---------------------------------------------------------------------------
class QuantileOrdering
    : public ::testing::TestWithParam<std::tuple<ModelKind, double>> {};

TEST_P(QuantileOrdering, PredictionsMonotoneInQuantileLevel) {
  const ModelKind kind = std::get<0>(GetParam());
  const double alpha = std::get<1>(GetParam());
  const auto p = make_problem(250, 11);

  auto lo = make_point_regressor(kind, Loss::pinball(core::QuantileLevel{alpha / 2.0}));
  auto mid = make_point_regressor(kind, Loss::pinball(core::QuantileLevel{0.5}));
  auto hi = make_point_regressor(kind, Loss::pinball(core::QuantileLevel{1.0 - alpha / 2.0}));
  lo->fit(p.x, p.y);
  mid->fit(p.x, p.y);
  hi->fit(p.x, p.y);

  const Vector lo_pred = lo->predict(p.x);
  const Vector mid_pred = mid->predict(p.x);
  const Vector hi_pred = hi->predict(p.x);
  // Means must order strictly; per-sample ordering can have local wiggles.
  EXPECT_LT(stats::mean(lo_pred), stats::mean(mid_pred));
  EXPECT_LT(stats::mean(mid_pred), stats::mean(hi_pred));

  // The (lo, hi) band must capture more than the (0.35, 0.65) band.
  auto nlo = make_point_regressor(kind, Loss::pinball(core::QuantileLevel{0.35}));
  auto nhi = make_point_regressor(kind, Loss::pinball(core::QuantileLevel{0.65}));
  nlo->fit(p.x, p.y);
  nhi->fit(p.x, p.y);
  const double wide_cov =
      stats::interval_coverage(p.y, lo_pred, hi_pred);
  const double narrow_cov =
      stats::interval_coverage(p.y, nlo->predict(p.x), nhi->predict(p.x));
  EXPECT_GT(wide_cov, narrow_cov);
}

INSTANTIATE_TEST_SUITE_P(
    ModelsByAlpha, QuantileOrdering,
    ::testing::Combine(::testing::Values(ModelKind::kLinear,
                                         ModelKind::kXgboost,
                                         ModelKind::kCatboost),
                       ::testing::Values(0.1, 0.3)));

// ---------------------------------------------------------------------------
class CloneReproducibility : public ::testing::TestWithParam<ModelKind> {};

TEST_P(CloneReproducibility, CloneRefitMatchesOriginal) {
  const auto p = make_problem(120, 13);
  auto model = make_point_regressor(GetParam());
  model->fit(p.x, p.y);
  auto clone = model->clone_config();
  EXPECT_FALSE(clone->fitted());
  clone->fit(p.x, p.y);
  const Vector a = model->predict(p.x);
  const Vector b = clone->predict(p.x);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i], b[i]) << model_name(GetParam());
  }
}

INSTANTIATE_TEST_SUITE_P(AllModels, CloneReproducibility,
                         ::testing::Values(ModelKind::kLinear, ModelKind::kGp,
                                           ModelKind::kXgboost,
                                           ModelKind::kCatboost,
                                           ModelKind::kMlp));

// ---------------------------------------------------------------------------
class ShiftEquivariance : public ::testing::TestWithParam<ModelKind> {};

TEST_P(ShiftEquivariance, LabelShiftMovesPredictionsByTheShift) {
  // All models standardize labels internally; adding a constant to y must
  // add (approximately) the same constant to predictions.
  const auto p = make_problem(150, 17);
  auto base = make_point_regressor(GetParam());
  base->fit(p.x, p.y);
  Vector shifted = p.y;
  for (auto& v : shifted) v += 5.0;
  auto moved = make_point_regressor(GetParam());
  moved->fit(p.x, shifted);
  const Vector a = base->predict(p.x);
  const Vector b = moved->predict(p.x);
  double mean_delta = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) mean_delta += b[i] - a[i];
  mean_delta /= static_cast<double>(a.size());
  EXPECT_NEAR(mean_delta, 5.0, 0.05) << model_name(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllModels, ShiftEquivariance,
                         ::testing::Values(ModelKind::kLinear, ModelKind::kGp,
                                           ModelKind::kXgboost,
                                           ModelKind::kCatboost,
                                           ModelKind::kMlp));

// ---------------------------------------------------------------------------
class LossGradientCheck : public ::testing::TestWithParam<double> {};

TEST_P(LossGradientCheck, MatchesFiniteDifferences) {
  const double q = GetParam();
  const Loss loss =
      q < 0 ? Loss::squared() : Loss::pinball(core::QuantileLevel{q});
  const double y = 1.3;
  const double eps = 1e-6;
  // Probe away from the kink at y_hat == y.
  for (double y_hat : {0.2, 0.9, 1.6, 2.4}) {
    const double numeric =
        (loss.value(y, y_hat + eps) - loss.value(y, y_hat - eps)) / (2 * eps);
    EXPECT_NEAR(loss.gradient(y, y_hat), numeric, 1e-6)
        << "q=" << q << " y_hat=" << y_hat;
  }
}

INSTANTIATE_TEST_SUITE_P(SquaredAndPinball, LossGradientCheck,
                         ::testing::Values(-1.0, 0.05, 0.5, 0.95));

}  // namespace
}  // namespace vmincqr::models
