// VminBundle: one serveable Vmin-screening artifact — everything a
// serve-time process needs to reproduce the fitted pipeline's interval
// predictions, and nothing it doesn't (no training data, no fit
// hyperparameters beyond those the forward pass reads).
//
// A bundle file (.vqa) is the VQAF chunk stream of codec.hpp:
//
//   META  scenario (read point, temperature, feature set, horizon) + label
//   COLS  dataset column ids + the fit-time selected feature subset
//   SCAL  optional serve-side input scaler (absent when models scale
//         internally, which all current models do)
//   PRED  exactly one nested predictor chunk (see model_codec.hpp)
//
// The scenario is stored as a plain POD (ScenarioSpec) rather than
// core::Scenario so artifacts stay decodable below the orchestration layer
// (see tools/vmincqr_lint/layers.toml: artifact must not include core_app).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "artifact/codec.hpp"
#include "data/scaler.hpp"
#include "models/interval.hpp"

namespace vmincqr::artifact {

/// Layer-neutral mirror of core::Scenario (field-for-field; core/pipeline
/// converts). `feature_set` is the core::FeatureSet enum value.
struct ScenarioSpec {
  double read_point_hours = 0.0;
  double temperature_c = 25.0;
  std::uint8_t feature_set = 2;  ///< core::FeatureSet::kBoth
  double monitor_horizon_hours = -1.0;
};

/// One saved screen: scenario + column bookkeeping + the fitted predictor.
struct VminBundle {
  std::uint32_t format_version = kFormatVersion;
  ScenarioSpec scenario;
  /// Human-readable predictor label, e.g. "CQR QR Linear Regression".
  std::string label;
  /// Dataset column index per scenario design column (provenance: which raw
  /// columns the serve-time feature matrix must be assembled from, in order).
  std::vector<std::size_t> dataset_columns;
  /// Fit-time feature selection: indices into `dataset_columns`.
  std::vector<std::size_t> selected_features;
  /// Optional serve-side pre-transform over the selected columns. All current
  /// models standardize internally, so this is typically absent.
  bool has_input_scaler = false;
  data::ScalerParams input_scaler;
  /// The fitted, calibrated predictor (never null in a valid bundle).
  std::unique_ptr<models::IntervalRegressor> predictor;
};

/// Serializes a bundle to VQAF bytes. Throws std::invalid_argument on a null
/// predictor; std::logic_error if the predictor is unfitted/uncalibrated.
[[nodiscard]] std::vector<std::uint8_t> encode_bundle(const VminBundle& bundle);

/// Parses VQAF bytes back into a bundle (predictions bit-exact with the
/// saved predictor). Throws ArtifactError on malformed or truncated input.
[[nodiscard]] VminBundle decode_bundle(const std::vector<std::uint8_t>& bytes);

/// Writes/reads a bundle file (conventionally *.vqa). Throw ArtifactError on
/// I/O failure; load_artifact also on malformed content.
void save_artifact(const VminBundle& bundle, const std::string& path);
[[nodiscard]] VminBundle load_artifact(const std::string& path);

/// Debug-JSON rendering of a decoded bundle: scenario, columns, predictor
/// shape. Long index lists are elided with a count. Complements
/// chunk_tree_json (raw structure) with decoded values.
[[nodiscard]] std::string debug_json(const VminBundle& bundle);

}  // namespace vmincqr::artifact
