// Split Conformal Prediction (paper Sec. III-B).
//
// Wraps ANY point regressor: the training set is split into a proper
// training part and a calibration part; the point model is fitted on the
// former, and the ceil((M+1)(1-alpha))/M-th quantile q_hat of the absolute
// calibration residuals (Eq. 7) widens every prediction into
// [y_hat - q_hat, y_hat + q_hat] (Eq. 8). The interval width is constant
// across inputs — the limitation CQR removes.
#pragma once

#include <memory>

#include "core/split_spec.hpp"
#include "core/units.hpp"
#include "models/interval.hpp"
#include "models/regressor.hpp"

namespace vmincqr::conformal {

using core::MiscoverageAlpha;
using models::IntervalPrediction;
using models::IntervalRegressor;
using models::Matrix;
using models::Regressor;
using models::Vector;

struct SplitConfig {
  /// Train/calibration split (the paper's 75/25, Sec. IV-B); shared with
  /// core::PipelineConfig through core::CalibrationSplit.
  core::CalibrationSplit split;
};

/// The calibrated state of a SplitConformalRegressor: the constant interval
/// half-width of Eq. (8).
struct SplitCalibration {
  double q_hat = 0.0;
};

class SplitConformalRegressor final : public IntervalRegressor {
 public:
  /// Takes ownership of an unfitted point-regressor prototype.
  /// Throws std::invalid_argument on a null model.
  SplitConformalRegressor(MiscoverageAlpha alpha,
                          std::unique_ptr<Regressor> model,
                          SplitConfig config = {});

  /// Splits (x, y) internally, fits, and calibrates.
  /// Throws std::invalid_argument if fewer than 3 samples.
  void fit(const Matrix& x, const Vector& y) override;

  /// Calibrates on an explicit, already-disjoint split (no internal
  /// randomization). Used when the caller manages the split.
  void fit_with_split(const Matrix& x_train, const Vector& y_train,
                      const Matrix& x_calib, const Vector& y_calib);

  [[nodiscard]] IntervalPrediction predict_interval(const Matrix& x) const override;

  /// The underlying point prediction (centre of the interval).
  [[nodiscard]] Vector predict_point(const Matrix& x) const;

  [[nodiscard]] std::unique_ptr<IntervalRegressor> clone_config() const override;
  [[nodiscard]] std::string name() const override { return "CP " + model_->name(); }
  [[nodiscard]] MiscoverageAlpha alpha() const override { return alpha_; }

  /// Calibrated half-width q_hat (volts); +inf when the calibration set was
  /// too small for the requested coverage.
  [[nodiscard]] double q_hat() const;

  /// The wrapped point model (for parameter export).
  [[nodiscard]] const Regressor& model() const { return *model_; }

  /// Copies out the calibrated half-width. Throws std::logic_error if not
  /// calibrated.
  [[nodiscard]] SplitCalibration export_calibration() const;

  /// Adopts a previously exported half-width and marks the regressor
  /// calibrated. The point model must already be fitted for predictions to
  /// succeed. Throws std::invalid_argument on NaN.
  void import_calibration(SplitCalibration calibration);

 private:
  MiscoverageAlpha alpha_;
  std::unique_ptr<Regressor> model_;
  SplitConfig config_;
  double q_hat_ = 0.0;
  bool calibrated_ = false;
};

}  // namespace vmincqr::conformal
