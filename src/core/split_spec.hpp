// The train/calibration split specification shared by the pipeline and every
// split-based conformal method (paper Sec. IV-B: one 75/25 split, one seed,
// "the same random seed for all Vmin interval predictors").
//
// This is the single source of truth: core::PipelineConfig embeds one and
// threads it verbatim into conformal::{Cqr,Split,Normalized,...}Config, so
// fit-time orchestration and calibration can never silently disagree about
// the split. Sits in core_base so both core_app and conformal may depend
// on it.
#pragma once

#include <cstdint>

namespace vmincqr::core {

struct CalibrationSplit {
  double train_fraction = 0.75;  ///< proper-training share (paper's 75/25)
  std::uint64_t seed = 42;       ///< split randomization seed

  /// True iff the fraction leaves room for both a non-empty proper-training
  /// part and a non-empty calibration part. Kept noexcept so config
  /// constructors can turn a violation into their own typed error.
  [[nodiscard]] bool valid() const noexcept {
    return train_fraction > 0.0 && train_fraction < 1.0;
  }
};

}  // namespace vmincqr::core
