# Empty dependencies file for elastic_net_test.
# This may be replaced when dependencies are built.
