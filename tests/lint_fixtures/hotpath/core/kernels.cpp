// Core helpers reached from the serve roots (and from the predict entry):
// each definition carries exactly one phase-5 finding shape, or is a
// deliberately silent negative. The abstract Model supplies the virtual
// method name the dispatch rules harvest.

struct Model {
  virtual double eval(double x) const = 0;
};

// A predict-entry root: grow_rows is hot through both cones.
double predict(const std::vector<double>& xs) {
  return grow_rows(xs);
}

// alloc-in-hot-loop: a heavy container constructed on every iteration.
double alloc_helper(double x, std::size_t n) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    Vector tmp(3);
    acc += tmp.size() + x;
  }
  return acc;
}

// missed-reserve: the loop head makes the trip count visible, so the
// reserve is mechanically derivable (and --fix inserts it).
double grow_rows(const std::vector<double>& xs) {
  std::vector<double> out;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    out.push_back(xs[i] * 2.0);
  }
  return out.back();
}

// temporary-materialization: the freshly copied row exists to read one
// scalar.
double peek_row(const Matrix& m, std::size_t i) {
  return m.row(i).back();
}

// heavy-pass-by-value: a full Matrix copy per call, never mutated.
double copy_param(Matrix m, double x) {
  return m.rows() * x;
}

// virtual-in-inner-loop: per-element dispatch in an innermost loop.
double inner_dispatch(const Model* model, double x, std::size_t n) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += model->eval(x);
  }
  return acc;
}

// Negative: the same shape stays silent under a per-line allow().
double batched_dispatch(const Model* model, double x, std::size_t n) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += model->eval(x);  // vmincqr-lint: allow(virtual-in-inner-loop)
  }
  return acc;
}
