// Fixture: an out-of-line fit() with no input validation. Fires
// contract-coverage exactly once; the guarded predict() does not fire.
#include "fixture_model.hpp"

namespace fx {

void Model::fit(const Matrix& x, const Vector& y) {
  coef_ = solve(x, y);
}

Vector Model::predict(const Matrix& x) const {
  VMINCQR_REQUIRE(x.cols() == coef_.size(), "predict: column mismatch");
  return x * coef_;
}

}  // namespace fx
