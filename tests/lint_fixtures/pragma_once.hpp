// Fixture: header whose first directive is an include, not #pragma once.
// The pragma-once rule must fire exactly once (at the first directive).
#include <vector>

inline int fixture_value() { return 1; }
