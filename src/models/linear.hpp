// Linear regression — the paper's recommended low-cost point predictor
// (Sec. IV-D: "linear regression is competitive overall ... viable option
// for in-field prediction with an on-chip hardware accelerator").
//
// Squared loss  -> closed-form ridge / QR least squares.
// Pinball loss  -> Adam on the quantile-loss subgradient (quantile
//                  regression; identical minimizer to the LP formulation at
//                  this data scale, no LP solver dependency).
#pragma once

#include "data/scaler.hpp"
#include "models/losses.hpp"
#include "models/regressor.hpp"

namespace vmincqr::models {

struct LinearConfig {
  Loss loss = Loss::squared();
  double ridge_lambda = 1e-6;  ///< small default keeps near-collinear CFS
                               ///< subsets numerically stable
  // Pinball-mode optimizer settings.
  int pinball_epochs = 4000;
  double pinball_lr = 0.05;
};

/// Fitted state of a LinearRegressor: both scalers plus the standardized-
/// space coefficient vector. Exporting and re-importing reproduces predict()
/// bit-exactly (the artifact layer's round-trip contract).
struct LinearParams {
  data::ScalerParams scaler;
  data::LabelScalerParams label;
  Vector coef;  ///< intercept + weights (standardized space)
};

class LinearRegressor final : public Regressor {
 public:
  explicit LinearRegressor(LinearConfig config = {});

  void fit(const Matrix& x, const Vector& y) override;
  [[nodiscard]] Vector predict(const Matrix& x) const override;
  [[nodiscard]] std::unique_ptr<Regressor> clone_config() const override;
  [[nodiscard]] std::string name() const override { return "Linear Regression"; }
  [[nodiscard]] bool fitted() const override { return fitted_; }

  /// Coefficients in the standardized feature space; [0] is the intercept.
  [[nodiscard]] const Vector& coefficients() const { return coef_; }

  /// The fitted model as a raw-feature-space affine function
  /// y = intercept + weights . x — the form an on-chip hardware accelerator
  /// would implement (paper Sec. IV-D: "implementing a linear regression
  /// model with an on-chip hardware accelerator"). Exact: evaluating this
  /// affine reproduces predict() to rounding error.
  struct Affine {
    Vector weights;
    double intercept = 0.0;
    [[nodiscard]] double evaluate(const Vector& x) const;
  };
  /// Throws std::logic_error if not fitted.
  [[nodiscard]] Affine raw_affine() const;

  /// Copies out the fitted state. Throws std::logic_error if not fitted.
  [[nodiscard]] LinearParams export_params() const;

  /// Adopts previously exported state and marks the model fitted.
  /// Throws std::invalid_argument on inconsistent shapes.
  void import_params(LinearParams params);

 private:
  void fit_squared(const Matrix& xs, const Vector& ys);
  void fit_pinball(const Matrix& xs, const Vector& ys);

  LinearConfig config_;
  data::StandardScaler scaler_;
  data::LabelScaler label_scaler_;
  Vector coef_;  // intercept + weights (standardized space)
  std::size_t n_features_ = 0;
  bool fitted_ = false;
};

}  // namespace vmincqr::models
