#include "testgen/fault_sim.hpp"

#include <algorithm>
#include <stdexcept>

namespace vmincqr::testgen {

std::vector<StuckFault> enumerate_stuck_faults(const netlist::Netlist& nl) {
  std::vector<StuckFault> faults;
  faults.reserve(2 * nl.n_nodes());
  for (std::size_t node = 0; node < nl.n_nodes(); ++node) {
    faults.push_back({node, false});
    faults.push_back({node, true});
  }
  return faults;
}

std::vector<std::size_t> scan_observation_points(const netlist::Netlist& nl) {
  std::vector<std::size_t> points = nl.outputs();
  for (std::size_t g = 0; g < nl.gates().size(); ++g) {
    if (nl.gates()[g].cell == 5) {  // DFF_CK2Q: scan-observable
      points.push_back(nl.n_inputs() + g);
    }
  }
  std::sort(points.begin(), points.end());
  points.erase(std::unique(points.begin(), points.end()), points.end());
  return points;
}

namespace {

// Extracts the per-input word at word index w.
std::vector<PatternWord> word_slice(
    const std::vector<std::vector<PatternWord>>& input_words, std::size_t w) {
  std::vector<PatternWord> slice(input_words.size());
  for (std::size_t i = 0; i < input_words.size(); ++i) {
    slice[i] = input_words[i][w];
  }
  return slice;
}

}  // namespace

FaultSimResult simulate_faults(
    const netlist::Netlist& nl,
    const std::vector<std::vector<PatternWord>>& input_words,
    const std::vector<StuckFault>& faults) {
  if (input_words.size() != nl.n_inputs()) {
    throw std::invalid_argument("simulate_faults: input count mismatch");
  }
  const std::size_t n_words = input_words.empty() ? 0 : input_words[0].size();
  for (const auto& words : input_words) {
    if (words.size() != n_words) {
      throw std::invalid_argument("simulate_faults: ragged pattern words");
    }
  }

  const LogicSimulator sim(nl);
  const auto observe = scan_observation_points(nl);
  FaultSimResult result;
  result.n_faults = faults.size();
  result.detected.assign(faults.size(), false);

  for (std::size_t w = 0; w < n_words; ++w) {
    const auto inputs = word_slice(input_words, w);
    const auto good = sim.simulate(inputs);
    for (std::size_t f = 0; f < faults.size(); ++f) {
      if (result.detected[f]) continue;  // fault dropping
      const auto bad = sim.simulate_with_fault(inputs, faults[f].node,
                                               faults[f].stuck_value);
      for (auto node : observe) {
        if (good[node] != bad[node]) {
          result.detected[f] = true;
          ++result.n_detected;
          break;
        }
      }
    }
  }
  return result;
}

AtpgResult random_atpg(const netlist::Netlist& nl, double target_coverage,
                       std::size_t max_pattern_words, rng::Rng& rng) {
  if (target_coverage < 0.0 || target_coverage > 1.0) {
    throw std::invalid_argument("random_atpg: target outside [0, 1]");
  }
  if (max_pattern_words == 0) {
    throw std::invalid_argument("random_atpg: zero pattern budget");
  }

  const auto all_faults = enumerate_stuck_faults(nl);
  std::vector<StuckFault> remaining = all_faults;
  const LogicSimulator sim(nl);
  const auto observe = scan_observation_points(nl);

  AtpgResult result;
  result.input_words.assign(nl.n_inputs(), {});
  std::size_t detected_total = 0;

  for (std::size_t w = 0; w < max_pattern_words; ++w) {
    // One fresh random word of 64 patterns.
    std::vector<PatternWord> word(nl.n_inputs());
    for (auto& v : word) {
      v = (static_cast<PatternWord>(rng.uniform_int(0, 0xFFFFFFFFLL)) << 32) |
          static_cast<PatternWord>(rng.uniform_int(0, 0xFFFFFFFFLL));
    }
    for (std::size_t i = 0; i < nl.n_inputs(); ++i) {
      result.input_words[i].push_back(word[i]);
    }

    // Fault-simulate the remaining faults against just this word.
    const auto good = sim.simulate(word);
    std::vector<StuckFault> still_undetected;
    still_undetected.reserve(remaining.size());
    for (const auto& fault : remaining) {
      const auto bad =
          sim.simulate_with_fault(word, fault.node, fault.stuck_value);
      bool hit = false;
      for (auto node : observe) {
        if (good[node] != bad[node]) {
          hit = true;
          break;
        }
      }
      if (hit) {
        ++detected_total;
      } else {
        still_undetected.push_back(fault);
      }
    }
    remaining = std::move(still_undetected);

    result.coverage = static_cast<double>(detected_total) /
                      static_cast<double>(all_faults.size());
    if (result.coverage >= target_coverage) break;
  }
  result.n_patterns = result.input_words.empty()
                          ? 0
                          : 64 * result.input_words[0].size();
  return result;
}

}  // namespace vmincqr::testgen
