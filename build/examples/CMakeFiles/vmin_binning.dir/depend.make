# Empty dependencies file for vmin_binning.
# This may be replaced when dependencies are built.
