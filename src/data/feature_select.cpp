#include "data/feature_select.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "stats/descriptive.hpp"

namespace vmincqr::data {

namespace {

// Absolute Pearson correlation between column j of x and v.
double abs_corr_col(const Matrix& x, std::size_t j, const Vector& v) {
  return std::abs(stats::pearson(x.col(j), v));
}

}  // namespace

double cfs_merit(const Matrix& x, const Vector& y,
                 const std::vector<std::size_t>& subset) {
  if (subset.empty()) throw std::invalid_argument("cfs_merit: empty subset");
  for (auto j : subset) {
    if (j >= x.cols()) throw std::invalid_argument("cfs_merit: bad index");
  }
  const auto k = static_cast<double>(subset.size());
  double rcf = 0.0;
  for (auto j : subset) rcf += abs_corr_col(x, j, y);
  rcf /= k;

  double rff = 0.0;
  if (subset.size() > 1) {
    std::size_t pairs = 0;
    for (std::size_t a = 0; a < subset.size(); ++a) {
      const Vector ca = x.col(subset[a]);
      for (std::size_t b = a + 1; b < subset.size(); ++b) {
        rff += std::abs(stats::pearson(ca, x.col(subset[b])));
        ++pairs;
      }
    }
    rff /= static_cast<double>(pairs);
  }

  const double denom = std::sqrt(k + k * (k - 1.0) * rff);
  if (denom <= 0.0) return 0.0;
  return k * rcf / denom;
}

std::vector<std::size_t> cfs_select(const Matrix& x, const Vector& y,
                                    std::size_t max_features) {
  if (x.rows() != y.size()) {
    throw std::invalid_argument("cfs_select: dimension mismatch");
  }
  if (x.empty() || max_features == 0) return {};
  const std::size_t budget = std::min<std::size_t>(max_features, x.cols());

  // Precompute |r_cf| for all columns; cache columns to avoid repeated copies.
  std::vector<double> rcf(x.cols());
  for (std::size_t j = 0; j < x.cols(); ++j) rcf[j] = abs_corr_col(x, j, y);

  std::vector<std::size_t> selected;
  std::vector<bool> used(x.cols(), false);

  // Seed with the single most label-correlated feature.
  std::size_t best0 = 0;
  for (std::size_t j = 1; j < x.cols(); ++j) {
    if (rcf[j] > rcf[best0]) best0 = j;
  }
  selected.push_back(best0);
  used[best0] = true;

  // Incremental merit bookkeeping: track sum of |r_cf| over the subset and
  // the sum of pairwise |r_ff|, updating both when a candidate is added.
  double sum_rcf = rcf[best0];
  double sum_rff = 0.0;
  std::vector<Vector> selected_cols = {x.col(best0)};

  while (selected.size() < budget) {
    double best_merit = -1.0;
    std::size_t best_j = x.cols();
    double best_add_rff = 0.0;
    for (std::size_t j = 0; j < x.cols(); ++j) {
      if (used[j]) continue;
      const Vector cj = x.col(j);
      double add_rff = 0.0;
      for (const auto& cs : selected_cols) {
        add_rff += std::abs(stats::pearson(cj, cs));
      }
      const auto k = static_cast<double>(selected.size() + 1);
      const double mean_rcf = (sum_rcf + rcf[j]) / k;
      const double pairs = k * (k - 1.0) / 2.0;
      const double mean_rff = pairs > 0.0 ? (sum_rff + add_rff) / pairs : 0.0;
      const double denom = std::sqrt(k + k * (k - 1.0) * mean_rff);
      const double merit = denom > 0.0 ? k * mean_rcf / denom : 0.0;
      if (merit > best_merit) {
        best_merit = merit;
        best_j = j;
        best_add_rff = add_rff;
      }
    }
    if (best_j == x.cols()) break;  // no candidates left
    used[best_j] = true;
    selected.push_back(best_j);
    selected_cols.push_back(x.col(best_j));
    sum_rcf += rcf[best_j];
    sum_rff += best_add_rff;
  }
  return selected;
}

std::vector<std::size_t> top_correlated(const Matrix& x, const Vector& y,
                                        std::size_t k) {
  if (x.rows() != y.size()) {
    throw std::invalid_argument("top_correlated: dimension mismatch");
  }
  std::vector<std::pair<double, std::size_t>> scored;
  scored.reserve(x.cols());
  for (std::size_t j = 0; j < x.cols(); ++j) {
    scored.emplace_back(abs_corr_col(x, j, y), j);
  }
  std::stable_sort(scored.begin(), scored.end(),
                   [](const auto& a, const auto& b) { return a.first > b.first; });
  std::vector<std::size_t> out;
  out.reserve(std::min<std::size_t>(k, scored.size()));
  for (std::size_t i = 0; i < scored.size() && i < k; ++i) {
    out.push_back(scored[i].second);
  }
  return out;
}

}  // namespace vmincqr::data
