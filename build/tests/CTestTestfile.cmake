# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/linalg_test[1]_include.cmake")
include("/root/repo/build/tests/rng_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/data_test[1]_include.cmake")
include("/root/repo/build/tests/silicon_test[1]_include.cmake")
include("/root/repo/build/tests/models_point_test[1]_include.cmake")
include("/root/repo/build/tests/models_tree_test[1]_include.cmake")
include("/root/repo/build/tests/conformal_test[1]_include.cmake")
include("/root/repo/build/tests/conformal_property_test[1]_include.cmake")
include("/root/repo/build/tests/conformal_extensions_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/netlist_test[1]_include.cmake")
include("/root/repo/build/tests/structural_test[1]_include.cmake")
include("/root/repo/build/tests/application_test[1]_include.cmake")
include("/root/repo/build/tests/elastic_net_test[1]_include.cmake")
include("/root/repo/build/tests/testgen_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/predictive_test[1]_include.cmake")
include("/root/repo/build/tests/model_property_test[1]_include.cmake")
