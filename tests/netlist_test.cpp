// Tests for the gate-level substrate: cell delay law, netlist construction,
// STA, structural Vmin bisection, and ring oscillators.
#include <gtest/gtest.h>

#include <cmath>

#include "netlist/ring_oscillator.hpp"
#include "netlist/sta.hpp"
#include "netlist/vmin_solver.hpp"

namespace vmincqr::netlist {
namespace {

TEST(CellDelay, NormalizedAtCharacterizationPoint) {
  const DelayModelConfig config;
  const auto& inv = standard_cell_library()[0];
  const double d = cell_delay(inv, config, config.v_nominal, 0.0,
                              config.temp_ref_c);
  EXPECT_NEAR(d, inv.base_delay_ns * inv.drive_factor, 1e-12);
}

TEST(CellDelay, MonotoneDecreasingInVoltage) {
  const DelayModelConfig config;
  const auto& nand = standard_cell_library()[2];
  double prev = 1e18;
  for (double v = 0.45; v <= 1.2; v += 0.05) {
    const double d = cell_delay(nand, config, v, 0.0, 25.0);
    EXPECT_LT(d, prev) << "v=" << v;
    prev = d;
  }
}

TEST(CellDelay, HigherVthIsSlower) {
  const DelayModelConfig config;
  const auto& inv = standard_cell_library()[0];
  EXPECT_GT(cell_delay(inv, config, 0.6, 0.02, 25.0),
            cell_delay(inv, config, 0.6, -0.02, 25.0));
}

TEST(CellDelay, ColdIsSlowerNearThreshold) {
  // At low supply the Vth increase at cold dominates the mobility gain:
  // cold delay > room delay — the physical basis of the -45C Vmin penalty.
  const DelayModelConfig config;
  const auto& inv = standard_cell_library()[0];
  EXPECT_GT(cell_delay(inv, config, 0.45, 0.0, -45.0),
            cell_delay(inv, config, 0.45, 0.0, 25.0));
}

TEST(CellDelay, InfiniteBelowHeadroom) {
  const DelayModelConfig config;
  const auto& inv = standard_cell_library()[0];
  EXPECT_TRUE(std::isinf(cell_delay(inv, config, 0.30, 0.05, 25.0)));
  EXPECT_THROW(cell_delay(inv, config, 0.0, 0.0, 25.0),
               std::invalid_argument);
}

TEST(Netlist, ValidatesTopologicalOrder) {
  // Gate node 2 (first gate, with 1 input) referencing itself.
  std::vector<Gate> gates = {{0, {1}, 1.0, 1.0}};
  EXPECT_NO_THROW(Netlist(2, gates, {2}));
  std::vector<Gate> bad = {{0, {2}, 1.0, 1.0}};  // fanin == own node id
  EXPECT_THROW(Netlist(2, bad, {2}), std::invalid_argument);
  EXPECT_THROW(Netlist(2, gates, {5}), std::invalid_argument);  // bad output
  EXPECT_THROW(Netlist(2, gates, {}), std::invalid_argument);   // no outputs
}

TEST(Netlist, RandomIsDeterministicAndWellFormed) {
  RandomNetlistConfig config;
  config.n_gates = 200;
  rng::Rng rng1(5), rng2(5);
  const Netlist a = Netlist::random(config, rng1);
  const Netlist b = Netlist::random(config, rng2);
  EXPECT_EQ(a.n_nodes(), b.n_nodes());
  for (std::size_t g = 0; g < a.gates().size(); ++g) {
    EXPECT_EQ(a.gates()[g].cell, b.gates()[g].cell);
    EXPECT_EQ(a.gates()[g].fanins, b.gates()[g].fanins);
  }
  // Well-formedness is enforced by the constructor; spot-check fanin order.
  for (std::size_t g = 0; g < a.gates().size(); ++g) {
    for (auto f : a.gates()[g].fanins) EXPECT_LT(f, a.n_inputs() + g);
  }
}

TEST(Sta, HandComputedChain) {
  // in0 -> INV -> INV -> out. Arrival = 2 * inverter delay.
  std::vector<Gate> gates = {{0, {0}, 1.0, 1.0}, {0, {1}, 1.0, 1.0}};
  const Netlist chain(1, gates, {2});
  const DelayModelConfig config;
  const auto timing = run_sta(chain, config, config.v_nominal, 25.0);
  const double d = cell_delay(standard_cell_library()[0], config,
                              config.v_nominal, 0.0, 25.0);
  EXPECT_NEAR(timing.worst_arrival_ns, 2.0 * d, 1e-12);
  EXPECT_EQ(timing.critical_path.size(), 3u);  // input, gate1, gate2
  EXPECT_EQ(timing.critical_path.front(), 0u);
  EXPECT_EQ(timing.critical_path.back(), 2u);
}

TEST(Sta, PicksTheSlowerBranch) {
  // Two parallel branches into a NAND: one INV vs three INVs.
  std::vector<Gate> gates = {
      {0, {0}, 1.0, 1.0},   // node 1: INV(in0)
      {0, {0}, 1.0, 1.0},   // node 2: INV(in0)
      {0, {2}, 1.0, 1.0},   // node 3: INV(node2)
      {0, {3}, 1.0, 1.0},   // node 4: INV(node3)
      {2, {1, 4}, 1.0, 1.0} // node 5: NAND(node1, node4)
  };
  const Netlist nl(1, gates, {5});
  const DelayModelConfig config;
  const auto timing = run_sta(nl, config, 0.7, 25.0);
  // Critical path must run through the 3-inverter branch.
  EXPECT_EQ(timing.critical_path.size(), 5u);  // in0, 2, 3, 4, 5
}

TEST(Sta, VthShiftHookIsApplied) {
  std::vector<Gate> gates = {{0, {0}, 1.0, 1.0}};
  const Netlist nl(1, gates, {1});
  const DelayModelConfig config;
  const auto slow = run_sta(nl, config, 0.6, 25.0,
                            [](std::size_t) { return 0.03; });
  const auto fast = run_sta(nl, config, 0.6, 25.0,
                            [](std::size_t) { return -0.03; });
  EXPECT_GT(slow.worst_arrival_ns, fast.worst_arrival_ns);
}

TEST(Sta, ReportsNonFunctionalAtLowSupply) {
  std::vector<Gate> gates = {{0, {0}, 1.0, 1.0}};
  const Netlist nl(1, gates, {1});
  const DelayModelConfig config;
  const auto timing = run_sta(nl, config, 0.31, 25.0,
                              [](std::size_t) { return 0.05; });
  EXPECT_FALSE(timing.functional);
}

class VminSolverFixture : public ::testing::Test {
 protected:
  static Netlist make_design() {
    RandomNetlistConfig config;
    config.n_inputs = 16;
    config.n_gates = 300;
    config.n_outputs = 8;
    rng::Rng rng(11);
    return Netlist::random(config, rng);
  }
};

TEST_F(VminSolverFixture, BracketsTimingClosure) {
  const Netlist design = make_design();
  const DelayModelConfig config;
  // Clock derived at 0.55 V -> Vmin must come back ~0.55 V.
  const auto nominal = run_sta(design, config, 0.55, 25.0);
  const auto solution =
      solve_vmin(design, config, nominal.worst_arrival_ns, 25.0);
  ASSERT_TRUE(solution.feasible);
  EXPECT_NEAR(solution.vmin, 0.55, 2e-3);
  // Verify the defining property: passes at vmin, fails just below.
  const auto at = run_sta(design, config, solution.vmin, 25.0);
  EXPECT_LE(at.worst_arrival_ns, nominal.worst_arrival_ns * (1.0 + 1e-9));
  const auto below = run_sta(design, config, solution.vmin - 0.005, 25.0);
  EXPECT_GT(below.worst_arrival_ns, nominal.worst_arrival_ns);
}

TEST_F(VminSolverFixture, VminRespondsToProcessAndTemperature) {
  const Netlist design = make_design();
  const DelayModelConfig config;
  const auto nominal = run_sta(design, config, 0.55, 25.0);
  const double clock = nominal.worst_arrival_ns;

  const auto slow_chip = solve_vmin(design, config, clock, 25.0,
                                    [](std::size_t) { return 0.01; });
  const auto fast_chip = solve_vmin(design, config, clock, 25.0,
                                    [](std::size_t) { return -0.01; });
  EXPECT_GT(slow_chip.vmin, fast_chip.vmin);

  const auto cold = solve_vmin(design, config, clock, -45.0);
  const auto room = solve_vmin(design, config, clock, 25.0);
  EXPECT_GT(cold.vmin, room.vmin);
}

TEST_F(VminSolverFixture, InfeasibleReportsGracefully) {
  const Netlist design = make_design();
  const DelayModelConfig config;
  const auto solution = solve_vmin(design, config, /*clock=*/1e-6, 25.0);
  EXPECT_FALSE(solution.feasible);
  EXPECT_THROW(solve_vmin(design, config, -1.0, 25.0), std::invalid_argument);
}

TEST(RingOscillator, PeriodScalesWithStagesAndVth) {
  const DelayModelConfig config;
  RingOscillator small{11, 0.0};
  RingOscillator large{31, 0.0};
  const double p_small = ring_oscillator_period(small, config, 0.75, 0.0, 25.0);
  const double p_large = ring_oscillator_period(large, config, 0.75, 0.0, 25.0);
  EXPECT_NEAR(p_large / p_small, 31.0 / 11.0, 1e-9);
  EXPECT_GT(ring_oscillator_period(small, config, 0.75, 0.02, 25.0), p_small);
  EXPECT_THROW(ring_oscillator_period({10, 0.0}, config, 0.75, 0.0, 25.0),
               std::invalid_argument);
}

TEST(RingOscillator, FrequencyInverseOfPeriodAndZeroWhenDead) {
  const DelayModelConfig config;
  RingOscillator ro{31, 0.0};
  const double p = ring_oscillator_period(ro, config, 0.75, 0.0, 25.0);
  EXPECT_NEAR(ring_oscillator_frequency(ro, config, 0.75, 0.0, 25.0), 1.0 / p,
              1e-12);
  EXPECT_DOUBLE_EQ(ring_oscillator_frequency(ro, config, 0.31, 0.05, 25.0),
                   0.0);
}

}  // namespace
}  // namespace vmincqr::netlist
