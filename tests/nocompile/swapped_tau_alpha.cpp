// Negative-compile check: a MiscoverageAlpha must not be accepted where a
// QuantileLevel is expected — the classic alpha-for-tau swap that silently
// destroys coverage when both are raw doubles.
#include "models/losses.hpp"

namespace nc = vmincqr::core;

vmincqr::models::Loss probe() {
#ifdef VMINCQR_NOCOMPILE
  return vmincqr::models::Loss::pinball(nc::MiscoverageAlpha{0.05});
#else
  return vmincqr::models::Loss::pinball(nc::QuantileLevel{0.05});
#endif
}
