// Coverage-guarantee playground: demonstrates, on the synthetic chip
// population, that the empirical coverage of CP/CQR intervals tracks the
// requested 1 - alpha while the uncalibrated GP and QR baselines drift —
// the paper's Table I/III story condensed into one sweep.
//
// The conformal guarantee (Eq. 6) is *marginal*: it holds in expectation
// over the draw of calibration and test chips. A single 39-chip test split
// is dominated by Monte-Carlo noise, so this example averages over repeated
// random splits of the population.
#include <cstdio>

#include "conformal/cqr.hpp"
#include "conformal/split_cp.hpp"
#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "data/feature_select.hpp"
#include "models/factory.hpp"
#include "silicon/dataset_gen.hpp"
#include "stats/metrics.hpp"

using namespace vmincqr;

int main() {
  const auto generated = silicon::generate_dataset(silicon::GeneratorConfig{});
  const data::Dataset& ds = generated.dataset;
  const core::Scenario scenario{48.0, 25.0, core::FeatureSet::kBoth};
  const auto data = core::assemble_scenario(ds, scenario);

  const int n_splits = 12;
  const std::vector<double> alphas = {0.05, 0.1, 0.2, 0.3};
  // coverage[method][alpha] accumulated over splits; method order is
  // GP, QR LR, CP LR, CQR LR (the table header below).
  double coverage[4][4] = {};

  rng::Rng split_rng(99);
  for (int split = 0; split < n_splits; ++split) {
    const auto perm = split_rng.permutation(ds.n_chips());
    std::vector<std::size_t> train_rows(perm.begin(), perm.begin() + 117);
    std::vector<std::size_t> test_rows(perm.begin() + 117, perm.end());

    const auto x_train_all = data.x.take_rows(train_rows);
    linalg::Vector y_train(train_rows.size());
    for (std::size_t i = 0; i < train_rows.size(); ++i) {
      y_train[i] = data.y[train_rows[i]];
    }
    const auto x_test_all = data.x.take_rows(test_rows);
    linalg::Vector y_test(test_rows.size());
    for (std::size_t i = 0; i < test_rows.size(); ++i) {
      y_test[i] = data.y[test_rows[i]];
    }
    const auto cols = data::cfs_select(x_train_all, y_train, 8);
    const auto xtr = x_train_all.take_cols(cols);
    const auto xte = x_test_all.take_cols(cols);

    for (std::size_t a = 0; a < alphas.size(); ++a) {
      const double alpha = alphas[a];
      const auto run = [&](std::size_t m, models::IntervalRegressor& model) {
        model.fit(xtr, y_train);
        const auto band = model.predict_interval(xte);
        coverage[m][a] +=
            stats::interval_coverage(y_test, band.lower, band.upper);
      };
      models::GpIntervalRegressor gp(core::MiscoverageAlpha{alpha});
      run(0, gp);
      auto qr = models::make_quantile_pair(models::ModelKind::kLinear, core::MiscoverageAlpha{alpha});
      run(1, *qr);
      conformal::SplitConfig cp_config;
      cp_config.split.seed = 42 + static_cast<std::uint64_t>(split);
      conformal::SplitConformalRegressor cp(
          core::MiscoverageAlpha{alpha}, models::make_point_regressor(models::ModelKind::kLinear),
          cp_config);
      run(2, cp);
      conformal::CqrConfig cqr_config;
      cqr_config.split.seed = 42 + static_cast<std::uint64_t>(split);
      conformal::ConformalizedQuantileRegressor cqr(
          core::MiscoverageAlpha{alpha}, models::make_quantile_pair(models::ModelKind::kLinear, core::MiscoverageAlpha{alpha}),
          cqr_config);
      run(3, cqr);
    }
  }

  std::printf(
      "coverage sweep @ %s, averaged over %d random 117/39 splits\n\n",
      core::describe(scenario).c_str(), n_splits);
  core::TextTable table({"alpha", "target", "GP", "QR LR", "CP LR", "CQR LR"});
  for (std::size_t a = 0; a < alphas.size(); ++a) {
    std::vector<std::string> row = {
        core::format_double(alphas[a], 2),
        core::format_double((1.0 - alphas[a]) * 100.0, 0) + "%"};
    for (std::size_t m = 0; m < 4; ++m) {
      row.push_back(core::format_double(
          coverage[m][a] / n_splits * 100.0, 1));
    }
    table.add_row(row);
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "GP and raw QR have no test-set guarantee; CP and CQR track the\n"
      "target by construction (Eq. 6 of the paper). CQR additionally adapts\n"
      "its width per chip; see examples/quickstart for a per-chip view.\n");
  return 0;
}
