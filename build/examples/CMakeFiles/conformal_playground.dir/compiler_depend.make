# Empty compiler generated dependencies file for conformal_playground.
# This may be replaced when dependencies are built.
