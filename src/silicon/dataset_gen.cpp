#include "silicon/dataset_gen.hpp"

#include <stdexcept>

namespace vmincqr::silicon {

GeneratedDataset generate_dataset(const GeneratorConfig& config) {
  if (config.n_chips == 0) {
    throw std::invalid_argument("generate_dataset: n_chips must be > 0");
  }
  if (config.read_points_hours.empty() || config.vmin_temperatures_c.empty()) {
    throw std::invalid_argument(
        "generate_dataset: need at least one read point and temperature");
  }

  rng::Rng root(config.seed);
  rng::Rng catalogue_rng = root.fork();
  rng::Rng population_rng = root.fork();
  rng::Rng measurement_rng = root.fork();

  const ProcessModel process(config.process);
  const AgingModel aging(config.aging);
  const VminModel vmin_model(config.vmin, config.aging);
  const ParametricTestBank parametric(config.parametric, catalogue_rng);
  const MonitorBank monitors(config.monitors, catalogue_rng);

  std::vector<ChipLatent> latents =
      process.sample_population(config.n_chips, population_rng);

  // Assemble the feature catalogue.
  std::vector<data::FeatureInfo> info = parametric.feature_info();
  for (double t : config.read_points_hours) {
    auto monitor_info = monitors.feature_info(t);
    info.insert(info.end(), monitor_info.begin(), monitor_info.end());
  }
  const std::size_t n_features = info.size();

  linalg::Matrix features(config.n_chips, n_features);
  std::vector<data::LabelSeries> labels;
  for (double t : config.read_points_hours) {
    for (double temp : config.vmin_temperatures_c) {
      labels.push_back({t, temp, linalg::Vector(config.n_chips, 0.0)});
    }
  }

  for (std::size_t chip_idx = 0; chip_idx < config.n_chips; ++chip_idx) {
    rng::Rng chip_rng = measurement_rng.fork();
    const ChipLatent& chip = latents[chip_idx];

    std::size_t col = 0;
    for (double v : parametric.measure(chip, chip_rng)) {
      features(chip_idx, col++) = v;
    }
    for (double t : config.read_points_hours) {
      for (double v : monitors.measure(chip, aging, core::Hours{t}, chip_rng)) {
        features(chip_idx, col++) = v;
      }
    }
    if (col != n_features) {
      throw std::logic_error("generate_dataset: feature column mismatch");
    }

    std::size_t series_idx = 0;
    for (double t : config.read_points_hours) {
      for (double temp : config.vmin_temperatures_c) {
        labels[series_idx++].values[chip_idx] = vmin_model.measure_vmin(
            chip, core::Hours{t}, core::Celsius{temp}, chip_rng);
      }
    }
  }

  GeneratedDataset out{
      data::Dataset(std::move(features), std::move(info), std::move(labels)),
      std::move(latents), config};
  return out;
}

}  // namespace vmincqr::silicon
