// Machine-readable model benchmarks backing Table I's "computational
// efficiency" column — per-model fit/predict wall-clock and throughput at
// the paper's data scale (117 training chips, 8 features), plus the serve
// path: artifact encode/decode and VminPredictor::predict_batch.
//
// Unlike the figure/table benches this emits JSON, not prose: the output
// lands in BENCH_models.json (or argv[1]) so CI and regression tooling can
// diff numbers across commits without scraping text.
//
// Usage: perf_models [output.json]   (default: BENCH_models.json)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "artifact/bundle.hpp"
#include "artifact/model_codec.hpp"
#include "conformal/cqr.hpp"
#include "linalg/kernels.hpp"
#include "models/factory.hpp"
#include "rng/rng.hpp"
#include "serve/vmin_predictor.hpp"

using namespace vmincqr;

namespace {

constexpr std::size_t kTrainRows = 117;  // paper scale after the CV split
constexpr std::size_t kFeatures = 8;
constexpr std::size_t kBatchRows = 156;  // one full population per batch

struct Problem {
  linalg::Matrix x;
  linalg::Vector y;
};

Problem make_problem(std::size_t n, std::size_t d) {
  rng::Rng rng(7);
  Problem p{linalg::Matrix(n, d), linalg::Vector(n)};
  for (std::size_t i = 0; i < n; ++i) {
    double signal = 0.0;
    for (std::size_t c = 0; c < d; ++c) {
      p.x(i, c) = rng.normal();
      signal += (c % 3 == 0 ? 0.3 : 0.05) * p.x(i, c);
    }
    p.y[i] = 0.55 + 0.01 * signal + rng.normal(0.0, 0.003);
  }
  return p;
}

/// Median wall-clock seconds over `reps` runs of `fn` (one warmup first).
double median_seconds(int reps, const std::function<void()>& fn) {
  fn();  // warmup: first run pays allocator/cache setup
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    const auto stop = std::chrono::steady_clock::now();
    samples.push_back(std::chrono::duration<double>(stop - start).count());
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

struct ModelTiming {
  std::string name;
  double fit_ms = 0.0;
  double predict_us = 0.0;
  double predict_rows_per_s = 0.0;
};

ModelTiming bench_model(models::ModelKind kind, const Problem& train,
                        const Problem& batch) {
  ModelTiming timing;
  timing.name = models::model_name(kind);

  timing.fit_ms = 1e3 * median_seconds(5, [&] {
    auto model = models::make_point_regressor(kind);
    model->fit(train.x, train.y);
  });

  auto fitted = models::make_point_regressor(kind);
  fitted->fit(train.x, train.y);
  const double predict_s = median_seconds(50, [&] {
    volatile double sink = fitted->predict(batch.x)[0];
    (void)sink;
  });
  timing.predict_us = 1e6 * predict_s;
  timing.predict_rows_per_s = static_cast<double>(batch.x.rows()) / predict_s;
  return timing;
}

std::string json_number(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.6g", value);
  return buffer;
}

struct KernelTiming {
  std::string name;
  double exact_us = 0.0;
  double fast_us = 0.0;
};

/// Micro-times the dense kernels on both accuracy tiers at MLP-forward /
/// GP-assembly shapes, so the per-kernel cost of each tier is a tracked
/// number rather than folklore. Sizes match the hot callers: gemm at the
/// MLP chunk shape (256 x 13 -> 16 hidden), row_sq_dists at one GP kernel
/// row against 2000 training rows.
std::vector<KernelTiming> bench_kernels() {
  constexpr std::size_t kM = 256, kK = 13, kN = 16, kGpRows = 2000;
  rng::Rng rng(11);
  std::vector<double> a(kM * kK), b(kK * kN), bt(kM * kN), x(kK);
  std::vector<double> gp(kGpRows * kK), norms(kGpRows);
  for (auto& v : a) v = rng.normal();
  for (auto& v : b) v = rng.normal();
  for (auto& v : bt) v = rng.normal();
  for (auto& v : x) v = rng.normal();
  for (auto& v : gp) v = rng.normal();
  std::vector<double> c(kM * kN), g(kK * kN), y(kM), d(kGpRows);
  for (std::size_t j = 0; j < kGpRows; ++j) {
    norms[j] = linalg::dot_kernel(kK, gp.data() + j * kK, gp.data() + j * kK,
                                  linalg::KernelPolicy::kFast);
  }

  const auto time_both =
      [](const std::function<void(linalg::KernelPolicy)>& fn) {
        const double exact_s = median_seconds(
            200, [&] { fn(linalg::KernelPolicy::kBitExact); });
        const double fast_s =
            median_seconds(200, [&] { fn(linalg::KernelPolicy::kFast); });
        return std::pair<double, double>(1e6 * exact_s, 1e6 * fast_s);
      };

  std::vector<KernelTiming> out;
  const auto add = [&out](const std::string& name,
                          std::pair<double, double> us) {
    out.push_back({name, us.first, us.second});
  };
  add("gemm_256x13x16", time_both([&](linalg::KernelPolicy p) {
        std::fill(c.begin(), c.end(), 0.0);
        linalg::gemm(kM, kK, kN, a.data(), kK, b.data(), kN, c.data(), kN, p);
      }));
  add("gemm_at_256x13x16", time_both([&](linalg::KernelPolicy p) {
        std::fill(g.begin(), g.end(), 0.0);
        linalg::gemm_at(kM, kK, kN, a.data(), kK, bt.data(), kN, g.data(), kN,
                        p);
      }));
  add("gemv_256x13", time_both([&](linalg::KernelPolicy p) {
        linalg::gemv(kM, kK, a.data(), kK, x.data(), y.data(), p);
      }));
  add("row_sq_dists_1x2000x13", time_both([&](linalg::KernelPolicy p) {
        const double* n_ptr =
            p == linalg::KernelPolicy::kFast ? norms.data() : nullptr;
        linalg::row_sq_dists(gp.data(), kK, gp.data(), kK, kGpRows, n_ptr,
                             d.data(), p);
      }));
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_models.json";
  const Problem train = make_problem(kTrainRows, kFeatures);
  const Problem batch = make_problem(kBatchRows, kFeatures);

  std::vector<ModelTiming> timings;
  for (const models::ModelKind kind : models::point_model_zoo()) {
    timings.push_back(bench_model(kind, train, batch));
    std::printf("%-18s fit %8.3f ms   predict %8.1f us  (%.3g rows/s)\n",
                timings.back().name.c_str(), timings.back().fit_ms,
                timings.back().predict_us, timings.back().predict_rows_per_s);
  }

  // --- serve path: CQR linear -> artifact -> batched predictor -------------
  const core::MiscoverageAlpha alpha{0.1};
  auto cqr = std::make_unique<conformal::ConformalizedQuantileRegressor>(
      alpha, models::make_quantile_pair(models::ModelKind::kLinear, alpha));
  cqr->fit(train.x, train.y);

  artifact::VminBundle bundle;
  bundle.label = cqr->name();
  for (std::size_t c = 0; c < kFeatures; ++c) {
    bundle.dataset_columns.push_back(c);
    bundle.selected_features.push_back(c);
  }
  bundle.predictor = std::move(cqr);

  const double encode_s =
      median_seconds(50, [&] { (void)artifact::encode_bundle(bundle); });
  const auto bytes = artifact::encode_bundle(bundle);
  const double decode_s =
      median_seconds(50, [&] { (void)artifact::decode_bundle(bytes); });

  const auto predictor = serve::VminPredictor::from_bytes(bytes);
  const double serve_s = median_seconds(50, [&] {
    volatile double sink = predictor.predict_batch(batch.x)[0].lower;
    (void)sink;
  });
  const double serve_rows_per_s = static_cast<double>(kBatchRows) / serve_s;
  std::printf(
      "serve (%s): predict_batch %8.1f us (%.3g rows/s), "
      "encode %.1f us, decode %.1f us, artifact %zu bytes\n",
      bundle.label.c_str(), 1e6 * serve_s, serve_rows_per_s, 1e6 * encode_s,
      1e6 * decode_s, bytes.size());

  // --- dense micro-kernels: per-kernel, per-tier wall-clock ----------------
  const std::vector<KernelTiming> kernels = bench_kernels();
  for (const KernelTiming& k : kernels) {
    std::printf("kernel %-24s exact %8.2f us   fast %8.2f us\n",
                k.name.c_str(), k.exact_us, k.fast_us);
  }

  // --- emit JSON ------------------------------------------------------------
  std::string json = "{\n";
  json += "  \"scale\": {\"n_train\": " + std::to_string(kTrainRows) +
          ", \"n_features\": " + std::to_string(kFeatures) +
          ", \"batch_rows\": " + std::to_string(kBatchRows) + "},\n";
  json += "  \"models\": [\n";
  for (std::size_t i = 0; i < timings.size(); ++i) {
    const ModelTiming& t = timings[i];
    json += "    {\"name\": \"" + t.name + "\", \"fit_ms\": " +
            json_number(t.fit_ms) + ", \"predict_us\": " +
            json_number(t.predict_us) + ", \"predict_rows_per_s\": " +
            json_number(t.predict_rows_per_s) + "}";
    json += (i + 1 < timings.size()) ? ",\n" : "\n";
  }
  json += "  ],\n";
  json += "  \"kernels\": [\n";
  for (std::size_t i = 0; i < kernels.size(); ++i) {
    const KernelTiming& k = kernels[i];
    json += "    {\"name\": \"" + k.name + "\", \"exact_us\": " +
            json_number(k.exact_us) + ", \"fast_us\": " +
            json_number(k.fast_us) + "}";
    json += (i + 1 < kernels.size()) ? ",\n" : "\n";
  }
  json += "  ],\n";
  json += "  \"serve\": {\"predictor\": \"" + bundle.label +
          "\", \"predict_batch_us\": " + json_number(1e6 * serve_s) +
          ", \"rows_per_s\": " + json_number(serve_rows_per_s) +
          ", \"encode_us\": " + json_number(1e6 * encode_s) +
          ", \"decode_us\": " + json_number(1e6 * decode_s) +
          ", \"artifact_bytes\": " + std::to_string(bytes.size()) + "}\n";
  json += "}\n";

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fputs(json.c_str(), out);
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
