// Experiment runner: the paper's evaluation protocol (Sec. IV-B).
//
// 4-fold cross-validation over the chip population; per fold, models are
// trained on the training chips (with feature selection computed on the
// training fold only) and evaluated on the held-out chips. For CQR, 75% of
// the training fold trains the quantile pair and 25% calibrates, with the
// same split seed shared by every interval method ("to ensure a fair
// comparison, we use the same random seed for all Vmin interval
// predictors").
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "parallel/parallel_for.hpp"

namespace vmincqr::core {

struct ExperimentConfig {
  PipelineConfig pipeline;
  std::size_t n_folds = 4;          ///< the paper's 4-fold CV
  std::uint64_t cv_seed = 2024;
  std::size_t region_cfs_features = 8;  ///< CFS width for LR/GP/NN intervals
};

// ---------------------------------------------------------------------------
// Point prediction (Fig. 2).

struct PointModelScore {
  models::ModelKind model;
  std::string model_name;
  double r2 = 0.0;        ///< mean test R^2 across folds, at the best k
  double rmse = 0.0;      ///< mean test RMSE (volts) at the best k
  std::size_t best_k = 0; ///< CFS feature count that won the sweep
};

/// Runs the Fig. 2 protocol for one scenario: every model in `zoo`, CFS
/// sweep per cfs_sweep_for_model, best test score reported (the paper's
/// "pick 1 to 10 features ... report the best testing scores").
std::vector<PointModelScore> evaluate_point_models(
    const data::Dataset& ds, const Scenario& scenario,
    const ExperimentConfig& config,
    const std::vector<models::ModelKind>& zoo = models::point_model_zoo());

// ---------------------------------------------------------------------------
// Region prediction (Table III).

struct RegionMethodSpec {
  enum class Family : std::uint8_t { kGp, kQr, kCqr };
  Family family = Family::kCqr;
  models::ModelKind base = models::ModelKind::kLinear;  ///< ignored for kGp

  [[nodiscard]] std::string label() const;
};

/// The nine Table III rows: GP, QR x {LR, NN, XGB, CatBoost}, CQR x same.
std::vector<RegionMethodSpec> table3_methods();

struct RegionMethodScore {
  std::string method;
  double mean_length_mv = 0.0;  ///< average interval length, millivolts
  double coverage_pct = 0.0;    ///< empirical coverage of true Vmin, percent
};

/// Cross-validated interval metrics for one method on one scenario.
RegionMethodScore evaluate_region_method(const data::Dataset& ds,
                                         const Scenario& scenario,
                                         const RegionMethodSpec& spec,
                                         const ExperimentConfig& config);

/// All Table III rows for one scenario.
std::vector<RegionMethodScore> evaluate_region_methods(
    const data::Dataset& ds, const Scenario& scenario,
    const ExperimentConfig& config);

// ---------------------------------------------------------------------------
// Utilities.

/// Runs f(0..n-1) on the process thread pool and collects the results in
/// order — how the bench harnesses parallelize whole fit_screen pipelines
/// across scenarios. The mapped function must be thread-safe (all
/// experiment entry points above are: they share only immutable data) and
/// T default-constructible. Each index is its own chunk, so results are
/// the same objects a sequential loop would produce.
template <typename T>
std::vector<T> parallel_map(std::size_t n,
                            const std::function<T(std::size_t)>& f) {
  std::vector<T> out(n);
  parallel::parallel_for(n, /*grain=*/1,
                         [&](std::size_t begin, std::size_t end) {
                           for (std::size_t i = begin; i < end; ++i) {
                             out[i] = f(i);
                           }
                         });
  return out;
}

}  // namespace vmincqr::core
