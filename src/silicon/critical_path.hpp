// Critical-path structure shared by the Vmin response surface and the
// in-situ CPD monitors.
//
// Physically, SCAN Vmin is worst-path limited: the chip fails when the
// slowest of its speed-critical paths stops meeting timing, so
//   Vmin ~ max_p  f(path p's sensitivities, process, aging).
// This max over paths is the dominant *nonlinearity* of the response — the
// reason tree ensembles can beat linear models on real silicon (paper
// Sec. IV-D/IV-F) — and it is exactly what in-situ Critical Path Delay
// monitors are designed to measure (each CPD sensor replicates one critical
// path). Sharing one fixed path table between VminModel and MonitorBank
// reproduces that causal link.
#pragma once

#include <cstddef>
#include <vector>

#include "silicon/process.hpp"

namespace vmincqr::silicon {

/// Fixed sensitivities of one speed-critical path. Units: the path "score"
/// is in volts of required supply margin.
struct CriticalPath {
  double offset;      ///< nominal margin of this path relative to the median
  double w_vth;       ///< sensitivity to (dvth + aging shift)
  double w_leff;      ///< sensitivity to channel-length variation
  double w_mismatch;  ///< sensitivity to local mismatch
  double aging_gain;  ///< how strongly stress-induced dVth loads this path
};

/// The chip's speed-limiting path set (fixed across the population — all
/// chips share one design). Offsets spread a few mV so that different
/// process corners bind different paths.
const std::vector<CriticalPath>& standard_critical_paths();

/// Path p's required-margin score (volts) for a chip with an accumulated
/// aging shift `age_dvth` (volts).
double path_score(const CriticalPath& path, const ChipLatent& chip,
                  double age_dvth);

/// The binding (worst) path score: max_p path_score(p). This is the
/// nonlinear core of the Vmin response.
double worst_path_score(const std::vector<CriticalPath>& paths,
                        const ChipLatent& chip, double age_dvth);

}  // namespace vmincqr::silicon
