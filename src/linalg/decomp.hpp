// Matrix decompositions and solvers: Cholesky (SPD), Householder QR
// least-squares, and convenience wrappers used by the regression models.
#pragma once

#include <optional>

#include "linalg/matrix.hpp"

namespace vmincqr::linalg {

/// Lower-triangular Cholesky factor of a symmetric positive-definite matrix.
///
/// Returns std::nullopt if the matrix is not (numerically) positive definite.
/// Only the lower triangle of `a` is read.
std::optional<Matrix> cholesky(const Matrix& a);

/// Cholesky with additive diagonal jitter: retries with jitter
/// {0, eps, 10 eps, ...} up to `max_tries` times until factorization
/// succeeds. Throws std::runtime_error if it never succeeds.
/// Used by the Gaussian-process model where the kernel matrix may be
/// numerically semi-definite.
Matrix cholesky_jittered(const Matrix& a, double initial_jitter = 1e-10,
                         int max_tries = 10);

/// Solves L x = b where L is lower triangular. Throws on mismatch.
Vector forward_substitute(const Matrix& l, const Vector& b);

/// Solves L x = b where b is row `row` of `b_rows`, writing into `*x`
/// (resized on first use, reused afterwards). The hot-path variant of
/// forward_substitute: it neither copies the row out of `b_rows` nor
/// returns a fresh vector, so per-row solves inside batched predict loops
/// can run against one hoisted scratch buffer per chunk.
void forward_substitute_row(const Matrix& l, const Matrix& b_rows,
                            std::size_t row, Vector* x);

/// Solves L^T x = b where L is lower triangular. Throws on mismatch.
Vector backward_substitute_transposed(const Matrix& l, const Vector& b);

/// Solves A x = b for SPD A via Cholesky. Throws std::runtime_error if A is
/// not positive definite.
Vector solve_spd(const Matrix& a, const Vector& b);

/// Solves A X = B for SPD A, column by column.
Matrix solve_spd(const Matrix& a, const Matrix& b);

/// Minimum-norm least squares: minimizes ||A x - b||_2 via Householder QR
/// with column pivoting; rank-deficient columns get zero coefficients.
/// Throws std::invalid_argument on dimension mismatch.
Vector least_squares(const Matrix& a, const Vector& b);

/// Ridge regression solve: (A^T A + lambda I) x = A^T b, lambda >= 0.
/// With lambda == 0 this falls back to least_squares (QR), which is
/// rank-safe. Throws std::invalid_argument if lambda < 0.
Vector ridge_solve(const Matrix& a, const Vector& b, double lambda);

/// Log-determinant of an SPD matrix given its Cholesky factor L:
/// log det(A) = 2 * sum_i log L_ii.
double log_det_from_cholesky(const Matrix& l);

}  // namespace vmincqr::linalg
