#include "silicon/parametric.hpp"

#include <cmath>
#include <stdexcept>

namespace vmincqr::silicon {

namespace {

const char* family_tag(ParametricFamily f) {
  switch (f) {
    case ParametricFamily::kIddq:
      return "iddq";
    case ParametricFamily::kTripIdd:
      return "trip_idd";
    case ParametricFamily::kLeakage:
      return "leak";
    case ParametricFamily::kVthProbe:
      return "vth";
    case ParametricFamily::kSpeed:
      return "speed";
  }
  return "par";
}

// Temperature acceleration of leakage-type quantities relative to 25C.
double leak_temp_factor(double temp_c) {
  // Roughly x8 from 25C to 125C, /8 from 25C to -45C (Arrhenius-ish).
  return std::exp((temp_c - 25.0) / 48.0);
}

}  // namespace

ParametricTestBank::ParametricTestBank(ParametricConfig config,
                                       rng::Rng& catalogue_rng)
    : config_(config) {
  if (config_.features_per_temperature == 0) {
    throw std::invalid_argument("ParametricTestBank: zero features");
  }
  if (config_.temperatures_c.empty()) {
    throw std::invalid_argument("ParametricTestBank: no temperatures");
  }
  if (config_.weak_fraction < 0.0 || config_.weak_fraction > 1.0) {
    throw std::invalid_argument("ParametricTestBank: weak_fraction outside [0,1]");
  }

  const ParametricFamily families[] = {
      ParametricFamily::kIddq, ParametricFamily::kTripIdd,
      ParametricFamily::kLeakage, ParametricFamily::kVthProbe,
      ParametricFamily::kSpeed};

  specs_.reserve(config_.features_per_temperature *
                 config_.temperatures_c.size());
  for (double temp : config_.temperatures_c) {
    for (std::size_t i = 0; i < config_.features_per_temperature; ++i) {
      ParametricFeatureSpec spec;
      spec.family = families[i % std::size(families)];
      spec.temperature_c = temp;
      spec.name = std::string("par_") + family_tag(spec.family) + "_T" +
                  std::to_string(static_cast<int>(temp)) + "_" +
                  std::to_string(i);
      const bool weak = catalogue_rng.bernoulli(config_.weak_fraction);
      const double strength = weak ? 0.08 : 1.0;
      spec.noise_rel =
          weak ? config_.weak_noise_scale : config_.noise_scale;
      switch (spec.family) {
        case ParametricFamily::kIddq:
        case ParametricFamily::kLeakage:
          spec.base = catalogue_rng.lognormal(std::log(1e-3), 0.5);
          spec.load_vth = -catalogue_rng.uniform(8.0, 20.0) * strength;
          spec.load_leff = catalogue_rng.normal(0.0, 1.0) * strength;
          spec.load_leak = catalogue_rng.uniform(0.5, 1.0) * strength;
          spec.load_mismatch = catalogue_rng.uniform(0.0, 0.05) * strength;
          // Defective chips draw anomalous quiescent current through the
          // defect site; the signature strength varies per test domain.
          spec.load_defect = catalogue_rng.uniform(0.1, 0.5) * strength;
          break;
        case ParametricFamily::kTripIdd:
          spec.base = catalogue_rng.lognormal(std::log(0.1), 0.3);
          spec.load_vth = -catalogue_rng.uniform(1.0, 4.0) * strength;
          spec.load_leff = catalogue_rng.normal(0.0, 0.8) * strength;
          spec.load_leak = catalogue_rng.uniform(0.0, 0.2) * strength;
          spec.load_mismatch = catalogue_rng.uniform(0.0, 0.05) * strength;
          break;
        case ParametricFamily::kVthProbe:
          spec.base = 0.32 + catalogue_rng.normal(0.0, 0.02);
          spec.load_vth = catalogue_rng.uniform(0.7, 1.0) * strength;
          spec.load_leff = catalogue_rng.normal(0.0, 0.1) * strength;
          spec.load_leak = 0.0;
          spec.load_mismatch = catalogue_rng.uniform(0.0, 0.02) * strength;
          break;
        case ParametricFamily::kSpeed:
          spec.base = catalogue_rng.lognormal(std::log(1.0), 0.2);
          spec.load_vth = catalogue_rng.uniform(1.5, 3.5) * strength;
          spec.load_leff = catalogue_rng.uniform(0.5, 2.0) * strength;
          spec.load_leak = 0.0;
          spec.load_mismatch = catalogue_rng.uniform(0.0, 0.1) * strength;
          break;
      }
      specs_.push_back(std::move(spec));
    }
  }
}

std::vector<double> ParametricTestBank::measure(const ChipLatent& chip,
                                                rng::Rng& meas_rng) const {
  std::vector<double> out;
  out.reserve(specs_.size());
  for (const auto& spec : specs_) {
    double value = 0.0;
    const double log_leak = std::log(chip.leak_corner);
    switch (spec.family) {
      case ParametricFamily::kIddq:
      case ParametricFamily::kLeakage: {
        // Multiplicative (log-linear) response; strongly temperature
        // accelerated as real leakage is.
        const double log_v = std::log(spec.base) +
                             std::log(leak_temp_factor(spec.temperature_c)) +
                             spec.load_vth * chip.dvth +
                             spec.load_leff * chip.dleff +
                             spec.load_leak * log_leak +
                             spec.load_mismatch * chip.mismatch +
                             spec.load_defect * chip.defect;
        value = std::exp(log_v);
        break;
      }
      case ParametricFamily::kTripIdd:
      case ParametricFamily::kSpeed: {
        value = spec.base * (1.0 + spec.load_vth * chip.dvth +
                             spec.load_leff * chip.dleff +
                             spec.load_leak * log_leak * 0.1 +
                             spec.load_mismatch * chip.mismatch);
        break;
      }
      case ParametricFamily::kVthProbe: {
        value = spec.base + spec.load_vth * chip.dvth +
                spec.load_leff * chip.dleff * 0.05 +
                spec.load_mismatch * chip.mismatch * 0.01;
        break;
      }
    }
    value *= 1.0 + meas_rng.normal(0.0, spec.noise_rel);
    out.push_back(value);
  }
  return out;
}

std::vector<data::FeatureInfo> ParametricTestBank::feature_info() const {
  std::vector<data::FeatureInfo> info;
  info.reserve(specs_.size());
  for (const auto& spec : specs_) {
    info.push_back({spec.name, data::FeatureType::kParametric,
                    spec.temperature_c, /*read_point_hours=*/0.0});
  }
  return info;
}

}  // namespace vmincqr::silicon
