// Unit + property tests for descriptive statistics, quantiles (including the
// conformal quantile), distributions, and evaluation metrics.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "rng/rng.hpp"
#include "stats/descriptive.hpp"
#include "stats/distributions.hpp"
#include "stats/metrics.hpp"
#include "stats/quantile.hpp"

namespace vmincqr::stats {
namespace {

TEST(Descriptive, MeanVarianceStddev) {
  std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(v), 2.5);
  EXPECT_DOUBLE_EQ(variance(v), 1.25);
  EXPECT_DOUBLE_EQ(sample_variance(v), 5.0 / 3.0);
  EXPECT_DOUBLE_EQ(stddev(v), std::sqrt(1.25));
  EXPECT_THROW(mean({}), std::invalid_argument);
  EXPECT_THROW(sample_variance({1.0}), std::invalid_argument);
}

TEST(Descriptive, PearsonPerfectAndAnti) {
  std::vector<double> a{1.0, 2.0, 3.0};
  EXPECT_NEAR(pearson(a, {2.0, 4.0, 6.0}), 1.0, 1e-12);
  EXPECT_NEAR(pearson(a, {3.0, 2.0, 1.0}), -1.0, 1e-12);
}

TEST(Descriptive, PearsonConstantInputIsZero) {
  EXPECT_DOUBLE_EQ(pearson({1.0, 1.0, 1.0}, {1.0, 2.0, 3.0}), 0.0);
}

TEST(Descriptive, PearsonValidation) {
  EXPECT_THROW(pearson({1.0}, {1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(pearson({}, {}), std::invalid_argument);
}

TEST(Descriptive, MinMax) {
  std::vector<double> v{3.0, -1.0, 7.0};
  EXPECT_DOUBLE_EQ(min_value(v), -1.0);
  EXPECT_DOUBLE_EQ(max_value(v), 7.0);
}

TEST(Quantile, LinearInterpolation) {
  std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile_linear(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile_linear(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile_linear(v, 0.5), 2.5);
  EXPECT_THROW(quantile_linear(v, 1.5), std::invalid_argument);
  EXPECT_THROW(quantile_linear({}, 0.5), std::invalid_argument);
}

TEST(Quantile, HigherOrderStatistic) {
  std::vector<double> v{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(quantile_higher(v, 0.25), 10.0);
  EXPECT_DOUBLE_EQ(quantile_higher(v, 0.26), 20.0);
  EXPECT_DOUBLE_EQ(quantile_higher(v, 1.0), 40.0);
}

TEST(Quantile, ConformalQuantileMatchesHandComputation) {
  // M = 9, alpha = 0.1: rank = ceil(10 * 0.9) = 9 -> 9th smallest.
  std::vector<double> scores{1, 2, 3, 4, 5, 6, 7, 8, 9};
  EXPECT_DOUBLE_EQ(conformal_quantile(scores, core::MiscoverageAlpha{0.1}), 9.0);
  // M = 19, alpha = 0.1: rank = ceil(20 * 0.9) = 18.
  std::vector<double> s19(19);
  for (std::size_t i = 0; i < 19; ++i) s19[i] = static_cast<double>(i + 1);
  EXPECT_DOUBLE_EQ(conformal_quantile(s19, core::MiscoverageAlpha{0.1}), 18.0);
}

TEST(Quantile, ConformalQuantileInfiniteWhenTooFewSamples) {
  // M = 5, alpha = 0.1: ceil(6 * 0.9) = 6 > 5 -> infinite interval needed.
  std::vector<double> scores{1, 2, 3, 4, 5};
  EXPECT_TRUE(std::isinf(conformal_quantile(scores, core::MiscoverageAlpha{0.1})));
}

TEST(Quantile, ConformalQuantileNearAlphaOne) {
  std::vector<double> scores{3.0, 1.0, 2.0};
  // alpha -> 1: rank = ceil((M+1)(1-alpha)) = 1 -> the minimum score.
  // (alpha = 1 exactly is no longer representable: MiscoverageAlpha rejects
  // the closed endpoints at construction.)
  EXPECT_DOUBLE_EQ(conformal_quantile(scores, core::MiscoverageAlpha{0.99}),
                   1.0);
}

TEST(Quantile, MinCalibrationSize) {
  // alpha = 0.1 -> smallest M with ceil((M+1)*0.9) <= M is M = 9.
  EXPECT_EQ(min_calibration_size(core::MiscoverageAlpha{0.1}), 9u);
  EXPECT_EQ(min_calibration_size(core::MiscoverageAlpha{0.5}), 1u);
  EXPECT_EQ(min_calibration_size(core::MiscoverageAlpha{0.99}), 1u);
}

TEST(Quantile, ConformalQuantileValidation) {
  EXPECT_THROW(conformal_quantile({}, core::MiscoverageAlpha{0.1}),
               std::invalid_argument);
  // Out-of-range alpha is rejected at the type boundary now.
  EXPECT_THROW(core::MiscoverageAlpha{-0.1}, std::invalid_argument);
}

TEST(Distributions, NormalCdfKnownValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.96), 0.9750021, 1e-6);
  EXPECT_NEAR(normal_cdf(-1.96), 0.0249979, 1e-6);
}

TEST(Distributions, QuantileInvertsCdf) {
  for (double p : {0.001, 0.025, 0.05, 0.3, 0.5, 0.7, 0.95, 0.975, 0.999}) {
    EXPECT_NEAR(normal_cdf(normal_quantile(p)), p, 1e-9) << "p=" << p;
  }
  EXPECT_THROW(normal_quantile(0.0), std::invalid_argument);
  EXPECT_THROW(normal_quantile(1.0), std::invalid_argument);
}

TEST(Distributions, QuantileSymmetry) {
  EXPECT_NEAR(normal_quantile(0.05), -normal_quantile(0.95), 1e-9);
  EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-9);
}

TEST(Metrics, RSquaredPerfectAndMeanPredictor) {
  std::vector<double> truth{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(r_squared(truth, truth), 1.0);
  std::vector<double> mean_pred{2.0, 2.0, 2.0};
  EXPECT_DOUBLE_EQ(r_squared(truth, mean_pred), 0.0);
}

TEST(Metrics, RSquaredConstantTruth) {
  EXPECT_DOUBLE_EQ(r_squared({2.0, 2.0}, {2.0, 2.0}), 1.0);
  EXPECT_DOUBLE_EQ(r_squared({2.0, 2.0}, {1.0, 3.0}), 0.0);
}

TEST(Metrics, RSquaredConstantTruthWithRoundingNoiseIsBounded) {
  // The mean of {0.1, 0.1, 0.1} is not exactly 0.1 in binary floating
  // point, so ss_tot lands at rounding-noise scale (~1e-34) instead of
  // exactly zero. Before the epsilon guard, r_squared divided by that
  // noise and returned values on the order of -1e+32.
  const std::vector<double> truth{0.1, 0.1, 0.1};
  EXPECT_DOUBLE_EQ(r_squared(truth, {0.2, 0.2, 0.2}), 0.0);
  EXPECT_DOUBLE_EQ(r_squared(truth, truth), 1.0);
}

TEST(Metrics, RmseAndMae) {
  std::vector<double> truth{0.0, 0.0}, pred{3.0, -4.0};
  EXPECT_DOUBLE_EQ(rmse(truth, pred), std::sqrt(12.5));
  EXPECT_DOUBLE_EQ(mae(truth, pred), 3.5);
  EXPECT_THROW(rmse({1.0}, {1.0, 2.0}), std::invalid_argument);
}

TEST(Metrics, CoverageCountsInclusiveBounds) {
  std::vector<double> truth{1.0, 2.0, 3.0, 4.0};
  std::vector<double> lo{1.0, 2.5, 2.0, 0.0};
  std::vector<double> hi{1.0, 3.0, 4.0, 3.9};
  // covered: 1.0 in [1,1] yes; 2.0 in [2.5,3] no; 3.0 in [2,4] yes;
  // 4.0 in [0,3.9] no.
  EXPECT_DOUBLE_EQ(interval_coverage(truth, lo, hi), 0.5);
}

TEST(Metrics, MeanIntervalLength) {
  EXPECT_DOUBLE_EQ(mean_interval_length({0.0, 1.0}, {2.0, 5.0}), 3.0);
}

TEST(Metrics, PinballLossMinimizedAtQuantile) {
  // For a sample, the constant minimizing mean pinball loss at level q is
  // the empirical q-quantile — verify by scanning candidates.
  rng::Rng rng(21);
  std::vector<double> y = rng.normal_vector(400);
  for (double q : {0.1, 0.5, 0.9}) {
    const double best_point = quantile_linear(y, q);
    const double loss_at_quantile =
        pinball_loss(y, std::vector<double>(y.size(), best_point), q);
    for (double delta : {-0.3, -0.1, 0.1, 0.3}) {
      const double loss_other = pinball_loss(
          y, std::vector<double>(y.size(), best_point + delta), q);
      EXPECT_LE(loss_at_quantile, loss_other + 1e-12)
          << "q=" << q << " delta=" << delta;
    }
  }
}

// Property sweep: the conformal quantile never exceeds the max score and is
// monotone in (1 - alpha).
class ConformalQuantileProperty : public ::testing::TestWithParam<int> {};

TEST_P(ConformalQuantileProperty, MonotoneInCoverage) {
  rng::Rng rng(static_cast<std::uint64_t>(GetParam()));
  std::vector<double> scores = rng.normal_vector(50, 0.0, 2.0);
  double prev = -std::numeric_limits<double>::infinity();
  for (double alpha : {0.5, 0.3, 0.2, 0.1, 0.05}) {
    const double q = conformal_quantile(scores, core::MiscoverageAlpha{alpha});
    EXPECT_GE(q, prev);
    prev = q;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConformalQuantileProperty,
                         ::testing::Range(0, 10));

}  // namespace
}  // namespace vmincqr::stats
