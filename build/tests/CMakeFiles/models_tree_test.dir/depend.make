# Empty dependencies file for models_tree_test.
# This may be replaced when dependencies are built.
