file(REMOVE_RECURSE
  "CMakeFiles/predictive_test.dir/predictive_test.cpp.o"
  "CMakeFiles/predictive_test.dir/predictive_test.cpp.o.d"
  "predictive_test"
  "predictive_test.pdb"
  "predictive_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predictive_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
