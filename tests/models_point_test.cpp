// Tests for the point regressors: losses, linear (OLS + quantile), GP, MLP.
#include <gtest/gtest.h>

#include <cmath>

#include "models/factory.hpp"
#include "models/gp.hpp"
#include "models/linear.hpp"
#include "models/mlp.hpp"
#include "rng/rng.hpp"
#include "stats/descriptive.hpp"
#include "stats/metrics.hpp"
#include "stats/quantile.hpp"

namespace vmincqr::models {
namespace {

// y = 2 x0 - x1 + 0.5 + noise(sigma)
struct LinearProblem {
  Matrix x;
  Vector y;
};

LinearProblem make_linear_problem(std::size_t n, double sigma,
                                  std::uint64_t seed) {
  rng::Rng rng(seed);
  LinearProblem p{Matrix(n, 2), Vector(n)};
  for (std::size_t i = 0; i < n; ++i) {
    p.x(i, 0) = rng.normal();
    p.x(i, 1) = rng.normal();
    p.y[i] = 2.0 * p.x(i, 0) - p.x(i, 1) + 0.5 + rng.normal(0.0, sigma);
  }
  return p;
}

TEST(Loss, PinballValueAndGradient) {
  const Loss l = Loss::pinball(core::QuantileLevel{0.9});
  // y above prediction: loss = q * (y - yhat), gradient = -q.
  EXPECT_DOUBLE_EQ(l.value(2.0, 1.0), 0.9);
  EXPECT_DOUBLE_EQ(l.gradient(2.0, 1.0), -0.9);
  // y below prediction: loss = (1-q) * (yhat - y), gradient = 1-q.
  EXPECT_DOUBLE_EQ(l.value(1.0, 2.0), 0.1);
  EXPECT_NEAR(l.gradient(1.0, 2.0), 0.1, 1e-12);
  EXPECT_THROW(Loss::pinball(core::QuantileLevel{0.0}), std::invalid_argument);
  EXPECT_THROW(Loss::pinball(core::QuantileLevel{1.0}), std::invalid_argument);
}

TEST(Loss, SquaredGradient) {
  const Loss l = Loss::squared();
  EXPECT_DOUBLE_EQ(l.value(3.0, 1.0), 2.0);
  EXPECT_DOUBLE_EQ(l.gradient(3.0, 1.0), -2.0);
  EXPECT_DOUBLE_EQ(l.hessian(3.0, 1.0), 1.0);
}

TEST(LinearRegressor, RecoversCoefficientsNoiseless) {
  const auto p = make_linear_problem(60, 0.0, 1);
  LinearRegressor model;
  model.fit(p.x, p.y);
  const Vector pred = model.predict(p.x);
  EXPECT_GT(stats::r_squared(p.y, pred), 0.999999);
}

TEST(LinearRegressor, GeneralizesUnderNoise) {
  const auto train = make_linear_problem(120, 0.2, 2);
  const auto test = make_linear_problem(80, 0.2, 3);
  LinearRegressor model;
  model.fit(train.x, train.y);
  EXPECT_GT(stats::r_squared(test.y, model.predict(test.x)), 0.9);
}

TEST(LinearRegressor, ErrorsOnMisuse) {
  LinearRegressor model;
  EXPECT_THROW(model.predict(Matrix(1, 2)), std::logic_error);
  const auto p = make_linear_problem(10, 0.1, 4);
  model.fit(p.x, p.y);
  EXPECT_THROW(model.predict(Matrix(3, 5)), std::invalid_argument);
  EXPECT_THROW(model.fit(Matrix(0, 0), {}), std::invalid_argument);
  EXPECT_THROW(model.fit(p.x, Vector(3)), std::invalid_argument);
}

TEST(LinearRegressor, HandlesCollinearColumns) {
  // Duplicate column: ridge default must keep the solve stable.
  rng::Rng rng(5);
  Matrix x(50, 2);
  Vector y(50);
  for (std::size_t i = 0; i < 50; ++i) {
    x(i, 0) = rng.normal();
    x(i, 1) = x(i, 0);
    y[i] = 3.0 * x(i, 0) + rng.normal(0.0, 0.01);
  }
  LinearRegressor model;
  model.fit(x, y);
  EXPECT_GT(stats::r_squared(y, model.predict(x)), 0.99);
}

TEST(LinearRegressor, QuantileModeMatchesEmpiricalQuantileOnInterceptOnly) {
  // With a constant feature, the pinball minimizer is the empirical
  // q-quantile of y — a closed-form check of the Adam optimizer.
  rng::Rng rng(6);
  const std::size_t n = 300;
  Matrix x(n, 1, 1.0);
  Vector y = rng.normal_vector(n, 0.0, 1.0);
  for (double q : {0.1, 0.5, 0.9}) {
    LinearConfig config;
    config.loss = Loss::pinball(core::QuantileLevel{q});
    LinearRegressor model(config);
    model.fit(x, y);
    const double pred = model.predict(x)[0];
    const double target = stats::quantile_linear(y, q);
    EXPECT_NEAR(pred, target, 0.08) << "q=" << q;
  }
}

TEST(LinearRegressor, QuantileBandsOrdered) {
  const auto p = make_linear_problem(200, 0.5, 7);
  LinearConfig lo_config, hi_config;
  lo_config.loss = Loss::pinball(core::QuantileLevel{0.05});
  hi_config.loss = Loss::pinball(core::QuantileLevel{0.95});
  LinearRegressor lo(lo_config), hi(hi_config);
  lo.fit(p.x, p.y);
  hi.fit(p.x, p.y);
  const Vector lo_pred = lo.predict(p.x);
  const Vector hi_pred = hi.predict(p.x);
  std::size_t ordered = 0;
  for (std::size_t i = 0; i < p.y.size(); ++i) ordered += lo_pred[i] <= hi_pred[i];
  EXPECT_GT(ordered, p.y.size() * 95 / 100);
  // Roughly 90% of training labels inside the band.
  const double cov = stats::interval_coverage(p.y, lo_pred, hi_pred);
  EXPECT_NEAR(cov, 0.9, 0.07);
}

TEST(LinearRegressor, CloneConfigIsUnfittedSameBehaviour) {
  const auto p = make_linear_problem(50, 0.1, 8);
  LinearRegressor model;
  model.fit(p.x, p.y);
  auto clone = model.clone_config();
  EXPECT_FALSE(clone->fitted());
  clone->fit(p.x, p.y);
  const Vector a = model.predict(p.x);
  const Vector b = clone->predict(p.x);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(a[i], b[i], 1e-10);
}

TEST(LinearRegressor, RawAffineReproducesPredictExactly) {
  // The exported affine is what an on-chip accelerator would run; it must
  // match predict() on raw (unstandardized) features.
  const auto p = make_linear_problem(80, 0.2, 21);
  LinearRegressor model;
  model.fit(p.x, p.y);
  const auto affine = model.raw_affine();
  ASSERT_EQ(affine.weights.size(), 2u);
  const Vector pred = model.predict(p.x);
  for (std::size_t i = 0; i < p.y.size(); ++i) {
    EXPECT_NEAR(affine.evaluate(p.x.row(i)), pred[i], 1e-9);
  }
  // Recovers the generating coefficients on clean data.
  const auto clean = make_linear_problem(200, 0.0, 22);
  LinearRegressor exact;
  exact.fit(clean.x, clean.y);
  const auto a = exact.raw_affine();
  EXPECT_NEAR(a.weights[0], 2.0, 1e-3);
  EXPECT_NEAR(a.weights[1], -1.0, 1e-3);
  EXPECT_NEAR(a.intercept, 0.5, 1e-3);

  LinearRegressor unfitted;
  EXPECT_THROW(unfitted.raw_affine(), std::logic_error);
  EXPECT_THROW(static_cast<void>(a.evaluate({1.0})), std::invalid_argument);
}

TEST(LinearRegressor, RawAffineWorksForQuantileMode) {
  const auto p = make_linear_problem(200, 0.4, 23);
  LinearConfig config;
  config.loss = Loss::pinball(core::QuantileLevel{0.9});
  LinearRegressor model(config);
  model.fit(p.x, p.y);
  const auto affine = model.raw_affine();
  const Vector pred = model.predict(p.x);
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_NEAR(affine.evaluate(p.x.row(i)), pred[i], 1e-9);
  }
}

TEST(GaussianProcess, InterpolatesSmoothFunction) {
  const std::size_t n = 40;
  Matrix x(n, 1);
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = static_cast<double>(i) / 6.0;
    y[i] = std::sin(x(i, 0));
  }
  GaussianProcessRegressor gp;
  gp.fit(x, y);
  Matrix xq(1, 1);
  xq(0, 0) = 2.05;  // between grid points
  EXPECT_NEAR(gp.predict(xq)[0], std::sin(2.05), 0.05);
}

TEST(GaussianProcess, VarianceGrowsAwayFromData) {
  Matrix x(10, 1);
  Vector y(10);
  for (std::size_t i = 0; i < 10; ++i) {
    x(i, 0) = static_cast<double>(i);
    y[i] = std::cos(0.5 * x(i, 0));
  }
  GaussianProcessRegressor gp;
  gp.fit(x, y);
  Matrix near(1, 1), far(1, 1);
  near(0, 0) = 4.5;
  far(0, 0) = 40.0;
  const auto post_near = gp.posterior(near);
  const auto post_far = gp.posterior(far);
  EXPECT_GT(post_far.variance[0], post_near.variance[0]);
}

TEST(GaussianProcess, PicksPlausibleNoise) {
  // Pure noise: the marginal likelihood must prefer a large noise variance
  // and the posterior mean must stay near the sample mean.
  rng::Rng rng(9);
  Matrix x(60, 1);
  Vector y(60);
  for (std::size_t i = 0; i < 60; ++i) {
    x(i, 0) = rng.normal();
    y[i] = 5.0 + rng.normal();
  }
  GaussianProcessRegressor gp;
  gp.fit(x, y);
  EXPECT_GT(gp.noise_variance(), 0.05);
  Matrix xq(1, 1);
  xq(0, 0) = 0.0;
  EXPECT_NEAR(gp.predict(xq)[0], 5.0, 0.6);
}

TEST(GaussianProcess, PosteriorInLabelUnits) {
  // Labels in volts around 0.55 with mV spread: mean must come back in
  // volts, variance in volts^2.
  rng::Rng rng(10);
  Matrix x(50, 2);
  Vector y(50);
  for (std::size_t i = 0; i < 50; ++i) {
    x(i, 0) = rng.normal();
    x(i, 1) = rng.normal();
    y[i] = 0.55 + 0.01 * x(i, 0) + rng.normal(0.0, 0.002);
  }
  GaussianProcessRegressor gp;
  gp.fit(x, y);
  const auto post = gp.posterior(x);
  EXPECT_NEAR(stats::mean(post.mean), 0.55, 0.01);
  for (double v : post.variance) {
    EXPECT_GT(v, 0.0);
    EXPECT_LT(std::sqrt(v), 0.05);
  }
}

TEST(Mlp, LearnsNonlinearFunction) {
  rng::Rng rng(11);
  const std::size_t n = 200;
  Matrix x(n, 1);
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = rng.uniform(-2.0, 2.0);
    y[i] = std::abs(x(i, 0));  // not representable by a linear model
  }
  MlpConfig config;
  config.epochs = 1500;
  config.l2_penalty = 0.001;
  MlpRegressor mlp(config);
  mlp.fit(x, y);
  EXPECT_GT(stats::r_squared(y, mlp.predict(x)), 0.95);
  // Linear baseline for contrast.
  LinearRegressor lr;
  lr.fit(x, y);
  EXPECT_LT(stats::r_squared(y, lr.predict(x)), 0.3);
}

TEST(Mlp, DeterministicInSeed) {
  const auto p = make_linear_problem(60, 0.1, 12);
  MlpConfig config;
  config.epochs = 200;
  MlpRegressor a(config), b(config);
  a.fit(p.x, p.y);
  b.fit(p.x, p.y);
  const Vector pa = a.predict(p.x), pb = b.predict(p.x);
  for (std::size_t i = 0; i < pa.size(); ++i) EXPECT_DOUBLE_EQ(pa[i], pb[i]);
}

TEST(Mlp, PinballModeShiftsPredictions) {
  const auto p = make_linear_problem(150, 0.5, 13);
  MlpConfig lo_config, hi_config;
  lo_config.epochs = hi_config.epochs = 800;
  lo_config.loss = Loss::pinball(core::QuantileLevel{0.1});
  hi_config.loss = Loss::pinball(core::QuantileLevel{0.9});
  MlpRegressor lo(lo_config), hi(hi_config);
  lo.fit(p.x, p.y);
  hi.fit(p.x, p.y);
  const double mean_lo = stats::mean(lo.predict(p.x));
  const double mean_hi = stats::mean(hi.predict(p.x));
  EXPECT_LT(mean_lo, mean_hi);
}

TEST(Mlp, ValidatesConfig) {
  MlpConfig bad;
  bad.hidden_units = 0;
  EXPECT_THROW(MlpRegressor{bad}, std::invalid_argument);
  MlpConfig bad2;
  bad2.epochs = 0;
  EXPECT_THROW(MlpRegressor{bad2}, std::invalid_argument);
}

TEST(Factory, NamesAndZoos) {
  EXPECT_EQ(model_name(ModelKind::kLinear), "Linear Regression");
  EXPECT_EQ(model_name(ModelKind::kCatboost), "CatBoost");
  EXPECT_EQ(point_model_zoo().size(), 5u);
  EXPECT_EQ(quantile_model_zoo().size(), 4u);
}

TEST(Factory, GpRejectsPinball) {
  EXPECT_THROW(make_point_regressor(ModelKind::kGp, Loss::pinball(core::QuantileLevel{0.5})),
               std::invalid_argument);
}

TEST(Factory, QuantilePairWiring) {
  auto pair = make_quantile_pair(ModelKind::kLinear, core::MiscoverageAlpha{0.2});
  EXPECT_EQ(pair->name(), "QR Linear Regression");
  EXPECT_DOUBLE_EQ(pair->alpha(), 0.2);
  EXPECT_THROW(make_quantile_pair(ModelKind::kLinear, core::MiscoverageAlpha{0.0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace vmincqr::models
