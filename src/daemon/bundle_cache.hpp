// LRU cache of decoded artifact bundles, for multi-scenario fleets.
//
// Decoding a .vqa artifact (parse + model reconstruction) is the expensive
// step of a swap; serving a fleet that cycles through a handful of scenarios
// should pay it once per scenario, not once per activation. The cache maps a
// caller-chosen key (scenario label, file path, ...) to a fully decoded
// predictor, evicting the least-recently-used entry past capacity.
//
// Values are shared_ptr<const VminPredictor>: eviction never invalidates an
// epoch that is still serving — the predictor retires with its last snapshot
// (same refcount retirement as parallel::SwapCell).
//
// Thread-safe behind a parallel::Mutex; all operations are O(log n) map
// lookups plus O(1) list splices.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <string>
#include <utility>

#include "parallel/sync.hpp"
#include "serve/vmin_predictor.hpp"

namespace vmincqr::daemon {

/// Cache counters; monotone over the cache's lifetime.
struct BundleCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
};

class BundleCache {
 public:
  /// `capacity` is the maximum number of resident decoded bundles; must be
  /// positive (a fleet daemon always keeps at least the active bundle warm).
  explicit BundleCache(std::size_t capacity);
  BundleCache(const BundleCache&) = delete;
  BundleCache& operator=(const BundleCache&) = delete;

  /// Looks up `key`, refreshing its recency on a hit. Returns nullptr on a
  /// miss (counted).
  [[nodiscard]] std::shared_ptr<const serve::VminPredictor> get(
      const std::string& key);

  /// Inserts (or replaces) `key`, making it most-recently-used, then evicts
  /// the LRU entry while over capacity. `predictor` must be non-null.
  void put(const std::string& key,
           std::shared_ptr<const serve::VminPredictor> predictor);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] BundleCacheStats stats() const;

 private:
  using Entry =
      std::pair<std::string, std::shared_ptr<const serve::VminPredictor>>;

  std::size_t capacity_;
  mutable parallel::Mutex mutex_;
  /// Front = most recently used; back = eviction candidate.
  std::list<Entry> order_;
  std::map<std::string, std::list<Entry>::iterator> index_;
  BundleCacheStats stats_;
};

}  // namespace vmincqr::daemon
