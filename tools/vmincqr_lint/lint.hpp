// vmincqr_lint — a self-contained semantic linter for repo invariants the
// generic tools (clang-tidy, cppcheck) cannot express.
//
// Why a bespoke linter: CQR's coverage guarantee survives only if the code
// respects project conventions — strong unit types at public boundaries,
// runtime contracts on every fit/predict entry point, no exact floating
// comparisons in statistical code, calibration data that never reaches
// fit(), and seed discipline across splits. These are *domain* rules, not
// C++ rules, so they live here (no libclang dependency; the whole tool
// builds in well under a second).
//
// Three phases:
//   1. include-graph (include_graph.hpp) — layering DAG, cycle detection,
//      IWYU-lite unused includes. Cross-file; runs when a directory is
//      linted.
//   2. per-TU — the token rules below plus the statistical-validity
//      dataflow rules (dataflow.hpp) over a statement/call view with local
//      symbol taint tracking.
//   3. concurrency & determinism (concurrency.hpp) — a lambda/capture parse
//      over parallel_for/parallel_deterministic_reduce call sites that
//      enforces the src/parallel/ determinism contract statically.
//
// Suppression: append `// vmincqr-lint: allow(<rule-id>)` to the offending
// line, or place it alone on the line above. Several ids may be listed,
// comma-separated. Suppressions are per-line and per-rule by design: a
// blanket opt-out would silently rot.
#pragma once

#include <string>
#include <vector>

#include "diagnostic.hpp"

namespace vmincqr::lint {

/// A row of the rule table: stable id (used in allow() suppressions and test
/// fixtures) plus a one-line rationale printed by `vmincqr_lint --rules`.
struct RuleInfo {
  const char* id;
  const char* rationale;
};

/// Per-TU rules (token rules + dataflow rules), in the order they run.
/// Ids are unique and stable; tests assert every fixture maps onto exactly
/// one of these.
const std::vector<RuleInfo>& rule_table();

/// Cross-file include-graph rules (phase 1). Separate table because these
/// need the whole file set, not one TU; `--rules` prints both.
const std::vector<RuleInfo>& graph_rule_table();

/// Cross-TU call-graph rules (phase 4, callgraph.hpp). Third table for the
/// same reason as the graph table: these need the whole file set. The
/// transitive rng-in-parallel findings reuse the phase-3 rule id, so it is
/// deliberately absent here.
const std::vector<RuleInfo>& callgraph_rule_table();

/// Hot-path allocation & copy rules (phase 5, hotpath.hpp). Fourth table:
/// these run over the serve-reachable and predict-reachable cones of the
/// phase-4 call graph, so they also need the whole file set.
const std::vector<RuleInfo>& hotpath_rule_table();

/// Which per-TU phases run. Phase 1 (include graph) and phase 4 (call
/// graph) operate on the whole file set and are selected by the driver;
/// phases 2 and 3 are gated here so `--phase=` can slice them apart and so
/// the tests/bench tier-1 run can drop the style phase.
struct LintPhases {
  bool per_tu = true;       // phase 2: token + dataflow rules
  bool concurrency = true;  // phase 3: concurrency & determinism rules
};

/// Lints one translation unit given its contents (the unit-testable core).
/// `path` is used for diagnostics and to decide header-only rules (.hpp).
/// Runs the token rules and the dataflow rules; include-graph analysis is
/// separate (include_graph.hpp).
std::vector<Diagnostic> lint_source(const std::string& path,
                                    const std::string& content,
                                    const LintPhases& phases = {});

/// Reads `path` and lints it. Throws std::runtime_error if unreadable.
std::vector<Diagnostic> lint_file(const std::string& path,
                                  const LintPhases& phases = {});

/// Lints many files, one pool task per TU (core::parallel_map — the linter
/// dogfoods the deterministic pool it polices). The result is globally
/// sorted by (file, line, rule, message), so output is byte-identical at
/// every thread width.
std::vector<Diagnostic> lint_files(const std::vector<std::string>& paths,
                                   const LintPhases& phases = {});

/// True for files the linter understands (.hpp / .cpp).
bool is_lintable(const std::string& path);

}  // namespace vmincqr::lint
