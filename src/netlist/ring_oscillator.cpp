#include "netlist/ring_oscillator.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace vmincqr::netlist {

double ring_oscillator_period(const RingOscillator& ro,
                              const DelayModelConfig& config, double vdd,
                              double dvth_eff, double temp_c) {
  if (ro.n_stages == 0 || ro.n_stages % 2 == 0) {
    throw std::invalid_argument(
        "ring_oscillator_period: stage count must be odd");
  }
  const CellType& inverter = standard_cell_library()[0];  // INV_X1
  const double d =
      cell_delay(inverter, config, vdd, dvth_eff + ro.stage_mismatch, temp_c);
  if (!std::isfinite(d)) return std::numeric_limits<double>::infinity();
  return 2.0 * static_cast<double>(ro.n_stages) * d;
}

double ring_oscillator_frequency(const RingOscillator& ro,
                                 const DelayModelConfig& config, double vdd,
                                 double dvth_eff, double temp_c) {
  const double period =
      ring_oscillator_period(ro, config, vdd, dvth_eff, temp_c);
  return std::isfinite(period) ? 1.0 / period : 0.0;
}

}  // namespace vmincqr::netlist
