#include "data/split.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace vmincqr::data {

std::vector<Fold> k_fold(std::size_t n, std::size_t k, rng::Rng& rng) {
  if (k < 2) throw std::invalid_argument("k_fold: k must be >= 2");
  if (k > n) throw std::invalid_argument("k_fold: k must be <= n");
  std::vector<std::size_t> perm = rng.permutation(n);

  std::vector<Fold> folds(k);
  // Distribute samples round-robin so fold sizes differ by at most one.
  std::vector<std::vector<std::size_t>> buckets(k);
  for (std::size_t i = 0; i < n; ++i) buckets[i % k].push_back(perm[i]);

  for (std::size_t f = 0; f < k; ++f) {
    folds[f].test = buckets[f];
    for (std::size_t g = 0; g < k; ++g) {
      if (g == f) continue;
      folds[f].train.insert(folds[f].train.end(), buckets[g].begin(),
                            buckets[g].end());
    }
    std::sort(folds[f].test.begin(), folds[f].test.end());
    std::sort(folds[f].train.begin(), folds[f].train.end());
  }
  return folds;
}

TrainCalibSplit train_calibration_split(std::vector<std::size_t> indices,
                                        double train_fraction, rng::Rng& rng) {
  if (indices.size() < 2) {
    throw std::invalid_argument(
        "train_calibration_split: need at least 2 samples");
  }
  if (!(train_fraction > 0.0) || !(train_fraction < 1.0)) {
    throw std::invalid_argument(
        "train_calibration_split: train_fraction outside (0, 1)");
  }
  rng.shuffle(indices);
  auto n_train = static_cast<std::size_t>(
      std::round(train_fraction * static_cast<double>(indices.size())));
  n_train = std::clamp<std::size_t>(n_train, 1, indices.size() - 1);

  TrainCalibSplit split;
  split.train.assign(indices.begin(),
                     indices.begin() + static_cast<std::ptrdiff_t>(n_train));
  split.calibration.assign(
      indices.begin() + static_cast<std::ptrdiff_t>(n_train), indices.end());
  std::sort(split.train.begin(), split.train.end());
  std::sort(split.calibration.begin(), split.calibration.end());
  return split;
}

}  // namespace vmincqr::data
