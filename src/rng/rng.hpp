// Deterministic random-number façade.
//
// Every stochastic component in the library draws through this class so that
// experiments are reproducible from a single seed, and so that child streams
// (per chip / per fold / per model) can be forked without correlation.
#pragma once

#include <cstdint>
#include <random>
#include <stdexcept>
#include <vector>

namespace vmincqr::rng {

/// SplitMix64 — used to derive well-separated child seeds.
std::uint64_t splitmix64(std::uint64_t& state);

/// Seeded random generator wrapping std::mt19937_64 with typed draw helpers.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed), seed_(seed) {}

  /// Forks an independent child stream; the i-th fork of a given Rng is
  /// deterministic in (seed, i).
  Rng fork();

  /// Uniform double in [lo, hi). Throws std::invalid_argument if lo > hi.
  double uniform(double lo = 0.0, double hi = 1.0);

  /// Standard normal draw scaled to N(mean, stddev^2). stddev >= 0.
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Log-normal draw: exp(N(log_mean, log_sigma^2)).
  double lognormal(double log_mean, double log_sigma);

  /// Uniform integer in [lo, hi] inclusive. Throws if lo > hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Bernoulli draw with probability p in [0, 1].
  bool bernoulli(double p);

  /// Vector of n iid normal draws.
  std::vector<double> normal_vector(std::size_t n, double mean = 0.0,
                                    double stddev = 1.0);

  /// Random permutation of {0, ..., n-1} (Fisher-Yates).
  std::vector<std::size_t> permutation(std::size_t n);

  /// Shuffles a vector of indices in place.
  void shuffle(std::vector<std::size_t>& v);

  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

  /// Raw engine access for std::distributions not wrapped here.
  std::mt19937_64& engine() noexcept { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uint64_t seed_;
  std::uint64_t fork_counter_ = 0;
};

}  // namespace vmincqr::rng
