// ML-assisted Vmin binning (the application of the paper's ref. [4]):
// assign each chip the lowest supply bin its predicted Vmin supports.
//
// Compares two schemes at equal safety (field-violation rate):
//   * interval binning — bin by the CQR upper bound (per-chip adaptive);
//   * point binning    — bin by point prediction + one global guard band,
//     with the guard band calibrated on held-out data to match the interval
//     scheme's violation rate.
// The adaptive scheme should save supply voltage on easy chips while
// spending it only where the uncertainty is real.
#include <cstdio>

#include "conformal/cqr.hpp"
#include "core/binning.hpp"
#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "data/feature_select.hpp"
#include "models/factory.hpp"
#include "silicon/dataset_gen.hpp"

using namespace vmincqr;

int main() {
  silicon::GeneratorConfig gen_config;
  gen_config.n_chips = 400;
  const auto generated = silicon::generate_dataset(gen_config);
  const data::Dataset& ds = generated.dataset;

  const core::Scenario scenario{0.0, 25.0, core::FeatureSet::kBoth};
  const auto data = core::assemble_scenario(ds, scenario);

  // 250 train / 75 guard-band calibration / 75 production.
  std::vector<std::size_t> train_rows, tune_rows, prod_rows;
  for (std::size_t i = 0; i < ds.n_chips(); ++i) {
    if (i < 250) {
      train_rows.push_back(i);
    } else if (i < 325) {
      tune_rows.push_back(i);
    } else {
      prod_rows.push_back(i);
    }
  }
  const auto take_y = [&](const std::vector<std::size_t>& rows) {
    linalg::Vector y(rows.size());
    for (std::size_t i = 0; i < rows.size(); ++i) y[i] = data.y[rows[i]];
    return y;
  };
  const auto x_train = data.x.take_rows(train_rows);
  const auto y_train = take_y(train_rows);
  const auto cols = data::top_correlated(x_train, y_train, 32);

  const double alpha = 0.1;
  conformal::ConformalizedQuantileRegressor cqr(
      core::MiscoverageAlpha{alpha}, models::make_quantile_pair(models::ModelKind::kCatboost, core::MiscoverageAlpha{alpha}));
  cqr.fit(x_train.take_cols(cols), y_train);

  auto point = models::make_point_regressor(models::ModelKind::kLinear);
  point->fit(x_train.take_cols(cols), y_train);

  // Voltage bins: 10 mV steps around the healthy population.
  core::BinningConfig bins;
  for (double v = 0.54; v <= 0.75 + 1e-9; v += 0.01) bins.bin_voltages.push_back(v);

  // Calibrate the point scheme's guard band on the tune split so both
  // schemes run at (approximately) the same violation rate.
  const auto x_tune = data.x.take_rows(tune_rows).take_cols(cols);
  const auto y_tune = take_y(tune_rows);
  const auto tune_band = cqr.predict_interval(x_tune);
  const auto interval_tune =
      core::bin_by_interval(tune_band.upper, y_tune, bins);
  const auto pred_tune = point->predict(x_tune);
  core::Millivolt guard{0.0};
  for (double g_mv = 0.0; g_mv <= 80.0; g_mv += 2.0) {
    guard = core::Millivolt{g_mv};
    if (core::bin_by_point(pred_tune, guard, y_tune, bins).violation_rate <=
        interval_tune.violation_rate + 1e-9) {
      break;
    }
  }

  // Production comparison.
  const auto x_prod = data.x.take_rows(prod_rows).take_cols(cols);
  const auto y_prod = take_y(prod_rows);
  const auto prod_band = cqr.predict_interval(x_prod);
  const auto interval_bins =
      core::bin_by_interval(prod_band.upper, y_prod, bins);
  const auto point_bins =
      core::bin_by_point(point->predict(x_prod), guard, y_prod, bins);

  std::printf("Vmin binning @ %s — %zu production chips, %zu bins, "
              "guard band (point scheme) = %.0f mV\n\n",
              core::describe(scenario).c_str(), prod_rows.size(),
              bins.bin_voltages.size(), guard.value());
  core::TextTable table({"Scheme", "mean bin V", "violations", "unbinnable"});
  table.add_row({"interval (CQR upper bound)",
                 core::format_double(interval_bins.mean_voltage, 4),
                 core::format_double(interval_bins.violation_rate * 100, 2) + "%",
                 std::to_string(interval_bins.n_unbinnable)});
  table.add_row({"point + guard band",
                 core::format_double(point_bins.mean_voltage, 4),
                 core::format_double(point_bins.violation_rate * 100, 2) + "%",
                 std::to_string(point_bins.n_unbinnable)});
  std::printf("%s\n", table.to_string().c_str());

  const double saving =
      core::mean_voltage_saving(interval_bins, point_bins, bins);
  std::printf("mean supply saving of the interval scheme: %+.1f mV/chip\n",
              saving * 1e3);
  std::printf(
      "(positive = the adaptive CQR bound lets typical chips run in lower\n"
      " bins at the same field-violation budget)\n");
  return 0;
}
