file(REMOVE_RECURSE
  "CMakeFiles/models_tree_test.dir/models_tree_test.cpp.o"
  "CMakeFiles/models_tree_test.dir/models_tree_test.cpp.o.d"
  "models_tree_test"
  "models_tree_test.pdb"
  "models_tree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/models_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
