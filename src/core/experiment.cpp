#include "core/experiment.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "conformal/cqr.hpp"
#include "data/feature_select.hpp"
#include "data/split.hpp"
#include "stats/metrics.hpp"

namespace vmincqr::core {

namespace {

Vector take(const Vector& v, const std::vector<std::size_t>& idx) {
  Vector out(idx.size());
  for (std::size_t i = 0; i < idx.size(); ++i) out[i] = v[idx[i]];
  return out;
}

std::vector<std::size_t> prefix(const std::vector<std::size_t>& order,
                                std::size_t k) {
  return {order.begin(),
          order.begin() + static_cast<std::ptrdiff_t>(
                              std::min<std::size_t>(k, order.size()))};
}

bool is_tree_model(models::ModelKind kind) {
  return kind == models::ModelKind::kXgboost ||
         kind == models::ModelKind::kCatboost;
}

}  // namespace

std::vector<PointModelScore> evaluate_point_models(
    const data::Dataset& ds, const Scenario& scenario,
    const ExperimentConfig& config, const std::vector<models::ModelKind>& zoo) {
  const ScenarioData data = assemble_scenario(ds, scenario);
  rng::Rng cv_rng(config.cv_seed);
  const auto folds = data::k_fold(data.x.rows(), config.n_folds, cv_rng);

  // (model index, k) -> per-fold (r2, rmse).
  std::map<std::pair<std::size_t, std::size_t>,
           std::vector<std::pair<double, double>>>
      scores;

  for (const auto& fold : folds) {
    const Matrix x_train = data.x.take_rows(fold.train);
    const Vector y_train = take(data.y, fold.train);
    const Matrix x_test = data.x.take_rows(fold.test);
    const Vector y_test = take(data.y, fold.test);

    // CFS is model-agnostic: compute once per fold, share across models.
    const auto cfs_order =
        data::cfs_select(x_train, y_train, config.pipeline.cfs_max_features);
    const auto tree_cols = data::top_correlated(
        x_train, y_train, config.pipeline.tree_prefilter);

    for (std::size_t m = 0; m < zoo.size(); ++m) {
      for (std::size_t k : cfs_sweep_for_model(zoo[m], config.pipeline)) {
        const auto cols =
            is_tree_model(zoo[m]) ? tree_cols : prefix(cfs_order, k);
        auto model = models::make_point_regressor(zoo[m]);
        model->fit(x_train.take_cols(cols), y_train);
        const Vector pred = model->predict(x_test.take_cols(cols));
        scores[{m, k}].emplace_back(stats::r_squared(y_test, pred),
                                    stats::rmse(y_test, pred));
      }
    }
  }

  // Aggregate: mean across folds, then best k per model (paper protocol).
  std::vector<PointModelScore> out;
  out.reserve(zoo.size());
  for (std::size_t m = 0; m < zoo.size(); ++m) {
    PointModelScore best;
    best.model = zoo[m];
    best.model_name = models::model_name(zoo[m]);
    bool first = true;
    for (const auto& [key, fold_scores] : scores) {
      if (key.first != m) continue;
      double r2 = 0.0, rmse = 0.0;
      for (const auto& [fr2, frmse] : fold_scores) {
        r2 += fr2;
        rmse += frmse;
      }
      r2 /= static_cast<double>(fold_scores.size());
      rmse /= static_cast<double>(fold_scores.size());
      if (first || r2 > best.r2) {
        best.r2 = r2;
        best.rmse = rmse;
        best.best_k = key.second;
        first = false;
      }
    }
    out.push_back(best);
  }
  return out;
}

std::string RegionMethodSpec::label() const {
  switch (family) {
    case Family::kGp:
      return "GP";
    case Family::kQr:
      return "QR " + models::model_name(base);
    case Family::kCqr:
      return "CQR " + models::model_name(base);
  }
  return "unknown";
}

std::vector<RegionMethodSpec> table3_methods() {
  using Family = RegionMethodSpec::Family;
  using models::ModelKind;
  std::vector<RegionMethodSpec> specs;
  specs.push_back({Family::kGp, ModelKind::kGp});
  for (Family family : {Family::kQr, Family::kCqr}) {
    for (ModelKind base : {ModelKind::kLinear, ModelKind::kMlp,
                           ModelKind::kXgboost, ModelKind::kCatboost}) {
      specs.push_back({family, base});
    }
  }
  return specs;
}

RegionMethodScore evaluate_region_method(const data::Dataset& ds,
                                         const Scenario& scenario,
                                         const RegionMethodSpec& spec,
                                         const ExperimentConfig& config) {
  const ScenarioData data = assemble_scenario(ds, scenario);
  rng::Rng cv_rng(config.cv_seed);
  const auto folds = data::k_fold(data.x.rows(), config.n_folds, cv_rng);
  const MiscoverageAlpha alpha = config.pipeline.alpha;

  double total_length = 0.0;
  double total_coverage = 0.0;

  for (std::size_t f = 0; f < folds.size(); ++f) {
    const auto& fold = folds[f];
    const Matrix x_train = data.x.take_rows(fold.train);
    const Vector y_train = take(data.y, fold.train);
    const Matrix x_test = data.x.take_rows(fold.test);
    const Vector y_test = take(data.y, fold.test);

    models::IntervalPrediction band;
    switch (spec.family) {
      case RegionMethodSpec::Family::kGp: {
        const auto cols = data::cfs_select(x_train, y_train,
                                           config.region_cfs_features);
        models::GpIntervalRegressor gp(alpha);
        gp.fit(x_train.take_cols(cols), y_train);
        band = gp.predict_interval(x_test.take_cols(cols));
        break;
      }
      case RegionMethodSpec::Family::kQr: {
        const auto cols =
            is_tree_model(spec.base)
                ? data::top_correlated(x_train, y_train,
                                       config.pipeline.tree_prefilter)
                : data::cfs_select(x_train, y_train,
                                   config.region_cfs_features);
        auto pair = models::make_quantile_pair(spec.base, alpha);
        pair->fit(x_train.take_cols(cols), y_train);
        band = pair->predict_interval(x_test.take_cols(cols));
        break;
      }
      case RegionMethodSpec::Family::kCqr: {
        // 75/25 train/calibration split inside the training fold; the split
        // seed depends only on the fold so every method sees the same split.
        std::vector<std::size_t> local(fold.train.size());
        for (std::size_t i = 0; i < local.size(); ++i) local[i] = i;
        rng::Rng split_rng(config.pipeline.split.seed + f);
        const auto split = data::train_calibration_split(
            local, config.pipeline.split.train_fraction, split_rng);

        const Matrix x_proper = x_train.take_rows(split.train);
        const Vector y_proper = take(y_train, split.train);
        const Matrix x_calib = x_train.take_rows(split.calibration);
        const Vector y_calib = take(y_train, split.calibration);

        // Feature selection on the proper-training part only (no leakage
        // into the calibration scores).
        const auto cols =
            is_tree_model(spec.base)
                ? data::top_correlated(x_proper, y_proper,
                                       config.pipeline.tree_prefilter)
                : data::cfs_select(x_proper, y_proper,
                                   config.region_cfs_features);

        conformal::ConformalizedQuantileRegressor cqr(
            alpha, models::make_quantile_pair(spec.base, alpha));
        cqr.fit_with_split(x_proper.take_cols(cols), y_proper,
                           x_calib.take_cols(cols), y_calib);
        band = cqr.predict_interval(x_test.take_cols(cols));
        break;
      }
    }

    total_coverage += stats::interval_coverage(y_test, band.lower, band.upper);
    total_length += stats::mean_interval_length(band.lower, band.upper);
  }

  RegionMethodScore score;
  score.method = spec.label();
  const auto nf = static_cast<double>(folds.size());
  score.mean_length_mv = total_length / nf * 1000.0;
  score.coverage_pct = total_coverage / nf * 100.0;
  return score;
}

std::vector<RegionMethodScore> evaluate_region_methods(
    const data::Dataset& ds, const Scenario& scenario,
    const ExperimentConfig& config) {
  std::vector<RegionMethodScore> out;
  for (const auto& spec : table3_methods()) {
    out.push_back(evaluate_region_method(ds, scenario, spec, config));
  }
  return out;
}

}  // namespace vmincqr::core
