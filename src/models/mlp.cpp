#include "models/mlp.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "linalg/kernels.hpp"
#include "parallel/parallel_for.hpp"

namespace vmincqr::models {

namespace {

/// Samples per gradient chunk. Fixed (never thread-count derived): the
/// chunk grid defines the floating-point summation order, which must be a
/// pure function of the data so results are identical at any thread count.
constexpr std::size_t kMlpGrain = 32;

/// Per-chunk training scratch: gradient accumulator plus the activation
/// slab (z) and hidden-layer sensitivity slab (dh) of the blocked forward /
/// backward passes, so concurrent chunks never share state and the epoch
/// loop never touches the allocator.
struct MlpChunkScratch {
  std::vector<double> grads;
  std::vector<double> z;   ///< chunk_rows x h pre-activations, then ReLU(z)
  std::vector<double> dh;  ///< chunk_rows x h hidden-layer gradients
};

/// Adam state for one flat parameter vector.
struct AdamState {
  std::vector<double> m, v;
  int t = 0;
  explicit AdamState(std::size_t n) : m(n, 0.0), v(n, 0.0) {}
  // Kept out of line: GCC 12 misattributes the vector deallocations when the
  // destructor inlines into fit()'s epoch scope (-Wfree-nonheap-object false
  // positive under -O2), which would break -Werror CI builds.
#if defined(__GNUC__) && !defined(__clang__)
  __attribute__((noinline))
#endif
  ~AdamState() = default;

  void step(std::vector<double>& params, const std::vector<double>& grads,
            double lr) {
    constexpr double beta1 = 0.9, beta2 = 0.999, eps = 1e-8;
    ++t;
    const double bc1 = 1.0 - std::pow(beta1, t);
    const double bc2 = 1.0 - std::pow(beta2, t);
    for (std::size_t i = 0; i < params.size(); ++i) {
      m[i] = beta1 * m[i] + (1.0 - beta1) * grads[i];
      v[i] = beta2 * v[i] + (1.0 - beta2) * grads[i] * grads[i];
      params[i] -= lr * (m[i] / bc1) / (std::sqrt(v[i] / bc2) + eps);
    }
  }
};

}  // namespace

MlpRegressor::MlpRegressor(MlpConfig config) : config_(config) {
  if (config_.hidden_units == 0) {
    throw std::invalid_argument("MlpRegressor: hidden_units == 0");
  }
  if (config_.epochs <= 0 || config_.learning_rate <= 0.0) {
    throw std::invalid_argument("MlpRegressor: bad optimizer settings");
  }
  if (config_.l2_penalty < 0.0) {
    throw std::invalid_argument("MlpRegressor: negative l2_penalty");
  }
}

void MlpRegressor::fit(const Matrix& x, const Vector& y) {
  check_fit_args(x, y);
  n_features_ = x.cols();
  const Matrix xs = scaler_.fit_transform(x);
  label_scaler_.fit(y);
  const Vector ys = label_scaler_.transform(y);

  const std::size_t n = xs.rows();
  const std::size_t d = xs.cols();
  const std::size_t h = config_.hidden_units;

  // He initialization for the ReLU layer.
  rng::Rng rng(config_.seed);
  const double w1_scale = std::sqrt(2.0 / static_cast<double>(d));
  const double w2_scale = std::sqrt(2.0 / static_cast<double>(h));
  std::vector<double> params(d * h + h + h + 1, 0.0);
  double* w1 = params.data();
  double* b1 = w1 + d * h;
  double* w2 = b1 + h;
  double* b2 = w2 + h;
  for (std::size_t i = 0; i < d * h; ++i) w1[i] = rng.normal(0.0, w1_scale);
  for (std::size_t j = 0; j < h; ++j) w2[j] = rng.normal(0.0, w2_scale);

  std::vector<double> grads(params.size(), 0.0);
  AdamState adam(params.size());

  // One scratch slot per chunk of the fixed sample grid, reused across all
  // epochs. Chunks of one epoch run concurrently; their partial gradients
  // fold in ascending chunk order below, so the epoch gradient is the same
  // double at every thread count.
  const std::size_t n_chunks = parallel::chunk_count(n, kMlpGrain);
  std::vector<MlpChunkScratch> scratch(n_chunks);
  for (auto& s : scratch) {
    s.grads.assign(params.size(), 0.0);
    s.z.assign(kMlpGrain * h, 0.0);
    s.dh.assign(kMlpGrain * h, 0.0);
  }
  const linalg::KernelPolicy policy = linalg::kernel_policy();

  const double inv_n = 1.0 / static_cast<double>(n);
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    parallel::for_each_chunk(
        n, kMlpGrain,
        [&](std::size_t chunk, std::size_t begin, std::size_t end) {
          MlpChunkScratch& s = scratch[chunk];
          std::fill(s.grads.begin(), s.grads.end(), 0.0);
          double* gw1 = s.grads.data();
          double* gb1 = gw1 + d * h;
          double* gw2 = gb1 + h;
          double* gb2 = gw2 + h;
          const std::size_t rows = end - begin;

          // Blocked forward: Z <- b1 (broadcast), then Z += X_chunk * W1.
          // The exact-tier kernel accumulates each z(i,j) in ascending k on
          // top of the caller-seeded b1[j] — the same summation order as the
          // old per-sample loop, so the activations are bit-identical.
          double* z = s.z.data();
          for (std::size_t r = 0; r < rows; ++r) {
            std::copy(b1, b1 + h, z + r * h);
          }
          linalg::gemm(rows, d, h, xs.row_ptr(begin), d, w1, h, z, h, policy);

          double* dhm = s.dh.data();
          for (std::size_t r = 0; r < rows; ++r) {
            const std::size_t i = begin + r;
            double* zr = z + r * h;
            // ReLU in place; the output sum visits all j like the old loop.
            double out = *b2;
            for (std::size_t j = 0; j < h; ++j) {
              zr[j] = zr[j] > 0.0 ? zr[j] : 0.0;
              out += w2[j] * zr[j];
            }

            // Backward (dense layers); gw1 is deferred to the gemm_at below.
            const double dl = config_.loss.gradient(ys[i], out) * inv_n;
            *gb2 += dl;
            for (std::size_t j = 0; j < h; ++j) {
              gw2[j] += dl * zr[j];
              const double dh = zr[j] > 0.0 ? dl * w2[j] : 0.0;
              dhm[r * h + j] = dh;
              // ReLU mask zeroes dh exactly; skipping dead units is lossless.
              if (dh == 0.0) continue;  // vmincqr-lint: allow(float-equality)
              gb1[j] += dh;
            }
          }
          // gw1 += X_chunk^T * DH. The exact tier walks samples in ascending
          // order per (k, j) element and skips dh == 0 terms, reproducing the
          // old `if (dh == 0.0) continue` inner loop bit for bit.
          linalg::gemm_at(rows, d, h, xs.row_ptr(begin), d, dhm, h, gw1, h,
                          policy);
        },
        /*use_pool=*/n >= 2 * kMlpGrain);
    // Deterministic fold: chunk partials in ascending chunk index.
    std::fill(grads.begin(), grads.end(), 0.0);
    for (const MlpChunkScratch& s : scratch) {
      for (std::size_t i = 0; i < grads.size(); ++i) grads[i] += s.grads[i];
    }
    // L2 penalty on weights (not biases), matching torch-style weight decay.
    if (config_.l2_penalty > 0.0) {
      double* gw1 = grads.data();
      double* gw2 = grads.data() + d * h + h;
      for (std::size_t i = 0; i < d * h; ++i) {
        gw1[i] += config_.l2_penalty * w1[i] * inv_n;
      }
      for (std::size_t j = 0; j < h; ++j) {
        gw2[j] += config_.l2_penalty * w2[j] * inv_n;
      }
    }
    adam.step(params, grads, config_.learning_rate);
  }

  // Persist parameters.
  w1_ = Matrix(d, h);
  for (std::size_t k = 0; k < d; ++k) {
    for (std::size_t j = 0; j < h; ++j) w1_(k, j) = w1[k * h + j];
  }
  b1_.assign(b1, b1 + h);
  w2_.assign(w2, w2 + h);
  b2_ = *b2;
  fitted_ = true;
}

namespace {

/// Rows per forward() activation slab. Fixed (never thread-count derived):
/// per-row results are chunk-independent, but a fixed grain also bounds the
/// per-chunk scratch at kForwardGrain * h doubles regardless of batch size.
constexpr std::size_t kForwardGrain = 256;

}  // namespace

// vmincqr: hot-path(allow-alloc)
Vector MlpRegressor::forward(const Matrix& xs) const {
  // Width comes from the fitted parameters, not the config, so an imported
  // parameter set with a different hidden width evaluates correctly.
  const std::size_t h = b1_.size();
  const std::size_t d = xs.cols();
  const linalg::KernelPolicy policy = linalg::kernel_policy();
  Vector out(xs.rows());
  parallel::for_each_chunk(
      xs.rows(), kForwardGrain,
      [&](std::size_t chunk, std::size_t begin, std::size_t end) {
        (void)chunk;
        const std::size_t rows = end - begin;
        // Per-chunk activation slab: Z <- b1 (broadcast), Z += X_chunk * W1
        // through the blocked kernel. The exact tier seeds each z(i, j) with
        // b1[j] and adds in ascending k — the per-sample loop's exact order.
        std::vector<double> z(rows * h);
        for (std::size_t r = 0; r < rows; ++r) {
          std::copy(b1_.begin(), b1_.end(), z.begin() + r * h);
        }
        linalg::gemm(rows, d, h, xs.row_ptr(begin), d, w1_.row_ptr(0), h,
                     z.data(), h, policy);
        for (std::size_t r = 0; r < rows; ++r) {
          const double* zr = z.data() + r * h;
          double acc = b2_;
          for (std::size_t j = 0; j < h; ++j) {
            if (zr[j] > 0.0) acc += w2_[j] * zr[j];
          }
          out[begin + r] = acc;
        }
      },
      /*use_pool=*/xs.rows() * h >= 4096);
  return out;
}

Vector MlpRegressor::predict(const Matrix& x) const {
  check_predict_args(x, n_features_, fitted_);
  Vector ys = forward(scaler_.transform(x));
  return label_scaler_.inverse_transform(ys);
}

std::unique_ptr<Regressor> MlpRegressor::clone_config() const {
  return std::make_unique<MlpRegressor>(config_);
}

MlpParams MlpRegressor::export_params() const {
  if (!fitted_) {
    throw std::logic_error("MlpRegressor::export_params: not fitted");
  }
  return {scaler_.export_params(), label_scaler_.export_params(),
          w1_, b1_, w2_, b2_};
}

void MlpRegressor::import_params(MlpParams params) {
  const std::size_t h = params.b1.size();
  if (h == 0 || params.w1.rows() != params.scaler.means.size() ||
      params.w1.cols() != h || params.w2.size() != h) {
    throw std::invalid_argument(
        "MlpRegressor::import_params: layer shape mismatch");
  }
  scaler_.import_params(std::move(params.scaler));
  label_scaler_.import_params(params.label);
  w1_ = std::move(params.w1);
  b1_ = std::move(params.b1);
  w2_ = std::move(params.w2);
  b2_ = params.b2;
  n_features_ = w1_.rows();
  fitted_ = true;
}

}  // namespace vmincqr::models
