#include "core/binning.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace vmincqr::core {

namespace {

void check_config(const BinningConfig& config) {
  if (config.bin_voltages.empty()) {
    throw std::invalid_argument("bin_chips: no bin voltages");
  }
  if (!std::is_sorted(config.bin_voltages.begin(), config.bin_voltages.end()) ||
      std::adjacent_find(config.bin_voltages.begin(),
                         config.bin_voltages.end()) !=
          config.bin_voltages.end()) {
    throw std::invalid_argument("bin_chips: bins must be strictly ascending");
  }
}

}  // namespace

BinningResult bin_chips(const Vector& required_voltage, const Vector& truth,
                        const BinningConfig& config) {
  check_config(config);
  if (required_voltage.empty()) {
    throw std::invalid_argument("bin_chips: empty batch");
  }
  if (!truth.empty() && truth.size() != required_voltage.size()) {
    throw std::invalid_argument("bin_chips: truth length mismatch");
  }

  BinningResult result;
  result.bin_of_chip.assign(required_voltage.size(), -1);
  result.bin_counts.assign(config.bin_voltages.size(), 0);

  double voltage_sum = 0.0;
  std::size_t binnable = 0;
  std::size_t violations = 0;

  for (std::size_t i = 0; i < required_voltage.size(); ++i) {
    const auto it =
        std::lower_bound(config.bin_voltages.begin(),
                         config.bin_voltages.end(), required_voltage[i]);
    if (it == config.bin_voltages.end()) {
      ++result.n_unbinnable;
      continue;
    }
    const auto bin =
        static_cast<std::size_t>(it - config.bin_voltages.begin());
    result.bin_of_chip[i] = static_cast<int>(bin);
    ++result.bin_counts[bin];
    voltage_sum += config.bin_voltages[bin];
    ++binnable;
    if (!truth.empty() && truth[i] > config.bin_voltages[bin]) ++violations;
  }

  if (binnable > 0) {
    result.mean_voltage = voltage_sum / static_cast<double>(binnable);
    result.violation_rate =
        static_cast<double>(violations) / static_cast<double>(binnable);
  }
  return result;
}

BinningResult bin_by_point(const Vector& predicted, Millivolt guard_band,
                           const Vector& truth, const BinningConfig& config) {
  if (guard_band.value() < 0.0) {
    throw std::invalid_argument("bin_by_point: negative guard band");
  }
  Vector required(predicted.size());
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    required[i] = predicted[i] + guard_band.to_volts();
  }
  return bin_chips(required, truth, config);
}

void FeatureBinner::fit(const Matrix& x, std::size_t max_bins) {
  if (max_bins < 2) {
    throw std::invalid_argument("FeatureBinner::fit: max_bins < 2");
  }
  if (x.rows() == 0 || x.cols() == 0) {
    throw std::invalid_argument("FeatureBinner::fit: empty design matrix");
  }
  const std::size_t max_edges = max_bins - 1;
  std::vector<std::vector<double>> edges(x.cols());
  for (std::size_t f = 0; f < x.cols(); ++f) {
    Vector values = x.col(f);
    std::sort(values.begin(), values.end());
    values.erase(std::unique(values.begin(), values.end()), values.end());
    if (values.size() < 2) continue;  // constant feature: one bin, no edges
    if (values.size() - 1 <= max_edges) {
      // Every midpoint between adjacent distinct values — the histogram is
      // then exactly as expressive as the sorted scan for this feature.
      for (std::size_t i = 0; i + 1 < values.size(); ++i) {
        edges[f].push_back(0.5 * (values[i] + values[i + 1]));
      }
    } else {
      // Quantile-thinned midpoints (evenly spaced over the distinct values,
      // the same policy as ordered-boost border selection). Midpoints of
      // adjacent positions may coincide after thinning; dedup keeps the
      // edges strictly ascending.
      for (std::size_t b = 1; b <= max_edges; ++b) {
        const double q =
            static_cast<double>(b) / (static_cast<double>(max_edges) + 1.0);
        const auto pos = static_cast<std::size_t>(
            q * static_cast<double>(values.size() - 1));
        edges[f].push_back(
            0.5 * (values[pos] + values[std::min(pos + 1, values.size() - 1)]));
      }
      edges[f].erase(std::unique(edges[f].begin(), edges[f].end()),
                     edges[f].end());
    }
  }
  edges_ = std::move(edges);
}

void FeatureBinner::import_edges(std::vector<std::vector<double>> edges) {
  for (const auto& feature_edges : edges) {
    if (feature_edges.size() > 65535) {
      throw std::invalid_argument(
          "FeatureBinner::import_edges: more than 65535 edges");
    }
    for (std::size_t i = 0; i < feature_edges.size(); ++i) {
      if (!std::isfinite(feature_edges[i]) ||
          (i > 0 && feature_edges[i - 1] >= feature_edges[i])) {
        throw std::invalid_argument(
            "FeatureBinner::import_edges: edges must be finite and strictly "
            "ascending");
      }
    }
  }
  edges_ = std::move(edges);
}

std::uint16_t FeatureBinner::bin_of(std::size_t feature, double value) const {
  const std::vector<double>& e = edges_[feature];
  // Number of edges < value: lower_bound leaves exact edge hits IN the bin
  // below, matching the `x <= threshold` left-branch convention.
  return static_cast<std::uint16_t>(
      std::lower_bound(e.begin(), e.end(), value) - e.begin());
}

std::vector<std::uint16_t> FeatureBinner::bin(const Matrix& x) const {
  if (x.cols() != edges_.size()) {
    throw std::invalid_argument("FeatureBinner::bin: feature count mismatch");
  }
  std::vector<std::uint16_t> codes(x.rows() * x.cols());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const double* row = x.row_ptr(r);
    std::uint16_t* crow = codes.data() + r * x.cols();
    for (std::size_t f = 0; f < x.cols(); ++f) {
      crow[f] = bin_of(f, row[f]);
    }
  }
  return codes;
}

double mean_voltage_saving(const BinningResult& a, const BinningResult& b,
                           const BinningConfig& config) {
  if (a.bin_of_chip.size() != b.bin_of_chip.size()) {
    throw std::invalid_argument("mean_voltage_saving: batch size mismatch");
  }
  double saving = 0.0;
  std::size_t common = 0;
  for (std::size_t i = 0; i < a.bin_of_chip.size(); ++i) {
    if (a.bin_of_chip[i] < 0 || b.bin_of_chip[i] < 0) continue;
    saving += config.bin_voltages[static_cast<std::size_t>(b.bin_of_chip[i])] -
              config.bin_voltages[static_cast<std::size_t>(a.bin_of_chip[i])];
    ++common;
  }
  return common ? saving / static_cast<double>(common) : 0.0;
}

}  // namespace vmincqr::core
