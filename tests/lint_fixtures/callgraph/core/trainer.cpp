// Training entry point plus the innocent-looking wrapper serve reaches it
// through. The includes are layer-legal; only the call chain is not.

double fit(double x) { return x * 2.0; }

double refresh_model(double x) {
  fit(x);
  return x;
}
