// Golden fixture: nondeterministic-reduce — accumulating into a
// by-reference capture inside parallel_for. Even with atomics this would be
// schedule-ordered; reductions must return per-chunk partials through
// parallel_deterministic_reduce's fixed-order combine.

void total_loss(const std::vector<double>& residuals, double* out) {
  double sum = 0.0;
  parallel::parallel_for(residuals.size(), 2048,
                         [&](std::size_t b, std::size_t e) {
                           for (std::size_t i = b; i < e; ++i) {
                             sum += residuals[i];
                           }
                         });
  *out = sum;
}
