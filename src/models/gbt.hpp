// Gradient-boosted trees in the XGBoost formulation (paper Sec. IV-C.2 uses
// the XGBoost Python package with default hyper-parameters, which we mirror:
// 100 rounds, eta 0.3, max_depth 6, lambda 1).
//
// Second-order boosting: each round fits a RegressionTree to the per-sample
// gradient/hessian of the loss at the current prediction. With pinball loss
// the tree structure is fitted to the subgradient and each leaf value is then
// refit to the alpha-quantile of the in-leaf residuals (the standard quantile
// gradient-boosting leaf refinement), which restores genuine conditional-
// quantile semantics despite the loss's zero curvature.
#pragma once

#include "models/losses.hpp"
#include "models/regressor.hpp"
#include "models/tree.hpp"

namespace vmincqr::models {

struct GbtConfig {
  Loss loss = Loss::squared();
  int n_rounds = 100;        ///< XGBoost default n_estimators
  double learning_rate = 0.3;  ///< XGBoost default eta
  TreeConfig tree;           ///< defaults mirror XGBoost (depth 6, lambda 1)
  double base_score_quantile = 0.5;  ///< init for pinball mode
};

/// Fitted state of a GradientBoostedTrees ensemble: the base score, the
/// learning rate the forward pass applies, and one node array per round.
struct GbtParams {
  double base_score = 0.0;
  double learning_rate = 0.3;
  std::size_t n_features = 0;
  std::vector<std::vector<TreeNode>> trees;
};

class GradientBoostedTrees final : public Regressor {
 public:
  explicit GradientBoostedTrees(GbtConfig config = {});

  void fit(const Matrix& x, const Vector& y) override;
  [[nodiscard]] Vector predict(const Matrix& x) const override;
  [[nodiscard]] std::unique_ptr<Regressor> clone_config() const override;
  [[nodiscard]] std::string name() const override { return "XGBoost"; }
  [[nodiscard]] bool fitted() const override { return fitted_; }

  [[nodiscard]] std::size_t n_trees() const noexcept { return trees_.size(); }

  /// Gain-based feature importance (normalized to sum 1; all-zero when no
  /// split was ever made). Throws std::logic_error if not fitted.
  [[nodiscard]] Vector feature_importance() const;

  /// Copies out the fitted state. Throws std::logic_error if not fitted.
  [[nodiscard]] GbtParams export_params() const;

  /// Adopts previously exported state and marks the model fitted.
  /// Throws std::invalid_argument on malformed trees or hyperparameters.
  void import_params(const GbtParams& params);

 private:
  /// Rebuilds flat_ from trees_ (fit and import both end here).
  void rebuild_flat();

  GbtConfig config_;
  std::vector<RegressionTree> trees_;
  FlatForest flat_;  ///< SoA planes of the whole ensemble (predict kernel)
  double base_score_ = 0.0;
  std::size_t n_features_ = 0;
  bool fitted_ = false;
};

}  // namespace vmincqr::models
