# Empty compiler generated dependencies file for structural_sta_demo.
# This may be replaced when dependencies are built.
