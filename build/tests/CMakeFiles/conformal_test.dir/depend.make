# Empty dependencies file for conformal_test.
# This may be replaced when dependencies are built.
