// Parametric test bank: the ATE production-test features (IDDQ, trip IDD,
// leakage, Vth probes, structural speed tests) measured at time 0 across
// three temperatures — 1800 features total in the paper's Table II.
//
// Each feature has fixed per-catalogue loadings on the chip latents plus
// per-measurement noise; a configurable fraction of features is
// noise-dominated, reflecting that most of the ~2000 production parameters
// are only weakly related to Vmin.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.hpp"
#include "silicon/process.hpp"

namespace vmincqr::silicon {

/// Families of parametric tests; the family decides the response shape.
enum class ParametricFamily : std::uint8_t {
  kIddq,     ///< quiescent leakage current (log-scale, leakage-driven)
  kTripIdd,  ///< dynamic switching current
  kLeakage,  ///< per-domain leakage
  kVthProbe, ///< DC threshold-voltage probe
  kSpeed,    ///< structural path-delay test
};

struct ParametricConfig {
  std::size_t features_per_temperature = 600;  ///< 600 x 3 temps = 1800
  std::vector<double> temperatures_c = {-45.0, 25.0, 125.0};
  double weak_fraction = 0.55;  ///< fraction of noise-dominated features
  double noise_scale = 0.02;    ///< relative measurement noise (informative)
  double weak_noise_scale = 0.25;  ///< relative noise for weak features
};

/// One catalogue entry: fixed loadings shared by all chips.
struct ParametricFeatureSpec {
  std::string name;
  ParametricFamily family;
  double temperature_c;
  double base;       ///< nominal value
  double load_vth;   ///< response to dvth
  double load_leff;  ///< response to dleff
  double load_leak;  ///< response to log(leak_corner)
  double load_mismatch;  ///< response to local mismatch
  double load_defect = 0.0;  ///< response to latent defect severity; nonzero
                             ///< only for leakage-family tests (gross defects
                             ///< show up as quiescent-current anomalies)
  double noise_rel;  ///< relative measurement noise
};

class ParametricTestBank {
 public:
  /// Builds the feature catalogue deterministically from `catalogue_rng`.
  ParametricTestBank(ParametricConfig config, rng::Rng& catalogue_rng);

  [[nodiscard]] std::size_t n_features() const noexcept { return specs_.size(); }
  [[nodiscard]] const std::vector<ParametricFeatureSpec>& specs() const noexcept {
    return specs_;
  }

  /// Measures all features for one chip (adds measurement noise from
  /// `meas_rng`). Returns n_features() values.
  [[nodiscard]] std::vector<double> measure(const ChipLatent& chip, rng::Rng& meas_rng) const;

  /// Feature metadata rows for Dataset construction.
  [[nodiscard]] std::vector<data::FeatureInfo> feature_info() const;

 private:
  ParametricConfig config_;
  std::vector<ParametricFeatureSpec> specs_;
};

}  // namespace vmincqr::silicon
