// Structural dataset generator: the same experiment as silicon/dataset_gen
// but with SCAN Vmin *computed* from gate-level timing closure (netlist/
// sta + bisection) instead of a closed-form response surface, and with ring
// oscillators simulated from the same standard-cell delay law.
//
// This is the higher-fidelity (slower) path of the substitution described
// in DESIGN.md: the closed-form generator calibrates magnitudes to the
// paper; this one derives them from a physical delay model, and is used to
// check that the CQR results are not an artifact of the closed form
// (bench/ablation_design, tests/structural_test).
#pragma once

#include "data/dataset.hpp"
#include "netlist/cell.hpp"
#include "netlist/netlist.hpp"
#include "silicon/aging.hpp"
#include "silicon/process.hpp"

namespace vmincqr::silicon {

struct StructuralConfig {
  std::size_t n_chips = 120;
  std::uint64_t seed = 77;
  netlist::RandomNetlistConfig design;    ///< the synthetic design
  netlist::DelayModelConfig delay;        ///< shared cell delay law
  /// Clock period is auto-derived so the nominal (zero-shift) chip has
  /// Vmin == target_nominal_vmin at 25 C, time 0.
  double target_nominal_vmin = 0.55;
  std::size_t n_ring_oscillators = 32;
  std::size_t ro_stages = 31;
  double ro_vdd = 0.75;                   ///< RO readout supply
  double ro_noise_rel = 0.004;            ///< RO measurement repeatability
  double vmin_noise_v = 0.0015;           ///< ATE Vmin step/repeatability
  double local_mismatch_sigma = 0.0045;   ///< per-gate Vth mismatch (V)
  std::vector<double> read_points_hours = standard_read_points();
  std::vector<double> vmin_temperatures_c = {-45.0, 25.0, 125.0};
  ProcessConfig process;
  AgingConfig aging;
};

struct StructuralDataset {
  data::Dataset dataset;
  std::vector<ChipLatent> latents;
  double clock_period_ns = 0.0;  ///< derived timing constraint
};

/// Generates the structural experiment. Deterministic in config.seed.
/// Feature layout: [IDDQ proxies x3 at t=0] then [RO frequency x n_ros per
/// read point]. Labels: Vmin per (read point, temperature).
/// Throws std::invalid_argument on an empty configuration and
/// std::runtime_error if the auto-derived clock is infeasible.
StructuralDataset generate_structural_dataset(const StructuralConfig& config);

}  // namespace vmincqr::silicon
