// Dense row-major matrix of doubles.
//
// This is the numeric workhorse shared by every model in the library. It is
// deliberately small: the library only needs dense real matrices up to a few
// thousand rows, so we favour a simple, bounds-checked, exception-safe value
// type over a full BLAS wrapper.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <stdexcept>
#include <string>
#include <vector>

namespace vmincqr::linalg {

/// A real-valued vector. Plain std::vector<double> keeps interop trivial.
using Vector = std::vector<double>;

/// Dense row-major matrix.
///
/// Invariants: data_.size() == rows_ * cols_. Dimensions may be zero (an
/// empty matrix), in which case data_ is empty.
class Matrix {
 public:
  /// Creates an empty 0x0 matrix.
  Matrix() = default;

  /// Creates a rows x cols matrix filled with `fill`.
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  /// Creates a matrix from nested initializer lists; all rows must have the
  /// same length. Throws std::invalid_argument on ragged input.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  /// Builds a matrix from row-major contiguous storage.
  /// Throws std::invalid_argument if data.size() != rows * cols.
  static Matrix from_rows(std::size_t rows, std::size_t cols, Vector data);

  /// Identity matrix of size n.
  static Matrix identity(std::size_t n);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] bool empty() const noexcept { return rows_ == 0 || cols_ == 0; }

  /// Unchecked element access (hot paths).
  double& operator()(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

  /// Bounds-checked element access. Throws std::out_of_range.
  double& at(std::size_t r, std::size_t c);
  [[nodiscard]] double at(std::size_t r, std::size_t c) const;

  /// Pointer to the first element of row r (row-major contiguity contract).
  double* row_ptr(std::size_t r) noexcept { return data_.data() + r * cols_; }
  [[nodiscard]] const double* row_ptr(std::size_t r) const noexcept {
    return data_.data() + r * cols_;
  }

  /// Copies row r into a Vector. Throws std::out_of_range.
  [[nodiscard]] Vector row(std::size_t r) const;
  /// Copies column c into a Vector. Throws std::out_of_range.
  [[nodiscard]] Vector col(std::size_t c) const;

  /// Overwrites row r. Throws on dimension mismatch.
  void set_row(std::size_t r, const Vector& values);
  /// Overwrites column c. Throws on dimension mismatch.
  void set_col(std::size_t c, const Vector& values);

  /// Returns the transpose.
  [[nodiscard]] Matrix transposed() const;

  /// Returns the submatrix given by the listed row indices (in order),
  /// keeping all columns. Indices may repeat. Throws std::out_of_range.
  [[nodiscard]] Matrix take_rows(const std::vector<std::size_t>& indices) const;

  /// Returns the submatrix given by the listed column indices (in order).
  [[nodiscard]] Matrix take_cols(const std::vector<std::size_t>& indices) const;

  /// Returns the contiguous row block [begin, end), keeping all columns —
  /// a single memcpy-shaped slice for batch sharding. Throws
  /// std::out_of_range unless begin <= end <= rows().
  [[nodiscard]] Matrix row_block(std::size_t begin, std::size_t end) const;

  /// Appends a column of ones on the left (intercept augmentation).
  [[nodiscard]] Matrix with_intercept() const;

  /// Raw storage (row-major). Useful for serialization and tests.
  [[nodiscard]] const Vector& data() const noexcept { return data_; }

  bool operator==(const Matrix& other) const = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  Vector data_;
};

/// Human-readable shape string, e.g. "(156 x 1978)".
std::string shape_string(const Matrix& m);

}  // namespace vmincqr::linalg
