file(REMOVE_RECURSE
  "CMakeFiles/monitor_ranking.dir/monitor_ranking.cpp.o"
  "CMakeFiles/monitor_ranking.dir/monitor_ranking.cpp.o.d"
  "monitor_ranking"
  "monitor_ranking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monitor_ranking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
