file(REMOVE_RECURSE
  "CMakeFiles/conformal_property_test.dir/conformal_property_test.cpp.o"
  "CMakeFiles/conformal_property_test.dir/conformal_property_test.cpp.o.d"
  "conformal_property_test"
  "conformal_property_test.pdb"
  "conformal_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conformal_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
