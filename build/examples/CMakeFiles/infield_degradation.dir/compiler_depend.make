# Empty compiler generated dependencies file for infield_degradation.
# This may be replaced when dependencies are built.
