file(REMOVE_RECURSE
  "CMakeFiles/table3_region_prediction.dir/table3_region_prediction.cpp.o"
  "CMakeFiles/table3_region_prediction.dir/table3_region_prediction.cpp.o.d"
  "table3_region_prediction"
  "table3_region_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_region_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
