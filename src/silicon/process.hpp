// Process-variation model for the synthetic chip population.
//
// The paper's data comes from 156 proprietary 5nm automotive chips; this
// module is the documented substitution (DESIGN.md Sec. 1). Each chip gets a
// small set of latent physical parameters; every observable quantity
// (parametric tests, monitor readings, SCAN Vmin) is generated downstream of
// these latents, so features and labels share exactly the causal structure
// the paper's algorithms exploit.
#pragma once

#include <vector>

#include "rng/rng.hpp"

namespace vmincqr::silicon {

/// Latent physical state of one chip (units chosen so magnitudes are
/// physically plausible for a 5nm node).
struct ChipLatent {
  double dvth = 0.0;        ///< global threshold-voltage shift (V), N(0, sigma)
  double dleff = 0.0;       ///< effective channel-length variation (fraction)
  double leak_corner = 1.0; ///< leakage corner multiplier (lognormal, ~1)
  double mismatch = 0.0;    ///< local-mismatch severity (>= 0)
  double activity = 1.0;    ///< aging activity factor (lognormal, ~1)
  double defect = 0.0;      ///< latent defect severity; 0 for healthy chips
};

/// Population-level distribution parameters.
struct ProcessConfig {
  double sigma_vth = 0.012;      ///< std of dvth (V) — ~12 mV global spread
  double sigma_leff = 0.02;      ///< std of dleff (fraction)
  double sigma_leak_log = 0.25;  ///< log-std of leakage corner
  double sigma_mismatch = 0.5;   ///< scale of |N(0,1)| mismatch severity
  double sigma_activity_log = 0.40;  ///< log-std of the aging activity factor
  double defect_rate = 0.05;     ///< fraction of chips with a latent defect
  double defect_scale = 1.0;     ///< mean severity of defects (exponential)
};

/// Samples chip latents i.i.d. from the population distribution.
class ProcessModel {
 public:
  explicit ProcessModel(ProcessConfig config = {});

  /// Draws a single chip. Deterministic in the RNG state.
  [[nodiscard]] ChipLatent sample(rng::Rng& rng) const;

  /// Draws a population of n chips.
  [[nodiscard]] std::vector<ChipLatent> sample_population(std::size_t n, rng::Rng& rng) const;

  [[nodiscard]] const ProcessConfig& config() const noexcept { return config_; }

 private:
  ProcessConfig config_;
};

}  // namespace vmincqr::silicon
