// Golden-file tests for vmincqr_lint: each fixture in tests/lint_fixtures/
// makes exactly one rule fire, suppressions silence diagnostics, and the
// real src/ tree is clean under all five phases (per-TU token + dataflow
// rules, the concurrency & determinism rules, the include-graph pass, the
// cross-TU call-graph pass, and the hot-path allocation analyzer). Suite
// names are lowercase so `ctest -R lint` selects every linter-related test.
#include <gtest/gtest.h>

#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include "callgraph.hpp"
#include "fix.hpp"
#include "hotpath.hpp"
#include "include_graph.hpp"
#include "lint.hpp"
#include "parallel/thread_pool.hpp"
#include "sarif.hpp"

namespace {

namespace fs = std::filesystem;
using vmincqr::lint::analyze_call_graph;
using vmincqr::lint::analyze_call_graph_directory;
using vmincqr::lint::analyze_directory;
using vmincqr::lint::analyze_hot_paths;
using vmincqr::lint::analyze_hot_paths_directory;
using vmincqr::lint::CallGraph;
using vmincqr::lint::CallGraphOptions;
using vmincqr::lint::Diagnostic;
using vmincqr::lint::hotpath_report_json;
using vmincqr::lint::HotPathOptions;
using vmincqr::lint::LayerConfig;
using vmincqr::lint::lint_file;
using vmincqr::lint::lint_source;
using vmincqr::lint::load_hotpath_manifest;
using vmincqr::lint::load_layers;
using vmincqr::lint::load_tier_manifest;
using vmincqr::lint::parse_layers;
using vmincqr::lint::SourceFile;

std::string fixture(const std::string& name) {
  return std::string(VMINCQR_LINT_FIXTURE_DIR) + "/" + name;
}

std::string layering_dir() {
  return std::string(VMINCQR_LINT_FIXTURE_DIR) + "/layering";
}

std::string callgraph_dir() {
  return std::string(VMINCQR_LINT_FIXTURE_DIR) + "/callgraph";
}

CallGraphOptions callgraph_fixture_options() {
  CallGraphOptions opts;
  opts.layers = load_layers(callgraph_dir() + "/layers.toml");
  opts.tolerance_manifest =
      load_tier_manifest(callgraph_dir() + "/numeric_tiers.toml");
  return opts;
}

std::string hotpath_dir() {
  return std::string(VMINCQR_LINT_FIXTURE_DIR) + "/hotpath";
}

HotPathOptions hotpath_fixture_options() {
  HotPathOptions opts;
  opts.layers = load_layers(hotpath_dir() + "/layers.toml");
  opts.alloc_manifest =
      load_hotpath_manifest(hotpath_dir() + "/hotpath_tiers.toml");
  opts.manifest_display = "hotpath_tiers.toml";
  return opts;
}

struct GoldenCase {
  const char* file;
  const char* rule;
};

// One fixture per rule; the linter must fire exactly once, with the right id.
const GoldenCase kGolden[] = {
    {"pragma_once.hpp", "pragma-once"},
    {"using_namespace_header.hpp", "using-namespace-header"},
    {"no_rand.cpp", "no-rand"},
    {"no_endl.cpp", "no-endl"},
    {"float_equality.cpp", "float-equality"},
    {"raw_double_param.hpp", "raw-double-param"},
    {"matrix_by_value.hpp", "matrix-by-value"},
    {"contract_coverage.cpp", "contract-coverage"},
    {"calib_leakage.cpp", "calib-leakage"},
    {"seed_reuse.cpp", "seed-reuse"},
    {"unseeded_rng.cpp", "unseeded-rng"},
    {"raw_thread.cpp", "raw-thread"},
    {"shared_mutable_capture.cpp", "shared-mutable-capture"},
    {"nondeterministic_reduce.cpp", "nondeterministic-reduce"},
    {"rng_in_parallel.cpp", "rng-in-parallel"},
    {"unordered_iteration.cpp", "unordered-iteration"},
    {"clock_in_hot_path.cpp", "clock-in-hot-path"},
    {"atomic_outside_parallel.cpp", "atomic-outside-parallel"},
};

TEST(lint, EveryRuleFiresExactlyOnceOnItsFixture) {
  for (const auto& test_case : kGolden) {
    const auto diags = lint_file(fixture(test_case.file));
    ASSERT_EQ(diags.size(), 1u)
        << test_case.file << ": expected exactly one diagnostic, got "
        << diags.size();
    EXPECT_EQ(diags[0].rule, test_case.rule) << test_case.file;
    EXPECT_GT(diags[0].line, 0u);
  }
}

TEST(lint, FixturesCoverEveryRuleInTheTable) {
  std::set<std::string> fired;
  for (const auto& test_case : kGolden) fired.insert(test_case.rule);
  for (const auto& rule : vmincqr::lint::rule_table()) {
    EXPECT_TRUE(fired.count(rule.id) == 1)
        << "rule '" << rule.id << "' has no golden fixture";
  }
  EXPECT_EQ(fired.size(), vmincqr::lint::rule_table().size());
}

TEST(lint, RuleIdsAreUniqueAcrossAllTables) {
  std::set<std::string> ids;
  for (const auto& rule : vmincqr::lint::rule_table()) {
    EXPECT_TRUE(ids.insert(rule.id).second) << "duplicate rule id " << rule.id;
  }
  for (const auto& rule : vmincqr::lint::graph_rule_table()) {
    EXPECT_TRUE(ids.insert(rule.id).second) << "duplicate rule id " << rule.id;
  }
  for (const auto& rule : vmincqr::lint::callgraph_rule_table()) {
    EXPECT_TRUE(ids.insert(rule.id).second) << "duplicate rule id " << rule.id;
  }
  for (const auto& rule : vmincqr::lint::hotpath_rule_table()) {
    EXPECT_TRUE(ids.insert(rule.id).second) << "duplicate rule id " << rule.id;
  }
}

TEST(lint, SuppressionsSilenceSameLineAndPreviousLine) {
  EXPECT_TRUE(lint_file(fixture("suppressed.cpp")).empty());
}

TEST(lint, CleanFileProducesNoDiagnostics) {
  EXPECT_TRUE(lint_file(fixture("clean.cpp")).empty());
}

TEST(lint, SuppressionIsPerRule) {
  // An allow() for a different rule must not silence the finding.
  const std::string src =
      "bool f(double x) {\n"
      "  return x == 0.0;  // vmincqr-lint: allow(no-endl)\n"
      "}\n";
  const auto diags = lint_source("probe.cpp", src);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "float-equality");
}

TEST(lint, CommentsAndStringsAreNotCode) {
  const std::string src =
      "// rand() and std::endl in comments are fine\n"
      "const char* s = \"x == 0.0 and rand()\";\n"
      "/* block: y != 1.5 */\n";
  EXPECT_TRUE(lint_source("probe.cpp", src).empty());
}

TEST(lint, FormatIsFileLineRuleMessage) {
  const Diagnostic d{"a/b.cpp", 12, "no-rand", "msg"};
  EXPECT_EQ(vmincqr::lint::format(d), "a/b.cpp:12: [no-rand] msg");
}

// --- dataflow rules -------------------------------------------------------

TEST(lint, CalibLeakageNegativeFixtureIsClean) {
  EXPECT_TRUE(lint_file(fixture("calib_leakage_ok.cpp")).empty());
}

TEST(lint, SeedReuseNegativeFixtureIsClean) {
  EXPECT_TRUE(lint_file(fixture("seed_reuse_ok.cpp")).empty());
}

TEST(lint, CalibLeakagePropagatesThroughAssignments) {
  // Two hops: calib rows -> holdout -> x; the fit() three statements later
  // must still fire.
  const std::string src =
      "void train(Model& m, const Split& s) {\n"
      "  Matrix holdout = s.x_calib;\n"
      "  Matrix x = holdout;\n"
      "  m.fit(x, s.train_y);\n"
      "}\n";
  const auto diags = lint_source("probe.cpp", src);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "calib-leakage");
  EXPECT_EQ(diags[0].line, 4u);
}

TEST(lint, SeedReuseComparesVariableSeedsToo) {
  const std::string src =
      "void run(unsigned seed) {\n"
      "  Rng a(seed);\n"
      "  Rng b(seed);\n"
      "}\n";
  const auto diags = lint_source("probe.cpp", src);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "seed-reuse");
}

TEST(lint, RawThreadFlagsEveryBannedPrimitive) {
  const std::string src =
      "void f() {\n"
      "  auto fut = std::async([] { return 1; });\n"
      "  std::atomic<int> counter{0};\n"
      "  std::mutex m;\n"
      "}\n";
  const auto diags = lint_source("src/models/probe.cpp", src);
  ASSERT_EQ(diags.size(), 3u);
  for (const auto& d : diags) EXPECT_EQ(d.rule, "raw-thread");
}

TEST(lint, RawThreadIsLegalInsideTheParallelDirectory) {
  const std::string src =
      "#include <thread>\n"
      "void pool() {\n"
      "  std::thread worker([] {});\n"
      "  std::mutex m;\n"
      "  worker.join();\n"
      "}\n";
  EXPECT_TRUE(lint_source("src/parallel/thread_pool.cpp", src).empty());
}

TEST(lint, UnseededRngFlagsRandomDevice) {
  const std::string src =
      "unsigned entropy() {\n"
      "  std::random_device rd;\n"
      "  return rd();\n"
      "}\n";
  const auto diags = lint_source("probe.cpp", src);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "unseeded-rng");
}

// The statistical-validity rules must stay clean over the real tests/ and
// bench/ trees (regression guard for the seed audit: every CV split and
// conformal arm derives a distinct stream or replays one deliberately in a
// separate scope).
TEST(lint, TestsAndBenchHaveNoStatisticalValidityFindings) {
  const std::set<std::string> stat_rules = {"calib-leakage", "seed-reuse",
                                            "unseeded-rng"};
  std::size_t scanned = 0;
  for (const char* root : {VMINCQR_LINT_TESTS_DIR, VMINCQR_LINT_BENCH_DIR}) {
    for (const auto& entry : fs::recursive_directory_iterator(root)) {
      const std::string path = entry.path().generic_string();
      if (!entry.is_regular_file() || !vmincqr::lint::is_lintable(path)) {
        continue;
      }
      // Fixture files violate rules on purpose.
      if (path.find("lint_fixtures") != std::string::npos) continue;
      ++scanned;
      for (const auto& d : lint_file(path)) {
        if (stat_rules.count(d.rule) > 0) {
          ADD_FAILURE() << vmincqr::lint::format(d);
        }
      }
    }
  }
  EXPECT_GT(scanned, 20u) << "tests/bench trees not found where expected";
}

// --- concurrency & determinism rules (phase 3) ----------------------------

TEST(lint, ConcurrencyNegativeFixtureIsClean) {
  EXPECT_TRUE(lint_file(fixture("concurrency_ok.cpp")).empty());
}

TEST(lint, ByValueCaptureOfPointerLikeHandleIsNotShared) {
  // The capture-list false-positive case: the lambda owns a copy of the
  // handle, so mutating the copy (or writing through it per chunk) is not
  // shared state.
  const std::string src =
      "void advance(Cursor cur, std::size_t n) {\n"
      "  parallel::parallel_for(n, 64,\n"
      "      [cur](std::size_t b, std::size_t e) mutable {\n"
      "        cur.offset = b;\n"
      "        consume(cur, e);\n"
      "      });\n"
      "}\n";
  EXPECT_TRUE(lint_source("probe.cpp", src).empty());
}

TEST(lint, SharedMutableCaptureSeesWritesThroughDefaultRefCapture) {
  const std::string src =
      "void f(Stats& stats, std::size_t n) {\n"
      "  parallel::parallel_for(n, 64, [&](std::size_t b, std::size_t e) {\n"
      "    stats.last_chunk = b + e;\n"
      "  });\n"
      "}\n";
  const auto diags = lint_source("probe.cpp", src);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "shared-mutable-capture");
  EXPECT_EQ(diags[0].line, 3u);
}

TEST(lint, SharedMutableCaptureSeesContainerMutation) {
  const std::string src =
      "void f(std::vector<double>& results, std::size_t n) {\n"
      "  parallel::parallel_for(n, 64, [&](std::size_t b, std::size_t e) {\n"
      "    results.push_back(static_cast<double>(b + e));\n"
      "  });\n"
      "}\n";
  const auto diags = lint_source("probe.cpp", src);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "shared-mutable-capture");
}

TEST(lint, NondeterministicReduceFlagsPostfixIncrement) {
  const std::string src =
      "void f(std::size_t n, std::size_t& hits) {\n"
      "  parallel::parallel_for(n, 64, [&](std::size_t b, std::size_t e) {\n"
      "    if (b < e) hits++;\n"
      "  });\n"
      "}\n";
  const auto diags = lint_source("probe.cpp", src);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "nondeterministic-reduce");
}

TEST(lint, ChunkLocalAccumulationInsideReduceIsClean) {
  const std::string src =
      "double f(const std::vector<double>& xs) {\n"
      "  return parallel::parallel_deterministic_reduce(\n"
      "      xs.size(), 64, 0.0,\n"
      "      [&](std::size_t b, std::size_t e) {\n"
      "        double acc = 0.0;\n"
      "        for (std::size_t i = b; i < e; ++i) acc += xs[i];\n"
      "        return acc;\n"
      "      },\n"
      "      [](double a, double b) { return a + b; });\n"
      "}\n";
  EXPECT_TRUE(lint_source("probe.cpp", src).empty());
}

TEST(lint, RngInParallelFlagsScheduleIndependentSeedOnly) {
  // A fixed seed inside the body replays the same stream in every chunk (or
  // shares one); a chunk-derived seed is the sanctioned idiom.
  const std::string fixed =
      "void f(std::size_t n, std::vector<double>& out) {\n"
      "  parallel::parallel_for(n, 64, [&](std::size_t b, std::size_t e) {\n"
      "    Rng r(1234);\n"
      "    fill(r, out, b, e);\n"
      "  });\n"
      "}\n";
  const auto diags = lint_source("probe.cpp", fixed);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "rng-in-parallel");

  const std::string per_chunk =
      "void f(std::size_t n, std::uint64_t seed,\n"
      "       std::vector<double>& out) {\n"
      "  parallel::parallel_for(n, 64, [&](std::size_t b, std::size_t e) {\n"
      "    Rng r(seed + b);\n"
      "    fill(r, out, b, e);\n"
      "  });\n"
      "}\n";
  EXPECT_TRUE(lint_source("probe.cpp", per_chunk).empty());
}

TEST(lint, RngInParallelFlagsForkInsideBody) {
  // Rng::fork() advances the parent's fork counter, so the i-th child goes
  // to whichever chunk the scheduler ran i-th.
  const std::string src =
      "void f(std::size_t n, rng::Rng& base, std::vector<double>& out) {\n"
      "  parallel::parallel_for(n, 64, [&](std::size_t b, std::size_t e) {\n"
      "    scatter(base.fork(), out, b, e);\n"
      "  });\n"
      "}\n";
  const auto diags = lint_source("probe.cpp", src);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "rng-in-parallel");
}

TEST(lint, UnorderedIterationFlagsExplicitBeginWalk) {
  const std::string src =
      "void f(const std::unordered_set<int>& seen) {\n"
      "  auto it = seen.begin();\n"
      "  consume(it);\n"
      "}\n";
  const auto diags = lint_source("probe.cpp", src);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "unordered-iteration");
}

TEST(lint, UnorderedLookupWithoutIterationIsClean) {
  // Point lookups do not observe the hash order; only iteration does.
  const std::string src =
      "bool f(const std::unordered_set<int>& seen, int key) {\n"
      "  return seen.count(key) > 0;\n"
      "}\n";
  EXPECT_TRUE(lint_source("probe.cpp", src).empty());
}

TEST(lint, ClockIsLegalInBenchAndToolsPaths) {
  const std::string src =
      "long long f() {\n"
      "  return std::chrono::steady_clock::now().time_since_epoch().count();\n"
      "}\n";
  EXPECT_TRUE(lint_source("bench/probe.cpp", src).empty());
  EXPECT_TRUE(lint_source("tools/probe/probe.cpp", src).empty());
  const auto diags = lint_source("src/core/probe.cpp", src);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "clock-in-hot-path");
}

TEST(lint, UnqualifiedAtomicIsLegalOnlyInsideParallel) {
  // Unqualified names slip past raw-thread (which keys on `std::`); the
  // phase-3 rule closes that gap everywhere but src/parallel/.
  const std::string src =
      "void f() {\n"
      "  atomic<int> counter{0};\n"
      "  bump(counter);\n"
      "}\n";
  const auto diags = lint_source("src/models/probe.cpp", src);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "atomic-outside-parallel");
  EXPECT_TRUE(lint_source("src/parallel/queue.cpp", src).empty());
}

TEST(lint, MultiDeclaratorLocalsAreNotSharedState) {
  // Regression: `double g = 0.0, h = 0.0;` and `vector<double> a(n), b(n);`
  // declare chunk-locals for every declarator, including the ones after an
  // initializer — writes to the second name must not be flagged (this shape
  // appears verbatim in the tree/ordered-boost split searches).
  const std::string src =
      "void f(std::size_t n, const std::vector<double>& grad,\n"
      "       const std::vector<double>& hess) {\n"
      "  parallel::parallel_for(n, 64, [&](std::size_t b, std::size_t e) {\n"
      "    std::vector<double> g_acc(n), h_acc(n);\n"
      "    double g_left = 0.0, h_left = 0.0;\n"
      "    for (std::size_t i = b; i < e; ++i) {\n"
      "      g_left += grad[i];\n"
      "      h_left += hess[i];\n"
      "      g_acc[i] = g_left;\n"
      "      h_acc[i] = h_left;\n"
      "    }\n"
      "  });\n"
      "}\n";
  EXPECT_TRUE(lint_source("probe.cpp", src).empty());
}

TEST(lint, ConcurrencyFindingsHonorAllowSuppressions) {
  const std::string src =
      "void f(std::size_t n, double& shared_total) {\n"
      "  parallel::parallel_for(n, 64, [&](std::size_t b, std::size_t e) {\n"
      "    // vmincqr-lint: allow(nondeterministic-reduce)\n"
      "    shared_total += static_cast<double>(e - b);\n"
      "  });\n"
      "}\n";
  EXPECT_TRUE(lint_source("probe.cpp", src).empty());
}

// --- parallel linting (dogfooding the deterministic pool) -----------------

std::vector<std::string> lintable_fixture_files() {
  std::vector<std::string> files;
  for (const auto& entry :
       fs::recursive_directory_iterator(VMINCQR_LINT_FIXTURE_DIR)) {
    const std::string path = entry.path().generic_string();
    if (entry.is_regular_file() && vmincqr::lint::is_lintable(path)) {
      files.push_back(path);
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

TEST(lint, LintFilesSortsDiagnosticsByFileThenLine) {
  // Inputs deliberately out of order; the merged stream must come back
  // sorted by (file, line, rule, message) regardless.
  const std::vector<std::string> files = {fixture("seed_reuse.cpp"),
                                          fixture("calib_leakage.cpp")};
  const auto diags = vmincqr::lint::lint_files(files);
  ASSERT_EQ(diags.size(), 2u);
  EXPECT_NE(diags[0].file.find("calib_leakage"), std::string::npos);
  EXPECT_NE(diags[1].file.find("seed_reuse"), std::string::npos);
}

TEST(lint, ParallelLintSarifIsByteIdenticalAcrossThreadWidths) {
  const std::vector<std::string> files = lintable_fixture_files();
  ASSERT_GT(files.size(), 10u);
  vmincqr::parallel::set_max_threads(1);
  const std::string narrow =
      vmincqr::lint::to_sarif(vmincqr::lint::lint_files(files));
  vmincqr::parallel::set_max_threads(8);
  const std::string wide =
      vmincqr::lint::to_sarif(vmincqr::lint::lint_files(files));
  vmincqr::parallel::set_max_threads(0);  // restore env/hardware resolution
  EXPECT_EQ(narrow, wide);
  // The comparison is meaningful only if the run actually found things.
  EXPECT_NE(narrow.find("\"ruleId\""), std::string::npos);
}

// --- include-graph rules --------------------------------------------------

TEST(lint, LayeringFixtureFiresEachGraphRuleExactlyOnce) {
  const LayerConfig config = load_layers(layering_dir() + "/layers.toml");
  const auto diags = analyze_directory(layering_dir(), config);
  ASSERT_EQ(diags.size(), 3u);
  std::set<std::string> fired;
  for (const auto& d : diags) fired.insert(d.rule);
  EXPECT_EQ(fired, (std::set<std::string>{"layer-violation", "include-cycle",
                                          "unused-include"}));
  for (const auto& rule : vmincqr::lint::graph_rule_table()) {
    EXPECT_TRUE(fired.count(rule.id) == 1)
        << "graph rule '" << rule.id << "' has no layering fixture";
  }
}

TEST(lint, LayerViolationNamesBothModules) {
  const LayerConfig config = load_layers(layering_dir() + "/layers.toml");
  for (const auto& d : analyze_directory(layering_dir(), config)) {
    if (d.rule != "layer-violation") continue;
    EXPECT_NE(d.message.find("'low'"), std::string::npos) << d.message;
    EXPECT_NE(d.message.find("'high'"), std::string::npos) << d.message;
    EXPECT_NE(d.file.find("bad.hpp"), std::string::npos) << d.file;
  }
}

TEST(lint, ModuleOfPrefersTheLongestPrefixAndExactFiles) {
  const LayerConfig config = parse_layers(
      "[modules]\n"
      "core_base = [\"core/units.hpp\"]\n"
      "core_app  = [\"core/\"]\n"
      "[allow]\n"
      "core_base = []\n"
      "core_app  = [\"core_base\"]\n");
  EXPECT_EQ(config.module_of("core/units.hpp"), "core_base");
  EXPECT_EQ(config.module_of("core/pipeline.hpp"), "core_app");
  EXPECT_EQ(config.module_of("elsewhere/x.hpp"), "");
  EXPECT_TRUE(config.edge_allowed("core_app", "core_app"));  // self-edge
  EXPECT_TRUE(config.edge_allowed("core_app", "core_base"));
  EXPECT_FALSE(config.edge_allowed("core_base", "core_app"));
}

TEST(lint, ParseLayersRejectsMalformedInput) {
  EXPECT_THROW(parse_layers("[typo]\n"), std::runtime_error);
  EXPECT_THROW(parse_layers("[modules]\na = not-a-list\n"),
               std::runtime_error);
  EXPECT_THROW(parse_layers("[modules]\na = [\"a/\"]\n[allow]\nb = []\n"),
               std::runtime_error);
  EXPECT_THROW(parse_layers("[modules]\na = [\"a/\"]\n[allow]\na = [\"b\"]\n"),
               std::runtime_error);
}

TEST(lint, RealTreeSatisfiesTheLayeringDag) {
  const LayerConfig config = load_layers(VMINCQR_LINT_LAYERS_TOML);
  EXPECT_FALSE(config.modules.empty());
  for (const auto& d : analyze_directory(VMINCQR_LINT_SRC_DIR, config)) {
    ADD_FAILURE() << vmincqr::lint::format(d);
  }
}

TEST(lint, RealTreeIsClean) {
  std::vector<std::string> files;
  for (const auto& entry :
       fs::recursive_directory_iterator(VMINCQR_LINT_SRC_DIR)) {
    if (entry.is_regular_file() &&
        vmincqr::lint::is_lintable(entry.path().string())) {
      files.push_back(entry.path().string());
    }
  }
  ASSERT_GT(files.size(), 50u) << "src tree not found where expected";
  for (const auto& file : files) {
    const auto diags = lint_file(file);
    for (const auto& d : diags) ADD_FAILURE() << vmincqr::lint::format(d);
  }
}

// --- phase 4: cross-TU call graph -----------------------------------------

TEST(lint, CallGraphFixtureFiresEveryPhase4RuleExactlyOnce) {
  const auto analysis =
      analyze_call_graph_directory(callgraph_dir(), callgraph_fixture_options());
  std::string dump;
  for (const auto& d : analysis.diagnostics) {
    dump += vmincqr::lint::format(d) + "\n";
  }
  ASSERT_EQ(analysis.diagnostics.size(), 7u) << dump;
  std::set<std::string> fired;
  for (const auto& d : analysis.diagnostics) {
    EXPECT_TRUE(fired.insert(d.rule).second)
        << "rule fired twice: " << d.rule << "\n" << dump;
  }
  // The transitive RNG rule deliberately reuses the phase-3 id, so the
  // expected set is the callgraph table plus rng-in-parallel.
  std::set<std::string> expected = {"rng-in-parallel"};
  for (const auto& rule : vmincqr::lint::callgraph_rule_table()) {
    expected.insert(rule.id);
  }
  EXPECT_EQ(fired, expected) << dump;
}

TEST(lint, CallLayerViolationAnchorsAtTheServeRoot) {
  const auto analysis =
      analyze_call_graph_directory(callgraph_dir(), callgraph_fixture_options());
  bool seen = false;
  for (const auto& d : analysis.diagnostics) {
    if (d.rule != "call-layer-violation") continue;
    seen = true;
    // Reported against the serve-module root's first call edge, not the TU
    // that textually contains the fit() call.
    EXPECT_NE(d.file.find("serve/handler.cpp"), std::string::npos) << d.file;
    EXPECT_NE(d.message.find("'handle_request'"), std::string::npos);
    EXPECT_NE(d.message.find("module 'serve'"), std::string::npos);
    EXPECT_NE(d.message.find("handle_request -> refresh_model -> fit"),
              std::string::npos)
        << d.message;
  }
  EXPECT_TRUE(seen);
}

TEST(lint, TransitiveParallelFindingsNameTheReachedHelpers) {
  const auto analysis =
      analyze_call_graph_directory(callgraph_dir(), callgraph_fixture_options());
  for (const auto& d : analysis.diagnostics) {
    if (d.rule == "mutable-static-in-parallel") {
      EXPECT_NE(d.file.find("core/kernels.cpp"), std::string::npos) << d.file;
      EXPECT_NE(d.message.find("'bump_counter'"), std::string::npos);
    }
    if (d.rule == "rng-in-parallel") {
      EXPECT_NE(d.file.find("core/kernels.cpp"), std::string::npos) << d.file;
      EXPECT_NE(d.message.find("'draw_noise'"), std::string::npos);
      EXPECT_NE(d.message.find("hardcoded seed"), std::string::npos);
    }
    // The committed tolerance kernel must stay silent: its float
    // accumulation is the sanctioned opt-out.
    EXPECT_EQ(d.message.find("'fast_norm'"), std::string::npos) << d.message;
  }
}

TEST(lint, TierRecordsAuditEveryAnnotation) {
  const auto analysis =
      analyze_call_graph_directory(callgraph_dir(), callgraph_fixture_options());
  ASSERT_EQ(analysis.tiers.size(), 2u);
  EXPECT_EQ(analysis.tiers[0].function, "fast_norm");
  EXPECT_EQ(analysis.tiers[0].tier, "tolerance");
  EXPECT_EQ(analysis.tiers[1].function, "rogue_kernel");
  EXPECT_EQ(analysis.tiers[1].tier, "tolerance");
  EXPECT_LT(analysis.tiers[0].line, analysis.tiers[1].line);
}

TEST(lint, StaleManifestEntriesAreReportedAgainstTheManifest) {
  CallGraphOptions opts = callgraph_fixture_options();
  opts.tolerance_manifest.insert("ghost_kernel");
  opts.manifest_display = "numeric_tiers.toml";
  const auto analysis = analyze_call_graph_directory(callgraph_dir(), opts);
  bool seen = false;
  for (const auto& d : analysis.diagnostics) {
    if (d.rule != "numeric-tier-manifest" ||
        d.message.find("'ghost_kernel'") == std::string::npos) {
      continue;
    }
    seen = true;
    EXPECT_EQ(d.file, "numeric_tiers.toml");
    EXPECT_NE(d.message.find("stale"), std::string::npos);
  }
  EXPECT_TRUE(seen);
}

TEST(lint, CallGraphResolvesOverloadsByArityWithConservativeFallback) {
  const std::vector<SourceFile> files = {
      {"a.cpp", "a.cpp",
       "double scale(double x) { return x; }\n"
       "double scale(double x, double y) { return x + y; }\n"
       "double use1(double v) { return scale(v); }\n"
       "double use3(double v) { return scale(v, v, v); }\n"}};
  const CallGraph g = CallGraph::build(files, LayerConfig{});
  ASSERT_EQ(g.defs().size(), 4u);
  bool saw_exact = false;
  bool saw_fallback = false;
  for (const auto& c : g.calls()) {
    if (c.name != "scale") continue;
    if (c.arity == 1) {
      saw_exact = true;
      EXPECT_EQ(c.callees, (std::vector<std::size_t>{0}));
    }
    if (c.arity == 3) {
      // No overload admits 3 arguments: the call falls back to the whole
      // visible set rather than silently dropping the edge.
      saw_fallback = true;
      EXPECT_EQ(c.callees, (std::vector<std::size_t>{0, 1}));
    }
  }
  EXPECT_TRUE(saw_exact);
  EXPECT_TRUE(saw_fallback);
}

TEST(lint, CallGraphPrefersMemberAndQualifiedDefinitions) {
  const std::vector<SourceFile> files = {
      {"m.cpp", "m.cpp",
       "struct Model {\n"
       "  double update(double x) { return x; }\n"
       "};\n"
       "double update(double x) { return x + 1.0; }\n"
       "double use_member(Model& m, double v) { return m.update(v); }\n"
       "double use_qualified(double v) { return Model::update(v); }\n"
       "double use_free(double v) { return update(v); }\n"}};
  const CallGraph g = CallGraph::build(files, LayerConfig{});
  ASSERT_EQ(g.defs().size(), 5u);
  EXPECT_EQ(g.defs()[0].display, "Model::update");
  for (const auto& c : g.calls()) {
    if (c.name != "update") continue;
    if (c.member || c.qualifier == "Model") {
      EXPECT_EQ(c.callees, (std::vector<std::size_t>{0}));
    } else {
      // An unqualified call cannot rule the member out: both survive.
      EXPECT_EQ(c.callees, (std::vector<std::size_t>{0, 1}));
    }
  }
}

TEST(lint, CallGraphTreatsExternalCallsAsLeaves) {
  const std::vector<SourceFile> files = {
      {"x.cpp", "x.cpp",
       "double probe(std::vector<double>& xs, double v) {\n"
       "  std::sort(xs.begin(), xs.end());\n"
       "  return mystery_helper(v);\n"
       "}\n"}};
  const CallGraph g = CallGraph::build(files, LayerConfig{});
  bool saw_unresolved = false;
  for (const auto& c : g.calls()) {
    EXPECT_NE(c.name, "sort");  // std:: never enters the graph
    if (c.name == "mystery_helper") {
      saw_unresolved = true;
      EXPECT_TRUE(c.callees.empty());
    }
  }
  EXPECT_TRUE(saw_unresolved);
}

TEST(lint, ReachabilityTerminatesOnCycles) {
  const std::vector<SourceFile> files = {
      {"c.cpp", "c.cpp",
       "double ping(double x) { return pong(x) + 1.0; }\n"
       "double pong(double x) { return ping(x) - 1.0; }\n"}};
  const CallGraph g = CallGraph::build(files, LayerConfig{});
  ASSERT_EQ(g.defs().size(), 2u);
  EXPECT_EQ(g.reachable_from({0}), (std::set<std::size_t>{0, 1}));
  EXPECT_EQ(g.reachable_from({1}), (std::set<std::size_t>{0, 1}));
}

TEST(lint, LayerVisibilityScopesCallResolution) {
  const LayerConfig cfg = parse_layers(
      "[modules]\n"
      "low  = [\"low/\"]\n"
      "high = [\"high/\"]\n"
      "[allow]\n"
      "low  = []\n"
      "high = [\"low\"]\n");
  const std::vector<SourceFile> files = {
      {"low/a.cpp", "low/a.cpp", "double helper(double x) { return x; }\n"},
      {"high/b.cpp", "high/b.cpp",
       "double helper(double x) { return x * 2.0; }\n"
       "double drive(double v) { return helper(v); }\n"},
      {"low/c.cpp", "low/c.cpp",
       "double blind(double v) { return helper(v); }\n"}};
  const CallGraph g = CallGraph::build(files, cfg);
  for (const auto& c : g.calls()) {
    if (c.name != "helper") continue;
    if (g.module_of_tu(c.tu) == "high") {
      // high may include low: both definitions stay candidates.
      EXPECT_EQ(c.callees, (std::vector<std::size_t>{0, 1}));
    } else {
      // low cannot include high, so the high-module overload is invisible.
      EXPECT_EQ(c.callees, (std::vector<std::size_t>{0}));
    }
  }
}

TEST(lint, Phase4NegativeShapesStayClean) {
  // A parameter-derived seed and a const static are both deterministic
  // under any schedule; neither transitive rule may fire.
  const std::string src =
      "double seeded_noise(double seed) {\n"
      "  Rng r(seed);\n"
      "  return r.next();\n"
      "}\n"
      "double counting(double x) {\n"
      "  static const double kBase = 1.0;\n"
      "  return x + kBase;\n"
      "}\n"
      "void drive(std::size_t n) {\n"
      "  parallel::parallel_for(n, 64, [&](std::size_t b, std::size_t e) {\n"
      "    consume(seeded_noise(static_cast<double>(b)),\n"
      "            counting(static_cast<double>(e)));\n"
      "  });\n"
      "}\n";
  const auto analysis =
      analyze_call_graph({{"p.cpp", "p.cpp", src}}, CallGraphOptions{});
  for (const auto& d : analysis.diagnostics) {
    ADD_FAILURE() << vmincqr::lint::format(d);
  }
}

TEST(lint, Phase4FindingsHonorAllowSuppressions) {
  const std::string body =
      "  static double cache = 0.0;\n"
      "  cache += x;\n"
      "  return cache;\n"
      "}\n"
      "void drive(std::size_t n) {\n"
      "  parallel::parallel_for(n, 64, [&](std::size_t b, std::size_t e) {\n"
      "    consume(hot_static(static_cast<double>(b)));\n"
      "  });\n"
      "}\n";
  const std::string bad = "double hot_static(double x) {\n" + body;
  const auto fired =
      analyze_call_graph({{"p.cpp", "p.cpp", bad}}, CallGraphOptions{});
  ASSERT_EQ(fired.diagnostics.size(), 1u);
  EXPECT_EQ(fired.diagnostics[0].rule, "mutable-static-in-parallel");
  const std::string suppressed =
      "double hot_static(double x) {\n"
      "  // vmincqr-lint: allow(mutable-static-in-parallel)\n" +
      body;
  const auto silent =
      analyze_call_graph({{"p.cpp", "p.cpp", suppressed}}, CallGraphOptions{});
  EXPECT_TRUE(silent.diagnostics.empty());
}

TEST(lint, Phase4SarifAndDotAreByteIdenticalAcrossThreadWidths) {
  CallGraphOptions opts = callgraph_fixture_options();
  opts.emit_dot = true;
  vmincqr::parallel::set_max_threads(1);
  const auto narrow = analyze_call_graph_directory(callgraph_dir(), opts);
  const std::string narrow_sarif =
      vmincqr::lint::to_sarif(narrow.diagnostics, narrow.tiers);
  vmincqr::parallel::set_max_threads(8);
  const auto wide = analyze_call_graph_directory(callgraph_dir(), opts);
  const std::string wide_sarif =
      vmincqr::lint::to_sarif(wide.diagnostics, wide.tiers);
  vmincqr::parallel::set_max_threads(0);  // restore env/hardware resolution
  EXPECT_EQ(narrow_sarif, wide_sarif);
  EXPECT_EQ(narrow.dot, wide.dot);
  // The comparison is meaningful only when the run found things and the
  // tier audit trail made it into the log.
  EXPECT_NE(narrow_sarif.find("\"ruleId\""), std::string::npos);
  EXPECT_NE(narrow_sarif.find("\"numericTiers\""), std::string::npos);
}

TEST(lint, DotDumpClustersModulesAndStylesReachability) {
  CallGraphOptions opts = callgraph_fixture_options();
  opts.emit_dot = true;
  const auto analysis = analyze_call_graph_directory(callgraph_dir(), opts);
  EXPECT_NE(analysis.dot.find("digraph vmincqr_callgraph"), std::string::npos);
  EXPECT_NE(analysis.dot.find("cluster_core"), std::string::npos);
  EXPECT_NE(analysis.dot.find("cluster_serve"), std::string::npos);
  EXPECT_NE(analysis.dot.find("fillcolor"), std::string::npos);  // parallel
  EXPECT_NE(analysis.dot.find("dashed"), std::string::npos);     // tolerance
  EXPECT_NE(analysis.dot.find(" -> "), std::string::npos);       // edges
  EXPECT_NE(analysis.dot.find("handle_request"), std::string::npos);
}

// --- phase 5: hot-path allocation & copy analyzer -------------------------

TEST(lint, HotPathFixtureFiresEveryPhase5RuleExactlyOnce) {
  const auto analysis =
      analyze_hot_paths_directory(hotpath_dir(), hotpath_fixture_options());
  std::string dump;
  for (const auto& d : analysis.diagnostics) {
    dump += vmincqr::lint::format(d) + "\n";
  }
  ASSERT_EQ(analysis.diagnostics.size(), 6u) << dump;
  std::set<std::string> fired;
  for (const auto& d : analysis.diagnostics) {
    EXPECT_TRUE(fired.insert(d.rule).second)
        << "rule fired twice: " << d.rule << "\n" << dump;
  }
  std::set<std::string> expected;
  for (const auto& rule : vmincqr::lint::hotpath_rule_table()) {
    expected.insert(rule.id);
  }
  EXPECT_EQ(fired, expected) << dump;
}

TEST(lint, HotPathFindingsCarryWitnessChains) {
  const auto analysis =
      analyze_hot_paths_directory(hotpath_dir(), hotpath_fixture_options());
  for (const auto& d : analysis.diagnostics) {
    if (d.rule == "alloc-in-hot-loop") {
      // The helper lives in core/; only the chain from the serve root
      // explains why it is hot.
      EXPECT_NE(d.file.find("core/kernels.cpp"), std::string::npos) << d.file;
      EXPECT_NE(d.message.find("handle -> alloc_helper"), std::string::npos)
          << d.message;
    }
    if (d.rule == "missed-reserve") {
      EXPECT_NE(d.message.find("out.reserve(xs.size())"), std::string::npos)
          << d.message;
    }
    // The granted function must stay silent: its per-chunk slab is the
    // sanctioned opt-out.
    EXPECT_EQ(d.message.find("'shard_scratch'"), std::string::npos)
        << d.message;
  }
}

TEST(lint, HotPathGrantsAuditEveryAnnotation) {
  const auto analysis =
      analyze_hot_paths_directory(hotpath_dir(), hotpath_fixture_options());
  ASSERT_EQ(analysis.grants.size(), 2u);
  EXPECT_EQ(analysis.grants[0].function, "shard_scratch");
  EXPECT_EQ(analysis.grants[1].function, "rogue_scratch");
  for (const auto& g : analysis.grants) {
    EXPECT_EQ(g.grant, "allow-alloc");
    EXPECT_NE(g.file.find("serve/dispatcher.cpp"), std::string::npos);
  }
  EXPECT_LT(analysis.grants[0].line, analysis.grants[1].line);
}

TEST(lint, HotPathManifestDriftFiresInBothDirections) {
  // Annotated-but-uncommitted: reported at the rogue definition.
  const auto base =
      analyze_hot_paths_directory(hotpath_dir(), hotpath_fixture_options());
  bool seen_rogue = false;
  for (const auto& d : base.diagnostics) {
    if (d.rule != "hot-path-manifest") continue;
    seen_rogue = true;
    EXPECT_NE(d.file.find("serve/dispatcher.cpp"), std::string::npos)
        << d.file;
    EXPECT_NE(d.message.find("'rogue_scratch'"), std::string::npos)
        << d.message;
  }
  EXPECT_TRUE(seen_rogue);
  // Committed-but-unannotated: reported against the manifest itself.
  HotPathOptions opts = hotpath_fixture_options();
  opts.alloc_manifest.insert("ghost_kernel");
  const auto stale = analyze_hot_paths_directory(hotpath_dir(), opts);
  bool seen_ghost = false;
  for (const auto& d : stale.diagnostics) {
    if (d.rule != "hot-path-manifest" ||
        d.message.find("'ghost_kernel'") == std::string::npos) {
      continue;
    }
    seen_ghost = true;
    EXPECT_EQ(d.file, "hotpath_tiers.toml");
    EXPECT_NE(d.message.find("stale"), std::string::npos);
  }
  EXPECT_TRUE(seen_ghost);
}

TEST(lint, HotPathGrantSilencesAllocRulesButNotTheManifestCheck) {
  const std::vector<SourceFile> files = {
      {"serve/s.cpp", "serve/s.cpp",
       "// vmincqr: hot-path(allow-alloc)\n"
       "double shard(double x, std::size_t n) {\n"
       "  double acc = 0.0;\n"
       "  for (std::size_t i = 0; i < n; ++i) {\n"
       "    std::vector<double> slab(4, x);\n"
       "    acc += slab[0];\n"
       "  }\n"
       "  return acc;\n"
       "}\n"}};
  HotPathOptions committed;
  committed.alloc_manifest.insert("shard");
  EXPECT_TRUE(analyze_hot_paths(files, committed).diagnostics.empty());
  // Without the manifest entry the allocation stays granted, but the drift
  // is a finding: the grant never silences its own audit.
  const auto drift = analyze_hot_paths(files, HotPathOptions{});
  ASSERT_EQ(drift.diagnostics.size(), 1u);
  EXPECT_EQ(drift.diagnostics[0].rule, "hot-path-manifest");
}

TEST(lint, HeavyPassByValueSparesMutatedAndMovedParams) {
  // `predict` is an entry name, so the function is hot without any serve
  // module. The mutated copy is load-bearing -> no finding.
  const std::vector<SourceFile> mutated = {
      {"m.cpp", "m.cpp",
       "double predict(std::vector<double> xs) {\n"
       "  xs.push_back(1.0);\n"
       "  return xs.back();\n"
       "}\n"}};
  for (const auto& d : analyze_hot_paths(mutated, HotPathOptions{}).diagnostics) {
    EXPECT_NE(d.rule, "heavy-pass-by-value") << vmincqr::lint::format(d);
  }
  const std::vector<SourceFile> copied = {
      {"m.cpp", "m.cpp",
       "double predict(std::vector<double> xs) {\n"
       "  return xs.back();\n"
       "}\n"}};
  const auto fired = analyze_hot_paths(copied, HotPathOptions{});
  ASSERT_EQ(fired.diagnostics.size(), 1u);
  EXPECT_EQ(fired.diagnostics[0].rule, "heavy-pass-by-value");
}

TEST(lint, HotPathReportProfilesEveryHotFunction) {
  const auto analysis =
      analyze_hot_paths_directory(hotpath_dir(), hotpath_fixture_options());
  bool saw_alloc_helper = false;
  bool saw_granted = false;
  for (const auto& c : analysis.costs) {
    if (c.function == "alloc_helper") {
      saw_alloc_helper = true;
      EXPECT_TRUE(c.serve_reachable);
      EXPECT_GE(c.loop_depth, 1u);
      EXPECT_GE(c.alloc_sites, 1u);
      EXPECT_NE(c.chain.find("handle"), std::string::npos) << c.chain;
    }
    if (c.function == "shard_scratch") {
      saw_granted = true;
      // Counts are pre-grant: the profile still sees the slab.
      EXPECT_GE(c.alloc_sites, 1u);
    }
    if (c.function == "grow_rows") {
      // Hot through both cones: serve's handle and the predict entry.
      EXPECT_TRUE(c.serve_reachable);
      EXPECT_TRUE(c.predict_reachable);
    }
  }
  EXPECT_TRUE(saw_alloc_helper);
  EXPECT_TRUE(saw_granted);
}

TEST(lint, HotPathSarifAndReportAreByteIdenticalAcrossThreadWidths) {
  vmincqr::parallel::set_max_threads(1);
  const auto narrow =
      analyze_hot_paths_directory(hotpath_dir(), hotpath_fixture_options());
  const std::string narrow_sarif =
      vmincqr::lint::to_sarif(narrow.diagnostics, {}, narrow.grants);
  const std::string narrow_report = hotpath_report_json(narrow);
  vmincqr::parallel::set_max_threads(8);
  const auto wide =
      analyze_hot_paths_directory(hotpath_dir(), hotpath_fixture_options());
  const std::string wide_sarif =
      vmincqr::lint::to_sarif(wide.diagnostics, {}, wide.grants);
  const std::string wide_report = hotpath_report_json(wide);
  vmincqr::parallel::set_max_threads(0);  // restore env/hardware resolution
  EXPECT_EQ(narrow_sarif, wide_sarif);
  EXPECT_EQ(narrow_report, wide_report);
  EXPECT_NE(narrow_sarif.find("\"hotPathGrants\""), std::string::npos);
  EXPECT_NE(narrow_report.find("\"vmincqr-hotpath-report/1\""),
            std::string::npos);
}

TEST(lint, HotPathRealTreeIsCleanAndProfilesTheServeKernel) {
  HotPathOptions opts;
  opts.layers = load_layers(VMINCQR_LINT_LAYERS_TOML);
  opts.alloc_manifest = load_hotpath_manifest(VMINCQR_LINT_HOTPATH_TOML);
  const auto analysis =
      analyze_hot_paths_directory(VMINCQR_LINT_SRC_DIR, opts);
  for (const auto& d : analysis.diagnostics) {
    ADD_FAILURE() << vmincqr::lint::format(d);
  }
  // The report must cover the paper's serving kernel and its grant.
  bool saw_predict_batch = false;
  for (const auto& c : analysis.costs) {
    if (c.function == "VminPredictor::predict_batch") {
      saw_predict_batch = true;
      EXPECT_TRUE(c.serve_reachable);
    }
  }
  EXPECT_TRUE(saw_predict_batch);
  bool granted_predict_batch = false;
  for (const auto& g : analysis.grants) {
    if (g.function == "VminPredictor::predict_batch") {
      granted_predict_batch = true;
    }
  }
  EXPECT_TRUE(granted_predict_batch);
}

// --- SARIF output ---------------------------------------------------------

// Minimal structural JSON check: braces/brackets balance outside string
// literals and every string terminates. Enough to catch broken escaping or
// a missing comma brace without a JSON library.
bool looks_like_json(const std::string& s) {
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (in_string) {
      if (c == '\\') {
        ++i;  // skip the escaped character
      } else if (c == '"') {
        in_string = false;
      } else if (c == '\n') {
        return false;  // raw newline inside a string
      }
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') {
      if (--depth < 0) return false;
    }
  }
  return depth == 0 && !in_string;
}

TEST(lint, SarifHasTheRequiredShape) {
  const std::vector<Diagnostic> diags = {
      {"src/a.cpp", 3, "no-endl", "use \"\\n\""},
      {"src/b.hpp", 0, "pragma-once", "missing"},
  };
  const std::string sarif = vmincqr::lint::to_sarif(diags);
  EXPECT_TRUE(looks_like_json(sarif));
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"name\": \"vmincqr_lint\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\": \"no-endl\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\": \"pragma-once\""), std::string::npos);
  // Line 0 (whole-file diagnostics) must clamp to SARIF's 1-based minimum.
  EXPECT_NE(sarif.find("\"startLine\": 1"), std::string::npos);
  EXPECT_EQ(sarif.find("\"startLine\": 0"), std::string::npos);
  // The quote in the message must arrive escaped.
  EXPECT_NE(sarif.find("use \\\"\\\\n\\\""), std::string::npos);
}

TEST(lint, SarifListsEveryRuleEvenWhenClean) {
  const std::string sarif = vmincqr::lint::to_sarif({});
  EXPECT_TRUE(looks_like_json(sarif));
  EXPECT_EQ(sarif.find("\"ruleId\""), std::string::npos);
  for (const auto& rule : vmincqr::lint::rule_table()) {
    EXPECT_NE(sarif.find("\"id\": \"" + std::string(rule.id) + "\""),
              std::string::npos)
        << rule.id;
  }
  for (const auto& rule : vmincqr::lint::graph_rule_table()) {
    EXPECT_NE(sarif.find("\"id\": \"" + std::string(rule.id) + "\""),
              std::string::npos)
        << rule.id;
  }
  for (const auto& rule : vmincqr::lint::callgraph_rule_table()) {
    EXPECT_NE(sarif.find("\"id\": \"" + std::string(rule.id) + "\""),
              std::string::npos)
        << rule.id;
  }
  for (const auto& rule : vmincqr::lint::hotpath_rule_table()) {
    EXPECT_NE(sarif.find("\"id\": \"" + std::string(rule.id) + "\""),
              std::string::npos)
        << rule.id;
  }
}

TEST(lint, EveryGoldenFixtureYieldsASarifResult) {
  for (const auto& test_case : kGolden) {
    const std::string sarif =
        vmincqr::lint::to_sarif(lint_file(fixture(test_case.file)));
    EXPECT_TRUE(looks_like_json(sarif)) << test_case.file;
    EXPECT_NE(sarif.find("\"ruleId\": \"" + std::string(test_case.rule) +
                         "\""),
              std::string::npos)
        << test_case.file;
  }
}

TEST(lint, JsonEscapeHandlesControlCharacters) {
  EXPECT_EQ(vmincqr::lint::json_escape("a\"b\\c\nd\te"),
            "a\\\"b\\\\c\\nd\\te");
  EXPECT_EQ(vmincqr::lint::json_escape(std::string(1, '\x01')), "\\u0001");
}

// --- --fix ----------------------------------------------------------------

TEST(lint, FixRewritesEndlToNewlineLiteral) {
  const std::string before =
      "#include <iostream>\n"
      "void log_it() {\n"
      "  std::cout << 1 << std::endl;\n"
      "  std::cout << 2 << endl;\n"
      "}\n";
  const std::string after = vmincqr::lint::apply_fixes("probe.cpp", before);
  EXPECT_EQ(after.find("endl"), std::string::npos);
  EXPECT_NE(after.find("<< \"\\n\";"), std::string::npos);
  // The fixed text lints clean for no-endl.
  for (const auto& d : lint_source("probe.cpp", after)) {
    EXPECT_NE(d.rule, "no-endl") << vmincqr::lint::format(d);
  }
}

TEST(lint, FixInsertsPragmaOnceAfterLeadingComment) {
  const std::string before =
      "// A header that forgot its guard.\n"
      "\n"
      "struct Probe {};\n";
  const std::string after = vmincqr::lint::apply_fixes("probe.hpp", before);
  EXPECT_NE(after.find("#pragma once"), std::string::npos);
  // The comment stays on top; the pragma lands before the first declaration.
  EXPECT_LT(after.find("// A header"), after.find("#pragma once"));
  EXPECT_LT(after.find("#pragma once"), after.find("struct Probe"));
  for (const auto& d : lint_source("probe.hpp", after)) {
    EXPECT_NE(d.rule, "pragma-once") << vmincqr::lint::format(d);
  }
  // .cpp files never receive a pragma.
  EXPECT_EQ(vmincqr::lint::apply_fixes("probe.cpp", before), before);
}

TEST(lint, FixesAreIdempotent) {
  const std::string sources[] = {
      "// doc\nstruct Probe {};\n",
      "#include <iostream>\nvoid f() { std::cout << std::endl; }\n",
      "#pragma once\nstruct Ok {};\n",
  };
  for (const auto& before : sources) {
    const std::string once = vmincqr::lint::apply_fixes("probe.hpp", before);
    const std::string twice = vmincqr::lint::apply_fixes("probe.hpp", once);
    EXPECT_EQ(once, twice);
  }
}

TEST(lint, FixRespectsAllowSuppressions) {
  const std::string before =
      "void f() {\n"
      "  std::cout << std::endl;  // vmincqr-lint: allow(no-endl)\n"
      "}\n";
  EXPECT_EQ(vmincqr::lint::apply_fixes("probe.cpp", before), before);
}

TEST(lint, FixRewritesUnorderedIterationToSortedContainers) {
  const std::string before =
      "#include <unordered_map>\n"
      "double total(const std::unordered_map<int, double>& weights) {\n"
      "  double t = 0.0;\n"
      "  for (const auto& kv : weights) {\n"
      "    t = t + kv.second;\n"
      "  }\n"
      "  return t;\n"
      "}\n";
  const std::string after = vmincqr::lint::apply_fixes("probe.cpp", before);
  EXPECT_EQ(after.find("unordered_map"), std::string::npos);
  EXPECT_NE(after.find("#include <map>"), std::string::npos);
  EXPECT_NE(after.find("std::map<int, double>& weights"), std::string::npos);
  // The fixed text lints clean for unordered-iteration.
  for (const auto& d : lint_source("probe.cpp", after)) {
    EXPECT_NE(d.rule, "unordered-iteration") << vmincqr::lint::format(d);
  }
  // And the fix is idempotent.
  EXPECT_EQ(vmincqr::lint::apply_fixes("probe.cpp", after), after);
}

TEST(lint, FixSkipsUnorderedWithCustomHasher) {
  // A third template argument (custom hasher) has no sorted counterpart, so
  // the rewrite must leave the whole TU untouched; the finding stays
  // diagnose-only.
  const std::string before =
      "#include <unordered_map>\n"
      "double total(const std::unordered_map<int, double, KeyHash>& weights) {\n"
      "  double t = 0.0;\n"
      "  for (const auto& kv : weights) {\n"
      "    t = t + kv.second;\n"
      "  }\n"
      "  return t;\n"
      "}\n";
  EXPECT_EQ(vmincqr::lint::apply_fixes("probe.cpp", before), before);
}

TEST(lint, FixLeavesUnorderedLookupOnlyCodeAlone) {
  // No iteration → no live finding → no rewrite: lookup-heavy code keeps
  // its O(1) container.
  const std::string before =
      "#include <unordered_map>\n"
      "bool has(const std::unordered_map<int, double>& weights, int key) {\n"
      "  return weights.count(key) > 0;\n"
      "}\n";
  EXPECT_EQ(vmincqr::lint::apply_fixes("probe.cpp", before), before);
}

TEST(lint, FixInsertsReserveBeforeBoundedGrowthLoop) {
  const std::string before =
      "#include <vector>\n"
      "std::vector<double> doubled(const std::vector<double>& xs) {\n"
      "  std::vector<double> out;\n"
      "  for (std::size_t i = 0; i < xs.size(); ++i) {\n"
      "    out.push_back(2.0 * xs[i]);\n"
      "  }\n"
      "  return out;\n"
      "}\n";
  const std::string after = vmincqr::lint::apply_fixes("probe.cpp", before);
  EXPECT_NE(after.find("  out.reserve(xs.size());\n  for "),
            std::string::npos)
      << after;
  EXPECT_EQ(vmincqr::lint::apply_fixes("probe.cpp", after), after);
}

TEST(lint, FixSkipsReserveWhenContainerAccumulatesAcrossAnOuterLoop) {
  // The inner bound is not the total growth: reserving it per outer
  // iteration would be misleading, so the loop is left alone.
  const std::string before =
      "#include <vector>\n"
      "std::vector<double> flatten(const std::vector<std::vector<double>>& m) {\n"
      "  std::vector<double> out;\n"
      "  for (const auto& row : m) {\n"
      "    for (std::size_t i = 0; i < row.size(); ++i) {\n"
      "      out.push_back(row[i]);\n"
      "    }\n"
      "  }\n"
      "  return out;\n"
      "}\n";
  EXPECT_EQ(vmincqr::lint::apply_fixes("probe.cpp", before), before);
}

TEST(lint, FixSkipsReserveForPresizedOrSelfBoundedContainers) {
  // Already reserved -> nothing to do; and a loop bounded by the growing
  // container itself must never gain `out.reserve(out.size())`.
  const std::string reserved =
      "#include <vector>\n"
      "std::vector<double> doubled(const std::vector<double>& xs) {\n"
      "  std::vector<double> out;\n"
      "  out.reserve(xs.size());\n"
      "  for (std::size_t i = 0; i < xs.size(); ++i) {\n"
      "    out.push_back(2.0 * xs[i]);\n"
      "  }\n"
      "  return out;\n"
      "}\n";
  EXPECT_EQ(vmincqr::lint::apply_fixes("probe.cpp", reserved), reserved);
  const std::string self_bounded =
      "#include <vector>\n"
      "void grow(std::vector<double>& seed) {\n"
      "  std::vector<double> out;\n"
      "  for (std::size_t i = 0; i < out.size(); ++i) {\n"
      "    out.push_back(1.0);\n"
      "  }\n"
      "  seed = out;\n"
      "}\n";
  EXPECT_EQ(vmincqr::lint::apply_fixes("probe.cpp", self_bounded),
            self_bounded);
}

TEST(lint, FixRewritesUnmutatedByValueHeavyParamsInHeaders) {
  const std::string before =
      "#pragma once\n"
      "#include <string>\n"
      "#include <vector>\n"
      "inline double total(std::vector<double> xs, std::string label) {\n"
      "  double s = static_cast<double>(label.size());\n"
      "  for (std::size_t i = 0; i < xs.size(); ++i) s += xs[i];\n"
      "  return s;\n"
      "}\n";
  const std::string after = vmincqr::lint::apply_fixes("probe.hpp", before);
  EXPECT_NE(after.find("const std::vector<double>& xs"), std::string::npos)
      << after;
  EXPECT_NE(after.find("const std::string& label"), std::string::npos)
      << after;
  EXPECT_EQ(vmincqr::lint::apply_fixes("probe.hpp", after), after);
  // The signature of a .cpp definition must keep matching its header
  // declaration, so the same text is untouched there.
  EXPECT_EQ(vmincqr::lint::apply_fixes("probe.cpp", before), before);
}

TEST(lint, FixLeavesMutatedAndVirtualByValueParamsAlone) {
  // A mutated copy is load-bearing; a virtual signature must change in
  // lockstep with its base. Both stay diagnose-only.
  const std::string mutated =
      "#pragma once\n"
      "#include <vector>\n"
      "inline double consume(std::vector<double> xs) {\n"
      "  xs.push_back(1.0);\n"
      "  return xs.back();\n"
      "}\n";
  EXPECT_EQ(vmincqr::lint::apply_fixes("probe.hpp", mutated), mutated);
  const std::string virt =
      "#pragma once\n"
      "#include <vector>\n"
      "struct Base {\n"
      "  virtual double score(std::vector<double> xs) { return xs.back(); }\n"
      "};\n";
  EXPECT_EQ(vmincqr::lint::apply_fixes("probe.hpp", virt), virt);
}

}  // namespace
