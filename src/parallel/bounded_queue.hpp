// Bounded multi-producer FIFO queue — the admission-control primitive behind
// the serving daemon's backpressure contract (DESIGN.md §11).
//
// Semantics, in order of importance:
//   1. Bounded. try_push never blocks and never grows the queue past its
//      capacity: a full queue sheds (returns Push::kFull) so the CALLER
//      turns overload into a typed rejection instead of unbounded latency.
//   2. FIFO. pop_batch drains from the front in admission order; with a
//      single consumer, service order equals admission order.
//   3. Admission sequencing. Every accepted push gets the next value of a
//      monotone sequence counter, assigned under the same lock as the
//      insertion — so sequence order IS queue order even with concurrent
//      producers (the daemon's FIFO-fairness proof leans on this).
//   4. Clean shutdown. close() wakes blocked consumers; items already
//      admitted keep draining — pop_batch returns 0 only when the queue is
//      both closed and empty.
//
// Like everything in src/parallel/, this is the only place the raw std
// threading primitives it uses may appear (raw-thread lint rule).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

#include "core/contracts.hpp"

namespace vmincqr::parallel {

/// try_push outcome: accepted, shed on a full queue, or refused because the
/// queue is closed (shutdown in progress).
enum class Push : std::uint8_t { kAccepted, kFull, kClosed };

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {
    VMINCQR_REQUIRE(capacity > 0, "BoundedQueue: capacity must be positive");
  }
  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Non-blocking admission. On kAccepted, *sequence receives the item's
  /// admission number (0-based, monotone in queue order); it is untouched
  /// on kFull / kClosed.
  Push try_push(T item, std::uint64_t* sequence = nullptr) {
    return try_push_sequenced(std::move(item), [&](std::uint64_t admitted) {
      if (sequence != nullptr) *sequence = admitted;
    });
  }

  /// Like try_push, but invokes on_admit(sequence) UNDER the queue lock,
  /// before the item becomes poppable. Anything on_admit writes is therefore
  /// ordered before any consumer's view of the item (pop_batch takes the
  /// same lock) — the daemon uses this to stamp the admission sequence into
  /// the shared response slot without racing its batcher.
  template <typename OnAdmit>
  Push try_push_sequenced(T item, OnAdmit&& on_admit) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return Push::kClosed;
      if (items_.size() >= capacity_) return Push::kFull;
      on_admit(next_sequence_);
      ++next_sequence_;
      items_.push_back(std::move(item));
      if (items_.size() > max_depth_) max_depth_ = items_.size();
    }
    ready_cv_.notify_one();
    return Push::kAccepted;
  }

  /// Blocks until at least one item is available (or the queue is closed),
  /// then moves up to max_items from the front into `out` (cleared first).
  /// Returns the number drained; 0 means closed AND empty — the consumer's
  /// signal to exit after a clean drain.
  std::size_t pop_batch(std::vector<T>& out, std::size_t max_items) {
    VMINCQR_REQUIRE(max_items > 0, "BoundedQueue: max_items must be positive");
    out.clear();
    std::unique_lock<std::mutex> lock(mutex_);
    ready_cv_.wait(lock, [&] { return closed_ || !items_.empty(); });
    while (!items_.empty() && out.size() < max_items) {
      out.push_back(std::move(items_.front()));
      items_.pop_front();
    }
    return out.size();
  }

  /// Stops admissions (subsequent try_push returns kClosed) and wakes every
  /// blocked consumer. Already-admitted items remain poppable. Idempotent.
  void close() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    ready_cv_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  [[nodiscard]] std::size_t depth() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  /// High-water mark of depth() over the queue's lifetime — the soak test's
  /// evidence that backpressure actually bounded the queue.
  [[nodiscard]] std::size_t max_depth() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return max_depth_;
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  mutable std::mutex mutex_;
  std::condition_variable ready_cv_;
  std::deque<T> items_;
  std::size_t capacity_;
  std::size_t max_depth_ = 0;
  std::uint64_t next_sequence_ = 0;
  bool closed_ = false;
};

}  // namespace vmincqr::parallel
