// Production-test screening (paper Sec. I / II-B motivation): use calibrated
// Vmin intervals at time 0 to screen chips against the min_spec limit with
// explicit overkill / underkill accounting.
//
// Decision rule per chip:
//   * upper bound <= min_spec  -> PASS  (confidently within spec)
//   * lower bound >  min_spec  -> FAIL  (confidently out of spec)
//   * otherwise                -> RETEST (interval straddles the limit)
// Compared against the point-prediction rule (pass iff y_hat <= min_spec),
// which silently converts interval uncertainty into overkill/underkill.
#include <algorithm>
#include <cstdio>

#include "conformal/cqr.hpp"
#include "conformal/predictive.hpp"
#include "core/pipeline.hpp"
#include "core/screening.hpp"
#include "data/feature_select.hpp"
#include "models/factory.hpp"
#include "silicon/dataset_gen.hpp"

using namespace vmincqr;

int main() {
  // Larger population so the screening counts are meaningful; the defect
  // subpopulation (~5%) provides the out-of-spec chips.
  silicon::GeneratorConfig gen_config;
  gen_config.n_chips = 400;
  const auto generated = silicon::generate_dataset(gen_config);
  const data::Dataset& ds = generated.dataset;

  const core::Scenario scenario{0.0, -45.0, core::FeatureSet::kBoth};
  const auto data = core::assemble_scenario(ds, scenario);

  // Train on the first 300 chips, screen the remaining 100.
  std::vector<std::size_t> train_rows, screen_rows;
  for (std::size_t i = 0; i < ds.n_chips(); ++i) {
    (i < 300 ? train_rows : screen_rows).push_back(i);
  }
  const auto x_train = data.x.take_rows(train_rows);
  linalg::Vector y_train(train_rows.size());
  for (std::size_t i = 0; i < train_rows.size(); ++i) {
    y_train[i] = data.y[train_rows[i]];
  }
  const auto x_screen = data.x.take_rows(screen_rows);

  const auto cols = data::top_correlated(x_train, y_train, 32);
  const double alpha = 0.1;
  conformal::ConformalizedQuantileRegressor cqr(
      core::MiscoverageAlpha{alpha}, models::make_quantile_pair(models::ModelKind::kCatboost, core::MiscoverageAlpha{alpha}));
  cqr.fit(x_train.take_cols(cols), y_train);
  const auto band = cqr.predict_interval(x_screen.take_cols(cols));

  auto point_model = models::make_point_regressor(models::ModelKind::kLinear);
  point_model->fit(x_train.take_cols(cols), y_train);
  const auto y_hat = point_model->predict(x_screen.take_cols(cols));

  // min_spec: a realistic limit placed above the healthy population
  // (healthy cold Vmin ~ 0.595 V + spread).
  const core::Volt min_spec{0.655};

  linalg::Vector y_screen(screen_rows.size());
  for (std::size_t i = 0; i < screen_rows.size(); ++i) {
    y_screen[i] = data.y[screen_rows[i]];
  }

  const auto interval_rule =
      core::screen_batch_interval(y_screen, band.lower, band.upper, min_spec);
  const auto point_rule =
      core::screen_batch_point(y_screen, y_hat, /*guard_band=*/core::Millivolt{0.0},
                              min_spec);

  std::printf("production screening @ %s, min_spec = %.0f mV\n",
              core::describe(scenario).c_str(), min_spec.to_millivolts().value());
  std::printf("screened %zu chips, %zu truly out of spec\n\n",
              screen_rows.size(), interval_rule.n_truly_bad);
  std::printf("interval rule (CQR CatBoost, 90%% bands):\n");
  std::printf("  pass=%zu fail=%zu retest=%zu overkill=%zu underkill=%zu "
              "(retest rate %.0f%%)\n",
              interval_rule.n_pass, interval_rule.n_fail,
              interval_rule.n_retest, interval_rule.n_overkill,
              interval_rule.n_underkill, interval_rule.retest_rate() * 100.0);
  std::printf("point rule (Linear Regression estimate, no guard band):\n");
  std::printf("  pass=%zu fail=%zu retest=0 overkill=%zu underkill=%zu\n\n",
              point_rule.n_pass, point_rule.n_fail, point_rule.n_overkill,
              point_rule.n_underkill);

  // Risk view: calibrated per-chip P(Vmin > min_spec) from the conformal
  // predictive distribution — a graded alternative to pass/fail.
  conformal::ConformalPredictiveDistribution cps(
      models::make_point_regressor(models::ModelKind::kLinear));
  cps.fit(x_train.take_cols(cols), y_train);
  const auto risk =
      cps.exceedance_probabilities(x_screen.take_cols(cols), min_spec);
  std::vector<std::size_t> order(risk.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return risk[a] > risk[b]; });
  std::printf("highest calibrated shipping risk P(Vmin > min_spec):\n");
  for (std::size_t k = 0; k < 5 && k < order.size(); ++k) {
    const auto i = order[k];
    std::printf("  chip %-4zu risk=%5.1f%%  true Vmin=%.0f mV (%s)\n",
                screen_rows[i], risk[i] * 100.0, y_screen[i] * 1e3,
                y_screen[i] > min_spec ? "out of spec" : "in spec");
  }

  std::printf(
      "\nThe interval rule converts uncertain calls into explicit retests\n"
      "instead of silent overkill/underkill (Sec. II-B), and the conformal\n"
      "predictive distribution grades the remaining shipping risk per chip.\n");
  return 0;
}
