// Reproduces Fig. 2 of the paper: R^2 of SCAN Vmin point prediction for the
// five regressors (LR, GP, XGBoost, CatBoost, NN) at every stress read point
// and test temperature, with the Sec. IV-C feature-selection protocol
// (CFS 1..10 for LR/GP/NN, intrinsic selection for the tree models).
//
// Also prints the RMSE table backing the Sec. IV-D claims (good models in
// the 2.5-7 mV band; GP notably worse).
#include "bench_common.hpp"

using namespace vmincqr;

int main() {
  bench::Stopwatch watch;
  const auto generated = bench::make_paper_dataset();
  const auto config = bench::paper_experiment_config();
  const auto scenarios = bench::paper_scenario_grid(core::FeatureSet::kBoth);

  std::printf("=== Fig. 2: SCAN Vmin point prediction (R^2, 4-fold CV) ===\n");
  std::printf("dataset: %zu chips, %zu features\n\n",
              generated.dataset.n_chips(), generated.dataset.n_features());

  const auto results = core::parallel_map<std::vector<core::PointModelScore>>(
      scenarios.size(), [&](std::size_t i) {
        return core::evaluate_point_models(generated.dataset, scenarios[i],
                                           config);
      });

  const auto& zoo = models::point_model_zoo();
  core::TextTable r2_table(
      {"Read point", "Temp", "LR", "GP", "XGBoost", "CatBoost", "NN"});
  core::TextTable rmse_table(
      {"Read point", "Temp", "LR", "GP", "XGBoost", "CatBoost", "NN"});
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    std::vector<std::string> r2_row = {
        bench::hours_label(scenarios[i].read_point_hours),
        bench::temp_label(scenarios[i].temperature_c)};
    std::vector<std::string> rmse_row = r2_row;
    for (std::size_t m = 0; m < zoo.size(); ++m) {
      r2_row.push_back(core::format_double(results[i][m].r2, 3));
      rmse_row.push_back(core::format_double(results[i][m].rmse * 1e3, 2));
    }
    r2_table.add_row(r2_row);
    rmse_table.add_row(rmse_row);
  }
  std::printf("%s\n", r2_table.to_string().c_str());
  std::printf("=== RMSE (mV) — Sec. IV-D ===\n%s\n",
              rmse_table.to_string().c_str());

  // Paper-shape checks (Sec. IV-D narrative).
  double lr_mean_r2 = 0.0, gp_mean_rmse = 0.0, best_nongp_rmse = 0.0;
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    lr_mean_r2 += results[i][0].r2;
    gp_mean_rmse += results[i][1].rmse;
    double cell_best = 1e18;
    for (std::size_t m = 0; m < zoo.size(); ++m) {
      if (m == 1) continue;  // skip GP
      cell_best = std::min(cell_best, results[i][m].rmse);
    }
    best_nongp_rmse += cell_best;
  }
  const auto n = static_cast<double>(scenarios.size());
  std::printf("shape checks:\n");
  std::printf("  LR mean R^2 across all cells           : %.3f (paper: competitive overall)\n",
              lr_mean_r2 / n);
  std::printf("  best non-GP RMSE, mean across cells    : %.2f mV (paper: 2.5-7 mV)\n",
              best_nongp_rmse / n * 1e3);
  std::printf("  GP RMSE, mean across cells             : %.2f mV (paper: 12-22 mV, worst)\n",
              gp_mean_rmse / n * 1e3);
  std::printf("\n[fig2_point_prediction] done in %.1f s\n", watch.seconds());
  return 0;
}
