// Negative fixture for calib-leakage: calibration rows flow only into the
// sanctioned APIs (fit_with_split / calibrate), and fit() sees train rows
// only — the rule must stay silent.
void clean_train(Model& model, const Split& split) {
  Matrix x_calibration = split.calibration_features;
  model.fit(split.train_features, split.train_labels);
  model.fit_with_split(split.train_features, x_calibration);
  model.calibrate(x_calibration);
  bool ready = model.is_calibrated;
  (void)ready;
}
