#include "netlist/sta.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "netlist/cell.hpp"

namespace vmincqr::netlist {

TimingResult run_sta(const Netlist& netlist, const DelayModelConfig& config,
                     double vdd, double temp_c, const GateVthShift& vth_shift) {
  if (vdd <= 0.0) throw std::invalid_argument("run_sta: vdd <= 0");
  const auto& library = standard_cell_library();

  TimingResult result;
  result.arrival.assign(netlist.n_nodes(), 0.0);
  std::vector<std::int64_t> pred(netlist.n_nodes(), -1);

  const auto& gates = netlist.gates();
  for (std::size_t g = 0; g < gates.size(); ++g) {
    const std::size_t node = netlist.n_inputs() + g;
    double worst_in = 0.0;
    std::int64_t worst_pred = -1;
    for (auto fanin : gates[g].fanins) {
      if (result.arrival[fanin] >= worst_in) {
        worst_in = result.arrival[fanin];
        worst_pred = static_cast<std::int64_t>(fanin);
      }
    }
    const double shift = vth_shift ? vth_shift(g) : 0.0;
    const double delay =
        cell_delay(library[gates[g].cell], config, vdd, shift, temp_c);
    result.arrival[node] = worst_in + delay;
    pred[node] = worst_pred;
  }

  result.worst_arrival_ns = -1.0;
  for (auto out : netlist.outputs()) {
    if (result.arrival[out] > result.worst_arrival_ns) {
      result.worst_arrival_ns = result.arrival[out];
      result.worst_output = out;
    }
  }
  result.functional = std::isfinite(result.worst_arrival_ns);

  // Trace the critical path back from the worst output.
  std::vector<std::size_t> path;
  std::int64_t node = static_cast<std::int64_t>(result.worst_output);
  while (node >= 0) {
    path.push_back(static_cast<std::size_t>(node));
    node = pred[static_cast<std::size_t>(node)];
  }
  std::reverse(path.begin(), path.end());
  result.critical_path = std::move(path);
  return result;
}

}  // namespace vmincqr::netlist
