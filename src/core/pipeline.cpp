#include "core/pipeline.hpp"

#include <stdexcept>

#include "data/feature_select.hpp"

namespace vmincqr::core {

ScenarioData assemble_scenario(const data::Dataset& ds,
                               const Scenario& scenario) {
  ScenarioData out;
  out.columns = scenario_feature_columns(ds, scenario);
  if (out.columns.empty()) {
    throw std::invalid_argument("assemble_scenario: no legal feature columns");
  }
  out.x = ds.features().take_cols(out.columns);
  out.y = scenario_labels(ds, scenario);
  return out;
}

std::vector<std::size_t> select_features_for_model(
    const Matrix& x_train, const Vector& y_train, models::ModelKind kind,
    const PipelineConfig& config, std::size_t n_features) {
  switch (kind) {
    case models::ModelKind::kLinear:
    case models::ModelKind::kGp:
    case models::ModelKind::kMlp:
      return data::cfs_select(x_train, y_train, n_features);
    case models::ModelKind::kXgboost:
    case models::ModelKind::kCatboost:
      return data::top_correlated(x_train, y_train, config.tree_prefilter);
  }
  throw std::invalid_argument("select_features_for_model: unknown kind");
}

std::vector<std::size_t> cfs_sweep_for_model(models::ModelKind kind,
                                             const PipelineConfig& config) {
  const std::size_t cap = config.cfs_max_features;
  auto clip = [cap](std::vector<std::size_t> v) {
    std::vector<std::size_t> out;
    for (auto k : v) {
      if (k <= cap) out.push_back(k);
    }
    if (out.empty()) out.push_back(cap);
    return out;
  };
  switch (kind) {
    case models::ModelKind::kLinear:
      return clip({1, 2, 3, 4, 5, 6, 7, 8, 9, 10});
    case models::ModelKind::kGp:
      return clip({2, 4, 6, 8, 10});
    case models::ModelKind::kMlp:
      return clip({4, 8, 10});
    case models::ModelKind::kXgboost:
    case models::ModelKind::kCatboost:
      // Intrinsic selection; single configuration (the prefilter width).
      return {config.tree_prefilter};
  }
  throw std::invalid_argument("cfs_sweep_for_model: unknown kind");
}

}  // namespace vmincqr::core
