// Golden fixture: raw-thread — a std::thread outside src/parallel/ must
// fire exactly once. All concurrency goes through the deterministic pool.
#include <thread>

void spawn_worker() {
  std::thread worker([] {});
  worker.join();
}
