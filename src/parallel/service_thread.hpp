// A single long-lived background thread for control-plane service loops
// (the daemon's batcher). Deliberately minimal: one thread, one body, join
// on destruction — lifecycle structure lives with the caller, raw
// std::thread stays inside src/parallel/ (raw-thread lint rule).
//
// This is NOT a compute primitive. Numeric work belongs on the deterministic
// pool (parallel_for.hpp); a ServiceThread body may DISPATCH onto the pool
// (it is an ordinary external caller), but must never run inside it.
#pragma once

#include <functional>
#include <thread>

namespace vmincqr::parallel {

class ServiceThread {
 public:
  ServiceThread() = default;
  /// Joins if still running; the body must already have been told to stop
  /// (e.g. by closing the queue it drains) or this blocks forever.
  ~ServiceThread();
  ServiceThread(const ServiceThread&) = delete;
  ServiceThread& operator=(const ServiceThread&) = delete;

  /// Spawns the thread running `body` once; the body returning ends the
  /// thread. Contract violation if already started.
  void start(std::function<void()> body);

  /// Blocks until the body returns. Idempotent; no-op when never started.
  void join();

  [[nodiscard]] bool started() const noexcept { return started_; }

 private:
  std::thread thread_;
  bool started_ = false;
};

}  // namespace vmincqr::parallel
