#include "silicon/vmin_model.hpp"

#include <cmath>
#include <stdexcept>

#include "silicon/critical_path.hpp"

namespace vmincqr::silicon {

VminModel::VminModel(VminConfig config, AgingConfig aging)
    : config_(config), aging_(aging) {
  if (config_.nominal_v <= 0.0) {
    throw std::invalid_argument("VminModel: nominal_v must be positive");
  }
}

double VminModel::k_vth(double temperature_c) const {
  // Piecewise-linear interpolation across the three test regimes.
  if (temperature_c <= 25.0) {
    const double f = (temperature_c + 45.0) / 70.0;  // -45 -> 0, 25 -> 1
    return config_.k_vth_cold + (config_.k_vth_room - config_.k_vth_cold) * f;
  }
  const double f = (temperature_c - 25.0) / 100.0;  // 25 -> 0, 125 -> 1
  return config_.k_vth_room + (config_.k_vth_hot - config_.k_vth_room) * f;
}

core::Volt VminModel::expected_vmin(const ChipLatent& chip,
                                    core::Hours hours,
                                    core::Celsius temperature) const {
  const double temperature_c = temperature.value();
  double v = config_.nominal_v;
  // Temperature offsets (linear blend matching k_vth's regimes).
  if (temperature_c <= 25.0) {
    const double f = (25.0 - temperature_c) / 70.0;
    v += config_.cold_offset * f;
  } else {
    const double f = (temperature_c - 25.0) / 100.0;
    v += config_.hot_offset * f;
  }
  // Worst-path limited core: the binding critical path sets the required
  // margin; its identity shifts with the process corner and with aging,
  // making the response nonlinear in the latents (see critical_path.hpp).
  const double age = config_.k_aging * aging_.delta_vth(chip, hours);
  v += k_vth(temperature_c) *
       worst_path_score(standard_critical_paths(), chip, age);
  v += config_.k_leff * chip.dleff;
  v += config_.k_mismatch * chip.mismatch;
  double defect_effect = config_.k_defect * chip.defect;
  if (temperature_c <= 25.0) {
    const double f = (25.0 - temperature_c) / 70.0;
    defect_effect *= 1.0 + (config_.defect_cold_boost - 1.0) * f;
  }
  v += defect_effect;
  return core::Volt{v};
}

double VminModel::noise_stddev(const ChipLatent& chip,
                               core::Celsius temperature) const {
  const double temperature_c = temperature.value();
  double sd = config_.noise_base + config_.noise_mismatch * chip.mismatch +
              config_.noise_defect * chip.defect +
              config_.noise_leak * chip.leak_corner;
  if (temperature_c <= 25.0) {
    const double f = (25.0 - temperature_c) / 70.0;
    sd *= 1.0 + (config_.noise_cold_boost - 1.0) * f;
  }
  return sd;
}

core::Volt VminModel::measure_vmin(const ChipLatent& chip, core::Hours hours,
                                   core::Celsius temperature,
                                   rng::Rng& meas_rng) const {
  return core::Volt{expected_vmin(chip, hours, temperature) +
                    meas_rng.normal(0.0, noise_stddev(chip, temperature))};
}

}  // namespace vmincqr::silicon
