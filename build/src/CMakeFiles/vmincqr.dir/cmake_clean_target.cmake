file(REMOVE_RECURSE
  "libvmincqr.a"
)
