// Correlation Feature Selection (CFS) — Hall (1999) — with Pearson
// correlation, as used by the paper (Sec. IV-C) to pick 1..10 features for
// LR / GP / NN from the ~2000-dimensional raw input.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"

namespace vmincqr::data {

using linalg::Matrix;
using linalg::Vector;

/// CFS merit of a feature subset:
///   merit = k * mean|r_cf| / sqrt(k + k(k-1) * mean|r_ff|)
/// where r_cf are feature-label correlations and r_ff pairwise
/// feature-feature correlations within the subset.
/// Throws std::invalid_argument on an empty subset or bad indices.
double cfs_merit(const Matrix& x, const Vector& y,
                 const std::vector<std::size_t>& subset);

/// Greedy forward CFS: starting from the single best-correlated feature,
/// repeatedly adds the feature maximizing the subset merit, up to
/// max_features. Returns selected column indices in selection order (size
/// min(max_features, x.cols())). Throws on dimension mismatch / empty data.
std::vector<std::size_t> cfs_select(const Matrix& x, const Vector& y,
                                    std::size_t max_features);

/// Columns ranked by |Pearson correlation with y|, descending; returns the
/// first k (or all, if k >= cols). Simple filter baseline used in tests and
/// the feature-selection ablation.
std::vector<std::size_t> top_correlated(const Matrix& x, const Vector& y,
                                        std::size_t k);

}  // namespace vmincqr::data
