// Reproduces Table III of the paper: average interval length (mV) and
// coverage (%) of SCAN Vmin prediction intervals for GP, QR x {LR, NN,
// XGBoost, CatBoost}, and CQR x {same}, at alpha = 0.1, across all six
// stress read points and three test temperatures, under 4-fold CV.
//
// Expected shape (paper Sec. IV-F): GP and raw QR undercover; every CQR
// variant restores ~90%+ coverage; CQR CatBoost gives the shortest
// calibrated intervals.
#include "bench_common.hpp"

using namespace vmincqr;

int main() {
  bench::Stopwatch watch;
  const auto generated = bench::make_paper_dataset();
  const auto config = bench::paper_experiment_config();
  const auto scenarios = bench::paper_scenario_grid(core::FeatureSet::kBoth);
  const auto methods = core::table3_methods();

  std::printf(
      "=== Table III: interval length (mV) & coverage (%%) of SCAN Vmin, "
      "alpha=0.1 ===\n\n");

  // Parallelize over (scenario x method) cells.
  struct Cell {
    std::size_t scenario;
    std::size_t method;
  };
  std::vector<Cell> cells;
  for (std::size_t s = 0; s < scenarios.size(); ++s) {
    for (std::size_t m = 0; m < methods.size(); ++m) cells.push_back({s, m});
  }
  const auto results = core::parallel_map<core::RegionMethodScore>(
      cells.size(), [&](std::size_t i) {
        return core::evaluate_region_method(generated.dataset,
                                            scenarios[cells[i].scenario],
                                            methods[cells[i].method], config);
      });

  // Group rows by read point, as in the paper's table.
  for (double t : silicon::standard_read_points()) {
    core::TextTable table({"Stress", "Method", "-45C len", "-45C cov",
                           "25C len", "25C cov", "125C len", "125C cov"});
    for (std::size_t m = 0; m < methods.size(); ++m) {
      std::vector<std::string> row = {bench::hours_label(t),
                                      methods[m].label()};
      for (double temp : silicon::standard_temperatures()) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
          const auto& sc = scenarios[cells[i].scenario];
          if (cells[i].method == m && sc.read_point_hours == t &&
              sc.temperature_c == temp) {
            row.push_back(core::format_double(results[i].mean_length_mv, 2));
            row.push_back(core::format_double(results[i].coverage_pct, 2));
          }
        }
      }
      table.add_row(row);
    }
    std::printf("%s\n", table.to_string().c_str());
  }

  // Shape checks over all cells.
  double qr_cov = 0.0, cqr_cov = 0.0, gp_cov = 0.0;
  double cqr_cb_len = 0.0, cqr_other_len = 0.0;
  std::size_t n_qr = 0, n_cqr = 0, n_gp = 0, n_cb = 0, n_other = 0;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const auto& spec = methods[cells[i].method];
    const auto& r = results[i];
    switch (spec.family) {
      case core::RegionMethodSpec::Family::kGp:
        gp_cov += r.coverage_pct;
        ++n_gp;
        break;
      case core::RegionMethodSpec::Family::kQr:
        qr_cov += r.coverage_pct;
        ++n_qr;
        break;
      case core::RegionMethodSpec::Family::kCqr:
        cqr_cov += r.coverage_pct;
        ++n_cqr;
        if (spec.base == models::ModelKind::kCatboost) {
          cqr_cb_len += r.mean_length_mv;
          ++n_cb;
        } else {
          cqr_other_len += r.mean_length_mv;
          ++n_other;
        }
        break;
    }
  }
  std::printf("shape checks (averages across all 18 cells):\n");
  std::printf("  GP coverage          : %.1f%%  (paper: undercovers, ~77-95%%)\n",
              gp_cov / n_gp);
  std::printf("  QR coverage          : %.1f%%  (paper: undercovers, often <90%%)\n",
              qr_cov / n_qr);
  std::printf("  CQR coverage         : %.1f%%  (paper: ~90%%+, calibrated)\n",
              cqr_cov / n_cqr);
  std::printf("  CQR CatBoost length  : %.1f mV (paper: shortest CQR variant)\n",
              cqr_cb_len / n_cb);
  std::printf("  other CQR mean length: %.1f mV\n", cqr_other_len / n_other);
  std::printf("\n[table3_region_prediction] done in %.1f s\n", watch.seconds());
  return 0;
}
