// Tests for the synthetic silicon substrate: process model, aging, test
// banks, Vmin response, and the end-to-end dataset generator.
#include <gtest/gtest.h>

#include <cmath>

#include "silicon/dataset_gen.hpp"
#include "silicon/critical_path.hpp"
#include "stats/descriptive.hpp"

namespace vmincqr::silicon {
namespace {

TEST(ProcessModel, PopulationMomentsMatchConfig) {
  ProcessConfig config;
  ProcessModel model(config);
  rng::Rng rng(1);
  const auto chips = model.sample_population(4000, rng);
  std::vector<double> dvth, activity;
  std::size_t defects = 0;
  for (const auto& c : chips) {
    dvth.push_back(c.dvth);
    activity.push_back(c.activity);
    defects += c.defect > 0.0;
    EXPECT_GE(c.mismatch, 0.0);
    EXPECT_GT(c.leak_corner, 0.0);
    EXPECT_GT(c.activity, 0.0);
  }
  EXPECT_NEAR(stats::mean(dvth), 0.0, 0.001);
  EXPECT_NEAR(stats::stddev(dvth), config.sigma_vth, 0.001);
  EXPECT_NEAR(static_cast<double>(defects) / 4000.0, config.defect_rate, 0.02);
}

TEST(ProcessModel, LeakageAnticorrelatedWithVth) {
  // Physically, low-Vth chips leak more: corr(dvth, log leak) < 0.
  ProcessModel model;
  rng::Rng rng(2);
  const auto chips = model.sample_population(2000, rng);
  std::vector<double> dvth, log_leak;
  for (const auto& c : chips) {
    dvth.push_back(c.dvth);
    log_leak.push_back(std::log(c.leak_corner));
  }
  EXPECT_LT(stats::pearson(dvth, log_leak), -0.3);
}

TEST(ProcessModel, ValidatesConfig) {
  ProcessConfig bad;
  bad.defect_rate = 1.5;
  EXPECT_THROW(ProcessModel{bad}, std::invalid_argument);
  ProcessConfig negative;
  negative.sigma_vth = -1.0;
  EXPECT_THROW(ProcessModel{negative}, std::invalid_argument);
}

TEST(AgingModel, ZeroAtTimeZeroAndMonotone) {
  AgingModel aging;
  ChipLatent chip;
  chip.activity = 1.2;
  EXPECT_DOUBLE_EQ(aging.delta_vth(chip, core::Hours{0.0}), 0.0);
  double prev = 0.0;
  for (double t : standard_read_points()) {
    const double v = aging.delta_vth(chip, core::Hours{t});
    EXPECT_GE(v, prev);
    prev = v;
  }
  EXPECT_THROW(
      static_cast<void>(aging.delta_vth(chip, core::Hours{-1.0})),
      std::invalid_argument);
}

TEST(AgingModel, TinyPositiveHoursStayFiniteAndContinuous) {
  // Regression for the exact `hours == 0.0` early-out: a denormal-scale
  // stress time is *not* zero, so the power law must evaluate (finitely)
  // rather than fall into 0^exponent edge cases, and the result must
  // approach the t = 0 value of exactly zero.
  AgingModel aging;
  ChipLatent chip;
  chip.activity = 1.2;
  for (double t : {1e-300, 1e-12, 1e-6}) {
    const double v = aging.delta_vth(chip, core::Hours{t});
    EXPECT_TRUE(std::isfinite(v)) << t;
    EXPECT_GE(v, 0.0) << t;
    EXPECT_LT(v, 1e-3) << t;  // continuous: vanishes as t -> 0
  }
}

TEST(AgingModel, SubLinearPowerLaw) {
  AgingModel aging;
  ChipLatent chip;
  // Power law: doubling time multiplies degradation by 2^n < 2.
  const double d1 = aging.delta_vth(chip, core::Hours{100.0});
  const double d2 = aging.delta_vth(chip, core::Hours{200.0});
  EXPECT_NEAR(d2 / d1, std::pow(2.0, aging.config().exponent), 1e-9);
}

TEST(AgingModel, ActivityAndDefectAccelerate) {
  AgingModel aging;
  ChipLatent base;
  ChipLatent active = base;
  active.activity = 2.0;
  ChipLatent defective = base;
  defective.defect = 2.0;
  EXPECT_GT(aging.delta_vth(active, core::Hours{500.0}), aging.delta_vth(base, core::Hours{500.0}));
  EXPECT_GT(aging.delta_vth(defective, core::Hours{500.0}), aging.delta_vth(base, core::Hours{500.0}));
}

TEST(AgingModel, ValidatesConfig) {
  AgingConfig bad;
  bad.exponent = 1.5;
  EXPECT_THROW(AgingModel{bad}, std::invalid_argument);
}

TEST(ParametricBank, CatalogueShapeAndDeterminism) {
  ParametricConfig config;
  config.features_per_temperature = 50;
  rng::Rng cat1(3), cat2(3);
  ParametricTestBank bank1(config, cat1), bank2(config, cat2);
  EXPECT_EQ(bank1.n_features(), 150u);  // 50 x 3 temps
  // Identical catalogue RNG -> identical specs.
  for (std::size_t i = 0; i < bank1.n_features(); ++i) {
    EXPECT_EQ(bank1.specs()[i].name, bank2.specs()[i].name);
    EXPECT_DOUBLE_EQ(bank1.specs()[i].load_vth, bank2.specs()[i].load_vth);
  }
}

TEST(ParametricBank, IddqRespondsToLeakage) {
  ParametricConfig config;
  config.features_per_temperature = 40;
  config.weak_fraction = 0.0;  // all informative for this test
  rng::Rng cat(4);
  ParametricTestBank bank(config, cat);

  ChipLatent leaky;
  leaky.leak_corner = 3.0;
  ChipLatent tight;
  tight.leak_corner = 0.3;
  rng::Rng m1(5), m2(5);
  const auto v_leaky = bank.measure(leaky, m1);
  const auto v_tight = bank.measure(tight, m2);
  // IDDQ/leakage features (families 0 and 2 mod 5) must be larger for the
  // leaky chip.
  std::size_t checked = 0;
  for (std::size_t i = 0; i < bank.n_features(); ++i) {
    const auto family = bank.specs()[i].family;
    if (family == ParametricFamily::kIddq ||
        family == ParametricFamily::kLeakage) {
      EXPECT_GT(v_leaky[i], v_tight[i]) << "feature " << i;
      ++checked;
    }
  }
  EXPECT_GT(checked, 0u);
}

TEST(ParametricBank, FeatureInfoTagsTemperatures) {
  ParametricConfig config;
  config.features_per_temperature = 10;
  rng::Rng cat(6);
  ParametricTestBank bank(config, cat);
  const auto info = bank.feature_info();
  ASSERT_EQ(info.size(), 30u);
  EXPECT_DOUBLE_EQ(info[0].temperature_c, -45.0);
  EXPECT_DOUBLE_EQ(info[10].temperature_c, 25.0);
  EXPECT_DOUBLE_EQ(info[20].temperature_c, 125.0);
  for (const auto& f : info) {
    EXPECT_EQ(f.type, data::FeatureType::kParametric);
    EXPECT_DOUBLE_EQ(f.read_point_hours, 0.0);
  }
}

TEST(MonitorBank, DelaysGrowWithAging) {
  MonitorConfig config;
  rng::Rng cat(7);
  MonitorBank bank(config, cat);
  AgingModel aging;
  ChipLatent chip;
  chip.activity = 1.0;
  rng::Rng m1(8), m2(8);
  const auto d0 = bank.measure(chip, aging, core::Hours{0.0}, m1);
  const auto d1008 = bank.measure(chip, aging, core::Hours{1008.0}, m2);
  std::size_t grew = 0;
  for (std::size_t i = 0; i < d0.size(); ++i) grew += d1008[i] > d0[i];
  // Aging raises Vth raises delay; nearly all sensors must increase.
  EXPECT_GT(grew, d0.size() * 9 / 10);
}

TEST(MonitorBank, CpdSensorsReplicateCriticalPaths) {
  MonitorConfig config;
  rng::Rng cat(9);
  MonitorBank bank(config, cat);
  const auto& paths = standard_critical_paths();
  std::size_t cpd_with_path = 0;
  for (const auto& spec : bank.specs()) {
    if (spec.type == data::FeatureType::kRodMonitor) {
      EXPECT_EQ(spec.path_index, -1);
    } else if (spec.path_index >= 0) {
      ++cpd_with_path;
      ASSERT_LT(static_cast<std::size_t>(spec.path_index), paths.size());
      EXPECT_DOUBLE_EQ(
          spec.aging_gain,
          paths[static_cast<std::size_t>(spec.path_index)].aging_gain);
      EXPECT_GT(spec.path_gain, 0.0);
    }
  }
  EXPECT_EQ(cpd_with_path, std::min<std::size_t>(config.n_cpd, paths.size()));
}

TEST(CriticalPath, WorstPathIsMaxAndMonotoneInAging) {
  const auto& paths = standard_critical_paths();
  ChipLatent chip;
  chip.dvth = 0.005;
  chip.dleff = 0.01;
  chip.mismatch = 0.5;
  double max_score = -1e30;
  for (const auto& p : paths) {
    max_score = std::max(max_score, path_score(p, chip, 0.01));
  }
  EXPECT_DOUBLE_EQ(worst_path_score(paths, chip, 0.01), max_score);
  EXPECT_GT(worst_path_score(paths, chip, 0.02),
            worst_path_score(paths, chip, 0.0));
}

TEST(CriticalPath, BindingPathChangesAcrossCorners) {
  // The max is a genuine nonlinearity only if different chips bind
  // different paths; verify at least 2 distinct argmax paths over a corner
  // sweep.
  const auto& paths = standard_critical_paths();
  std::set<std::size_t> binding;
  for (double dvth : {-0.03, -0.01, 0.0, 0.01, 0.03}) {
    for (double dleff : {-0.05, 0.0, 0.05}) {
      ChipLatent chip;
      chip.dvth = dvth;
      chip.dleff = dleff;
      chip.mismatch = 1.0;
      std::size_t best = 0;
      double best_score = -1e30;
      for (std::size_t p = 0; p < paths.size(); ++p) {
        const double s = path_score(paths[p], chip, 0.0);
        if (s > best_score) {
          best_score = s;
          best = p;
        }
      }
      binding.insert(best);
    }
  }
  EXPECT_GE(binding.size(), 2u);
}

TEST(MonitorBank, FeatureInfoEncodesReadPoint) {
  MonitorConfig config;
  config.n_rod = 2;
  config.n_cpd = 1;
  rng::Rng cat(10);
  MonitorBank bank(config, cat);
  const auto info = bank.feature_info(48.0);
  ASSERT_EQ(info.size(), 3u);
  EXPECT_EQ(info[0].name, "rod_0_t48");
  EXPECT_EQ(info[2].name, "cpd_0_t48");
  EXPECT_DOUBLE_EQ(info[1].read_point_hours, 48.0);
  EXPECT_EQ(info[2].type, data::FeatureType::kCpdMonitor);
}

TEST(VminModel, ColdAndDegradedChipsNeedMoreVoltage) {
  VminModel model;
  ChipLatent chip;
  const double v_room = model.expected_vmin(chip, core::Hours{0.0}, core::Celsius{25.0});
  const double v_cold = model.expected_vmin(chip, core::Hours{0.0}, core::Celsius{-45.0});
  const double v_hot = model.expected_vmin(chip, core::Hours{0.0}, core::Celsius{125.0});
  const double v_aged = model.expected_vmin(chip, core::Hours{1008.0}, core::Celsius{25.0});
  EXPECT_GT(v_cold, v_room);
  EXPECT_GT(v_hot, v_room);
  EXPECT_GT(v_aged, v_room);
}

TEST(VminModel, HighVthChipsHaveHigherVmin) {
  VminModel model;
  ChipLatent slow;
  slow.dvth = 0.02;
  ChipLatent fast;
  fast.dvth = -0.02;
  EXPECT_GT(model.expected_vmin(slow, core::Hours{0.0}, core::Celsius{25.0}),
            model.expected_vmin(fast, core::Hours{0.0}, core::Celsius{25.0}));
}

TEST(VminModel, HeteroscedasticNoise) {
  VminModel model;
  ChipLatent clean;
  ChipLatent messy;
  messy.mismatch = 2.0;
  messy.defect = 1.0;
  EXPECT_GT(model.noise_stddev(messy, core::Celsius{25.0}), model.noise_stddev(clean, core::Celsius{25.0}));
  // Cold testing is noisier.
  EXPECT_GT(model.noise_stddev(clean, core::Celsius{-45.0}), model.noise_stddev(clean, core::Celsius{25.0}));
}

TEST(VminModel, DefectsBiteHarderAtCold) {
  VminModel model;
  ChipLatent good;
  ChipLatent bad;
  bad.defect = 2.0;
  const double delta_cold = model.expected_vmin(bad, core::Hours{0.0}, core::Celsius{-45.0}) -
                            model.expected_vmin(good, core::Hours{0.0}, core::Celsius{-45.0});
  const double delta_room = model.expected_vmin(bad, core::Hours{0.0}, core::Celsius{25.0}) -
                            model.expected_vmin(good, core::Hours{0.0}, core::Celsius{25.0});
  EXPECT_GT(delta_cold, delta_room);
}

TEST(Generator, ShapeMatchesTableII) {
  GeneratorConfig config;  // defaults: 156 chips, 1800 parametric, 168+10
  const auto generated = generate_dataset(config);
  const auto& ds = generated.dataset;
  EXPECT_EQ(ds.n_chips(), 156u);
  // 1800 parametric + (168 + 10) monitors x 6 read points.
  EXPECT_EQ(ds.n_features(), 1800u + 178u * 6u);
  EXPECT_EQ(ds.labels().size(), 18u);  // 6 read points x 3 temps
  EXPECT_EQ(generated.latents.size(), 156u);
}

TEST(Generator, DeterministicInSeed) {
  GeneratorConfig config;
  config.n_chips = 12;
  config.parametric.features_per_temperature = 20;
  config.monitors.n_rod = 4;
  config.monitors.n_cpd = 2;
  const auto a = generate_dataset(config);
  const auto b = generate_dataset(config);
  EXPECT_EQ(a.dataset.features(), b.dataset.features());
  for (std::size_t s = 0; s < a.dataset.labels().size(); ++s) {
    EXPECT_EQ(a.dataset.labels()[s].values, b.dataset.labels()[s].values);
  }
  config.seed += 1;
  const auto c = generate_dataset(config);
  EXPECT_NE(a.dataset.features(), c.dataset.features());
}

TEST(Generator, VminScaleMatchesPaper) {
  // Healthy-population Vmin spread should be tens of mV (the paper's
  // interval lengths are 15-60 mV), and the median near the nominal 0.55 V.
  GeneratorConfig config;
  const auto generated = generate_dataset(config);
  const auto& y = generated.dataset.label(0.0, 25.0).values;
  EXPECT_NEAR(stats::mean(y), 0.55, 0.03);
  const double sd = stats::stddev(y);
  EXPECT_GT(sd, 0.005);
  EXPECT_LT(sd, 0.06);
}

TEST(Generator, DegradationVisibleAtLateReadPoints) {
  GeneratorConfig config;
  const auto generated = generate_dataset(config);
  const auto& y0 = generated.dataset.label(0.0, 25.0).values;
  const auto& y1008 = generated.dataset.label(1008.0, 25.0).values;
  EXPECT_GT(stats::mean(y1008), stats::mean(y0) + 0.005);
}

TEST(Generator, ValidatesConfig) {
  GeneratorConfig config;
  config.n_chips = 0;
  EXPECT_THROW(generate_dataset(config), std::invalid_argument);
  GeneratorConfig config2;
  config2.read_points_hours.clear();
  EXPECT_THROW(generate_dataset(config2), std::invalid_argument);
}

}  // namespace
}  // namespace vmincqr::silicon
