// Fixture: libc rand() in place of rng::Rng. Fires no-rand exactly once.
#include <cstdlib>

int fixture_noise() {
  return rand() % 7;
}

// Member calls named rand are out of scope for the rule (no firing):
struct Rng {
  int rand();
};
int fixture_ok(Rng& rng) { return rng.rand(); }
