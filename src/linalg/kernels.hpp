// Blocked, register-tiled dense micro-kernels behind an explicit accuracy
// tier — the compute core the predict/fit hot cones dispatch onto.
//
// Every kernel comes in (up to) two tiers selected by KernelPolicy:
//
//   * kBitExact — the reference tier. Blocking only changes WHICH loads are
//     shared between output elements, never the per-element floating-point
//     summation order: out(i, j) still accumulates its k-terms in ascending
//     k, exactly like the scalar loops these kernels replaced. Results are
//     bit-identical to the pre-kernel code and thread-count invariant (the
//     PR-5 battery gates this tier).
//   * kFast — reassociated tier. Multiple accumulators per output element
//     (k-splitting) and algebraic rewrites (||a-b||^2 = ||a||^2 + ||b||^2
//     - 2ab) trade the exact summation order for throughput. Functions on
//     this tier carry `// vmincqr: numeric-tier(tolerance)` annotations
//     mirrored in tools/vmincqr_lint/numeric_tiers.toml, and are gated by
//     tolerance + coverage-equivalence tests, never by bit comparison.
//
// The policy is process-wide (resolution: set_kernel_policy() override >
// VMINCQR_KERNEL_POLICY env > kBitExact) and must only be flipped from the
// calling thread while no parallel region is in flight — the same contract
// as parallel::set_max_threads. core::PipelineConfig threads a policy into
// fit_screen via KernelPolicyGuard; serve deployments select the tier at
// startup (env or set_kernel_policy).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace vmincqr::linalg {

/// Accuracy tier for the dense micro-kernels (see file header).
enum class KernelPolicy : std::uint8_t {
  kBitExact,  ///< reference summation order; bit-identical across threads
  kFast,      ///< reassociated/blocked; tolerance-gated, still deterministic
};

/// The process-wide kernel policy (override > VMINCQR_KERNEL_POLICY > exact).
[[nodiscard]] KernelPolicy kernel_policy() noexcept;

/// Overrides the process-wide policy. Must not be called while parallel work
/// is in flight (kernels running on pool lanes read the policy).
void set_kernel_policy(KernelPolicy policy) noexcept;

/// "bit_exact" / "fast" — the spelling VMINCQR_KERNEL_POLICY accepts.
[[nodiscard]] std::string kernel_policy_name(KernelPolicy policy);

/// Parses a policy name ("fast", "bit_exact"); throws std::invalid_argument
/// on anything else.
[[nodiscard]] KernelPolicy parse_kernel_policy(const std::string& name);

/// RAII override: sets the policy for a scope (a fit under PipelineConfig's
/// policy, a tolerance test), restoring the previous policy on exit.
class KernelPolicyGuard {
 public:
  explicit KernelPolicyGuard(KernelPolicy policy) noexcept
      : saved_(kernel_policy()) {
    set_kernel_policy(policy);
  }
  ~KernelPolicyGuard() { set_kernel_policy(saved_); }
  KernelPolicyGuard(const KernelPolicyGuard&) = delete;
  KernelPolicyGuard& operator=(const KernelPolicyGuard&) = delete;

 private:
  KernelPolicy saved_;
};

// --- micro-kernels ---------------------------------------------------------
//
// All matrices are dense row-major with explicit leading dimensions, so the
// kernels slice blocks out of larger matrices without copies. No bounds
// checks (hot path); callers own shape validation.

/// C(m x n, ldc) += A(m x k, lda) * B(k x n, ldb). C must be initialized by
/// the caller (zeros, or a bias row — whatever the reference scalar loop
/// started from). Honors `policy`; kBitExact preserves the classic i-k-j
/// per-element order including the exact-zero skip on A entries.
void gemm(std::size_t m, std::size_t k, std::size_t n, const double* a,
          std::size_t lda, const double* b, std::size_t ldb, double* c,
          std::size_t ldc, KernelPolicy policy);

/// C(k x n, ldc) += A(m x k, lda)^T * B(m x n, ldb) — the gradient-side
/// kernel (accumulating X^T * dL without materializing the transpose). Per
/// output element the m-terms accumulate in ascending m on both tiers; the
/// fast tier drops the exact-zero skip.
void gemm_at(std::size_t m, std::size_t k, std::size_t n, const double* a,
             std::size_t lda, const double* b, std::size_t ldb, double* c,
             std::size_t ldc, KernelPolicy policy);

/// y(m) = A(m x n, lda) * x(n), overwriting y. kBitExact keeps each row's
/// ascending-j dot order; kFast uses split accumulators.
void gemv(std::size_t m, std::size_t n, const double* a, std::size_t lda,
          const double* x, double* y, KernelPolicy policy);

/// Ascending-order dot product (the reference semantics of linalg::dot).
[[nodiscard]] double dot_kernel(std::size_t n, const double* a,
                                const double* b, KernelPolicy policy);

/// out[j] = squared Euclidean distance between row `a` (length d) and row j
/// of B(nb x d, ldb), for j in [0, nb). kBitExact accumulates each pair's
/// d-terms in ascending order (the row_sq_dist reference); kFast expands
/// ||a-b||^2 = ||a||^2 - 2ab + ||b||^2 with precomputed row norms `b_norms`
/// (pass nullptr on the exact tier; ignored there).
void row_sq_dists(const double* a, std::size_t d, const double* b,
                  std::size_t ldb, std::size_t nb, const double* b_norms,
                  double* out, KernelPolicy policy);

}  // namespace vmincqr::linalg
