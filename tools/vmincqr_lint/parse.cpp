#include "parse.hpp"

#include <set>
#include <string>

namespace vmincqr::lint {
namespace {

const std::set<std::string>& trailing_qualifiers() {
  static const std::set<std::string> quals = {"const", "noexcept", "override",
                                              "final", "mutable"};
  return quals;
}

const std::set<std::string>& control_keywords() {
  static const std::set<std::string> kws = {"if", "for", "while", "switch",
                                            "catch"};
  return kws;
}

/// Classifies the '{' at token index i: does it open a function body?
/// Looks back past trailing qualifiers; a ')' (whose matching '(' is not a
/// control statement's) or a ']' (parameterless lambda) means function.
/// Everything else — class/namespace/enum braces, braced initializers,
/// `do`/`else`/`try` blocks — is not a new scope.
bool opens_function_body(const std::vector<Token>& t, std::size_t i) {
  if (i == 0) return false;
  std::size_t j = i - 1;
  while (j > 0 && t[j].kind == TokKind::kIdent &&
         trailing_qualifiers().count(t[j].text) > 0) {
    --j;
  }
  if (t[j].text == "]") return true;  // [] { ... }
  if (t[j].text != ")") return false;
  // Find the matching '(' of this ')'.
  int depth = 0;
  while (true) {
    if (t[j].text == ")") ++depth;
    if (t[j].text == "(" && --depth == 0) break;
    if (j == 0) return false;
    --j;
  }
  if (j == 0) return false;
  const Token& before = t[j - 1];
  if (before.kind == TokKind::kIdent &&
      control_keywords().count(before.text) > 0) {
    return false;
  }
  return true;
}

}  // namespace

std::size_t match_forward(const std::vector<Token>& t, std::size_t open) {
  const std::string& o = t[open].text;
  const std::string close = o == "(" ? ")" : o == "[" ? "]"
                            : o == "{" ? "}" : ">";
  int depth = 0;
  for (std::size_t i = open; i < t.size(); ++i) {
    if (t[i].text == o) {
      ++depth;
    } else if (t[i].text == close && --depth == 0) {
      return i;
    }
  }
  return t.size();
}

std::vector<FunctionScope> function_scopes(const Unit& unit) {
  const auto& t = unit.tokens;
  std::vector<FunctionScope> scopes;
  // -1 while outside any function; otherwise the brace depth (number of open
  // '{' including the scope's own) of the current function body.
  int fn_braces = 0;
  bool in_fn = false;
  std::size_t fn_first = 0;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].text == "{") {
      if (in_fn) {
        ++fn_braces;
      } else if (opens_function_body(t, i)) {
        in_fn = true;
        fn_braces = 1;
        fn_first = i;
      }
      continue;
    }
    if (t[i].text == "}" && in_fn) {
      if (--fn_braces == 0) {
        in_fn = false;
        scopes.push_back({fn_first, i});
      }
    }
  }
  return scopes;
}

}  // namespace vmincqr::lint
