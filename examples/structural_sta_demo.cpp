// Structural Vmin demo: walk one chip through the gate-level machinery —
// build a design, derive its clock, run STA at a few supplies, bisect for
// Vmin, and show how aging moves both the critical path and the on-chip
// ring oscillator, at three test temperatures.
#include <cstdio>

#include "netlist/ring_oscillator.hpp"
#include "netlist/vmin_solver.hpp"
#include "silicon/aging.hpp"
#include "silicon/process.hpp"

using namespace vmincqr;

int main() {
  // 1. A synthetic design and its timing constraint.
  netlist::RandomNetlistConfig design_config;
  design_config.n_gates = 800;
  rng::Rng design_rng(7);
  const auto design = netlist::Netlist::random(design_config, design_rng);
  const netlist::DelayModelConfig delay;
  const auto nominal = netlist::run_sta(design, delay, 0.55, 25.0);
  const double clock_ns = nominal.worst_arrival_ns;
  std::printf("design: %zu gates, %zu outputs; clock = %.4f ns "
              "(closes at 0.55 V nominal)\n",
              design.gates().size(), design.outputs().size(), clock_ns);
  std::printf("critical path at 0.55 V: %zu stages\n\n",
              nominal.critical_path.size() - 1);

  // 2. Delay-vs-voltage curve of the design (why Vmin search is monotone).
  std::printf("%-10s %-16s %s\n", "Vdd (V)", "worst delay (ns)", "meets clock");
  for (double v : {0.50, 0.53, 0.55, 0.60, 0.70, 0.80}) {
    const auto timing = netlist::run_sta(design, delay, v, 25.0);
    std::printf("%-10.2f %-16.4f %s\n", v, timing.worst_arrival_ns,
                timing.worst_arrival_ns <= clock_ns ? "yes" : "no");
  }

  // 3. One aged chip across temperatures and stress time.
  silicon::ProcessModel process;
  rng::Rng chip_rng(99);
  silicon::ChipLatent chip = process.sample(chip_rng);
  const silicon::AgingModel aging;
  const netlist::RingOscillator ro{31, 0.0};

  std::printf("\nchip latents: dvth=%+.1f mV, activity=%.2f, defect=%.2f\n\n",
              chip.dvth * 1e3, chip.activity, chip.defect);
  std::printf("%-10s %-10s %-12s %-12s %s\n", "stress", "temp", "Vmin (V)",
              "RO (GHz)", "STA evals");
  for (double t : {0.0, 168.0, 1008.0}) {
    const double age = aging.delta_vth(chip, core::Hours{t});
    for (double temp : {-45.0, 25.0, 125.0}) {
      const auto solution = netlist::solve_vmin(
          design, delay, clock_ns, temp,
          [&](std::size_t g) {
            return chip.dvth + design.gates()[g].aging_weight * age;
          });
      const double freq = netlist::ring_oscillator_frequency(
          ro, delay, 0.75, chip.dvth + age, 25.0);
      std::printf("%-10s %-10s %-12.4f %-12.3f %d\n",
                  (std::to_string(static_cast<int>(t)) + "h").c_str(),
                  (std::to_string(static_cast<int>(temp)) + "C").c_str(),
                  solution.vmin, freq, solution.sta_evaluations);
    }
  }
  std::printf(
      "\nVmin rises with stress and at cold; the RO frequency falls with\n"
      "the same aging state — the physical link the CQR pipeline exploits.\n");
  return 0;
}
