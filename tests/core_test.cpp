// Tests for the core pipeline layer: scenarios, feature assembly, model-
// specific selection, report rendering.
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "silicon/dataset_gen.hpp"

namespace vmincqr::core {
namespace {

silicon::GeneratorConfig small_config() {
  silicon::GeneratorConfig config;
  config.n_chips = 40;
  config.parametric.features_per_temperature = 30;
  config.monitors.n_rod = 8;
  config.monitors.n_cpd = 2;
  return config;
}

TEST(Scenario, Time0UsesOnlyTime0Features) {
  const auto generated = silicon::generate_dataset(small_config());
  const Scenario s{0.0, 25.0, FeatureSet::kBoth};
  const auto cols = scenario_feature_columns(generated.dataset, s);
  for (auto c : cols) {
    EXPECT_DOUBLE_EQ(generated.dataset.feature_info(c).read_point_hours, 0.0);
  }
  // 90 parametric + 10 monitors at t=0.
  EXPECT_EQ(cols.size(), 90u + 10u);
}

TEST(Scenario, LaterReadPointsAccumulateMonitorHistory) {
  const auto generated = silicon::generate_dataset(small_config());
  const Scenario s48{48.0, 25.0, FeatureSet::kBoth};
  const auto cols = scenario_feature_columns(generated.dataset, s48);
  // parametric(t0) + monitors at t in {0, 24, 48}.
  EXPECT_EQ(cols.size(), 90u + 10u * 3u);
  // No future leakage: nothing beyond 48 h.
  for (auto c : cols) {
    EXPECT_LE(generated.dataset.feature_info(c).read_point_hours, 48.0);
  }
}

TEST(Scenario, FeatureSetFilters) {
  const auto generated = silicon::generate_dataset(small_config());
  const Scenario par_only{24.0, 25.0, FeatureSet::kParametricOnly};
  const Scenario chip_only{24.0, 25.0, FeatureSet::kOnChipOnly};
  const auto par_cols =
      scenario_feature_columns(generated.dataset, par_only);
  const auto chip_cols =
      scenario_feature_columns(generated.dataset, chip_only);
  EXPECT_EQ(par_cols.size(), 90u);
  EXPECT_EQ(chip_cols.size(), 10u * 2u);  // t in {0, 24}
  for (auto c : par_cols) {
    EXPECT_EQ(generated.dataset.feature_info(c).type,
              data::FeatureType::kParametric);
  }
  for (auto c : chip_cols) {
    EXPECT_NE(generated.dataset.feature_info(c).type,
              data::FeatureType::kParametric);
  }
}

TEST(Scenario, NegativeReadPointThrows) {
  const auto generated = silicon::generate_dataset(small_config());
  const Scenario bad{-1.0, 25.0, FeatureSet::kBoth};
  EXPECT_THROW(scenario_feature_columns(generated.dataset, bad),
               std::invalid_argument);
}

TEST(Scenario, DescribeIsReadable) {
  const Scenario s{168.0, -45.0, FeatureSet::kParametricOnly};
  EXPECT_EQ(describe(s), "t=168h, T=-45C, features=parametric");
}

TEST(Pipeline, AssembleScenarioShapes) {
  const auto generated = silicon::generate_dataset(small_config());
  const Scenario s{24.0, 125.0, FeatureSet::kBoth};
  const auto data = assemble_scenario(generated.dataset, s);
  EXPECT_EQ(data.x.rows(), 40u);
  EXPECT_EQ(data.x.cols(), data.columns.size());
  EXPECT_EQ(data.y.size(), 40u);
  // Labels are the 125C series at 24h.
  EXPECT_EQ(data.y, generated.dataset.label(24.0, 125.0).values);
}

TEST(Pipeline, SelectFeaturesRespectsModelFamily) {
  const auto generated = silicon::generate_dataset(small_config());
  const Scenario s{0.0, 25.0, FeatureSet::kBoth};
  const auto data = assemble_scenario(generated.dataset, s);
  PipelineConfig config;
  config.tree_prefilter = 20;
  const auto cfs = select_features_for_model(
      data.x, data.y, models::ModelKind::kLinear, config, 5);
  EXPECT_LE(cfs.size(), 5u);
  const auto tree = select_features_for_model(
      data.x, data.y, models::ModelKind::kXgboost, config, 5);
  EXPECT_EQ(tree.size(), 20u);
}

TEST(Pipeline, SweepsAreClippedToBudget) {
  PipelineConfig config;
  config.cfs_max_features = 6;
  const auto sweep = cfs_sweep_for_model(models::ModelKind::kLinear, config);
  for (auto k : sweep) EXPECT_LE(k, 6u);
  EXPECT_FALSE(sweep.empty());
}

TEST(Experiment, Table3MethodsRoster) {
  const auto methods = table3_methods();
  ASSERT_EQ(methods.size(), 9u);
  EXPECT_EQ(methods[0].label(), "GP");
  EXPECT_EQ(methods[1].label(), "QR Linear Regression");
  EXPECT_EQ(methods[5].label(), "CQR Linear Regression");
  EXPECT_EQ(methods[8].label(), "CQR CatBoost");
}

TEST(Experiment, ParallelMapPreservesOrder) {
  const auto out = parallel_map<std::size_t>(
      20, [](std::size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 20u);
  for (std::size_t i = 0; i < 20; ++i) EXPECT_EQ(out[i], i * i);
}

TEST(Report, TableRendering) {
  TextTable table({"Method", "Length", "Coverage"});
  table.add_row({"CQR LR", "17.37", "95.51"});
  table.add_row({"GP", "48.56", "93.59"});
  const std::string s = table.to_string();
  EXPECT_NE(s.find("| Method"), std::string::npos);
  EXPECT_NE(s.find("| CQR LR"), std::string::npos);
  EXPECT_NE(s.find("|---"), std::string::npos);
  EXPECT_EQ(table.n_rows(), 2u);
  EXPECT_THROW(table.add_row({"too", "few"}), std::invalid_argument);
  EXPECT_THROW(TextTable({}), std::invalid_argument);
}

TEST(Report, FormatDouble) {
  EXPECT_EQ(format_double(12.3456, 2), "12.35");
  EXPECT_EQ(format_double(-0.5, 1), "-0.5");
  EXPECT_EQ(format_double(3.0, 0), "3");
}

}  // namespace
}  // namespace vmincqr::core
