// Serving-daemon battery: hot-swap bit-exactness under concurrent load,
// deterministic backpressure/shedding, FIFO fairness, clean shutdown drain,
// LRU bundle-cache behavior, and swap atomicity against corrupted artifacts.
//
// Everything here is seeded and sleep-free: overload is built with the
// daemon paused (the batcher never races the fill), and the concurrency
// tests assert scheduling-invariant properties (every response bit-exact to
// exactly one epoch; served order == admission order) rather than timings.
// The hot-swap and soak tests are part of the TSan CI job at
// VMINCQR_THREADS=8.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "artifact/bundle.hpp"
#include "conformal/cqr.hpp"
#include "daemon/vmin_daemon.hpp"
#include "models/linear.hpp"
#include "models/region.hpp"
#include "parallel/service_thread.hpp"
#include "parallel/thread_pool.hpp"

using namespace vmincqr;

namespace {

/// Restores env/hardware thread resolution when a test overrides it.
struct ThreadOverrideGuard {
  ~ThreadOverrideGuard() { parallel::set_max_threads(0); }
};

std::unique_ptr<models::LinearRegressor> golden_linear(double intercept) {
  models::LinearParams params;
  params.scaler.means = {1.0, -2.0};
  params.scaler.scales = {2.0, 4.0};
  params.label.mean = 0.5;
  params.label.scale = 0.05;
  params.coef = {intercept, 0.0625, -0.25};
  auto model = std::make_unique<models::LinearRegressor>();
  model->import_params(std::move(params));
  return model;
}

/// Hand-built CQR bundle in the golden-fixture style: every parameter an
/// exact binary fraction, so predictions are platform-independent and two
/// bundles differing only in `calibration` give intervals offset by an
/// exactly representable amount — distinguishable bit-for-bit.
std::vector<std::uint8_t> golden_bundle_bytes(double calibration,
                                              const std::string& label) {
  const core::MiscoverageAlpha level{0.2};
  auto pair = std::make_unique<models::QuantilePairRegressor>(
      level, golden_linear(-0.5), golden_linear(0.5), "QR Linear Regression");
  auto cqr = std::make_unique<conformal::ConformalizedQuantileRegressor>(
      level, std::move(pair));
  cqr->import_calibration({calibration, calibration});

  artifact::VminBundle bundle;
  bundle.scenario = {48.0, 25.0, 2, -1.0};
  bundle.label = label;
  bundle.dataset_columns = {0, 1, 2, 3};
  bundle.selected_features = {1, 3};
  bundle.predictor = std::move(cqr);
  return artifact::encode_bundle(bundle);
}

std::vector<std::uint8_t> bundle_a_bytes() {
  return golden_bundle_bytes(0.015625, "bundle A");  // 1/64
}

std::vector<std::uint8_t> bundle_b_bytes() {
  return golden_bundle_bytes(0.046875, "bundle B");  // 3/64
}

constexpr std::size_t kRows = 16;
constexpr std::size_t kWidth = 4;

/// Deterministic query rows, all exact binary fractions.
std::vector<double> query_row(std::size_t r) {
  return {0.25 * static_cast<double>(r),
          0.25 * static_cast<double>(r) - 1.0,
          0.5 * static_cast<double>(r % 5),
          2.0 - 0.125 * static_cast<double>(r)};
}

linalg::Matrix all_query_rows() {
  linalg::Matrix x(kRows, kWidth);
  for (std::size_t r = 0; r < kRows; ++r) x.set_row(r, query_row(r));
  return x;
}

/// Per-row reference intervals for a bundle, computed OUTSIDE the daemon
/// (the daemon must reproduce these bit-for-bit).
std::vector<serve::IntervalPrediction> reference_for(
    const std::vector<std::uint8_t>& bytes) {
  const auto predictor = serve::VminPredictor::from_bytes(bytes);
  return predictor.predict_batch(all_query_rows());
}

// --- basics -----------------------------------------------------------------

TEST(DaemonBasics, ServesQueriesBitExactToReference) {
  const auto bytes = bundle_a_bytes();
  const auto reference = reference_for(bytes);

  daemon::VminDaemon d;
  const std::uint64_t epoch = d.install_bytes("A", bytes);
  EXPECT_EQ(epoch, 1u);
  EXPECT_EQ(d.active_epoch(), 1u);
  d.start();
  for (std::size_t r = 0; r < kRows; ++r) {
    const auto response = d.ask({query_row(r)});
    ASSERT_EQ(response.status, daemon::ServeStatus::kOk);
    EXPECT_EQ(response.epoch, 1u);
    // EXPECT_EQ on doubles: bit-for-bit, not a tolerance.
    EXPECT_EQ(response.interval.lower, reference[r].lower) << "row " << r;
    EXPECT_EQ(response.interval.upper, reference[r].upper) << "row " << r;
  }
  d.stop();
  const auto stats = d.stats();
  EXPECT_EQ(stats.accepted, kRows);
  EXPECT_EQ(stats.served_ok, kRows);
}

TEST(DaemonBasics, NoArtifactIsTypedNotFatal) {
  daemon::VminDaemon d;
  d.start();
  const auto response = d.ask({query_row(0)});
  EXPECT_EQ(response.status, daemon::ServeStatus::kNoArtifact);
  EXPECT_EQ(response.epoch, 0u);
  d.stop();
  EXPECT_EQ(d.stats().served_no_artifact, 1u);
}

TEST(DaemonBasics, BadWidthIsTypedPerRequest) {
  daemon::VminDaemon d;
  (void)d.install_bytes("A", bundle_a_bytes());
  d.start();
  const auto bad = d.ask({{1.0, 2.0}});  // width 2, bundle expects 4
  EXPECT_EQ(bad.status, daemon::ServeStatus::kBadWidth);
  EXPECT_EQ(bad.epoch, 1u);
  const auto good = d.ask({query_row(0)});
  EXPECT_EQ(good.status, daemon::ServeStatus::kOk);
  d.stop();
  const auto stats = d.stats();
  EXPECT_EQ(stats.served_bad_width, 1u);
  EXPECT_EQ(stats.served_ok, 1u);
}

TEST(DaemonBasics, SubmitAfterStopShedsShutdownPreResolved) {
  daemon::VminDaemon d;
  (void)d.install_bytes("A", bundle_a_bytes());
  d.start();
  d.stop();
  const auto ticket = d.submit({query_row(0)});
  EXPECT_TRUE(ticket.resolved());  // shed at admission: wait() cannot block
  EXPECT_EQ(ticket.wait().status, daemon::ServeStatus::kShedShutdown);
  EXPECT_EQ(d.stats().shed_shutdown, 1u);
}

TEST(DaemonBasics, StopIsIdempotentAndCoversNeverStarted) {
  daemon::VminDaemon never_started;
  never_started.stop();
  never_started.stop();

  daemon::VminDaemon d;
  d.start();
  d.stop();
  d.stop();
}

// --- swap atomicity against corrupted artifacts -----------------------------

TEST(DaemonSwap, CorruptInstallThrowsAndLeavesActiveEpochServing) {
  const auto bytes_a = bundle_a_bytes();
  const auto reference = reference_for(bytes_a);

  daemon::VminDaemon d;
  (void)d.install_bytes("A", bytes_a);
  d.start();

  // Corrupt bundle B at a spread of positions: header, framing, payload,
  // seal. Every install must throw ArtifactError and leave epoch 1 serving.
  const auto bytes_b = bundle_b_bytes();
  for (const std::size_t position :
       {std::size_t{0}, std::size_t{4}, std::size_t{9},
        bytes_b.size() / 2, bytes_b.size() - 1}) {
    auto corrupted = bytes_b;
    corrupted[position] ^= 0xFFU;
    EXPECT_THROW((void)d.install_bytes("B", corrupted),
                 artifact::ArtifactError)
        << "corrupt byte " << position;
    EXPECT_EQ(d.active_epoch(), 1u);
    const auto response = d.ask({query_row(3)});
    ASSERT_EQ(response.status, daemon::ServeStatus::kOk);
    EXPECT_EQ(response.epoch, 1u);
    EXPECT_EQ(response.interval.lower, reference[3].lower);
    EXPECT_EQ(response.interval.upper, reference[3].upper);
  }
  d.stop();
  // The failed installs must not have registered anywhere.
  EXPECT_EQ(d.stats().installs, 1u);
}

// --- LRU bundle cache -------------------------------------------------------

TEST(DaemonCache, LruEvictionAndActivation) {
  daemon::DaemonConfig config;
  config.cache_capacity = 2;
  daemon::VminDaemon d(config);

  EXPECT_EQ(d.install_bytes("A", bundle_a_bytes()), 1u);
  EXPECT_EQ(d.install_bytes("B", bundle_b_bytes()), 2u);
  // Re-activating a resident bundle is a cache hit and a fresh epoch.
  EXPECT_EQ(d.activate("A"), 3u);
  EXPECT_EQ(d.active_epoch(), 3u);

  // Third install evicts the least recently used entry ("B": the activate
  // refreshed "A").
  EXPECT_EQ(d.install_bytes("C", bundle_a_bytes()), 4u);
  EXPECT_THROW((void)d.activate("B"), std::invalid_argument);
  EXPECT_EQ(d.activate("A"), 5u);

  const auto stats = d.stats();
  EXPECT_EQ(stats.installs, 3u);
  EXPECT_EQ(stats.activations, 2u);
  EXPECT_EQ(stats.cache.evictions, 1u);
  EXPECT_EQ(stats.cache.hits, 2u);   // both successful activates
  EXPECT_EQ(stats.cache.misses, 1u); // the failed activate of "B"
}

// --- deterministic backpressure ---------------------------------------------

TEST(DaemonBackpressure, PausedOverloadShedsTypedThenDrainsFifo) {
  constexpr std::size_t kCapacity = 16;
  constexpr std::size_t kOverflow = 5;
  daemon::DaemonConfig config;
  config.queue_capacity = kCapacity;
  config.max_batch_rows = 4;
  daemon::VminDaemon d(config);
  (void)d.install_bytes("A", bundle_a_bytes());

  // Close the gate BEFORE starting: the batcher parks without ever popping,
  // so the overload below is exact — no race, no sleeps.
  d.pause();
  d.start();

  std::vector<daemon::Ticket> admitted;
  for (std::size_t i = 0; i < kCapacity; ++i) {
    auto ticket = d.submit({query_row(i % kRows)});
    EXPECT_FALSE(ticket.resolved()) << "queued work resolved while paused";
    admitted.push_back(std::move(ticket));
  }
  // Queue is now exactly full: every further submission sheds, typed.
  std::vector<daemon::Ticket> shed;
  for (std::size_t i = 0; i < kOverflow; ++i) {
    auto ticket = d.submit({query_row(i % kRows)});
    EXPECT_TRUE(ticket.resolved());
    EXPECT_EQ(ticket.wait().status, daemon::ServeStatus::kShedQueueFull);
    shed.push_back(std::move(ticket));
  }

  // stop() opens the gate, closes admissions, and drains: every admitted
  // request must resolve kOk, in admission order.
  d.stop();
  for (std::size_t i = 0; i < admitted.size(); ++i) {
    const auto& response = admitted[i].wait();
    ASSERT_EQ(response.status, daemon::ServeStatus::kOk) << "ticket " << i;
    EXPECT_EQ(response.sequence, i);
    EXPECT_EQ(response.served_sequence, response.sequence)
        << "FIFO violated at ticket " << i;
  }

  const auto stats = d.stats();
  EXPECT_EQ(stats.accepted, kCapacity);
  EXPECT_EQ(stats.shed_queue_full, kOverflow);
  EXPECT_EQ(stats.served_ok, kCapacity);
  EXPECT_EQ(stats.max_queue_depth, kCapacity);  // bounded: never past K
  // Drain of a 16-deep queue at max_batch_rows=4 is exactly 4 batches.
  EXPECT_EQ(stats.batches, kCapacity / config.max_batch_rows);
}

TEST(DaemonBackpressure, FifoFairnessHoldsWithConcurrentProducers) {
  constexpr std::size_t kProducers = 4;
  constexpr std::size_t kPerProducer = 200;
  daemon::DaemonConfig config;
  config.queue_capacity = 64;
  config.max_batch_rows = 8;
  daemon::VminDaemon d(config);
  (void)d.install_bytes("A", bundle_a_bytes());
  d.start();

  std::vector<std::vector<daemon::Ticket>> tickets(kProducers);
  {
    std::vector<parallel::ServiceThread> producers(kProducers);
    for (std::size_t p = 0; p < kProducers; ++p) {
      auto& mine = tickets[p];
      mine.reserve(kPerProducer);
      producers[p].start([&d, &mine, p] {
        for (std::size_t i = 0; i < kPerProducer; ++i) {
          mine.push_back(d.submit({query_row((p + i) % kRows)}));
        }
      });
    }
    for (auto& producer : producers) producer.join();
  }
  d.stop();

  // Admission order between producers is scheduling-dependent, but the
  // fairness invariant is not: every ADMITTED request is served in exactly
  // its admission slot, and a producer's own sequences are increasing.
  std::uint64_t n_accepted = 0;
  std::uint64_t n_shed = 0;
  for (std::size_t p = 0; p < kProducers; ++p) {
    std::uint64_t previous_sequence = 0;
    bool first = true;
    for (const auto& ticket : tickets[p]) {
      const auto& response = ticket.wait();
      if (response.status == daemon::ServeStatus::kShedQueueFull) {
        ++n_shed;
        continue;
      }
      ASSERT_EQ(response.status, daemon::ServeStatus::kOk);
      EXPECT_EQ(response.served_sequence, response.sequence);
      if (!first) {
        EXPECT_GT(response.sequence, previous_sequence);
      }
      previous_sequence = response.sequence;
      first = false;
      ++n_accepted;
    }
  }
  const auto stats = d.stats();
  EXPECT_EQ(n_accepted + n_shed, kProducers * kPerProducer);
  EXPECT_EQ(stats.accepted, n_accepted);
  EXPECT_EQ(stats.served_ok, n_accepted);  // clean drain: nothing lost
  EXPECT_LE(stats.max_queue_depth, config.queue_capacity);
}

// --- hot swap under concurrent load -----------------------------------------

/// The tentpole invariance test: 8 client threads stream queries while the
/// main thread swaps between bundles A and B mid-stream. Every kOk response
/// must be bit-exact to the reference outputs of the SINGLE epoch that
/// served it (odd epochs are A, even are B) — a torn or mixed swap cannot
/// produce that. Runs at pool widths 1, 2, and 8 (thread-count invariance)
/// and under TSan in CI.
TEST(DaemonHotSwap, ResponsesBitExactToExactlyOneEpochAcrossWidths) {
  const auto bytes_a = bundle_a_bytes();
  const auto bytes_b = bundle_b_bytes();
  const auto reference_a = reference_for(bytes_a);
  const auto reference_b = reference_for(bytes_b);
  ASSERT_NE(reference_a[0].lower, reference_b[0].lower);  // distinguishable

  constexpr std::size_t kClients = 8;
  constexpr std::size_t kAsksPerClient = 150;
  constexpr std::size_t kSwaps = 25;

  ThreadOverrideGuard guard;
  for (const std::size_t width : {std::size_t{1}, std::size_t{2},
                                  std::size_t{8}}) {
    parallel::set_max_threads(width);
    daemon::VminDaemon d;
    ASSERT_EQ(d.install_bytes("A", bytes_a), 1u);  // odd epochs serve A
    d.start();

    std::vector<std::vector<daemon::ServeResponse>> responses(kClients);
    {
      std::vector<parallel::ServiceThread> clients(kClients);
      for (std::size_t c = 0; c < kClients; ++c) {
        auto& mine = responses[c];
        mine.reserve(kAsksPerClient);
        clients[c].start([&d, &mine, c] {
          for (std::size_t i = 0; i < kAsksPerClient; ++i) {
            mine.push_back(d.ask({query_row((c * 3 + i) % kRows)}));
          }
        });
      }
      // Swap artifacts mid-stream from this thread: epoch ids alternate
      // A(odd) / B(even) because installs are the only epoch source here.
      for (std::size_t s = 0; s < kSwaps; ++s) {
        (void)d.install_bytes(s % 2 == 0 ? "B" : "A",
                              s % 2 == 0 ? bytes_b : bytes_a);
      }
      for (auto& client : clients) client.join();
    }
    d.stop();

    for (std::size_t c = 0; c < kClients; ++c) {
      for (std::size_t i = 0; i < responses[c].size(); ++i) {
        const auto& response = responses[c][i];
        ASSERT_EQ(response.status, daemon::ServeStatus::kOk)
            << "width " << width << " client " << c << " ask " << i;
        ASSERT_GE(response.epoch, 1u);
        ASSERT_LE(response.epoch, 1u + kSwaps);
        const std::size_t row = (c * 3 + i) % kRows;
        const auto& expected = (response.epoch % 2 == 1)
                                   ? reference_a[row]
                                   : reference_b[row];
        EXPECT_EQ(response.interval.lower, expected.lower)
            << "width " << width << " client " << c << " ask " << i
            << " epoch " << response.epoch;
        EXPECT_EQ(response.interval.upper, expected.upper)
            << "width " << width << " client " << c << " ask " << i
            << " epoch " << response.epoch;
      }
    }
    const auto stats = d.stats();
    EXPECT_EQ(stats.installs, 1u + kSwaps);
    EXPECT_EQ(stats.served_ok, kClients * kAsksPerClient);
  }
}

// --- concurrency soak -------------------------------------------------------

/// Overload soak with a deliberately tiny queue: heavy concurrent
/// submission, hot swaps mid-flight, constant shedding. Asserts the
/// conservation and boundedness invariants that define the backpressure
/// contract — nothing silently dropped, nothing served twice, queue depth
/// never past capacity, every served response bit-exact to its epoch.
TEST(DaemonSoak, OverloadSoakConservesAndBoundsEverything) {
  const auto bytes_a = bundle_a_bytes();
  const auto bytes_b = bundle_b_bytes();
  const auto reference_a = reference_for(bytes_a);
  const auto reference_b = reference_for(bytes_b);

  constexpr std::size_t kProducers = 4;
  constexpr std::size_t kPerProducer = 300;
  daemon::DaemonConfig config;
  config.queue_capacity = 8;  // tiny: forces real shedding under load
  config.max_batch_rows = 3;
  config.cache_capacity = 2;
  daemon::VminDaemon d(config);
  (void)d.install_bytes("A", bytes_a);
  d.start();

  std::vector<std::vector<daemon::Ticket>> tickets(kProducers);
  {
    std::vector<parallel::ServiceThread> producers(kProducers);
    for (std::size_t p = 0; p < kProducers; ++p) {
      auto& mine = tickets[p];
      mine.reserve(kPerProducer);
      producers[p].start([&d, &mine, p] {
        for (std::size_t i = 0; i < kPerProducer; ++i) {
          mine.push_back(d.submit({query_row((p * 5 + i) % kRows)}));
        }
      });
    }
    // Keep swapping while the soak runs.
    for (std::size_t s = 0; s < 10; ++s) {
      (void)d.install_bytes(s % 2 == 0 ? "B" : "A",
                            s % 2 == 0 ? bytes_b : bytes_a);
    }
    for (auto& producer : producers) producer.join();
  }
  d.stop();

  std::uint64_t n_ok = 0;
  std::uint64_t n_shed = 0;
  for (std::size_t p = 0; p < kProducers; ++p) {
    for (std::size_t i = 0; i < tickets[p].size(); ++i) {
      const auto& response = tickets[p][i].wait();
      if (response.status == daemon::ServeStatus::kShedQueueFull) {
        ++n_shed;
        continue;
      }
      ASSERT_EQ(response.status, daemon::ServeStatus::kOk)
          << "producer " << p << " submit " << i;
      EXPECT_EQ(response.served_sequence, response.sequence);
      const std::size_t row = (p * 5 + i) % kRows;
      const auto& expected =
          (response.epoch % 2 == 1) ? reference_a[row] : reference_b[row];
      EXPECT_EQ(response.interval.lower, expected.lower);
      EXPECT_EQ(response.interval.upper, expected.upper);
      ++n_ok;
    }
  }

  const auto stats = d.stats();
  // Conservation: every submission is exactly one of served / shed.
  EXPECT_EQ(n_ok + n_shed, kProducers * kPerProducer);
  EXPECT_EQ(stats.accepted, n_ok);
  EXPECT_EQ(stats.served_ok, n_ok);
  EXPECT_EQ(stats.shed_queue_full, n_shed);
  EXPECT_EQ(stats.shed_shutdown, 0u);
  // Boundedness: admission control held the line.
  EXPECT_LE(stats.max_queue_depth, config.queue_capacity);
  EXPECT_GT(n_ok, 0u);  // the daemon made progress under overload
}

}  // namespace
