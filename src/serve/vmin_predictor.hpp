// Serve-time Vmin predictor — the consumer side of the fit/serve boundary.
//
// VminPredictor loads ONE artifact bundle (scenario -> columns -> optional
// scaler -> fitted base model -> conformal calibration) and serves batched
// interval predictions with zero training code: this layer is forbidden (and
// lint-enforced, see tools/vmincqr_lint/layers.toml) from including fit-time
// model internals or the orchestration layer. A serve build cannot train.
//
// Intended deployment shape (paper Sec. V): fit once per scenario on the
// characterization population, ship the .vqa artifact to the tester, screen
// every production chip with predict_batch.
#pragma once

#include <string>
#include <vector>

#include "artifact/bundle.hpp"
#include "linalg/matrix.hpp"

namespace vmincqr::serve {

using linalg::Matrix;

/// One chip's Vmin interval (volts).
struct IntervalPrediction {
  double lower = 0.0;
  double upper = 0.0;
};

/// Decoded-bundle metadata, for logs and sanity checks at the tester.
struct PredictorInfo {
  std::string label;
  std::uint32_t format_version = 0;
  double miscoverage = 0.0;  ///< target alpha; nominal coverage is 1 - this
  artifact::ScenarioSpec scenario;
  std::size_t n_dataset_columns = 0;
  std::size_t n_selected_features = 0;
};

class VminPredictor {
 public:
  /// Adopts a decoded bundle. Throws std::invalid_argument on a null
  /// predictor or out-of-range selected features.
  explicit VminPredictor(artifact::VminBundle bundle);

  /// Loads a .vqa artifact file / raw VQAF bytes. Throws
  /// artifact::ArtifactError on I/O failure or malformed content.
  [[nodiscard]] static VminPredictor load_file(const std::string& path);
  [[nodiscard]] static VminPredictor from_bytes(
      const std::vector<std::uint8_t>& bytes);

  /// Screens a batch of chips: one row per chip, one column per bundle
  /// dataset column (see info().n_dataset_columns), in artifact order. The
  /// predictor applies the saved feature selection (and input scaler, if
  /// present) internally, so callers feed the full assembled design.
  /// Throws std::invalid_argument on a column-count mismatch or empty batch.
  [[nodiscard]] std::vector<IntervalPrediction> predict_batch(
      const Matrix& x) const;

  /// Feature width predict_batch expects (= number of dataset columns).
  [[nodiscard]] std::size_t expected_features() const noexcept {
    return bundle_.dataset_columns.size();
  }

  [[nodiscard]] PredictorInfo info() const;

  /// The underlying bundle (e.g. for debug_json).
  [[nodiscard]] const artifact::VminBundle& bundle() const noexcept {
    return bundle_;
  }

 private:
  artifact::VminBundle bundle_;
};

}  // namespace vmincqr::serve
