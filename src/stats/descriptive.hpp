// Descriptive statistics: means, variances, correlation.
#pragma once

#include <cstddef>
#include <vector>

namespace vmincqr::stats {

/// Arithmetic mean. Throws std::invalid_argument on empty input.
double mean(const std::vector<double>& v);

/// Population variance (divides by n). Throws on empty input.
double variance(const std::vector<double>& v);

/// Sample variance (divides by n-1). Throws if n < 2.
double sample_variance(const std::vector<double>& v);

/// Population standard deviation.
double stddev(const std::vector<double>& v);

/// Pearson correlation coefficient in [-1, 1]. Returns 0 when either input
/// is (numerically) constant. Throws on length mismatch or empty input.
double pearson(const std::vector<double>& a, const std::vector<double>& b);

/// Min / max helpers. Throw on empty input.
double min_value(const std::vector<double>& v);
double max_value(const std::vector<double>& v);

}  // namespace vmincqr::stats
