// VminDaemon: long-running fleet-scale serving core around
// serve::VminPredictor (DESIGN.md §11).
//
// Shape of the machine:
//
//   clients --submit()--> BoundedQueue --pop_batch--> batcher thread
//                                                        |
//                                     SwapCell<Epoch> ---+--> predict_batch
//                                                              (thread pool)
//
//   * Request batching. submit() enqueues one chip's query; a single
//     batcher ServiceThread drains up to max_batch_rows at a time and
//     serves them with ONE predict_batch call, sharded across the
//     deterministic pool. The batcher is the pool's sole external caller
//     while the daemon runs (the pool admits one at a time).
//   * Hot swap. install_bytes/activate publish a new immutable Epoch
//     {id, predictor} through a SwapCell. Each batch snapshots the cell
//     once, so every response is computed bit-exactly by exactly one
//     epoch — never a mix — and the old bundle retires when its last
//     in-flight batch drops the snapshot (refcount retirement).
//   * Admission control. The queue is bounded; overload sheds with a
//     typed kShedQueueFull response instead of queueing unboundedly, and
//     shutdown sheds with kShedShutdown. Shed tickets are pre-resolved:
//     wait() never blocks on them.
//   * FIFO fairness. Admission stamps a monotone sequence under the queue
//     lock; the batcher stamps served_sequence in drain order. For every
//     admitted request the two agree — the soak battery asserts it.
//
// Lifecycle is one-shot: start() once, stop() once (idempotent, also run
// by the destructor); pause()/resume() hold the NEXT batch for
// deterministic overload tests without interrupting one in flight.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "daemon/bundle_cache.hpp"
#include "daemon/request.hpp"
#include "parallel/bounded_queue.hpp"
#include "parallel/service_thread.hpp"
#include "parallel/swap_cell.hpp"
#include "parallel/sync.hpp"

namespace vmincqr::daemon {

struct DaemonConfig {
  /// Admission queue bound; submissions past this shed with kShedQueueFull.
  std::size_t queue_capacity = 1024;
  /// Largest coalesced batch handed to one predict_batch call.
  std::size_t max_batch_rows = 256;
  /// Resident decoded-bundle slots in the LRU cache.
  std::size_t cache_capacity = 4;
};

/// Daemon counters; a consistent snapshot is returned by stats(). All are
/// monotone except max_queue_depth (a high-water mark).
struct DaemonStats {
  std::uint64_t accepted = 0;
  std::uint64_t shed_queue_full = 0;
  std::uint64_t shed_shutdown = 0;
  std::uint64_t served_ok = 0;
  std::uint64_t served_bad_width = 0;
  std::uint64_t served_no_artifact = 0;
  std::uint64_t served_internal_error = 0;
  std::uint64_t batches = 0;
  std::uint64_t installs = 0;
  std::uint64_t activations = 0;
  std::size_t max_queue_depth = 0;
  BundleCacheStats cache;
};

namespace detail {
/// Shared slot between a submitter and the batcher: the batcher (or the
/// shedding producer) writes `response`, then sets `done`; the ticket
/// holder reads `response` only after waiting on `done`.
struct Pending {
  parallel::OneShotEvent done;
  ServeResponse response;
};
}  // namespace detail

/// Handle to one in-flight (or already shed) request.
class Ticket {
 public:
  Ticket() = default;

  /// Blocks until the request is resolved, then returns its response.
  /// Contract violation on a default-constructed ticket. Must not be
  /// called from inside the daemon's own batcher (self-deadlock).
  [[nodiscard]] const ServeResponse& wait() const;

  [[nodiscard]] bool valid() const noexcept { return state_ != nullptr; }

  /// True once the response is written (wait() would return immediately).
  /// Shed tickets are born resolved; admitted ones resolve when served.
  [[nodiscard]] bool resolved() const {
    return state_ != nullptr && state_->done.is_set();
  }

 private:
  friend class VminDaemon;
  explicit Ticket(std::shared_ptr<detail::Pending> state)
      : state_(std::move(state)) {}

  std::shared_ptr<detail::Pending> state_;
};

class VminDaemon {
 public:
  explicit VminDaemon(DaemonConfig config = DaemonConfig{});
  /// Stops the daemon (clean drain) if still running.
  ~VminDaemon();
  VminDaemon(const VminDaemon&) = delete;
  VminDaemon& operator=(const VminDaemon&) = delete;

  /// Spawns the batcher. Contract violation if already started. While the
  /// daemon runs it must be the thread pool's only external caller: do not
  /// call predict_batch / parallel_for / set_max_threads concurrently.
  void start();

  /// Closes admissions, drains every already-admitted request, joins the
  /// batcher. Idempotent; requests submitted afterwards shed kShedShutdown.
  void stop();

  /// Holds the batcher before its NEXT batch (in-flight work completes).
  /// Queued and newly submitted requests park until resume(). Test hook
  /// for building deterministic overload without sleeps.
  void pause();
  void resume();

  /// Decodes VQAF bytes, caches the bundle under `key`, and activates it
  /// as a new epoch. Decoding happens before any state changes, so a
  /// throw (artifact::ArtifactError on malformed bytes) leaves the
  /// previously active epoch serving untouched — swap is all-or-nothing.
  /// Returns the new epoch id (monotone from 1).
  std::uint64_t install_bytes(const std::string& key,
                              const std::vector<std::uint8_t>& bytes);
  /// install_bytes for a .vqa file on disk.
  std::uint64_t install_file(const std::string& key, const std::string& path);

  /// Re-activates a previously installed bundle from the LRU cache.
  /// Throws std::invalid_argument if `key` is not resident (installed
  /// bundles can be evicted; re-install to recover). Returns the epoch id.
  std::uint64_t activate(const std::string& key);

  /// Id of the currently serving epoch; 0 before the first install.
  [[nodiscard]] std::uint64_t active_epoch() const;

  /// Non-blocking admission: always returns a resolved-or-resolvable
  /// ticket. Overload and shutdown come back as pre-resolved typed sheds.
  [[nodiscard]] Ticket submit(ChipQuery query);

  /// submit() + wait(): the one-chip synchronous convenience call.
  [[nodiscard]] ServeResponse ask(ChipQuery query);

  [[nodiscard]] DaemonStats stats() const;
  [[nodiscard]] const DaemonConfig& config() const noexcept { return config_; }

 private:
  /// One immutable published artifact generation.
  struct Epoch {
    std::uint64_t id = 0;
    std::shared_ptr<const serve::VminPredictor> predictor;
  };

  struct WorkItem {
    ChipQuery query;
    std::shared_ptr<detail::Pending> pending;
  };

  void run_loop();
  void serve_batch(std::vector<WorkItem>& batch);
  std::uint64_t publish(std::shared_ptr<const serve::VminPredictor> predictor,
                        bool is_install);

  DaemonConfig config_;
  BundleCache cache_;
  parallel::BoundedQueue<WorkItem> queue_;
  parallel::SwapCell<Epoch> epoch_cell_;
  parallel::Gate gate_;
  parallel::ServiceThread batcher_;

  /// Serializes lifecycle transitions and epoch-id allocation.
  mutable parallel::Mutex control_mutex_;
  std::uint64_t next_epoch_id_ = 1;
  bool started_ = false;
  bool stopped_ = false;

  /// Batcher-private service counter (only the batcher thread touches it).
  std::uint64_t next_served_sequence_ = 0;

  mutable parallel::Mutex stats_mutex_;
  DaemonStats stats_;
};

}  // namespace vmincqr::daemon
