#include "silicon/critical_path.hpp"

#include <algorithm>

namespace vmincqr::silicon {

const std::vector<CriticalPath>& standard_critical_paths() {
  // Ten paths with distinct sensitivity mixes: Vth-dominated logic paths,
  // wire/length-dominated paths, mismatch-sensitive SRAM-ish paths, and
  // paths with above-average aging loading (high-activity clock spines).
  // Offsets spread +-6 mV so the binding path changes across the corner
  // space, which is what makes the max genuinely nonlinear.
  static const std::vector<CriticalPath> paths = {
      //  offset   w_vth  w_leff  w_mm    aging_gain
      {0.0000, 1.05, 0.08, 0.0030, 1.00},
      {-0.0080, 1.60, 0.02, 0.0010, 0.70},   // Vth-dominated fast-corner path
      {-0.0060, 0.40, 0.45, 0.0020, 1.20},   // wire/length-dominated path
      {-0.0040, 0.85, 0.15, 0.0110, 0.90},   // SRAM-ish mismatch-limited path
      {-0.0100, 1.30, 0.20, 0.0010, 1.45},   // high-activity aging hot spot
      {-0.0020, 0.70, 0.06, 0.0060, 1.10},
      {-0.0090, 1.45, -0.10, 0.0020, 0.60},  // inverse-narrow-width effect
      {-0.0050, 0.35, 0.38, 0.0045, 1.30},
      {-0.0070, 1.20, 0.12, 0.0008, 1.05},
      {-0.0110, 1.00, 0.05, 0.0055, 1.55},   // late-life wear-out path
  };
  return paths;
}

double path_score(const CriticalPath& path, const ChipLatent& chip,
                  double age_dvth) {
  return path.offset + path.w_vth * (chip.dvth + path.aging_gain * age_dvth) +
         path.w_leff * chip.dleff + path.w_mismatch * chip.mismatch;
}

double worst_path_score(const std::vector<CriticalPath>& paths,
                        const ChipLatent& chip, double age_dvth) {
  double worst = -1e30;
  for (const auto& path : paths) {
    worst = std::max(worst, path_score(path, chip, age_dvth));
  }
  return worst;
}

}  // namespace vmincqr::silicon
