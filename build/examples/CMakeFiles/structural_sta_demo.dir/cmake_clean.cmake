file(REMOVE_RECURSE
  "CMakeFiles/structural_sta_demo.dir/structural_sta_demo.cpp.o"
  "CMakeFiles/structural_sta_demo.dir/structural_sta_demo.cpp.o.d"
  "structural_sta_demo"
  "structural_sta_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/structural_sta_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
