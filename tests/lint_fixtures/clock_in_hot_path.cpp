// Golden fixture: clock-in-hot-path — a wall-clock read outside bench/ and
// tools/. Timing must never steer library results; measurement lives in
// the bench harnesses.
#include <chrono>

long long stamp() {
  const auto t0 = std::chrono::steady_clock::now();
  return t0.time_since_epoch().count();
}
