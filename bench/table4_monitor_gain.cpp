// Reproduces Table IV of the paper: CQR CatBoost interval length averaged
// across all stress read points, per temperature and feature set, plus the
// "on-chip monitor gain" row — the relative reduction in interval length
// when monitor data is added to parametric data (paper: 19.0% / 19.1% /
// 25.8% per temperature, 21.0% average).
#include "bench_common.hpp"

using namespace vmincqr;

int main() {
  bench::Stopwatch watch;
  const auto generated = bench::make_paper_dataset();
  const auto config = bench::paper_experiment_config();
  const core::RegionMethodSpec cqr_catboost{
      core::RegionMethodSpec::Family::kCqr, models::ModelKind::kCatboost};

  const core::FeatureSet feature_sets[] = {core::FeatureSet::kParametricOnly,
                                           core::FeatureSet::kOnChipOnly,
                                           core::FeatureSet::kBoth};

  std::vector<core::Scenario> cells;
  for (auto set : feature_sets) {
    for (const auto& s : bench::paper_scenario_grid(set)) cells.push_back(s);
  }
  const auto results = core::parallel_map<core::RegionMethodScore>(
      cells.size(), [&](std::size_t i) {
        return core::evaluate_region_method(generated.dataset, cells[i],
                                            cqr_catboost, config);
      });

  // Average over read points per (feature set, temperature).
  const auto mean_length = [&](core::FeatureSet set, double temp) {
    double acc = 0.0;
    std::size_t n = 0;
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (cells[i].feature_set == set && cells[i].temperature_c == temp) {
        acc += results[i].mean_length_mv;
        ++n;
      }
    }
    return acc / static_cast<double>(n);
  };

  std::printf(
      "=== Table IV: CQR CatBoost interval length (mV), averaged over all "
      "read points ===\n\n");
  core::TextTable table(
      {"Feature type", "-45C", "25C", "125C", "Average"});
  std::vector<double> gains;
  double par_avg = 0.0, both_avg = 0.0;
  for (auto set : feature_sets) {
    std::vector<std::string> row = {core::to_string(set)};
    double avg = 0.0;
    for (double temp : silicon::standard_temperatures()) {
      const double len = mean_length(set, temp);
      row.push_back(core::format_double(len, 2));
      avg += len;
    }
    avg /= 3.0;
    row.push_back(core::format_double(avg, 2));
    table.add_row(row);
    if (set == core::FeatureSet::kParametricOnly) par_avg = avg;
    if (set == core::FeatureSet::kBoth) both_avg = avg;
  }
  // Gain row: (parametric - both) / parametric, per temperature.
  std::vector<std::string> gain_row = {"on-chip monitor gain"};
  double gain_avg = 0.0;
  for (double temp : silicon::standard_temperatures()) {
    const double par = mean_length(core::FeatureSet::kParametricOnly, temp);
    const double both = mean_length(core::FeatureSet::kBoth, temp);
    const double gain = (par - both) / par * 100.0;
    gain_row.push_back(core::format_double(gain, 2) + "%");
    gain_avg += gain;
  }
  gain_row.push_back(core::format_double(gain_avg / 3.0, 2) + "%");
  table.add_row(gain_row);
  std::printf("%s\n", table.to_string().c_str());

  std::printf("shape checks:\n");
  std::printf("  overall monitor gain: %.1f%% (paper: 21.0%%)\n",
              (par_avg - both_avg) / par_avg * 100.0);
  const double onchip_avg =
      (mean_length(core::FeatureSet::kOnChipOnly, -45.0) +
       mean_length(core::FeatureSet::kOnChipOnly, 25.0) +
       mean_length(core::FeatureSet::kOnChipOnly, 125.0)) /
      3.0;
  std::printf(
      "  on-chip only (%.1f mV) vs parametric only (%.1f mV): %s (paper: "
      "on-chip wins despite ~10x fewer features)\n",
      onchip_avg, par_avg, onchip_avg < par_avg ? "on-chip wins" : "parametric wins");
  std::printf("\n[table4_monitor_gain] done in %.1f s\n", watch.seconds());
  return 0;
}
