// Microbenchmarks (google-benchmark) backing Table I's "computational
// efficiency" column: fit and predict wall time for every point model, the
// quantile-pair variants, and the conformal calibration overhead, at the
// paper's data scale (~117 training chips after the CV split, 8-32
// features).
#include <benchmark/benchmark.h>

#include "conformal/cqr.hpp"
#include "conformal/split_cp.hpp"
#include "data/feature_select.hpp"
#include "models/factory.hpp"
#include "rng/rng.hpp"
#include "stats/quantile.hpp"

using namespace vmincqr;

namespace {

struct Problem {
  linalg::Matrix x;
  linalg::Vector y;
};

Problem make_problem(std::size_t n, std::size_t d) {
  rng::Rng rng(7);
  Problem p{linalg::Matrix(n, d), linalg::Vector(n)};
  for (std::size_t i = 0; i < n; ++i) {
    double signal = 0.0;
    for (std::size_t c = 0; c < d; ++c) {
      p.x(i, c) = rng.normal();
      signal += (c % 3 == 0 ? 0.3 : 0.05) * p.x(i, c);
    }
    p.y[i] = 0.55 + 0.01 * signal + rng.normal(0.0, 0.003);
  }
  return p;
}

void fit_model(benchmark::State& state, models::ModelKind kind) {
  const auto p = make_problem(static_cast<std::size_t>(state.range(0)),
                              static_cast<std::size_t>(state.range(1)));
  for (auto _ : state) {
    auto model = models::make_point_regressor(kind);
    model->fit(p.x, p.y);
    benchmark::DoNotOptimize(model);
  }
}

void predict_model(benchmark::State& state, models::ModelKind kind) {
  const auto p = make_problem(static_cast<std::size_t>(state.range(0)),
                              static_cast<std::size_t>(state.range(1)));
  auto model = models::make_point_regressor(kind);
  model->fit(p.x, p.y);
  for (auto _ : state) {
    auto pred = model->predict(p.x);
    benchmark::DoNotOptimize(pred);
  }
}

}  // namespace

#define VMINCQR_MODEL_BENCH(name, kind)                               \
  BENCHMARK_CAPTURE(fit_model, name, models::ModelKind::kind)         \
      ->Args({117, 8})                                                \
      ->Unit(benchmark::kMillisecond);                                \
  BENCHMARK_CAPTURE(predict_model, name, models::ModelKind::kind)     \
      ->Args({117, 8})                                                \
      ->Unit(benchmark::kMicrosecond)

VMINCQR_MODEL_BENCH(linear, kLinear);
VMINCQR_MODEL_BENCH(gp, kGp);
VMINCQR_MODEL_BENCH(xgboost, kXgboost);
VMINCQR_MODEL_BENCH(catboost, kCatboost);
VMINCQR_MODEL_BENCH(mlp, kMlp);

static void fit_quantile_pair_linear(benchmark::State& state) {
  const auto p = make_problem(117, 8);
  for (auto _ : state) {
    auto pair = models::make_quantile_pair(models::ModelKind::kLinear, core::MiscoverageAlpha{0.1});
    pair->fit(p.x, p.y);
    benchmark::DoNotOptimize(pair);
  }
}
BENCHMARK(fit_quantile_pair_linear)->Unit(benchmark::kMillisecond);

static void fit_cqr_linear(benchmark::State& state) {
  const auto p = make_problem(156, 8);
  for (auto _ : state) {
    conformal::ConformalizedQuantileRegressor cqr(
        core::MiscoverageAlpha{0.1}, models::make_quantile_pair(models::ModelKind::kLinear, core::MiscoverageAlpha{0.1}));
    cqr.fit(p.x, p.y);
    benchmark::DoNotOptimize(cqr);
  }
}
BENCHMARK(fit_cqr_linear)->Unit(benchmark::kMillisecond);

static void fit_split_cp_linear(benchmark::State& state) {
  const auto p = make_problem(156, 8);
  for (auto _ : state) {
    conformal::SplitConformalRegressor cp(
        core::MiscoverageAlpha{0.1}, models::make_point_regressor(models::ModelKind::kLinear));
    cp.fit(p.x, p.y);
    benchmark::DoNotOptimize(cp);
  }
}
BENCHMARK(fit_split_cp_linear)->Unit(benchmark::kMillisecond);

// Conformal calibration alone (score + quantile) — the marginal cost CQR
// adds on top of the base quantile pair. Should be microseconds: the
// "computational efficiency" tick in Table I.
static void cqr_calibration_overhead(benchmark::State& state) {
  const auto p = make_problem(156, 8);
  auto pair = models::make_quantile_pair(models::ModelKind::kLinear, core::MiscoverageAlpha{0.1});
  // Pre-fit the pair once; time only the calibrate step via fit_with_split
  // on a tiny already-fitted clone path: emulate by scoring + quantile.
  pair->fit(p.x, p.y);
  const auto band = pair->predict_interval(p.x);
  for (auto _ : state) {
    std::vector<double> scores(p.y.size());
    for (std::size_t i = 0; i < p.y.size(); ++i) {
      scores[i] = std::max(band.lower[i] - p.y[i], p.y[i] - band.upper[i]);
    }
    benchmark::DoNotOptimize(
        stats::conformal_quantile(std::move(scores), core::MiscoverageAlpha{0.1}));
  }
}
BENCHMARK(cqr_calibration_overhead)->Unit(benchmark::kMicrosecond);

// CFS feature selection at production dimensionality.
static void cfs_selection(benchmark::State& state) {
  const auto p = make_problem(117, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(data::cfs_select(p.x, p.y, 10));
  }
}
BENCHMARK(cfs_selection)->Arg(256)->Arg(1024)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
