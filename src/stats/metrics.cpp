#include "stats/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "stats/descriptive.hpp"

namespace vmincqr::stats {

namespace {
void check_pair(const std::vector<double>& a, const std::vector<double>& b,
                const char* who) {
  if (a.size() != b.size()) {
    throw std::invalid_argument(std::string(who) + ": length mismatch");
  }
  if (a.empty()) {
    throw std::invalid_argument(std::string(who) + ": empty input");
  }
}
}  // namespace

double r_squared(const std::vector<double>& truth,
                 const std::vector<double>& pred) {
  check_pair(truth, pred, "r_squared");
  const double m = mean(truth);
  double ss_res = 0.0, ss_tot = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    ss_res += (truth[i] - pred[i]) * (truth[i] - pred[i]);
    ss_tot += (truth[i] - m) * (truth[i] - m);
  }
  // A constant truth vector can leave ss_tot at rounding-noise scale
  // (~1e-30) rather than exactly zero; dividing by it turns R^2 into
  // garbage of either sign. Treat anything at noise scale as degenerate.
  const double tiny =
      1e-12 * static_cast<double>(truth.size()) * (1.0 + m * m);
  if (ss_tot <= tiny) return ss_res <= tiny ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

double rmse(const std::vector<double>& truth, const std::vector<double>& pred) {
  check_pair(truth, pred, "rmse");
  double acc = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    acc += (truth[i] - pred[i]) * (truth[i] - pred[i]);
  }
  return std::sqrt(acc / static_cast<double>(truth.size()));
}

double mae(const std::vector<double>& truth, const std::vector<double>& pred) {
  check_pair(truth, pred, "mae");
  double acc = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    acc += std::abs(truth[i] - pred[i]);
  }
  return acc / static_cast<double>(truth.size());
}

double interval_coverage(const std::vector<double>& truth,
                         const std::vector<double>& lower,
                         const std::vector<double>& upper) {
  check_pair(truth, lower, "interval_coverage");
  check_pair(truth, upper, "interval_coverage");
  std::size_t covered = 0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    if (truth[i] >= lower[i] && truth[i] <= upper[i]) ++covered;
  }
  return static_cast<double>(covered) / static_cast<double>(truth.size());
}

double mean_interval_length(const std::vector<double>& lower,
                            const std::vector<double>& upper) {
  check_pair(lower, upper, "mean_interval_length");
  double acc = 0.0;
  for (std::size_t i = 0; i < lower.size(); ++i) acc += upper[i] - lower[i];
  return acc / static_cast<double>(lower.size());
}

double pinball_loss(const std::vector<double>& truth,
                    const std::vector<double>& pred, double q) {
  check_pair(truth, pred, "pinball_loss");
  if (q < 0.0 || q > 1.0) {
    throw std::invalid_argument("pinball_loss: q outside [0, 1]");
  }
  double acc = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    const double diff = truth[i] - pred[i];
    acc += std::max(q * diff, (q - 1.0) * diff);
  }
  return acc / static_cast<double>(truth.size());
}

}  // namespace vmincqr::stats
