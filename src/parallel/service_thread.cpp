#include "parallel/service_thread.hpp"

#include <utility>

#include "core/contracts.hpp"

namespace vmincqr::parallel {

ServiceThread::~ServiceThread() { join(); }

void ServiceThread::start(std::function<void()> body) {
  VMINCQR_REQUIRE(!started_, "ServiceThread: already started");
  VMINCQR_REQUIRE(body != nullptr, "ServiceThread: null body");
  thread_ = std::thread(std::move(body));
  started_ = true;
}

void ServiceThread::join() {
  if (thread_.joinable()) thread_.join();
}

}  // namespace vmincqr::parallel
