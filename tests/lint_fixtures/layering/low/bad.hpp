// Layer violation: `low` has no edge to `high` in layers.toml, so this
// include must fire layer-violation (and only that — TopThing *is* used, so
// unused-include stays quiet).
#pragma once

#include "high/top.hpp"

inline int bad_value() { return TopThing{}.level; }
