// Region (interval) regressors — paper Sec. II-B.
//
// Two uncalibrated baselines are provided here:
//   * GpIntervalRegressor — Gaussian-process posterior interval, Eq. (4);
//   * QuantilePairRegressor — two pinball-loss models at quantiles alpha/2
//     and 1 - alpha/2, Eq. (5).
// The conformal module wraps these to obtain the finite-sample coverage
// guarantee of Eq. (6).
#pragma once

#include <memory>
#include <utility>

#include "core/units.hpp"
#include "models/gp.hpp"
#include "models/interval.hpp"
#include "models/regressor.hpp"

namespace vmincqr::models {

/// Eq. (4): [mu + K_lo * sigma, mu + K_hi * sigma] with K = Phi^{-1} bounds.
class GpIntervalRegressor final : public IntervalRegressor {
 public:
  explicit GpIntervalRegressor(MiscoverageAlpha alpha, GpConfig config = {});

  void fit(const Matrix& x, const Vector& y) override;
  [[nodiscard]] IntervalPrediction predict_interval(const Matrix& x) const override;
  [[nodiscard]] std::unique_ptr<IntervalRegressor> clone_config() const override;
  [[nodiscard]] std::string name() const override { return "GP"; }
  [[nodiscard]] MiscoverageAlpha alpha() const override { return alpha_; }

  [[nodiscard]] const GaussianProcessRegressor& gp() const { return gp_; }

  /// Copies out the fitted GP state. Throws std::logic_error if not fitted.
  [[nodiscard]] GpParams export_params() const { return gp_.export_params(); }

  /// Adopts previously exported GP state (see
  /// GaussianProcessRegressor::import_params).
  void import_params(GpParams params) { gp_.import_params(std::move(params)); }

 private:
  MiscoverageAlpha alpha_;
  GpConfig config_;
  GaussianProcessRegressor gp_;
};

/// Quantile-regression interval: lower model at q = alpha/2, upper at
/// q = 1 - alpha/2. Bound crossings (possible with independently trained
/// models) are repaired by elementwise swap.
class QuantilePairRegressor final : public IntervalRegressor {
 public:
  /// The prototypes must already be configured with pinball losses at the
  /// matching quantiles; `make_quantile_pair` in factory.hpp does this.
  /// Throws std::invalid_argument on null prototypes.
  QuantilePairRegressor(MiscoverageAlpha alpha, std::unique_ptr<Regressor> lower,
                        std::unique_ptr<Regressor> upper, std::string label);

  void fit(const Matrix& x, const Vector& y) override;
  [[nodiscard]] IntervalPrediction predict_interval(const Matrix& x) const override;
  [[nodiscard]] std::unique_ptr<IntervalRegressor> clone_config() const override;
  [[nodiscard]] std::string name() const override { return label_; }
  [[nodiscard]] MiscoverageAlpha alpha() const override { return alpha_; }

  [[nodiscard]] const Regressor& lower_model() const { return *lower_; }
  [[nodiscard]] const Regressor& upper_model() const { return *upper_; }

 private:
  MiscoverageAlpha alpha_;
  std::unique_ptr<Regressor> lower_;
  std::unique_ptr<Regressor> upper_;
  std::string label_;
};

}  // namespace vmincqr::models
