// Monitor ranking: which of the ~1000 monitor columns (168 ROD + 10 CPD per
// read point) actually carry the Vmin information? Uses the boosting
// models' gain-based feature importance to aggregate credit per feature
// type — quantifying the paper's Sec. IV-G observation that 10 CPD sensors
// out-inform 1800 parametric tests.
#include <algorithm>
#include <cstdio>

#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "data/feature_select.hpp"
#include "models/ordered_boost.hpp"
#include "silicon/dataset_gen.hpp"

using namespace vmincqr;

int main() {
  const auto generated = silicon::generate_dataset(silicon::GeneratorConfig{});
  const data::Dataset& ds = generated.dataset;
  const core::Scenario scenario{504.0, 25.0, core::FeatureSet::kBoth};
  const auto data = core::assemble_scenario(ds, scenario);

  // Fit CatBoost on a generous prefiltered column set so every feature type
  // gets a chance to earn splits.
  const auto cols = data::top_correlated(data.x, data.y, 96);
  models::OrderedBoostedTrees model;
  model.fit(data.x.take_cols(cols), data.y);
  const auto importance = model.feature_importance();

  // Aggregate importance per feature type and count selected sensors.
  double by_type[3] = {0.0, 0.0, 0.0};
  std::size_t counts[3] = {0, 0, 0};
  std::vector<std::pair<double, std::size_t>> ranked;
  for (std::size_t j = 0; j < cols.size(); ++j) {
    const auto& info = ds.feature_info(data.columns[cols[j]]);
    const auto type = static_cast<std::size_t>(info.type);
    by_type[type] += importance[j];
    counts[type] += importance[j] > 0.0;
    ranked.emplace_back(importance[j], cols[j]);
  }
  std::sort(ranked.rbegin(), ranked.rend());

  std::printf("feature-importance breakdown @ %s (CatBoost gain)\n\n",
              core::describe(scenario).c_str());
  core::TextTable table({"Feature type", "raw columns", "importance share",
                         "columns with splits"});
  const char* names[] = {"parametric", "ROD monitor", "CPD monitor"};
  const std::size_t raw_counts[] = {1800, 168 * 6, 10 * 6};
  for (std::size_t t = 0; t < 3; ++t) {
    table.add_row({names[t], std::to_string(raw_counts[t]),
                   core::format_double(by_type[t] * 100.0, 1) + "%",
                   std::to_string(counts[t])});
  }
  std::printf("%s\n", table.to_string().c_str());

  std::printf("top 10 individual features:\n");
  for (std::size_t k = 0; k < 10 && k < ranked.size(); ++k) {
    const auto& info = ds.feature_info(data.columns[ranked[k].second]);
    std::printf("  %5.1f%%  %-18s (%s, t=%.0fh)\n",
                ranked[k].first * 100.0, info.name.c_str(),
                data::to_string(info.type).c_str(), info.read_point_hours);
  }
  std::printf(
      "\nAll of the model's split gain lands on the on-chip monitors, with\n"
      "the 10 in-situ CPD sensors taking a share ~10x their column count —\n"
      "the paper's Sec. IV-G conclusion, quantified per sensor.\n");
  return 0;
}
