// Parallel-substrate benchmark: GBT fit and serve-batch throughput at one
// thread vs the full pool, emitted as machine-readable BENCH_parallel.json.
// The speedup fields back the ISSUE-5 acceptance targets (>= 3x GBT fit,
// >= 4x serve batch on an 8-core CI host); on a smaller host the JSON still
// records what this machine measured together with the thread counts used,
// so numbers stay comparable across runs of the same box.
//
// Usage: perf_parallel [--stress] [output.json]
//   default output: BENCH_parallel.json (BENCH_stress.json with --stress)
//
// --stress swaps the 4096-row serve batch for a 1000000-row one — the
// fleet-screening scale the hot-path analyzer profiles for — and skips the
// GBT fit (train-side, unchanged by batch size). Its JSON is uploaded as a
// separate artifact so the large-N throughput trend is trackable without
// touching the committed small-batch baselines.
//
// Besides wall-clock the JSON carries the STATISTICAL outputs of the benched
// predictor (empirical coverage and mean interval width on the synthetic
// batch): bench_compare gates these alongside the timings, so a perf
// "optimization" that quietly shifts the intervals fails the comparison
// instead of landing.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "artifact/bundle.hpp"
#include "conformal/cqr.hpp"
#include "linalg/kernels.hpp"
#include "models/factory.hpp"
#include "parallel/thread_pool.hpp"
#include "rng/rng.hpp"
#include "serve/vmin_predictor.hpp"
#include "stats/metrics.hpp"

using namespace vmincqr;

namespace {

// Larger than the paper's 156-chip population on purpose: the substrate is
// benched at a scale where every use_pool gate is open (tree split search,
// GBT row loops, serve row-sharding), so the speedup reflects the pool, not
// gate-closed inline paths.
constexpr std::size_t kTrainRows = 2000;
constexpr std::size_t kFeatures = 13;
constexpr std::size_t kBatchRows = 4096;
constexpr std::size_t kStressBatchRows = 1000000;

struct Problem {
  linalg::Matrix x;
  linalg::Vector y;
};

Problem make_problem(std::size_t n, std::size_t d) {
  rng::Rng rng(7);
  Problem p{linalg::Matrix(n, d), linalg::Vector(n)};
  for (std::size_t i = 0; i < n; ++i) {
    double signal = 0.0;
    for (std::size_t c = 0; c < d; ++c) {
      p.x(i, c) = rng.normal();
      signal += (c % 3 == 0 ? 0.3 : 0.05) * p.x(i, c);
    }
    p.y[i] = 0.55 + 0.01 * signal + rng.normal(0.0, 0.003);
  }
  return p;
}

/// Median wall-clock seconds over `reps` runs of `fn` (one warmup first).
double median_seconds(int reps, const std::function<void()>& fn) {
  fn();  // warmup: first run pays allocator/cache/pool-spawn setup
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    const auto stop = std::chrono::steady_clock::now();
    samples.push_back(std::chrono::duration<double>(stop - start).count());
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

/// Times `fn` at 1 thread and at `wide` threads; restores env resolution.
struct WidthTiming {
  double seq_s = 0.0;
  double par_s = 0.0;
  [[nodiscard]] double speedup() const {
    return par_s > 0.0 ? seq_s / par_s : 0.0;
  }
};

WidthTiming bench_at_widths(std::size_t wide, int reps,
                            const std::function<void()>& fn) {
  WidthTiming t;
  parallel::set_max_threads(1);
  t.seq_s = median_seconds(reps, fn);
  parallel::set_max_threads(wide);
  t.par_s = median_seconds(reps, fn);
  parallel::set_max_threads(0);
  return t;
}

std::string json_number(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.6g", value);
  return buffer;
}

}  // namespace

int main(int argc, char** argv) {
  bool stress = false;
  std::string out_path;
  for (int a = 1; a < argc; ++a) {
    if (std::string(argv[a]) == "--stress") {
      stress = true;
    } else {
      out_path = argv[a];
    }
  }
  if (out_path.empty()) {
    out_path = stress ? "BENCH_stress.json" : "BENCH_parallel.json";
  }
  const std::size_t batch_rows = stress ? kStressBatchRows : kBatchRows;
  const std::size_t wide = parallel::max_threads();
  const Problem train = make_problem(kTrainRows, kFeatures);
  const Problem batch = make_problem(batch_rows, kFeatures);

  // --- GBT fit: the split search + row loops are the pool's hottest user.
  // Benched on both kernel tiers: bit_exact keeps the exact sort-scan split
  // search, fast routes through the histogram-binned search. Skipped under
  // --stress: fit cost does not depend on the serve batch.
  WidthTiming gbt_fit;
  WidthTiming gbt_fit_fast;
  if (!stress) {
    const auto fit_once = [&] {
      auto model = models::make_point_regressor(models::ModelKind::kXgboost);
      model->fit(train.x, train.y);
    };
    gbt_fit = bench_at_widths(wide, 3, fit_once);
    std::printf(
        "gbt fit        1 thread %8.3f ms   %zu threads %8.3f ms   %.2fx\n",
        1e3 * gbt_fit.seq_s, wide, 1e3 * gbt_fit.par_s, gbt_fit.speedup());
    {
      const linalg::KernelPolicyGuard policy(linalg::KernelPolicy::kFast);
      gbt_fit_fast = bench_at_widths(wide, 3, fit_once);
    }
    std::printf(
        "gbt fit (fast) 1 thread %8.3f ms   %zu threads %8.3f ms   %.2fx  "
        "(%.2fx vs exact)\n",
        1e3 * gbt_fit_fast.seq_s, wide, 1e3 * gbt_fit_fast.par_s,
        gbt_fit_fast.speedup(),
        gbt_fit_fast.par_s > 0.0 ? gbt_fit.par_s / gbt_fit_fast.par_s : 0.0);
  }

  // --- serve batch: row-sharded predict_interval over a CQR-GBT bundle.
  const core::MiscoverageAlpha alpha{0.1};
  auto cqr = std::make_unique<conformal::ConformalizedQuantileRegressor>(
      alpha, models::make_quantile_pair(models::ModelKind::kXgboost, alpha));
  cqr->fit(train.x, train.y);
  artifact::VminBundle bundle;
  bundle.label = cqr->name();
  for (std::size_t c = 0; c < kFeatures; ++c) {
    bundle.dataset_columns.push_back(c);
    bundle.selected_features.push_back(c);
  }
  bundle.predictor = std::move(cqr);
  const auto predictor =
      serve::VminPredictor::from_bytes(artifact::encode_bundle(bundle));

  const WidthTiming serve_batch = bench_at_widths(wide, stress ? 5 : 10, [&] {
    volatile double sink = predictor.predict_batch(batch.x)[0].lower;
    (void)sink;
  });
  const double rows_per_s =
      static_cast<double>(batch_rows) / serve_batch.par_s;
  std::printf("serve batch    1 thread %8.3f ms   %zu threads %8.3f ms   %.2fx  (%.3g rows/s)\n",
              1e3 * serve_batch.seq_s, wide, 1e3 * serve_batch.par_s,
              serve_batch.speedup(), rows_per_s);

  // --- statistical outputs of the benched predictor (gated by
  // bench_compare next to the timings: a throughput win that moves the
  // intervals is a regression, not an optimization).
  const auto intervals = predictor.predict_batch(batch.x);
  linalg::Vector lower(batch_rows);
  linalg::Vector upper(batch_rows);
  for (std::size_t i = 0; i < batch_rows; ++i) {
    lower[i] = intervals[i].lower;
    upper[i] = intervals[i].upper;
  }
  const double coverage = stats::interval_coverage(batch.y, lower, upper);
  const double mean_width = stats::mean_interval_length(lower, upper);
  std::printf("stats          coverage %.4f   mean width %.6f V\n", coverage,
              mean_width);

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fputs("{\n", out);
  std::fprintf(out, "  \"threads\": %zu,\n", wide);
  std::fprintf(out, "  \"train_rows\": %zu,\n", kTrainRows);
  std::fprintf(out, "  \"batch_rows\": %zu,\n", batch_rows);
  if (!stress) {
    std::fprintf(out, "  \"gbt_fit\": {\n");
    std::fprintf(out, "    \"seq_ms\": %s,\n",
                 json_number(1e3 * gbt_fit.seq_s).c_str());
    std::fprintf(out, "    \"par_ms\": %s,\n",
                 json_number(1e3 * gbt_fit.par_s).c_str());
    std::fprintf(out, "    \"speedup\": %s\n",
                 json_number(gbt_fit.speedup()).c_str());
    std::fprintf(out, "  },\n");
    std::fprintf(out, "  \"gbt_fit_fast\": {\n");
    std::fprintf(out, "    \"seq_ms\": %s,\n",
                 json_number(1e3 * gbt_fit_fast.seq_s).c_str());
    std::fprintf(out, "    \"par_ms\": %s,\n",
                 json_number(1e3 * gbt_fit_fast.par_s).c_str());
    std::fprintf(out, "    \"speedup\": %s,\n",
                 json_number(gbt_fit_fast.speedup()).c_str());
    std::fprintf(out, "    \"vs_exact\": %s\n",
                 json_number(gbt_fit_fast.par_s > 0.0
                                 ? gbt_fit.par_s / gbt_fit_fast.par_s
                                 : 0.0)
                     .c_str());
    std::fprintf(out, "  },\n");
  }
  std::fprintf(out, "  \"serve_batch\": {\n");
  std::fprintf(out, "    \"seq_ms\": %s,\n",
               json_number(1e3 * serve_batch.seq_s).c_str());
  std::fprintf(out, "    \"par_ms\": %s,\n",
               json_number(1e3 * serve_batch.par_s).c_str());
  std::fprintf(out, "    \"speedup\": %s,\n",
               json_number(serve_batch.speedup()).c_str());
  std::fprintf(out, "    \"rows_per_s\": %s\n",
               json_number(rows_per_s).c_str());
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"stats\": {\n");
  std::fprintf(out, "    \"coverage\": %s,\n", json_number(coverage).c_str());
  std::fprintf(out, "    \"mean_width_v\": %s\n",
               json_number(mean_width).c_str());
  std::fprintf(out, "  }\n");
  std::fputs("}\n", out);
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
