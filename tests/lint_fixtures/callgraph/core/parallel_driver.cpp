// The parallel launch site: nothing here is wrong lexically, but every
// function the body calls inherits the determinism contract transitively.

void run_chunks(std::size_t n, std::vector<double>& out) {
  parallel::parallel_for(n, 64, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      out[i] = bump_counter(draw_noise(static_cast<double>(i)));
    }
  });
}
