// CLI driver for vmincqr_lint.
//
// Usage:
//   vmincqr_lint <file-or-dir>...   lint files / recurse directories
//   vmincqr_lint --rules            print the rule table and exit
//
// Exit status: 0 when clean, 1 on any diagnostic, 2 on usage/IO errors.
#include <algorithm>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <string>
#include <vector>

#include "lint.hpp"

namespace fs = std::filesystem;

namespace {

void collect(const fs::path& root, std::vector<std::string>& files) {
  if (fs::is_directory(root)) {
    for (const auto& entry : fs::recursive_directory_iterator(root)) {
      if (entry.is_regular_file() &&
          vmincqr::lint::is_lintable(entry.path().string())) {
        files.push_back(entry.path().string());
      }
    }
  } else {
    files.push_back(root.string());
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: vmincqr_lint [--rules] <file-or-dir>...\n");
    return 2;
  }
  if (std::string(argv[1]) == "--rules") {
    for (const auto& rule : vmincqr::lint::rule_table()) {
      std::printf("%-24s %s\n", rule.id, rule.rationale);
    }
    return 0;
  }

  std::vector<std::string> files;
  try {
    for (int i = 1; i < argc; ++i) collect(argv[i], files);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "vmincqr_lint: %s\n", e.what());
    return 2;
  }
  std::sort(files.begin(), files.end());

  std::size_t findings = 0;
  for (const auto& file : files) {
    try {
      for (const auto& d : vmincqr::lint::lint_file(file)) {
        std::printf("%s\n", vmincqr::lint::format(d).c_str());
        ++findings;
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "vmincqr_lint: %s\n", e.what());
      return 2;
    }
  }
  if (findings > 0) {
    std::fprintf(stderr, "vmincqr_lint: %zu finding(s) in %zu file(s)\n",
                 findings, files.size());
    return 1;
  }
  std::printf("vmincqr_lint: %zu file(s) clean\n", files.size());
  return 0;
}
