file(REMOVE_RECURSE
  "CMakeFiles/models_point_test.dir/models_point_test.cpp.o"
  "CMakeFiles/models_point_test.dir/models_point_test.cpp.o.d"
  "models_point_test"
  "models_point_test.pdb"
  "models_point_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/models_point_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
