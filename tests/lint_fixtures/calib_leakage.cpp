// Golden fixture for calib-leakage: the calibration half of the split is
// rebound to a local and then fed to fit(), which must fire exactly once.
// (Fixtures are lint input only; they are never compiled.)
void leaky_train(Model& model, const Split& split) {
  Matrix x_train = split.train_features;
  Matrix x_cal = split.x_calib;
  model.fit(x_cal, split.train_labels);
}
