#include "parallel/parallel_for.hpp"

#include <cstddef>
#include <functional>

#include "core/contracts.hpp"
#include "parallel/thread_pool.hpp"

namespace vmincqr::parallel {

std::size_t resolve_grain(std::size_t n_items, std::size_t grain) {
  static_assert(kAutoMaxChunks > 0, "auto-grain needs a positive target");
  if (grain != 0) return grain;
  if (n_items == 0) return 1;
  return (n_items + kAutoMaxChunks - 1) / kAutoMaxChunks;
}

std::size_t chunk_count(std::size_t n_items, std::size_t grain) {
  if (n_items == 0) return 0;
  const std::size_t g = resolve_grain(n_items, grain);
  VMINCQR_AUDIT(g > 0, "chunk_count: resolve_grain returned zero");
  return (n_items + g - 1) / g;
}

ChunkRange chunk_range(std::size_t n_items, std::size_t grain,
                       std::size_t chunk) {
  const std::size_t g = resolve_grain(n_items, grain);
  VMINCQR_REQUIRE(chunk < chunk_count(n_items, grain),
                  "chunk index out of range");
  const std::size_t begin = chunk * g;
  const std::size_t end = begin + g < n_items ? begin + g : n_items;
  return {begin, end};
}

void for_each_chunk(
    std::size_t n_items, std::size_t grain,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn,
    bool use_pool) {
  if (n_items == 0) return;
  const std::size_t chunks = chunk_count(n_items, grain);
  if (!use_pool) {
    for (std::size_t c = 0; c < chunks; ++c) {
      const ChunkRange r = chunk_range(n_items, grain, c);
      fn(c, r.begin, r.end);
    }
    return;
  }
  ThreadPool::instance().run(chunks, [&](std::size_t c) {
    const ChunkRange r = chunk_range(n_items, grain, c);
    fn(c, r.begin, r.end);
  });
}

}  // namespace vmincqr::parallel
