// Golden fixture: shared-mutable-capture — a by-reference capture written
// inside a parallel body without per-chunk indexing. Every chunk writes the
// same memory; whichever thread runs last wins.

struct FitState {
  bool converged;
};

void mark_converged(FitState& state, std::size_t n) {
  parallel::parallel_for(n, 512, [&state](std::size_t b, std::size_t e) {
    if (b == e) return;
    state.converged = true;
  });
}
