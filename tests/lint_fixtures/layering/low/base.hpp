// Bottom-layer header: declares names the rest of the fixture tree uses.
#pragma once

struct BaseThing {
  int value;
};

inline int base_value() { return 1; }
