# Empty compiler generated dependencies file for table4_monitor_gain.
# This may be replaced when dependencies are built.
