# Empty compiler generated dependencies file for ablation_conformal.
# This may be replaced when dependencies are built.
