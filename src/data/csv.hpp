// Minimal CSV I/O for exporting generated datasets and experiment tables,
// and re-importing matrices (round-trip tested).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "data/dataset.hpp"
#include "linalg/matrix.hpp"

namespace vmincqr::data {

/// Writes a matrix with an optional header row. Column count must match the
/// header length when a header is given.
void write_csv(std::ostream& os, const Matrix& m,
               const std::vector<std::string>& header = {});

/// Parses a CSV of doubles. If has_header is true the first line is placed
/// in *header (when non-null) and skipped. Throws std::runtime_error on
/// ragged rows or unparsable fields.
Matrix read_csv(std::istream& is, bool has_header = false,
                std::vector<std::string>* header = nullptr);

/// Writes the dataset's feature table (with a feature-name header) plus each
/// label series as extra columns named "vmin_t<hours>_T<temp>".
void write_dataset_csv(std::ostream& os, const Dataset& ds);

}  // namespace vmincqr::data
