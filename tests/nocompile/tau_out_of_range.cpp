// Negative-compile check: QuantileLevel{1.2} in a constant expression must
// fail to compile (the validating constructor throws during constant
// evaluation, which is ill-formed).
#include "core/units.hpp"

namespace nc = vmincqr::core;

#ifdef VMINCQR_NOCOMPILE
constexpr nc::QuantileLevel kTau{1.2};
#else
constexpr nc::QuantileLevel kTau{0.05};
#endif

double probe() { return kTau.value(); }
