#include "conformal/split_cp.hpp"

#include <cmath>
#include <stdexcept>

#include "core/contracts.hpp"

#include "conformal/scores.hpp"
#include "data/split.hpp"
#include "stats/quantile.hpp"

namespace vmincqr::conformal {

SplitConformalRegressor::SplitConformalRegressor(
    MiscoverageAlpha alpha, std::unique_ptr<Regressor> model,
    SplitConfig config)
    : alpha_(alpha), model_(std::move(model)), config_(config) {
  if (!model_) {
    throw std::invalid_argument("SplitConformalRegressor: null model");
  }
  if (!config_.split.valid()) {
    throw std::invalid_argument(
        "SplitConformalRegressor: train_fraction outside (0, 1)");
  }
}

void SplitConformalRegressor::fit(const Matrix& x, const Vector& y) {
  VMINCQR_REQUIRE(x.rows() >= 3,
                  "SplitConformalRegressor::fit: need at least 3 samples");
  VMINCQR_CHECK_SHAPE(x.rows() == y.size(),
                      "SplitConformalRegressor::fit: shape mismatch");
  VMINCQR_CHECK_FINITE(y, "fit: label vector y");
  std::vector<std::size_t> indices(x.rows());
  for (std::size_t i = 0; i < indices.size(); ++i) indices[i] = i;
  rng::Rng rng(config_.split.seed);
  const auto split = data::train_calibration_split(
      indices, config_.split.train_fraction, rng);

  Vector y_train(split.train.size()), y_calib(split.calibration.size());
  for (std::size_t i = 0; i < split.train.size(); ++i) {
    y_train[i] = y[split.train[i]];
  }
  for (std::size_t i = 0; i < split.calibration.size(); ++i) {
    y_calib[i] = y[split.calibration[i]];
  }
  fit_with_split(x.take_rows(split.train), y_train,
                 x.take_rows(split.calibration), y_calib);
}

void SplitConformalRegressor::fit_with_split(const Matrix& x_train,
                                             const Vector& y_train,
                                             const Matrix& x_calib,
                                             const Vector& y_calib) {
  VMINCQR_REQUIRE(x_calib.rows() > 0,
                  "SplitConformalRegressor: empty calibration set");
  VMINCQR_CHECK_SHAPE(x_calib.rows() == y_calib.size(),
                      "SplitConformalRegressor: calibration shape mismatch");
  VMINCQR_CHECK_FINITE(y_calib, "calibrate: calibration labels");
  model_->fit(x_train, y_train);
  const Vector y_hat = model_->predict(x_calib);
  const auto scores = absolute_residual_scores(y_calib, y_hat);
  q_hat_ = stats::conformal_quantile(scores, alpha_);
  // +Inf is a legitimate conservative result (calibration set too small for
  // the requested alpha -> infinite band); only NaN indicates a defect.
  VMINCQR_ENSURE(!std::isnan(q_hat_), "calibrate: NaN q_hat");
  calibrated_ = true;
}

IntervalPrediction SplitConformalRegressor::predict_interval(
    const Matrix& x) const {
  if (!calibrated_) {
    throw std::logic_error("SplitConformalRegressor: not calibrated");
  }
  const Vector centre = model_->predict(x);
  IntervalPrediction out;
  out.lower.resize(centre.size());
  out.upper.resize(centre.size());
  for (std::size_t i = 0; i < centre.size(); ++i) {
    out.lower[i] = centre[i] - q_hat_;
    out.upper[i] = centre[i] + q_hat_;
  }
  return out;
}

Vector SplitConformalRegressor::predict_point(const Matrix& x) const {
  if (!calibrated_) {
    throw std::logic_error("SplitConformalRegressor: not calibrated");
  }
  return model_->predict(x);
}

std::unique_ptr<IntervalRegressor> SplitConformalRegressor::clone_config()
    const {
  return std::make_unique<SplitConformalRegressor>(
      alpha_, model_->clone_config(), config_);
}

double SplitConformalRegressor::q_hat() const {
  if (!calibrated_) {
    throw std::logic_error("SplitConformalRegressor: not calibrated");
  }
  return q_hat_;
}

SplitCalibration SplitConformalRegressor::export_calibration() const {
  if (!calibrated_) {
    throw std::logic_error("SplitConformalRegressor: not calibrated");
  }
  return {q_hat_};
}

void SplitConformalRegressor::import_calibration(SplitCalibration calibration) {
  if (std::isnan(calibration.q_hat)) {
    throw std::invalid_argument(
        "SplitConformalRegressor::import_calibration: NaN q_hat");
  }
  q_hat_ = calibration.q_hat;
  calibrated_ = true;
}

}  // namespace vmincqr::conformal
