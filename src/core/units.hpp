// Strong unit and level types — compile-time insurance for the raw doubles
// the CQR guarantee depends on.
//
// A swapped tau/alpha, a Vmin passed in volts where millivolts were
// expected, or an out-of-range quantile level silently corrupts coverage
// without failing any test. These wrappers make such mistakes type errors:
//   * construction from double is `explicit`, so a bare literal cannot bind
//     to a Millivolt/QuantileLevel/... parameter;
//   * there is no conversion between distinct strong types (Volt does not
//     convert to Millivolt, QuantileLevel does not convert to
//     MiscoverageAlpha) — cross-unit calls fail to compile;
//   * conversion *to* double is implicit, so values flow into arithmetic and
//     the raw numeric kernels without friction.
// Constructors are constexpr and validate by throwing: in a constant
// evaluation (e.g. `constexpr QuantileLevel{1.2}`) the throw is a compile
// error; at runtime it is std::invalid_argument, matching the contract
// layer's exception hierarchy (contracts.hpp).
//
// Zero overhead: every type is a single double (or size_t) with constexpr
// inline accessors; no virtual functions, no allocation.
//
// This header is dependency-free below <limits>/<stdexcept> on purpose: it
// is included from stats and models, near the bottom of the library.
#pragma once

#include <compare>
#include <cstddef>
#include <limits>
#include <stdexcept>

namespace vmincqr::core {

namespace unit_detail {

/// NaN-safe finiteness test usable in constant expressions.
constexpr bool value_is_finite(double v) {
  // vmincqr-lint: allow(float-equality) — canonical constexpr NaN probe.
  return v == v && v <= std::numeric_limits<double>::max() &&
         v >= std::numeric_limits<double>::lowest();
}

/// True iff v is a *normal* double strictly inside (0, 1): rejects 0, 1,
/// NaN, infinities, and denormals (a denormal tau makes ceil((M+1)(1-tau))
/// numerically meaningless long before it is statistically meaningful).
constexpr bool is_open_unit_interval_normal(double v) {
  return v >= std::numeric_limits<double>::min() && v < 1.0;
}

}  // namespace unit_detail

// ---------------------------------------------------------------------------
// Probability levels.

/// A quantile level tau in the open interval (0, 1), e.g. the pinball-loss
/// target of paper Eq. (5). Construction validates; invalid levels throw
/// std::invalid_argument (a compile error in constexpr contexts).
class QuantileLevel {
 public:
  // The constructor is the sanctioned raw-double boundary for this type.
  // vmincqr-lint: allow(raw-double-param)
  explicit constexpr QuantileLevel(double tau) : tau_(validated(tau)) {}

  [[nodiscard]] constexpr double value() const noexcept { return tau_; }
  [[nodiscard]] constexpr operator double() const noexcept { return tau_; }

  /// The mirrored level 1 - tau (upper <-> lower pinball target).
  [[nodiscard]] constexpr QuantileLevel complement() const { return QuantileLevel{1.0 - tau_}; }

  friend constexpr auto operator<=>(QuantileLevel, QuantileLevel) = default;

 private:
  // vmincqr-lint: allow(raw-double-param)
  static constexpr double validated(double tau) {
    if (!unit_detail::is_open_unit_interval_normal(tau)) {
      throw std::invalid_argument(
          "QuantileLevel: tau must be a normal double in (0, 1)");
    }
    return tau;
  }
  double tau_;
};

/// The target miscoverage rate alpha in (0, 1): the interval aims at
/// 1 - alpha coverage (paper Eq. (6)). Distinct from QuantileLevel so a
/// swapped tau/alpha is a compile error, not a silent coverage bug.
class MiscoverageAlpha {
 public:
  // The constructor is the sanctioned raw-double boundary for this type.
  // vmincqr-lint: allow(raw-double-param)
  explicit constexpr MiscoverageAlpha(double alpha) : alpha_(validated(alpha)) {}

  [[nodiscard]] constexpr double value() const noexcept { return alpha_; }
  [[nodiscard]] constexpr operator double() const noexcept { return alpha_; }

  /// Nominal coverage 1 - alpha.
  [[nodiscard]] constexpr double coverage() const noexcept { return 1.0 - alpha_; }
  /// Lower pinball target alpha/2 (paper Sec. II-B.2).
  [[nodiscard]] constexpr QuantileLevel lower_tau() const { return QuantileLevel{alpha_ / 2.0}; }
  /// Upper pinball target 1 - alpha/2.
  [[nodiscard]] constexpr QuantileLevel upper_tau() const {
    return QuantileLevel{1.0 - alpha_ / 2.0};
  }
  /// Per-tail miscoverage alpha/2 (asymmetric CQR calibrates each tail at
  /// this level).
  [[nodiscard]] constexpr MiscoverageAlpha halved() const {
    return MiscoverageAlpha{alpha_ / 2.0};
  }

  friend constexpr auto operator<=>(MiscoverageAlpha, MiscoverageAlpha) = default;

 private:
  // vmincqr-lint: allow(raw-double-param)
  static constexpr double validated(double alpha) {
    if (!unit_detail::is_open_unit_interval_normal(alpha)) {
      throw std::invalid_argument(
          "MiscoverageAlpha: alpha must be a normal double in (0, 1)");
    }
    return alpha;
  }
  double alpha_;
};

// ---------------------------------------------------------------------------
// Physical quantities.

class Volt;

/// A voltage in millivolts (the paper reports interval widths in mV).
/// Finite-validated; use to_volts() to cross into the volt domain — there is
/// deliberately no implicit Volt <-> Millivolt conversion.
class Millivolt {
 public:
  explicit constexpr Millivolt(double mv) : mv_(validated(mv)) {}

  [[nodiscard]] constexpr double value() const noexcept { return mv_; }
  [[nodiscard]] constexpr operator double() const noexcept { return mv_; }

  [[nodiscard]] constexpr Volt to_volts() const;

  friend constexpr auto operator<=>(Millivolt, Millivolt) = default;

 private:
  static constexpr double validated(double mv) {
    if (!unit_detail::value_is_finite(mv)) {
      throw std::invalid_argument("Millivolt: value must be finite");
    }
    return mv;
  }
  double mv_;
};

/// A voltage in volts (the unit of every Vmin label and supply rail in this
/// codebase). Finite-validated.
class Volt {
 public:
  explicit constexpr Volt(double v) : v_(validated(v)) {}

  [[nodiscard]] constexpr double value() const noexcept { return v_; }
  [[nodiscard]] constexpr operator double() const noexcept { return v_; }

  [[nodiscard]] constexpr Millivolt to_millivolts() const { return Millivolt{v_ * 1e3}; }

  friend constexpr auto operator<=>(Volt, Volt) = default;

 private:
  static constexpr double validated(double v) {
    if (!unit_detail::value_is_finite(v)) {
      throw std::invalid_argument("Volt: value must be finite");
    }
    return v;
  }
  double v_;
};

constexpr Volt Millivolt::to_volts() const { return Volt{mv_ * 1e-3}; }

/// A test/measurement temperature in degrees Celsius. Finite and no colder
/// than absolute zero.
class Celsius {
 public:
  explicit constexpr Celsius(double deg_c) : c_(validated(deg_c)) {}

  [[nodiscard]] constexpr double value() const noexcept { return c_; }
  [[nodiscard]] constexpr operator double() const noexcept { return c_; }

  friend constexpr auto operator<=>(Celsius, Celsius) = default;

 private:
  static constexpr double validated(double deg_c) {
    if (!unit_detail::value_is_finite(deg_c) || deg_c < -273.15) {
      throw std::invalid_argument(
          "Celsius: temperature must be finite and >= -273.15");
    }
    return deg_c;
  }
  double c_;
};

/// A stress/aging duration in hours. Finite and non-negative.
class Hours {
 public:
  explicit constexpr Hours(double h) : h_(validated(h)) {}

  [[nodiscard]] constexpr double value() const noexcept { return h_; }
  [[nodiscard]] constexpr operator double() const noexcept { return h_; }

  friend constexpr auto operator<=>(Hours, Hours) = default;

 private:
  static constexpr double validated(double h) {
    if (!unit_detail::value_is_finite(h) || h < 0.0) {
      throw std::invalid_argument("Hours: duration must be finite and >= 0");
    }
    return h;
  }
  double h_;
};

// ---------------------------------------------------------------------------
// Index tags.
//
// Opaque indices: unlike the quantities above these do NOT convert
// implicitly (to size_t or each other), so a chip index can never be used
// where a read-point index is expected. Use value() at the container
// boundary.

/// Index of a chip (row) in the generated population.
class ChipId {
 public:
  explicit constexpr ChipId(std::size_t id) : id_(id) {}
  [[nodiscard]] constexpr std::size_t value() const noexcept { return id_; }
  friend constexpr auto operator<=>(ChipId, ChipId) = default;

 private:
  std::size_t id_;
};

/// Index into the stress read-point schedule ({0, 24, 48, ...} hours).
class ReadPointIdx {
 public:
  explicit constexpr ReadPointIdx(std::size_t idx) : idx_(idx) {}
  [[nodiscard]] constexpr std::size_t value() const noexcept { return idx_; }
  friend constexpr auto operator<=>(ReadPointIdx, ReadPointIdx) = default;

 private:
  std::size_t idx_;
};

}  // namespace vmincqr::core
