// Unused include: base.hpp provides BaseThing/base_value and this TU uses
// neither, so IWYU-lite must flag the include as dead weight.
#include "low/base.hpp"

int unrelated_work() { return 2; }
