// Golden fixture for seed-reuse: the same literal seed constructs two RNGs
// inside one function scope, so the second construction must fire.
void correlated_streams() {
  Rng stream_a(42);
  Rng stream_b(42);
  consume(stream_a, stream_b);
}
