// Helpers reached from the parallel body in parallel_driver.cpp; each
// violates exactly one transitive parallel-context rule.

double bump_counter(double x) {
  static double total = 0.0;  // mutable-static-in-parallel (transitively)
  total += x;
  return total;
}

double draw_noise(double x) {
  Rng r(42);  // rng-in-parallel: hardcoded seed, reached from a parallel body
  return x + r.next();
}
