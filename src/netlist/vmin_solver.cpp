#include "netlist/vmin_solver.hpp"

#include <stdexcept>

namespace vmincqr::netlist {

VminSolution solve_vmin(const Netlist& netlist, const DelayModelConfig& config,
                        double clock_period_ns, double temp_c,
                        const GateVthShift& vth_shift,
                        const VminSolverConfig& solver) {
  if (clock_period_ns <= 0.0) {
    throw std::invalid_argument("solve_vmin: clock period must be positive");
  }
  if (!(solver.v_low < solver.v_high)) {
    throw std::invalid_argument("solve_vmin: inverted voltage bracket");
  }

  VminSolution solution;
  const auto meets_timing = [&](double vdd) {
    ++solution.sta_evaluations;
    const TimingResult timing =
        run_sta(netlist, config, vdd, temp_c, vth_shift);
    return timing.functional && timing.worst_arrival_ns <= clock_period_ns;
  };

  if (!meets_timing(solver.v_high)) {
    solution.feasible = false;
    solution.vmin = solver.v_high;
    return solution;
  }
  solution.feasible = true;

  if (meets_timing(solver.v_low)) {
    solution.vmin = solver.v_low;
    return solution;
  }

  // Invariant: fails at lo, passes at hi.
  double lo = solver.v_low;
  double hi = solver.v_high;
  for (int it = 0; it < solver.max_iterations && hi - lo > solver.tolerance_v;
       ++it) {
    const double mid = 0.5 * (lo + hi);
    if (meets_timing(mid)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  solution.vmin = hi;
  return solution;
}

}  // namespace vmincqr::netlist
