file(REMOVE_RECURSE
  "CMakeFiles/conformal_extensions_test.dir/conformal_extensions_test.cpp.o"
  "CMakeFiles/conformal_extensions_test.dir/conformal_extensions_test.cpp.o.d"
  "conformal_extensions_test"
  "conformal_extensions_test.pdb"
  "conformal_extensions_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conformal_extensions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
