// Split-conformal predictive distribution (Vovk's conformal predictive
// system, split variant) — an extension beyond the paper that upgrades the
// interval to a full calibrated CDF.
//
// For a fitted point model mu and calibration residuals r_1..r_M, the
// predictive CDF at a query x is
//   Q(y | x) = rank of (y - mu(x)) among the residuals / (M + 1),
// which is a valid p-value system: for a fresh exchangeable sample,
// P(Y <= q_beta(x)) is within 1/(M+1) of beta.
//
// The Vmin use case: exceedance_probability(x, min_spec) is a calibrated
// estimate of P(Vmin > min_spec) — a per-chip shipping-risk number, rather
// than a binary pass/fail.
#pragma once

#include <memory>

#include "core/split_spec.hpp"
#include "core/units.hpp"
#include "models/regressor.hpp"

namespace vmincqr::conformal {

using models::Matrix;
using models::Regressor;
using models::Vector;

struct PredictiveConfig {
  core::CalibrationSplit split;
};

class ConformalPredictiveDistribution {
 public:
  /// Takes ownership of an unfitted point-model prototype.
  /// Throws std::invalid_argument on a null model.
  explicit ConformalPredictiveDistribution(std::unique_ptr<Regressor> model,
                                           PredictiveConfig config = {});

  /// Splits internally, fits the model, stores sorted calibration residuals.
  /// Throws std::invalid_argument on fewer than 3 samples.
  void fit(const Matrix& x, const Vector& y);

  /// Explicit-split variant.
  void fit_with_split(const Matrix& x_train, const Vector& y_train,
                      const Matrix& x_calib, const Vector& y_calib);

  /// Calibrated CDF value Q(y | x) in [1/(M+1), M/(M+1)] (never exactly 0
  /// or 1 — finite-sample honesty). x_row is one feature row.
  /// Throws std::logic_error if not fitted.
  [[nodiscard]] double cdf(const Vector& x_row, double y) const;

  /// Calibrated quantile: smallest value v with cdf(x, v) >= beta;
  /// core::QuantileLevel construction guarantees beta in (0, 1).
  [[nodiscard]] double quantile(const Vector& x_row, core::QuantileLevel beta) const;

  /// P(Y > threshold | x), calibrated: 1 - cdf(x, threshold). The threshold
  /// is a spec limit in volts (the unit of every Vmin label).
  double exceedance_probability(const Vector& x_row,
                                core::Volt threshold) const;

  /// Vectorized exceedance over the rows of x.
  [[nodiscard]] Vector exceedance_probabilities(const Matrix& x, core::Volt threshold) const;

  [[nodiscard]] std::size_t calibration_size() const noexcept { return residuals_.size(); }

 private:
  [[nodiscard]] double predict_one(const Vector& x_row) const;

  std::unique_ptr<Regressor> model_;
  PredictiveConfig config_;
  Vector residuals_;  ///< sorted signed calibration residuals y - mu(x)
  bool calibrated_ = false;
};

}  // namespace vmincqr::conformal
