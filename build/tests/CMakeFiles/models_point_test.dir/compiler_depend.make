# Empty compiler generated dependencies file for models_point_test.
# This may be replaced when dependencies are built.
