
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/conformal/cqr.cpp" "src/CMakeFiles/vmincqr.dir/conformal/cqr.cpp.o" "gcc" "src/CMakeFiles/vmincqr.dir/conformal/cqr.cpp.o.d"
  "/root/repo/src/conformal/cv_plus.cpp" "src/CMakeFiles/vmincqr.dir/conformal/cv_plus.cpp.o" "gcc" "src/CMakeFiles/vmincqr.dir/conformal/cv_plus.cpp.o.d"
  "/root/repo/src/conformal/mondrian.cpp" "src/CMakeFiles/vmincqr.dir/conformal/mondrian.cpp.o" "gcc" "src/CMakeFiles/vmincqr.dir/conformal/mondrian.cpp.o.d"
  "/root/repo/src/conformal/normalized.cpp" "src/CMakeFiles/vmincqr.dir/conformal/normalized.cpp.o" "gcc" "src/CMakeFiles/vmincqr.dir/conformal/normalized.cpp.o.d"
  "/root/repo/src/conformal/predictive.cpp" "src/CMakeFiles/vmincqr.dir/conformal/predictive.cpp.o" "gcc" "src/CMakeFiles/vmincqr.dir/conformal/predictive.cpp.o.d"
  "/root/repo/src/conformal/scores.cpp" "src/CMakeFiles/vmincqr.dir/conformal/scores.cpp.o" "gcc" "src/CMakeFiles/vmincqr.dir/conformal/scores.cpp.o.d"
  "/root/repo/src/conformal/split_cp.cpp" "src/CMakeFiles/vmincqr.dir/conformal/split_cp.cpp.o" "gcc" "src/CMakeFiles/vmincqr.dir/conformal/split_cp.cpp.o.d"
  "/root/repo/src/core/binning.cpp" "src/CMakeFiles/vmincqr.dir/core/binning.cpp.o" "gcc" "src/CMakeFiles/vmincqr.dir/core/binning.cpp.o.d"
  "/root/repo/src/core/experiment.cpp" "src/CMakeFiles/vmincqr.dir/core/experiment.cpp.o" "gcc" "src/CMakeFiles/vmincqr.dir/core/experiment.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/CMakeFiles/vmincqr.dir/core/pipeline.cpp.o" "gcc" "src/CMakeFiles/vmincqr.dir/core/pipeline.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/CMakeFiles/vmincqr.dir/core/report.cpp.o" "gcc" "src/CMakeFiles/vmincqr.dir/core/report.cpp.o.d"
  "/root/repo/src/core/scenario.cpp" "src/CMakeFiles/vmincqr.dir/core/scenario.cpp.o" "gcc" "src/CMakeFiles/vmincqr.dir/core/scenario.cpp.o.d"
  "/root/repo/src/core/screening.cpp" "src/CMakeFiles/vmincqr.dir/core/screening.cpp.o" "gcc" "src/CMakeFiles/vmincqr.dir/core/screening.cpp.o.d"
  "/root/repo/src/data/csv.cpp" "src/CMakeFiles/vmincqr.dir/data/csv.cpp.o" "gcc" "src/CMakeFiles/vmincqr.dir/data/csv.cpp.o.d"
  "/root/repo/src/data/dataset.cpp" "src/CMakeFiles/vmincqr.dir/data/dataset.cpp.o" "gcc" "src/CMakeFiles/vmincqr.dir/data/dataset.cpp.o.d"
  "/root/repo/src/data/feature_select.cpp" "src/CMakeFiles/vmincqr.dir/data/feature_select.cpp.o" "gcc" "src/CMakeFiles/vmincqr.dir/data/feature_select.cpp.o.d"
  "/root/repo/src/data/scaler.cpp" "src/CMakeFiles/vmincqr.dir/data/scaler.cpp.o" "gcc" "src/CMakeFiles/vmincqr.dir/data/scaler.cpp.o.d"
  "/root/repo/src/data/split.cpp" "src/CMakeFiles/vmincqr.dir/data/split.cpp.o" "gcc" "src/CMakeFiles/vmincqr.dir/data/split.cpp.o.d"
  "/root/repo/src/linalg/decomp.cpp" "src/CMakeFiles/vmincqr.dir/linalg/decomp.cpp.o" "gcc" "src/CMakeFiles/vmincqr.dir/linalg/decomp.cpp.o.d"
  "/root/repo/src/linalg/matrix.cpp" "src/CMakeFiles/vmincqr.dir/linalg/matrix.cpp.o" "gcc" "src/CMakeFiles/vmincqr.dir/linalg/matrix.cpp.o.d"
  "/root/repo/src/linalg/ops.cpp" "src/CMakeFiles/vmincqr.dir/linalg/ops.cpp.o" "gcc" "src/CMakeFiles/vmincqr.dir/linalg/ops.cpp.o.d"
  "/root/repo/src/models/elastic_net.cpp" "src/CMakeFiles/vmincqr.dir/models/elastic_net.cpp.o" "gcc" "src/CMakeFiles/vmincqr.dir/models/elastic_net.cpp.o.d"
  "/root/repo/src/models/factory.cpp" "src/CMakeFiles/vmincqr.dir/models/factory.cpp.o" "gcc" "src/CMakeFiles/vmincqr.dir/models/factory.cpp.o.d"
  "/root/repo/src/models/gbt.cpp" "src/CMakeFiles/vmincqr.dir/models/gbt.cpp.o" "gcc" "src/CMakeFiles/vmincqr.dir/models/gbt.cpp.o.d"
  "/root/repo/src/models/gp.cpp" "src/CMakeFiles/vmincqr.dir/models/gp.cpp.o" "gcc" "src/CMakeFiles/vmincqr.dir/models/gp.cpp.o.d"
  "/root/repo/src/models/linear.cpp" "src/CMakeFiles/vmincqr.dir/models/linear.cpp.o" "gcc" "src/CMakeFiles/vmincqr.dir/models/linear.cpp.o.d"
  "/root/repo/src/models/losses.cpp" "src/CMakeFiles/vmincqr.dir/models/losses.cpp.o" "gcc" "src/CMakeFiles/vmincqr.dir/models/losses.cpp.o.d"
  "/root/repo/src/models/mlp.cpp" "src/CMakeFiles/vmincqr.dir/models/mlp.cpp.o" "gcc" "src/CMakeFiles/vmincqr.dir/models/mlp.cpp.o.d"
  "/root/repo/src/models/ordered_boost.cpp" "src/CMakeFiles/vmincqr.dir/models/ordered_boost.cpp.o" "gcc" "src/CMakeFiles/vmincqr.dir/models/ordered_boost.cpp.o.d"
  "/root/repo/src/models/region.cpp" "src/CMakeFiles/vmincqr.dir/models/region.cpp.o" "gcc" "src/CMakeFiles/vmincqr.dir/models/region.cpp.o.d"
  "/root/repo/src/models/regressor.cpp" "src/CMakeFiles/vmincqr.dir/models/regressor.cpp.o" "gcc" "src/CMakeFiles/vmincqr.dir/models/regressor.cpp.o.d"
  "/root/repo/src/models/tree.cpp" "src/CMakeFiles/vmincqr.dir/models/tree.cpp.o" "gcc" "src/CMakeFiles/vmincqr.dir/models/tree.cpp.o.d"
  "/root/repo/src/netlist/cell.cpp" "src/CMakeFiles/vmincqr.dir/netlist/cell.cpp.o" "gcc" "src/CMakeFiles/vmincqr.dir/netlist/cell.cpp.o.d"
  "/root/repo/src/netlist/netlist.cpp" "src/CMakeFiles/vmincqr.dir/netlist/netlist.cpp.o" "gcc" "src/CMakeFiles/vmincqr.dir/netlist/netlist.cpp.o.d"
  "/root/repo/src/netlist/ring_oscillator.cpp" "src/CMakeFiles/vmincqr.dir/netlist/ring_oscillator.cpp.o" "gcc" "src/CMakeFiles/vmincqr.dir/netlist/ring_oscillator.cpp.o.d"
  "/root/repo/src/netlist/sta.cpp" "src/CMakeFiles/vmincqr.dir/netlist/sta.cpp.o" "gcc" "src/CMakeFiles/vmincqr.dir/netlist/sta.cpp.o.d"
  "/root/repo/src/netlist/vmin_solver.cpp" "src/CMakeFiles/vmincqr.dir/netlist/vmin_solver.cpp.o" "gcc" "src/CMakeFiles/vmincqr.dir/netlist/vmin_solver.cpp.o.d"
  "/root/repo/src/rng/rng.cpp" "src/CMakeFiles/vmincqr.dir/rng/rng.cpp.o" "gcc" "src/CMakeFiles/vmincqr.dir/rng/rng.cpp.o.d"
  "/root/repo/src/silicon/aging.cpp" "src/CMakeFiles/vmincqr.dir/silicon/aging.cpp.o" "gcc" "src/CMakeFiles/vmincqr.dir/silicon/aging.cpp.o.d"
  "/root/repo/src/silicon/critical_path.cpp" "src/CMakeFiles/vmincqr.dir/silicon/critical_path.cpp.o" "gcc" "src/CMakeFiles/vmincqr.dir/silicon/critical_path.cpp.o.d"
  "/root/repo/src/silicon/dataset_gen.cpp" "src/CMakeFiles/vmincqr.dir/silicon/dataset_gen.cpp.o" "gcc" "src/CMakeFiles/vmincqr.dir/silicon/dataset_gen.cpp.o.d"
  "/root/repo/src/silicon/monitors.cpp" "src/CMakeFiles/vmincqr.dir/silicon/monitors.cpp.o" "gcc" "src/CMakeFiles/vmincqr.dir/silicon/monitors.cpp.o.d"
  "/root/repo/src/silicon/parametric.cpp" "src/CMakeFiles/vmincqr.dir/silicon/parametric.cpp.o" "gcc" "src/CMakeFiles/vmincqr.dir/silicon/parametric.cpp.o.d"
  "/root/repo/src/silicon/process.cpp" "src/CMakeFiles/vmincqr.dir/silicon/process.cpp.o" "gcc" "src/CMakeFiles/vmincqr.dir/silicon/process.cpp.o.d"
  "/root/repo/src/silicon/structural.cpp" "src/CMakeFiles/vmincqr.dir/silicon/structural.cpp.o" "gcc" "src/CMakeFiles/vmincqr.dir/silicon/structural.cpp.o.d"
  "/root/repo/src/silicon/vmin_model.cpp" "src/CMakeFiles/vmincqr.dir/silicon/vmin_model.cpp.o" "gcc" "src/CMakeFiles/vmincqr.dir/silicon/vmin_model.cpp.o.d"
  "/root/repo/src/stats/descriptive.cpp" "src/CMakeFiles/vmincqr.dir/stats/descriptive.cpp.o" "gcc" "src/CMakeFiles/vmincqr.dir/stats/descriptive.cpp.o.d"
  "/root/repo/src/stats/distributions.cpp" "src/CMakeFiles/vmincqr.dir/stats/distributions.cpp.o" "gcc" "src/CMakeFiles/vmincqr.dir/stats/distributions.cpp.o.d"
  "/root/repo/src/stats/metrics.cpp" "src/CMakeFiles/vmincqr.dir/stats/metrics.cpp.o" "gcc" "src/CMakeFiles/vmincqr.dir/stats/metrics.cpp.o.d"
  "/root/repo/src/stats/quantile.cpp" "src/CMakeFiles/vmincqr.dir/stats/quantile.cpp.o" "gcc" "src/CMakeFiles/vmincqr.dir/stats/quantile.cpp.o.d"
  "/root/repo/src/testgen/fault_sim.cpp" "src/CMakeFiles/vmincqr.dir/testgen/fault_sim.cpp.o" "gcc" "src/CMakeFiles/vmincqr.dir/testgen/fault_sim.cpp.o.d"
  "/root/repo/src/testgen/logic.cpp" "src/CMakeFiles/vmincqr.dir/testgen/logic.cpp.o" "gcc" "src/CMakeFiles/vmincqr.dir/testgen/logic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
