// Plain-text table rendering for the benchmark harnesses, so each bench
// binary prints rows in the same shape as the paper's tables and figures.
#pragma once

#include <string>
#include <vector>

namespace vmincqr::core {

/// Fixed-width text table with a header row and a separator line.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Adds a row; must have the same number of cells as the header.
  /// Throws std::invalid_argument otherwise.
  void add_row(std::vector<std::string> row);

  /// Renders with columns padded to their widest cell.
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] std::size_t n_rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision formatting, e.g. format_double(12.3456, 2) == "12.35".
std::string format_double(double value, int precision);

}  // namespace vmincqr::core
