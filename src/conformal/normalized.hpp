// Normalized (locally-weighted) split conformal prediction — an extension
// beyond the paper, included as an alternative route to input-adaptive
// interval widths: scores are residuals scaled by a learned per-sample
// difficulty estimate sigma_hat(x), so the calibrated interval is
// [mu(x) - q_hat sigma_hat(x), mu(x) + q_hat sigma_hat(x)].
#pragma once

#include <memory>

#include "core/split_spec.hpp"
#include "core/units.hpp"
#include "models/interval.hpp"
#include "models/regressor.hpp"

namespace vmincqr::conformal {

using core::MiscoverageAlpha;
using models::IntervalPrediction;
using models::IntervalRegressor;
using models::Matrix;
using models::Regressor;
using models::Vector;

struct NormalizedConfig {
  core::CalibrationSplit split;
  double sigma_floor = 1e-6;  ///< lower bound on sigma_hat (volts)
};

/// The calibrated state of a NormalizedConformalRegressor. The sigma floor
/// rides along because predict-time difficulty estimates are clamped to it —
/// it is part of the serve-time contract, not just a fit-time knob.
struct NormalizedCalibration {
  double q_hat = 0.0;
  double sigma_floor = 1e-6;
};

class NormalizedConformalRegressor final : public IntervalRegressor {
 public:
  /// `mean_model` predicts y; `sigma_model` is trained on |residuals| of the
  /// mean model over the proper-training set. Throws std::invalid_argument
  /// on null models.
  NormalizedConformalRegressor(MiscoverageAlpha alpha,
                               std::unique_ptr<Regressor> mean_model,
                               std::unique_ptr<Regressor> sigma_model,
                               NormalizedConfig config = {});

  void fit(const Matrix& x, const Vector& y) override;
  [[nodiscard]] IntervalPrediction predict_interval(const Matrix& x) const override;
  [[nodiscard]] std::unique_ptr<IntervalRegressor> clone_config() const override;
  [[nodiscard]] std::string name() const override {
    return "Normalized CP " + mean_model_->name();
  }
  [[nodiscard]] MiscoverageAlpha alpha() const override { return alpha_; }

  [[nodiscard]] double q_hat() const;

  /// The wrapped mean / difficulty models (for parameter export).
  [[nodiscard]] const Regressor& mean_model() const { return *mean_model_; }
  [[nodiscard]] const Regressor& sigma_model() const { return *sigma_model_; }

  /// Copies out the calibrated state. Throws std::logic_error if not
  /// calibrated.
  [[nodiscard]] NormalizedCalibration export_calibration() const;

  /// Adopts previously exported state and marks the regressor calibrated.
  /// Both wrapped models must already be fitted for predictions to succeed.
  /// Throws std::invalid_argument on NaN or a negative sigma floor.
  void import_calibration(NormalizedCalibration calibration);

 private:
  [[nodiscard]] Vector predict_sigma(const Matrix& x) const;

  MiscoverageAlpha alpha_;
  std::unique_ptr<Regressor> mean_model_;
  std::unique_ptr<Regressor> sigma_model_;
  NormalizedConfig config_;
  double q_hat_ = 0.0;
  bool calibrated_ = false;
};

}  // namespace vmincqr::conformal
