# Empty compiler generated dependencies file for monitor_ranking.
# This may be replaced when dependencies are built.
