// Single-stuck-at fault model, fault simulation, and a random-pattern ATPG
// loop — the structural-test machinery behind the paper's SCAN Vmin flow.
#pragma once

#include <cstddef>
#include <vector>

#include "rng/rng.hpp"
#include "testgen/logic.hpp"

namespace vmincqr::testgen {

/// One single-stuck-at fault site.
struct StuckFault {
  std::size_t node = 0;  ///< netlist node whose value is forced
  bool stuck_value = false;
};

/// The collapsed-ish fault list: stuck-at-0 and stuck-at-1 at every node
/// (primary inputs and gate outputs).
std::vector<StuckFault> enumerate_stuck_faults(const netlist::Netlist& nl);

/// SCAN observation points: the primary outputs plus every DFF node (scan
/// chains make all state elements observable — the reason structural SCAN
/// patterns reach the coverage ATE flows rely on).
std::vector<std::size_t> scan_observation_points(const netlist::Netlist& nl);

struct FaultSimResult {
  std::size_t n_detected = 0;
  std::size_t n_faults = 0;
  std::vector<bool> detected;  ///< per fault, aligned with the fault list
  [[nodiscard]] double coverage() const {
    return n_faults ? static_cast<double>(n_detected) /
                          static_cast<double>(n_faults)
                    : 0.0;
  }
};

/// Simulates every fault against the given packed pattern words (one vector
/// of words per primary input, all the same length). A fault is detected if
/// any primary output differs from the fault-free response in any pattern.
/// Throws std::invalid_argument on ragged pattern words.
FaultSimResult simulate_faults(const netlist::Netlist& nl,
                               const std::vector<std::vector<PatternWord>>&
                                   input_words,
                               const std::vector<StuckFault>& faults);

struct AtpgResult {
  /// Packed patterns: one vector of words per primary input.
  std::vector<std::vector<PatternWord>> input_words;
  double coverage = 0.0;
  std::size_t n_patterns = 0;  ///< 64 * words
};

/// Random-pattern ATPG: adds 64-pattern words until the target stuck-at
/// coverage is reached or the pattern budget is exhausted. Faults already
/// detected are dropped from later passes (standard fault dropping).
/// Throws std::invalid_argument for target outside [0, 1] or zero budget.
AtpgResult random_atpg(const netlist::Netlist& nl, double target_coverage,
                       std::size_t max_pattern_words, rng::Rng& rng);

}  // namespace vmincqr::testgen
