# Empty compiler generated dependencies file for conformal_property_test.
# This may be replaced when dependencies are built.
