// Production-test screening policies (paper Sec. I / II-B): decide
// pass / fail / retest against the min_spec limit from either a calibrated
// prediction interval or a guard-banded point estimate, with explicit
// overkill / underkill accounting.
//
// Terminology (Sec. II-B): overkill = a spec-compliant chip rejected
// (yield loss); underkill = an out-of-spec chip shipped (quality/safety
// escape).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/units.hpp"
#include "linalg/matrix.hpp"

namespace vmincqr::core {

using linalg::Vector;  // Volt/Millivolt already live in this namespace (units.hpp).

enum class ScreenDecision : std::uint8_t {
  kPass,    ///< confidently within spec
  kFail,    ///< confidently out of spec
  kRetest,  ///< uncertain: route to (costly) real Vmin measurement
};

std::string to_string(ScreenDecision decision);

/// Interval rule for one chip: pass iff the whole interval is below
/// min_spec, fail iff the whole interval is above, retest otherwise.
/// Bounds are in volts (the unit of the label vectors); the spec limit is
/// typed to keep it in the same unit. Throws std::invalid_argument if
/// lower > upper.
ScreenDecision screen_interval(double lower, double upper, Volt min_spec);

/// Guard-banded point rule: pass iff prediction + guard_band <= min_spec.
/// (The industry-standard alternative to intervals; never retests.)
/// Guard bands are quoted in millivolts — industry convention, and a
/// classic volts-for-millivolts confusion site, hence the strong type.
/// Throws std::invalid_argument if guard_band < 0.
ScreenDecision screen_point(double prediction, Millivolt guard_band,
                            Volt min_spec);

/// Aggregate outcome of screening a batch against known truth.
struct ScreeningReport {
  std::size_t n_pass = 0;
  std::size_t n_fail = 0;
  std::size_t n_retest = 0;
  std::size_t n_overkill = 0;   ///< failed but truth <= min_spec
  std::size_t n_underkill = 0;  ///< passed but truth > min_spec
  std::size_t n_truly_bad = 0;  ///< chips with truth > min_spec

  [[nodiscard]] std::size_t total() const noexcept { return n_pass + n_fail + n_retest; }
  [[nodiscard]] double retest_rate() const {
    return total() ? static_cast<double>(n_retest) / static_cast<double>(total())
                   : 0.0;
  }
  [[nodiscard]] double overkill_rate() const {
    const auto good = total() - n_truly_bad;
    return good ? static_cast<double>(n_overkill) / static_cast<double>(good)
                : 0.0;
  }
  [[nodiscard]] double underkill_rate() const {
    return n_truly_bad ? static_cast<double>(n_underkill) /
                             static_cast<double>(n_truly_bad)
                       : 0.0;
  }
};

/// Evaluates the interval rule over a batch. All vectors must have equal,
/// non-zero length; throws std::invalid_argument otherwise.
ScreeningReport screen_batch_interval(const Vector& truth, const Vector& lower,
                                      const Vector& upper, Volt min_spec);

/// Evaluates the guard-banded point rule over a batch.
ScreeningReport screen_batch_point(const Vector& truth, const Vector& predicted,
                                   Millivolt guard_band, Volt min_spec);

/// Smallest guard band (searched over the given candidates, ascending) whose
/// point rule achieves underkill_rate <= max_underkill on the batch; returns
/// the last candidate if none qualifies. Used to compare "interval + retest"
/// against "how big a guard band would you need instead".
Millivolt calibrate_guard_band(const Vector& truth, const Vector& predicted,
                               Volt min_spec,
                               const std::vector<Millivolt>& candidates,
                               double max_underkill);

}  // namespace vmincqr::core
