#include "conformal/predictive.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/contracts.hpp"

#include "data/split.hpp"

namespace vmincqr::conformal {

ConformalPredictiveDistribution::ConformalPredictiveDistribution(
    std::unique_ptr<Regressor> model, PredictiveConfig config)
    : model_(std::move(model)), config_(config) {
  if (!model_) {
    throw std::invalid_argument("ConformalPredictiveDistribution: null model");
  }
  if (!config_.split.valid()) {
    throw std::invalid_argument(
        "ConformalPredictiveDistribution: train_fraction outside (0, 1)");
  }
}

void ConformalPredictiveDistribution::fit(const Matrix& x, const Vector& y) {
  VMINCQR_REQUIRE(x.rows() >= 3,
                  "ConformalPredictiveDistribution::fit: need at least 3 "
                  "samples");
  VMINCQR_CHECK_SHAPE(x.rows() == y.size(),
                      "ConformalPredictiveDistribution::fit: shape mismatch");
  VMINCQR_CHECK_FINITE(y, "fit: label vector y");
  std::vector<std::size_t> indices(x.rows());
  for (std::size_t i = 0; i < indices.size(); ++i) indices[i] = i;
  rng::Rng rng(config_.split.seed);
  const auto split = data::train_calibration_split(
      indices, config_.split.train_fraction, rng);
  Vector y_train(split.train.size()), y_calib(split.calibration.size());
  for (std::size_t i = 0; i < split.train.size(); ++i) {
    y_train[i] = y[split.train[i]];
  }
  for (std::size_t i = 0; i < split.calibration.size(); ++i) {
    y_calib[i] = y[split.calibration[i]];
  }
  fit_with_split(x.take_rows(split.train), y_train,
                 x.take_rows(split.calibration), y_calib);
}

void ConformalPredictiveDistribution::fit_with_split(const Matrix& x_train,
                                                     const Vector& y_train,
                                                     const Matrix& x_calib,
                                                     const Vector& y_calib) {
  VMINCQR_REQUIRE(x_calib.rows() > 0,
                  "ConformalPredictiveDistribution: empty calibration set");
  VMINCQR_CHECK_SHAPE(x_calib.rows() == y_calib.size(),
                      "ConformalPredictiveDistribution: calibration shape "
                      "mismatch");
  VMINCQR_CHECK_FINITE(y_calib, "calibrate: calibration labels");
  model_->fit(x_train, y_train);
  const Vector mu = model_->predict(x_calib);
  residuals_.resize(y_calib.size());
  for (std::size_t i = 0; i < y_calib.size(); ++i) {
    residuals_[i] = y_calib[i] - mu[i];
  }
  std::sort(residuals_.begin(), residuals_.end());
  calibrated_ = true;
}

double ConformalPredictiveDistribution::predict_one(const Vector& x_row) const {
  Matrix x(1, x_row.size());
  x.set_row(0, x_row);
  return model_->predict(x)[0];
}

double ConformalPredictiveDistribution::cdf(const Vector& x_row,
                                            double y) const {
  if (!calibrated_) {
    throw std::logic_error("ConformalPredictiveDistribution: not calibrated");
  }
  const double mu = predict_one(x_row);
  const double score = y - mu;
  // rank = #{ r_i <= score }
  const auto rank = static_cast<double>(
      std::upper_bound(residuals_.begin(), residuals_.end(), score) -
      residuals_.begin());
  const auto m = static_cast<double>(residuals_.size());
  // Clamp into (0, 1): finite calibration can never certify certainty.
  const double q = (rank + 0.5) / (m + 1.0);
  return std::clamp(q, 1.0 / (m + 1.0), m / (m + 1.0));
}

double ConformalPredictiveDistribution::quantile(
    const Vector& x_row, core::QuantileLevel beta) const {
  if (!calibrated_) {
    throw std::logic_error("ConformalPredictiveDistribution: not calibrated");
  }
  const double mu = predict_one(x_row);
  const auto m = static_cast<double>(residuals_.size());
  auto rank = static_cast<std::size_t>(std::ceil(beta * (m + 1.0)));
  rank = std::clamp<std::size_t>(rank, 1, residuals_.size());
  return mu + residuals_[rank - 1];
}

double ConformalPredictiveDistribution::exceedance_probability(
    const Vector& x_row, core::Volt threshold) const {
  return 1.0 - cdf(x_row, threshold);
}

Vector ConformalPredictiveDistribution::exceedance_probabilities(
    const Matrix& x, core::Volt threshold) const {
  Vector out(x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    out[i] = exceedance_probability(x.row(i), threshold);
  }
  return out;
}

}  // namespace vmincqr::conformal
