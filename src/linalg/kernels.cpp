#include "linalg/kernels.hpp"

#include <cstdlib>
#include <stdexcept>

namespace vmincqr::linalg {
namespace {

KernelPolicy resolve_from_env() {
  const char* env = std::getenv("VMINCQR_KERNEL_POLICY");
  if (env != nullptr) {
    const std::string name(env);
    if (name == "fast") return KernelPolicy::kFast;
    // Anything else (including typos) falls through to the safe tier: a
    // misspelled env var must never silently relax bit-exactness the other
    // way round, and "bit_exact" is the documented spelling.
  }
  return KernelPolicy::kBitExact;
}

/// Process-wide policy. Resolved from VMINCQR_KERNEL_POLICY once at startup;
/// set_kernel_policy overwrites it. Like parallel::g_thread_override this is
/// a plain global guarded by quiescence: writes happen only while no pool
/// batch is in flight, and pool lanes observe the value through the
/// happens-before edge of the batch-publish mutex.
KernelPolicy g_policy = resolve_from_env();

/// Rows of A processed together: one pass over a B row (or x) feeds this
/// many output rows, cutting B/x traffic by the block factor while leaving
/// every per-element accumulation order untouched.
constexpr std::size_t kRowBlock = 4;

// --- bit-exact tier --------------------------------------------------------
//
// Blocking here only re-uses loads; each c(i, j) still receives its k-terms
// in ascending k starting from the caller's initial value, with the exact
// same `a(i, k) == 0.0` skips as the scalar reference (a skipped term is not
// a no-op in IEEE: x + 0.0 flips -0.0 to +0.0, so skips must match).

void gemm_exact(std::size_t m, std::size_t k, std::size_t n, const double* a,
                std::size_t lda, const double* b, std::size_t ldb, double* c,
                std::size_t ldc) {
  for (std::size_t i0 = 0; i0 < m; i0 += kRowBlock) {
    const std::size_t i1 = i0 + kRowBlock < m ? i0 + kRowBlock : m;
    for (std::size_t kk = 0; kk < k; ++kk) {
      const double* brow = b + kk * ldb;
      for (std::size_t i = i0; i < i1; ++i) {
        const double aik = a[i * lda + kk];
        // Sparsity fast path: skipping an exact zero is lossless.
        if (aik == 0.0) continue;  // vmincqr-lint: allow(float-equality)
        double* crow = c + i * ldc;
        for (std::size_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
      }
    }
  }
}

void gemm_at_exact(std::size_t m, std::size_t k, std::size_t n,
                   const double* a, std::size_t lda, const double* b,
                   std::size_t ldb, double* c, std::size_t ldc) {
  // c(kk, j) accumulates over samples i in ascending order, skipping terms
  // whose B factor is exactly zero — the order and skip-set of the scalar
  // gradient loops this replaces (MLP backward skips dh == 0 samples).
  for (std::size_t i = 0; i < m; ++i) {
    const double* arow = a + i * lda;
    const double* brow = b + i * ldb;
    for (std::size_t kk = 0; kk < k; ++kk) {
      const double aik = arow[kk];
      double* crow = c + kk * ldc;
      for (std::size_t j = 0; j < n; ++j) {
        const double bij = brow[j];
        // Sparsity fast path: skipping an exact zero is lossless.
        if (bij == 0.0) continue;  // vmincqr-lint: allow(float-equality)
        crow[j] += aik * bij;
      }
    }
  }
}

void gemv_exact(std::size_t m, std::size_t n, const double* a,
                std::size_t lda, const double* x, double* y) {
  for (std::size_t i0 = 0; i0 < m; i0 += kRowBlock) {
    const std::size_t i1 = i0 + kRowBlock < m ? i0 + kRowBlock : m;
    double acc[kRowBlock] = {0.0, 0.0, 0.0, 0.0};
    const std::size_t rows = i1 - i0;
    for (std::size_t j = 0; j < n; ++j) {
      const double xj = x[j];
      for (std::size_t r = 0; r < rows; ++r) {
        acc[r] += a[(i0 + r) * lda + j] * xj;
      }
    }
    for (std::size_t r = 0; r < rows; ++r) y[i0 + r] = acc[r];
  }
}

double dot_exact(std::size_t n, const double* a, const double* b) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

void row_sq_dists_exact(const double* a, std::size_t d, const double* b,
                        std::size_t ldb, std::size_t nb, double* out) {
  for (std::size_t j0 = 0; j0 < nb; j0 += kRowBlock) {
    const std::size_t j1 = j0 + kRowBlock < nb ? j0 + kRowBlock : nb;
    double acc[kRowBlock] = {0.0, 0.0, 0.0, 0.0};
    const std::size_t rows = j1 - j0;
    for (std::size_t c = 0; c < d; ++c) {
      const double ac = a[c];
      for (std::size_t r = 0; r < rows; ++r) {
        const double diff = ac - b[(j0 + r) * ldb + c];
        acc[r] += diff * diff;
      }
    }
    for (std::size_t r = 0; r < rows; ++r) out[j0 + r] = acc[r];
  }
}

// --- fast tier -------------------------------------------------------------
//
// Reassociated: paired k-terms and split accumulators change the summation
// tree (and the exact-zero skips are dropped), so results differ in the low
// bits from the reference tier. Gated by tolerance + coverage-equivalence
// tests, never bit comparison. Still fully deterministic: the summation
// tree is fixed by the shapes alone, independent of threads or data.

// vmincqr: numeric-tier(tolerance)
void gemm_fast(std::size_t m, std::size_t k, std::size_t n, const double* a,
               std::size_t lda, const double* b, std::size_t ldb, double* c,
               std::size_t ldc) {
  for (std::size_t i0 = 0; i0 < m; i0 += kRowBlock) {
    const std::size_t i1 = i0 + kRowBlock < m ? i0 + kRowBlock : m;
    std::size_t kk = 0;
    // Paired k-steps: c gets (a0*b0 + a1*b1) per pass — half the c traffic.
    for (; kk + 1 < k; kk += 2) {
      const double* b0 = b + kk * ldb;
      const double* b1 = b + (kk + 1) * ldb;
      for (std::size_t i = i0; i < i1; ++i) {
        const double a0 = a[i * lda + kk];
        const double a1 = a[i * lda + kk + 1];
        double* crow = c + i * ldc;
        for (std::size_t j = 0; j < n; ++j) {
          crow[j] += a0 * b0[j] + a1 * b1[j];
        }
      }
    }
    for (; kk < k; ++kk) {
      const double* brow = b + kk * ldb;
      for (std::size_t i = i0; i < i1; ++i) {
        const double aik = a[i * lda + kk];
        double* crow = c + i * ldc;
        for (std::size_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
      }
    }
  }
}

// vmincqr: numeric-tier(tolerance)
void gemm_at_fast(std::size_t m, std::size_t k, std::size_t n,
                  const double* a, std::size_t lda, const double* b,
                  std::size_t ldb, double* c, std::size_t ldc) {
  // Unskipped, branch-free inner loop (vectorizable); zero B terms now feed
  // the sum, which can flip -0.0 signs relative to the reference tier.
  for (std::size_t i = 0; i < m; ++i) {
    const double* arow = a + i * lda;
    const double* brow = b + i * ldb;
    for (std::size_t kk = 0; kk < k; ++kk) {
      const double aik = arow[kk];
      double* crow = c + kk * ldc;
      for (std::size_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
    }
  }
}

// vmincqr: numeric-tier(tolerance)
void gemv_fast(std::size_t m, std::size_t n, const double* a,
               std::size_t lda, const double* x, double* y) {
  for (std::size_t i = 0; i < m; ++i) {
    const double* row = a + i * lda;
    double acc0 = 0.0, acc1 = 0.0;
    std::size_t j = 0;
    for (; j + 1 < n; j += 2) {
      acc0 += row[j] * x[j];
      acc1 += row[j + 1] * x[j + 1];
    }
    if (j < n) acc0 += row[j] * x[j];
    y[i] = acc0 + acc1;
  }
}

// vmincqr: numeric-tier(tolerance)
double dot_fast(std::size_t n, const double* a, const double* b) {
  double acc0 = 0.0, acc1 = 0.0;
  std::size_t i = 0;
  for (; i + 1 < n; i += 2) {
    acc0 += a[i] * b[i];
    acc1 += a[i + 1] * b[i + 1];
  }
  if (i < n) acc0 += a[i] * b[i];
  return acc0 + acc1;
}

// vmincqr: numeric-tier(tolerance)
void row_sq_dists_fast(const double* a, std::size_t d, const double* b,
                       std::size_t ldb, std::size_t nb, const double* b_norms,
                       double* out) {
  const double a_norm = dot_fast(d, a, a);
  for (std::size_t j = 0; j < nb; ++j) {
    const double cross = dot_fast(d, a, b + j * ldb);
    // ||a - b||^2 = ||a||^2 - 2 a.b + ||b||^2; clamp the cancellation
    // residue so a distance-of-self never goes (tiny) negative.
    const double sq = a_norm - 2.0 * cross + b_norms[j];
    out[j] = sq > 0.0 ? sq : 0.0;
  }
}

}  // namespace

KernelPolicy kernel_policy() noexcept { return g_policy; }

void set_kernel_policy(KernelPolicy policy) noexcept { g_policy = policy; }

std::string kernel_policy_name(KernelPolicy policy) {
  return policy == KernelPolicy::kFast ? "fast" : "bit_exact";
}

KernelPolicy parse_kernel_policy(const std::string& name) {
  if (name == "fast") return KernelPolicy::kFast;
  if (name == "bit_exact") return KernelPolicy::kBitExact;
  throw std::invalid_argument("unknown kernel policy '" + name +
                              "' (expected \"bit_exact\" or \"fast\")");
}

void gemm(std::size_t m, std::size_t k, std::size_t n, const double* a,
          std::size_t lda, const double* b, std::size_t ldb, double* c,
          std::size_t ldc, KernelPolicy policy) {
  if (policy == KernelPolicy::kFast) {
    gemm_fast(m, k, n, a, lda, b, ldb, c, ldc);
  } else {
    gemm_exact(m, k, n, a, lda, b, ldb, c, ldc);
  }
}

void gemm_at(std::size_t m, std::size_t k, std::size_t n, const double* a,
             std::size_t lda, const double* b, std::size_t ldb, double* c,
             std::size_t ldc, KernelPolicy policy) {
  if (policy == KernelPolicy::kFast) {
    gemm_at_fast(m, k, n, a, lda, b, ldb, c, ldc);
  } else {
    gemm_at_exact(m, k, n, a, lda, b, ldb, c, ldc);
  }
}

void gemv(std::size_t m, std::size_t n, const double* a, std::size_t lda,
          const double* x, double* y, KernelPolicy policy) {
  if (policy == KernelPolicy::kFast) {
    gemv_fast(m, n, a, lda, x, y);
  } else {
    gemv_exact(m, n, a, lda, x, y);
  }
}

double dot_kernel(std::size_t n, const double* a, const double* b,
                  KernelPolicy policy) {
  return policy == KernelPolicy::kFast ? dot_fast(n, a, b)
                                       : dot_exact(n, a, b);
}

void row_sq_dists(const double* a, std::size_t d, const double* b,
                  std::size_t ldb, std::size_t nb, const double* b_norms,
                  double* out, KernelPolicy policy) {
  if (policy == KernelPolicy::kFast && b_norms != nullptr) {
    row_sq_dists_fast(a, d, b, ldb, nb, b_norms, out);
  } else {
    row_sq_dists_exact(a, d, b, ldb, nb, out);
  }
}

}  // namespace vmincqr::linalg
