// Failure-injection and edge-case tests across module boundaries: degenerate
// designs, pathological labels, tiny populations, extreme alphas — the cases
// a production flow will eventually feed the library.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "conformal/cqr.hpp"
#include "conformal/split_cp.hpp"
#include "data/feature_select.hpp"
#include "models/factory.hpp"
#include "rng/rng.hpp"
#include "silicon/dataset_gen.hpp"
#include "stats/metrics.hpp"

namespace vmincqr {
namespace {

using models::ModelKind;

linalg::Matrix random_matrix(std::size_t n, std::size_t d, std::uint64_t seed) {
  rng::Rng rng(seed);
  linalg::Matrix x(n, d);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t c = 0; c < d; ++c) x(i, c) = rng.normal();
  }
  return x;
}

// Every model must handle constant labels: predictions collapse to that
// constant, no NaNs, no throws.
class ConstantLabels : public ::testing::TestWithParam<ModelKind> {};

TEST_P(ConstantLabels, PredictsTheConstant) {
  const auto x = random_matrix(40, 3, 1);
  const linalg::Vector y(40, 0.55);
  auto model = models::make_point_regressor(GetParam());
  model->fit(x, y);
  for (double v : model->predict(x)) {
    ASSERT_TRUE(std::isfinite(v));
    EXPECT_NEAR(v, 0.55, 0.02);
  }
}

INSTANTIATE_TEST_SUITE_P(AllModels, ConstantLabels,
                         ::testing::Values(ModelKind::kLinear, ModelKind::kGp,
                                           ModelKind::kXgboost,
                                           ModelKind::kCatboost,
                                           ModelKind::kMlp));

// Every model must handle constant (uninformative) features.
class ConstantFeatures : public ::testing::TestWithParam<ModelKind> {};

TEST_P(ConstantFeatures, FallsBackToUnconditionalPrediction) {
  linalg::Matrix x(50, 2, 1.0);
  rng::Rng rng(2);
  linalg::Vector y = rng.normal_vector(50, 0.55, 0.01);
  auto model = models::make_point_regressor(GetParam());
  model->fit(x, y);
  for (double v : model->predict(x)) {
    ASSERT_TRUE(std::isfinite(v));
    EXPECT_NEAR(v, 0.55, 0.02);
  }
}

INSTANTIATE_TEST_SUITE_P(AllModels, ConstantFeatures,
                         ::testing::Values(ModelKind::kLinear, ModelKind::kGp,
                                           ModelKind::kXgboost,
                                           ModelKind::kCatboost,
                                           ModelKind::kMlp));

TEST(Robustness, DuplicatedRowsDoNotBreakConformal) {
  // Exchangeability holds under ties; the conformal quantile must cope with
  // many identical scores.
  linalg::Matrix x(60, 2, 0.0);
  linalg::Vector y(60);
  for (std::size_t i = 0; i < 60; ++i) {
    x(i, 0) = static_cast<double>(i % 3);
    x(i, 1) = 1.0;
    y[i] = 0.5 + 0.01 * static_cast<double>(i % 3);
  }
  conformal::SplitConformalRegressor cp(
      core::MiscoverageAlpha{0.1}, models::make_point_regressor(ModelKind::kLinear));
  cp.fit(x, y);
  const auto band = cp.predict_interval(x);
  EXPECT_GE(stats::interval_coverage(y, band.lower, band.upper), 0.9);
}

TEST(Robustness, ExtremeAlphasAreHandled) {
  const auto x = random_matrix(100, 2, 3);
  rng::Rng rng(4);
  linalg::Vector y = rng.normal_vector(100, 0.55, 0.01);

  // alpha close to 1: near-empty intervals are fine.
  conformal::ConformalizedQuantileRegressor loose(
      core::MiscoverageAlpha{0.9}, models::make_quantile_pair(ModelKind::kLinear, core::MiscoverageAlpha{0.9}));
  loose.fit(x, y);
  const auto narrow_band = loose.predict_interval(x);
  for (std::size_t i = 0; i < y.size(); ++i) {
    EXPECT_LE(narrow_band.lower[i], narrow_band.upper[i]);
  }

  // alpha tiny vs calibration size: infinite-width intervals, still ordered.
  conformal::ConformalizedQuantileRegressor strict(
      core::MiscoverageAlpha{0.001}, models::make_quantile_pair(ModelKind::kLinear, core::MiscoverageAlpha{0.001}));
  strict.fit(x, y);
  const auto wide_band = strict.predict_interval(x);
  EXPECT_TRUE(std::isinf(wide_band.upper[0] - wide_band.lower[0]));
  // Infinite band covers everything.
  EXPECT_DOUBLE_EQ(
      stats::interval_coverage(y, wide_band.lower, wide_band.upper), 1.0);

  // Constructor rejects the degenerate endpoints outright.
  EXPECT_THROW(conformal::ConformalizedQuantileRegressor(
                   core::MiscoverageAlpha{0.0}, models::make_quantile_pair(ModelKind::kLinear, core::MiscoverageAlpha{0.1})),
               std::invalid_argument);
}

TEST(Robustness, TinyPopulationPipeline) {
  // 10 chips end to end: nothing crashes, intervals may be infinite.
  silicon::GeneratorConfig config;
  config.n_chips = 10;
  config.parametric.features_per_temperature = 10;
  config.monitors.n_rod = 3;
  config.monitors.n_cpd = 1;
  const auto generated = silicon::generate_dataset(config);
  const auto& ds = generated.dataset;
  const auto& y = ds.label(0.0, 25.0).values;

  const auto cols = data::cfs_select(ds.features(), y, 3);
  conformal::ConformalizedQuantileRegressor cqr(
      core::MiscoverageAlpha{0.1}, models::make_quantile_pair(ModelKind::kLinear, core::MiscoverageAlpha{0.1}));
  cqr.fit(ds.features().take_cols(cols), y);
  const auto band = cqr.predict_interval(ds.features().take_cols(cols));
  // 3 calibration points < min_calibration_size(0.1) = 9 -> infinite bands.
  EXPECT_TRUE(std::isinf(band.upper[0] - band.lower[0]));
}

TEST(Robustness, SingleFeatureAndSingleSelectedColumn) {
  const auto x = random_matrix(80, 1, 5);
  linalg::Vector y(80);
  for (std::size_t i = 0; i < 80; ++i) y[i] = 2.0 * x(i, 0);
  for (auto kind : {ModelKind::kLinear, ModelKind::kCatboost}) {
    auto model = models::make_point_regressor(kind);
    model->fit(x, y);
    EXPECT_GT(stats::r_squared(y, model->predict(x)), 0.8)
        << models::model_name(kind);
  }
}

TEST(Robustness, CfsWithAllConstantColumnsReturnsSomething) {
  linalg::Matrix x(20, 4, 7.0);
  rng::Rng rng(6);
  linalg::Vector y = rng.normal_vector(20);
  const auto cols = data::cfs_select(x, y, 3);
  EXPECT_FALSE(cols.empty());  // degenerate but well-defined
}

TEST(Robustness, OutlierLabelDoesNotPoisonCoverage) {
  // One wild outlier in training: conformal calibration absorbs it (it is
  // one of the alpha-fraction misses at worst).
  auto x = random_matrix(200, 2, 8);
  rng::Rng rng(9);
  linalg::Vector y(200);
  for (std::size_t i = 0; i < 200; ++i) {
    y[i] = x(i, 0) + rng.normal(0.0, 0.1);
  }
  y[17] = 50.0;  // broken measurement
  conformal::ConformalizedQuantileRegressor cqr(
      core::MiscoverageAlpha{0.1}, models::make_quantile_pair(ModelKind::kLinear, core::MiscoverageAlpha{0.1}));
  cqr.fit(x, y);
  const auto test_x = random_matrix(300, 2, 10);
  rng::Rng rng2(11);
  linalg::Vector test_y(300);
  for (std::size_t i = 0; i < 300; ++i) {
    test_y[i] = test_x(i, 0) + rng2.normal(0.0, 0.1);
  }
  const auto band = cqr.predict_interval(test_x);
  EXPECT_GE(stats::interval_coverage(test_y, band.lower, band.upper), 0.85);
  // And the band stays sane (not blown up to the outlier's scale).
  EXPECT_LT(stats::mean_interval_length(band.lower, band.upper), 5.0);
}

TEST(Robustness, PredictOnEmptyMatrixYieldsEmpty) {
  const auto x = random_matrix(30, 2, 12);
  rng::Rng rng(13);
  linalg::Vector y = rng.normal_vector(30);
  auto model = models::make_point_regressor(ModelKind::kLinear);
  model->fit(x, y);
  const auto pred = model->predict(linalg::Matrix(0, 2));
  EXPECT_TRUE(pred.empty());
}

}  // namespace
}  // namespace vmincqr
