// Negative fixture for seed-reuse: distinct seeds within one scope are fine,
// and the same seed in *different* function scopes is fine (each test or
// bench arm may deliberately replay the same stream).
void stream_pair() {
  Rng train_stream(7);
  Rng test_stream(8);
  consume(train_stream, test_stream);
}

void replayed_arm() {
  Rng train_stream(7);
  consume(train_stream);
}
