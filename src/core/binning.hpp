// Binning, in both senses this codebase needs it:
//
// 1. ML-assisted Vmin binning (the application of the paper's reference [4]:
//    Lin et al., "ML-assisted Vmin binning with multiple guard bands",
//    ITC'22): assign each chip the lowest supply-voltage bin that its
//    predicted Vmin supports, trading power (lower bins) against field
//    failures (violations). Interval-based binning uses the calibrated upper
//    bound directly — the conformal guarantee transfers: at most ~alpha of
//    chips land in a bin below their true Vmin. Point-based binning needs an
//    explicit guard band.
//
// 2. Feature pre-binning (FeatureBinner) for histogram-based split search:
//    quantize each feature to <= max_bins codes whose boundaries are
//    candidate split thresholds, so a boosting round scans O(n + bins) per
//    feature instead of the exact O(n log n) sort scan. The fast kernel
//    tier (linalg::KernelPolicy::kFast) routes GBT / ordered-boost fits
//    through these codes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/units.hpp"
#include "linalg/matrix.hpp"

namespace vmincqr::core {

using linalg::Matrix;
using linalg::Vector;

struct BinningConfig {
  /// Candidate supply voltages (volts), strictly ascending. A chip whose
  /// requirement exceeds the top bin is "unbinnable" (scrapped or derated).
  std::vector<double> bin_voltages;
};

struct BinningResult {
  /// Bin index per chip, or -1 for unbinnable chips.
  std::vector<int> bin_of_chip;
  /// Chips per bin (size = bin_voltages.size()).
  std::vector<std::size_t> bin_counts;
  std::size_t n_unbinnable = 0;
  /// Mean allocated supply voltage over binnable chips (power proxy).
  double mean_voltage = 0.0;
  /// Fraction of binnable chips whose TRUE Vmin exceeds their bin voltage
  /// (field failures). Requires truth; 0 when truth unavailable.
  double violation_rate = 0.0;
};

/// Bins chips by a per-chip required voltage (e.g. a calibrated interval
/// upper bound, or prediction + guard band): chip -> lowest bin voltage
/// >= requirement. If `truth` is non-empty it must match the requirement
/// length and is used to compute the violation rate.
/// Throws std::invalid_argument on empty/unsorted bins or length mismatch.
BinningResult bin_chips(const Vector& required_voltage, const Vector& truth,
                        const BinningConfig& config);

/// Convenience: interval-based binning from calibrated upper bounds.
inline BinningResult bin_by_interval(const Vector& upper, const Vector& truth,
                                     const BinningConfig& config) {
  return bin_chips(upper, truth, config);
}

/// Convenience: point-based binning with a uniform guard band (mV, as in
/// screening.hpp).
BinningResult bin_by_point(const Vector& predicted, Millivolt guard_band,
                           const Vector& truth, const BinningConfig& config);

/// Mean supply saved per chip (volts) by scheme A relative to scheme B,
/// counting only chips binnable under both. Positive = A uses less voltage.
double mean_voltage_saving(const BinningResult& a, const BinningResult& b,
                           const BinningConfig& config);

/// Per-feature quantizer for histogram split search.
///
/// fit() learns ascending bin EDGES per feature — midpoints between adjacent
/// distinct values, quantile-thinned to at most max_bins - 1 of them — and
/// bin_of() maps a value to its bin code. The invariant that makes histogram
/// splits equivalent to threshold splits:
///
///   bin_of(f, v) <= b   <=>   v <= edge(f, b)
///
/// so "bins 0..b go left" IS the tree split `x <= edge(f, b)`, and a fitted
/// tree stores ordinary thresholds — prediction never sees the binner.
///
/// Everything is deterministic (pure function of the training matrix), but
/// candidate thinning means the chosen splits can differ from the exact
/// sort-based scan: fit paths using codes are fast-tier by construction.
class FeatureBinner {
 public:
  /// Learns edges from every column of x. max_bins >= 2 (throws otherwise);
  /// a constant feature gets zero edges (single bin, never splittable).
  void fit(const Matrix& x, std::size_t max_bins = kDefaultMaxBins);

  /// Adopts explicit per-feature ascending edge lists (e.g. ordered-boost
  /// borders). Throws std::invalid_argument on unsorted or non-finite edges
  /// or a feature with > 65535 edges (codes are uint16).
  void import_edges(std::vector<std::vector<double>> edges);

  [[nodiscard]] bool fitted() const noexcept { return !edges_.empty(); }
  [[nodiscard]] std::size_t n_features() const noexcept {
    return edges_.size();
  }
  /// Bins for feature f (edge count + 1).
  [[nodiscard]] std::size_t n_bins(std::size_t feature) const {
    return edges_[feature].size() + 1;
  }
  [[nodiscard]] const std::vector<double>& edges(std::size_t feature) const {
    return edges_[feature];
  }
  /// The split threshold bin boundary b stands for (b < n_bins(f) - 1).
  [[nodiscard]] double edge(std::size_t feature, std::size_t b) const {
    return edges_[feature][b];
  }

  /// Bin code of one value: the number of edges < value.
  [[nodiscard]] std::uint16_t bin_of(std::size_t feature, double value) const;

  /// Row-major (rows x n_features) code matrix for x. Throws
  /// std::invalid_argument when x.cols() != n_features().
  [[nodiscard]] std::vector<std::uint16_t> bin(const Matrix& x) const;

  static constexpr std::size_t kDefaultMaxBins = 64;

 private:
  std::vector<std::vector<double>> edges_;  ///< ascending, per feature
};

}  // namespace vmincqr::core
