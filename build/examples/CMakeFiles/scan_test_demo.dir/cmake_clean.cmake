file(REMOVE_RECURSE
  "CMakeFiles/scan_test_demo.dir/scan_test_demo.cpp.o"
  "CMakeFiles/scan_test_demo.dir/scan_test_demo.cpp.o.d"
  "scan_test_demo"
  "scan_test_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scan_test_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
