// Blocking-synchronization primitives for the serving layer, wrapped so the
// raw std threading machinery stays confined to src/parallel/ (the
// raw-thread and atomic-outside-parallel lint rules enforce that boundary).
//
// These are NOT for compute code: the deterministic pool primitives in
// parallel_for.hpp remain the only sanctioned way to parallelize numeric
// work, and nothing here may appear inside a pool task. The daemon layer
// composes these for control-plane concurrency only — request hand-off,
// lifecycle gating, artifact swaps — where blocking is the point and no
// floating-point result depends on scheduling.
#pragma once

#include <condition_variable>
#include <mutex>

namespace vmincqr::parallel {

/// Plain mutual exclusion for control-plane state (queue bookkeeping, LRU
/// maps, stats counters). Lockable with ScopedLock below.
class Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() { mutex_.lock(); }
  void unlock() { mutex_.unlock(); }

 private:
  friend class ConditionVar;
  std::mutex mutex_;
};

/// RAII lock over Mutex; never copied, never moved, never unlocked early.
class ScopedLock {
 public:
  explicit ScopedLock(Mutex& mutex) : mutex_(mutex) { mutex_.lock(); }
  ~ScopedLock() { mutex_.unlock(); }
  ScopedLock(const ScopedLock&) = delete;
  ScopedLock& operator=(const ScopedLock&) = delete;

 private:
  Mutex& mutex_;
};

/// One-shot completion event: set() exactly once, any number of waiters.
/// The daemon fulfils one per admitted request; shed requests are set
/// before the ticket is handed back, so wait() never blocks on them.
class OneShotEvent {
 public:
  /// Marks the event set and wakes every waiter. Idempotent.
  void set();
  /// Blocks until set() has happened (returns immediately afterwards).
  void wait() const;
  [[nodiscard]] bool is_set() const;

 private:
  mutable std::mutex mutex_;
  mutable std::condition_variable cv_;
  bool set_ = false;
};

/// Reusable open/closed gate, open on construction. wait_open() blocks while
/// closed. The daemon parks its batcher on one for pause(): closing the gate
/// holds the NEXT batch, it never interrupts one in flight.
class Gate {
 public:
  void open();
  void close();
  void wait_open() const;
  [[nodiscard]] bool is_open() const;

 private:
  mutable std::mutex mutex_;
  mutable std::condition_variable cv_;
  bool open_ = true;
};

}  // namespace vmincqr::parallel
