#include "netlist/netlist.hpp"

#include <algorithm>
#include <stdexcept>

#include "netlist/cell.hpp"

namespace vmincqr::netlist {

Netlist::Netlist(std::size_t n_inputs, std::vector<Gate> gates,
                 std::vector<std::size_t> outputs)
    : n_inputs_(n_inputs), gates_(std::move(gates)), outputs_(std::move(outputs)) {
  if (n_inputs_ == 0) {
    throw std::invalid_argument("Netlist: need at least one input");
  }
  const auto& library = standard_cell_library();
  for (std::size_t g = 0; g < gates_.size(); ++g) {
    const std::size_t node = n_inputs_ + g;
    if (gates_[g].cell >= library.size()) {
      throw std::invalid_argument("Netlist: unknown cell type");
    }
    if (gates_[g].fanins.empty()) {
      throw std::invalid_argument("Netlist: gate with no fanins");
    }
    for (auto fanin : gates_[g].fanins) {
      if (fanin >= node) {
        throw std::invalid_argument(
            "Netlist: fanin violates topological order");
      }
    }
  }
  if (outputs_.empty()) {
    throw std::invalid_argument("Netlist: need at least one output");
  }
  for (auto out : outputs_) {
    if (out >= n_nodes()) {
      throw std::invalid_argument("Netlist: output node out of range");
    }
  }
}

const Gate& Netlist::gate_at(std::size_t node) const {
  if (node < n_inputs_ || node >= n_nodes()) {
    throw std::out_of_range("Netlist::gate_at: not a gate node");
  }
  return gates_[node - n_inputs_];
}

Netlist Netlist::random(const RandomNetlistConfig& config, rng::Rng& rng) {
  if (config.n_gates == 0 || config.n_inputs == 0 || config.n_outputs == 0) {
    throw std::invalid_argument("Netlist::random: empty configuration");
  }
  if (config.max_fanin == 0) {
    throw std::invalid_argument("Netlist::random: max_fanin must be >= 1");
  }
  const auto& library = standard_cell_library();

  std::vector<Gate> gates;
  gates.reserve(config.n_gates);
  for (std::size_t g = 0; g < config.n_gates; ++g) {
    const std::size_t node = config.n_inputs + g;
    Gate gate;
    gate.cell = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(library.size()) - 1));
    const auto n_fanin = static_cast<std::size_t>(
        rng.uniform_int(1, static_cast<std::int64_t>(config.max_fanin)));
    const std::size_t lo =
        node > config.window ? node - config.window : std::size_t{0};
    for (std::size_t f = 0; f < n_fanin; ++f) {
      gate.fanins.push_back(static_cast<std::size_t>(
          rng.uniform_int(static_cast<std::int64_t>(lo),
                          static_cast<std::int64_t>(node) - 1)));
    }
    gate.mismatch_sensitivity = rng.uniform(0.5, 1.5);
    gate.aging_weight = rng.uniform(0.3, 1.7);
    gates.push_back(std::move(gate));
  }

  // Outputs: the last gates (deepest logic) plus a few random earlier nodes.
  std::vector<std::size_t> outputs;
  const std::size_t n_nodes = config.n_inputs + config.n_gates;
  const std::size_t deep =
      std::min<std::size_t>(config.n_outputs, config.n_gates);
  for (std::size_t i = 0; i < deep; ++i) outputs.push_back(n_nodes - 1 - i);
  std::sort(outputs.begin(), outputs.end());
  outputs.erase(std::unique(outputs.begin(), outputs.end()), outputs.end());

  return Netlist(config.n_inputs, std::move(gates), std::move(outputs));
}

}  // namespace vmincqr::netlist
