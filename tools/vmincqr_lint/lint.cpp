#include "lint.hpp"

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <tuple>

#include "concurrency.hpp"
#include "core/experiment.hpp"
#include "dataflow.hpp"
#include "token.hpp"

namespace vmincqr::lint {
namespace {

// ---------------------------------------------------------------------------
// Token rules
// ---------------------------------------------------------------------------

bool is_header(const std::string& path) {
  return path.size() >= 4 && path.compare(path.size() - 4, 4, ".hpp") == 0;
}

struct Ctx {
  const std::string& path;
  const Unit& unit;
  bool header;
  std::vector<Diagnostic>& out;

  void report(const char* rule, std::size_t line, std::string message) const {
    out.push_back({path, line, rule, std::move(message)});
  }
};

/// pragma-once: every header's first preprocessor directive must be
/// `#pragma once`; a header with no include guard at all also fires.
void rule_pragma_once(const Ctx& ctx) {
  if (!ctx.header) return;
  if (!ctx.unit.directives.empty() &&
      ctx.unit.directives.front().second == "#pragma once") {
    return;
  }
  const std::size_t line =
      ctx.unit.directives.empty() ? 1 : ctx.unit.directives.front().first;
  ctx.report("pragma-once", line,
             "header must open with '#pragma once' (before any other "
             "directive)");
}

/// using-namespace-header: `using namespace` in a header leaks into every
/// includer and defeats the strong-type qualification this repo relies on.
void rule_using_namespace(const Ctx& ctx) {
  if (!ctx.header) return;
  const auto& t = ctx.unit.tokens;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].text == "using" && t[i + 1].text == "namespace") {
      ctx.report("using-namespace-header", t[i].line,
                 "'using namespace' is forbidden in headers");
    }
  }
}

/// no-rand: libc rand()/srand() is not reproducible across platforms; all
/// randomness must flow through rng::Rng so experiments are seed-stable.
void rule_no_rand(const Ctx& ctx) {
  const auto& t = ctx.unit.tokens;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent) continue;
    if (t[i].text != "rand" && t[i].text != "srand") continue;
    if (t[i + 1].text != "(") continue;
    if (i > 0 && (t[i - 1].text == "." || t[i - 1].text == "->")) continue;
    // An identifier right before means this is a declaration ("int rand();"),
    // not a call; std::rand() still fires because the previous token is "::",
    // and "return rand()" fires because statement keywords are not types.
    static const std::set<std::string> stmt_keywords = {
        "return", "co_return", "co_yield", "else",  "do",    "case",
        "throw",  "new",       "delete",   "sizeof", "while", "and",
        "or",     "not"};
    if (i > 0 && t[i - 1].kind == TokKind::kIdent &&
        stmt_keywords.count(t[i - 1].text) == 0) {
      continue;
    }
    ctx.report("no-rand", t[i].line,
               "use rng::Rng instead of libc " + t[i].text + "()");
  }
}

/// no-endl: std::endl flushes on every call; "\n" is what hot logging paths
/// want (performance-avoid-endl, promoted to a hard repo rule).
void rule_no_endl(const Ctx& ctx) {
  for (const auto& tok : ctx.unit.tokens) {
    if (tok.kind == TokKind::kIdent && tok.text == "endl") {
      ctx.report("no-endl", tok.line, "use \"\\n\" instead of std::endl");
    }
  }
}

/// float-equality: ==/!= against a floating literal is almost always a
/// stability bug in statistical code (conformal ranks, aging power laws).
/// Exact sentinel comparisons must carry an allow() with a justification.
void rule_float_equality(const Ctx& ctx) {
  const auto& t = ctx.unit.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].text != "==" && t[i].text != "!=") continue;
    const bool lhs = i > 0 && t[i - 1].kind == TokKind::kFloat;
    const bool rhs = i + 1 < t.size() && t[i + 1].kind == TokKind::kFloat;
    if (!lhs && !rhs) continue;
    ctx.report("float-equality", t[i].line,
               "'" + t[i].text +
                   "' against a floating literal; compare with a tolerance "
                   "or justify with an allow()");
  }
}

/// Marks tokens that sit inside a brace block opened *within* the innermost
/// parentheses — a lambda body passed as a call argument. Such tokens have
/// paren_depth >= 1 but are statements, not parameter declarations, so the
/// by-value parameter rules must skip them.
std::vector<bool> lambda_body_mask(const std::vector<Token>& t) {
  std::vector<bool> mask(t.size(), false);
  std::vector<int> brace_at_paren;  // brace depth when each '(' opened
  int brace = 0;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].text == "(") brace_at_paren.push_back(brace);
    if (t[i].text == ")" && !brace_at_paren.empty()) brace_at_paren.pop_back();
    if (t[i].text == "{") ++brace;
    if (t[i].text == "}" && brace > 0) --brace;
    mask[i] = !brace_at_paren.empty() && brace > brace_at_paren.back();
  }
  return mask;
}

const std::set<std::string>& banned_double_names() {
  static const std::set<std::string> names = {"tau", "alpha", "vmin", "temp",
                                              "temperature"};
  return names;
}

/// raw-double-param: public signatures must carry the strong types from
/// core/units.hpp, not raw doubles named after a unit or level.
void rule_raw_double_param(const Ctx& ctx) {
  if (!ctx.header) return;
  const auto& t = ctx.unit.tokens;
  const std::vector<bool> in_lambda = lambda_body_mask(t);
  for (std::size_t i = 0; i + 2 < t.size(); ++i) {
    if (t[i].text != "double" || t[i].paren_depth < 1 || in_lambda[i]) continue;
    if (t[i + 1].kind != TokKind::kIdent) continue;
    if (banned_double_names().count(t[i + 1].text) == 0) continue;
    const std::string& after = t[i + 2].text;
    if (after != "," && after != ")" && after != "=") continue;
    ctx.report("raw-double-param", t[i].line,
               "parameter 'double " + t[i + 1].text +
                   "' must use a strong type from core/units.hpp "
                   "(QuantileLevel, MiscoverageAlpha, Volt, Celsius, ...)");
  }
}

/// matrix-by-value: a Matrix parameter taken by value copies O(n*d) data on
/// every call; pass `const Matrix&` (or a span) instead.
void rule_matrix_by_value(const Ctx& ctx) {
  const auto& t = ctx.unit.tokens;
  const std::vector<bool> in_lambda = lambda_body_mask(t);
  for (std::size_t i = 0; i + 2 < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent || t[i].text != "Matrix") continue;
    if (t[i].paren_depth < 1 || in_lambda[i]) continue;
    if (t[i + 1].kind != TokKind::kIdent) continue;
    const std::string& after = t[i + 2].text;
    if (after != "," && after != ")" && after != "=") continue;
    ctx.report("matrix-by-value", t[i].line,
               "parameter '" + t[i + 1].text +
                   "' takes Matrix by value; pass 'const Matrix&'");
  }
}

const std::set<std::string>& entry_point_names() {
  static const std::set<std::string> names = {
      "fit",          "fit_with_split", "fit_transform", "predict",
      "predict_interval", "predict_point", "predict_sigma", "calibrate"};
  return names;
}

/// contract-coverage: every out-of-line definition of a public fit/predict/
/// calibrate entry point must validate its inputs — a VMINCQR_* contract
/// macro, an explicit throw, or a call to a shared `check_*` validation
/// helper (e.g. Regressor::check_fit_args, which wraps the macros) — so the
/// coverage guarantee cannot be fed malformed data silently.
void rule_contract_coverage(const Ctx& ctx) {
  if (ctx.header) return;
  const auto& t = ctx.unit.tokens;
  for (std::size_t i = 2; i + 1 < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent || t[i].paren_depth != 0) continue;
    if (entry_point_names().count(t[i].text) == 0) continue;
    if (t[i - 1].text != "::") continue;
    if (t[i + 1].text != "(") continue;
    // Skip the parameter list.
    std::size_t j = i + 1;
    int depth = 0;
    for (; j < t.size(); ++j) {
      if (t[j].text == "(") ++depth;
      if (t[j].text == ")" && --depth == 0) break;
    }
    if (j >= t.size()) return;
    // Accept trailing qualifiers, then require a body.
    ++j;
    while (j < t.size() &&
           (t[j].text == "const" || t[j].text == "noexcept" ||
            t[j].text == "override" || t[j].text == "final")) {
      ++j;
    }
    if (j >= t.size() || t[j].text != "{") continue;  // declaration only
    // Scan the body for a contract.
    int braces = 0;
    bool has_contract = false;
    for (; j < t.size(); ++j) {
      if (t[j].text == "{") ++braces;
      if (t[j].text == "}" && --braces == 0) break;
      if (t[j].kind == TokKind::kIdent &&
          (t[j].text.rfind("VMINCQR_", 0) == 0 ||
           t[j].text.rfind("check_", 0) == 0 || t[j].text == "throw")) {
        has_contract = true;
      }
    }
    if (!has_contract) {
      ctx.report("contract-coverage", t[i].line,
                 "entry point '" + t[i - 2].text + "::" + t[i].text +
                     "' has no VMINCQR_REQUIRE/CHECK_SHAPE contract, "
                     "check_* helper call, or throw; validate inputs at "
                     "the public boundary");
    }
  }
}

const std::set<std::string>& raw_thread_names() {
  static const std::set<std::string> names = {
      "thread",       "jthread", "async",   "atomic",
      "atomic_flag",  "mutex",   "shared_mutex", "recursive_mutex",
      "condition_variable", "condition_variable_any",
      "future",       "promise", "packaged_task",
      "barrier",      "latch",   "counting_semaphore", "binary_semaphore"};
  return names;
}

/// raw-thread: raw std threading primitives are only legal inside
/// src/parallel/ — everywhere else concurrency must go through the
/// deterministic pool (parallel_for / parallel_deterministic_reduce), so
/// the bit-exactness contract stays auditable in one directory.
void rule_raw_thread(const Ctx& ctx) {
  if (ctx.path.find("parallel/") != std::string::npos) return;
  const auto& t = ctx.unit.tokens;
  for (std::size_t i = 0; i + 2 < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent || t[i].text != "std") continue;
    if (t[i + 1].text != "::") continue;
    if (raw_thread_names().count(t[i + 2].text) == 0) continue;
    ctx.report("raw-thread", t[i].line,
               "raw 'std::" + t[i + 2].text +
                   "' outside src/parallel/; use the deterministic pool "
                   "(parallel/parallel_for.hpp) so thread-count invariance "
                   "stays provable");
  }
}

}  // namespace

const std::vector<RuleInfo>& rule_table() {
  static const std::vector<RuleInfo> table = {
      {"pragma-once", "headers must open with #pragma once"},
      {"using-namespace-header", "no 'using namespace' in headers"},
      {"no-rand", "libc rand()/srand() breaks seed-stable experiments"},
      {"no-endl", "std::endl flushes; use \"\\n\""},
      {"float-equality",
       "no ==/!= against floating literals without a justification"},
      {"raw-double-param",
       "public signatures use core/units.hpp strong types, not raw doubles "
       "named tau/alpha/vmin/temp"},
      {"matrix-by-value", "Matrix parameters pass by const reference"},
      {"contract-coverage",
       "fit/predict/calibrate definitions carry a VMINCQR_* contract or "
       "throw"},
      {"calib-leakage",
       "calibration rows must never reach fit(); leakage voids the "
       "conformal coverage guarantee"},
      {"seed-reuse",
       "one seed must not construct two RNGs in one scope; correlated "
       "streams break exchangeability"},
      {"unseeded-rng",
       "every RNG takes an explicit seed; std::random_device and "
       "default-constructed engines are nondeterministic"},
      {"raw-thread",
       "raw std::thread/std::async/std::atomic only inside src/parallel/; "
       "all other code uses the deterministic pool"},
      {"shared-mutable-capture",
       "no unindexed writes to by-reference captures inside parallel bodies; "
       "concurrent chunks race on shared state"},
      {"nondeterministic-reduce",
       "no accumulation into by-reference captures inside parallel bodies; "
       "reductions go through parallel_deterministic_reduce's fixed-order "
       "combine"},
      {"rng-in-parallel",
       "RNGs inside parallel bodies must be forked per chunk; otherwise the "
       "stream order depends on the schedule"},
      {"unordered-iteration",
       "no iteration over std::unordered_{map,set}; hash order is not "
       "reproducible across platforms or loads"},
      {"clock-in-hot-path",
       "wall-clock reads only in bench/ and tools/; timing must never steer "
       "library results"},
      {"atomic-outside-parallel",
       "<atomic>/<mutex>-family includes and unqualified atomic uses only "
       "inside src/parallel/ (closes the raw-thread gap)"},
  };
  return table;
}

const std::vector<RuleInfo>& graph_rule_table() {
  static const std::vector<RuleInfo> table = {
      {"layer-violation",
       "include edges must follow the layering DAG declared in layers.toml"},
      {"include-cycle", "project headers must form an acyclic include graph"},
      {"unused-include",
       "a direct include must provide at least one name the TU uses "
       "(IWYU-lite)"},
  };
  return table;
}

const std::vector<RuleInfo>& callgraph_rule_table() {
  static const std::vector<RuleInfo> table = {
      {"mutable-static-in-parallel",
       "no non-const function-local statics in functions reachable from "
       "parallel bodies; concurrent chunks race on their state"},
      {"call-layer-violation",
       "modules listed in layers.toml [call_forbidden] must not transitively "
       "call the named training symbols, even through legal includes"},
      {"fp-narrowing",
       "no double-to-float narrowing in bit_exact-tier functions on "
       "predict/fit paths; declare numeric-tier(tolerance) to opt out"},
      {"float-accumulator",
       "no float loop accumulators in bit_exact-tier functions on "
       "predict/fit paths; accumulate in double or opt into tolerance tier"},
      {"unguarded-division",
       "divisors on predict/fit paths must be compared, contract-checked, or "
       "pinned nonzero before the division (applies at every tier)"},
      {"numeric-tier-manifest",
       "every numeric-tier(tolerance) annotation must be mirrored in the "
       "committed tier manifest, and the manifest must carry no stale "
       "entries"},
  };
  return table;
}

const std::vector<RuleInfo>& hotpath_rule_table() {
  static const std::vector<RuleInfo> table = {
      {"alloc-in-hot-loop",
       "no heavy container construction or unreserved growth inside loops "
       "(incl. parallel bodies) of serve/predict-reachable functions; hoist "
       "the buffer or grant hot-path(allow-alloc) via the manifest"},
      {"heavy-pass-by-value",
       "Matrix/Vector/std::vector/std::string parameters of hot-reachable "
       "functions must not be copied by value when never mutated or moved; "
       "take const references"},
      {"temporary-materialization",
       "a freshly materialized container (row/col/take_*/row_block) must "
       "not be immediately indexed or reduced; read through the source "
       "container instead of copying it"},
      {"missed-reserve",
       "push_back growth loops with a visible .rows()/.size()/.cols() trip "
       "count must reserve first; the call is mechanically derivable and "
       "--fix inserts it"},
      {"virtual-in-inner-loop",
       "no virtual dispatch inside innermost loops of hot functions; "
       "per-element indirect calls block inlining and vectorization — batch "
       "or devirtualize"},
      {"hot-path-manifest",
       "every hot-path(allow-alloc) annotation must be mirrored in the "
       "committed hot-path manifest, and the manifest must carry no stale "
       "entries"},
  };
  return table;
}

std::vector<Diagnostic> lint_source(const std::string& path,
                                    const std::string& content,
                                    const LintPhases& phases) {
  const Unit unit = tokenize(content);
  std::vector<Diagnostic> raw;
  Ctx ctx{path, unit, is_header(path), raw};
  if (!phases.per_tu) {
    if (phases.concurrency) {
      for (auto& d : concurrency_rules(path, unit)) raw.push_back(std::move(d));
    }
    std::vector<Diagnostic> kept;
    for (auto& d : raw) {
      if (!is_allowed(unit, d.rule, d.line)) kept.push_back(std::move(d));
    }
    std::stable_sort(kept.begin(), kept.end(),
                     [](const Diagnostic& a, const Diagnostic& b) {
                       return a.line < b.line;
                     });
    return kept;
  }
  rule_pragma_once(ctx);
  rule_using_namespace(ctx);
  rule_no_rand(ctx);
  rule_no_endl(ctx);
  rule_float_equality(ctx);
  rule_raw_double_param(ctx);
  rule_matrix_by_value(ctx);
  rule_contract_coverage(ctx);
  rule_raw_thread(ctx);
  for (auto& d : dataflow_rules(path, unit)) raw.push_back(std::move(d));
  if (phases.concurrency) {
    for (auto& d : concurrency_rules(path, unit)) raw.push_back(std::move(d));
  }

  // Apply per-line suppressions: same line or the line directly above.
  std::vector<Diagnostic> kept;
  for (auto& d : raw) {
    if (!is_allowed(unit, d.rule, d.line)) kept.push_back(std::move(d));
  }
  std::stable_sort(kept.begin(), kept.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     return a.line < b.line;
                   });
  return kept;
}

std::vector<Diagnostic> lint_file(const std::string& path,
                                  const LintPhases& phases) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("vmincqr_lint: cannot read " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return lint_source(path, ss.str(), phases);
}

std::vector<Diagnostic> lint_files(const std::vector<std::string>& paths,
                                   const LintPhases& phases) {
  // Dogfood the deterministic pool: one task per TU. Each task is a pure
  // function of its file, and the final order is a total sort, so the
  // merged diagnostics are byte-identical at every thread width (asserted
  // by the SARIF invariance test).
  const auto per_file = core::parallel_map<std::vector<Diagnostic>>(
      paths.size(),
      [&](std::size_t i) { return lint_file(paths[i], phases); });
  std::vector<Diagnostic> out;
  for (const auto& ds : per_file) out.insert(out.end(), ds.begin(), ds.end());
  std::sort(out.begin(), out.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              return std::tie(a.file, a.line, a.rule, a.message) <
                     std::tie(b.file, b.line, b.rule, b.message);
            });
  return out;
}

bool is_lintable(const std::string& path) {
  const auto dot = path.rfind('.');
  if (dot == std::string::npos) return false;
  const std::string ext = path.substr(dot);
  return ext == ".hpp" || ext == ".cpp";
}

std::string format(const Diagnostic& d) {
  return d.file + ":" + std::to_string(d.line) + ": [" + d.rule + "] " +
         d.message;
}

}  // namespace vmincqr::lint
