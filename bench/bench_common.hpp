// Shared helpers for the reproduction bench binaries: the default synthetic
// dataset (156 chips, Table II shape), the scenario grids the paper sweeps,
// and small printing utilities.
#pragma once

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/report.hpp"
#include "silicon/dataset_gen.hpp"

namespace vmincqr::bench {

/// The full-size synthetic industrial dataset used by every reproduction
/// bench (regenerated deterministically; ~0.1 s).
inline silicon::GeneratedDataset make_paper_dataset() {
  return silicon::generate_dataset(silicon::GeneratorConfig{});
}

/// Default experiment configuration: alpha = 0.1, 4-fold CV, 75/25
/// conformal split — the paper's Sec. IV-B settings.
inline core::ExperimentConfig paper_experiment_config() {
  return core::ExperimentConfig{};
}

/// All (read point, temperature) cells of Table III / Fig. 2.
inline std::vector<core::Scenario> paper_scenario_grid(
    core::FeatureSet feature_set) {
  std::vector<core::Scenario> scenarios;
  for (double t : silicon::standard_read_points()) {
    for (double temp : silicon::standard_temperatures()) {
      scenarios.push_back({t, temp, feature_set});
    }
  }
  return scenarios;
}

/// Wall-clock helper for bench footers.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

inline std::string temp_label(double temperature_c) {
  return std::to_string(static_cast<int>(temperature_c)) + "C";
}

inline std::string hours_label(double hours) {
  return std::to_string(static_cast<int>(hours)) + "h";
}

}  // namespace vmincqr::bench
