# Empty compiler generated dependencies file for fig2_point_prediction.
# This may be replaced when dependencies are built.
