#include "token.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace vmincqr::lint {
namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

void record_allows(Unit& unit, const std::string& comment, std::size_t line) {
  const std::string tag = "vmincqr-lint:";
  const auto at = comment.find(tag);
  if (at == std::string::npos) return;
  auto open = comment.find("allow(", at);
  if (open == std::string::npos) return;
  const auto close = comment.find(')', open);
  if (close == std::string::npos) return;
  std::string list = comment.substr(open + 6, close - open - 6);
  std::string id;
  std::stringstream ss(list);
  while (std::getline(ss, id, ',')) {
    const auto b = id.find_first_not_of(" \t");
    const auto e = id.find_last_not_of(" \t");
    if (b == std::string::npos) continue;
    unit.allows[line].insert(id.substr(b, e - b + 1));
  }
}

void record_numeric_tier(Unit& unit, const std::string& comment,
                         std::size_t line) {
  const std::string tag = "vmincqr:";
  const auto at = comment.find(tag);
  if (at == std::string::npos) return;
  const std::string marker = "numeric-tier(";
  const auto open = comment.find(marker, at);
  if (open == std::string::npos) return;
  const auto close = comment.find(')', open);
  if (close == std::string::npos) return;
  std::string tier = comment.substr(open + marker.size(),
                                    close - open - marker.size());
  const auto b = tier.find_first_not_of(" \t");
  const auto e = tier.find_last_not_of(" \t");
  if (b == std::string::npos) return;
  tier = tier.substr(b, e - b + 1);
  if (tier == "bit_exact" || tier == "tolerance") {
    unit.numeric_tiers[line] = tier;
  }
}

void record_hot_path_grants(Unit& unit, const std::string& comment,
                            std::size_t line) {
  const std::string tag = "vmincqr:";
  const auto at = comment.find(tag);
  if (at == std::string::npos) return;
  const std::string marker = "hot-path(";
  const auto open = comment.find(marker, at);
  if (open == std::string::npos) return;
  const auto close = comment.find(')', open);
  if (close == std::string::npos) return;
  const std::string list =
      comment.substr(open + marker.size(), close - open - marker.size());
  std::string grant;
  std::stringstream ss(list);
  while (std::getline(ss, grant, ',')) {
    const auto b = grant.find_first_not_of(" \t");
    const auto e = grant.find_last_not_of(" \t");
    if (b == std::string::npos) continue;
    grant = grant.substr(b, e - b + 1);
    if (grant == "allow-alloc") unit.hot_path_grants[line].insert(grant);
  }
}

/// Normalizes a directive body: collapses runs of whitespace to one space.
std::string squeeze(const std::string& s) {
  std::string out;
  bool in_ws = false;
  for (char c : s) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      in_ws = true;
      continue;
    }
    if (in_ws && !out.empty()) out.push_back(' ');
    in_ws = false;
    out.push_back(c);
  }
  return out;
}

}  // namespace

Unit tokenize(const std::string& src) {
  Unit unit;
  std::size_t line = 1;
  int depth = 0;
  std::size_t i = 0;
  const std::size_t n = src.size();
  bool at_line_start = true;

  auto advance_newline = [&](char c) {
    if (c == '\n') {
      ++line;
      at_line_start = true;
    }
  };

  while (i < n) {
    const char c = src[i];
    // Whitespace.
    if (std::isspace(static_cast<unsigned char>(c))) {
      advance_newline(c);
      ++i;
      continue;
    }
    // Preprocessor directive: consume the logical line (with continuations).
    if (c == '#' && at_line_start) {
      const std::size_t start_line = line;
      std::string text;
      while (i < n) {
        if (src[i] == '\\' && i + 1 < n && src[i + 1] == '\n') {
          ++line;
          i += 2;
          continue;
        }
        if (src[i] == '\n') break;
        // Strip trailing // comment from the directive (may hold an allow).
        if (src[i] == '/' && i + 1 < n && src[i + 1] == '/') {
          std::string comment;
          while (i < n && src[i] != '\n') comment.push_back(src[i++]);
          record_allows(unit, comment, line);
          record_numeric_tier(unit, comment, line);
          record_hot_path_grants(unit, comment, line);
          break;
        }
        text.push_back(src[i++]);
      }
      unit.directives.emplace_back(start_line, squeeze(text));
      continue;
    }
    at_line_start = false;
    // Line comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      std::string comment;
      while (i < n && src[i] != '\n') comment.push_back(src[i++]);
      record_allows(unit, comment, line);
      record_numeric_tier(unit, comment, line);
      record_hot_path_grants(unit, comment, line);
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      const std::size_t start_line = line;
      std::string comment;
      i += 2;
      while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) {
        comment.push_back(src[i]);
        advance_newline(src[i]);
        ++i;
      }
      i = std::min(n, i + 2);
      record_allows(unit, comment, start_line);
      record_numeric_tier(unit, comment, start_line);
      record_hot_path_grants(unit, comment, start_line);
      continue;
    }
    // Raw string literal.
    if (c == 'R' && i + 1 < n && src[i + 1] == '"') {
      std::size_t j = i + 2;
      std::string delim;
      while (j < n && src[j] != '(') delim.push_back(src[j++]);
      const std::string closer = ")" + delim + "\"";
      const auto end = src.find(closer, j);
      for (std::size_t k = i; k < std::min(n, end); ++k) {
        advance_newline(src[k]);
      }
      i = end == std::string::npos ? n : end + closer.size();
      continue;
    }
    // String / char literal.
    if (c == '"' || c == '\'') {
      const char quote = c;
      ++i;
      while (i < n && src[i] != quote) {
        if (src[i] == '\\' && i + 1 < n) ++i;
        advance_newline(src[i]);
        ++i;
      }
      ++i;
      continue;
    }
    // Identifier.
    if (ident_start(c)) {
      const std::size_t start = i;
      std::string text;
      while (i < n && ident_char(src[i])) text.push_back(src[i++]);
      unit.tokens.push_back({TokKind::kIdent, std::move(text), line, depth,
                             start});
      continue;
    }
    // Number (integer or floating literal, incl. exponents and suffixes).
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(src[i + 1])))) {
      const std::size_t start = i;
      std::string text;
      bool is_hex = false;
      while (i < n) {
        const char d = src[i];
        if (std::isalnum(static_cast<unsigned char>(d)) || d == '.' ||
            d == '\'') {
          if (text.size() == 1 && text[0] == '0' && (d == 'x' || d == 'X')) {
            is_hex = true;
          }
          text.push_back(d);
          ++i;
          continue;
        }
        if ((d == '+' || d == '-') && !text.empty()) {
          const char prev = text.back();
          const bool exp = is_hex ? (prev == 'p' || prev == 'P')
                                  : (prev == 'e' || prev == 'E');
          if (exp) {
            text.push_back(d);
            ++i;
            continue;
          }
        }
        break;
      }
      const bool is_float =
          !is_hex && (text.find('.') != std::string::npos ||
                      text.find('e') != std::string::npos ||
                      text.find('E') != std::string::npos);
      unit.tokens.push_back(
          {is_float ? TokKind::kFloat : TokKind::kInt, std::move(text), line,
           depth, start});
      continue;
    }
    // Punctuation: greedily take two-char operators we care about.
    if (c == '(') {
      unit.tokens.push_back({TokKind::kPunct, "(", line, depth, i});
      ++depth;
      ++i;
      continue;
    }
    if (c == ')') {
      depth = std::max(0, depth - 1);
      unit.tokens.push_back({TokKind::kPunct, ")", line, depth, i});
      ++i;
      continue;
    }
    std::string text(1, c);
    if (i + 1 < n) {
      const char d = src[i + 1];
      if ((c == ':' && d == ':') || (c == '-' && d == '>') ||
          ((c == '=' || c == '!' || c == '<' || c == '>') && d == '=')) {
        text.push_back(d);
      }
    }
    const std::size_t start = i;
    i += text.size();
    unit.tokens.push_back({TokKind::kPunct, std::move(text), line, depth,
                           start});
  }
  return unit;
}

bool is_allowed(const Unit& unit, const std::string& rule, std::size_t line) {
  for (std::size_t probe : {line, line > 0 ? line - 1 : 0}) {
    const auto it = unit.allows.find(probe);
    if (it != unit.allows.end() && it->second.count(rule) > 0) return true;
  }
  return false;
}

std::string numeric_tier_at(const Unit& unit, std::size_t line) {
  for (std::size_t probe : {line, line > 0 ? line - 1 : 0}) {
    const auto it = unit.numeric_tiers.find(probe);
    if (it != unit.numeric_tiers.end()) return it->second;
  }
  return "";
}

std::set<std::string> hot_path_grants_at(const Unit& unit, std::size_t line) {
  for (std::size_t probe : {line, line > 0 ? line - 1 : 0}) {
    const auto it = unit.hot_path_grants.find(probe);
    if (it != unit.hot_path_grants.end()) return it->second;
  }
  return {};
}

}  // namespace vmincqr::lint
