// CV+ (cross-conformal / K-fold jackknife+, Barber et al. 2021) — an
// extension beyond the paper. Unlike split CP it wastes no data on a held-out
// calibration set: K models are fitted on fold complements, every training
// point contributes an out-of-fold residual, and the test interval is built
// from order statistics of {mu_{-k(i)}(x) -/+ R_i}. Guarantee: coverage
// >= 1 - 2*alpha (and ~1 - alpha in practice).
#pragma once

#include <cstdint>
#include <memory>

#include "core/units.hpp"
#include "models/region.hpp"
#include "models/regressor.hpp"

namespace vmincqr::conformal {

using core::MiscoverageAlpha;
using models::IntervalPrediction;
using models::IntervalRegressor;
using models::Matrix;
using models::Regressor;
using models::Vector;

struct CvPlusConfig {
  std::size_t n_folds = 5;
  std::uint64_t seed = 42;
};

class CvPlusRegressor final : public IntervalRegressor {
 public:
  /// Throws std::invalid_argument on a null model or n_folds < 2.
  CvPlusRegressor(MiscoverageAlpha alpha, std::unique_ptr<Regressor> model,
                  CvPlusConfig config = {});

  void fit(const Matrix& x, const Vector& y) override;
  [[nodiscard]] IntervalPrediction predict_interval(const Matrix& x) const override;
  [[nodiscard]] std::unique_ptr<IntervalRegressor> clone_config() const override;
  [[nodiscard]] std::string name() const override { return "CV+ " + prototype_->name(); }
  [[nodiscard]] MiscoverageAlpha alpha() const override { return alpha_; }

 private:
  MiscoverageAlpha alpha_;
  std::unique_ptr<Regressor> prototype_;
  CvPlusConfig config_;
  std::vector<std::unique_ptr<Regressor>> fold_models_;
  std::vector<std::size_t> fold_of_sample_;  ///< training sample -> fold
  Vector residuals_;                         ///< out-of-fold |residual| per sample
  bool calibrated_ = false;
};

}  // namespace vmincqr::conformal
