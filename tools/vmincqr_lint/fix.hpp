// `vmincqr_lint --fix`: automatic rewrites for the mechanically safe rules.
// Everything else stays diagnose-only — a wrong automatic edit to a
// contract or a comparison would be worse than the finding.
//
//   * no-endl      — `std::endl` (or a bare `endl`) becomes `"\n"`.
//   * pragma-once  — a header missing `#pragma once` gains it after the
//                    leading comment block.
//   * unordered-iteration — when the TU has a live finding, every
//                    std::unordered_{map,set,multimap,multiset} (and the
//                    matching includes) becomes its sorted counterpart.
//                    Skipped wholesale when any unordered type carries extra
//                    template arguments (custom hasher/equality) — the swap
//                    is only mechanical for the default-hash forms.
//
// Fixes are idempotent: applying them to already-fixed text is a no-op.
#pragma once

#include <string>

namespace vmincqr::lint {

/// Returns `content` with all safe fixes applied. `path` decides
/// header-only fixes (pragma-once applies to .hpp only). Comments and
/// string literals are never rewritten (the token stream skips them).
std::string apply_fixes(const std::string& path, const std::string& content);

}  // namespace vmincqr::lint
