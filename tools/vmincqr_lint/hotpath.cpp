#include "hotpath.hpp"

#include <algorithm>
#include <deque>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <tuple>
#include <utility>

#include "callgraph.hpp"
#include "concurrency.hpp"
#include "parse.hpp"
#include "sarif.hpp"

namespace fs = std::filesystem;

namespace vmincqr::lint {
namespace {

std::string trim(const std::string& s) {
  const auto b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  const auto e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

std::vector<std::string> parse_string_list(const std::string& raw,
                                           std::size_t line_no) {
  const std::string s = trim(raw);
  if (s.size() < 2 || s.front() != '[' || s.back() != ']') {
    throw std::runtime_error("hotpath_tiers.toml:" + std::to_string(line_no) +
                             ": expected a [\"...\"] list");
  }
  std::vector<std::string> out;
  std::stringstream ss(s.substr(1, s.size() - 2));
  std::string item;
  while (std::getline(ss, item, ',')) {
    item = trim(item);
    if (item.empty()) continue;
    if (item.size() < 2 || item.front() != '"' || item.back() != '"') {
      throw std::runtime_error("hotpath_tiers.toml:" +
                               std::to_string(line_no) +
                               ": list items must be quoted strings");
    }
    out.push_back(item.substr(1, item.size() - 2));
  }
  return out;
}

// --- hot-set construction --------------------------------------------------

/// Entry points whose cones define the predict-reachable set. Mirrors the
/// phase-4 numeric entry set minus the fit side: phase 5 profiles serving
/// cost, and fit-time allocation is not on the latency path.
const std::set<std::string>& predict_entry_names() {
  static const std::set<std::string> names = {
      "predict", "predict_interval", "predict_point", "predict_sigma",
      "predict_batch"};
  return names;
}

bool is_serve_tu(const CallGraph& g, const std::vector<SourceFile>& files,
                 std::size_t tu) {
  if (g.module_of_tu(tu) == "serve") return true;
  const std::string& rel = files[tu].rel;
  return rel.rfind("serve/", 0) == 0 ||
         rel.find("/serve/") != std::string::npos;
}

/// Resolved call edges as a deterministic adjacency map.
std::map<std::size_t, std::set<std::size_t>> adjacency(const CallGraph& g) {
  std::map<std::size_t, std::set<std::size_t>> adj;
  for (const CallSite& c : g.calls()) {
    if (c.caller == kNoFunction) continue;
    for (std::size_t callee : c.callees) adj[c.caller].insert(callee);
  }
  return adj;
}

/// BFS cone over the resolved graph, with parent links so diagnostics can
/// print a witness chain. Roots and neighbors are visited in sorted order,
/// so the parent (and thus the chain) of every node is deterministic.
struct Reach {
  std::set<std::size_t> reached;
  std::map<std::size_t, std::size_t> parent;  // def -> def; kNoFunction = root
};

Reach breadth_first(const std::map<std::size_t, std::set<std::size_t>>& adj,
                    const std::set<std::size_t>& roots) {
  Reach r;
  std::deque<std::size_t> queue;
  for (std::size_t di : roots) {
    r.reached.insert(di);
    r.parent[di] = kNoFunction;
    queue.push_back(di);
  }
  while (!queue.empty()) {
    const std::size_t cur = queue.front();
    queue.pop_front();
    const auto it = adj.find(cur);
    if (it == adj.end()) continue;
    for (std::size_t next : it->second) {
      if (!r.reached.insert(next).second) continue;
      r.parent[next] = cur;
      queue.push_back(next);
    }
  }
  return r;
}

std::string chain_of(const CallGraph& g, const Reach& r, std::size_t di) {
  std::vector<std::string> parts;
  for (std::size_t cur = di; cur != kNoFunction; cur = r.parent.at(cur)) {
    parts.push_back(g.defs()[cur].display);
  }
  std::reverse(parts.begin(), parts.end());
  std::string chain;
  for (const std::string& p : parts) {
    if (!chain.empty()) chain += " -> ";
    chain += p;
  }
  return chain;
}

// --- loop spans ------------------------------------------------------------

/// One loop region inside a function body. Parallel lambda bodies are loop
/// spans too — they run once per chunk, so per-span scratch is per-iteration
/// scratch. `head_open` is the '(' of a for/while head (0 = headless:
/// do-loop or parallel body).
struct LoopSpan {
  std::size_t head_open = 0;
  std::size_t head_close = 0;
  std::size_t begin = 0;  // first body token (inclusive)
  std::size_t end = 0;    // one past the last body token
  bool parallel = false;
  bool has_inner = false;  // contains another loop span (not a leaf)
};

std::vector<LoopSpan> loop_spans(const std::vector<Token>& t,
                                 std::size_t body_first, std::size_t body_last,
                                 const std::vector<ParallelBody>& bodies) {
  std::vector<LoopSpan> out;
  for (std::size_t i = body_first + 1; i < body_last; ++i) {
    if (t[i].kind != TokKind::kIdent) continue;
    if (t[i].text == "do") {
      if (i + 1 < body_last && t[i + 1].text == "{") {
        LoopSpan s;
        s.begin = i + 2;
        s.end = std::min(match_forward(t, i + 1), body_last);
        out.push_back(s);
      }
      continue;
    }
    if (t[i].text != "for" && t[i].text != "while") continue;
    if (i + 1 >= body_last || t[i + 1].text != "(") continue;
    const std::size_t head_close = match_forward(t, i + 1);
    if (head_close + 1 >= body_last) continue;
    LoopSpan s;
    s.head_open = i + 1;
    s.head_close = head_close;
    if (t[head_close + 1].text == "{") {
      s.begin = head_close + 2;
      s.end = std::min(match_forward(t, head_close + 1), body_last);
    } else {
      std::size_t j = head_close + 1;
      int depth = 0;
      while (j < body_last) {
        const std::string& x = t[j].text;
        if (x == "(" || x == "[" || x == "{") ++depth;
        if (x == ")" || x == "]" || x == "}") --depth;
        if (x == ";" && depth == 0) break;
        ++j;
      }
      s.begin = head_close + 1;
      s.end = j;
    }
    out.push_back(s);
  }
  for (const ParallelBody& b : bodies) {
    if (b.body_first > body_first && b.body_last < body_last) {
      LoopSpan s;
      s.begin = b.body_first + 1;
      s.end = b.body_last;
      s.parallel = true;
      out.push_back(s);
    }
  }
  std::sort(out.begin(), out.end(), [](const LoopSpan& a, const LoopSpan& b) {
    return std::tie(a.begin, a.end) < std::tie(b.begin, b.end);
  });
  for (std::size_t i = 0; i < out.size(); ++i) {
    for (std::size_t j = 0; j < out.size(); ++j) {
      if (j == i) continue;
      if (out[j].begin >= out[i].begin && out[j].end <= out[i].end &&
          (out[j].begin > out[i].begin || out[j].end < out[i].end)) {
        out[i].has_inner = true;
        break;
      }
    }
  }
  return out;
}

const LoopSpan* innermost_span(const std::vector<LoopSpan>& spans,
                               std::size_t idx) {
  const LoopSpan* best = nullptr;
  for (const LoopSpan& s : spans) {
    if (idx < s.begin || idx >= s.end) continue;
    if (best == nullptr || (s.end - s.begin) < (best->end - best->begin)) {
      best = &s;
    }
  }
  return best;
}

std::size_t nesting_depth(const std::vector<LoopSpan>& spans,
                          std::size_t idx) {
  std::size_t depth = 0;
  for (const LoopSpan& s : spans) {
    if (idx >= s.begin && idx < s.end) ++depth;
  }
  return depth;
}

std::size_t max_nesting(const std::vector<LoopSpan>& spans) {
  std::size_t depth = 0;
  for (const LoopSpan& s : spans) {
    depth = std::max(depth, nesting_depth(spans, s.begin));
  }
  return depth;
}

// --- token classifiers -----------------------------------------------------

const std::set<std::string>& heavy_types() {
  static const std::set<std::string> types = {"Matrix", "Vector", "vector",
                                              "string"};
  return types;
}

/// Member calls that materialize a fresh heavy container from an existing
/// one (Matrix::row returns a Vector by value, take_cols copies columns,
/// ...). `transform` is excluded on purpose: its result is consumed whole.
const std::set<std::string>& materializing_calls() {
  static const std::set<std::string> calls = {
      "row", "col", "take_rows", "take_cols", "row_block", "with_intercept"};
  return calls;
}

/// Members whose immediate application to a freshly materialized container
/// proves the whole copy existed to read one scalar.
const std::set<std::string>& reducer_members() {
  static const std::set<std::string> members = {"front", "back", "at",
                                                "size", "rows", "cols"};
  return members;
}

/// Members whose call on a by-value parameter means the copy is mutated
/// in place (the parameter doubles as local scratch — keep it by value).
/// `data` is included conservatively: the returned pointer may be written.
const std::set<std::string>& mutator_members() {
  static const std::set<std::string> members = {
      "push_back", "emplace_back", "pop_back", "clear",  "resize",
      "reserve",   "insert",       "erase",    "assign", "swap",
      "set",       "set_row",      "set_col",  "shrink_to_fit",
      "append",    "data"};
  return members;
}

}  // namespace

bool heavy_type_at(const std::vector<Token>& t, std::size_t i) {
  if (t[i].kind != TokKind::kIdent || heavy_types().count(t[i].text) == 0) {
    return false;
  }
  if (i == 0) return true;
  const std::string& p = t[i - 1].text;
  if (p == "." || p == "->") return false;
  if (p == "::") {
    if (i < 2 || t[i - 2].kind != TokKind::kIdent) return false;
    const std::string& q = t[i - 2].text;
    return q == "std" || q == "linalg" || q == "vmincqr";
  }
  return true;
}

std::size_t after_template_args(const std::vector<Token>& t, std::size_t i) {
  if (i + 1 < t.size() && t[i + 1].text == "<") {
    const std::size_t close = match_forward(t, i + 1);
    return close >= t.size() ? t.size() : close + 1;
  }
  return i + 1;
}

namespace {

/// Locally declared heavy containers of one function body:
/// name -> presized (constructed with arguments, copy-initialized, or
/// reserve/resize/assign-ed anywhere in the body). Only these may fire the
/// push_back growth rules — a parameter or member container may have been
/// sized by the caller.
std::map<std::string, bool> local_heavy_containers(const std::vector<Token>& t,
                                                   std::size_t body_first,
                                                   std::size_t body_last) {
  std::map<std::string, bool> locals;
  for (std::size_t i = body_first + 1; i < body_last; ++i) {
    if (!heavy_type_at(t, i)) continue;
    const std::size_t nx = after_template_args(t, i);
    if (nx >= body_last || t[nx].kind != TokKind::kIdent) continue;
    if (nx + 1 >= body_last) continue;
    const std::string& after = t[nx + 1].text;
    if (after == "(" || after == "{") {
      locals[t[nx].text] = match_forward(t, nx + 1) > nx + 2;
    } else if (after == "=") {
      locals[t[nx].text] = true;  // copy/expression init carries capacity
    } else if (after == ";") {
      locals[t[nx].text] = false;  // default-constructed empty
    }
  }
  for (std::size_t i = body_first + 1; i + 3 < body_last; ++i) {
    if (t[i].kind != TokKind::kIdent) continue;
    const auto it = locals.find(t[i].text);
    if (it == locals.end()) continue;
    if ((t[i + 1].text == "." || t[i + 1].text == "->") &&
        (t[i + 2].text == "reserve" || t[i + 2].text == "resize" ||
         t[i + 2].text == "assign") &&
        t[i + 3].text == "(") {
      it->second = true;
    }
  }
  return locals;
}

/// True when the loop's trip count is visible in its head: a
/// `.rows()/.size()/.cols()` bound, or a range-for over a plain identifier.
/// `bound` receives the mechanically derivable reserve expression.
bool visible_trip_count(const std::vector<Token>& t, const LoopSpan& s,
                        std::string* bound) {
  if (s.head_open == 0) return false;  // do-loop or parallel body
  for (std::size_t k = s.head_open + 1; k < s.head_close; ++k) {
    if (t[k].text == "." && k + 2 < s.head_close &&
        (t[k + 1].text == "rows" || t[k + 1].text == "size" ||
         t[k + 1].text == "cols") &&
        t[k + 2].text == "(") {
      if (k > s.head_open + 1 && t[k - 1].kind == TokKind::kIdent) {
        *bound = t[k - 1].text + "." + t[k + 1].text + "()";
      } else {
        *bound = "the loop bound";
      }
      return true;
    }
  }
  // Range-for over a plain identifier: `for (const auto& v : xs)`.
  const int inner = t[s.head_open].paren_depth + 1;
  for (std::size_t k = s.head_open + 1; k < s.head_close; ++k) {
    if (t[k].text != ":" || t[k].paren_depth != inner) continue;
    if (k + 2 == s.head_close && t[k + 1].kind == TokKind::kIdent) {
      *bound = t[k + 1].text + ".size()";
      return true;
    }
    break;
  }
  return false;
}

/// Harvests every method name declared `virtual` or marked `override` in
/// one TU. Type-free by design: any member call to a harvested name counts
/// as potential virtual dispatch (over-approximation, documented in
/// DESIGN.md §6). Destructors are skipped.
void harvest_virtual_names(const std::vector<Token>& t,
                           std::set<std::string>& names) {
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent) continue;
    if (t[i].text == "virtual") {
      for (std::size_t j = i + 1; j < t.size() && j < i + 16; ++j) {
        const std::string& x = t[j].text;
        if (x == ";" || x == "{" || x == "=") break;
        if (x != "(") continue;
        if (j > 0 && t[j - 1].kind == TokKind::kIdent &&
            (j < 2 || t[j - 2].text != "~")) {
          names.insert(t[j - 1].text);
        }
        break;
      }
      continue;
    }
    if (t[i].text != "override" && t[i].text != "final") continue;
    std::size_t k = i;
    while (k > 0 &&
           (t[k - 1].text == "const" || t[k - 1].text == "noexcept")) {
      --k;
    }
    if (k == 0 || t[k - 1].text != ")") continue;  // `class X final` etc.
    int depth = 0;
    std::size_t p = k - 1;
    while (true) {
      if (t[p].text == ")") ++depth;
      if (t[p].text == "(" && --depth == 0) break;
      if (p == 0) break;
      --p;
    }
    if (t[p].text == "(" && p > 0 && t[p - 1].kind == TokKind::kIdent &&
        (p < 2 || t[p - 2].text != "~")) {
      names.insert(t[p - 1].text);
    }
  }
}

}  // namespace

// --- heavy-pass-by-value ---------------------------------------------------

std::vector<HeavyParam> heavy_value_params(const std::vector<Token>& t,
                                           std::size_t params_open) {
  std::vector<HeavyParam> out;
  const std::size_t params_close = match_forward(t, params_open);
  if (params_close >= t.size()) return out;
  std::size_t seg_first = params_open + 1;
  int depth = 0;
  int angle = 0;
  auto flush = [&](std::size_t seg_last) {
    std::string type;
    bool indirect = false;
    std::size_t eq = seg_last;
    for (std::size_t k = seg_first; k < seg_last; ++k) {
      if (t[k].text == "&" || t[k].text == "*") indirect = true;
      if (t[k].text == "=" && eq == seg_last) eq = k;
      if (type.empty() && heavy_type_at(t, k)) type = t[k].text;
    }
    if (type.empty() || indirect) return;
    std::string name;
    for (std::size_t k = seg_first; k < eq; ++k) {
      if (t[k].kind == TokKind::kIdent) name = t[k].text;
    }
    if (name.empty() || name == type || heavy_types().count(name) > 0) return;
    out.push_back({type, name});
  };
  for (std::size_t k = params_open + 1; k < params_close; ++k) {
    const std::string& x = t[k].text;
    if (x == "(" || x == "[" || x == "{") ++depth;
    if (x == ")" || x == "]" || x == "}") --depth;
    if (x == "<" && k > 0 && t[k - 1].kind == TokKind::kIdent) ++angle;
    if (x == ">" && angle > 0) --angle;
    if (x == "," && depth == 0 && angle == 0) {
      flush(k);
      seg_first = k + 1;
    }
  }
  flush(params_close);
  return out;
}

bool param_mutated(const std::vector<Token>& t, std::size_t body_first,
                   std::size_t body_last, const std::string& name) {
  for (std::size_t k = body_first + 1; k < body_last; ++k) {
    if (t[k].kind != TokKind::kIdent) continue;
    // std::move(name) / move(name)
    if (t[k].text == "move" && k + 2 < body_last && t[k + 1].text == "(" &&
        t[k + 2].text == name) {
      return true;
    }
    if (t[k].text != name) continue;
    if (k > 0 && (t[k - 1].text == "." || t[k - 1].text == "->" ||
                  t[k - 1].text == "::")) {
      continue;  // member of something else
    }
    if (k + 1 >= body_last) continue;
    const std::string& after = t[k + 1].text;
    if (after == "=") return true;
    if (k + 2 < body_last && t[k + 2].text == "=" &&
        (after == "+" || after == "-" || after == "*" || after == "/" ||
         after == "%" || after == "&" || after == "|" || after == "^")) {
      return true;  // compound assignment
    }
    if (after == "[") {
      const std::size_t close = match_forward(t, k + 1);
      if (close + 1 < body_last && t[close + 1].text == "=") return true;
    }
    if ((after == "." || after == "->") && k + 3 < body_last &&
        mutator_members().count(t[k + 2].text) > 0 &&
        t[k + 3].text == "(") {
      return true;
    }
    // Non-const-ref range-for: `for (auto& e : name)` mutates elements.
    if (k > 1 && t[k - 1].text == ":" &&
        t[k].paren_depth == t[k - 1].paren_depth) {
      bool saw_ref = false;
      bool saw_const = false;
      for (std::size_t b = k - 1; b > 0 && t[b].text != "("; --b) {
        if (t[b].text == "&") saw_ref = true;
        if (t[b].text == "const") saw_const = true;
        if (t[b].text == "for") break;
      }
      if (saw_ref && !saw_const) return true;
    }
  }
  return false;
}

std::set<std::string> parse_hotpath_manifest(const std::string& toml_text) {
  std::set<std::string> names;
  std::stringstream ss(toml_text);
  std::string raw;
  std::string section;
  std::size_t line_no = 0;
  while (std::getline(ss, raw)) {
    ++line_no;
    std::string line = trim(raw);
    const auto hash = line.find('#');
    if (hash != std::string::npos) line = trim(line.substr(0, hash));
    if (line.empty()) continue;
    if (line.front() == '[') {
      if (line.back() != ']') {
        throw std::runtime_error("hotpath_tiers.toml:" +
                                 std::to_string(line_no) +
                                 ": unterminated section header");
      }
      section = trim(line.substr(1, line.size() - 2));
      if (section != "allow_alloc") {
        throw std::runtime_error("hotpath_tiers.toml:" +
                                 std::to_string(line_no) +
                                 ": unknown section [" + section +
                                 "] (expected [allow_alloc])");
      }
      continue;
    }
    const auto eq = line.find('=');
    if (eq == std::string::npos || section != "allow_alloc" ||
        trim(line.substr(0, eq)) != "functions") {
      throw std::runtime_error(
          "hotpath_tiers.toml:" + std::to_string(line_no) +
          ": expected `functions = [\"...\"]` under [allow_alloc]");
    }
    for (auto& name : parse_string_list(line.substr(eq + 1), line_no)) {
      names.insert(std::move(name));
    }
  }
  return names;
}

std::set<std::string> load_hotpath_manifest(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("vmincqr_lint: cannot read " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse_hotpath_manifest(ss.str());
}

HotPathAnalysis analyze_hot_paths(const std::vector<SourceFile>& files,
                                  const HotPathOptions& options) {
  const CallGraph g = CallGraph::build(files, options.layers);
  HotPathAnalysis out;
  std::vector<Diagnostic> raw;
  const auto& defs = g.defs();

  // --- hot cones: serve-reachable and predict-reachable. ---
  const auto adj = adjacency(g);
  std::set<std::size_t> serve_roots;
  std::set<std::size_t> predict_roots;
  for (std::size_t di = 0; di < defs.size(); ++di) {
    if (is_serve_tu(g, files, defs[di].tu)) serve_roots.insert(di);
    if (predict_entry_names().count(defs[di].name) > 0) {
      predict_roots.insert(di);
    }
  }
  const Reach serve_reach = breadth_first(adj, serve_roots);
  const Reach predict_reach = breadth_first(adj, predict_roots);
  std::set<std::size_t> hot = serve_reach.reached;
  hot.insert(predict_reach.reached.begin(), predict_reach.reached.end());

  // --- file-set-wide virtual method names. ---
  std::set<std::string> virtual_names;
  for (std::size_t tu = 0; tu < files.size(); ++tu) {
    harvest_virtual_names(g.unit(tu).tokens, virtual_names);
  }

  // --- per-TU parallel-body cache (one parse per TU, not per def). ---
  std::map<std::size_t, std::vector<ParallelBody>> bodies_cache;
  auto parallel_bodies_of =
      [&](std::size_t tu) -> const std::vector<ParallelBody>& {
    auto it = bodies_cache.find(tu);
    if (it == bodies_cache.end()) {
      it = bodies_cache.emplace(tu, find_parallel_bodies(g.unit(tu).tokens))
               .first;
    }
    return it->second;
  };

  // --- per-function scan. ---
  for (std::size_t di : hot) {
    const FunctionDef& d = defs[di];
    const Unit& u = g.unit(d.tu);
    const auto& t = u.tokens;
    if (d.body_last >= t.size() || d.params_open >= t.size()) continue;
    const std::string& file = g.display_of(d.tu);
    const bool granted =
        hot_path_grants_at(u, d.line).count("allow-alloc") > 0;
    const auto spans =
        loop_spans(t, d.body_first, d.body_last, parallel_bodies_of(d.tu));
    const auto locals = local_heavy_containers(t, d.body_first, d.body_last);
    const bool in_serve = serve_reach.reached.count(di) > 0;
    const std::string chain = in_serve ? chain_of(g, serve_reach, di)
                                       : chain_of(g, predict_reach, di);

    FunctionCost cost;
    cost.function = d.display;
    cost.file = file;
    cost.line = d.line;
    cost.serve_reachable = in_serve;
    cost.predict_reachable = predict_reach.reached.count(di) > 0;
    cost.loop_depth = max_nesting(spans);
    cost.chain = chain;

    std::set<std::pair<std::size_t, std::string>> fired;  // (line, rule)
    auto report = [&](std::size_t line, const std::string& rule,
                      const std::string& message) {
      if (!fired.emplace(line, rule).second) return;
      raw.push_back({file, line, rule, message});
    };

    for (std::size_t i = d.body_first + 1; i < d.body_last; ++i) {
      if (t[i].kind != TokKind::kIdent) continue;
      const LoopSpan* span = innermost_span(spans, i);

      // Heavy construction (declaration or temporary) inside a loop.
      if (heavy_type_at(t, i) && span != nullptr) {
        const std::size_t nx = after_template_args(t, i);
        bool alloc = false;
        std::string what;
        if (nx < d.body_last && t[nx].kind == TokKind::kIdent &&
            nx + 1 < d.body_last) {
          const std::string& after = t[nx + 1].text;
          if (after == "(" || after == "{" || after == "=" || after == ";") {
            alloc = true;
            what = "'" + t[i].text + " " + t[nx].text + "'";
          }
        } else if (nx < d.body_last &&
                   (t[nx].text == "(" || t[nx].text == "{")) {
          alloc = true;
          what = "a '" + t[i].text + "' temporary";
        }
        if (alloc) {
          ++cost.alloc_sites;
          if (!granted) {
            report(t[i].line, "alloc-in-hot-loop",
                   what + " is constructed inside a " +
                       (span->parallel ? std::string("parallel body (runs "
                                                     "once per chunk)")
                                       : std::string("loop")) +
                       " in hot function '" + d.display + "' (chain: " +
                       chain + "); hoist the buffer out of the loop, or "
                       "annotate the function `// vmincqr: "
                       "hot-path(allow-alloc)` and record the justification "
                       "in " + options.manifest_display);
          }
        }
      }

      // Growth via push_back on a locally declared, never-reserved
      // container inside a loop.
      if ((t[i].text == "push_back" || t[i].text == "emplace_back") &&
          span != nullptr && i >= 2 && i + 1 < d.body_last &&
          (t[i - 1].text == "." || t[i - 1].text == "->") &&
          t[i + 1].text == "(" && t[i - 2].kind == TokKind::kIdent) {
        const std::string& container = t[i - 2].text;
        const auto local = locals.find(container);
        if (local != locals.end() && !local->second) {
          ++cost.alloc_sites;
          std::string bound;
          if (!granted && visible_trip_count(t, *span, &bound)) {
            report(t[i].line, "missed-reserve",
                   "'" + container + "." + t[i].text + "' grows inside a "
                       "loop whose trip count is visible in its head; "
                       "insert '" + container + ".reserve(" + bound +
                       ")' before the loop (--fix does this) in hot "
                       "function '" + d.display + "' (chain: " + chain +
                       ")");
          } else if (!granted) {
            report(t[i].line, "alloc-in-hot-loop",
                   "'" + container + "." + t[i].text + "' grows a "
                       "never-reserved local container inside a " +
                       (span->parallel ? std::string("parallel body")
                                       : std::string("loop")) +
                       " in hot function '" + d.display + "' (chain: " +
                       chain + "); reserve an upper bound first, or "
                       "annotate `// vmincqr: hot-path(allow-alloc)` and "
                       "record it in " + options.manifest_display);
          }
        }
      }

      // Materializing member call: immediately reduced -> the copy existed
      // to read one scalar; otherwise a per-iteration copy when in a loop.
      if (materializing_calls().count(t[i].text) > 0 && i >= 1 &&
          i + 1 < d.body_last &&
          (t[i - 1].text == "." || t[i - 1].text == "->") &&
          t[i + 1].text == "(") {
        const std::size_t close = match_forward(t, i + 1);
        bool reduced = false;
        std::string via;
        if (close + 1 < d.body_last) {
          if (t[close + 1].text == "[") {
            reduced = true;
            via = "indexed";
          } else if ((t[close + 1].text == "." ||
                      t[close + 1].text == "->") &&
                     close + 3 < d.body_last &&
                     reducer_members().count(t[close + 2].text) > 0 &&
                     t[close + 3].text == "(") {
            reduced = true;
            via = "reduced via ." + t[close + 2].text + "()";
          }
        }
        if (reduced) {
          ++cost.copy_sites;
          if (!granted) {
            report(t[i].line, "temporary-materialization",
                   "'." + t[i].text + "(...)' materializes a fresh "
                       "container that is immediately " + via +
                       " in hot function '" + d.display + "' (chain: " +
                       chain + "); read through the source container "
                       "instead of copying it");
          }
        } else if (span != nullptr) {
          ++cost.copy_sites;
          if (!granted) {
            report(t[i].line, "alloc-in-hot-loop",
                   "'." + t[i].text + "(...)' materializes a fresh "
                       "container on every iteration of a " +
                       (span->parallel ? std::string("parallel body")
                                       : std::string("loop")) +
                       " in hot function '" + d.display + "' (chain: " +
                       chain + "); hoist or reuse a buffer, or annotate "
                       "`// vmincqr: hot-path(allow-alloc)` and record it "
                       "in " + options.manifest_display);
          }
        }
      }

      // Virtual dispatch in an innermost (leaf) loop.
      if (virtual_names.count(t[i].text) > 0 && i >= 1 &&
          i + 1 < d.body_last &&
          (t[i - 1].text == "." || t[i - 1].text == "->") &&
          t[i + 1].text == "(" && span != nullptr && !span->has_inner) {
        report(t[i].line, "virtual-in-inner-loop",
               "'." + t[i].text + "(...)' dispatches through a vtable "
                   "inside an innermost loop of hot function '" + d.display +
                   "' (chain: " + chain + "); per-element indirect calls "
                   "block inlining and the planned vectorization — batch "
                   "the call (one dispatch per chunk) or devirtualize");
      }
    }

    // Heavy parameters taken by value and never mutated: one full copy per
    // call, invisible to the per-TU rules when the call sites live in other
    // TUs.
    for (const HeavyParam& p : heavy_value_params(t, d.params_open)) {
      if (param_mutated(t, d.body_first, d.body_last, p.name)) continue;
      ++cost.copy_sites;
      report(d.line, "heavy-pass-by-value",
             "parameter '" + p.name + "' ('" + p.type + "' by value) of "
                 "hot function '" + d.display + "' (chain: " + chain +
                 ") is never mutated or moved; take it by const reference "
                 "(--fix rewrites header definitions)");
    }

    out.costs.push_back(std::move(cost));
  }

  // --- grants + manifest enforcement (every annotated definition, hot or
  // not: the manifest is the reviewable source of truth). ---
  {
    std::set<std::string> used_entries;
    for (std::size_t di = 0; di < defs.size(); ++di) {
      const FunctionDef& d = defs[di];
      const auto grants = hot_path_grants_at(g.unit(d.tu), d.line);
      for (const std::string& grant : grants) {
        out.grants.push_back(
            {d.display, g.display_of(d.tu), d.line, grant});
      }
      if (grants.count("allow-alloc") == 0) continue;
      if (options.alloc_manifest.count(d.display) > 0) {
        used_entries.insert(d.display);
      } else if (options.alloc_manifest.count(d.name) > 0) {
        used_entries.insert(d.name);
      } else {
        raw.push_back(
            {g.display_of(d.tu), d.line, "hot-path-manifest",
             "'" + d.display + "' is annotated hot-path(allow-alloc) but "
                 "is not listed in " + options.manifest_display +
                 "; every sanctioned hot-path allocation must be committed "
                 "to the manifest so the grant is reviewable in one place"});
      }
    }
    for (const std::string& entry : options.alloc_manifest) {
      if (used_entries.count(entry) == 0) {
        raw.push_back(
            {options.manifest_display, 1, "hot-path-manifest",
             "manifest entry '" + entry + "' matches no function annotated "
                 "hot-path(allow-alloc); remove the stale entry or "
                 "annotate the function"});
      }
    }
    std::sort(out.grants.begin(), out.grants.end(),
              [](const HotPathRecord& a, const HotPathRecord& b) {
                return std::tie(a.file, a.line, a.function, a.grant) <
                       std::tie(b.file, b.line, b.function, b.grant);
              });
  }

  // --- allow() suppressions, then the canonical total order. ---
  std::map<std::string, std::size_t> tu_of_display;
  for (std::size_t tu = 0; tu < files.size(); ++tu) {
    tu_of_display[g.display_of(tu)] = tu;
  }
  for (Diagnostic& d : raw) {
    const auto it = tu_of_display.find(d.file);
    if (it != tu_of_display.end() &&
        is_allowed(g.unit(it->second), d.rule, d.line)) {
      continue;
    }
    out.diagnostics.push_back(std::move(d));
  }
  std::sort(out.diagnostics.begin(), out.diagnostics.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              return std::tie(a.file, a.line, a.rule, a.message) <
                     std::tie(b.file, b.line, b.rule, b.message);
            });
  out.diagnostics.erase(
      std::unique(out.diagnostics.begin(), out.diagnostics.end(),
                  [](const Diagnostic& a, const Diagnostic& b) {
                    return std::tie(a.file, a.line, a.rule, a.message) ==
                           std::tie(b.file, b.line, b.rule, b.message);
                  }),
      out.diagnostics.end());
  std::sort(out.costs.begin(), out.costs.end(),
            [](const FunctionCost& a, const FunctionCost& b) {
              return std::tie(a.file, a.line, a.function) <
                     std::tie(b.file, b.line, b.function);
            });
  return out;
}

HotPathAnalysis analyze_hot_paths_directory(const std::string& root,
                                            const HotPathOptions& options) {
  std::vector<SourceFile> files;
  const fs::path base(root);
  for (const auto& entry : fs::recursive_directory_iterator(base)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext != ".hpp" && ext != ".cpp") continue;
    std::ifstream in(entry.path(), std::ios::binary);
    if (!in) {
      throw std::runtime_error("vmincqr_lint: cannot read " +
                               entry.path().string());
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    files.push_back({entry.path().string(),
                     entry.path().lexically_relative(base).generic_string(),
                     ss.str()});
  }
  std::sort(files.begin(), files.end(),
            [](const SourceFile& a, const SourceFile& b) {
              return a.rel < b.rel;
            });
  return analyze_hot_paths(files, options);
}

std::string hotpath_report_json(const HotPathAnalysis& analysis) {
  std::ostringstream os;
  os << "{\n  \"schema\": \"vmincqr-hotpath-report/1\",\n  \"functions\": [";
  bool first = true;
  for (const FunctionCost& c : analysis.costs) {
    os << (first ? "" : ",") << "\n    {\"function\": \""
       << json_escape(c.function) << "\", \"file\": \""
       << json_escape(c.file) << "\", \"line\": " << c.line
       << ", \"serve_reachable\": " << (c.serve_reachable ? "true" : "false")
       << ", \"predict_reachable\": "
       << (c.predict_reachable ? "true" : "false")
       << ", \"loop_depth\": " << c.loop_depth
       << ", \"alloc_sites\": " << c.alloc_sites
       << ", \"copy_sites\": " << c.copy_sites << ", \"chain\": \""
       << json_escape(c.chain) << "\"}";
    first = false;
  }
  os << "\n  ],\n  \"grants\": [";
  first = true;
  for (const HotPathRecord& r : analysis.grants) {
    os << (first ? "" : ",") << "\n    {\"function\": \""
       << json_escape(r.function) << "\", \"file\": \""
       << json_escape(r.file) << "\", \"line\": " << r.line
       << ", \"grant\": \"" << json_escape(r.grant) << "\"}";
    first = false;
  }
  os << "\n  ]\n}\n";
  return os.str();
}

}  // namespace vmincqr::lint
