// Top-layer header: the `high` -> `low` edge is on the DAG, so this include
// is clean.
#pragma once

#include "low/base.hpp"

struct TopThing {
  int level = base_value();
};
