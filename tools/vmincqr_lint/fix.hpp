// `vmincqr_lint --fix`: automatic rewrites for the mechanically safe rules.
// Everything else stays diagnose-only — a wrong automatic edit to a
// contract or a comparison would be worse than the finding.
//
//   * no-endl      — `std::endl` (or a bare `endl`) becomes `"\n"`.
//   * pragma-once  — a header missing `#pragma once` gains it after the
//                    leading comment block.
//   * unordered-iteration — when the TU has a live finding, every
//                    std::unordered_{map,set,multimap,multiset} (and the
//                    matching includes) becomes its sorted counterpart.
//                    Skipped wholesale when any unordered type carries extra
//                    template arguments (custom hasher/equality) — the swap
//                    is only mechanical for the default-hash forms.
//   * missed-reserve — a for-loop growing a locally declared, empty,
//                    never-reserved heavy container via push_back, with a
//                    visible `.size()/.rows()/.cols()` (or range-for) trip
//                    count, gains `name.reserve(bound);` on the line before
//                    the loop.
//   * heavy-pass-by-value — a Matrix/Vector/std::vector/std::string
//                    parameter taken by value and never mutated or moved
//                    becomes a const reference. Headers only: rewriting an
//                    out-of-line .cpp definition would break its match with
//                    the header declaration, so those findings stay
//                    diagnose-only. Virtual/override signatures are skipped
//                    too — the base declaration must change in lockstep.
//
// Fixes are idempotent: applying them to already-fixed text is a no-op.
#pragma once

#include <string>

namespace vmincqr::lint {

/// Returns `content` with all safe fixes applied. `path` decides
/// header-only fixes (pragma-once applies to .hpp only). Comments and
/// string literals are never rewritten (the token stream skips them).
std::string apply_fixes(const std::string& path, const std::string& content);

}  // namespace vmincqr::lint
