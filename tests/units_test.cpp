// Boundary tests for the strong unit/level types (core/units.hpp): the
// validated constructors must reject every degenerate encoding (endpoints,
// NaN, infinities, denormals) and must pass interior values through the
// conformal stack bit-exactly — the CQR quantile index ceil((M+1)(1-alpha))
// is only trustworthy if alpha arrives unmodified.
#include "core/units.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <type_traits>

#include "conformal/split_cp.hpp"
#include "models/linear.hpp"
#include "stats/quantile.hpp"

namespace vmincqr::core {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kDenorm = std::numeric_limits<double>::denorm_min();
constexpr double kSmallestNormal = std::numeric_limits<double>::min();

// --- compile-time conversion rules -----------------------------------------

// Bare doubles cannot bind to level parameters, and the two level types do
// not interconvert — a swapped tau/alpha is a compile error.
static_assert(!std::is_convertible_v<double, QuantileLevel>);
static_assert(!std::is_convertible_v<double, MiscoverageAlpha>);
static_assert(!std::is_convertible_v<QuantileLevel, MiscoverageAlpha>);
static_assert(!std::is_convertible_v<MiscoverageAlpha, QuantileLevel>);
static_assert(!std::is_convertible_v<Volt, Millivolt>);
static_assert(!std::is_convertible_v<Millivolt, Volt>);
// Index tags are fully opaque: no implicit conversion even to size_t.
static_assert(!std::is_convertible_v<ChipId, std::size_t>);
static_assert(!std::is_convertible_v<ChipId, ReadPointIdx>);
static_assert(!std::is_convertible_v<ReadPointIdx, ChipId>);
// Conversion *to* double is implicit so values flow into numeric kernels.
static_assert(std::is_convertible_v<QuantileLevel, double>);
static_assert(std::is_convertible_v<MiscoverageAlpha, double>);

// --- rejection boundaries ---------------------------------------------------

TEST(UnitsBoundary, QuantileLevelRejectsClosedEndpoints) {
  EXPECT_THROW(QuantileLevel{0.0}, std::invalid_argument);
  EXPECT_THROW(QuantileLevel{1.0}, std::invalid_argument);
}

TEST(UnitsBoundary, QuantileLevelRejectsOutOfRangeAndNonFinite) {
  EXPECT_THROW(QuantileLevel{-0.1}, std::invalid_argument);
  EXPECT_THROW(QuantileLevel{1.2}, std::invalid_argument);
  EXPECT_THROW(QuantileLevel{kNan}, std::invalid_argument);
  EXPECT_THROW(QuantileLevel{kInf}, std::invalid_argument);
  EXPECT_THROW(QuantileLevel{-kInf}, std::invalid_argument);
}

TEST(UnitsBoundary, QuantileLevelRejectsDenormals) {
  EXPECT_THROW(QuantileLevel{kDenorm}, std::invalid_argument);
  EXPECT_THROW(QuantileLevel{1e-320}, std::invalid_argument);
}

TEST(UnitsBoundary, QuantileLevelAcceptsSmallestNormal) {
  const QuantileLevel tau{kSmallestNormal};
  EXPECT_EQ(tau.value(), kSmallestNormal);
}

TEST(UnitsBoundary, MiscoverageAlphaRejectsSameBoundariesAsQuantileLevel) {
  EXPECT_THROW(MiscoverageAlpha{0.0}, std::invalid_argument);
  EXPECT_THROW(MiscoverageAlpha{1.0}, std::invalid_argument);
  EXPECT_THROW(MiscoverageAlpha{-0.05}, std::invalid_argument);
  EXPECT_THROW(MiscoverageAlpha{1.5}, std::invalid_argument);
  EXPECT_THROW(MiscoverageAlpha{kNan}, std::invalid_argument);
  EXPECT_THROW(MiscoverageAlpha{kInf}, std::invalid_argument);
  EXPECT_THROW(MiscoverageAlpha{kDenorm}, std::invalid_argument);
  EXPECT_EQ(MiscoverageAlpha{kSmallestNormal}.value(), kSmallestNormal);
}

TEST(UnitsBoundary, PhysicalQuantitiesRejectNonFinite) {
  EXPECT_THROW(Volt{kNan}, std::invalid_argument);
  EXPECT_THROW(Millivolt{kInf}, std::invalid_argument);
  EXPECT_THROW(Celsius{kNan}, std::invalid_argument);
  EXPECT_THROW(Celsius{-300.0}, std::invalid_argument);  // below absolute zero
  EXPECT_THROW(Hours{-1.0}, std::invalid_argument);
  EXPECT_THROW(Hours{kNan}, std::invalid_argument);
}

// --- interior values are preserved bit-exactly ------------------------------

TEST(UnitsBoundary, InteriorLevelsRoundTripUnchanged) {
  for (const double tau : {0.005, 0.01, 0.05, 0.25, 0.5, 0.75, 0.95, 0.99}) {
    EXPECT_EQ(QuantileLevel{tau}.value(), tau);
    EXPECT_EQ(static_cast<double>(QuantileLevel{tau}), tau);
    EXPECT_EQ(MiscoverageAlpha{tau}.value(), tau);
  }
}

TEST(UnitsBoundary, AlphaTauArithmeticIsExactForDyadicAlpha) {
  const MiscoverageAlpha alpha{0.25};  // dyadic: /2 and 1-x are exact
  EXPECT_EQ(alpha.coverage(), 0.75);
  EXPECT_EQ(alpha.lower_tau().value(), 0.125);
  EXPECT_EQ(alpha.upper_tau().value(), 0.875);
  EXPECT_EQ(alpha.halved().value(), 0.125);
  EXPECT_EQ(QuantileLevel{0.125}.complement().value(), 0.875);
}

TEST(UnitsBoundary, AlphaSurvivesConformalQuantileUnchanged) {
  // M = 9 scores, alpha = 0.2: ceil((9+1) * 0.8) = 8 -> 8th smallest.
  // Any perturbation of alpha on the way in would move the index.
  std::vector<double> scores{9.0, 1.0, 3.0, 7.0, 5.0, 2.0, 8.0, 4.0, 6.0};
  EXPECT_EQ(stats::conformal_quantile(scores, MiscoverageAlpha{0.2}), 8.0);
}

TEST(UnitsBoundary, AlphaRoundTripsThroughSplitCpCalibration) {
  linalg::Matrix x(40, 1);
  linalg::Vector y(40);
  for (std::size_t i = 0; i < 40; ++i) {
    x(i, 0) = static_cast<double>(i);
    y[i] = 2.0 * x(i, 0) + (i % 2 == 0 ? 0.1 : -0.1);
  }
  conformal::SplitConformalRegressor cp(
      MiscoverageAlpha{0.25}, std::make_unique<models::LinearRegressor>());
  cp.fit(x, y);
  EXPECT_EQ(cp.alpha().value(), 0.25);  // bit-exact through fit+calibrate
  const auto band = cp.predict_interval(x);
  ASSERT_EQ(band.lower.size(), 40u);
  for (std::size_t i = 0; i < 40; ++i) {
    EXPECT_LE(band.lower[i], band.upper[i]);
  }
}

TEST(UnitsBoundary, VoltageConversionsAreExact) {
  EXPECT_EQ(Volt{0.72}.to_millivolts().value(), 720.0);
  EXPECT_EQ(Millivolt{720.0}.to_volts().value(), 0.72);
  EXPECT_EQ(Millivolt{-15.0}.value(), -15.0);  // guard bands may be negative
}

TEST(UnitsBoundary, IndexTagsCompare) {
  EXPECT_LT(ChipId{3}, ChipId{5});
  EXPECT_EQ(ReadPointIdx{2}.value(), 2u);
}

}  // namespace
}  // namespace vmincqr::core
