// Phase-5 hot-path allocation & copy analyzer — the static profiler that
// precedes the SIMD/data-layout overhaul of the predict and serve kernels.
//
// The paper's serving story is batched Vmin interval prediction for fleets
// of chips, so the product lives or dies on per-row cost inside
// serve::VminPredictor::predict_batch and everything it reaches. Phase 4
// already knows exactly which functions those are (the cross-TU call
// graph); this phase walks the serve-reachable and predict-reachable
// function sets and flags every hidden allocation, copy, and temporary in
// their bodies:
//
//   * alloc-in-hot-loop        — a heavy container (Matrix / Vector /
//     std::vector / std::string) constructed, or grown via push_back
//     without reserve, inside a loop of a hot function. Parallel lambda
//     bodies count as loops (they run once per chunk), so per-chunk scratch
//     is flagged too — the hoist-vs-grant decision is always recorded.
//   * heavy-pass-by-value      — a Matrix/Vector/std::vector/std::string
//     parameter taken by value on a hot-reachable function that never
//     mutates or moves it: a full copy per call, invisible to the per-TU
//     matrix-by-value rule when declaration and call sit in different TUs.
//   * temporary-materialization — a freshly materialized container
//     (`x.row(i)`, `take_cols(...)`, ...) immediately indexed or reduced:
//     the whole copy exists to read one element.
//   * missed-reserve           — a push_back growth loop whose trip count
//     is a visible `.rows()` / `.size()` / `.cols()` bound: the reserve is
//     mechanically derivable (and `--fix` inserts it).
//   * virtual-in-inner-loop    — virtual dispatch inside an innermost loop
//     of a hot function: per-element indirect calls that block both
//     inlining and the upcoming vectorization.
//
// Governance mirrors the numeric-tier contract: an intentional allocation
// is granted per function with `// vmincqr: hot-path(allow-alloc)` on the
// definition line (or the line above), and every grant must be mirrored in
// the committed hotpath_tiers.toml manifest (rule hot-path-manifest fires
// on drift in either direction). Grants are recorded in SARIF
// runs[0].properties, so the deployed report is an audit trail of every
// sanctioned hot-path allocation.
//
// The per-function cost table (`--hotpath-report=FILE`) lists every hot
// function with its allocation sites, copy sites, and loop depth — the
// work-list the SIMD PR starts from. Counts are pre-grant and
// pre-suppression on purpose: the report is a profile, not a gate.
//
// Determinism: extraction reuses CallGraph::build (per-TU fan-out on the
// deterministic pool); everything after is sequential over sorted
// containers, so diagnostics, SARIF, and the JSON report are byte-identical
// at every thread width.
#pragma once

#include <cstddef>
#include <set>
#include <string>
#include <vector>

#include "diagnostic.hpp"
#include "include_graph.hpp"
#include "token.hpp"

namespace vmincqr::lint {

/// One explicit hot-path grant annotation, recorded in SARIF run
/// properties as the allocation audit trail (every function that opted out
/// of the allocation-class rules, with the manifest as source of truth).
struct HotPathRecord {
  std::string function;  // display name, e.g. "VminPredictor::predict_batch"
  std::string file;
  std::size_t line = 0;
  std::string grant;  // "allow-alloc"
};

/// One row of the per-function cost table. Site counts are raw profile
/// data: they include granted and allow()-suppressed sites.
struct FunctionCost {
  std::string function;  // display name
  std::string file;
  std::size_t line = 0;
  bool serve_reachable = false;
  bool predict_reachable = false;
  std::size_t loop_depth = 0;   // max loop nesting in the body
  std::size_t alloc_sites = 0;  // heavy constructions / growth inside loops
  std::size_t copy_sites = 0;   // materializing calls in loops + by-value
  std::string chain;            // witness, e.g. "predict_batch -> f -> g"
};

/// Parses the hot-path manifest:
///
///   [allow_alloc]
///   functions = ["VminPredictor::predict_batch"]
///
/// Entries may be bare or Class::-qualified names. Throws
/// std::runtime_error on malformed input.
std::set<std::string> parse_hotpath_manifest(const std::string& toml_text);

/// Reads and parses a manifest file. Throws on IO or parse errors.
std::set<std::string> load_hotpath_manifest(const std::string& path);

struct HotPathOptions {
  LayerConfig layers;
  /// Functions committed as allow-alloc (parse_hotpath_manifest). Entries
  /// match a definition's display name or bare name.
  std::set<std::string> alloc_manifest;
  /// Manifest path for diagnostics (stale entries report against it).
  std::string manifest_display = "hotpath_tiers.toml";
};

struct HotPathAnalysis {
  /// Sorted by (file, line, rule, message); grants and allow()
  /// suppressions applied.
  std::vector<Diagnostic> diagnostics;
  /// Every explicit hot-path grant annotation, sorted by (file, line).
  std::vector<HotPathRecord> grants;
  /// Cost row per hot function, sorted by (file, line, function).
  std::vector<FunctionCost> costs;
};

/// A heavy parameter taken by value: Matrix/Vector/std::vector/std::string
/// with no `&`/`*` anywhere in its parameter-list segment.
struct HeavyParam {
  std::string type;
  std::string name;
};

/// True when tokens[i] spells a heavy container type (bare, or qualified by
/// a namespace we own) rather than a member or foreign name. Shared with
/// the --fix signature rewriter.
bool heavy_type_at(const std::vector<Token>& t, std::size_t i);

/// Index of the first token after tokens[i]'s optional template argument
/// list (`vector<double>` -> the token after '>').
std::size_t after_template_args(const std::vector<Token>& t, std::size_t i);

/// By-value heavy parameters of a definition whose parameter list opens at
/// tokens[params_open].
std::vector<HeavyParam> heavy_value_params(const std::vector<Token>& t,
                                           std::size_t params_open);

/// True when the body moves, assigns to, writes through, or calls a mutator
/// on `name` — the by-value copy is then load-bearing and the parameter
/// must stay by value. Shared by the heavy-pass-by-value rule and the --fix
/// rewriter so they can never disagree about what is safely const-ref.
bool param_mutated(const std::vector<Token>& t, std::size_t body_first,
                   std::size_t body_last, const std::string& name);

/// Runs all phase-5 rules over the file set.
HotPathAnalysis analyze_hot_paths(const std::vector<SourceFile>& files,
                                  const HotPathOptions& options);

/// Convenience: collects .hpp/.cpp files under `root` (rel paths computed
/// against `root`, sorted) and analyzes them. Throws on IO errors.
HotPathAnalysis analyze_hot_paths_directory(const std::string& root,
                                            const HotPathOptions& options);

/// Renders the cost table as the `--hotpath-report` JSON document —
/// deterministic (sorted rows, fixed key order), so the report can be
/// byte-compared across thread widths like the SARIF output.
std::string hotpath_report_json(const HotPathAnalysis& analysis);

}  // namespace vmincqr::lint
