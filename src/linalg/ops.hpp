// Free-function linear-algebra operations on Matrix / Vector.
#pragma once

#include "linalg/matrix.hpp"

namespace vmincqr::linalg {

/// Matrix product A * B. Throws std::invalid_argument on inner-dim mismatch.
Matrix matmul(const Matrix& a, const Matrix& b);

/// Matrix-vector product A * x. Throws std::invalid_argument on mismatch.
Vector matvec(const Matrix& a, const Vector& x);

/// A^T * A (Gram matrix), computed without materializing the transpose.
Matrix gram(const Matrix& a);

/// A^T * y. Throws std::invalid_argument on mismatch.
Vector transpose_matvec(const Matrix& a, const Vector& y);

/// Dot product. Throws std::invalid_argument on length mismatch.
double dot(const Vector& a, const Vector& b);

/// Euclidean norm.
double norm2(const Vector& v);

/// Elementwise a + b / a - b. Throw on length mismatch.
Vector add(const Vector& a, const Vector& b);
Vector sub(const Vector& a, const Vector& b);

/// Scalar multiply.
Vector scale(const Vector& v, double s);

/// In-place a += s * b (axpy). Throws on length mismatch.
void axpy(double s, const Vector& b, Vector& a);

/// Squared Euclidean distance between two rows of (possibly different)
/// matrices; used by kernel evaluations. No bounds checks (hot path);
/// matrices must share their column count.
double row_sq_dist(const Matrix& a, std::size_t i, const Matrix& b,
                   std::size_t j);

}  // namespace vmincqr::linalg
