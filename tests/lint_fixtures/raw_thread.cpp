// Golden fixture: raw-thread — a std::thread outside src/parallel/ must
// fire exactly once. All concurrency goes through the deterministic pool.
// (No #include <thread> here: that would additionally fire the phase-3
// atomic-outside-parallel include ban; fixtures are linted, never compiled.)

void spawn_worker() {
  std::thread worker([] {});
  worker.join();
}
