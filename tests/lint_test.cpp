// Golden-file tests for vmincqr_lint: each fixture in tests/lint_fixtures/
// makes exactly one rule fire, suppressions silence diagnostics, and the
// real src/ tree is clean. Suite names are lowercase so `ctest -R lint`
// selects every linter-related test.
#include <gtest/gtest.h>

#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include "lint.hpp"

namespace {

namespace fs = std::filesystem;
using vmincqr::lint::Diagnostic;
using vmincqr::lint::lint_file;
using vmincqr::lint::lint_source;

std::string fixture(const std::string& name) {
  return std::string(VMINCQR_LINT_FIXTURE_DIR) + "/" + name;
}

struct GoldenCase {
  const char* file;
  const char* rule;
};

// One fixture per rule; the linter must fire exactly once, with the right id.
const GoldenCase kGolden[] = {
    {"pragma_once.hpp", "pragma-once"},
    {"using_namespace_header.hpp", "using-namespace-header"},
    {"no_rand.cpp", "no-rand"},
    {"no_endl.cpp", "no-endl"},
    {"float_equality.cpp", "float-equality"},
    {"raw_double_param.hpp", "raw-double-param"},
    {"matrix_by_value.hpp", "matrix-by-value"},
    {"contract_coverage.cpp", "contract-coverage"},
};

TEST(lint, EveryRuleFiresExactlyOnceOnItsFixture) {
  for (const auto& test_case : kGolden) {
    const auto diags = lint_file(fixture(test_case.file));
    ASSERT_EQ(diags.size(), 1u)
        << test_case.file << ": expected exactly one diagnostic, got "
        << diags.size();
    EXPECT_EQ(diags[0].rule, test_case.rule) << test_case.file;
    EXPECT_GT(diags[0].line, 0u);
  }
}

TEST(lint, FixturesCoverEveryRuleInTheTable) {
  std::set<std::string> fired;
  for (const auto& test_case : kGolden) fired.insert(test_case.rule);
  for (const auto& rule : vmincqr::lint::rule_table()) {
    EXPECT_TRUE(fired.count(rule.id) == 1)
        << "rule '" << rule.id << "' has no golden fixture";
  }
  EXPECT_EQ(fired.size(), vmincqr::lint::rule_table().size());
}

TEST(lint, RuleIdsAreUnique) {
  std::set<std::string> ids;
  for (const auto& rule : vmincqr::lint::rule_table()) {
    EXPECT_TRUE(ids.insert(rule.id).second) << "duplicate rule id " << rule.id;
  }
}

TEST(lint, SuppressionsSilenceSameLineAndPreviousLine) {
  EXPECT_TRUE(lint_file(fixture("suppressed.cpp")).empty());
}

TEST(lint, CleanFileProducesNoDiagnostics) {
  EXPECT_TRUE(lint_file(fixture("clean.cpp")).empty());
}

TEST(lint, SuppressionIsPerRule) {
  // An allow() for a different rule must not silence the finding.
  const std::string src =
      "bool f(double x) {\n"
      "  return x == 0.0;  // vmincqr-lint: allow(no-endl)\n"
      "}\n";
  const auto diags = lint_source("probe.cpp", src);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "float-equality");
}

TEST(lint, CommentsAndStringsAreNotCode) {
  const std::string src =
      "// rand() and std::endl in comments are fine\n"
      "const char* s = \"x == 0.0 and rand()\";\n"
      "/* block: y != 1.5 */\n";
  EXPECT_TRUE(lint_source("probe.cpp", src).empty());
}

TEST(lint, FormatIsFileLineRuleMessage) {
  const Diagnostic d{"a/b.cpp", 12, "no-rand", "msg"};
  EXPECT_EQ(vmincqr::lint::format(d), "a/b.cpp:12: [no-rand] msg");
}

TEST(lint, RealTreeIsClean) {
  std::vector<std::string> files;
  for (const auto& entry :
       fs::recursive_directory_iterator(VMINCQR_LINT_SRC_DIR)) {
    if (entry.is_regular_file() &&
        vmincqr::lint::is_lintable(entry.path().string())) {
      files.push_back(entry.path().string());
    }
  }
  ASSERT_GT(files.size(), 50u) << "src tree not found where expected";
  for (const auto& file : files) {
    const auto diags = lint_file(file);
    for (const auto& d : diags) ADD_FAILURE() << vmincqr::lint::format(d);
  }
}

}  // namespace
