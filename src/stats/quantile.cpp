#include "stats/quantile.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace vmincqr::stats {

double quantile_linear(std::vector<double> values, double q) {
  if (values.empty()) throw std::invalid_argument("quantile_linear: empty");
  if (q < 0.0 || q > 1.0) {
    throw std::invalid_argument("quantile_linear: q outside [0, 1]");
  }
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = static_cast<std::size_t>(std::ceil(pos));
  if (lo == hi) return values[lo];
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double quantile_higher(std::vector<double> values, double q) {
  if (values.empty()) throw std::invalid_argument("quantile_higher: empty");
  if (q <= 0.0 || q > 1.0) {
    throw std::invalid_argument("quantile_higher: q outside (0, 1]");
  }
  std::sort(values.begin(), values.end());
  const auto n = values.size();
  auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(n)));  // 1-indexed
  rank = std::clamp<std::size_t>(rank, 1, n);
  return values[rank - 1];
}

double conformal_quantile(std::vector<double> scores,
                          core::MiscoverageAlpha alpha) {
  if (scores.empty()) {
    throw std::invalid_argument("conformal_quantile: empty calibration set");
  }
  const auto m = scores.size();
  const double target =
      std::ceil((static_cast<double>(m) + 1.0) * (1.0 - alpha));
  if (target > static_cast<double>(m)) {
    // Not enough calibration data for a finite guarantee at this alpha.
    return std::numeric_limits<double>::infinity();
  }
  std::sort(scores.begin(), scores.end());
  auto rank = static_cast<std::size_t>(target);  // 1-indexed
  rank = std::clamp<std::size_t>(rank, 1, m);
  return scores[rank - 1];
}

std::size_t min_calibration_size(core::MiscoverageAlpha alpha) {
  // ceil((M+1)(1-alpha)) <= M  <=>  M >= ceil(1/alpha) - 1 ... search directly
  // to avoid floating-point edge cases.
  for (std::size_t m = 1; m < 1u << 26; ++m) {
    const double target =
        std::ceil((static_cast<double>(m) + 1.0) * (1.0 - alpha));
    if (target <= static_cast<double>(m)) return m;
  }
  return std::numeric_limits<std::size_t>::max();
}

}  // namespace vmincqr::stats
