// CatBoost-style boosting: oblivious (symmetric) decision trees plus ordered
// boosting (paper Sec. IV-C.3 uses the CatBoost package with 100 trees).
//
// Oblivious trees apply ONE (feature, threshold) test per level, so a depth-d
// tree has 2^d leaves addressed by a d-bit mask — the structural prior that
// makes CatBoost robust on small datasets like the paper's 156 chips.
//
// Ordered boosting (Prokhorenkova et al., 2018) combats prediction shift: the
// model value used to compute sample i's gradient is built only from samples
// that precede i in a random permutation. We implement the single-permutation
// variant: leaf statistics are accumulated in permutation order, and each
// sample's running prediction is updated with the prefix-only leaf estimate.
// Split scoring uses plain (all-sample) statistics, as CatBoost's Plain mode
// does; the `ordered` flag switches the leaf-estimation scheme.
#pragma once

#include <cstdint>

#include "models/flat_forest.hpp"
#include "models/losses.hpp"
#include "models/regressor.hpp"
#include "rng/rng.hpp"

namespace vmincqr::models {

struct OrderedBoostConfig {
  Loss loss = Loss::squared();
  int n_rounds = 100;          ///< the paper reduces CatBoost to 100 trees
  double learning_rate = 0.1;
  int depth = 4;               ///< shallower than CatBoost's default 6:
                               ///< ~150-sample datasets overfit 64-leaf trees
  double l2_leaf_reg = 3.0;    ///< CatBoost default
  int border_count = 24;       ///< feature-quantile split candidates
  /// Ordered vs. plain boosting. Ordered boosting is CatBoost's hallmark
  /// defence against prediction shift; our single-permutation variant trades
  /// some accuracy for that protection and measures worse on the paper-sized
  /// datasets (see bench/ablation_conformal), so Plain is the default — as
  /// CatBoost itself recommends when overfitting is controlled by other
  /// means (shallow trees + L2).
  bool ordered = false;
  /// Ordered-mode permutation policy. A single fixed permutation gives a
  /// consistent prefix-model trajectory (stable; best for squared loss) but
  /// systematically starves early-permutation samples of updates, which
  /// inflates extreme-quantile leaf refits. A fresh permutation per round
  /// fixes the starvation and is the default for pinball loss.
  bool fresh_permutation_each_round = false;
  std::uint64_t seed = 1234;   ///< permutation seed
};

/// One oblivious tree: `depth` (feature, threshold) tests and 2^depth leaves.
struct ObliviousTree {
  std::vector<std::size_t> features;
  std::vector<double> thresholds;
  std::vector<double> leaf_values;

  /// Leaf index for a feature row (bit l set iff row[feature_l] > thr_l).
  [[nodiscard]] std::size_t leaf_index(const double* row) const {
    std::size_t idx = 0;
    for (std::size_t l = 0; l < features.size(); ++l) {
      idx |= static_cast<std::size_t>(row[features[l]] > thresholds[l]) << l;
    }
    return idx;
  }
  [[nodiscard]] double predict_row(const double* row) const {
    return leaf_values[leaf_index(row)];
  }
};

/// Fitted state of an OrderedBoostedTrees ensemble. ObliviousTree is already
/// a plain value type, so the trees serialize as-is.
struct OrderedBoostParams {
  double base_score = 0.0;
  double learning_rate = 0.1;
  std::size_t n_features = 0;
  std::vector<ObliviousTree> trees;
  Vector feature_gains;  ///< accumulated split gains (importance diagnostics)
};

class OrderedBoostedTrees final : public Regressor {
 public:
  explicit OrderedBoostedTrees(OrderedBoostConfig config = {});

  void fit(const Matrix& x, const Vector& y) override;
  [[nodiscard]] Vector predict(const Matrix& x) const override;
  [[nodiscard]] std::unique_ptr<Regressor> clone_config() const override;
  [[nodiscard]] std::string name() const override { return "CatBoost"; }
  [[nodiscard]] bool fitted() const override { return fitted_; }

  [[nodiscard]] std::size_t n_trees() const noexcept { return trees_.size(); }

  /// Gain-based feature importance (normalized to sum 1; all-zero when no
  /// split improved the objective). Throws std::logic_error if not fitted.
  [[nodiscard]] Vector feature_importance() const;

  /// Copies out the fitted state. Throws std::logic_error if not fitted.
  [[nodiscard]] OrderedBoostParams export_params() const;

  /// Adopts previously exported state and marks the model fitted.
  /// Throws std::invalid_argument on malformed trees or hyperparameters.
  void import_params(OrderedBoostParams params);

 private:
  /// Quantile-based candidate thresholds per feature.
  [[nodiscard]] std::vector<std::vector<double>> compute_borders(const Matrix& x) const;

  /// Rebuilds flat_ from trees_ (fit and import both end here).
  void rebuild_flat();

  OrderedBoostConfig config_;
  std::vector<ObliviousTree> trees_;
  FlatObliviousForest flat_;  ///< SoA level/leaf planes (predict kernel)
  Vector feature_gains_;
  double base_score_ = 0.0;
  std::size_t n_features_ = 0;
  bool fitted_ = false;
};

}  // namespace vmincqr::models
