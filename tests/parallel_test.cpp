// Unit tests for the deterministic parallel substrate (src/parallel/):
// chunk-grid math, pool lifecycle (lazy start, shutdown/restart, width
// changes), exception propagation (lowest chunk index wins, matching a
// sequential first-throw), nested-run inline fallback, and the determinism
// contract on the primitives themselves — the end-to-end model-level proof
// lives in parallel_invariance_test.cpp.
#include <gtest/gtest.h>

#include <cstddef>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "parallel/parallel_for.hpp"
#include "parallel/thread_pool.hpp"

using namespace vmincqr;

namespace {

/// Every test that changes the pool width restores env/hardware resolution
/// on exit so test order cannot leak a stale override.
struct ThreadOverrideGuard {
  ~ThreadOverrideGuard() { parallel::set_max_threads(0); }
};

// --- chunk-grid math --------------------------------------------------------

TEST(ChunkGrid, ExplicitGrainIsUsedVerbatim) {
  EXPECT_EQ(parallel::resolve_grain(100, 7), 7u);
  EXPECT_EQ(parallel::chunk_count(100, 7), 15u);  // ceil(100 / 7)
  EXPECT_EQ(parallel::chunk_count(100, 100), 1u);
  EXPECT_EQ(parallel::chunk_count(100, 1000), 1u);
}

TEST(ChunkGrid, AutoGrainTargetsAtMostKAutoMaxChunks) {
  for (std::size_t n : {1u, 2u, 63u, 64u, 65u, 1000u, 4096u, 100000u}) {
    const std::size_t chunks = parallel::chunk_count(n, 0);
    EXPECT_LE(chunks, parallel::kAutoMaxChunks) << "n=" << n;
    EXPECT_GE(chunks, 1u) << "n=" << n;
  }
  // Small n: one item per chunk, n chunks.
  EXPECT_EQ(parallel::chunk_count(5, 0), 5u);
}

TEST(ChunkGrid, ZeroItemsMeansZeroChunks) {
  EXPECT_EQ(parallel::chunk_count(0, 0), 0u);
  EXPECT_EQ(parallel::chunk_count(0, 8), 0u);
}

TEST(ChunkGrid, ChunkRangesTileTheIndexSpaceExactly) {
  for (std::size_t n : {1u, 2u, 7u, 64u, 65u, 129u}) {
    for (std::size_t grain : {0u, 1u, 2u, 5u, 64u}) {
      const std::size_t chunks = parallel::chunk_count(n, grain);
      std::size_t expected_begin = 0;
      for (std::size_t c = 0; c < chunks; ++c) {
        const auto r = parallel::chunk_range(n, grain, c);
        EXPECT_EQ(r.begin, expected_begin) << "n=" << n << " grain=" << grain;
        EXPECT_LT(r.begin, r.end);
        expected_begin = r.end;
      }
      EXPECT_EQ(expected_begin, n) << "n=" << n << " grain=" << grain;
    }
  }
}

TEST(ChunkGrid, GridNeverDependsOnThreadCount) {
  ThreadOverrideGuard guard;
  std::vector<std::size_t> reference;
  parallel::for_each_chunk(100, 9, [&](std::size_t c, std::size_t b,
                                       std::size_t e) {
    reference.push_back(c);
    reference.push_back(b);
    reference.push_back(e);
  }, /*use_pool=*/false);
  for (std::size_t threads : {1u, 2u, 3u, 8u}) {
    parallel::set_max_threads(threads);
    std::vector<std::vector<std::size_t>> per_chunk(
        parallel::chunk_count(100, 9));
    parallel::for_each_chunk(100, 9, [&](std::size_t c, std::size_t b,
                                         std::size_t e) {
      per_chunk[c] = {c, b, e};
    });
    std::vector<std::size_t> flat;
    for (const auto& triple : per_chunk) {
      flat.insert(flat.end(), triple.begin(), triple.end());
    }
    EXPECT_EQ(flat, reference) << "threads=" << threads;
  }
}

// --- parallel_for -----------------------------------------------------------

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  ThreadOverrideGuard guard;
  parallel::set_max_threads(4);
  for (std::size_t n : {0u, 1u, 2u, 3u, 100u, 257u}) {
    std::vector<int> hits(n, 0);
    parallel::parallel_for(n, /*grain=*/1, [&](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) ++hits[i];
    });
    EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0),
              static_cast<int>(n));
  }
}

TEST(ParallelFor, FewerItemsThanThreadsStillCoversAll) {
  ThreadOverrideGuard guard;
  parallel::set_max_threads(8);
  std::vector<int> hits(3, 0);
  parallel::parallel_for(3, 1, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) ++hits[i];
  });
  EXPECT_EQ(hits, (std::vector<int>{1, 1, 1}));
}

TEST(ParallelFor, InlinePathMatchesPoolPath) {
  ThreadOverrideGuard guard;
  parallel::set_max_threads(4);
  std::vector<double> pooled(1000), inlined(1000);
  const auto fill = [](std::vector<double>& out) {
    return [&out](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) {
        out[i] = 1.0 / (1.0 + static_cast<double>(i));
      }
    };
  };
  parallel::parallel_for(1000, 0, fill(pooled), /*use_pool=*/true);
  parallel::parallel_for(1000, 0, fill(inlined), /*use_pool=*/false);
  EXPECT_EQ(pooled, inlined);
}

// --- deterministic reduction ------------------------------------------------

/// An FP sum whose result depends on association order: catches any pool
/// that folds partials in completion order rather than chunk order.
double chunked_sum(std::size_t n, std::size_t grain, bool use_pool) {
  return parallel::parallel_deterministic_reduce(
      n, grain, 0.0,
      [](std::size_t b, std::size_t e) {
        double s = 0.0;
        for (std::size_t i = b; i < e; ++i) {
          s += 1.0 / (static_cast<double>(i) + 0.1);
        }
        return s;
      },
      [](double acc, double part) { return acc + part; }, use_pool);
}

TEST(DeterministicReduce, BitIdenticalAcrossThreadCounts) {
  ThreadOverrideGuard guard;
  parallel::set_max_threads(1);
  const double reference = chunked_sum(10007, 64, true);
  for (std::size_t threads : {2u, 3u, 5u, 8u}) {
    parallel::set_max_threads(threads);
    // EXPECT_EQ on doubles: exact bit-for-bit agreement, not a tolerance.
    EXPECT_EQ(chunked_sum(10007, 64, true), reference)
        << "threads=" << threads;
  }
  EXPECT_EQ(chunked_sum(10007, 64, false), reference) << "inline path";
}

TEST(DeterministicReduce, EmptyInputReturnsInit) {
  const double r = parallel::parallel_deterministic_reduce(
      0, 0, 42.0, [](std::size_t, std::size_t) { return 1.0; },
      [](double a, double b) { return a + b; });
  EXPECT_EQ(r, 42.0);
}

TEST(DeterministicReduce, FoldOrderIsAscendingChunkIndex) {
  ThreadOverrideGuard guard;
  parallel::set_max_threads(4);
  // Non-commutative combine (string concatenation) exposes the fold order.
  const std::string order = parallel::parallel_deterministic_reduce(
      10, 2, std::string{},
      [](std::size_t b, std::size_t) { return std::to_string(b / 2); },
      [](std::string acc, std::string part) { return acc + part; });
  EXPECT_EQ(order, "01234");
}

// --- exception propagation --------------------------------------------------

TEST(ThreadPoolErrors, LowestChunkExceptionWinsAtEveryWidth) {
  ThreadOverrideGuard guard;
  for (std::size_t threads : {1u, 2u, 8u}) {
    parallel::set_max_threads(threads);
    try {
      parallel::ThreadPool::instance().run(16, [](std::size_t c) {
        if (c >= 3) {
          throw std::runtime_error("chunk " + std::to_string(c));
        }
      });
      FAIL() << "expected a throw at threads=" << threads;
    } catch (const std::runtime_error& e) {
      // The sequential first-throw: chunk 3, never 4..15.
      EXPECT_STREQ(e.what(), "chunk 3") << "threads=" << threads;
    }
  }
}

TEST(ThreadPoolErrors, PoolIsReusableAfterAThrow) {
  ThreadOverrideGuard guard;
  parallel::set_max_threads(4);
  EXPECT_THROW(parallel::ThreadPool::instance().run(
                   8, [](std::size_t) { throw std::logic_error("boom"); }),
               std::logic_error);
  std::vector<int> hits(8, 0);
  parallel::ThreadPool::instance().run(8, [&](std::size_t c) { hits[c] = 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 8);
}

// --- nesting ----------------------------------------------------------------

TEST(ThreadPoolNesting, NestedParallelForRunsInlineWithoutDeadlock) {
  ThreadOverrideGuard guard;
  parallel::set_max_threads(4);
  std::vector<std::vector<int>> inner_hits(6, std::vector<int>(5, 0));
  std::vector<int> nested_flag(6, 0);
  parallel::parallel_for(6, 1, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      nested_flag[i] = parallel::ThreadPool::in_worker() ? 1 : 0;
      parallel::parallel_for(5, 1, [&, i](std::size_t ib, std::size_t ie) {
        for (std::size_t j = ib; j < ie; ++j) ++inner_hits[i][j];
      });
    }
  });
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(nested_flag[i], 1) << "outer chunk " << i
                                 << " not marked in_worker";
    EXPECT_EQ(inner_hits[i], (std::vector<int>{1, 1, 1, 1, 1}));
  }
}

TEST(ThreadPoolNesting, InWorkerIsFalseOutsideTasks) {
  EXPECT_FALSE(parallel::ThreadPool::in_worker());
}

// --- lifecycle --------------------------------------------------------------

TEST(ThreadPoolLifecycle, SetMaxThreadsControlsWidth) {
  ThreadOverrideGuard guard;
  parallel::set_max_threads(3);
  EXPECT_EQ(parallel::max_threads(), 3u);
  EXPECT_EQ(parallel::ThreadPool::instance().n_threads(), 3u);
  parallel::set_max_threads(0);
  EXPECT_GE(parallel::max_threads(), 1u);
}

TEST(ThreadPoolLifecycle, RepeatedShutdownAndRestartStaysCorrect) {
  ThreadOverrideGuard guard;
  for (int cycle = 0; cycle < 5; ++cycle) {
    parallel::set_max_threads(static_cast<std::size_t>(cycle % 3 + 1));
    std::vector<int> hits(12, 0);
    parallel::ThreadPool::instance().run(12,
                                         [&](std::size_t c) { hits[c] = 1; });
    EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 12)
        << "cycle " << cycle;
    parallel::ThreadPool::instance().shutdown();
    parallel::ThreadPool::instance().shutdown();  // idempotent
  }
}

TEST(ThreadPoolLifecycle, ZeroChunksIsANoOp) {
  ThreadOverrideGuard guard;
  parallel::set_max_threads(4);
  bool called = false;
  parallel::ThreadPool::instance().run(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

}  // namespace
