#include "stats/descriptive.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace vmincqr::stats {

double mean(const std::vector<double>& v) {
  if (v.empty()) throw std::invalid_argument("mean: empty input");
  double acc = 0.0;
  for (double x : v) acc += x;
  return acc / static_cast<double>(v.size());
}

double variance(const std::vector<double>& v) {
  const double m = mean(v);
  double acc = 0.0;
  for (double x : v) acc += (x - m) * (x - m);
  return acc / static_cast<double>(v.size());
}

double sample_variance(const std::vector<double>& v) {
  if (v.size() < 2) throw std::invalid_argument("sample_variance: n < 2");
  const double m = mean(v);
  double acc = 0.0;
  for (double x : v) acc += (x - m) * (x - m);
  return acc / static_cast<double>(v.size() - 1);
}

double stddev(const std::vector<double>& v) { return std::sqrt(variance(v)); }

double pearson(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("pearson: length mismatch");
  }
  if (a.empty()) throw std::invalid_argument("pearson: empty input");
  const double ma = mean(a);
  const double mb = mean(b);
  double sab = 0.0, saa = 0.0, sbb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double da = a[i] - ma;
    const double db = b[i] - mb;
    sab += da * db;
    saa += da * da;
    sbb += db * db;
  }
  const double denom = std::sqrt(saa * sbb);
  if (denom <= 0.0 || !std::isfinite(denom)) return 0.0;
  return std::clamp(sab / denom, -1.0, 1.0);
}

double min_value(const std::vector<double>& v) {
  if (v.empty()) throw std::invalid_argument("min_value: empty input");
  return *std::min_element(v.begin(), v.end());
}

double max_value(const std::vector<double>& v) {
  if (v.empty()) throw std::invalid_argument("max_value: empty input");
  return *std::max_element(v.begin(), v.end());
}

}  // namespace vmincqr::stats
