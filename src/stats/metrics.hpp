// Evaluation metrics for point prediction (R^2, RMSE, MAE) and region
// prediction (empirical coverage, mean interval length) — Sec. IV-B of the
// paper.
#pragma once

#include <vector>

namespace vmincqr::stats {

/// Coefficient of determination. Returns 1 for a perfect fit. When the
/// truth is constant, returns 1.0 if predictions match exactly, else -inf
/// is avoided by returning 0.0 (convention: no variance to explain).
/// Throws std::invalid_argument on mismatch or empty input.
double r_squared(const std::vector<double>& truth,
                 const std::vector<double>& pred);

/// Root mean squared error. Throws on mismatch or empty input.
double rmse(const std::vector<double>& truth, const std::vector<double>& pred);

/// Mean absolute error. Throws on mismatch or empty input.
double mae(const std::vector<double>& truth, const std::vector<double>& pred);

/// Fraction of truth values inside [lower_i, upper_i]. Throws on mismatch or
/// empty input.
double interval_coverage(const std::vector<double>& truth,
                         const std::vector<double>& lower,
                         const std::vector<double>& upper);

/// Mean of (upper_i - lower_i). Throws on mismatch or empty input.
double mean_interval_length(const std::vector<double>& lower,
                            const std::vector<double>& upper);

/// Mean pinball (quantile) loss at level q — Eq. (5) of the paper.
/// Throws on mismatch, empty input, or q outside [0, 1].
double pinball_loss(const std::vector<double>& truth,
                    const std::vector<double>& pred, double q);

}  // namespace vmincqr::stats
