# Empty dependencies file for predictive_test.
# This may be replaced when dependencies are built.
