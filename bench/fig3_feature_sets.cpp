// Reproduces Fig. 3 of the paper: average interval length of CQR CatBoost
// for SCAN Vmin prediction under three feature sets — (1) on-chip +
// parametric, (2) parametric only, (3) on-chip only — per stress read point
// and temperature. The series with monitors should sit below the
// parametric-only series, and monitors alone should beat parametric alone
// despite having ~10x fewer raw features.
#include "bench_common.hpp"

using namespace vmincqr;

int main() {
  bench::Stopwatch watch;
  const auto generated = bench::make_paper_dataset();
  const auto config = bench::paper_experiment_config();
  const core::RegionMethodSpec cqr_catboost{
      core::RegionMethodSpec::Family::kCqr, models::ModelKind::kCatboost};

  const core::FeatureSet feature_sets[] = {core::FeatureSet::kBoth,
                                           core::FeatureSet::kParametricOnly,
                                           core::FeatureSet::kOnChipOnly};

  std::printf(
      "=== Fig. 3: CQR CatBoost interval length (mV) by feature set ===\n\n");

  struct Cell {
    core::Scenario scenario;
  };
  std::vector<Cell> cells;
  for (auto set : feature_sets) {
    for (const auto& s : bench::paper_scenario_grid(set)) {
      cells.push_back({s});
    }
  }
  const auto results = core::parallel_map<core::RegionMethodScore>(
      cells.size(), [&](std::size_t i) {
        return core::evaluate_region_method(generated.dataset,
                                            cells[i].scenario, cqr_catboost,
                                            config);
      });

  const auto find_length = [&](core::FeatureSet set, double t, double temp) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const auto& s = cells[i].scenario;
      if (s.feature_set == set && s.read_point_hours == t &&
          s.temperature_c == temp) {
        return results[i].mean_length_mv;
      }
    }
    return -1.0;
  };

  for (double temp : silicon::standard_temperatures()) {
    core::TextTable table({"Temp", "Read point", "on-chip+parametric (mV)",
                           "parametric only (mV)", "on-chip only (mV)"});
    for (double t : silicon::standard_read_points()) {
      table.add_row(
          {bench::temp_label(temp), bench::hours_label(t),
           core::format_double(find_length(core::FeatureSet::kBoth, t, temp), 2),
           core::format_double(
               find_length(core::FeatureSet::kParametricOnly, t, temp), 2),
           core::format_double(
               find_length(core::FeatureSet::kOnChipOnly, t, temp), 2)});
    }
    std::printf("%s\n", table.to_string().c_str());
  }

  // Shape check: during stress (t > 0), the feature set with monitors should
  // win more cells than parametric-only.
  int both_wins = 0, cells_counted = 0;
  for (double temp : silicon::standard_temperatures()) {
    for (double t : silicon::standard_read_points()) {
      if (t == 0.0) continue;
      ++cells_counted;
      if (find_length(core::FeatureSet::kBoth, t, temp) <
          find_length(core::FeatureSet::kParametricOnly, t, temp)) {
        ++both_wins;
      }
    }
  }
  std::printf(
      "shape check: on-chip+parametric beats parametric-only in %d/%d "
      "stress cells (paper: consistently shorter)\n",
      both_wins, cells_counted);
  std::printf("\n[fig3_feature_sets] done in %.1f s\n", watch.seconds());
  return 0;
}
