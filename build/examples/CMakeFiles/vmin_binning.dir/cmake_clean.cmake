file(REMOVE_RECURSE
  "CMakeFiles/vmin_binning.dir/vmin_binning.cpp.o"
  "CMakeFiles/vmin_binning.dir/vmin_binning.cpp.o.d"
  "vmin_binning"
  "vmin_binning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmin_binning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
