# Sanitizers.cmake — fused sanitizer instrumentation for all targets.
#
# Usage:
#   cmake -B build -S . -DVMINCQR_SANITIZE="address;undefined"
#   cmake -B build -S . -DVMINCQR_SANITIZE=thread
#
# VMINCQR_SANITIZE is a semicolon-separated list drawn from:
#   address | undefined | leak | thread | memory
# "thread" is mutually exclusive with "address"/"leak" (toolchain rule);
# we diagnose that combination instead of letting the link fail cryptically.
#
# Flags are applied globally (add_compile_options/add_link_options) so every
# target — library, tests, benches, examples — is instrumented consistently;
# mixing instrumented and uninstrumented TUs produces false negatives.

set(VMINCQR_SANITIZE "" CACHE STRING
    "Semicolon-separated sanitizer list (address;undefined;leak;thread;memory)")

function(vmincqr_enable_sanitizers)
  if(NOT VMINCQR_SANITIZE)
    return()
  endif()

  if(MSVC)
    if("address" IN_LIST VMINCQR_SANITIZE)
      add_compile_options(/fsanitize=address)
    endif()
    return()
  endif()

  set(_known address undefined leak thread memory)
  set(_selected "")
  foreach(_san IN LISTS VMINCQR_SANITIZE)
    string(TOLOWER "${_san}" _san)
    if(NOT _san IN_LIST _known)
      message(FATAL_ERROR
        "VMINCQR_SANITIZE: unknown sanitizer '${_san}' "
        "(expected one of: ${_known})")
    endif()
    list(APPEND _selected "${_san}")
  endforeach()
  list(REMOVE_DUPLICATES _selected)

  if("thread" IN_LIST _selected AND
     ("address" IN_LIST _selected OR "leak" IN_LIST _selected))
    message(FATAL_ERROR
      "VMINCQR_SANITIZE: 'thread' cannot be combined with 'address'/'leak'")
  endif()
  if("memory" IN_LIST _selected AND NOT
     CMAKE_CXX_COMPILER_ID MATCHES "Clang")
    message(FATAL_ERROR
      "VMINCQR_SANITIZE: 'memory' requires Clang (current: "
      "${CMAKE_CXX_COMPILER_ID})")
  endif()

  list(JOIN _selected "," _fused)
  message(STATUS "vmincqr: sanitizers enabled: -fsanitize=${_fused}")

  add_compile_options(
    -fsanitize=${_fused}
    -fno-omit-frame-pointer
    -fno-sanitize-recover=all
    -g
  )
  add_link_options(-fsanitize=${_fused})

  # Make UBSan abort with a report instead of silently continuing, and give
  # ASan a deterministic exit code that CTest treats as failure.
  set(VMINCQR_SANITIZER_ENV
      "ASAN_OPTIONS=abort_on_error=0:exitcode=99:detect_leaks=1"
      "UBSAN_OPTIONS=print_stacktrace=1:halt_on_error=1"
      PARENT_SCOPE)
  set(VMINCQR_SANITIZERS_ACTIVE TRUE PARENT_SCOPE)
endfunction()
