// Other half of the deliberate header cycle (see a.hpp).
#pragma once

#include "cyc/a.hpp"

struct BThing {
  int b = 0;
};

inline int b_value() { return AThing{}.a; }
