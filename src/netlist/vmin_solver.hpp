// Structural Vmin: the lowest supply at which the design still meets its
// clock period — found by bisection over the (monotone) delay-vs-voltage
// curve produced by STA. This is the computational analogue of the ATE
// procedure the paper describes: "testing chips at a high operating voltage
// and decreasing step by step until they fail".
#pragma once

#include "netlist/cell.hpp"
#include "netlist/sta.hpp"

namespace vmincqr::netlist {

struct VminSolverConfig {
  double v_low = 0.35;       ///< search bracket low (V)
  double v_high = 1.20;      ///< search bracket high (V)
  double tolerance_v = 5e-4; ///< bisection resolution (0.5 mV)
  int max_iterations = 40;
};

struct VminSolution {
  double vmin = 0.0;
  bool feasible = false;  ///< false if the design fails even at v_high
  int sta_evaluations = 0;
};

/// Finds min { V : worst_arrival(V) <= clock_period_ns }.
/// Throws std::invalid_argument for a non-positive clock period or an
/// inverted bracket.
VminSolution solve_vmin(const Netlist& netlist, const DelayModelConfig& config,
                        double clock_period_ns, double temp_c,
                        const GateVthShift& vth_shift = nullptr,
                        const VminSolverConfig& solver = {});

}  // namespace vmincqr::netlist
