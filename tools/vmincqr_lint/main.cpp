// CLI driver for vmincqr_lint.
//
// Usage:
//   vmincqr_lint [options] <file-or-dir>...
//
// Options:
//   --rules               print both rule tables and exit
//   --format=text|sarif   output format (default text)
//   --layers=FILE         layering DAG config; enables the layer-violation
//                         rule for directory arguments
//   --include-root=DIR    root against which quoted includes resolve for the
//                         include-graph pass (default: first directory arg)
//   --fix                 apply the mechanically safe fixes (no-endl,
//                         pragma-once, unordered→sorted container rewrite)
//                         in place, then re-lint
//   --budget-ms=N         fail (exit 1) if the whole run exceeds N ms — the
//                         semantic pass must never slow the tier-1 suite
//
// The include-graph pass (layering, cycles, IWYU-lite) runs whenever at
// least one argument is a directory; per-TU rules always run.
//
// Exit status: 0 when clean, 1 on any diagnostic (or blown budget), 2 on
// usage/IO errors.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "fix.hpp"
#include "include_graph.hpp"
#include "lint.hpp"
#include "sarif.hpp"

namespace fs = std::filesystem;

namespace {

void collect(const fs::path& root, std::vector<std::string>& files) {
  if (fs::is_directory(root)) {
    for (const auto& entry : fs::recursive_directory_iterator(root)) {
      if (entry.is_regular_file() &&
          vmincqr::lint::is_lintable(entry.path().string())) {
        files.push_back(entry.path().string());
      }
    }
  } else {
    files.push_back(root.string());
  }
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("vmincqr_lint: cannot read " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

int usage() {
  std::fprintf(stderr,
               "usage: vmincqr_lint [--rules] [--format=text|sarif] "
               "[--layers=FILE] [--include-root=DIR] [--fix] "
               "[--budget-ms=N] <file-or-dir>...\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  const auto start = std::chrono::steady_clock::now();
  std::string format_name = "text";
  std::string layers_path;
  std::string include_root;
  bool fix = false;
  long budget_ms = -1;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--rules") {
      for (const auto& rule : vmincqr::lint::rule_table()) {
        std::printf("%-24s %s\n", rule.id, rule.rationale);
      }
      for (const auto& rule : vmincqr::lint::graph_rule_table()) {
        std::printf("%-24s %s\n", rule.id, rule.rationale);
      }
      return 0;
    }
    if (arg.rfind("--format=", 0) == 0) {
      format_name = arg.substr(9);
      if (format_name != "text" && format_name != "sarif") return usage();
      continue;
    }
    if (arg.rfind("--layers=", 0) == 0) {
      layers_path = arg.substr(9);
      continue;
    }
    if (arg.rfind("--include-root=", 0) == 0) {
      include_root = arg.substr(15);
      continue;
    }
    if (arg == "--fix") {
      fix = true;
      continue;
    }
    if (arg.rfind("--budget-ms=", 0) == 0) {
      try {
        budget_ms = std::stol(arg.substr(12));
      } catch (const std::exception&) {
        return usage();
      }
      continue;
    }
    if (arg.rfind("--", 0) == 0) return usage();
    paths.push_back(arg);
  }
  if (paths.empty()) return usage();

  std::vector<std::string> files;
  std::vector<std::string> dir_args;
  try {
    for (const auto& p : paths) {
      if (fs::is_directory(p)) dir_args.push_back(p);
      collect(p, files);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "vmincqr_lint: %s\n", e.what());
    return 2;
  }
  std::sort(files.begin(), files.end());
  if (include_root.empty() && !dir_args.empty()) include_root = dir_args[0];

  std::vector<vmincqr::lint::Diagnostic> diagnostics;
  try {
    // --fix first so diagnostics reflect the rewritten tree.
    if (fix) {
      for (const auto& file : files) {
        const std::string before = read_file(file);
        const std::string after = vmincqr::lint::apply_fixes(file, before);
        if (after != before) {
          std::ofstream out(file, std::ios::binary | std::ios::trunc);
          if (!out) {
            std::fprintf(stderr, "vmincqr_lint: cannot write %s\n",
                         file.c_str());
            return 2;
          }
          out << after;
          std::fprintf(stderr, "vmincqr_lint: fixed %s\n", file.c_str());
        }
      }
    }

    // Phases 2+3: per-TU rules, one pool task per file (the linter dogfoods
    // the deterministic pool). lint_files sorts by (file, line, rule,
    // message), so output is byte-identical at every thread width.
    diagnostics = vmincqr::lint::lint_files(files);

    // Phase 1: include-graph over the collected set, includes resolved
    // against the include root.
    if (!include_root.empty()) {
      vmincqr::lint::LayerConfig config;
      if (!layers_path.empty()) {
        config = vmincqr::lint::load_layers(layers_path);
      }
      const fs::path root = fs::absolute(include_root);
      std::vector<vmincqr::lint::SourceFile> sources;
      for (const auto& file : files) {
        const fs::path abs = fs::absolute(file);
        sources.push_back({file,
                           abs.lexically_relative(root).generic_string(),
                           read_file(file)});
      }
      std::sort(sources.begin(), sources.end(),
                [](const vmincqr::lint::SourceFile& a,
                   const vmincqr::lint::SourceFile& b) {
                  return a.rel < b.rel;
                });
      for (auto& d : vmincqr::lint::analyze_include_graph(sources, config)) {
        diagnostics.push_back(std::move(d));
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "vmincqr_lint: %s\n", e.what());
    return 2;
  }

  if (format_name == "sarif") {
    std::printf("%s", vmincqr::lint::to_sarif(diagnostics).c_str());
  } else {
    for (const auto& d : diagnostics) {
      std::printf("%s\n", vmincqr::lint::format(d).c_str());
    }
  }

  const auto elapsed_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start)
          .count();
  if (budget_ms >= 0 && elapsed_ms > budget_ms) {
    std::fprintf(stderr,
                 "vmincqr_lint: run took %lld ms, over the %ld ms budget\n",
                 static_cast<long long>(elapsed_ms), budget_ms);
    return 1;
  }

  if (!diagnostics.empty()) {
    std::fprintf(stderr, "vmincqr_lint: %zu finding(s) in %zu file(s)\n",
                 diagnostics.size(), files.size());
    return 1;
  }
  if (format_name == "text") {
    std::printf("vmincqr_lint: %zu file(s) clean\n", files.size());
  }
  return 0;
}
