// Negative-compile check: a guard band quoted in volts must not bind to the
// Millivolt parameter of screen_point. Compiled twice by ctest: once plain
// (control, must succeed) and once with -DVMINCQR_NOCOMPILE (must fail).
#include "core/screening.hpp"

namespace nc = vmincqr::core;

nc::ScreenDecision probe() {
#ifdef VMINCQR_NOCOMPILE
  // 0.02 V passed where millivolts are expected: Volt and Millivolt do not
  // interconvert implicitly, so this is a compile error.
  return nc::screen_point(0.6, nc::Volt{0.02}, nc::Volt{0.65});
#else
  return nc::screen_point(0.6, nc::Millivolt{20.0}, nc::Volt{0.65});
#endif
}
