// Golden fixture: rng-in-parallel — drawing from an RNG shared across
// chunks inside a parallel body. Which chunk gets which draw then depends
// on the schedule, so the run is not bit-identical across thread widths.

void jitter(rng::Rng& shared, std::vector<double>& out) {
  parallel::parallel_for(out.size(), 1024, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      out[i] = shared.normal();
    }
  });
}
