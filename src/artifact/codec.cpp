#include "artifact/codec.hpp"

#include <array>
#include <bit>
#include <cstddef>
#include <sstream>
#include <utility>

#include "core/contracts.hpp"

namespace vmincqr::artifact {

namespace {

constexpr std::size_t kU32Size = 4;
constexpr std::size_t kU64Size = 8;

bool printable_fourcc(std::uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    const auto byte = static_cast<unsigned char>((value >> shift) & 0xFFU);
    if (byte < 0x20 || byte > 0x7E) return false;
  }
  return true;
}

/// Byte size of the encoded trailing CSUM chunk: kind + size + crc payload.
constexpr std::size_t kChecksumChunkBytes = kU32Size + kU64Size + kU32Size;

const std::array<std::uint32_t, 256>& crc32_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1U) != 0 ? 0xEDB88320U ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace

std::uint32_t crc32(const std::uint8_t* data, std::size_t size) {
  const auto& table = crc32_table();
  std::uint32_t crc = 0xFFFFFFFFU;
  for (std::size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ data[i]) & 0xFFU] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFU;
}

std::string chunk_kind_name(ChunkKind kind) {
  const auto value = static_cast<std::uint32_t>(kind);
  std::string out(4, '?');
  for (int i = 0; i < 4; ++i) {
    const auto byte = static_cast<unsigned char>((value >> (8 * i)) & 0xFFU);
    if (byte >= 0x20 && byte <= 0x7E) out[static_cast<std::size_t>(i)] = static_cast<char>(byte);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Writer

Writer::Writer() {
  put_u32(kMagic);
  put_u32(kFormatVersion);
}

void Writer::begin_chunk(ChunkKind kind) {
  VMINCQR_REQUIRE(!finished_, "Writer::begin_chunk: writer already finished");
  put_u32(static_cast<std::uint32_t>(kind));
  open_size_offsets_.push_back(bytes_.size());
  put_u64(0);  // payload size, backpatched by end_chunk()
}

void Writer::end_chunk() {
  VMINCQR_REQUIRE(!open_size_offsets_.empty(),
                  "Writer::end_chunk: no open chunk");
  const std::size_t size_offset = open_size_offsets_.back();
  open_size_offsets_.pop_back();
  const std::uint64_t payload_size = bytes_.size() - size_offset - kU64Size;
  for (std::size_t i = 0; i < kU64Size; ++i) {
    bytes_[size_offset + i] =
        static_cast<std::uint8_t>((payload_size >> (8 * i)) & 0xFFU);
  }
}

void Writer::put_u8(std::uint8_t value) {
  VMINCQR_REQUIRE(!finished_, "Writer: already finished");
  bytes_.push_back(value);
}

void Writer::put_u32(std::uint32_t value) {
  VMINCQR_REQUIRE(!finished_, "Writer: already finished");
  for (std::size_t i = 0; i < kU32Size; ++i) {
    bytes_.push_back(static_cast<std::uint8_t>((value >> (8 * i)) & 0xFFU));
  }
}

void Writer::put_u64(std::uint64_t value) {
  VMINCQR_REQUIRE(!finished_, "Writer: already finished");
  for (std::size_t i = 0; i < kU64Size; ++i) {
    bytes_.push_back(static_cast<std::uint8_t>((value >> (8 * i)) & 0xFFU));
  }
}

void Writer::put_f64(double value) {
  put_u64(std::bit_cast<std::uint64_t>(value));
}

void Writer::put_str(const std::string& value) {
  put_u64(value.size());
  for (const char c : value) {
    bytes_.push_back(static_cast<std::uint8_t>(c));
  }
}

void Writer::put_vec(const Vector& value) {
  put_u64(value.size());
  for (const double v : value) put_f64(v);
}

void Writer::put_index_vec(const std::vector<std::size_t>& value) {
  put_u64(value.size());
  for (const std::size_t v : value) put_u64(v);
}

void Writer::put_i32_vec(const std::vector<std::int32_t>& value) {
  put_u64(value.size());
  for (const std::int32_t v : value) put_u32(static_cast<std::uint32_t>(v));
}

void Writer::put_matrix(const Matrix& value) {
  put_u64(value.rows());
  put_u64(value.cols());
  for (const double v : value.data()) put_f64(v);
}

std::vector<std::uint8_t> Writer::finish() {
  VMINCQR_REQUIRE(open_size_offsets_.empty(),
                  "Writer::finish: unclosed chunk");
  VMINCQR_REQUIRE(!finished_, "Writer::finish: already finished");
  // v3 seal: CRC-32 over everything written so far (header included),
  // carried in a final CSUM chunk. Computed before the chunk is appended,
  // so the seal covers exactly the bytes Reader::open re-hashes.
  const std::uint32_t crc = crc32(bytes_.data(), bytes_.size());
  begin_chunk(ChunkKind::kChecksum);
  put_u32(crc);
  end_chunk();
  finished_ = true;
  return std::move(bytes_);
}

// ---------------------------------------------------------------------------
// Reader

Reader Reader::open(const std::vector<std::uint8_t>& bytes) {
  Reader header(bytes.data(), bytes.data() + bytes.size());
  if (header.remaining() < 2 * kU32Size) {
    throw ArtifactError("header truncated (" +
                        std::to_string(bytes.size()) + " bytes)");
  }
  const std::uint32_t magic = header.get_u32();
  if (magic != kMagic) {
    throw ArtifactError("bad magic: not a VQAF artifact");
  }
  const std::uint32_t version = header.get_u32();
  if (version == 0 || version > kFormatVersion) {
    throw ArtifactError("unsupported format version " +
                        std::to_string(version) + " (reader supports up to " +
                        std::to_string(kFormatVersion) + ")");
  }
  header.format_version_ = version;
  if (version >= kChecksumVersion) {
    // The artifact must end with a CSUM chunk sealing every preceding byte.
    // Verify BEFORE any chunk parsing — a corrupted chunk header must not
    // get the chance to misdirect the parse — then strip the seal from the
    // readable region so decoders never see it.
    if (header.remaining() < kChecksumChunkBytes) {
      throw ArtifactError("v" + std::to_string(version) +
                          " artifact missing trailing CSUM chunk");
    }
    const std::uint8_t* const seal_begin =
        header.end_ - static_cast<std::ptrdiff_t>(kChecksumChunkBytes);
    Reader seal(seal_begin, header.end_);
    if (static_cast<ChunkKind>(seal.get_u32()) != ChunkKind::kChecksum ||
        seal.get_u64() != kU32Size) {
      throw ArtifactError("v" + std::to_string(version) +
                          " artifact missing trailing CSUM chunk");
    }
    const std::uint32_t stored = seal.get_u32();
    const std::uint32_t actual = crc32(
        bytes.data(), static_cast<std::size_t>(seal_begin - bytes.data()));
    if (stored != actual) {
      throw ArtifactError("checksum mismatch: artifact bytes are corrupted");
    }
    header.end_ = seal_begin;
  }
  return header;
}

Reader::Reader(const std::uint8_t* begin, const std::uint8_t* end)
    : cursor_(begin), end_(end) {
  VMINCQR_REQUIRE(begin <= end, "Reader: inverted byte range");
}

void Reader::need(std::size_t n) const {
  if (remaining() < n) {
    throw ArtifactError("truncated: need " + std::to_string(n) +
                        " bytes, have " + std::to_string(remaining()));
  }
}

Reader::Chunk Reader::next_chunk() {
  const std::uint32_t kind = get_u32();
  const std::uint64_t size = get_u64();
  need(static_cast<std::size_t>(size));
  Reader payload(cursor_, cursor_ + size);
  payload.format_version_ = format_version_;
  cursor_ += size;
  return {static_cast<ChunkKind>(kind), payload};
}

Reader Reader::expect_chunk(ChunkKind kind) {
  Chunk chunk = next_chunk();
  if (chunk.kind != kind) {
    throw ArtifactError("expected chunk '" + chunk_kind_name(kind) +
                        "', found '" + chunk_kind_name(chunk.kind) + "'");
  }
  return chunk.payload;
}

std::uint8_t Reader::get_u8() {
  need(1);
  return *cursor_++;
}

std::uint32_t Reader::get_u32() {
  need(kU32Size);
  std::uint32_t value = 0;
  for (std::size_t i = 0; i < kU32Size; ++i) {
    value |= static_cast<std::uint32_t>(cursor_[i]) << (8 * i);
  }
  cursor_ += kU32Size;
  return value;
}

std::uint64_t Reader::get_u64() {
  need(kU64Size);
  std::uint64_t value = 0;
  for (std::size_t i = 0; i < kU64Size; ++i) {
    value |= static_cast<std::uint64_t>(cursor_[i]) << (8 * i);
  }
  cursor_ += kU64Size;
  return value;
}

double Reader::get_f64() { return std::bit_cast<double>(get_u64()); }

std::size_t Reader::get_length(std::size_t element_size) {
  const std::uint64_t length = get_u64();
  // An embedded length can never exceed what the payload can physically hold,
  // so a corrupted length fails here instead of triggering a huge allocation.
  if (element_size > 0 && length > remaining() / element_size) {
    throw ArtifactError("corrupt length " + std::to_string(length) +
                        " exceeds remaining payload");
  }
  return static_cast<std::size_t>(length);
}

std::string Reader::get_str() {
  const std::size_t length = get_length(1);
  std::string out(reinterpret_cast<const char*>(cursor_), length);
  cursor_ += length;
  return out;
}

Vector Reader::get_vec() {
  const std::size_t length = get_length(kU64Size);
  Vector out(length);
  for (std::size_t i = 0; i < length; ++i) out[i] = get_f64();
  return out;
}

std::vector<std::size_t> Reader::get_index_vec() {
  const std::size_t length = get_length(kU64Size);
  std::vector<std::size_t> out(length);
  for (std::size_t i = 0; i < length; ++i) {
    out[i] = get_u64();
  }
  return out;
}

std::vector<std::int32_t> Reader::get_i32_vec() {
  const std::size_t length = get_length(kU32Size);
  std::vector<std::int32_t> out(length);
  for (std::size_t i = 0; i < length; ++i) {
    out[i] = static_cast<std::int32_t>(get_u32());
  }
  return out;
}

Matrix Reader::get_matrix() {
  const std::uint64_t rows = get_u64();
  const std::uint64_t cols = get_u64();
  if (cols > 0 && rows > remaining() / kU64Size / cols) {
    throw ArtifactError("corrupt matrix shape " + std::to_string(rows) + "x" +
                        std::to_string(cols) + " exceeds remaining payload");
  }
  Vector data(rows * cols);
  for (double& v : data) v = get_f64();
  return Matrix::from_rows(rows, cols, std::move(data));
}

// ---------------------------------------------------------------------------
// Debug rendering

namespace {

// A payload "looks like" a chunk sequence when it parses end-to-end as
// printable-FourCC chunks whose sizes tile the region exactly. False
// positives are possible in principle but harmless: this is a debug view.
bool parses_as_chunks(Reader region) {
  if (region.at_end()) return false;
  try {
    while (!region.at_end()) {
      if (region.remaining() < kU32Size + kU64Size) return false;
      Reader probe = region;  // peek the kind without consuming
      if (!printable_fourcc(probe.get_u32())) return false;
      (void)region.next_chunk();  // bounds-checked skip over the payload
    }
  } catch (const ArtifactError&) {
    return false;
  }
  return true;
}

void render_chunks(Reader region, std::ostringstream& out, int indent);

void render_chunk(const Reader::Chunk& chunk, std::ostringstream& out,
                  int indent) {
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  out << pad << "{\"kind\": \"" << chunk_kind_name(chunk.kind)
      << "\", \"size\": " << chunk.payload.remaining();
  if (parses_as_chunks(chunk.payload)) {
    out << ", \"children\": [\n";
    render_chunks(chunk.payload, out, indent + 1);
    out << pad << "]}";
  } else {
    out << "}";
  }
}

void render_chunks(Reader region, std::ostringstream& out, int indent) {
  bool first = true;
  while (!region.at_end()) {
    if (!first) out << ",\n";
    first = false;
    render_chunk(region.next_chunk(), out, indent);
  }
  out << "\n";
}

}  // namespace

std::string chunk_tree_json(const std::vector<std::uint8_t>& bytes) {
  Reader reader = Reader::open(bytes);
  std::ostringstream out;
  out << "{\"format\": \"VQAF\", \"version\": " << reader.format_version()
      << ", \"chunks\": [\n";
  render_chunks(reader, out, 1);
  out << "]}";
  return out.str();
}

}  // namespace vmincqr::artifact
