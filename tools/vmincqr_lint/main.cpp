// CLI driver for vmincqr_lint.
//
// Usage:
//   vmincqr_lint [options] <file-or-dir>...
//
// Options:
//   --rules               print all three rule tables and exit
//   --format=text|sarif   output format (default text)
//   --layers=FILE         layering DAG config; enables the layer-violation
//                         rule (phase 1) and seeds the call-level layering
//                         rule (phase 4) for directory arguments
//   --include-root=DIR    root against which quoted includes resolve for the
//                         cross-file passes (default: first directory arg)
//   --phase=LIST          comma list of phases to run (default 1,2,3,4,5):
//                         1 include-graph, 2 per-TU token+dataflow,
//                         3 concurrency, 4 cross-TU call graph,
//                         5 hot-path allocation & copy analyzer
//   --tier-manifest=FILE  numeric-tier manifest for the phase-4
//                         numeric-tier-manifest rule (default: no manifest,
//                         so any tolerance annotation is a finding)
//   --hotpath-manifest=FILE
//                         hot-path allow-alloc manifest for the phase-5
//                         hot-path-manifest rule (default: no manifest, so
//                         any allow-alloc annotation is a finding)
//   --hotpath-report=FILE write the phase-5 per-function cost table
//                         (alloc sites, copy sites, loop depth) as JSON
//   --callgraph=FILE      write the phase-4 call graph as Graphviz DOT
//   --skip=LIST           drop findings for these rule ids (validated)
//   --only=LIST           keep only findings for these rule ids (validated)
//   --exclude=SUBSTR      drop collected files whose path contains SUBSTR
//                         (repeatable; e.g. --exclude=lint_fixtures)
//   --fix                 apply the mechanically safe fixes (no-endl,
//                         pragma-once, unordered→sorted container rewrite)
//                         in place, then re-lint
//   --budget-ms=N         fail (exit 1) if the whole run exceeds N ms — the
//                         semantic pass must never slow the tier-1 suite
//
// The cross-file passes (1, 4, and 5) run whenever at least one argument is
// a directory (or --include-root is given); per-TU rules always run.
//
// Exit status: 0 when clean, 1 on any diagnostic (or blown budget), 2 on
// usage/IO errors.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "callgraph.hpp"
#include "fix.hpp"
#include "hotpath.hpp"
#include "include_graph.hpp"
#include "lint.hpp"
#include "numeric.hpp"
#include "sarif.hpp"

namespace fs = std::filesystem;

namespace {

void collect(const fs::path& root, std::vector<std::string>& files) {
  if (fs::is_directory(root)) {
    for (const auto& entry : fs::recursive_directory_iterator(root)) {
      if (entry.is_regular_file() &&
          vmincqr::lint::is_lintable(entry.path().string())) {
        files.push_back(entry.path().string());
      }
    }
  } else {
    files.push_back(root.string());
  }
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("vmincqr_lint: cannot read " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

int usage() {
  std::fprintf(stderr,
               "usage: vmincqr_lint [--rules] [--format=text|sarif] "
               "[--layers=FILE] [--include-root=DIR] [--phase=1,2,3,4,5] "
               "[--tier-manifest=FILE] [--hotpath-manifest=FILE] "
               "[--hotpath-report=FILE] [--callgraph=FILE] [--skip=LIST] "
               "[--only=LIST] [--exclude=SUBSTR]... [--fix] "
               "[--budget-ms=N] <file-or-dir>...\n");
  return 2;
}

std::vector<std::string> split_commas(const std::string& list) {
  std::vector<std::string> out;
  std::stringstream ss(list);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

/// Every rule id across the four tables, for --skip/--only validation —
/// a typo'd id in CI would otherwise silently filter nothing.
std::set<std::string> all_rule_ids() {
  std::set<std::string> ids;
  for (const auto& r : vmincqr::lint::rule_table()) ids.insert(r.id);
  for (const auto& r : vmincqr::lint::graph_rule_table()) ids.insert(r.id);
  for (const auto& r : vmincqr::lint::callgraph_rule_table()) ids.insert(r.id);
  for (const auto& r : vmincqr::lint::hotpath_rule_table()) ids.insert(r.id);
  return ids;
}

}  // namespace

int main(int argc, char** argv) {
  const auto start = std::chrono::steady_clock::now();
  std::string format_name = "text";
  std::string layers_path;
  std::string include_root;
  std::string tier_manifest_path;
  std::string hotpath_manifest_path;
  std::string hotpath_report_path;
  std::string callgraph_path;
  std::set<int> phases = {1, 2, 3, 4, 5};
  std::set<std::string> skip_rules;
  std::set<std::string> only_rules;
  std::vector<std::string> excludes;
  bool fix = false;
  long budget_ms = -1;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--rules") {
      for (const auto& rule : vmincqr::lint::rule_table()) {
        std::printf("%-28s %s\n", rule.id, rule.rationale);
      }
      for (const auto& rule : vmincqr::lint::graph_rule_table()) {
        std::printf("%-28s %s\n", rule.id, rule.rationale);
      }
      for (const auto& rule : vmincqr::lint::callgraph_rule_table()) {
        std::printf("%-28s %s\n", rule.id, rule.rationale);
      }
      for (const auto& rule : vmincqr::lint::hotpath_rule_table()) {
        std::printf("%-28s %s\n", rule.id, rule.rationale);
      }
      return 0;
    }
    if (arg.rfind("--format=", 0) == 0) {
      format_name = arg.substr(9);
      if (format_name != "text" && format_name != "sarif") return usage();
      continue;
    }
    if (arg.rfind("--layers=", 0) == 0) {
      layers_path = arg.substr(9);
      continue;
    }
    if (arg.rfind("--include-root=", 0) == 0) {
      include_root = arg.substr(15);
      continue;
    }
    if (arg.rfind("--phase=", 0) == 0) {
      phases.clear();
      for (const auto& p : split_commas(arg.substr(8))) {
        if (p != "1" && p != "2" && p != "3" && p != "4" && p != "5") {
          return usage();
        }
        phases.insert(p[0] - '0');
      }
      if (phases.empty()) return usage();
      continue;
    }
    if (arg.rfind("--tier-manifest=", 0) == 0) {
      tier_manifest_path = arg.substr(16);
      continue;
    }
    if (arg.rfind("--hotpath-manifest=", 0) == 0) {
      hotpath_manifest_path = arg.substr(19);
      continue;
    }
    if (arg.rfind("--hotpath-report=", 0) == 0) {
      hotpath_report_path = arg.substr(17);
      continue;
    }
    if (arg.rfind("--callgraph=", 0) == 0) {
      callgraph_path = arg.substr(12);
      continue;
    }
    if (arg.rfind("--skip=", 0) == 0) {
      for (const auto& id : split_commas(arg.substr(7))) skip_rules.insert(id);
      continue;
    }
    if (arg.rfind("--only=", 0) == 0) {
      for (const auto& id : split_commas(arg.substr(7))) only_rules.insert(id);
      continue;
    }
    if (arg.rfind("--exclude=", 0) == 0) {
      excludes.push_back(arg.substr(10));
      continue;
    }
    if (arg == "--fix") {
      fix = true;
      continue;
    }
    if (arg.rfind("--budget-ms=", 0) == 0) {
      try {
        budget_ms = std::stol(arg.substr(12));
      } catch (const std::exception&) {
        return usage();
      }
      continue;
    }
    if (arg.rfind("--", 0) == 0) return usage();
    paths.push_back(arg);
  }
  if (paths.empty()) return usage();

  {
    const std::set<std::string> known = all_rule_ids();
    for (const auto* filter : {&skip_rules, &only_rules}) {
      for (const auto& id : *filter) {
        if (known.count(id) == 0) {
          std::fprintf(stderr, "vmincqr_lint: unknown rule id '%s'\n",
                       id.c_str());
          return 2;
        }
      }
    }
  }

  std::vector<std::string> files;
  std::vector<std::string> dir_args;
  try {
    for (const auto& p : paths) {
      if (fs::is_directory(p)) dir_args.push_back(p);
      collect(p, files);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "vmincqr_lint: %s\n", e.what());
    return 2;
  }
  files.erase(std::remove_if(files.begin(), files.end(),
                             [&](const std::string& f) {
                               for (const auto& sub : excludes) {
                                 if (f.find(sub) != std::string::npos) {
                                   return true;
                                 }
                               }
                               return false;
                             }),
              files.end());
  std::sort(files.begin(), files.end());
  if (include_root.empty() && !dir_args.empty()) include_root = dir_args[0];

  std::vector<vmincqr::lint::Diagnostic> diagnostics;
  std::vector<vmincqr::lint::TierRecord> tiers;
  std::vector<vmincqr::lint::HotPathRecord> hotpath_grants;
  try {
    // --fix first so diagnostics reflect the rewritten tree.
    if (fix) {
      for (const auto& file : files) {
        const std::string before = read_file(file);
        const std::string after = vmincqr::lint::apply_fixes(file, before);
        if (after != before) {
          std::ofstream out(file, std::ios::binary | std::ios::trunc);
          if (!out) {
            std::fprintf(stderr, "vmincqr_lint: cannot write %s\n",
                         file.c_str());
            return 2;
          }
          out << after;
          std::fprintf(stderr, "vmincqr_lint: fixed %s\n", file.c_str());
        }
      }
    }

    // Phases 2+3: per-TU rules, one pool task per file (the linter dogfoods
    // the deterministic pool). lint_files sorts by (file, line, rule,
    // message), so output is byte-identical at every thread width.
    if (phases.count(2) > 0 || phases.count(3) > 0) {
      vmincqr::lint::LintPhases per_tu_phases;
      per_tu_phases.per_tu = phases.count(2) > 0;
      per_tu_phases.concurrency = phases.count(3) > 0;
      diagnostics = vmincqr::lint::lint_files(files, per_tu_phases);
    }

    // Phases 1, 4, and 5 need the whole file set with root-relative paths.
    if (!include_root.empty() &&
        (phases.count(1) > 0 || phases.count(4) > 0 ||
         phases.count(5) > 0)) {
      vmincqr::lint::LayerConfig config;
      if (!layers_path.empty()) {
        config = vmincqr::lint::load_layers(layers_path);
      }
      const fs::path root = fs::absolute(include_root);
      std::vector<vmincqr::lint::SourceFile> sources;
      for (const auto& file : files) {
        const fs::path abs = fs::absolute(file);
        sources.push_back({file,
                           abs.lexically_relative(root).generic_string(),
                           read_file(file)});
      }
      std::sort(sources.begin(), sources.end(),
                [](const vmincqr::lint::SourceFile& a,
                   const vmincqr::lint::SourceFile& b) {
                  return a.rel < b.rel;
                });
      // Phase 1: include-graph (layering DAG, cycles, IWYU-lite).
      if (phases.count(1) > 0) {
        for (auto& d :
             vmincqr::lint::analyze_include_graph(sources, config)) {
          diagnostics.push_back(std::move(d));
        }
      }
      // Phase 4: cross-TU call graph (transitive parallel context,
      // call-level layering, numeric-safety tiers).
      if (phases.count(4) > 0) {
        vmincqr::lint::CallGraphOptions options;
        options.layers = config;
        if (!tier_manifest_path.empty()) {
          options.tolerance_manifest =
              vmincqr::lint::load_tier_manifest(tier_manifest_path);
          options.manifest_display = tier_manifest_path;
        }
        options.emit_dot = !callgraph_path.empty();
        auto analysis = vmincqr::lint::analyze_call_graph(sources, options);
        for (auto& d : analysis.diagnostics) {
          diagnostics.push_back(std::move(d));
        }
        tiers = std::move(analysis.tiers);
        if (!callgraph_path.empty()) {
          std::ofstream out(callgraph_path,
                            std::ios::binary | std::ios::trunc);
          if (!out) {
            std::fprintf(stderr, "vmincqr_lint: cannot write %s\n",
                         callgraph_path.c_str());
            return 2;
          }
          out << analysis.dot;
        }
      }
      // Phase 5: hot-path allocation & copy analyzer over the serve- and
      // predict-reachable cones of the call graph.
      if (phases.count(5) > 0) {
        vmincqr::lint::HotPathOptions options;
        options.layers = config;
        if (!hotpath_manifest_path.empty()) {
          options.alloc_manifest =
              vmincqr::lint::load_hotpath_manifest(hotpath_manifest_path);
          options.manifest_display = hotpath_manifest_path;
        }
        auto analysis = vmincqr::lint::analyze_hot_paths(sources, options);
        for (auto& d : analysis.diagnostics) {
          diagnostics.push_back(std::move(d));
        }
        if (!hotpath_report_path.empty()) {
          std::ofstream out(hotpath_report_path,
                            std::ios::binary | std::ios::trunc);
          if (!out) {
            std::fprintf(stderr, "vmincqr_lint: cannot write %s\n",
                         hotpath_report_path.c_str());
            return 2;
          }
          out << vmincqr::lint::hotpath_report_json(analysis);
        }
        // After the report: the JSON must carry the grants audit too.
        hotpath_grants = std::move(analysis.grants);
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "vmincqr_lint: %s\n", e.what());
    return 2;
  }

  if (!skip_rules.empty() || !only_rules.empty()) {
    diagnostics.erase(
        std::remove_if(diagnostics.begin(), diagnostics.end(),
                       [&](const vmincqr::lint::Diagnostic& d) {
                         if (skip_rules.count(d.rule) > 0) return true;
                         return !only_rules.empty() &&
                                only_rules.count(d.rule) == 0;
                       }),
        diagnostics.end());
  }

  if (format_name == "sarif") {
    std::printf(
        "%s",
        vmincqr::lint::to_sarif(diagnostics, tiers, hotpath_grants).c_str());
  } else {
    for (const auto& d : diagnostics) {
      std::printf("%s\n", vmincqr::lint::format(d).c_str());
    }
  }

  const auto elapsed_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start)
          .count();
  if (budget_ms >= 0 && elapsed_ms > budget_ms) {
    std::fprintf(stderr,
                 "vmincqr_lint: run took %lld ms, over the %ld ms budget\n",
                 static_cast<long long>(elapsed_ms), budget_ms);
    return 1;
  }

  if (!diagnostics.empty()) {
    std::fprintf(stderr, "vmincqr_lint: %zu finding(s) in %zu file(s)\n",
                 diagnostics.size(), files.size());
    return 1;
  }
  if (format_name == "text") {
    std::printf("vmincqr_lint: %zu file(s) clean\n", files.size());
  }
  return 0;
}
