// Ring-oscillator model built from the same standard-cell delay law as the
// design netlist — the structural counterpart of the ROD monitors in the
// silicon substrate. A chain of N inverters (N odd) oscillates with period
// 2 * N * d_inv, so the measured frequency is a direct probe of the local
// (Vth-shifted, aged) gate delay.
#pragma once

#include "netlist/cell.hpp"

namespace vmincqr::netlist {

struct RingOscillator {
  std::size_t n_stages = 31;  ///< must be odd
  double stage_mismatch = 0.0;  ///< effective Vth offset of this RO's site (V)
};

/// Oscillation period (ns) at the given operating point; +infinity if the
/// inverters are below the functional headroom.
/// Throws std::invalid_argument for an even or zero stage count.
double ring_oscillator_period(const RingOscillator& ro,
                              const DelayModelConfig& config, double vdd,
                              double dvth_eff, double temp_c);

/// Frequency (GHz) = 1 / period; 0 when non-functional.
double ring_oscillator_frequency(const RingOscillator& ro,
                                 const DelayModelConfig& config, double vdd,
                                 double dvth_eff, double temp_c);

}  // namespace vmincqr::netlist
