// Fixture: Matrix parameter by value. Fires matrix-by-value exactly once;
// the const-reference signature does not fire.
#pragma once

namespace fx {
class Matrix;
class Vector;

Vector fit_copy(Matrix x);
Vector fit_ref(const Matrix& x);
}  // namespace fx
