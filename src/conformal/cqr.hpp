// Conformalized Quantile Regression (Romano, Patterson & Candes 2019) —
// the paper's method, Sec. III-C.
//
// Wraps ANY IntervalRegressor (normally the QuantilePairRegressor of
// Sec. II-B.2, but conformalizing a GP band also works): the base interval
// model is fitted on the proper-training part, the CQR score of Eq. (9) is
// evaluated on the calibration part, and Eq. (10) shifts both bounds by the
// calibrated quantile q_hat. Because the score is signed, q_hat can be
// negative — CQR both widens under-covering bands and *shrinks* over-wide
// ones while keeping the Eq. (6) finite-sample guarantee.
#pragma once

#include <cstdint>
#include <memory>

#include "core/split_spec.hpp"
#include "core/units.hpp"
#include "models/interval.hpp"

namespace vmincqr::conformal {

using core::MiscoverageAlpha;
using models::IntervalPrediction;
using models::IntervalRegressor;
using models::Matrix;
using models::Vector;

/// Calibration mode.
///  * kSymmetric  — the paper's Eq. (9)-(10): one q_hat shifts both bounds.
///  * kAsymmetric — CQR-m (Romano et al. appendix; Sesia & Candes 2020):
///    lower and upper bounds calibrated separately at level alpha/2 each,
///    giving per-tail validity at the cost of typically wider bands.
enum class CqrMode : std::uint8_t { kSymmetric, kAsymmetric };

struct CqrConfig {
  /// Train/calibration split; PipelineConfig threads its own spec through
  /// here so the pipeline and the calibrator can never disagree.
  core::CalibrationSplit split;
  CqrMode mode = CqrMode::kSymmetric;
};

/// The calibrated state of a ConformalizedQuantileRegressor — everything
/// predict_interval() needs beyond the fitted base model. In symmetric mode
/// the two entries are equal.
struct CqrCalibration {
  double q_hat_lo = 0.0;
  double q_hat_hi = 0.0;
};

class ConformalizedQuantileRegressor final : public IntervalRegressor {
 public:
  /// Takes ownership of an unfitted interval-regressor prototype whose own
  /// alpha should match `alpha` (checked; throws std::invalid_argument on
  /// mismatch > 1e-9 or a null model).
  ConformalizedQuantileRegressor(MiscoverageAlpha alpha,
                                 std::unique_ptr<IntervalRegressor> base,
                                 CqrConfig config = {});

  /// Splits internally (75/25 by default), fits, and calibrates.
  void fit(const Matrix& x, const Vector& y) override;

  /// Explicit-split variant for callers that manage the split.
  void fit_with_split(const Matrix& x_train, const Vector& y_train,
                      const Matrix& x_calib, const Vector& y_calib);

  [[nodiscard]] IntervalPrediction predict_interval(const Matrix& x) const override;

  [[nodiscard]] std::unique_ptr<IntervalRegressor> clone_config() const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] MiscoverageAlpha alpha() const override { return alpha_; }

  /// Calibrated band adjustment (volts); negative means the raw QR band was
  /// conservative and has been tightened. In asymmetric mode this is the
  /// mean of the two per-tail adjustments.
  [[nodiscard]] double q_hat() const;
  /// Per-tail adjustments (equal in symmetric mode).
  [[nodiscard]] double q_hat_lower() const;
  [[nodiscard]] double q_hat_upper() const;

  [[nodiscard]] const IntervalRegressor& base() const { return *base_; }

  /// The configured calibration mode (symmetric Eq. 9-10 vs per-tail).
  [[nodiscard]] CqrMode mode() const noexcept { return config_.mode; }

  /// Copies out the calibrated offsets. Throws std::logic_error if not
  /// calibrated.
  [[nodiscard]] CqrCalibration export_calibration() const;

  /// Adopts previously exported offsets and marks the regressor calibrated.
  /// The base model must already be fitted (e.g. via its own import_params)
  /// for predict_interval to succeed. Throws std::invalid_argument on NaN.
  void import_calibration(CqrCalibration calibration);

 private:
  MiscoverageAlpha alpha_;
  std::unique_ptr<IntervalRegressor> base_;
  CqrConfig config_;
  double q_hat_lo_ = 0.0;
  double q_hat_hi_ = 0.0;
  bool calibrated_ = false;
};

}  // namespace vmincqr::conformal
