file(REMOVE_RECURSE
  "CMakeFiles/table4_monitor_gain.dir/table4_monitor_gain.cpp.o"
  "CMakeFiles/table4_monitor_gain.dir/table4_monitor_gain.cpp.o.d"
  "table4_monitor_gain"
  "table4_monitor_gain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_monitor_gain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
