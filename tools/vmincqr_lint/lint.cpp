#include "lint.hpp"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>

namespace vmincqr::lint {
namespace {

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

enum class TokKind : std::uint8_t { kIdent, kInt, kFloat, kPunct };

struct Token {
  TokKind kind;
  std::string text;
  std::size_t line;
  int paren_depth;  // 0 outside any parentheses; params sit at depth >= 1
};

struct Unit {
  std::vector<Token> tokens;
  /// Preprocessor directives in order of appearance: (line, normalized text).
  std::vector<std::pair<std::size_t, std::string>> directives;
  /// line -> rule ids suppressed on that line via `vmincqr-lint: allow(...)`.
  std::map<std::size_t, std::set<std::string>> allows;
};

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

void record_allows(Unit& unit, const std::string& comment, std::size_t line) {
  const std::string tag = "vmincqr-lint:";
  const auto at = comment.find(tag);
  if (at == std::string::npos) return;
  auto open = comment.find("allow(", at);
  if (open == std::string::npos) return;
  const auto close = comment.find(')', open);
  if (close == std::string::npos) return;
  std::string list = comment.substr(open + 6, close - open - 6);
  std::string id;
  std::stringstream ss(list);
  while (std::getline(ss, id, ',')) {
    const auto b = id.find_first_not_of(" \t");
    const auto e = id.find_last_not_of(" \t");
    if (b == std::string::npos) continue;
    unit.allows[line].insert(id.substr(b, e - b + 1));
  }
}

/// Normalizes a directive body: collapses runs of whitespace to one space.
std::string squeeze(const std::string& s) {
  std::string out;
  bool in_ws = false;
  for (char c : s) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      in_ws = true;
      continue;
    }
    if (in_ws && !out.empty()) out.push_back(' ');
    in_ws = false;
    out.push_back(c);
  }
  return out;
}

Unit tokenize(const std::string& src) {
  Unit unit;
  std::size_t line = 1;
  int depth = 0;
  std::size_t i = 0;
  const std::size_t n = src.size();
  bool at_line_start = true;

  auto advance_newline = [&](char c) {
    if (c == '\n') {
      ++line;
      at_line_start = true;
    }
  };

  while (i < n) {
    const char c = src[i];
    // Whitespace.
    if (std::isspace(static_cast<unsigned char>(c))) {
      advance_newline(c);
      ++i;
      continue;
    }
    // Preprocessor directive: consume the logical line (with continuations).
    if (c == '#' && at_line_start) {
      const std::size_t start_line = line;
      std::string text;
      while (i < n) {
        if (src[i] == '\\' && i + 1 < n && src[i + 1] == '\n') {
          ++line;
          i += 2;
          continue;
        }
        if (src[i] == '\n') break;
        // Strip trailing // comment from the directive (may hold an allow).
        if (src[i] == '/' && i + 1 < n && src[i + 1] == '/') {
          std::string comment;
          while (i < n && src[i] != '\n') comment.push_back(src[i++]);
          record_allows(unit, comment, line);
          break;
        }
        text.push_back(src[i++]);
      }
      unit.directives.emplace_back(start_line, squeeze(text));
      continue;
    }
    at_line_start = false;
    // Line comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      std::string comment;
      while (i < n && src[i] != '\n') comment.push_back(src[i++]);
      record_allows(unit, comment, line);
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      const std::size_t start_line = line;
      std::string comment;
      i += 2;
      while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) {
        comment.push_back(src[i]);
        advance_newline(src[i]);
        ++i;
      }
      i = std::min(n, i + 2);
      record_allows(unit, comment, start_line);
      continue;
    }
    // Raw string literal.
    if (c == 'R' && i + 1 < n && src[i + 1] == '"') {
      std::size_t j = i + 2;
      std::string delim;
      while (j < n && src[j] != '(') delim.push_back(src[j++]);
      const std::string closer = ")" + delim + "\"";
      const auto end = src.find(closer, j);
      for (std::size_t k = i; k < std::min(n, end); ++k) {
        advance_newline(src[k]);
      }
      i = end == std::string::npos ? n : end + closer.size();
      continue;
    }
    // String / char literal.
    if (c == '"' || c == '\'') {
      const char quote = c;
      ++i;
      while (i < n && src[i] != quote) {
        if (src[i] == '\\' && i + 1 < n) ++i;
        advance_newline(src[i]);
        ++i;
      }
      ++i;
      continue;
    }
    // Identifier.
    if (ident_start(c)) {
      std::string text;
      while (i < n && ident_char(src[i])) text.push_back(src[i++]);
      unit.tokens.push_back({TokKind::kIdent, std::move(text), line, depth});
      continue;
    }
    // Number (integer or floating literal, incl. exponents and suffixes).
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(src[i + 1])))) {
      std::string text;
      bool is_hex = false;
      while (i < n) {
        const char d = src[i];
        if (std::isalnum(static_cast<unsigned char>(d)) || d == '.' ||
            d == '\'') {
          if (text.size() == 1 && text[0] == '0' && (d == 'x' || d == 'X')) {
            is_hex = true;
          }
          text.push_back(d);
          ++i;
          continue;
        }
        if ((d == '+' || d == '-') && !text.empty()) {
          const char prev = text.back();
          const bool exp = is_hex ? (prev == 'p' || prev == 'P')
                                  : (prev == 'e' || prev == 'E');
          if (exp) {
            text.push_back(d);
            ++i;
            continue;
          }
        }
        break;
      }
      const bool is_float =
          !is_hex && (text.find('.') != std::string::npos ||
                      text.find('e') != std::string::npos ||
                      text.find('E') != std::string::npos);
      unit.tokens.push_back(
          {is_float ? TokKind::kFloat : TokKind::kInt, std::move(text), line,
           depth});
      continue;
    }
    // Punctuation: greedily take two-char operators we care about.
    if (c == '(') {
      unit.tokens.push_back({TokKind::kPunct, "(", line, depth});
      ++depth;
      ++i;
      continue;
    }
    if (c == ')') {
      depth = std::max(0, depth - 1);
      unit.tokens.push_back({TokKind::kPunct, ")", line, depth});
      ++i;
      continue;
    }
    std::string text(1, c);
    if (i + 1 < n) {
      const char d = src[i + 1];
      if ((c == ':' && d == ':') || (c == '-' && d == '>') ||
          ((c == '=' || c == '!' || c == '<' || c == '>') && d == '=')) {
        text.push_back(d);
      }
    }
    unit.tokens.push_back({TokKind::kPunct, text, line, depth});
    i += text.size();
  }
  return unit;
}

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

bool is_header(const std::string& path) {
  return path.size() >= 4 && path.compare(path.size() - 4, 4, ".hpp") == 0;
}

struct Ctx {
  const std::string& path;
  const Unit& unit;
  bool header;
  std::vector<Diagnostic>& out;

  void report(const char* rule, std::size_t line, std::string message) const {
    out.push_back({path, line, rule, std::move(message)});
  }
};

/// pragma-once: every header's first preprocessor directive must be
/// `#pragma once`; a header with no include guard at all also fires.
void rule_pragma_once(const Ctx& ctx) {
  if (!ctx.header) return;
  if (!ctx.unit.directives.empty() &&
      ctx.unit.directives.front().second == "#pragma once") {
    return;
  }
  const std::size_t line =
      ctx.unit.directives.empty() ? 1 : ctx.unit.directives.front().first;
  ctx.report("pragma-once", line,
             "header must open with '#pragma once' (before any other "
             "directive)");
}

/// using-namespace-header: `using namespace` in a header leaks into every
/// includer and defeats the strong-type qualification this repo relies on.
void rule_using_namespace(const Ctx& ctx) {
  if (!ctx.header) return;
  const auto& t = ctx.unit.tokens;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].text == "using" && t[i + 1].text == "namespace") {
      ctx.report("using-namespace-header", t[i].line,
                 "'using namespace' is forbidden in headers");
    }
  }
}

/// no-rand: libc rand()/srand() is not reproducible across platforms; all
/// randomness must flow through rng::Rng so experiments are seed-stable.
void rule_no_rand(const Ctx& ctx) {
  const auto& t = ctx.unit.tokens;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent) continue;
    if (t[i].text != "rand" && t[i].text != "srand") continue;
    if (t[i + 1].text != "(") continue;
    if (i > 0 && (t[i - 1].text == "." || t[i - 1].text == "->")) continue;
    // An identifier right before means this is a declaration ("int rand();"),
    // not a call; std::rand() still fires because the previous token is "::",
    // and "return rand()" fires because statement keywords are not types.
    static const std::set<std::string> stmt_keywords = {
        "return", "co_return", "co_yield", "else",  "do",    "case",
        "throw",  "new",       "delete",   "sizeof", "while", "and",
        "or",     "not"};
    if (i > 0 && t[i - 1].kind == TokKind::kIdent &&
        stmt_keywords.count(t[i - 1].text) == 0) {
      continue;
    }
    ctx.report("no-rand", t[i].line,
               "use rng::Rng instead of libc " + t[i].text + "()");
  }
}

/// no-endl: std::endl flushes on every call; "\n" is what hot logging paths
/// want (performance-avoid-endl, promoted to a hard repo rule).
void rule_no_endl(const Ctx& ctx) {
  for (const auto& tok : ctx.unit.tokens) {
    if (tok.kind == TokKind::kIdent && tok.text == "endl") {
      ctx.report("no-endl", tok.line, "use \"\\n\" instead of std::endl");
    }
  }
}

/// float-equality: ==/!= against a floating literal is almost always a
/// stability bug in statistical code (conformal ranks, aging power laws).
/// Exact sentinel comparisons must carry an allow() with a justification.
void rule_float_equality(const Ctx& ctx) {
  const auto& t = ctx.unit.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].text != "==" && t[i].text != "!=") continue;
    const bool lhs = i > 0 && t[i - 1].kind == TokKind::kFloat;
    const bool rhs = i + 1 < t.size() && t[i + 1].kind == TokKind::kFloat;
    if (!lhs && !rhs) continue;
    ctx.report("float-equality", t[i].line,
               "'" + t[i].text +
                   "' against a floating literal; compare with a tolerance "
                   "or justify with an allow()");
  }
}

const std::set<std::string>& banned_double_names() {
  static const std::set<std::string> names = {"tau", "alpha", "vmin", "temp",
                                              "temperature"};
  return names;
}

/// raw-double-param: public signatures must carry the strong types from
/// core/units.hpp, not raw doubles named after a unit or level.
void rule_raw_double_param(const Ctx& ctx) {
  if (!ctx.header) return;
  const auto& t = ctx.unit.tokens;
  for (std::size_t i = 0; i + 2 < t.size(); ++i) {
    if (t[i].text != "double" || t[i].paren_depth < 1) continue;
    if (t[i + 1].kind != TokKind::kIdent) continue;
    if (banned_double_names().count(t[i + 1].text) == 0) continue;
    const std::string& after = t[i + 2].text;
    if (after != "," && after != ")" && after != "=") continue;
    ctx.report("raw-double-param", t[i].line,
               "parameter 'double " + t[i + 1].text +
                   "' must use a strong type from core/units.hpp "
                   "(QuantileLevel, MiscoverageAlpha, Volt, Celsius, ...)");
  }
}

/// matrix-by-value: a Matrix parameter taken by value copies O(n*d) data on
/// every call; pass `const Matrix&` (or a span) instead.
void rule_matrix_by_value(const Ctx& ctx) {
  const auto& t = ctx.unit.tokens;
  for (std::size_t i = 0; i + 2 < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent || t[i].text != "Matrix") continue;
    if (t[i].paren_depth < 1) continue;
    if (t[i + 1].kind != TokKind::kIdent) continue;
    const std::string& after = t[i + 2].text;
    if (after != "," && after != ")" && after != "=") continue;
    ctx.report("matrix-by-value", t[i].line,
               "parameter '" + t[i + 1].text +
                   "' takes Matrix by value; pass 'const Matrix&'");
  }
}

const std::set<std::string>& entry_point_names() {
  static const std::set<std::string> names = {
      "fit",          "fit_with_split", "fit_transform", "predict",
      "predict_interval", "predict_point", "predict_sigma", "calibrate"};
  return names;
}

/// contract-coverage: every out-of-line definition of a public fit/predict/
/// calibrate entry point must validate its inputs — a VMINCQR_* contract
/// macro, an explicit throw, or a call to a shared `check_*` validation
/// helper (e.g. Regressor::check_fit_args, which wraps the macros) — so the
/// coverage guarantee cannot be fed malformed data silently.
void rule_contract_coverage(const Ctx& ctx) {
  if (ctx.header) return;
  const auto& t = ctx.unit.tokens;
  for (std::size_t i = 2; i + 1 < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent || t[i].paren_depth != 0) continue;
    if (entry_point_names().count(t[i].text) == 0) continue;
    if (t[i - 1].text != "::") continue;
    if (t[i + 1].text != "(") continue;
    // Skip the parameter list.
    std::size_t j = i + 1;
    int depth = 0;
    for (; j < t.size(); ++j) {
      if (t[j].text == "(") ++depth;
      if (t[j].text == ")" && --depth == 0) break;
    }
    if (j >= t.size()) return;
    // Accept trailing qualifiers, then require a body.
    ++j;
    while (j < t.size() &&
           (t[j].text == "const" || t[j].text == "noexcept" ||
            t[j].text == "override" || t[j].text == "final")) {
      ++j;
    }
    if (j >= t.size() || t[j].text != "{") continue;  // declaration only
    // Scan the body for a contract.
    int braces = 0;
    bool has_contract = false;
    for (; j < t.size(); ++j) {
      if (t[j].text == "{") ++braces;
      if (t[j].text == "}" && --braces == 0) break;
      if (t[j].kind == TokKind::kIdent &&
          (t[j].text.rfind("VMINCQR_", 0) == 0 ||
           t[j].text.rfind("check_", 0) == 0 || t[j].text == "throw")) {
        has_contract = true;
      }
    }
    if (!has_contract) {
      ctx.report("contract-coverage", t[i].line,
                 "entry point '" + t[i - 2].text + "::" + t[i].text +
                     "' has no VMINCQR_REQUIRE/CHECK_SHAPE contract, "
                     "check_* helper call, or throw; validate inputs at "
                     "the public boundary");
    }
  }
}

}  // namespace

const std::vector<RuleInfo>& rule_table() {
  static const std::vector<RuleInfo> table = {
      {"pragma-once", "headers must open with #pragma once"},
      {"using-namespace-header", "no 'using namespace' in headers"},
      {"no-rand", "libc rand()/srand() breaks seed-stable experiments"},
      {"no-endl", "std::endl flushes; use \"\\n\""},
      {"float-equality",
       "no ==/!= against floating literals without a justification"},
      {"raw-double-param",
       "public signatures use core/units.hpp strong types, not raw doubles "
       "named tau/alpha/vmin/temp"},
      {"matrix-by-value", "Matrix parameters pass by const reference"},
      {"contract-coverage",
       "fit/predict/calibrate definitions carry a VMINCQR_* contract or "
       "throw"},
  };
  return table;
}

std::vector<Diagnostic> lint_source(const std::string& path,
                                    const std::string& content) {
  const Unit unit = tokenize(content);
  std::vector<Diagnostic> raw;
  Ctx ctx{path, unit, is_header(path), raw};
  rule_pragma_once(ctx);
  rule_using_namespace(ctx);
  rule_no_rand(ctx);
  rule_no_endl(ctx);
  rule_float_equality(ctx);
  rule_raw_double_param(ctx);
  rule_matrix_by_value(ctx);
  rule_contract_coverage(ctx);

  // Apply per-line suppressions: same line or the line directly above.
  std::vector<Diagnostic> kept;
  for (auto& d : raw) {
    bool allowed = false;
    for (std::size_t line : {d.line, d.line > 0 ? d.line - 1 : 0}) {
      const auto it = unit.allows.find(line);
      if (it != unit.allows.end() && it->second.count(d.rule) > 0) {
        allowed = true;
      }
    }
    if (!allowed) kept.push_back(std::move(d));
  }
  std::stable_sort(kept.begin(), kept.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     return a.line < b.line;
                   });
  return kept;
}

std::vector<Diagnostic> lint_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("vmincqr_lint: cannot read " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return lint_source(path, ss.str());
}

bool is_lintable(const std::string& path) {
  const auto dot = path.rfind('.');
  if (dot == std::string::npos) return false;
  const std::string ext = path.substr(dot);
  return ext == ".hpp" || ext == ".cpp";
}

std::string format(const Diagnostic& d) {
  return d.file + ":" + std::to_string(d.line) + ": [" + d.rule + "] " +
         d.message;
}

}  // namespace vmincqr::lint
