// Gaussian-process regression with an RBF kernel (paper Sec. II-B.1 and
// IV-C.1). Hyperparameters (length scale, noise variance) are selected by
// maximizing the log marginal likelihood over a log-spaced grid — robust for
// the paper's small-n regime where gradient ascent on the likelihood is
// fragile.
//
// Besides the Regressor interface (posterior mean), the model exposes the
// posterior variance used to build the Eq. (4) prediction interval.
#pragma once

#include "data/scaler.hpp"
#include "models/regressor.hpp"

namespace vmincqr::models {

struct GpConfig {
  /// Candidate length scales (in standardized-feature units). Empty -> a
  /// default log-spaced grid [0.3, 30].
  std::vector<double> length_scale_grid;
  /// Candidate noise variances (fraction of standardized label variance).
  std::vector<double> noise_grid;
  double signal_variance = 1.0;  ///< labels are standardized; keep 1.0
};

/// Posterior mean and variance at query points.
struct GpPosterior {
  Vector mean;
  Vector variance;  ///< includes the learned noise variance
};

/// Fitted state of a GaussianProcessRegressor: everything posterior() reads.
/// Includes the kernel amplitude (signal_variance) because the posterior
/// re-evaluates the kernel at query time.
struct GpParams {
  data::ScalerParams scaler;
  data::LabelScalerParams label;
  Matrix x_train;  ///< standardized training inputs
  Matrix chol;     ///< Cholesky factor of K + sn2 I
  Vector weights;  ///< (K + sn2 I)^{-1} y (standardized labels)
  double length_scale = 1.0;
  double noise_variance = 1e-2;
  double signal_variance = 1.0;
  double log_marginal_likelihood = 0.0;
};

class GaussianProcessRegressor final : public Regressor {
 public:
  explicit GaussianProcessRegressor(GpConfig config = {});

  void fit(const Matrix& x, const Vector& y) override;
  [[nodiscard]] Vector predict(const Matrix& x) const override;
  [[nodiscard]] std::unique_ptr<Regressor> clone_config() const override;
  [[nodiscard]] std::string name() const override { return "Gaussian Process"; }
  [[nodiscard]] bool fitted() const override { return fitted_; }

  /// Posterior mean and variance, in label units (volts).
  [[nodiscard]] GpPosterior posterior(const Matrix& x) const;

  [[nodiscard]] double length_scale() const noexcept { return length_scale_; }
  [[nodiscard]] double noise_variance() const noexcept { return noise_variance_; }
  [[nodiscard]] double log_marginal_likelihood() const noexcept { return best_lml_; }

  /// Copies out the fitted state. Throws std::logic_error if not fitted.
  [[nodiscard]] GpParams export_params() const;

  /// Adopts previously exported state and marks the model fitted;
  /// posterior() becomes bit-exact with the exporting model.
  /// Throws std::invalid_argument on inconsistent shapes or hyperparameters.
  void import_params(GpParams params);

 private:
  double compute_lml(const Matrix& k, const Vector& ys, Matrix* chol_out,
                     Vector* alpha_out) const;
  [[nodiscard]] Matrix kernel(const Matrix& a, const Matrix& b, double length_scale) const;

  GpConfig config_;
  data::StandardScaler scaler_;
  data::LabelScaler label_scaler_;
  Matrix x_train_;       // standardized training inputs
  Matrix chol_;          // Cholesky of K + sn2 I
  Vector alpha_;         // (K + sn2 I)^{-1} y
  double length_scale_ = 1.0;
  double noise_variance_ = 1e-2;
  double best_lml_ = 0.0;
  std::size_t n_features_ = 0;
  bool fitted_ = false;
};

}  // namespace vmincqr::models
