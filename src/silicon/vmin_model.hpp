// SCAN Vmin response surface: maps a chip's latent state, stress time, and
// test temperature to the measured minimum operating voltage.
//
// Calibrated so population statistics match the paper's reported scales:
// RMSE of good predictors in the 2.5-7 mV range, calibrated interval widths
// of 15-60 mV, wider spread at -45C than at 25C (Table III), and a defect
// tail that motivates interval-based screening.
#pragma once

#include "core/units.hpp"
#include "silicon/aging.hpp"
#include "silicon/process.hpp"

namespace vmincqr::silicon {

struct VminConfig {
  double nominal_v = 0.550;  ///< healthy median Vmin at 25C, time 0 (V)
  /// Additive temperature offsets (V) at the three standard temperatures.
  double cold_offset = 0.045;   ///< -45C: cold Vt dominance
  double hot_offset = 0.015;    ///< 125C: leakage/IR limited
  /// Temperature scaling of the worst-path criticality (cold Vt dominance
  /// makes paths more voltage-sensitive at -45C).
  double k_vth_cold = 1.6;
  double k_vth_room = 0.9;
  double k_vth_hot = 1.1;
  double k_leff = 0.10;      ///< global (non-path) length sensitivity
  double k_mismatch = 0.004; ///< global mismatch floor (V per unit severity)
  double k_aging = 1.0;      ///< scales the aging shift fed to the paths
  double k_defect = 0.030;   ///< V per unit defect severity
  double defect_cold_boost = 1.6;  ///< defects bite harder at cold
  /// Heteroscedastic measurement/environment noise (V). The leakage term
  /// makes the noise level *observable* (IDDQ tests expose the leakage
  /// corner), which is what input-adaptive interval methods exploit.
  double noise_base = 0.0025;
  double noise_mismatch = 0.0025;
  double noise_defect = 0.006;
  double noise_leak = 0.0015;     ///< per unit leakage-corner multiplier
  double noise_cold_boost = 1.8;  ///< -45C testing is noisier
};

class VminModel {
 public:
  explicit VminModel(VminConfig config = {}, AgingConfig aging = {});

  /// Noise-free (expected) Vmin.
  core::Volt expected_vmin(const ChipLatent& chip, core::Hours hours,
                           core::Celsius temperature) const;

  /// Measured Vmin: expected value plus heteroscedastic noise.
  core::Volt measure_vmin(const ChipLatent& chip, core::Hours hours,
                          core::Celsius temperature, rng::Rng& meas_rng) const;

  /// Standard deviation of the measurement noise (volts) for this
  /// chip/condition — exposed so tests can verify the heteroscedasticity
  /// CQR exploits.
  [[nodiscard]] double noise_stddev(const ChipLatent& chip, core::Celsius temperature) const;

  [[nodiscard]] const VminConfig& config() const noexcept { return config_; }
  [[nodiscard]] const AgingModel& aging() const noexcept { return aging_; }

 private:
  [[nodiscard]] double k_vth(double temperature_c) const;

  VminConfig config_;
  AgingModel aging_;
};

}  // namespace vmincqr::silicon
