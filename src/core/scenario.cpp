#include "core/scenario.hpp"

#include <stdexcept>

namespace vmincqr::core {

std::string to_string(FeatureSet set) {
  switch (set) {
    case FeatureSet::kParametricOnly:
      return "parametric";
    case FeatureSet::kOnChipOnly:
      return "on-chip";
    case FeatureSet::kBoth:
      return "on-chip+parametric";
  }
  return "unknown";
}

std::vector<std::size_t> scenario_feature_columns(const data::Dataset& ds,
                                                  const Scenario& scenario) {
  if (scenario.read_point_hours < 0.0) {
    throw std::invalid_argument(
        "scenario_feature_columns: negative read point");
  }
  const bool want_parametric =
      scenario.feature_set != FeatureSet::kOnChipOnly;
  const bool want_onchip =
      scenario.feature_set != FeatureSet::kParametricOnly;
  return ds.select_features([&](const data::FeatureInfo& info) {
    if (info.type == data::FeatureType::kParametric) {
      // Parametric tests exist at time 0 only (pre-shipment).
      // Read points are exact grid values (0, 1000, ... hours), so exact
      // comparison against the t=0 read point is well-defined.
      return want_parametric &&
             info.read_point_hours == 0.0;  // vmincqr-lint: allow(float-equality)
    }
    // Monitor data from all read points up to and including the horizon
    // (the label read point by default; earlier when forecasting).
    return want_onchip &&
           info.read_point_hours <= scenario.effective_horizon() + 1e-9;
  });
}

const linalg::Vector& scenario_labels(const data::Dataset& ds,
                                      const Scenario& scenario) {
  return ds.label(scenario.read_point_hours, scenario.temperature_c).values;
}

std::string describe(const Scenario& scenario) {
  std::string out =
      "t=" + std::to_string(static_cast<int>(scenario.read_point_hours)) +
      "h, T=" + std::to_string(static_cast<int>(scenario.temperature_c)) +
      "C, features=" + to_string(scenario.feature_set);
  if (scenario.monitor_horizon_hours >= 0.0) {
    out += ", monitors<=" +
           std::to_string(static_cast<int>(scenario.monitor_horizon_hours)) +
           "h";
  }
  return out;
}

}  // namespace vmincqr::core
