// Mondrian (group-conditional) CQR — an extension beyond the paper.
//
// Split-conformal guarantees are marginal over the whole population; in a
// screening flow one often wants the guarantee to hold per group (e.g. per
// process corner, or separately for suspect chips). Mondrian calibration
// computes one q_hat per group from the calibration samples of that group,
// giving a group-conditional coverage guarantee at the price of needing
// enough calibration chips per group.
#pragma once

#include <functional>
#include <map>
#include <memory>

#include "core/split_spec.hpp"
#include "core/units.hpp"
#include "models/interval.hpp"

namespace vmincqr::conformal {

using core::MiscoverageAlpha;
using models::IntervalPrediction;
using models::IntervalRegressor;
using models::Matrix;
using models::Vector;

/// Maps a feature row to a group id. Must be a deterministic function of the
/// features only (it is applied to both calibration and test rows).
using GroupFn = std::function<int(const double* row, std::size_t n_cols)>;

struct MondrianConfig {
  core::CalibrationSplit split;
  /// Groups whose calibration count is below this fall back to the pooled
  /// (marginal) q_hat instead of an infinite interval.
  std::size_t min_group_size = 5;
};

class MondrianCqr final : public IntervalRegressor {
 public:
  /// Throws std::invalid_argument on a null base/group function or alpha
  /// mismatch with the base.
  MondrianCqr(MiscoverageAlpha alpha, std::unique_ptr<IntervalRegressor> base,
              GroupFn group_fn, MondrianConfig config = {});

  void fit(const Matrix& x, const Vector& y) override;
  [[nodiscard]] IntervalPrediction predict_interval(const Matrix& x) const override;
  [[nodiscard]] std::unique_ptr<IntervalRegressor> clone_config() const override;
  [[nodiscard]] std::string name() const override { return "Mondrian " + base_->name(); }
  [[nodiscard]] MiscoverageAlpha alpha() const override { return alpha_; }

  /// Per-group calibrated adjustments (group id -> q_hat).
  [[nodiscard]] const std::map<int, double>& group_q_hat() const { return group_q_hat_; }
  [[nodiscard]] double pooled_q_hat() const { return pooled_q_hat_; }

 private:
  MiscoverageAlpha alpha_;
  std::unique_ptr<IntervalRegressor> base_;
  GroupFn group_fn_;
  MondrianConfig config_;
  std::map<int, double> group_q_hat_;
  double pooled_q_hat_ = 0.0;
  bool calibrated_ = false;
};

}  // namespace vmincqr::conformal
