// Half of a deliberate header cycle: a.hpp -> b.hpp -> a.hpp. Each half uses
// a name from the other so only include-cycle fires.
#pragma once

#include "cyc/b.hpp"

struct AThing {
  int a = 0;
};

inline int a_value() { return BThing{}.b; }
