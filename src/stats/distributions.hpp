// Standard-normal distribution utilities (CDF and quantile function), used by
// the Gaussian-process interval construction, Eq. (4) of the paper.
#pragma once

namespace vmincqr::stats {

/// Standard normal cumulative distribution function Phi(x).
double normal_cdf(double x);

/// Standard normal probability density function phi(x).
double normal_pdf(double x);

/// Inverse standard normal CDF Phi^{-1}(p) for p in (0, 1).
/// Throws std::invalid_argument for p outside (0, 1).
/// Acklam's rational approximation refined with one Halley step;
/// absolute error < 1e-9 over (1e-300, 1 - 1e-16).
double normal_quantile(double p);

}  // namespace vmincqr::stats
