#include "conformal/cqr.hpp"

#include <cmath>
#include <stdexcept>

#include "core/contracts.hpp"

#include "conformal/scores.hpp"
#include "data/split.hpp"
#include "stats/quantile.hpp"

namespace vmincqr::conformal {

ConformalizedQuantileRegressor::ConformalizedQuantileRegressor(
    MiscoverageAlpha alpha, std::unique_ptr<IntervalRegressor> base,
    CqrConfig config)
    : alpha_(alpha), base_(std::move(base)), config_(config) {
  if (!base_) {
    throw std::invalid_argument("ConformalizedQuantileRegressor: null base");
  }
  if (std::abs(base_->alpha() - alpha) > 1e-9) {
    throw std::invalid_argument(
        "ConformalizedQuantileRegressor: base model alpha mismatch");
  }
  if (!config_.split.valid()) {
    throw std::invalid_argument(
        "ConformalizedQuantileRegressor: train_fraction outside (0, 1)");
  }
}

void ConformalizedQuantileRegressor::fit(const Matrix& x, const Vector& y) {
  VMINCQR_REQUIRE(x.rows() >= 3,
                  "ConformalizedQuantileRegressor::fit: need at least 3 "
                  "samples");
  VMINCQR_CHECK_SHAPE(x.rows() == y.size(),
                      "ConformalizedQuantileRegressor::fit: shape mismatch");
  VMINCQR_CHECK_FINITE(y, "fit: label vector y");
  std::vector<std::size_t> indices(x.rows());
  for (std::size_t i = 0; i < indices.size(); ++i) indices[i] = i;
  rng::Rng rng(config_.split.seed);
  const auto split = data::train_calibration_split(
      indices, config_.split.train_fraction, rng);

  Vector y_train(split.train.size()), y_calib(split.calibration.size());
  for (std::size_t i = 0; i < split.train.size(); ++i) {
    y_train[i] = y[split.train[i]];
  }
  for (std::size_t i = 0; i < split.calibration.size(); ++i) {
    y_calib[i] = y[split.calibration[i]];
  }
  fit_with_split(x.take_rows(split.train), y_train,
                 x.take_rows(split.calibration), y_calib);
}

void ConformalizedQuantileRegressor::fit_with_split(const Matrix& x_train,
                                                    const Vector& y_train,
                                                    const Matrix& x_calib,
                                                    const Vector& y_calib) {
  VMINCQR_REQUIRE(x_calib.rows() > 0,
                  "ConformalizedQuantileRegressor: empty calibration set");
  VMINCQR_CHECK_SHAPE(x_calib.rows() == y_calib.size(),
                      "ConformalizedQuantileRegressor: calibration shape "
                      "mismatch");
  VMINCQR_CHECK_FINITE(y_calib, "calibrate: calibration labels");
  base_->fit(x_train, y_train);
  const IntervalPrediction band = base_->predict_interval(x_calib);
  if (config_.mode == CqrMode::kSymmetric) {
    const auto scores = cqr_scores(y_calib, band.lower, band.upper);
    q_hat_lo_ = q_hat_hi_ = stats::conformal_quantile(scores, alpha_);
  } else {
    // Per-tail calibration at level alpha/2 each (union bound -> 1 - alpha).
    std::vector<double> lo_scores(y_calib.size()), hi_scores(y_calib.size());
    for (std::size_t i = 0; i < y_calib.size(); ++i) {
      lo_scores[i] = band.lower[i] - y_calib[i];
      hi_scores[i] = y_calib[i] - band.upper[i];
    }
    q_hat_lo_ = stats::conformal_quantile(lo_scores, alpha_.halved());
    q_hat_hi_ = stats::conformal_quantile(hi_scores, alpha_.halved());
  }
  // +Inf is a legitimate conservative result (calibration set too small for
  // the requested alpha -> infinite band); only NaN indicates a defect.
  VMINCQR_ENSURE(!std::isnan(q_hat_lo_) && !std::isnan(q_hat_hi_),
                 "calibrate: NaN q_hat");
  calibrated_ = true;
}

IntervalPrediction ConformalizedQuantileRegressor::predict_interval(
    const Matrix& x) const {
  if (!calibrated_) {
    throw std::logic_error("ConformalizedQuantileRegressor: not calibrated");
  }
  IntervalPrediction out = base_->predict_interval(x);
  for (std::size_t i = 0; i < out.lower.size(); ++i) {
    out.lower[i] -= q_hat_lo_;
    out.upper[i] += q_hat_hi_;
    // A strongly negative q_hat could invert a very tight band; clamp to the
    // degenerate point interval at the band centre.
    if (out.lower[i] > out.upper[i]) {
      const double mid = 0.5 * (out.lower[i] + out.upper[i]);
      out.lower[i] = mid;
      out.upper[i] = mid;
    }
  }
  VMINCQR_AUDIT(
      [&] {
        for (std::size_t i = 0; i < out.lower.size(); ++i) {
          if (std::isnan(out.lower[i]) || std::isnan(out.upper[i])) {
            return false;
          }
        }
        return true;
      }(),
      "predict_interval: NaN in conformalized band");
  return out;
}

std::unique_ptr<IntervalRegressor> ConformalizedQuantileRegressor::clone_config()
    const {
  return std::make_unique<ConformalizedQuantileRegressor>(
      alpha_, base_->clone_config(), config_);
}

std::string ConformalizedQuantileRegressor::name() const {
  // "QR CatBoost" -> "CQR CatBoost"; other bases get a "CQR " prefix.
  const std::string base_name = base_->name();
  std::string name = base_name.rfind("QR ", 0) == 0 ? "C" + base_name
                                                    : "CQR " + base_name;
  if (config_.mode == CqrMode::kAsymmetric) name += " (asym)";
  return name;
}

double ConformalizedQuantileRegressor::q_hat() const {
  if (!calibrated_) {
    throw std::logic_error("ConformalizedQuantileRegressor: not calibrated");
  }
  return 0.5 * (q_hat_lo_ + q_hat_hi_);
}

double ConformalizedQuantileRegressor::q_hat_lower() const {
  if (!calibrated_) {
    throw std::logic_error("ConformalizedQuantileRegressor: not calibrated");
  }
  return q_hat_lo_;
}

double ConformalizedQuantileRegressor::q_hat_upper() const {
  if (!calibrated_) {
    throw std::logic_error("ConformalizedQuantileRegressor: not calibrated");
  }
  return q_hat_hi_;
}

CqrCalibration ConformalizedQuantileRegressor::export_calibration() const {
  if (!calibrated_) {
    throw std::logic_error("ConformalizedQuantileRegressor: not calibrated");
  }
  return {q_hat_lo_, q_hat_hi_};
}

void ConformalizedQuantileRegressor::import_calibration(
    CqrCalibration calibration) {
  if (std::isnan(calibration.q_hat_lo) || std::isnan(calibration.q_hat_hi)) {
    throw std::invalid_argument(
        "ConformalizedQuantileRegressor::import_calibration: NaN q_hat");
  }
  q_hat_lo_ = calibration.q_hat_lo;
  q_hat_hi_ = calibration.q_hat_hi;
  calibrated_ = true;
}

}  // namespace vmincqr::conformal
