// Aging (wear-out) model for the burn-in stress experiment.
//
// The paper stresses chips with dynamic Dhrystone at elevated voltage for
// 1008 hours and reads out at {0, 24, 48, 168, 504, 1008} h. We model the
// dominant mechanisms (NBTI/HCI) with the standard sub-linear power law
//   dVth_age(t) = A * activity * (t / t_ref)^n,
// n ~ 0.2, which saturates slowly — matching the paper's observation that
// monitor information stays predictive out to 1008 h.
#pragma once

#include <vector>

#include "core/units.hpp"
#include "silicon/process.hpp"

namespace vmincqr::silicon {

struct AgingConfig {
  double amplitude = 0.022;  ///< A: asymptotic-scale Vth shift (V) at t_ref
  double exponent = 0.2;     ///< n: power-law exponent
  double t_ref_hours = 1008.0;  ///< reference stress time
  /// Weak process dependence: high-|dvth| chips age slightly faster.
  double vth_coupling = 0.15;
  /// Defective chips degrade faster (latent defect accelerates wear-out).
  double defect_coupling = 0.35;
};

/// Deterministic aging response for a chip at a stress time.
class AgingModel {
 public:
  explicit AgingModel(AgingConfig config = {});

  /// Equivalent threshold-voltage shift (V) accumulated by `hours` of
  /// stress. Zero at t=0; monotone nondecreasing in t. core::Hours
  /// construction already rejects negative or non-finite durations.
  [[nodiscard]] double delta_vth(const ChipLatent& chip, core::Hours hours) const;

  /// Aging state for several read points at once (raw hour values; each is
  /// validated through core::Hours).
  std::vector<double> delta_vth_series(const ChipLatent& chip,
                                       const std::vector<double>& hours) const;

  [[nodiscard]] const AgingConfig& config() const noexcept { return config_; }

 private:
  AgingConfig config_;
};

/// The paper's stress read points (hours): {0, 24, 48, 168, 504, 1008}.
const std::vector<double>& standard_read_points();

/// Strongly-indexed access into standard_read_points(); the tag type keeps
/// read-point indices from being confused with chip or column indices.
/// Throws std::out_of_range for an index past the schedule.
core::Hours standard_read_point(core::ReadPointIdx idx);

/// The paper's SCAN Vmin test temperatures (deg C): {-45, 25, 125}.
const std::vector<double>& standard_temperatures();

}  // namespace vmincqr::silicon
