file(REMOVE_RECURSE
  "CMakeFiles/conformal_playground.dir/conformal_playground.cpp.o"
  "CMakeFiles/conformal_playground.dir/conformal_playground.cpp.o.d"
  "conformal_playground"
  "conformal_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conformal_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
