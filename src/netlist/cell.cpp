#include "netlist/cell.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace vmincqr::netlist {

const std::vector<CellType>& standard_cell_library() {
  static const std::vector<CellType> library = {
      {"INV_X1", 0.012, 1.00},  {"BUF_X2", 0.018, 0.85},
      {"NAND2_X1", 0.016, 1.10}, {"NOR2_X1", 0.019, 1.25},
      {"AOI21_X1", 0.024, 1.30}, {"DFF_CK2Q", 0.045, 1.00},
  };
  return library;
}

double cell_delay(const CellType& cell, const DelayModelConfig& config,
                  double vdd, double dvth_eff, double temp_c) {
  if (vdd <= 0.0) throw std::invalid_argument("cell_delay: vdd <= 0");

  const double vth =
      config.vth_nominal + dvth_eff +
      config.vth_temp_coeff * (temp_c - config.temp_ref_c);
  const double headroom = vdd - vth;
  if (headroom < config.min_headroom) {
    return std::numeric_limits<double>::infinity();
  }

  // Alpha-power law, normalized at the characterization point.
  const double ref_headroom = config.v_nominal - config.vth_nominal;
  const double shape =
      (vdd / std::pow(headroom, config.alpha)) /
      (config.v_nominal / std::pow(ref_headroom, config.alpha));
  const double temp_factor =
      1.0 + config.mobility_temp_coeff * (temp_c - config.temp_ref_c);
  return cell.base_delay_ns * cell.drive_factor * shape * temp_factor;
}

}  // namespace vmincqr::netlist
