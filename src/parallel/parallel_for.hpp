// Deterministic data-parallel primitives over the process thread pool.
//
// The determinism contract (DESIGN.md §8): the chunk grid — how [0, n_items)
// is cut into contiguous chunks — is a pure function of (n_items, grain) and
// NEVER of the thread count. The pool only places chunks on lanes; it cannot
// change what a chunk computes. Reductions combine per-chunk partials in
// ascending chunk index on one thread, so floating-point results are
// bit-identical at 1, 2, or N threads. n_threads==1 is not a separate code
// path: it runs the same grid in chunk order, which makes it the reference
// implementation by construction.
//
// `use_pool=false` keeps the identical grid but executes it inline on the
// caller — a per-call-site gate for work too small to amortize a dispatch.
// It may depend on problem shape (n, d), never on the thread count.
#pragma once

#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

namespace vmincqr::parallel {

/// Auto-grain (grain==0) targets at most this many chunks. A fixed constant:
/// deriving it from the thread count would change the grid — and therefore
/// floating-point sums — across machines.
inline constexpr std::size_t kAutoMaxChunks = 64;

/// Items per chunk after resolving grain==0 to the auto policy
/// ceil(n_items / kAutoMaxChunks); always >= 1 for n_items >= 1.
std::size_t resolve_grain(std::size_t n_items, std::size_t grain);

/// Number of chunks in the grid: ceil(n_items / resolve_grain(...)).
std::size_t chunk_count(std::size_t n_items, std::size_t grain);

/// Half-open item range [begin, end) of chunk `chunk` in the grid.
struct ChunkRange {
  std::size_t begin = 0;
  std::size_t end = 0;
};
ChunkRange chunk_range(std::size_t n_items, std::size_t grain,
                       std::size_t chunk);

/// Core primitive: fn(chunk, begin, end) for every chunk of the grid.
/// Dispatches to the pool when use_pool (inline otherwise); either way the
/// grid is the same, so per-chunk results cannot differ.
void for_each_chunk(
    std::size_t n_items, std::size_t grain,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn,
    bool use_pool = true);

/// parallel_for: fn(begin, end) over the chunk grid. fn must only write
/// state owned by its item range (disjoint writes) — the chunks of one call
/// run concurrently.
template <typename Fn>
void parallel_for(std::size_t n_items, std::size_t grain, Fn&& fn,
                  bool use_pool = true) {
  for_each_chunk(
      n_items, grain,
      [&fn](std::size_t /*chunk*/, std::size_t begin, std::size_t end) {
        fn(begin, end);
      },
      use_pool);
}

/// Deterministic reduction: partial_c = map_chunk(begin_c, end_c) computed
/// per chunk (concurrently), then acc = combine(acc, partial_c) folded in
/// ascending chunk order on the calling thread. T must be default- and
/// move-constructible. Bit-exact across thread counts because neither the
/// grid nor the fold order ever sees the thread count.
template <typename T, typename MapFn, typename CombineFn>
T parallel_deterministic_reduce(std::size_t n_items, std::size_t grain,
                                T init, MapFn&& map_chunk,
                                CombineFn&& combine, bool use_pool = true) {
  T acc = std::move(init);
  if (n_items == 0) return acc;
  std::vector<T> partials(chunk_count(n_items, grain));
  for_each_chunk(
      n_items, grain,
      [&](std::size_t chunk, std::size_t begin, std::size_t end) {
        partials[chunk] = map_chunk(begin, end);
      },
      use_pool);
  for (T& partial : partials) acc = combine(std::move(acc), std::move(partial));
  return acc;
}

}  // namespace vmincqr::parallel
