// Unit tests for the linalg substrate: Matrix, ops, decompositions.
#include <gtest/gtest.h>

#include <cmath>

#include "linalg/decomp.hpp"
#include "linalg/matrix.hpp"
#include "linalg/ops.hpp"
#include "rng/rng.hpp"

namespace vmincqr::linalg {
namespace {

TEST(Matrix, ConstructsWithFill) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(m(r, c), 1.5);
  }
}

TEST(Matrix, InitializerList) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), std::invalid_argument);
}

TEST(Matrix, FromRowsValidatesSize) {
  EXPECT_THROW(Matrix::from_rows(2, 2, {1.0, 2.0, 3.0}),
               std::invalid_argument);
  Matrix m = Matrix::from_rows(2, 2, {1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(m(1, 1), 4.0);
}

TEST(Matrix, AtThrowsOutOfRange) {
  Matrix m(2, 2);
  EXPECT_THROW(m.at(2, 0), std::out_of_range);
  EXPECT_THROW(m.at(0, 2), std::out_of_range);
  EXPECT_NO_THROW(m.at(1, 1));
}

TEST(Matrix, RowAndColExtraction) {
  Matrix m{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  EXPECT_EQ(m.row(1), (Vector{4.0, 5.0, 6.0}));
  EXPECT_EQ(m.col(2), (Vector{3.0, 6.0}));
  EXPECT_THROW(m.row(2), std::out_of_range);
  EXPECT_THROW(m.col(3), std::out_of_range);
}

TEST(Matrix, SetRowAndCol) {
  Matrix m(2, 2, 0.0);
  m.set_row(0, {1.0, 2.0});
  m.set_col(1, {7.0, 8.0});
  EXPECT_DOUBLE_EQ(m(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m(0, 1), 7.0);
  EXPECT_DOUBLE_EQ(m(1, 1), 8.0);
  EXPECT_THROW(m.set_row(0, {1.0}), std::invalid_argument);
}

TEST(Matrix, Transpose) {
  Matrix m{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
}

TEST(Matrix, TakeRowsAndCols) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};
  Matrix sub = m.take_rows({2, 0});
  EXPECT_DOUBLE_EQ(sub(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(sub(1, 1), 2.0);
  Matrix cols = m.take_cols({1});
  EXPECT_EQ(cols.cols(), 1u);
  EXPECT_DOUBLE_EQ(cols(2, 0), 6.0);
  EXPECT_THROW(m.take_rows({3}), std::out_of_range);
  EXPECT_THROW(m.take_cols({2}), std::out_of_range);
}

TEST(Matrix, WithIntercept) {
  Matrix m{{2.0}, {3.0}};
  Matrix a = m.with_intercept();
  EXPECT_EQ(a.cols(), 2u);
  EXPECT_DOUBLE_EQ(a(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(a(1, 1), 3.0);
}

TEST(Ops, Matmul) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  Matrix b{{5.0, 6.0}, {7.0, 8.0}};
  Matrix c = matmul(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
  EXPECT_THROW(matmul(a, Matrix(3, 2)), std::invalid_argument);
}

TEST(Ops, MatvecAndTranspose) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(matvec(a, {1.0, 1.0}), (Vector{3.0, 7.0}));
  EXPECT_EQ(transpose_matvec(a, {1.0, 1.0}), (Vector{4.0, 6.0}));
  EXPECT_THROW(matvec(a, {1.0}), std::invalid_argument);
}

TEST(Ops, GramMatchesExplicitProduct) {
  rng::Rng rng(1);
  Matrix a(7, 4);
  for (std::size_t r = 0; r < 7; ++r) {
    for (std::size_t c = 0; c < 4; ++c) a(r, c) = rng.normal();
  }
  Matrix g = gram(a);
  Matrix expected = matmul(a.transposed(), a);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      EXPECT_NEAR(g(i, j), expected(i, j), 1e-12);
    }
  }
}

TEST(Ops, VectorHelpers) {
  Vector a{1.0, 2.0}, b{3.0, 5.0};
  EXPECT_DOUBLE_EQ(dot(a, b), 13.0);
  EXPECT_DOUBLE_EQ(norm2({3.0, 4.0}), 5.0);
  EXPECT_EQ(add(a, b), (Vector{4.0, 7.0}));
  EXPECT_EQ(sub(b, a), (Vector{2.0, 3.0}));
  EXPECT_EQ(scale(a, 2.0), (Vector{2.0, 4.0}));
  Vector acc = a;
  axpy(2.0, b, acc);
  EXPECT_EQ(acc, (Vector{7.0, 12.0}));
  EXPECT_THROW(dot(a, {1.0}), std::invalid_argument);
}

TEST(Decomp, CholeskyRoundTrip) {
  // A = L0 L0^T is SPD by construction; cholesky must recover a factor whose
  // product reproduces A.
  Matrix l0{{2.0, 0.0, 0.0}, {0.5, 1.5, 0.0}, {-0.3, 0.7, 1.1}};
  Matrix a = matmul(l0, l0.transposed());
  auto l = cholesky(a);
  ASSERT_TRUE(l.has_value());
  Matrix rebuilt = matmul(*l, l->transposed());
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_NEAR(rebuilt(i, j), a(i, j), 1e-12);
    }
  }
}

TEST(Decomp, CholeskyRejectsIndefinite) {
  Matrix a{{1.0, 2.0}, {2.0, 1.0}};  // eigenvalues 3, -1
  EXPECT_FALSE(cholesky(a).has_value());
}

TEST(Decomp, CholeskyJitteredRecoversSemiDefinite) {
  // Rank-1 PSD matrix: plain Cholesky fails, jittered succeeds.
  Matrix a{{1.0, 1.0}, {1.0, 1.0}};
  EXPECT_FALSE(cholesky(a).has_value());
  EXPECT_NO_THROW(cholesky_jittered(a));
}

TEST(Decomp, SolveSpd) {
  Matrix a{{4.0, 1.0}, {1.0, 3.0}};
  Vector x = solve_spd(a, Vector{1.0, 2.0});
  EXPECT_NEAR(4.0 * x[0] + x[1], 1.0, 1e-12);
  EXPECT_NEAR(x[0] + 3.0 * x[1], 2.0, 1e-12);
}

TEST(Decomp, LeastSquaresRecoversExactSolution) {
  rng::Rng rng(7);
  Matrix a(20, 3);
  Vector truth{1.5, -2.0, 0.5};
  Vector b(20, 0.0);
  for (std::size_t r = 0; r < 20; ++r) {
    for (std::size_t c = 0; c < 3; ++c) a(r, c) = rng.normal();
    for (std::size_t c = 0; c < 3; ++c) b[r] += a(r, c) * truth[c];
  }
  Vector x = least_squares(a, b);
  for (std::size_t c = 0; c < 3; ++c) EXPECT_NEAR(x[c], truth[c], 1e-9);
}

TEST(Decomp, LeastSquaresHandlesRankDeficiency) {
  // Column 1 duplicates column 0; any solution with x0 + x1 = 2 is optimal.
  Matrix a{{1.0, 1.0}, {2.0, 2.0}, {3.0, 3.0}};
  Vector b{2.0, 4.0, 6.0};
  Vector x = least_squares(a, b);
  Vector fitted = matvec(a, x);
  for (std::size_t r = 0; r < 3; ++r) EXPECT_NEAR(fitted[r], b[r], 1e-9);
}

TEST(Decomp, RidgeShrinksTowardZero) {
  Matrix a{{1.0}, {1.0}, {1.0}};
  Vector b{1.0, 1.0, 1.0};
  Vector x0 = ridge_solve(a, b, 0.0);
  Vector x1 = ridge_solve(a, b, 10.0);
  EXPECT_NEAR(x0[0], 1.0, 1e-12);
  EXPECT_LT(x1[0], x0[0]);
  EXPECT_GT(x1[0], 0.0);
  EXPECT_THROW(ridge_solve(a, b, -1.0), std::invalid_argument);
}

TEST(Decomp, LogDetMatchesKnownValue) {
  Matrix a{{4.0, 0.0}, {0.0, 9.0}};
  auto l = cholesky(a);
  ASSERT_TRUE(l.has_value());
  EXPECT_NEAR(log_det_from_cholesky(*l), std::log(36.0), 1e-12);
}

}  // namespace
}  // namespace vmincqr::linalg
