# Empty dependencies file for silicon_test.
# This may be replaced when dependencies are built.
