// Tests for the structural-test substrate: bit-parallel logic simulation,
// stuck-at fault simulation, and the random-pattern ATPG loop.
#include <gtest/gtest.h>

#include "testgen/fault_sim.hpp"

namespace vmincqr::testgen {
namespace {

using netlist::Gate;
using netlist::Netlist;

// in0, in1 -> NAND (node 2) -> INV (node 3). Output: node 3 (= AND).
Netlist make_and_circuit() {
  std::vector<Gate> gates = {{2, {0, 1}, 1.0, 1.0}, {0, {2}, 1.0, 1.0}};
  return Netlist(2, std::move(gates), {3});
}

TEST(EvaluateGate, TruthTables) {
  const PatternWord a = 0b1100;
  const PatternWord b = 0b1010;
  EXPECT_EQ(evaluate_gate(0, {a}) & 0xF, PatternWord{0b0011});       // INV
  EXPECT_EQ(evaluate_gate(1, {a}) & 0xF, PatternWord{0b1100});      // BUF
  EXPECT_EQ(evaluate_gate(2, {a, b}) & 0xF, PatternWord{0b0111});   // NAND
  EXPECT_EQ(evaluate_gate(3, {a, b}) & 0xF, PatternWord{0b0001});   // NOR
  // AOI21(a, b, c) = !((a&b)|c), c = 0b0110.
  EXPECT_EQ(evaluate_gate(4, {a, b, PatternWord{0b0110}}) & 0xF,
            PatternWord{0b0001});
  EXPECT_EQ(evaluate_gate(5, {a}) & 0xF, PatternWord{0b1100});  // DFF
  EXPECT_THROW(evaluate_gate(99, {a}), std::invalid_argument);
  EXPECT_THROW(evaluate_gate(0, {}), std::invalid_argument);
}

TEST(LogicSim, AndCircuitExhaustive) {
  const Netlist nl = make_and_circuit();
  const LogicSimulator sim(nl);
  // 4 patterns: in0 = 0011, in1 = 0101 -> AND = 0001.
  const auto values = sim.simulate({0b0011, 0b0101});
  EXPECT_EQ(values[3] & 0xF, PatternWord{0b0001});
  const auto outs = sim.outputs_of(values);
  ASSERT_EQ(outs.size(), 1u);
  EXPECT_EQ(outs[0] & 0xF, PatternWord{0b0001});
  EXPECT_THROW(sim.simulate({0b0011}), std::invalid_argument);
}

TEST(LogicSim, FaultInjectionChangesOutputs) {
  const Netlist nl = make_and_circuit();
  const LogicSimulator sim(nl);
  // Stuck-at-1 on the AND output (node 3): output becomes all ones.
  const auto faulty = sim.simulate_with_fault({0b0011, 0b0101}, 3, true);
  EXPECT_EQ(faulty[3] & 0xF, PatternWord{0xF});
  // Stuck-at-0 on input 0 propagates: AND = 0.
  const auto in_fault = sim.simulate_with_fault({0b0011, 0b0101}, 0, false);
  EXPECT_EQ(in_fault[3] & 0xF, PatternWord{0b0000});
  EXPECT_THROW(sim.simulate_with_fault({0b0011, 0b0101}, 99, false),
               std::invalid_argument);
}

TEST(FaultSim, DetectsAllFaultsOfAndWithExhaustivePatterns) {
  const Netlist nl = make_and_circuit();
  const auto faults = enumerate_stuck_faults(nl);
  EXPECT_EQ(faults.size(), 2u * nl.n_nodes());
  // Exhaustive 4 patterns in one word.
  const std::vector<std::vector<PatternWord>> words = {{0b0011}, {0b0101}};
  const auto result = simulate_faults(nl, words, faults);
  // Every stuck-at fault in an AND cone is detectable with exhaustive
  // patterns.
  EXPECT_EQ(result.n_detected, result.n_faults);
  EXPECT_DOUBLE_EQ(result.coverage(), 1.0);
}

TEST(FaultSim, UndetectedWithoutSensitizingPatterns) {
  const Netlist nl = make_and_circuit();
  // Only the pattern 00: stuck-at-0 at node 3 produces the same output.
  const std::vector<std::vector<PatternWord>> words = {{0b0}, {0b0}};
  const auto faults = std::vector<StuckFault>{{3, false}};
  const auto result = simulate_faults(nl, words, faults);
  EXPECT_EQ(result.n_detected, 0u);
}

TEST(FaultSim, Validation) {
  const Netlist nl = make_and_circuit();
  EXPECT_THROW(simulate_faults(nl, {{0b1}}, {}), std::invalid_argument);
  EXPECT_THROW(simulate_faults(nl, {{0b1, 0b1}, {0b1}}, {}),
               std::invalid_argument);
}

TEST(Atpg, ReachesHighCoverageOnRandomLogic) {
  netlist::RandomNetlistConfig config;
  config.n_inputs = 24;
  config.n_gates = 200;
  config.n_outputs = 12;
  rng::Rng design_rng(3);
  const Netlist nl = Netlist::random(config, design_rng);

  rng::Rng atpg_rng(4);
  const auto result = random_atpg(nl, 0.95, 64, atpg_rng);
  // Random logic is highly random-pattern testable; most faults at
  // observable nodes are caught. (Unobservable dangling gates cap coverage
  // below 1.)
  EXPECT_GT(result.coverage, 0.5);
  EXPECT_GT(result.n_patterns, 0u);
  EXPECT_EQ(result.input_words.size(), nl.n_inputs());
}

TEST(Atpg, CoverageMonotoneInPatternBudget) {
  netlist::RandomNetlistConfig config;
  config.n_inputs = 16;
  config.n_gates = 120;
  rng::Rng design_rng(5);
  const Netlist nl = Netlist::random(config, design_rng);

  rng::Rng rng_small(6), rng_large(6);
  // Target 1.0 is practically unreachable (unobservable nodes), so both
  // runs exhaust their budgets.
  const auto small = random_atpg(nl, 1.0, 1, rng_small);
  const auto large = random_atpg(nl, 1.0, 16, rng_large);
  EXPECT_GE(large.coverage, small.coverage);
}

TEST(Atpg, Validation) {
  const Netlist nl = make_and_circuit();
  rng::Rng rng(7);
  EXPECT_THROW(random_atpg(nl, -0.1, 4, rng), std::invalid_argument);
  EXPECT_THROW(random_atpg(nl, 0.9, 0, rng), std::invalid_argument);
}

}  // namespace
}  // namespace vmincqr::testgen
