// Tests for the conformal core: score functions, split CP, split CQR, and
// the region baselines (GP interval, QR pair).
#include <gtest/gtest.h>

#include <cmath>

#include "conformal/cqr.hpp"
#include "conformal/scores.hpp"
#include "conformal/split_cp.hpp"
#include "models/factory.hpp"
#include "rng/rng.hpp"
#include "stats/metrics.hpp"

namespace vmincqr::conformal {
namespace {

using models::ModelKind;

// Linear data with heteroscedastic noise: spread grows with x0. CQR should
// produce wider intervals where the noise is larger; CP cannot.
struct HeteroProblem {
  models::Matrix x;
  models::Vector y;
};

HeteroProblem make_hetero(std::size_t n, std::uint64_t seed) {
  rng::Rng rng(seed);
  HeteroProblem p{models::Matrix(n, 2), models::Vector(n)};
  for (std::size_t i = 0; i < n; ++i) {
    p.x(i, 0) = rng.uniform(0.0, 2.0);
    p.x(i, 1) = rng.normal();
    p.y[i] = 1.0 + p.x(i, 0) + 0.3 * p.x(i, 1) +
             rng.normal(0.0, 0.05 + 0.5 * p.x(i, 0));
  }
  return p;
}

TEST(Scores, AbsoluteResidual) {
  EXPECT_DOUBLE_EQ(absolute_residual_score(1.0, 3.0), 2.0);
  EXPECT_DOUBLE_EQ(absolute_residual_score(3.0, 1.0), 2.0);
}

TEST(Scores, CqrScoreSignConvention) {
  // Inside the band: negative (distance to the nearer bound).
  EXPECT_DOUBLE_EQ(cqr_score(1.5, 1.0, 2.0), -0.5);
  // Below the band: lo - y > 0.
  EXPECT_DOUBLE_EQ(cqr_score(0.5, 1.0, 2.0), 0.5);
  // Above the band: y - hi > 0.
  EXPECT_DOUBLE_EQ(cqr_score(2.7, 1.0, 2.0), 0.7);
}

TEST(Scores, NormalizedResidual) {
  EXPECT_DOUBLE_EQ(normalized_residual_score(1.0, 3.0, 2.0), 1.0);
  EXPECT_THROW(normalized_residual_score(1.0, 3.0, 0.0),
               std::invalid_argument);
}

TEST(Scores, VectorizedHelpersValidate) {
  EXPECT_THROW(absolute_residual_scores({1.0}, {1.0, 2.0}),
               std::invalid_argument);
  EXPECT_THROW(cqr_scores({1.0}, {1.0}, {1.0, 2.0}), std::invalid_argument);
}

TEST(SplitCp, ConstructionValidation) {
  EXPECT_THROW(SplitConformalRegressor(
                   core::MiscoverageAlpha{0.0}, models::make_point_regressor(ModelKind::kLinear)),
               std::invalid_argument);
  EXPECT_THROW(SplitConformalRegressor(core::MiscoverageAlpha{0.1}, nullptr), std::invalid_argument);
  SplitConfig bad;
  bad.split.train_fraction = 1.0;
  EXPECT_THROW(SplitConformalRegressor(
                   core::MiscoverageAlpha{0.1}, models::make_point_regressor(ModelKind::kLinear), bad),
               std::invalid_argument);
}

TEST(SplitCp, ConstantWidthIntervals) {
  const auto p = make_hetero(200, 1);
  SplitConformalRegressor cp(core::MiscoverageAlpha{0.1},
                             models::make_point_regressor(ModelKind::kLinear));
  cp.fit(p.x, p.y);
  const auto test = make_hetero(100, 2);
  const auto band = cp.predict_interval(test.x);
  const double width0 = band.upper[0] - band.lower[0];
  for (std::size_t i = 1; i < band.lower.size(); ++i) {
    EXPECT_NEAR(band.upper[i] - band.lower[i], width0, 1e-9);
  }
  EXPECT_NEAR(width0, 2.0 * cp.q_hat(), 1e-9);
}

TEST(SplitCp, CoversAtTargetRate) {
  const auto p = make_hetero(600, 3);
  SplitConformalRegressor cp(core::MiscoverageAlpha{0.1},
                             models::make_point_regressor(ModelKind::kLinear));
  cp.fit(p.x, p.y);
  const auto test = make_hetero(2000, 4);
  const auto band = cp.predict_interval(test.x);
  const double cov = stats::interval_coverage(test.y, band.lower, band.upper);
  EXPECT_GE(cov, 0.87);
}

TEST(SplitCp, InfiniteIntervalWhenCalibrationTooSmall) {
  // 8 samples, 25% calibration -> 2 calibration points; alpha = 0.1 needs 9.
  const auto p = make_hetero(8, 5);
  SplitConformalRegressor cp(core::MiscoverageAlpha{0.1},
                             models::make_point_regressor(ModelKind::kLinear));
  cp.fit(p.x, p.y);
  EXPECT_TRUE(std::isinf(cp.q_hat()));
  const auto band = cp.predict_interval(p.x);
  EXPECT_TRUE(std::isinf(band.upper[0] - band.lower[0]));
}

TEST(SplitCp, ExplicitSplitMatchesManualCalibration) {
  const auto train = make_hetero(100, 6);
  const auto calib = make_hetero(50, 7);
  SplitConformalRegressor cp(core::MiscoverageAlpha{0.2},
                             models::make_point_regressor(ModelKind::kLinear));
  cp.fit_with_split(train.x, train.y, calib.x, calib.y);
  // q_hat must be one of the calibration scores (an order statistic).
  const auto centre = cp.predict_point(calib.x);
  bool found = false;
  for (std::size_t i = 0; i < calib.y.size(); ++i) {
    if (std::abs(std::abs(calib.y[i] - centre[i]) - cp.q_hat()) < 1e-12) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(SplitCp, ErrorsBeforeFit) {
  SplitConformalRegressor cp(core::MiscoverageAlpha{0.1},
                             models::make_point_regressor(ModelKind::kLinear));
  EXPECT_THROW(cp.predict_interval(models::Matrix(1, 2)), std::logic_error);
  EXPECT_THROW(static_cast<void>(cp.q_hat()), std::logic_error);
}

TEST(Cqr, ConstructionValidation) {
  EXPECT_THROW(ConformalizedQuantileRegressor(core::MiscoverageAlpha{0.1}, nullptr),
               std::invalid_argument);
  // Base alpha mismatch.
  EXPECT_THROW(ConformalizedQuantileRegressor(
                   core::MiscoverageAlpha{0.1}, models::make_quantile_pair(ModelKind::kLinear, core::MiscoverageAlpha{0.2})),
               std::invalid_argument);
}

TEST(Cqr, AdaptiveWidthsTrackHeteroscedasticity) {
  const auto p = make_hetero(500, 8);
  ConformalizedQuantileRegressor cqr(
      core::MiscoverageAlpha{0.1}, models::make_quantile_pair(ModelKind::kLinear, core::MiscoverageAlpha{0.1}));
  cqr.fit(p.x, p.y);

  // Query at low-noise and high-noise ends of the x0 axis.
  models::Matrix quiet(1, 2), loud(1, 2);
  quiet(0, 0) = 0.1;
  quiet(0, 1) = 0.0;
  loud(0, 0) = 1.9;
  loud(0, 1) = 0.0;
  const auto band_quiet = cqr.predict_interval(quiet);
  const auto band_loud = cqr.predict_interval(loud);
  EXPECT_GT(band_loud.upper[0] - band_loud.lower[0],
            band_quiet.upper[0] - band_quiet.lower[0]);
}

TEST(Cqr, CalibratesUndercoveringBands) {
  // A deliberately narrow base band (20%-80% quantiles at alpha = 0.1)
  // undercovers; CQR must widen it (q_hat > 0) and restore coverage.
  const auto p = make_hetero(500, 9);
  auto narrow_pair = std::make_unique<models::QuantilePairRegressor>(
      core::MiscoverageAlpha{0.1}, models::make_point_regressor(ModelKind::kLinear,
                                        models::Loss::pinball(core::QuantileLevel{0.3})),
      models::make_point_regressor(ModelKind::kLinear,
                                   models::Loss::pinball(core::QuantileLevel{0.7})),
      "QR narrow");
  ConformalizedQuantileRegressor cqr(core::MiscoverageAlpha{0.1}, std::move(narrow_pair));
  cqr.fit(p.x, p.y);
  EXPECT_GT(cqr.q_hat(), 0.0);
  const auto test = make_hetero(1500, 10);
  const auto band = cqr.predict_interval(test.x);
  EXPECT_GE(stats::interval_coverage(test.y, band.lower, band.upper), 0.86);
}

TEST(Cqr, ShrinksOvercoveringBands) {
  // A deliberately wide base band (1%-99% quantiles at alpha = 0.2)
  // overcovers; the signed CQR score must tighten it (q_hat < 0).
  const auto p = make_hetero(500, 11);
  auto wide_pair = std::make_unique<models::QuantilePairRegressor>(
      core::MiscoverageAlpha{0.2}, models::make_point_regressor(ModelKind::kLinear,
                                        models::Loss::pinball(core::QuantileLevel{0.01})),
      models::make_point_regressor(ModelKind::kLinear,
                                   models::Loss::pinball(core::QuantileLevel{0.99})),
      "QR wide");
  ConformalizedQuantileRegressor cqr(core::MiscoverageAlpha{0.2}, std::move(wide_pair));
  cqr.fit(p.x, p.y);
  EXPECT_LT(cqr.q_hat(), 0.0);
}

TEST(Cqr, NameComposition) {
  ConformalizedQuantileRegressor cqr(
      core::MiscoverageAlpha{0.1}, models::make_quantile_pair(ModelKind::kCatboost, core::MiscoverageAlpha{0.1}));
  EXPECT_EQ(cqr.name(), "CQR CatBoost");
}

TEST(Cqr, CloneConfigIsIndependent) {
  const auto p = make_hetero(120, 12);
  ConformalizedQuantileRegressor cqr(
      core::MiscoverageAlpha{0.1}, models::make_quantile_pair(ModelKind::kLinear, core::MiscoverageAlpha{0.1}));
  auto clone = cqr.clone_config();
  cqr.fit(p.x, p.y);
  // The clone is unfitted and usable independently.
  EXPECT_THROW(clone->predict_interval(p.x), std::logic_error);
  clone->fit(p.x, p.y);
  const auto a = cqr.predict_interval(p.x);
  const auto b = clone->predict_interval(p.x);
  for (std::size_t i = 0; i < a.lower.size(); ++i) {
    EXPECT_NEAR(a.lower[i], b.lower[i], 1e-10);
  }
}

TEST(Cqr, AsymmetricModeCalibratesEachTail) {
  // Skewed errors: the base band misses mostly on one side; asymmetric CQR
  // should widen the tails by different amounts.
  rng::Rng rng(31);
  const std::size_t n = 600;
  models::Matrix x(n, 2);
  models::Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = rng.normal();
    x(i, 1) = rng.normal();
    // Exponential (right-skewed) noise via inverse CDF.
    const double u = rng.uniform(1e-12, 1.0);
    y[i] = x(i, 0) + (-std::log(u)) * 0.5;
  }
  CqrConfig config;
  config.mode = CqrMode::kAsymmetric;
  ConformalizedQuantileRegressor cqr(
      core::MiscoverageAlpha{0.1}, models::make_quantile_pair(ModelKind::kLinear, core::MiscoverageAlpha{0.1}), config);
  cqr.fit(x, y);
  EXPECT_NE(cqr.q_hat_lower(), cqr.q_hat_upper());
  EXPECT_NE(cqr.name().find("(asym)"), std::string::npos);

  // Asymmetric calibration is valid per tail -> overall coverage >= 1-a.
  rng::Rng test_rng(32);
  models::Matrix xt(400, 2);
  models::Vector yt(400);
  for (std::size_t i = 0; i < 400; ++i) {
    xt(i, 0) = test_rng.normal();
    xt(i, 1) = test_rng.normal();
    const double u = test_rng.uniform(1e-12, 1.0);
    yt[i] = xt(i, 0) + (-std::log(u)) * 0.5;
  }
  const auto band = cqr.predict_interval(xt);
  EXPECT_GE(stats::interval_coverage(yt, band.lower, band.upper), 0.86);
}

TEST(Cqr, AsymmetricAtLeastAsWideAsSymmetricOnAverage) {
  const auto p = make_hetero(400, 33);
  ConformalizedQuantileRegressor sym(
      core::MiscoverageAlpha{0.1}, models::make_quantile_pair(ModelKind::kLinear, core::MiscoverageAlpha{0.1}));
  CqrConfig asym_config;
  asym_config.mode = CqrMode::kAsymmetric;
  ConformalizedQuantileRegressor asym(
      core::MiscoverageAlpha{0.1}, models::make_quantile_pair(ModelKind::kLinear, core::MiscoverageAlpha{0.1}), asym_config);
  sym.fit(p.x, p.y);
  asym.fit(p.x, p.y);
  const auto test = make_hetero(300, 34);
  const auto band_sym = sym.predict_interval(test.x);
  const auto band_asym = asym.predict_interval(test.x);
  EXPECT_GE(stats::mean_interval_length(band_asym.lower, band_asym.upper),
            stats::mean_interval_length(band_sym.lower, band_sym.upper) -
                1e-9);
}

TEST(GpInterval, WidthScalesWithAlpha) {
  const auto p = make_hetero(80, 13);
  models::GpIntervalRegressor tight(core::MiscoverageAlpha{0.5}),
      loose(core::MiscoverageAlpha{0.05});
  tight.fit(p.x, p.y);
  loose.fit(p.x, p.y);
  const auto band_tight = tight.predict_interval(p.x);
  const auto band_loose = loose.predict_interval(p.x);
  for (std::size_t i = 0; i < p.y.size(); ++i) {
    EXPECT_LT(band_tight.upper[i] - band_tight.lower[i],
              band_loose.upper[i] - band_loose.lower[i]);
  }
}

TEST(GpInterval, SymmetricAroundPosterior) {
  const auto p = make_hetero(60, 14);
  models::GpIntervalRegressor gp(core::MiscoverageAlpha{0.1});
  gp.fit(p.x, p.y);
  const auto band = gp.predict_interval(p.x);
  const auto post = gp.gp().posterior(p.x);
  for (std::size_t i = 0; i < p.y.size(); ++i) {
    EXPECT_NEAR(0.5 * (band.lower[i] + band.upper[i]), post.mean[i], 1e-9);
  }
}

TEST(QuantilePair, RepairsCrossingBounds) {
  // Force crossing by using inverted quantiles; predict_interval must still
  // return lower <= upper everywhere.
  const auto p = make_hetero(150, 15);
  models::QuantilePairRegressor pair(
      core::MiscoverageAlpha{0.1},
      models::make_point_regressor(ModelKind::kLinear,
                                   models::Loss::pinball(core::QuantileLevel{0.95})),
      models::make_point_regressor(ModelKind::kLinear,
                                   models::Loss::pinball(core::QuantileLevel{0.05})),
      "QR inverted");
  pair.fit(p.x, p.y);
  const auto band = pair.predict_interval(p.x);
  for (std::size_t i = 0; i < band.lower.size(); ++i) {
    EXPECT_LE(band.lower[i], band.upper[i]);
  }
}

}  // namespace
}  // namespace vmincqr::conformal
