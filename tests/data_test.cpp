// Unit tests for the data module: Dataset, splits, scaler, CSV, CFS.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>

#include "data/csv.hpp"
#include "data/dataset.hpp"
#include "data/feature_select.hpp"
#include "data/scaler.hpp"
#include "data/split.hpp"
#include "rng/rng.hpp"
#include "stats/descriptive.hpp"

namespace vmincqr::data {
namespace {

Dataset make_small_dataset() {
  Matrix x{{1.0, 10.0, 5.0}, {2.0, 20.0, 6.0}, {3.0, 30.0, 7.0}};
  std::vector<FeatureInfo> info = {
      {"par_a", FeatureType::kParametric, 25.0, 0.0},
      {"rod_0_t0", FeatureType::kRodMonitor, 25.0, 0.0},
      {"rod_0_t24", FeatureType::kRodMonitor, 25.0, 24.0},
  };
  std::vector<LabelSeries> labels = {
      {0.0, 25.0, {0.5, 0.6, 0.7}},
      {24.0, 25.0, {0.51, 0.61, 0.71}},
      {24.0, 125.0, {0.52, 0.62, 0.72}},
  };
  return Dataset(std::move(x), std::move(info), std::move(labels));
}

TEST(Dataset, ValidatesShapes) {
  Matrix x(2, 2);
  std::vector<FeatureInfo> bad_info = {{"a", FeatureType::kParametric, 0, 0}};
  EXPECT_THROW(Dataset(x, bad_info, {}), std::invalid_argument);

  std::vector<FeatureInfo> info = {{"a", FeatureType::kParametric, 0, 0},
                                   {"b", FeatureType::kParametric, 0, 0}};
  std::vector<LabelSeries> bad_labels = {{0.0, 25.0, {0.1}}};
  EXPECT_THROW(Dataset(x, info, bad_labels), std::invalid_argument);
}

TEST(Dataset, LabelLookup) {
  const Dataset ds = make_small_dataset();
  EXPECT_DOUBLE_EQ(ds.label(24.0, 125.0).values[2], 0.72);
  EXPECT_TRUE(ds.has_label(0.0, 25.0));
  EXPECT_FALSE(ds.has_label(48.0, 25.0));
  EXPECT_THROW(static_cast<void>(ds.label(48.0, 25.0)), std::out_of_range);
}

TEST(Dataset, LabelKeysEnumeration) {
  const Dataset ds = make_small_dataset();
  EXPECT_EQ(ds.label_read_points(), (std::vector<double>{0.0, 24.0}));
  EXPECT_EQ(ds.label_temperatures(), (std::vector<double>{25.0, 125.0}));
}

TEST(Dataset, SelectFeaturesByPredicate) {
  const Dataset ds = make_small_dataset();
  const auto rods = ds.select_features([](const FeatureInfo& f) {
    return f.type == FeatureType::kRodMonitor;
  });
  EXPECT_EQ(rods, (std::vector<std::size_t>{1, 2}));
}

TEST(Dataset, TakeChipsSubsetsLabelsToo) {
  const Dataset ds = make_small_dataset();
  const Dataset sub = ds.take_chips({2, 0});
  EXPECT_EQ(sub.n_chips(), 2u);
  EXPECT_DOUBLE_EQ(sub.features()(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(sub.label(0.0, 25.0).values[0], 0.7);
  EXPECT_DOUBLE_EQ(sub.label(0.0, 25.0).values[1], 0.5);
}

TEST(Dataset, TakeFeaturesKeepsLabels) {
  const Dataset ds = make_small_dataset();
  const Dataset sub = ds.take_features({2});
  EXPECT_EQ(sub.n_features(), 1u);
  EXPECT_EQ(sub.feature_info(0).name, "rod_0_t24");
  EXPECT_EQ(sub.labels().size(), 3u);
}

TEST(Split, KFoldPartitionsIndices) {
  rng::Rng rng(1);
  const auto folds = k_fold(103, 4, rng);
  ASSERT_EQ(folds.size(), 4u);
  std::set<std::size_t> seen;
  for (const auto& fold : folds) {
    EXPECT_EQ(fold.train.size() + fold.test.size(), 103u);
    for (auto i : fold.test) {
      EXPECT_TRUE(seen.insert(i).second) << "index in two test folds";
    }
    // Train and test are disjoint.
    std::set<std::size_t> train(fold.train.begin(), fold.train.end());
    for (auto i : fold.test) EXPECT_EQ(train.count(i), 0u);
  }
  EXPECT_EQ(seen.size(), 103u);
}

TEST(Split, KFoldBalancedSizes) {
  rng::Rng rng(2);
  const auto folds = k_fold(10, 4, rng);
  std::vector<std::size_t> sizes;
  for (const auto& f : folds) sizes.push_back(f.test.size());
  std::sort(sizes.begin(), sizes.end());
  EXPECT_EQ(sizes, (std::vector<std::size_t>{2, 2, 3, 3}));
}

TEST(Split, KFoldValidation) {
  rng::Rng rng(3);
  EXPECT_THROW(k_fold(10, 1, rng), std::invalid_argument);
  EXPECT_THROW(k_fold(3, 4, rng), std::invalid_argument);
}

TEST(Split, TrainCalibrationSplit) {
  rng::Rng rng(4);
  std::vector<std::size_t> idx(100);
  for (std::size_t i = 0; i < 100; ++i) idx[i] = i;
  const auto split = train_calibration_split(idx, 0.75, rng);
  EXPECT_EQ(split.train.size(), 75u);
  EXPECT_EQ(split.calibration.size(), 25u);
  std::set<std::size_t> all(split.train.begin(), split.train.end());
  all.insert(split.calibration.begin(), split.calibration.end());
  EXPECT_EQ(all.size(), 100u);
}

TEST(Split, TrainCalibrationNeverEmptiesEitherSide) {
  rng::Rng rng(5);
  const auto split = train_calibration_split({0, 1}, 0.99, rng);
  EXPECT_EQ(split.train.size(), 1u);
  EXPECT_EQ(split.calibration.size(), 1u);
  EXPECT_THROW(train_calibration_split({0}, 0.5, rng), std::invalid_argument);
  std::vector<std::size_t> idx{0, 1, 2};
  EXPECT_THROW(train_calibration_split(idx, 0.0, rng), std::invalid_argument);
  EXPECT_THROW(train_calibration_split(idx, 1.0, rng), std::invalid_argument);
}

TEST(Scaler, StandardizesColumns) {
  Matrix x{{1.0, 100.0}, {2.0, 200.0}, {3.0, 300.0}};
  StandardScaler scaler;
  Matrix z = scaler.fit_transform(x);
  for (std::size_t c = 0; c < 2; ++c) {
    EXPECT_NEAR(stats::mean(z.col(c)), 0.0, 1e-12);
    EXPECT_NEAR(stats::stddev(z.col(c)), 1.0, 1e-12);
  }
}

TEST(Scaler, ConstantColumnMapsToZero) {
  Matrix x{{5.0}, {5.0}, {5.0}};
  StandardScaler scaler;
  Matrix z = scaler.fit_transform(x);
  for (std::size_t r = 0; r < 3; ++r) EXPECT_DOUBLE_EQ(z(r, 0), 0.0);
}

TEST(Scaler, InverseRoundTrip) {
  rng::Rng rng(6);
  Matrix x(10, 3);
  for (std::size_t r = 0; r < 10; ++r) {
    for (std::size_t c = 0; c < 3; ++c) x(r, c) = rng.normal(5.0, 3.0);
  }
  StandardScaler scaler;
  Matrix z = scaler.fit_transform(x);
  Matrix back = scaler.inverse_transform(z);
  for (std::size_t r = 0; r < 10; ++r) {
    for (std::size_t c = 0; c < 3; ++c) EXPECT_NEAR(back(r, c), x(r, c), 1e-10);
  }
}

TEST(Scaler, ErrorsWhenNotFitted) {
  StandardScaler scaler;
  EXPECT_THROW(scaler.transform(Matrix(1, 1)), std::logic_error);
  LabelScaler label_scaler;
  EXPECT_THROW(label_scaler.transform({1.0}), std::logic_error);
}

TEST(Scaler, LabelScalerRoundTrip) {
  LabelScaler scaler;
  Vector y{0.5, 0.6, 0.7, 0.9};
  scaler.fit(y);
  const Vector z = scaler.transform(y);
  const Vector back = scaler.inverse_transform(z);
  for (std::size_t i = 0; i < y.size(); ++i) EXPECT_NEAR(back[i], y[i], 1e-12);
  EXPECT_NEAR(scaler.inverse_transform(z[2]), y[2], 1e-12);
}

TEST(Csv, MatrixRoundTrip) {
  Matrix m{{1.5, -2.25}, {3.0, 4.125}};
  std::stringstream ss;
  write_csv(ss, m, {"a", "b"});
  std::vector<std::string> header;
  Matrix back = read_csv(ss, true, &header);
  EXPECT_EQ(header, (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(back, m);
}

TEST(Csv, RejectsRaggedAndGarbage) {
  {
    std::stringstream ss("1,2\n3\n");
    EXPECT_THROW(read_csv(ss), std::runtime_error);
  }
  {
    std::stringstream ss("1,x\n");
    EXPECT_THROW(read_csv(ss), std::runtime_error);
  }
}

TEST(Csv, DatasetExportHasHeaderAndLabels) {
  const Dataset ds = make_small_dataset();
  std::stringstream ss;
  write_dataset_csv(ss, ds);
  std::string header;
  std::getline(ss, header);
  EXPECT_NE(header.find("par_a"), std::string::npos);
  EXPECT_NE(header.find("vmin_t24_T125"), std::string::npos);
  // 3 data lines follow.
  int lines = 0;
  std::string line;
  while (std::getline(ss, line)) lines += !line.empty();
  EXPECT_EQ(lines, 3);
}

TEST(Cfs, MeritPrefersInformativeUncorrelatedSubsets) {
  rng::Rng rng(8);
  const std::size_t n = 200;
  Vector y(n), f0(n), f1(n), f2(n);
  for (std::size_t i = 0; i < n; ++i) {
    y[i] = rng.normal();
    f0[i] = y[i] + rng.normal(0.0, 0.3);   // informative
    f1[i] = f0[i] + rng.normal(0.0, 0.05); // informative but redundant w/ f0
    f2[i] = rng.normal();                  // noise
  }
  Matrix x(n, 3);
  x.set_col(0, f0);
  x.set_col(1, f1);
  x.set_col(2, f2);
  const double merit_single = cfs_merit(x, y, {0});
  const double merit_redundant = cfs_merit(x, y, {0, 1});
  const double merit_noise = cfs_merit(x, y, {2});
  EXPECT_GT(merit_single, merit_redundant);
  EXPECT_GT(merit_single, merit_noise);
  EXPECT_THROW(cfs_merit(x, y, {}), std::invalid_argument);
  EXPECT_THROW(cfs_merit(x, y, {5}), std::invalid_argument);
}

TEST(Cfs, SelectFindsSignalAndAvoidsDuplicates) {
  rng::Rng rng(9);
  const std::size_t n = 300;
  Vector a = rng.normal_vector(n), b = rng.normal_vector(n);
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) y[i] = a[i] + b[i];
  Matrix x(n, 5);
  x.set_col(0, a);
  Vector a_copy(n);
  for (std::size_t i = 0; i < n; ++i) a_copy[i] = a[i] + rng.normal(0.0, 0.01);
  x.set_col(1, a_copy);           // near-duplicate of col 0
  x.set_col(2, b);
  x.set_col(3, rng.normal_vector(n));  // noise
  x.set_col(4, rng.normal_vector(n));  // noise
  const auto selected = cfs_select(x, y, 2);
  ASSERT_EQ(selected.size(), 2u);
  // The two complementary signals (a-ish, b) must be picked over the
  // near-duplicate pair.
  const bool has_a = selected[0] == 0 || selected[0] == 1 ||
                     selected[1] == 0 || selected[1] == 1;
  const bool has_b =
      std::find(selected.begin(), selected.end(), 2u) != selected.end();
  EXPECT_TRUE(has_a);
  EXPECT_TRUE(has_b);
}

TEST(Cfs, SelectReturnsOrderedPrefixes) {
  // cfs_select(k) must be a prefix of cfs_select(k+1) — the experiment
  // harness relies on this to sweep k cheaply.
  rng::Rng rng(10);
  const std::size_t n = 120;
  Matrix x(n, 8);
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    y[i] = rng.normal();
    for (std::size_t c = 0; c < 8; ++c) {
      x(i, c) = 0.3 * static_cast<double>(c) * y[i] + rng.normal();
    }
  }
  const auto k3 = cfs_select(x, y, 3);
  const auto k5 = cfs_select(x, y, 5);
  ASSERT_GE(k5.size(), k3.size());
  for (std::size_t i = 0; i < k3.size(); ++i) EXPECT_EQ(k3[i], k5[i]);
}

TEST(Cfs, TopCorrelatedRanksBySignal) {
  rng::Rng rng(11);
  const std::size_t n = 400;
  Vector y = rng.normal_vector(n);
  Matrix x(n, 3);
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = rng.normal();                       // noise
    x(i, 1) = y[i] + rng.normal(0.0, 0.1);        // strong
    x(i, 2) = y[i] + rng.normal(0.0, 1.0);        // weak
  }
  const auto top = top_correlated(x, y, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0], 1u);
  EXPECT_EQ(top[1], 2u);
}

TEST(Cfs, EmptyAndBounds) {
  Matrix x(3, 2, 1.0);
  Vector y{1.0, 2.0, 3.0};
  EXPECT_TRUE(cfs_select(x, y, 0).empty());
  EXPECT_EQ(cfs_select(x, y, 10).size(), 2u);
  EXPECT_THROW(cfs_select(x, {1.0}, 2), std::invalid_argument);
}

}  // namespace
}  // namespace vmincqr::data
