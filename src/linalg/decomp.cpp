#include "linalg/decomp.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/contracts.hpp"
#include "linalg/ops.hpp"
#include "parallel/parallel_for.hpp"

namespace vmincqr::linalg {

namespace {

/// Column-update work (remaining rows x solved columns) below which the
/// Cholesky row loop stays inline. Depends only on (n, j), never on the
/// thread count, so the factorization is identical either way.
constexpr std::size_t kMinParallelCholWork = 16384;

}  // namespace

std::optional<Matrix> cholesky(const Matrix& a) {
  VMINCQR_CHECK_SHAPE(a.rows() == a.cols(),
                      "cholesky: matrix must be square, got " +
                          shape_string(a));
  VMINCQR_CHECK_FINITE(a, "cholesky: input matrix");
  const std::size_t n = a.rows();
  Matrix l(n, n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (std::size_t k = 0; k < j; ++k) diag -= l(j, k) * l(j, k);
    if (!(diag > 0.0) || !std::isfinite(diag)) return std::nullopt;
    const double ljj = std::sqrt(diag);
    VMINCQR_AUDIT(ljj > 0.0, "cholesky: nonpositive pivot escaped the check");
    l(j, j) = ljj;
    // Rows below the diagonal of column j are independent of each other:
    // each l(i, j) reads only finished columns (< j) plus a(i, j). Chunks
    // write disjoint entries, so the factorization is order-free.
    parallel::parallel_for(
        n - j - 1, /*grain=*/0,
        [&](std::size_t begin, std::size_t end) {
          const double* lj = l.row_ptr(j);
          for (std::size_t i = j + 1 + begin; i < j + 1 + end; ++i) {
            double s = a(i, j);
            const double* li = l.row_ptr(i);
            for (std::size_t k = 0; k < j; ++k) s -= li[k] * lj[k];
            l(i, j) = s / ljj;
          }
        },
        /*use_pool=*/(n - j - 1) * j >= kMinParallelCholWork);
  }
  return l;
}

Matrix cholesky_jittered(const Matrix& a, double initial_jitter,
                         int max_tries) {
  VMINCQR_CHECK_SHAPE(a.rows() == a.cols(),
                      "cholesky_jittered: matrix must be square");
  // Scratch hoisted out of the retry loop: cholesky() never mutates its
  // input, so only the diagonal needs refreshing between attempts.
  Matrix trial = a;
  double jitter = 0.0;
  for (int attempt = 0; attempt < max_tries; ++attempt) {
    if (jitter > 0.0) {
      for (std::size_t i = 0; i < trial.rows(); ++i) {
        trial(i, i) = a(i, i) + jitter;
      }
    }
    if (auto l = cholesky(trial)) return *std::move(l);
    jitter = (attempt == 0) ? initial_jitter : jitter * 10.0;
  }
  throw std::runtime_error(
      "cholesky_jittered: matrix not positive definite after max jitter");
}

Vector forward_substitute(const Matrix& l, const Vector& b) {
  const std::size_t n = l.rows();
  VMINCQR_CHECK_SHAPE(l.cols() == n && b.size() == n,
                      "forward_substitute: dimension mismatch");
  Vector x(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    const double* row = l.row_ptr(i);
    for (std::size_t k = 0; k < i; ++k) s -= row[k] * x[k];
    x[i] = s / row[i];
  }
  return x;
}

void forward_substitute_row(const Matrix& l, const Matrix& b_rows,
                            std::size_t row, Vector* x) {
  const std::size_t n = l.rows();
  VMINCQR_CHECK_SHAPE(l.cols() == n && b_rows.cols() == n &&
                          row < b_rows.rows(),
                      "forward_substitute_row: dimension mismatch");
  x->resize(n);
  Vector& out = *x;
  const double* b = b_rows.row_ptr(row);
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    const double* li = l.row_ptr(i);
    for (std::size_t k = 0; k < i; ++k) s -= li[k] * out[k];
    out[i] = s / li[i];
  }
}

Vector backward_substitute_transposed(const Matrix& l, const Vector& b) {
  const std::size_t n = l.rows();
  VMINCQR_CHECK_SHAPE(l.cols() == n && b.size() == n,
                      "backward_substitute_transposed: dimension mismatch");
  Vector x(n, 0.0);
  for (std::size_t ii = n; ii-- > 0;) {
    double s = b[ii];
    for (std::size_t k = ii + 1; k < n; ++k) s -= l(k, ii) * x[k];
    x[ii] = s / l(ii, ii);
  }
  return x;
}

Vector solve_spd(const Matrix& a, const Vector& b) {
  auto l = cholesky(a);
  if (!l) throw std::runtime_error("solve_spd: matrix not positive definite");
  Vector x = backward_substitute_transposed(*l, forward_substitute(*l, b));
  VMINCQR_AUDIT(core::all_finite(x), "solve_spd: non-finite solution");
  return x;
}

Matrix solve_spd(const Matrix& a, const Matrix& b) {
  auto l = cholesky(a);
  if (!l) throw std::runtime_error("solve_spd: matrix not positive definite");
  Matrix x(b.rows(), b.cols());
  for (std::size_t c = 0; c < b.cols(); ++c) {
    Vector xc =
        backward_substitute_transposed(*l, forward_substitute(*l, b.col(c)));
    x.set_col(c, xc);
  }
  return x;
}

namespace {

// Householder QR with column pivoting, applied in place: the by-value
// Matrix is the scratch buffer the reflectors overwrite.
// Returns the solution of min ||A x - b||, zeroing coefficients beyond the
// numerical rank.
// vmincqr-lint: allow(matrix-by-value)
Vector qr_least_squares(Matrix a, Vector b) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  std::vector<std::size_t> perm(n);
  std::iota(perm.begin(), perm.end(), std::size_t{0});

  // Column squared norms for pivoting.
  Vector col_norms(n, 0.0);
  for (std::size_t r = 0; r < m; ++r) {
    const double* row = a.row_ptr(r);
    for (std::size_t c = 0; c < n; ++c) col_norms[c] += row[c] * row[c];
  }

  const std::size_t kmax = std::min(m, n);
  std::size_t rank = kmax;
  double max_diag = 0.0;

  for (std::size_t k = 0; k < kmax; ++k) {
    // Pivot: bring the column with the largest remaining norm to position k.
    std::size_t pivot = k;
    for (std::size_t c = k + 1; c < n; ++c) {
      if (col_norms[c] > col_norms[pivot]) pivot = c;
    }
    if (pivot != k) {
      std::swap(perm[k], perm[pivot]);
      std::swap(col_norms[k], col_norms[pivot]);
      for (std::size_t r = 0; r < m; ++r) std::swap(a(r, k), a(r, pivot));
    }

    // Householder vector for column k, rows k..m-1.
    double norm_x = 0.0;
    for (std::size_t r = k; r < m; ++r) norm_x += a(r, k) * a(r, k);
    norm_x = std::sqrt(norm_x);
    if (norm_x <= 0.0) {
      rank = k;
      break;
    }
    const double alpha = (a(k, k) >= 0.0) ? -norm_x : norm_x;
    Vector v(m - k, 0.0);
    v[0] = a(k, k) - alpha;
    for (std::size_t r = k + 1; r < m; ++r) v[r - k] = a(r, k);
    double vtv = 0.0;
    for (double vi : v) vtv += vi * vi;
    if (vtv <= 0.0) {
      rank = k;
      break;
    }

    // Apply reflector to A(k:, k:) and b(k:).
    for (std::size_t c = k; c < n; ++c) {
      double s = 0.0;
      for (std::size_t r = k; r < m; ++r) s += v[r - k] * a(r, c);
      const double factor = 2.0 * s / vtv;
      for (std::size_t r = k; r < m; ++r) a(r, c) -= factor * v[r - k];
    }
    {
      double s = 0.0;
      for (std::size_t r = k; r < m; ++r) s += v[r - k] * b[r];
      const double factor = 2.0 * s / vtv;
      for (std::size_t r = k; r < m; ++r) b[r] -= factor * v[r - k];
    }

    max_diag = std::max(max_diag, std::abs(a(k, k)));
    // Downdate remaining column norms.
    for (std::size_t c = k + 1; c < n; ++c) {
      col_norms[c] -= a(k, c) * a(k, c);
      if (col_norms[c] < 0.0) col_norms[c] = 0.0;
    }
  }

  // Determine numerical rank from the R diagonal.
  const double tol = max_diag * 1e-12 * static_cast<double>(std::max(m, n));
  std::size_t eff_rank = 0;
  for (std::size_t k = 0; k < rank; ++k) {
    if (std::abs(a(k, k)) > tol) {
      ++eff_rank;
    } else {
      break;
    }
  }

  // Back substitution on the leading eff_rank x eff_rank triangle.
  Vector z(n, 0.0);
  for (std::size_t ii = eff_rank; ii-- > 0;) {
    double s = b[ii];
    for (std::size_t c = ii + 1; c < eff_rank; ++c) s -= a(ii, c) * z[c];
    z[ii] = s / a(ii, ii);
  }

  // Undo the permutation.
  Vector x(n, 0.0);
  for (std::size_t k = 0; k < n; ++k) x[perm[k]] = z[k];
  return x;
}

}  // namespace

Vector least_squares(const Matrix& a, const Vector& b) {
  VMINCQR_CHECK_SHAPE(a.rows() == b.size(),
                      "least_squares: dimension mismatch");
  VMINCQR_CHECK_FINITE(a, "least_squares: design matrix");
  VMINCQR_CHECK_FINITE(b, "least_squares: rhs");
  if (a.cols() == 0) return {};
  return qr_least_squares(a, b);
}

Vector ridge_solve(const Matrix& a, const Vector& b, double lambda) {
  VMINCQR_REQUIRE(lambda >= 0.0, "ridge_solve: lambda must be >= 0");
  VMINCQR_CHECK_SHAPE(a.rows() == b.size(), "ridge_solve: dimension mismatch");
  // Exact-zero lambda is the documented "no ridge" sentinel.
  if (lambda == 0.0) return least_squares(a, b);  // vmincqr-lint: allow(float-equality)
  Matrix g = gram(a);
  for (std::size_t i = 0; i < g.rows(); ++i) g(i, i) += lambda;
  return solve_spd(g, transpose_matvec(a, b));
}

double log_det_from_cholesky(const Matrix& l) {
  double acc = 0.0;
  for (std::size_t i = 0; i < l.rows(); ++i) acc += std::log(l(i, i));
  return 2.0 * acc;
}

}  // namespace vmincqr::linalg
