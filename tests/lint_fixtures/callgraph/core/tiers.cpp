// Tier-annotation fixtures. fast_norm is committed to numeric_tiers.toml,
// so its float accumulation is a sanctioned bit-exactness opt-out;
// rogue_kernel carries the annotation without the manifest entry ->
// numeric-tier-manifest.

// vmincqr: numeric-tier(tolerance)
double fast_norm(const std::vector<double>& xs) {
  float acc = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) acc += xs[i];
  return acc;
}

// vmincqr: numeric-tier(tolerance)
double rogue_kernel(double x) {
  return x + 1.0;
}
