#include "models/elastic_net.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

#include "data/split.hpp"
#include "stats/metrics.hpp"

namespace vmincqr::models {

namespace {

double soft_threshold(double z, double gamma) {
  if (z > gamma) return z - gamma;
  if (z < -gamma) return z + gamma;
  return 0.0;
}

}  // namespace

ElasticNetRegressor::ElasticNetRegressor(ElasticNetConfig config)
    : config_(config) {
  if (config_.lambda < 0.0) {
    throw std::invalid_argument("ElasticNetRegressor: lambda < 0");
  }
  if (config_.l1_ratio < 0.0 || config_.l1_ratio > 1.0) {
    throw std::invalid_argument("ElasticNetRegressor: l1_ratio outside [0, 1]");
  }
  if (config_.max_iterations <= 0 || config_.tolerance <= 0.0) {
    throw std::invalid_argument("ElasticNetRegressor: bad solver settings");
  }
}

void ElasticNetRegressor::fit(const Matrix& x, const Vector& y) {
  check_fit_args(x, y);
  n_features_ = x.cols();
  const Matrix xs = scaler_.fit_transform(x);
  label_scaler_.fit(y);
  const Vector ys = label_scaler_.transform(y);

  const std::size_t n = xs.rows();
  const std::size_t d = xs.cols();
  const double inv_n = 1.0 / static_cast<double>(n);
  const double l1 = config_.lambda * config_.l1_ratio;
  const double l2 = config_.lambda * (1.0 - config_.l1_ratio);

  // Column squared norms / n (constant during descent; columns are
  // standardized so these are ~1, but exact values keep the update correct
  // for constant columns).
  Vector col_sq(d, 0.0);
  for (std::size_t r = 0; r < n; ++r) {
    const double* row = xs.row_ptr(r);
    for (std::size_t c = 0; c < d; ++c) col_sq[c] += row[c] * row[c];
  }
  for (auto& v : col_sq) v *= inv_n;

  coef_.assign(d, 0.0);
  Vector residual = ys;  // y - X b with b = 0

  iterations_used_ = 0;
  for (int it = 0; it < config_.max_iterations; ++it) {
    double max_delta = 0.0;
    for (std::size_t j = 0; j < d; ++j) {
      if (col_sq[j] <= 0.0) continue;  // constant column: keep coef at 0
      // rho = (1/n) x_j . (residual + x_j * b_j)
      double rho = 0.0;
      for (std::size_t r = 0; r < n; ++r) {
        rho += xs(r, j) * residual[r];
      }
      rho = rho * inv_n + col_sq[j] * coef_[j];
      const double new_coef =
          soft_threshold(rho, l1) / (col_sq[j] + l2);
      const double delta = new_coef - coef_[j];
      // Exact-zero delta means soft_threshold clamped the step; skipping
      // the residual update is lossless (additive identity).
      if (delta != 0.0) {  // vmincqr-lint: allow(float-equality)
        for (std::size_t r = 0; r < n; ++r) residual[r] -= delta * xs(r, j);
        coef_[j] = new_coef;
        max_delta = std::max(max_delta, std::abs(delta));
      }
    }
    ++iterations_used_;
    if (max_delta < config_.tolerance) break;
  }
  fitted_ = true;
}

Vector ElasticNetRegressor::predict(const Matrix& x) const {
  check_predict_args(x, n_features_, fitted_);
  const Matrix xs = scaler_.transform(x);
  Vector out(xs.rows(), 0.0);
  for (std::size_t r = 0; r < xs.rows(); ++r) {
    const double* row = xs.row_ptr(r);
    double acc = 0.0;
    for (std::size_t c = 0; c < xs.cols(); ++c) acc += row[c] * coef_[c];
    out[r] = acc;
  }
  return label_scaler_.inverse_transform(out);
}

std::unique_ptr<Regressor> ElasticNetRegressor::clone_config() const {
  return std::make_unique<ElasticNetRegressor>(config_);
}

ElasticNetParams ElasticNetRegressor::export_params() const {
  if (!fitted_) {
    throw std::logic_error("ElasticNetRegressor::export_params: not fitted");
  }
  return {scaler_.export_params(), label_scaler_.export_params(), coef_};
}

void ElasticNetRegressor::import_params(ElasticNetParams params) {
  if (params.coef.size() != params.scaler.means.size()) {
    throw std::invalid_argument(
        "ElasticNetRegressor::import_params: coef/feature count mismatch");
  }
  scaler_.import_params(std::move(params.scaler));
  label_scaler_.import_params(params.label);
  coef_ = std::move(params.coef);
  n_features_ = coef_.size();
  iterations_used_ = 0;
  fitted_ = true;
}

std::vector<std::size_t> ElasticNetRegressor::selected_features() const {
  std::vector<std::size_t> idx;
  idx.reserve(coef_.size());
  for (std::size_t j = 0; j < coef_.size(); ++j) {
    // Soft-thresholding produces exact zeros; != 0.0 is the sparsity test.
    if (coef_[j] != 0.0) idx.push_back(j);  // vmincqr-lint: allow(float-equality)
  }
  std::sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
    return std::abs(coef_[a]) > std::abs(coef_[b]);
  });
  return idx;
}

ElasticNetRegressor elastic_net_cv(const Matrix& x, const Vector& y,
                                   const std::vector<double>& lambda_path,
                                   double l1_ratio, std::size_t n_folds,
                                   std::uint64_t seed) {
  if (lambda_path.empty()) {
    throw std::invalid_argument("elastic_net_cv: empty lambda path");
  }
  rng::Rng rng(seed);
  const auto folds = data::k_fold(x.rows(), n_folds, rng);

  double best_mse = std::numeric_limits<double>::infinity();
  double best_lambda = lambda_path.front();
  for (double lambda : lambda_path) {
    double mse = 0.0;
    for (const auto& fold : folds) {
      Vector y_train(fold.train.size()), y_test(fold.test.size());
      for (std::size_t i = 0; i < fold.train.size(); ++i) {
        y_train[i] = y[fold.train[i]];
      }
      for (std::size_t i = 0; i < fold.test.size(); ++i) {
        y_test[i] = y[fold.test[i]];
      }
      ElasticNetConfig config;
      config.lambda = lambda;
      config.l1_ratio = l1_ratio;
      ElasticNetRegressor model(config);
      model.fit(x.take_rows(fold.train), y_train);
      const double fold_rmse =
          stats::rmse(y_test, model.predict(x.take_rows(fold.test)));
      mse += fold_rmse * fold_rmse;
    }
    if (mse < best_mse) {
      best_mse = mse;
      best_lambda = lambda;
    }
  }

  ElasticNetConfig config;
  config.lambda = best_lambda;
  config.l1_ratio = l1_ratio;
  ElasticNetRegressor model(config);
  model.fit(x, y);
  return model;
}

}  // namespace vmincqr::models
