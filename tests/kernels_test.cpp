// Kernel-layer tests: KernelPolicy plumbing, bit-exact tier equivalence
// against the scalar reference loops, fast-tier tolerance, flat-forest
// traversal equivalence, FeatureBinner edge cases, and fast-tier fit
// equivalence at the statistical level (predictions, q_hat, coverage).
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "conformal/cqr.hpp"
#include "core/binning.hpp"
#include "core/pipeline.hpp"
#include "linalg/kernels.hpp"
#include "linalg/ops.hpp"
#include "models/flat_forest.hpp"
#include "models/gbt.hpp"
#include "models/gp.hpp"
#include "models/mlp.hpp"
#include "models/ordered_boost.hpp"
#include "models/tree.hpp"
#include "parallel/thread_pool.hpp"
#include "rng/rng.hpp"
#include "stats/metrics.hpp"

using namespace vmincqr;

namespace {

using linalg::KernelPolicy;

struct ThreadOverrideGuard {
  ~ThreadOverrideGuard() { parallel::set_max_threads(0); }
};

/// Random buffer with exact zeros sprinkled in: the bit-exact kernels must
/// reproduce the reference skip-set, which only exact zeros exercise.
std::vector<double> random_with_zeros(std::size_t n, rng::Rng& rng) {
  std::vector<double> out(n);
  for (auto& v : out) v = rng.uniform() < 0.15 ? 0.0 : rng.normal();
  return out;
}

struct Problem {
  linalg::Matrix x;
  linalg::Vector y;
};

Problem make_problem(std::size_t n, std::size_t d, std::uint64_t seed) {
  rng::Rng rng(seed);
  Problem p{linalg::Matrix(n, d), linalg::Vector(n)};
  for (std::size_t i = 0; i < n; ++i) {
    double signal = 0.0;
    for (std::size_t c = 0; c < d; ++c) {
      p.x(i, c) = rng.normal();
      signal += (c % 3 == 0 ? 0.3 : 0.05) * p.x(i, c);
    }
    p.y[i] = 0.55 + 0.01 * signal + rng.normal(0.0, 0.003);
  }
  return p;
}

// --- policy plumbing --------------------------------------------------------

TEST(KernelPolicy, ParseAndNameRoundTrip) {
  EXPECT_EQ(linalg::parse_kernel_policy("fast"), KernelPolicy::kFast);
  EXPECT_EQ(linalg::parse_kernel_policy("bit_exact"), KernelPolicy::kBitExact);
  EXPECT_THROW((void)linalg::parse_kernel_policy("fastest"),
               std::invalid_argument);
  EXPECT_EQ(linalg::kernel_policy_name(KernelPolicy::kFast), "fast");
  EXPECT_EQ(linalg::kernel_policy_name(KernelPolicy::kBitExact), "bit_exact");
}

TEST(KernelPolicy, GuardScopesAndRestores) {
  const KernelPolicy before = linalg::kernel_policy();
  {
    const linalg::KernelPolicyGuard guard(KernelPolicy::kFast);
    EXPECT_EQ(linalg::kernel_policy(), KernelPolicy::kFast);
    {
      const linalg::KernelPolicyGuard inner(KernelPolicy::kBitExact);
      EXPECT_EQ(linalg::kernel_policy(), KernelPolicy::kBitExact);
    }
    EXPECT_EQ(linalg::kernel_policy(), KernelPolicy::kFast);
  }
  EXPECT_EQ(linalg::kernel_policy(), before);
}

// --- bit-exact tier: bitwise equality with the scalar reference loops -------

TEST(KernelsExact, GemmMatchesScalarReferenceBitwise) {
  rng::Rng rng(11);
  const std::vector<std::array<std::size_t, 3>> shapes = {
      {1, 1, 1}, {3, 5, 4}, {7, 13, 9}, {8, 16, 16}, {17, 4, 1}};
  for (const auto& [m, k, n] : shapes) {
    const auto a = random_with_zeros(m * k, rng);
    const auto b = random_with_zeros(k * n, rng);
    auto c_ref = random_with_zeros(m * n, rng);  // non-zero caller init
    auto c_kernel = c_ref;
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t kk = 0; kk < k; ++kk) {
        const double aik = a[i * k + kk];
        if (aik == 0.0) continue;  // the reference skip-set
        for (std::size_t j = 0; j < n; ++j) {
          c_ref[i * n + j] += aik * b[kk * n + j];
        }
      }
    }
    linalg::gemm(m, k, n, a.data(), k, b.data(), n, c_kernel.data(), n,
                 KernelPolicy::kBitExact);
    for (std::size_t i = 0; i < m * n; ++i) {
      ASSERT_EQ(c_kernel[i], c_ref[i]) << m << "x" << k << "x" << n
                                       << " element " << i;
    }
  }
}

TEST(KernelsExact, GemmAtMatchesScalarReferenceBitwise) {
  rng::Rng rng(12);
  const std::size_t m = 21, k = 7, n = 10;
  const auto a = random_with_zeros(m * k, rng);
  const auto b = random_with_zeros(m * n, rng);
  std::vector<double> c_ref(k * n, 0.0), c_kernel(k * n, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t kk = 0; kk < k; ++kk) {
      for (std::size_t j = 0; j < n; ++j) {
        const double bij = b[i * n + j];
        if (bij == 0.0) continue;  // the reference skip-set (MLP dh == 0)
        c_ref[kk * n + j] += a[i * k + kk] * bij;
      }
    }
  }
  linalg::gemm_at(m, k, n, a.data(), k, b.data(), n, c_kernel.data(), n,
                  KernelPolicy::kBitExact);
  for (std::size_t i = 0; i < k * n; ++i) {
    ASSERT_EQ(c_kernel[i], c_ref[i]) << "element " << i;
  }
}

TEST(KernelsExact, GemvAndDotMatchScalarReferenceBitwise) {
  rng::Rng rng(13);
  const std::size_t m = 19, n = 23;
  const auto a = random_with_zeros(m * n, rng);
  const auto x = random_with_zeros(n, rng);
  std::vector<double> y_ref(m), y_kernel(m);
  for (std::size_t i = 0; i < m; ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < n; ++j) acc += a[i * n + j] * x[j];
    y_ref[i] = acc;
  }
  linalg::gemv(m, n, a.data(), n, x.data(), y_kernel.data(),
               KernelPolicy::kBitExact);
  for (std::size_t i = 0; i < m; ++i) ASSERT_EQ(y_kernel[i], y_ref[i]);

  double dot_ref = 0.0;
  for (std::size_t j = 0; j < n; ++j) dot_ref += x[j] * a[j];
  EXPECT_EQ(linalg::dot_kernel(n, x.data(), a.data(), KernelPolicy::kBitExact),
            dot_ref);
}

TEST(KernelsExact, RowSqDistsMatchesScalarReferenceBitwise) {
  rng::Rng rng(14);
  const std::size_t d = 9, nb = 11;
  const auto a = random_with_zeros(d, rng);
  const auto b = random_with_zeros(nb * d, rng);
  std::vector<double> out_ref(nb), out_kernel(nb);
  for (std::size_t j = 0; j < nb; ++j) {
    double acc = 0.0;
    for (std::size_t c = 0; c < d; ++c) {
      const double diff = a[c] - b[j * d + c];
      acc += diff * diff;
    }
    out_ref[j] = acc;
  }
  linalg::row_sq_dists(a.data(), d, b.data(), d, nb, nullptr,
                       out_kernel.data(), KernelPolicy::kBitExact);
  for (std::size_t j = 0; j < nb; ++j) ASSERT_EQ(out_kernel[j], out_ref[j]);
}

// --- fast tier: tolerance against the exact tier ----------------------------

TEST(KernelsFast, AllKernelsWithinTolerance) {
  rng::Rng rng(15);
  const std::size_t m = 15, k = 17, n = 12;
  const auto a = random_with_zeros(m * k, rng);
  const auto b = random_with_zeros(k * n, rng);
  std::vector<double> c_exact(m * n, 0.0), c_fast(m * n, 0.0);
  linalg::gemm(m, k, n, a.data(), k, b.data(), n, c_exact.data(), n,
               KernelPolicy::kBitExact);
  linalg::gemm(m, k, n, a.data(), k, b.data(), n, c_fast.data(), n,
               KernelPolicy::kFast);
  for (std::size_t i = 0; i < m * n; ++i) {
    ASSERT_NEAR(c_fast[i], c_exact[i], 1e-12);
  }

  const auto bt = random_with_zeros(m * n, rng);
  std::vector<double> g_exact(k * n, 0.0), g_fast(k * n, 0.0);
  linalg::gemm_at(m, k, n, a.data(), k, bt.data(), n, g_exact.data(), n,
                  KernelPolicy::kBitExact);
  linalg::gemm_at(m, k, n, a.data(), k, bt.data(), n, g_fast.data(), n,
                  KernelPolicy::kFast);
  for (std::size_t i = 0; i < k * n; ++i) {
    ASSERT_NEAR(g_fast[i], g_exact[i], 1e-12);
  }

  const auto x = random_with_zeros(k, rng);
  std::vector<double> y_exact(m), y_fast(m);
  linalg::gemv(m, k, a.data(), k, x.data(), y_exact.data(),
               KernelPolicy::kBitExact);
  linalg::gemv(m, k, a.data(), k, x.data(), y_fast.data(), KernelPolicy::kFast);
  for (std::size_t i = 0; i < m; ++i) ASSERT_NEAR(y_fast[i], y_exact[i], 1e-12);

  // Distances: the fast tier's norm expansion cancels catastrophically only
  // for near-identical rows, which the clamp keeps at >= 0.
  const std::size_t d = 10, nb = 8;
  const auto pa = random_with_zeros(d, rng);
  auto pb = random_with_zeros(nb * d, rng);
  for (std::size_t c = 0; c < d; ++c) pb[3 * d + c] = pa[c];  // self-distance
  std::vector<double> norms(nb);
  for (std::size_t j = 0; j < nb; ++j) {
    norms[j] = linalg::dot_kernel(d, pb.data() + j * d, pb.data() + j * d,
                                  KernelPolicy::kFast);
  }
  std::vector<double> d_exact(nb), d_fast(nb);
  linalg::row_sq_dists(pa.data(), d, pb.data(), d, nb, nullptr, d_exact.data(),
                       KernelPolicy::kBitExact);
  linalg::row_sq_dists(pa.data(), d, pb.data(), d, nb, norms.data(),
                       d_fast.data(), KernelPolicy::kFast);
  for (std::size_t j = 0; j < nb; ++j) {
    ASSERT_NEAR(d_fast[j], d_exact[j], 1e-10);
    ASSERT_GE(d_fast[j], 0.0);
  }
}

// --- flat forests -----------------------------------------------------------

TEST(FlatForest, GbtPredictMatchesPerTreeTraversal) {
  const Problem p = make_problem(300, 6, 21);
  models::GbtConfig config;
  config.n_rounds = 12;
  models::GradientBoostedTrees model(config);
  model.fit(p.x, p.y);

  const models::GbtParams params = model.export_params();
  const linalg::Vector got = model.predict(p.x);
  for (std::size_t i = 0; i < p.x.rows(); ++i) {
    double want = params.base_score;
    for (const auto& nodes : params.trees) {
      // Reference pointer-chasing traversal over the exported AoS nodes.
      std::size_t idx = 0;
      while (!nodes[idx].is_leaf) {
        idx = p.x(i, nodes[idx].feature) <= nodes[idx].threshold
                  ? static_cast<std::size_t>(nodes[idx].left)
                  : static_cast<std::size_t>(nodes[idx].right);
      }
      want += params.learning_rate * nodes[idx].value;
    }
    ASSERT_EQ(got[i], want) << "row " << i;
  }
}

TEST(FlatForest, OrderedBoostPredictMatchesPerTreeTraversal) {
  const Problem p = make_problem(280, 5, 22);
  models::OrderedBoostConfig config;
  config.n_rounds = 10;
  models::OrderedBoostedTrees model(config);
  model.fit(p.x, p.y);

  const models::OrderedBoostParams params = model.export_params();
  const linalg::Vector got = model.predict(p.x);
  for (std::size_t i = 0; i < p.x.rows(); ++i) {
    double want = params.base_score;
    for (const auto& tree : params.trees) {
      want += params.learning_rate * tree.predict_row(p.x.row_ptr(i));
    }
    ASSERT_EQ(got[i], want) << "row " << i;
  }
}

// --- FeatureBinner edge cases -----------------------------------------------

TEST(FeatureBinner, ConstantFeatureGetsSingleBin) {
  linalg::Matrix x(40, 2);
  rng::Rng rng(31);
  for (std::size_t i = 0; i < x.rows(); ++i) {
    x(i, 0) = 3.25;  // constant
    x(i, 1) = rng.normal();
  }
  core::FeatureBinner binner;
  binner.fit(x);
  ASSERT_TRUE(binner.fitted());
  EXPECT_EQ(binner.n_bins(0), 1u);
  EXPECT_GT(binner.n_bins(1), 1u);
  const auto codes = binner.bin(x);
  for (std::size_t i = 0; i < x.rows(); ++i) {
    EXPECT_EQ(codes[i * 2 + 0], 0u);
  }
}

TEST(FeatureBinner, BinOfAgreesWithEdgeComparisonIncludingTies) {
  // The split-equivalence invariant: bin_of(f, v) <= b  <=>  v <= edge(f, b),
  // exercised with values exactly ON bin edges (ties) and beyond both ends.
  linalg::Matrix x(64, 1);
  for (std::size_t i = 0; i < x.rows(); ++i) {
    x(i, 0) = static_cast<double>(i / 4);  // 16 distinct values, 4-way ties
  }
  core::FeatureBinner binner;
  binner.fit(x);
  std::vector<double> probes;
  for (std::size_t b = 0; b + 1 < binner.n_bins(0); ++b) {
    probes.push_back(binner.edge(0, b));  // exactly on the edge
    probes.push_back(std::nextafter(binner.edge(0, b), 1e300));
  }
  probes.push_back(-1e9);
  probes.push_back(1e9);
  for (const double v : probes) {
    const std::uint16_t code = binner.bin_of(0, v);
    for (std::size_t b = 0; b + 1 < binner.n_bins(0); ++b) {
      EXPECT_EQ(code <= b, v <= binner.edge(0, b))
          << "value " << v << " vs edge " << b;
    }
  }
}

TEST(FeatureBinner, FewerDistinctValuesThanBinsUsesAllMidpoints) {
  linalg::Matrix x(30, 1);
  for (std::size_t i = 0; i < x.rows(); ++i) {
    x(i, 0) = static_cast<double>(i % 5);  // 5 distinct values
  }
  core::FeatureBinner binner;
  binner.fit(x, /*max_bins=*/64);
  EXPECT_EQ(binner.n_bins(0), 5u);  // 4 midpoint edges separate 5 values
  const auto codes = binner.bin(x);
  for (std::size_t i = 0; i < x.rows(); ++i) {
    EXPECT_EQ(codes[i], static_cast<std::uint16_t>(i % 5));
  }
}

TEST(FeatureBinner, SingleRowDatasetFitsWithZeroEdges) {
  linalg::Matrix x(1, 3);
  x(0, 0) = 1.0;
  x(0, 1) = -2.0;
  x(0, 2) = 0.0;
  core::FeatureBinner binner;
  binner.fit(x);
  ASSERT_TRUE(binner.fitted());
  for (std::size_t f = 0; f < 3; ++f) EXPECT_EQ(binner.n_bins(f), 1u);
  const auto codes = binner.bin(x);
  EXPECT_EQ(codes, (std::vector<std::uint16_t>{0, 0, 0}));
}

TEST(FeatureBinner, ImportEdgesRejectsUnsortedAndNonFinite) {
  core::FeatureBinner binner;
  EXPECT_THROW(binner.import_edges({{1.0, 0.5}}), std::invalid_argument);
  EXPECT_THROW(binner.import_edges({{0.0, std::nan("")}}),
               std::invalid_argument);
}

// --- fast tier at the model level -------------------------------------------

TEST(FastTier, BinnedFitsAreDeterministicAndThreadCountInvariant) {
  const Problem p = make_problem(320, 13, 41);
  const linalg::KernelPolicyGuard policy(KernelPolicy::kFast);
  ThreadOverrideGuard threads;

  const auto fit_predict = [&]() {
    models::GbtConfig config;
    config.n_rounds = 10;
    models::GradientBoostedTrees model(config);
    model.fit(p.x, p.y);
    return model.predict(p.x);
  };
  parallel::set_max_threads(1);
  const linalg::Vector reference = fit_predict();
  for (const std::size_t width : {std::size_t{2}, std::size_t{3},
                                  std::size_t{8}}) {
    parallel::set_max_threads(width);
    const linalg::Vector got = fit_predict();
    ASSERT_EQ(got.size(), reference.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got[i], reference[i])
          << "row " << i << " differs at " << width << " threads";
    }
  }
}

TEST(FastTier, OrderedBoostBinnedFitIsThreadCountInvariant) {
  const Problem p = make_problem(300, 9, 42);
  const linalg::KernelPolicyGuard policy(KernelPolicy::kFast);
  ThreadOverrideGuard threads;

  const auto fit_predict = [&]() {
    models::OrderedBoostConfig config;
    config.n_rounds = 8;
    models::OrderedBoostedTrees model(config);
    model.fit(p.x, p.y);
    return model.predict(p.x);
  };
  parallel::set_max_threads(1);
  const linalg::Vector reference = fit_predict();
  parallel::set_max_threads(3);
  const linalg::Vector got = fit_predict();
  ASSERT_EQ(got.size(), reference.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i], reference[i]) << "row " << i;
  }
}

TEST(FastTier, GbtPredictionsStayCloseToExactTier) {
  const Problem p = make_problem(360, 8, 43);
  models::GbtConfig config;
  config.n_rounds = 20;

  models::GradientBoostedTrees exact(config);
  exact.fit(p.x, p.y);
  const linalg::Vector pred_exact = exact.predict(p.x);

  models::GradientBoostedTrees fast(config);
  {
    const linalg::KernelPolicyGuard policy(KernelPolicy::kFast);
    fast.fit(p.x, p.y);
  }
  const linalg::Vector pred_fast = fast.predict(p.x);

  // Histogram splits pick (slightly) different trees; the fits must agree
  // statistically, not bitwise. Compare residual scales.
  double sse_exact = 0.0, sse_fast = 0.0;
  for (std::size_t i = 0; i < p.y.size(); ++i) {
    sse_exact += (p.y[i] - pred_exact[i]) * (p.y[i] - pred_exact[i]);
    sse_fast += (p.y[i] - pred_fast[i]) * (p.y[i] - pred_fast[i]);
  }
  EXPECT_LT(std::sqrt(sse_fast / static_cast<double>(p.y.size())),
            2.0 * std::sqrt(sse_exact / static_cast<double>(p.y.size())) +
                1e-4);
}

TEST(FastTier, GpPosteriorWithinTolerance) {
  const Problem p = make_problem(140, 5, 44);
  models::GpConfig config;

  models::GaussianProcessRegressor exact(config);
  exact.fit(p.x, p.y);
  const linalg::Vector pred_exact = exact.predict(p.x);

  models::GaussianProcessRegressor fast(config);
  linalg::Vector pred_fast;
  {
    const linalg::KernelPolicyGuard policy(KernelPolicy::kFast);
    fast.fit(p.x, p.y);
    pred_fast = fast.predict(p.x);
  }
  ASSERT_EQ(pred_fast.size(), pred_exact.size());
  for (std::size_t i = 0; i < pred_exact.size(); ++i) {
    ASSERT_NEAR(pred_fast[i], pred_exact[i], 1e-6) << "row " << i;
  }
}

TEST(FastTier, MlpFitStaysStatisticallyEquivalent) {
  const Problem p = make_problem(200, 6, 45);
  models::MlpConfig config;
  config.epochs = 300;

  models::MlpRegressor exact(config);
  exact.fit(p.x, p.y);
  const linalg::Vector pred_exact = exact.predict(p.x);

  models::MlpRegressor fast(config);
  linalg::Vector pred_fast;
  {
    const linalg::KernelPolicyGuard policy(KernelPolicy::kFast);
    fast.fit(p.x, p.y);
    pred_fast = fast.predict(p.x);
  }
  double sse_exact = 0.0, sse_fast = 0.0;
  for (std::size_t i = 0; i < p.y.size(); ++i) {
    sse_exact += (p.y[i] - pred_exact[i]) * (p.y[i] - pred_exact[i]);
    sse_fast += (p.y[i] - pred_fast[i]) * (p.y[i] - pred_fast[i]);
  }
  EXPECT_LT(std::sqrt(sse_fast / static_cast<double>(p.y.size())),
            2.0 * std::sqrt(sse_exact / static_cast<double>(p.y.size())) +
                1e-4);
}

TEST(FastTier, PipelineCoverageAndQhatEquivalence) {
  // The acceptance battery for the fast tier: a full fit_screen under each
  // policy must produce equivalent STATISTICS — calibrated q_hats of the
  // same magnitude, and empirical coverage within sampling noise of each
  // other on fresh data. (Bitwise equality is the bit-exact tier's bar, not
  // this one.)
  const Problem train = make_problem(420, 7, 46);
  const Problem fresh = make_problem(500, 7, 47);

  core::ScenarioData data;
  data.x = train.x;
  data.y = train.y;
  data.columns.resize(7);
  for (std::size_t c = 0; c < 7; ++c) data.columns[c] = c;

  core::PipelineConfig exact_config;
  exact_config.alpha = core::MiscoverageAlpha{0.2};
  exact_config.kernel_policy = KernelPolicy::kBitExact;
  core::PipelineConfig fast_config = exact_config;
  fast_config.kernel_policy = KernelPolicy::kFast;

  // fit_screen scopes its policy and must restore whatever was ambient —
  // which is kFast, not kBitExact, when the suite runs under
  // VMINCQR_KERNEL_POLICY=fast (the CI fast-tier leg).
  const KernelPolicy ambient = linalg::kernel_policy();
  const auto exact_screen = core::fit_screen(data, models::ModelKind::kXgboost,
                                             exact_config, 7);
  EXPECT_EQ(linalg::kernel_policy(), ambient)
      << "fit_screen must restore the process-wide policy";
  const auto fast_screen = core::fit_screen(data, models::ModelKind::kXgboost,
                                            fast_config, 7);
  EXPECT_EQ(linalg::kernel_policy(), ambient)
      << "fit_screen must restore the process-wide policy";

  const double q_exact = exact_screen.predictor->q_hat();
  const double q_fast = fast_screen.predictor->q_hat();
  EXPECT_TRUE(std::isfinite(q_exact));
  EXPECT_TRUE(std::isfinite(q_fast));
  // Same order of magnitude: the conformal correction tracks the same
  // noise scale under both tiers.
  EXPECT_LT(std::abs(q_fast - q_exact), 0.05);

  const auto eval = [&fresh](const core::FittedScreen& screen) {
    const auto band = screen.predictor->predict_interval(
        fresh.x.take_cols(screen.selected));
    return stats::interval_coverage(fresh.y, band.lower, band.upper);
  };
  const double cov_exact = eval(exact_screen);
  const double cov_fast = eval(fast_screen);
  // CQR's finite-sample guarantee holds under either tier. The cross-tier
  // gap bundles sampling noise AND model variance (histogram splits pick
  // different trees than the exact scan), so the band is wider than a pure
  // binomial bound — the point is the tiers cannot diverge wildly.
  EXPECT_GT(cov_exact, 0.70);
  EXPECT_GT(cov_fast, 0.70);
  EXPECT_LT(std::abs(cov_fast - cov_exact), 0.12);
}

}  // namespace
