// On-chip monitor models: Ring Oscillator Delay (ROD) domain sensors and
// in-situ Critical Path Delay (CPD) sensors — Table II of the paper.
//
// ROD: 168 sensors, read on ATE at 25C at every stress read point.
// CPD: 10 sensors, read in-situ in the burn-in oven at 80C.
//
// Monitor readings are causally downstream of the same aging state that
// drives Vmin degradation, which is what makes them more informative for
// degradation prediction than time-0 parametric data (paper Sec. IV-G).
#pragma once

#include <string>
#include <vector>

#include "data/dataset.hpp"
#include "silicon/aging.hpp"
#include "silicon/process.hpp"

namespace vmincqr::silicon {

struct MonitorConfig {
  std::size_t n_rod = 168;
  std::size_t n_cpd = 10;
  double rod_temperature_c = 25.0;
  double cpd_temperature_c = 80.0;
  double rod_noise_rel = 0.004;  ///< ATE-measured RO, tight repeatability
  double cpd_noise_rel = 0.010;  ///< in-situ sensing, noisier
};

/// Fixed per-sensor response coefficients.
struct MonitorSpec {
  std::string name;
  data::FeatureType type;  ///< kRodMonitor or kCpdMonitor
  double temperature_c;
  double base_delay;   ///< nominal delay (ns)
  double sens_vth;     ///< delay sensitivity to (dvth + aging shift)
  double sens_leff;    ///< delay sensitivity to channel-length variation
  double sens_mismatch;
  double aging_gain;   ///< extra weight on the aging component (CPD > ROD)
  double noise_rel;
  /// CPD sensors replicate a speed-critical path (see critical_path.hpp):
  /// index into standard_critical_paths(), or -1 for a generic sensor.
  int path_index = -1;
  double path_gain = 0.0;  ///< delay response per volt of path score
};

class MonitorBank {
 public:
  /// Builds the sensor catalogue deterministically from `catalogue_rng`.
  MonitorBank(MonitorConfig config, rng::Rng& catalogue_rng);

  [[nodiscard]] std::size_t n_sensors() const noexcept { return specs_.size(); }
  [[nodiscard]] const std::vector<MonitorSpec>& specs() const noexcept { return specs_; }

  /// Reads every sensor for one chip at stress time `hours`.
  std::vector<double> measure(const ChipLatent& chip, const AgingModel& aging,
                              core::Hours hours, rng::Rng& meas_rng) const;

  /// Feature metadata for a given read point (names get a _t<hours> suffix).
  [[nodiscard]] std::vector<data::FeatureInfo> feature_info(double hours) const;

 private:
  MonitorConfig config_;
  std::vector<MonitorSpec> specs_;
};

}  // namespace vmincqr::silicon
