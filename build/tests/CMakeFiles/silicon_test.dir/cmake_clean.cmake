file(REMOVE_RECURSE
  "CMakeFiles/silicon_test.dir/silicon_test.cpp.o"
  "CMakeFiles/silicon_test.dir/silicon_test.cpp.o.d"
  "silicon_test"
  "silicon_test.pdb"
  "silicon_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/silicon_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
