# Empty dependencies file for fig3_feature_sets.
# This may be replaced when dependencies are built.
