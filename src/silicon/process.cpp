#include "silicon/process.hpp"

#include <cmath>
#include <stdexcept>

namespace vmincqr::silicon {

ProcessModel::ProcessModel(ProcessConfig config) : config_(config) {
  if (config_.defect_rate < 0.0 || config_.defect_rate > 1.0) {
    throw std::invalid_argument("ProcessModel: defect_rate outside [0, 1]");
  }
  if (config_.sigma_vth < 0.0 || config_.sigma_leff < 0.0 ||
      config_.sigma_mismatch < 0.0) {
    throw std::invalid_argument("ProcessModel: negative sigma");
  }
}

ChipLatent ProcessModel::sample(rng::Rng& rng) const {
  ChipLatent chip;
  chip.dvth = rng.normal(0.0, config_.sigma_vth);
  chip.dleff = rng.normal(0.0, config_.sigma_leff);
  // Leakage correlates with threshold voltage: low-Vth chips leak more.
  const double leak_noise = rng.normal(0.0, config_.sigma_leak_log);
  chip.leak_corner =
      std::exp(-chip.dvth / (config_.sigma_vth + 1e-12) * 0.3 + leak_noise);
  chip.mismatch = std::abs(rng.normal(0.0, config_.sigma_mismatch));
  // Aging activity is partially predictable from the leakage corner: leaky
  // chips dissipate more, run hotter, and wear out faster. The residual
  // (chip-specific workload/usage) stays latent — only the on-chip monitors
  // observe its effect, which is the information gap behind Table IV.
  chip.activity = std::exp(0.4 * std::log(chip.leak_corner) +
                           rng.normal(0.0, config_.sigma_activity_log));
  if (rng.bernoulli(config_.defect_rate)) {
    // Exponential severity via inverse-CDF on a uniform draw.
    const double u = rng.uniform(1e-12, 1.0);
    chip.defect = -std::log(u) * config_.defect_scale;
  }
  return chip;
}

std::vector<ChipLatent> ProcessModel::sample_population(std::size_t n,
                                                        rng::Rng& rng) const {
  std::vector<ChipLatent> chips;
  chips.reserve(n);
  for (std::size_t i = 0; i < n; ++i) chips.push_back(sample(rng));
  return chips;
}

}  // namespace vmincqr::silicon
