# Empty dependencies file for conformal_extensions_test.
# This may be replaced when dependencies are built.
