// Unit tests for the deterministic RNG facade.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "rng/rng.hpp"

namespace vmincqr::rng {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform() == b.uniform()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, ForkIsIndependentOfParentConsumption) {
  // The i-th fork must be identical no matter how many draws the parent
  // made in between.
  Rng a(42), b(42);
  (void)b.uniform();
  (void)b.normal();
  Rng fa = a.fork();
  Rng fb = b.fork();
  for (int i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(fa.uniform(), fb.uniform());
  }
}

TEST(Rng, SuccessiveForksDiffer) {
  Rng a(42);
  Rng f1 = a.fork();
  Rng f2 = a.fork();
  EXPECT_NE(f1.uniform(), f2.uniform());
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-2.0, 5.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 5.0);
  }
  EXPECT_THROW(rng.uniform(1.0, 0.0), std::invalid_argument);
}

TEST(Rng, NormalMomentsRoughlyCorrect) {
  Rng rng(5);
  const auto v = rng.normal_vector(20000, 1.5, 2.0);
  double mean = std::accumulate(v.begin(), v.end(), 0.0) /
                static_cast<double>(v.size());
  double var = 0.0;
  for (double x : v) var += (x - mean) * (x - mean);
  var /= static_cast<double>(v.size());
  EXPECT_NEAR(mean, 1.5, 0.06);
  EXPECT_NEAR(var, 4.0, 0.15);
  EXPECT_THROW(rng.normal(0.0, -1.0), std::invalid_argument);
  EXPECT_DOUBLE_EQ(rng.normal(3.0, 0.0), 3.0);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    saw_lo |= v == 0;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
  EXPECT_THROW(rng.uniform_int(2, 1), std::invalid_argument);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(11);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
  EXPECT_THROW(rng.bernoulli(1.5), std::invalid_argument);
}

TEST(Rng, PermutationIsAPermutation) {
  Rng rng(13);
  auto p = rng.permutation(50);
  std::sort(p.begin(), p.end());
  for (std::size_t i = 0; i < 50; ++i) EXPECT_EQ(p[i], i);
}

TEST(Rng, PermutationShuffles) {
  Rng rng(13);
  const auto p = rng.permutation(50);
  std::size_t fixed = 0;
  for (std::size_t i = 0; i < 50; ++i) fixed += p[i] == i;
  EXPECT_LT(fixed, 10u);
}

TEST(Rng, LognormalIsPositive) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) EXPECT_GT(rng.lognormal(0.0, 0.5), 0.0);
}

TEST(SplitMix, KnownGoodSeparation) {
  std::uint64_t s1 = 1, s2 = 2;
  EXPECT_NE(splitmix64(s1), splitmix64(s2));
}

}  // namespace
}  // namespace vmincqr::rng
