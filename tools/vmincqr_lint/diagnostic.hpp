// The one currency every analyzer phase trades in: a (file, line, rule,
// message) finding. Shared by the token rules, the dataflow pass, the
// include-graph pass, and both output formats (text and SARIF).
#pragma once

#include <cstddef>
#include <string>

namespace vmincqr::lint {

/// One finding. `line` is 1-based, matching compiler diagnostics, so editors
/// can jump straight to it from `file:line:` output.
struct Diagnostic {
  std::string file;
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

/// Renders a diagnostic as `file:line: [rule] message`.
std::string format(const Diagnostic& d);

}  // namespace vmincqr::lint
