// Fixture: public signature with a raw double named after a level. Fires
// raw-double-param exactly once; the strong-typed overload does not fire.
#pragma once

namespace fx {
class QuantileLevel;

void set_level(double tau);
void set_level(QuantileLevel tau);
void set_scale(double scale);  // not a banned name: no firing
}  // namespace fx
