#include "conformal/normalized.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/contracts.hpp"

#include "conformal/scores.hpp"
#include "data/split.hpp"
#include "stats/quantile.hpp"

namespace vmincqr::conformal {

NormalizedConformalRegressor::NormalizedConformalRegressor(
    MiscoverageAlpha alpha, std::unique_ptr<Regressor> mean_model,
    std::unique_ptr<Regressor> sigma_model, NormalizedConfig config)
    : alpha_(alpha),
      mean_model_(std::move(mean_model)),
      sigma_model_(std::move(sigma_model)),
      config_(config) {
  if (!mean_model_ || !sigma_model_) {
    throw std::invalid_argument("NormalizedConformalRegressor: null model");
  }
}

void NormalizedConformalRegressor::fit(const Matrix& x, const Vector& y) {
  VMINCQR_REQUIRE(x.rows() >= 3,
                  "NormalizedConformalRegressor::fit: need at least 3 samples");
  VMINCQR_CHECK_SHAPE(x.rows() == y.size(),
                      "NormalizedConformalRegressor::fit: shape mismatch");
  VMINCQR_CHECK_FINITE(y, "fit: label vector y");
  std::vector<std::size_t> indices(x.rows());
  for (std::size_t i = 0; i < indices.size(); ++i) indices[i] = i;
  rng::Rng rng(config_.split.seed);
  const auto split = data::train_calibration_split(
      indices, config_.split.train_fraction, rng);

  const Matrix x_train = x.take_rows(split.train);
  Vector y_train(split.train.size());
  for (std::size_t i = 0; i < split.train.size(); ++i) {
    y_train[i] = y[split.train[i]];
  }
  mean_model_->fit(x_train, y_train);

  // Difficulty model: absolute residuals of the mean model on its own
  // training data (standard locally-weighted CP recipe).
  const Vector mu_train = mean_model_->predict(x_train);
  Vector abs_res(y_train.size());
  for (std::size_t i = 0; i < y_train.size(); ++i) {
    abs_res[i] = std::abs(y_train[i] - mu_train[i]);
  }
  sigma_model_->fit(x_train, abs_res);

  const Matrix x_calib = x.take_rows(split.calibration);
  Vector y_calib(split.calibration.size());
  for (std::size_t i = 0; i < split.calibration.size(); ++i) {
    y_calib[i] = y[split.calibration[i]];
  }
  const Vector mu = mean_model_->predict(x_calib);
  const Vector sigma = predict_sigma(x_calib);
  std::vector<double> scores(y_calib.size());
  for (std::size_t i = 0; i < y_calib.size(); ++i) {
    scores[i] = normalized_residual_score(y_calib[i], mu[i], sigma[i]);
  }
  q_hat_ = stats::conformal_quantile(scores, alpha_);
  calibrated_ = true;
}

Vector NormalizedConformalRegressor::predict_sigma(const Matrix& x) const {
  Vector sigma = sigma_model_->predict(x);
  for (auto& s : sigma) s = std::max(s, config_.sigma_floor);
  VMINCQR_ENSURE(core::all_finite(sigma),
                 "predict_sigma: non-finite difficulty estimate");
  return sigma;
}

IntervalPrediction NormalizedConformalRegressor::predict_interval(
    const Matrix& x) const {
  if (!calibrated_) {
    throw std::logic_error("NormalizedConformalRegressor: not calibrated");
  }
  const Vector mu = mean_model_->predict(x);
  const Vector sigma = predict_sigma(x);
  IntervalPrediction out;
  out.lower.resize(mu.size());
  out.upper.resize(mu.size());
  for (std::size_t i = 0; i < mu.size(); ++i) {
    out.lower[i] = mu[i] - q_hat_ * sigma[i];
    out.upper[i] = mu[i] + q_hat_ * sigma[i];
  }
  return out;
}

std::unique_ptr<IntervalRegressor> NormalizedConformalRegressor::clone_config()
    const {
  return std::make_unique<NormalizedConformalRegressor>(
      alpha_, mean_model_->clone_config(), sigma_model_->clone_config(),
      config_);
}

double NormalizedConformalRegressor::q_hat() const {
  if (!calibrated_) {
    throw std::logic_error("NormalizedConformalRegressor: not calibrated");
  }
  return q_hat_;
}

NormalizedCalibration NormalizedConformalRegressor::export_calibration() const {
  if (!calibrated_) {
    throw std::logic_error("NormalizedConformalRegressor: not calibrated");
  }
  return {q_hat_, config_.sigma_floor};
}

void NormalizedConformalRegressor::import_calibration(
    NormalizedCalibration calibration) {
  if (std::isnan(calibration.q_hat) || !(calibration.sigma_floor >= 0.0)) {
    throw std::invalid_argument(
        "NormalizedConformalRegressor::import_calibration: bad calibration");
  }
  q_hat_ = calibration.q_hat;
  config_.sigma_floor = calibration.sigma_floor;
  calibrated_ = true;
}

}  // namespace vmincqr::conformal
