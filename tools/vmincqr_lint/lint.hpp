// vmincqr_lint — a self-contained token-level linter for repo invariants the
// generic tools (clang-tidy, cppcheck) cannot express.
//
// Why a bespoke linter: CQR's coverage guarantee survives only if the code
// respects project conventions — strong unit types at public boundaries,
// runtime contracts on every fit/predict entry point, no exact floating
// comparisons in statistical code. These are *domain* rules, not C++ rules,
// so they live here as a small table-driven pass over the token stream (no
// libclang dependency; the whole tool builds in well under a second).
//
// Suppression: append `// vmincqr-lint: allow(<rule-id>)` to the offending
// line, or place it alone on the line above. Several ids may be listed,
// comma-separated. Suppressions are per-line and per-rule by design: a blanket
// opt-out would silently rot.
#pragma once

#include <string>
#include <vector>

namespace vmincqr::lint {

/// One finding. `line` is 1-based, matching compiler diagnostics, so editors
/// can jump straight to it from `file:line:` output.
struct Diagnostic {
  std::string file;
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

/// A row of the rule table: stable id (used in allow() suppressions and test
/// fixtures) plus a one-line rationale printed by `vmincqr_lint --rules`.
struct RuleInfo {
  const char* id;
  const char* rationale;
};

/// The full rule table, in the order rules run. Ids are unique and stable;
/// tests assert every fixture maps onto exactly one of these.
const std::vector<RuleInfo>& rule_table();

/// Lints one translation unit given its contents (the unit-testable core).
/// `path` is used for diagnostics and to decide header-only rules (.hpp).
std::vector<Diagnostic> lint_source(const std::string& path,
                                    const std::string& content);

/// Reads `path` and lints it. Throws std::runtime_error if unreadable.
std::vector<Diagnostic> lint_file(const std::string& path);

/// True for files the linter understands (.hpp / .cpp).
bool is_lintable(const std::string& path);

/// Renders a diagnostic as `file:line: [rule] message`.
std::string format(const Diagnostic& d);

}  // namespace vmincqr::lint
