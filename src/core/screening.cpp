#include "core/screening.hpp"

#include <stdexcept>

namespace vmincqr::core {

std::string to_string(ScreenDecision decision) {
  switch (decision) {
    case ScreenDecision::kPass:
      return "pass";
    case ScreenDecision::kFail:
      return "fail";
    case ScreenDecision::kRetest:
      return "retest";
  }
  return "unknown";
}

ScreenDecision screen_interval(double lower, double upper, Volt min_spec) {
  if (lower > upper) {
    throw std::invalid_argument("screen_interval: lower > upper");
  }
  if (upper <= min_spec) return ScreenDecision::kPass;
  if (lower > min_spec) return ScreenDecision::kFail;
  return ScreenDecision::kRetest;
}

ScreenDecision screen_point(double prediction, Millivolt guard_band,
                            Volt min_spec) {
  if (guard_band.value() < 0.0) {
    throw std::invalid_argument("screen_point: negative guard band");
  }
  return prediction + guard_band.to_volts() <= min_spec
             ? ScreenDecision::kPass
             : ScreenDecision::kFail;
}

namespace {

void check_batch(const Vector& truth, const Vector& a, const char* who) {
  if (truth.empty()) {
    throw std::invalid_argument(std::string(who) + ": empty batch");
  }
  if (truth.size() != a.size()) {
    throw std::invalid_argument(std::string(who) + ": length mismatch");
  }
}

void record(ScreeningReport& report, ScreenDecision decision, bool bad) {
  report.n_truly_bad += bad;
  switch (decision) {
    case ScreenDecision::kPass:
      ++report.n_pass;
      if (bad) ++report.n_underkill;
      break;
    case ScreenDecision::kFail:
      ++report.n_fail;
      if (!bad) ++report.n_overkill;
      break;
    case ScreenDecision::kRetest:
      ++report.n_retest;
      break;
  }
}

}  // namespace

ScreeningReport screen_batch_interval(const Vector& truth, const Vector& lower,
                                      const Vector& upper, Volt min_spec) {
  check_batch(truth, lower, "screen_batch_interval");
  check_batch(truth, upper, "screen_batch_interval");
  ScreeningReport report;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    record(report, screen_interval(lower[i], upper[i], min_spec),
           truth[i] > min_spec);
  }
  return report;
}

ScreeningReport screen_batch_point(const Vector& truth, const Vector& predicted,
                                   Millivolt guard_band, Volt min_spec) {
  check_batch(truth, predicted, "screen_batch_point");
  ScreeningReport report;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    record(report, screen_point(predicted[i], guard_band, min_spec),
           truth[i] > min_spec);
  }
  return report;
}

Millivolt calibrate_guard_band(const Vector& truth, const Vector& predicted,
                               Volt min_spec,
                               const std::vector<Millivolt>& candidates,
                               double max_underkill) {
  if (candidates.empty()) {
    throw std::invalid_argument("calibrate_guard_band: no candidates");
  }
  for (Millivolt guard : candidates) {
    const auto report =
        screen_batch_point(truth, predicted, guard, min_spec);
    if (report.underkill_rate() <= max_underkill) return guard;
  }
  return candidates.back();
}

}  // namespace vmincqr::core
