// Property-based suites for the conformal coverage guarantee (Eq. 6).
//
// The split-conformal guarantee is marginal: over repeated draws of
// (calibration set, test point), coverage >= 1 - alpha in expectation. We
// verify it empirically by averaging over many seeds, for several alphas and
// several base models, and we verify that the raw (uncalibrated) QR band
// undercovers in the same setting — the paper's central claim (Sec. IV-F).
#include <gtest/gtest.h>

#include <tuple>

#include "conformal/cqr.hpp"
#include "conformal/split_cp.hpp"
#include "models/factory.hpp"
#include "rng/rng.hpp"
#include "stats/metrics.hpp"
#include "stats/quantile.hpp"

namespace vmincqr::conformal {
namespace {

using models::ModelKind;

struct Problem {
  models::Matrix x;
  models::Vector y;
};

// Nonlinear + heteroscedastic generator; intentionally hard for a linear
// base model so residuals are far from exchangeable-free.
Problem sample_problem(std::size_t n, rng::Rng& rng) {
  Problem p{models::Matrix(n, 3), models::Vector(n)};
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t c = 0; c < 3; ++c) p.x(i, c) = rng.normal();
    const double signal =
        p.x(i, 0) + 0.5 * p.x(i, 1) * p.x(i, 1) - 0.3 * p.x(i, 2);
    const double noise_sd = 0.2 + 0.4 * std::abs(p.x(i, 0));
    p.y[i] = signal + rng.normal(0.0, noise_sd);
  }
  return p;
}

class CoverageGuarantee
    : public ::testing::TestWithParam<std::tuple<double, ModelKind>> {};

TEST_P(CoverageGuarantee, CqrMeetsTargetOnAverage) {
  const double alpha = std::get<0>(GetParam());
  const ModelKind kind = std::get<1>(GetParam());

  const int n_trials = 12;
  double total_coverage = 0.0;
  for (int trial = 0; trial < n_trials; ++trial) {
    rng::Rng rng(1000 + static_cast<std::uint64_t>(trial));
    const auto train = sample_problem(220, rng);
    const auto test = sample_problem(300, rng);

    CqrConfig config;
    config.split.seed = 77 + static_cast<std::uint64_t>(trial);
    ConformalizedQuantileRegressor cqr(
        core::MiscoverageAlpha{alpha}, models::make_quantile_pair(kind, core::MiscoverageAlpha{alpha}),
        config);
    cqr.fit(train.x, train.y);
    const auto band = cqr.predict_interval(test.x);
    total_coverage +=
        stats::interval_coverage(test.y, band.lower, band.upper);
  }
  const double mean_coverage = total_coverage / n_trials;
  // Finite-sample guarantee holds in expectation; allow a small Monte-Carlo
  // slack below 1 - alpha.
  EXPECT_GE(mean_coverage, 1.0 - alpha - 0.03)
      << "alpha=" << alpha << " model=" << models::model_name(kind);
  // And it should not be absurdly conservative (guarantee also upper-bounds
  // coverage at 1 - alpha + 1/(M+1) for continuous scores; allow slack).
  EXPECT_LE(mean_coverage, 1.0 - alpha + 0.12);
}

INSTANTIATE_TEST_SUITE_P(
    AlphaByModel, CoverageGuarantee,
    ::testing::Combine(::testing::Values(0.05, 0.1, 0.2),
                       ::testing::Values(ModelKind::kLinear,
                                         ModelKind::kCatboost)));

class CpCoverage : public ::testing::TestWithParam<double> {};

TEST_P(CpCoverage, SplitCpMeetsTargetOnAverage) {
  const double alpha = GetParam();
  const int n_trials = 12;
  double total_coverage = 0.0;
  for (int trial = 0; trial < n_trials; ++trial) {
    rng::Rng rng(2000 + static_cast<std::uint64_t>(trial));
    const auto train = sample_problem(220, rng);
    const auto test = sample_problem(300, rng);
    SplitConfig config;
    config.split.seed = 99 + static_cast<std::uint64_t>(trial);
    SplitConformalRegressor cp(
        core::MiscoverageAlpha{alpha}, models::make_point_regressor(ModelKind::kLinear), config);
    cp.fit(train.x, train.y);
    const auto band = cp.predict_interval(test.x);
    total_coverage +=
        stats::interval_coverage(test.y, band.lower, band.upper);
  }
  EXPECT_GE(total_coverage / n_trials, 1.0 - alpha - 0.03);
}

INSTANTIATE_TEST_SUITE_P(Alphas, CpCoverage,
                         ::testing::Values(0.05, 0.1, 0.2, 0.3));

TEST(ExactCoverage, SplitCpMatchesTheFiniteSampleFormula) {
  // For i.i.d. continuous scores, split-CP coverage (marginal over
  // calibration and test draws) is EXACTLY k/(M+1) with
  // k = ceil((M+1)(1-alpha)). Verify by Monte Carlo on a pure-noise problem
  // where the model is constant and residuals are continuous.
  const double alpha = 0.2;
  const std::size_t m = 19;  // k = ceil(20*0.8) = 16 -> coverage 16/20 = 0.8
  const double expected = 16.0 / 20.0;

  rng::Rng rng(909);
  std::size_t covered = 0, total = 0;
  for (int trial = 0; trial < 400; ++trial) {
    // Calibration residuals and one test point from the same N(0,1).
    std::vector<double> scores(m);
    for (auto& s : scores) s = std::abs(rng.normal());
    const double q = stats::conformal_quantile(scores, core::MiscoverageAlpha{alpha});
    const double test_score = std::abs(rng.normal());
    covered += test_score <= q;
    ++total;
  }
  const double freq = static_cast<double>(covered) / static_cast<double>(total);
  EXPECT_NEAR(freq, expected, 0.05);
}

TEST(CoverageContrast, RawQrUndercoversWhereCqrDoesNot) {
  // The paper's Table III story: QR alone misses the target; CQR restores
  // it. Averaged over trials to beat Monte-Carlo noise.
  const double alpha = 0.1;
  const int n_trials = 10;
  double qr_cov = 0.0, cqr_cov = 0.0;
  for (int trial = 0; trial < n_trials; ++trial) {
    rng::Rng rng(3000 + static_cast<std::uint64_t>(trial));
    // Small training set: quantile estimates overfit and undercover.
    const auto train = sample_problem(60, rng);
    const auto test = sample_problem(400, rng);

    auto qr = models::make_quantile_pair(ModelKind::kCatboost, core::MiscoverageAlpha{alpha});
    qr->fit(train.x, train.y);
    const auto qr_band = qr->predict_interval(test.x);
    qr_cov += stats::interval_coverage(test.y, qr_band.lower, qr_band.upper);

    CqrConfig config;
    config.split.seed = 5 + static_cast<std::uint64_t>(trial);
    ConformalizedQuantileRegressor cqr(
        core::MiscoverageAlpha{alpha}, models::make_quantile_pair(ModelKind::kCatboost, core::MiscoverageAlpha{alpha}),
        config);
    cqr.fit(train.x, train.y);
    const auto cqr_band = cqr.predict_interval(test.x);
    cqr_cov +=
        stats::interval_coverage(test.y, cqr_band.lower, cqr_band.upper);
  }
  qr_cov /= n_trials;
  cqr_cov /= n_trials;
  EXPECT_LT(qr_cov, 0.88);          // raw QR undercovers
  EXPECT_GE(cqr_cov, 0.87);         // CQR restores the target
  EXPECT_GT(cqr_cov, qr_cov + 0.02);  // and the gap is material
}

TEST(CoverageContrast, CqrIntervalsAdaptButCpIntervalsDoNot) {
  rng::Rng rng(4242);
  const auto train = sample_problem(400, rng);
  const auto test = sample_problem(200, rng);
  const double alpha = 0.1;

  SplitConformalRegressor cp(
      core::MiscoverageAlpha{alpha}, models::make_point_regressor(ModelKind::kCatboost));
  cp.fit(train.x, train.y);
  const auto cp_band = cp.predict_interval(test.x);

  ConformalizedQuantileRegressor cqr(
      core::MiscoverageAlpha{alpha}, models::make_quantile_pair(ModelKind::kCatboost, core::MiscoverageAlpha{alpha}));
  cqr.fit(train.x, train.y);
  const auto cqr_band = cqr.predict_interval(test.x);

  // CP: all widths equal. CQR: widths vary with the heteroscedastic input.
  double cp_min = 1e18, cp_max = -1e18, cqr_min = 1e18, cqr_max = -1e18;
  for (std::size_t i = 0; i < test.y.size(); ++i) {
    const double wcp = cp_band.upper[i] - cp_band.lower[i];
    const double wcqr = cqr_band.upper[i] - cqr_band.lower[i];
    cp_min = std::min(cp_min, wcp);
    cp_max = std::max(cp_max, wcp);
    cqr_min = std::min(cqr_min, wcqr);
    cqr_max = std::max(cqr_max, wcqr);
  }
  EXPECT_NEAR(cp_max - cp_min, 0.0, 1e-9);
  EXPECT_GT(cqr_max - cqr_min, 0.1);
}

}  // namespace
}  // namespace vmincqr::conformal
