#include "models/ordered_boost.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

#include "core/binning.hpp"
#include "linalg/kernels.hpp"
#include "parallel/parallel_for.hpp"
#include "stats/descriptive.hpp"
#include "stats/quantile.hpp"

namespace vmincqr::models {
namespace {

/// Best (score, feature, threshold) seen by one feature chunk of the
/// oblivious level search. Defaults mirror the sequential scan's start
/// state: -inf score, nothing found.
struct LevelCandidate {
  double score = -std::numeric_limits<double>::infinity();
  std::size_t feature = 0;
  double threshold = 0.0;
  bool found = false;
};

/// Level work (rows x features) below which the split search stays inline.
constexpr std::size_t kMinParallelSplitWork = 4096;

/// Batch size below which predict stays single-shard (matches gbt.cpp).
constexpr std::size_t kMinParallelRows = 256;

/// Fast-tier oblivious level search: one pass over the samples fills a
/// per-(bin, partition) G/H histogram per feature, then every border's score
/// falls out of an ascending prefix sweep — O(n + borders x partitions) per
/// feature instead of the exact path's O(n x borders) rescans. Deterministic
/// and thread-count invariant, but the per-partition sums accumulate in bin
/// order rather than row order, so scores (and therefore chosen splits) can
/// differ from the exact tier in the last bits.
// vmincqr: numeric-tier(tolerance)
LevelCandidate search_level_binned(
    const core::FeatureBinner& binner, const std::vector<std::uint16_t>& codes,
    std::size_t n, std::size_t d, const Vector& grad, const Vector& hess,
    const std::vector<std::size_t>& leaf_of, const std::vector<double>& g_tot,
    const std::vector<double>& h_tot, double l2, bool use_pool) {
  const std::size_t parts = g_tot.size();
  return parallel::parallel_deterministic_reduce(
      d, /*grain=*/1, LevelCandidate{},
      [&](std::size_t f_begin, std::size_t f_end) {
        LevelCandidate local;
        std::vector<double> g_bin, h_bin;
        std::vector<double> g_left(parts), h_left(parts);
        for (std::size_t f = f_begin; f < f_end; ++f) {
          const std::vector<double>& edges = binner.edges(f);
          if (edges.empty()) continue;  // constant feature
          const std::size_t bins = edges.size() + 1;
          g_bin.assign(bins * parts, 0.0);
          h_bin.assign(bins * parts, 0.0);
          for (std::size_t i = 0; i < n; ++i) {
            const std::size_t cell = codes[i * d + f] * parts + leaf_of[i];
            g_bin[cell] += grad[i];
            h_bin[cell] += hess[i];
          }
          std::fill(g_left.begin(), g_left.end(), 0.0);
          std::fill(h_left.begin(), h_left.end(), 0.0);
          for (std::size_t b = 0; b < edges.size(); ++b) {
            for (std::size_t p = 0; p < parts; ++p) {
              g_left[p] += g_bin[b * parts + p];
              h_left[p] += h_bin[b * parts + p];
            }
            double score = 0.0;
            for (std::size_t p = 0; p < parts; ++p) {
              const double gl = g_left[p], hl = h_left[p];
              const double gr = g_tot[p] - gl, hr = h_tot[p] - hl;
              score += gl * gl / (hl + l2) + gr * gr / (hr + l2);
            }
            if (score > local.score) {
              local.score = score;
              local.feature = f;
              local.threshold = edges[b];
              local.found = true;
            }
          }
        }
        return local;
      },
      [](LevelCandidate acc, LevelCandidate part) {
        return part.score > acc.score ? part : acc;
      },
      use_pool);
}

}  // namespace

OrderedBoostedTrees::OrderedBoostedTrees(OrderedBoostConfig config)
    : config_(config) {
  if (config_.n_rounds <= 0) {
    throw std::invalid_argument("OrderedBoostedTrees: n_rounds <= 0");
  }
  if (config_.learning_rate <= 0.0) {
    throw std::invalid_argument("OrderedBoostedTrees: learning_rate <= 0");
  }
  if (config_.depth <= 0 || config_.depth > 16) {
    throw std::invalid_argument("OrderedBoostedTrees: depth outside [1, 16]");
  }
  if (config_.border_count < 1) {
    throw std::invalid_argument("OrderedBoostedTrees: border_count < 1");
  }
}

std::vector<std::vector<double>> OrderedBoostedTrees::compute_borders(
    const Matrix& x) const {
  std::vector<std::vector<double>> borders(x.cols());
  for (std::size_t f = 0; f < x.cols(); ++f) {
    Vector values = x.col(f);
    std::sort(values.begin(), values.end());
    values.erase(std::unique(values.begin(), values.end()), values.end());
    if (values.size() < 2) continue;
    const auto want = static_cast<std::size_t>(config_.border_count);
    if (values.size() - 1 <= want) {
      // Every midpoint between adjacent distinct values.
      for (std::size_t i = 0; i + 1 < values.size(); ++i) {
        borders[f].push_back(0.5 * (values[i] + values[i + 1]));
      }
    } else {
      // Evenly spaced quantile borders.
      for (std::size_t b = 1; b <= want; ++b) {
        const double q = static_cast<double>(b) / (static_cast<double>(want) + 1.0);
        const auto pos = static_cast<std::size_t>(
            q * static_cast<double>(values.size() - 1));
        borders[f].push_back(0.5 * (values[pos] + values[std::min(
                                                      pos + 1, values.size() - 1)]));
      }
      borders[f].erase(std::unique(borders[f].begin(), borders[f].end()),
                       borders[f].end());
    }
  }
  return borders;
}

void OrderedBoostedTrees::fit(const Matrix& x, const Vector& y) {
  check_fit_args(x, y);
  n_features_ = x.cols();
  trees_.clear();
  const std::size_t n = x.rows();

  if (config_.loss.kind == LossKind::kPinball) {
    base_score_ = stats::quantile_linear(y, config_.loss.quantile);
  } else {
    base_score_ = stats::mean(y);
  }

  const auto borders = compute_borders(x);

  // Fast kernel tier: pre-bin x by the borders once, so each level's split
  // search runs over histograms (search_level_binned) instead of rescanning
  // every (feature, border) pair against the raw columns.
  const bool hist = linalg::kernel_policy() == linalg::KernelPolicy::kFast;
  core::FeatureBinner binner;
  std::vector<std::uint16_t> codes;
  if (hist) {
    binner.import_edges(borders);
    codes = binner.bin(x);
  }

  feature_gains_.assign(n_features_, 0.0);
  rng::Rng rng(config_.seed);
  const std::vector<std::size_t> fixed_perm = rng.permutation(n);

  // pred[i]: the prediction used for gradients. In ordered mode this is the
  // prefix-only (unbiased) running prediction; in plain mode the usual one.
  Vector pred(n, base_score_);
  Vector grad(n), hess(n);
  const auto depth = static_cast<std::size_t>(config_.depth);
  std::vector<std::size_t> leaf_of(n, 0);

  for (int round = 0; round < config_.n_rounds; ++round) {
    const std::vector<std::size_t> perm =
        config_.fresh_permutation_each_round ? rng.permutation(n) : fixed_perm;
    for (std::size_t i = 0; i < n; ++i) {
      grad[i] = config_.loss.gradient(y[i], pred[i]);
      hess[i] = config_.loss.hessian(y[i], pred[i]);
    }

    // Greedy level-by-level oblivious structure search.
    ObliviousTree tree;
    std::fill(leaf_of.begin(), leaf_of.end(), std::size_t{0});
    for (std::size_t level = 0; level < depth; ++level) {
      const std::size_t current_parts = std::size_t{1} << level;

      // Pre-aggregate per-partition totals.
      std::vector<double> g_tot(current_parts, 0.0), h_tot(current_parts, 0.0);
      for (std::size_t i = 0; i < n; ++i) {
        g_tot[leaf_of[i]] += grad[i];
        h_tot[leaf_of[i]] += hess[i];
      }
      double parent_score = 0.0;
      for (std::size_t p = 0; p < current_parts; ++p) {
        parent_score +=
            g_tot[p] * g_tot[p] / (h_tot[p] + config_.l2_leaf_reg);
      }

      // Split search, parallel across features: each chunk scans its
      // (feature, border) candidates in order against private per-partition
      // accumulators; per-chunk bests fold in ascending feature order, so
      // the winner matches a sequential scan at every thread count.
      const bool use_pool = n * x.cols() >= kMinParallelSplitWork;
      const LevelCandidate best =
          hist ? search_level_binned(binner, codes, n, x.cols(), grad, hess,
                                     leaf_of, g_tot, h_tot,
                                     config_.l2_leaf_reg, use_pool)
               : parallel::parallel_deterministic_reduce(
          x.cols(), /*grain=*/1, LevelCandidate{},
          [&](std::size_t f_begin, std::size_t f_end) {
            LevelCandidate local;
            std::vector<double> g_left(current_parts), h_left(current_parts);
            for (std::size_t f = f_begin; f < f_end; ++f) {
              for (double thr : borders[f]) {
                std::fill(g_left.begin(), g_left.end(), 0.0);
                std::fill(h_left.begin(), h_left.end(), 0.0);
                for (std::size_t i = 0; i < n; ++i) {
                  if (x(i, f) <= thr) {
                    g_left[leaf_of[i]] += grad[i];
                    h_left[leaf_of[i]] += hess[i];
                  }
                }
                double score = 0.0;
                for (std::size_t p = 0; p < current_parts; ++p) {
                  const double gl = g_left[p], hl = h_left[p];
                  const double gr = g_tot[p] - gl, hr = h_tot[p] - hl;
                  score += gl * gl / (hl + config_.l2_leaf_reg) +
                           gr * gr / (hr + config_.l2_leaf_reg);
                }
                if (score > local.score) {
                  local.score = score;
                  local.feature = f;
                  local.threshold = thr;
                  local.found = true;
                }
              }
            }
            return local;
          },
          [](LevelCandidate acc, LevelCandidate part) {
            return part.score > acc.score ? part : acc;
          },
          use_pool);

      if (!best.found) break;  // no usable split candidates (constant features)
      if (best.score > parent_score) {
        feature_gains_[best.feature] += best.score - parent_score;
      }
      tree.features.push_back(best.feature);
      tree.thresholds.push_back(best.threshold);
      for (std::size_t i = 0; i < n; ++i) {
        leaf_of[i] |= static_cast<std::size_t>(x(i, best.feature) >
                                               best.threshold)
                      << level;
      }
    }
    const std::size_t actual_leaves = std::size_t{1} << tree.features.size();

    // Ordered leaf estimation: each sample's update uses only the prefix of
    // its leaf in the permutation; this is what removes prediction shift.
    // The prefix estimator must match the inference leaf estimator (gradient
    // step for squared loss, residual quantile for pinball), otherwise the
    // training trajectory and the deployed ensemble diverge.
    // Round-start residuals; used by both the ordered prefix estimator and
    // the pinball leaf refit (pred mutates during the ordered loop).
    std::vector<double> residual(n);
    for (std::size_t i = 0; i < n; ++i) residual[i] = y[i] - pred[i];

    if (config_.ordered) {
      if (config_.loss.kind == LossKind::kPinball) {
        // Prefix residual quantiles, maintained as sorted per-leaf vectors.
        std::vector<std::vector<double>> prefix(actual_leaves);
        const double q = config_.loss.quantile;
        for (std::size_t k = 0; k < n; ++k) {
          const std::size_t i = perm[k];
          auto& leaf_members = prefix[leaf_of[i]];
          const double value =
              leaf_members.empty()
                  ? 0.0
                  : stats::quantile_linear(leaf_members, q);
          pred[i] += config_.learning_rate * value;
          leaf_members.insert(std::upper_bound(leaf_members.begin(),
                                               leaf_members.end(),
                                               residual[i]),
                              residual[i]);
        }
      } else {
        std::vector<double> g_prefix(actual_leaves, 0.0),
            h_prefix(actual_leaves, 0.0);
        for (std::size_t k = 0; k < n; ++k) {
          const std::size_t i = perm[k];
          const std::size_t leaf = leaf_of[i];
          const double value =
              (h_prefix[leaf] > 0.0)
                  ? -g_prefix[leaf] / (h_prefix[leaf] + config_.l2_leaf_reg)
                  : 0.0;
          pred[i] += config_.learning_rate * value;
          g_prefix[leaf] += grad[i];
          h_prefix[leaf] += hess[i];
        }
      }
    }

    // Final (inference) leaf values from all samples.
    tree.leaf_values.assign(actual_leaves, 0.0);
    if (config_.loss.kind == LossKind::kPinball) {
      std::vector<std::vector<double>> residuals(actual_leaves);
      for (std::size_t i = 0; i < n; ++i) {
        residuals[leaf_of[i]].push_back(residual[i]);
      }
      for (std::size_t leaf = 0; leaf < actual_leaves; ++leaf) {
        if (!residuals[leaf].empty()) {
          tree.leaf_values[leaf] = stats::quantile_linear(
              residuals[leaf], config_.loss.quantile);
        }
      }
    } else {
      std::vector<double> g_tot(actual_leaves, 0.0), h_tot(actual_leaves, 0.0);
      for (std::size_t i = 0; i < n; ++i) {
        g_tot[leaf_of[i]] += grad[i];
        h_tot[leaf_of[i]] += hess[i];
      }
      for (std::size_t leaf = 0; leaf < actual_leaves; ++leaf) {
        if (h_tot[leaf] > 0.0) {
          tree.leaf_values[leaf] =
              -g_tot[leaf] / (h_tot[leaf] + config_.l2_leaf_reg);
        }
      }
    }

    if (!config_.ordered) {
      for (std::size_t i = 0; i < n; ++i) {
        pred[i] += config_.learning_rate * tree.leaf_values[leaf_of[i]];
      }
    }
    trees_.push_back(std::move(tree));
  }
  rebuild_flat();
  fitted_ = true;
}

void OrderedBoostedTrees::rebuild_flat() {
  flat_.clear();
  for (const auto& tree : trees_) flat_.add_tree(tree);
}

Vector OrderedBoostedTrees::predict(const Matrix& x) const {
  check_predict_args(x, n_features_, fitted_);
  Vector out(x.rows(), base_score_);
  // Row-sharded over the flat SoA planes. Per row the trees accumulate in
  // round order on top of the base score — the same summation order as the
  // old trees-outer loop, so results are bit-identical at any thread count.
  // Grain = the traversal row block, so auto-grain can't slice the batch
  // into slivers that re-stream the node planes per sliver.
  parallel::parallel_for(
      x.rows(), /*grain=*/models::kTraversalRowBlock,
      [&](std::size_t begin, std::size_t end) {
        flat_.accumulate(x.row_ptr(begin), end - begin, x.cols(),
                         config_.learning_rate, out.data() + begin);
      },
      /*use_pool=*/x.rows() >= kMinParallelRows);
  return out;
}

Vector OrderedBoostedTrees::feature_importance() const {
  if (!fitted_) throw std::logic_error("OrderedBoostedTrees: not fitted");
  Vector gains = feature_gains_;
  double total = 0.0;
  for (double g : gains) total += g;
  if (total > 0.0) {
    for (auto& g : gains) g /= total;
  }
  return gains;
}

std::unique_ptr<Regressor> OrderedBoostedTrees::clone_config() const {
  return std::make_unique<OrderedBoostedTrees>(config_);
}

OrderedBoostParams OrderedBoostedTrees::export_params() const {
  if (!fitted_) {
    throw std::logic_error("OrderedBoostedTrees::export_params: not fitted");
  }
  return {base_score_, config_.learning_rate, n_features_, trees_,
          feature_gains_};
}

void OrderedBoostedTrees::import_params(OrderedBoostParams params) {
  if (!(params.learning_rate > 0.0) || params.n_features == 0) {
    throw std::invalid_argument(
        "OrderedBoostedTrees::import_params: bad hyperparameters");
  }
  for (const auto& tree : params.trees) {
    const std::size_t depth = tree.features.size();
    if (tree.thresholds.size() != depth ||
        tree.leaf_values.size() != (std::size_t{1} << depth)) {
      throw std::invalid_argument(
          "OrderedBoostedTrees::import_params: malformed oblivious tree");
    }
    for (std::size_t f : tree.features) {
      if (f >= params.n_features) {
        throw std::invalid_argument(
            "OrderedBoostedTrees::import_params: feature index out of range");
      }
    }
  }
  if (params.feature_gains.size() != params.n_features) {
    params.feature_gains.assign(params.n_features, 0.0);
  }
  trees_ = std::move(params.trees);
  feature_gains_ = std::move(params.feature_gains);
  base_score_ = params.base_score;
  config_.learning_rate = params.learning_rate;
  n_features_ = params.n_features;
  rebuild_flat();
  fitted_ = true;
}

}  // namespace vmincqr::models
