// Empirical quantiles, including the finite-sample conformal quantile used
// by split conformal prediction (Sec. III-B/III-C of the paper).
#pragma once

#include <cstddef>
#include <vector>

#include "core/units.hpp"

namespace vmincqr::stats {

/// Linear-interpolation empirical quantile (the common "type 7" rule).
/// q must be in [0, 1]. Throws std::invalid_argument on empty input or
/// q outside [0, 1].
double quantile_linear(std::vector<double> values, double q);

/// Higher-order-statistic quantile: returns the ceil(q * n)-th smallest
/// value (1-indexed), i.e. the smallest v such that at least a fraction q of
/// the sample is <= v. q in (0, 1]. Throws on empty input.
double quantile_higher(std::vector<double> values, double q);

/// The conformal calibration quantile of Eq. (7)/(9):
/// the ceil((M+1)(1-alpha))/M-th empirical quantile of the M scores.
/// When ceil((M+1)(1-alpha)) > M (calibration set too small for the target
/// coverage) the interval must be infinite to retain the guarantee; this
/// function then returns +infinity.
/// Throws std::invalid_argument if scores is empty; alpha validity is
/// guaranteed by core::MiscoverageAlpha construction.
double conformal_quantile(std::vector<double> scores,
                          core::MiscoverageAlpha alpha);

/// Smallest calibration-set size for which conformal_quantile is finite at
/// miscoverage alpha: the least M with ceil((M+1)(1-alpha)) <= M.
std::size_t min_calibration_size(core::MiscoverageAlpha alpha);

}  // namespace vmincqr::stats
