#include "models/regressor.hpp"

#include <stdexcept>

namespace vmincqr::models {

void Regressor::check_fit_args(const Matrix& x, const Vector& y) {
  if (x.rows() == 0 || x.cols() == 0) {
    throw std::invalid_argument("Regressor::fit: empty design matrix");
  }
  if (x.rows() != y.size()) {
    throw std::invalid_argument("Regressor::fit: X rows != y length");
  }
}

void Regressor::check_predict_args(const Matrix& x, std::size_t expected_cols,
                                   bool is_fitted) {
  if (!is_fitted) {
    throw std::logic_error("Regressor::predict: model not fitted");
  }
  if (x.cols() != expected_cols) {
    throw std::invalid_argument(
        "Regressor::predict: feature count mismatch, expected " +
        std::to_string(expected_cols) + ", got " + std::to_string(x.cols()));
  }
}

}  // namespace vmincqr::models
