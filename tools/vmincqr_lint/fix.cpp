#include "fix.hpp"

#include <cstddef>
#include <map>
#include <sstream>
#include <vector>

#include "concurrency.hpp"
#include "token.hpp"

namespace vmincqr::lint {
namespace {

bool is_header_path(const std::string& path) {
  return path.size() >= 4 && path.compare(path.size() - 4, 4, ".hpp") == 0;
}

/// Replaces every `std::endl` / `endl` token with `"\n"`. Works on byte
/// offsets from the token stream, so occurrences in comments and string
/// literals are untouched.
std::string fix_no_endl(const std::string& content) {
  const Unit unit = tokenize(content);
  struct Span {
    std::size_t begin;
    std::size_t end;  // half-open byte range to replace
  };
  std::vector<Span> spans;
  const auto& t = unit.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent || t[i].text != "endl") continue;
    if (is_allowed(unit, "no-endl", t[i].line)) continue;
    std::size_t begin = t[i].offset;
    // Swallow a directly preceding `std::` qualifier.
    if (i >= 2 && t[i - 1].text == "::" && t[i - 2].text == "std") {
      begin = t[i - 2].offset;
    }
    spans.push_back({begin, t[i].offset + 4});
  }
  std::string out;
  out.reserve(content.size());
  std::size_t pos = 0;
  for (const Span& span : spans) {
    out += content.substr(pos, span.begin - pos);
    out += "\"\\n\"";
    pos = span.end;
  }
  out += content.substr(pos);
  return out;
}

/// Inserts `#pragma once` after the leading comment block of a header that
/// has none anywhere. A header whose pragma merely sits in the wrong place
/// is left for a human — moving directives around blind is not "safe".
std::string fix_pragma_once(const std::string& content) {
  const Unit unit = tokenize(content);
  for (const auto& [line, text] : unit.directives) {
    (void)line;
    if (text == "#pragma once") return content;
  }
  if (!unit.directives.empty() && is_allowed(unit, "pragma-once",
                                             unit.directives.front().first)) {
    return content;
  }
  // Skip the leading run of full-line comments and blank lines.
  std::size_t pos = 0;
  while (pos < content.size()) {
    // Blank line.
    std::size_t probe = pos;
    while (probe < content.size() &&
           (content[probe] == ' ' || content[probe] == '\t')) {
      ++probe;
    }
    if (probe < content.size() && content[probe] == '\n') {
      pos = probe + 1;
      continue;
    }
    // Line comment.
    if (probe + 1 < content.size() && content[probe] == '/' &&
        content[probe + 1] == '/') {
      const auto nl = content.find('\n', probe);
      if (nl == std::string::npos) break;
      pos = nl + 1;
      continue;
    }
    // Block comment.
    if (probe + 1 < content.size() && content[probe] == '/' &&
        content[probe + 1] == '*') {
      const auto close = content.find("*/", probe + 2);
      if (close == std::string::npos) break;
      const auto nl = content.find('\n', close + 2);
      pos = nl == std::string::npos ? content.size() : nl + 1;
      continue;
    }
    break;
  }
  return content.substr(0, pos) + "#pragma once\n" + content.substr(pos);
}

const std::map<std::string, std::string>& sorted_counterpart() {
  static const std::map<std::string, std::string> m = {
      {"unordered_map", "map"},
      {"unordered_set", "set"},
      {"unordered_multimap", "multimap"},
      {"unordered_multiset", "multiset"}};
  return m;
}

/// Rewrites every std::unordered_{map,set,...} in the TU to its sorted
/// counterpart — declarations, temporaries, and the matching #include lines
/// — when the TU carries at least one live (non-allowed) unordered-iteration
/// finding. The swap is TU-wide because a declaration must flip for any
/// iteration over it to become ordered. It is skipped wholesale when any
/// unordered type passes extra template arguments (a custom hasher or
/// equality has no sorted equivalent; that finding stays diagnose-only).
std::string fix_unordered_iteration(const std::string& path,
                                    const std::string& content) {
  const Unit unit = tokenize(content);
  bool live = false;
  for (const auto& d : concurrency_rules(path, unit)) {
    if (d.rule == "unordered-iteration" && !is_allowed(unit, d.rule, d.line)) {
      live = true;
      break;
    }
  }
  if (!live) return content;

  const auto& t = unit.tokens;
  struct Span {
    std::size_t begin;
    std::size_t end;
    const std::string* replacement;
  };
  std::vector<Span> spans;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent) continue;
    const auto it = sorted_counterpart().find(t[i].text);
    if (it == sorted_counterpart().end()) continue;
    // Count top-level commas in the template argument list: more than one
    // for a map (Key, Value) or more than zero for a set (Key) means a
    // custom hasher — not mechanically rewritable, bail on the whole TU.
    if (i + 1 < t.size() && t[i + 1].text == "<") {
      int depth = 0;
      std::size_t commas = 0;
      for (std::size_t j = i + 1; j < t.size(); ++j) {
        const std::string& x = t[j].text;
        if (x == "<" || x == "(" || x == "[" || x == "{") ++depth;
        if (x == ">" || x == ")" || x == "]" || x == "}") {
          if (--depth == 0) break;
        }
        if (x == "," && depth == 1) ++commas;
      }
      const bool is_map = t[i].text == "unordered_map" ||
                          t[i].text == "unordered_multimap";
      if (commas > (is_map ? 1u : 0u)) return content;
    }
    spans.push_back({t[i].offset, t[i].offset + t[i].text.size(), &it->second});
  }

  std::string out;
  out.reserve(content.size());
  std::size_t pos = 0;
  for (const Span& span : spans) {
    out += content.substr(pos, span.begin - pos);
    out += *span.replacement;
    pos = span.end;
  }
  out += content.substr(pos);

  // The include directives are not tokens; rewrite them line by line.
  std::istringstream in(out);
  std::ostringstream rewritten;
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (!first) rewritten << '\n';
    first = false;
    std::size_t probe = line.find_first_not_of(" \t");
    if (probe != std::string::npos && line.compare(probe, 1, "#") == 0) {
      for (const auto& [unordered, sorted] : sorted_counterpart()) {
        const std::string from = "<" + unordered + ">";
        const std::size_t at = line.find(from);
        if (at != std::string::npos) {
          line.replace(at, from.size(), "<" + sorted + ">");
        }
      }
    }
    rewritten << line;
  }
  if (!out.empty() && out.back() == '\n') rewritten << '\n';
  return rewritten.str();
}

}  // namespace

std::string apply_fixes(const std::string& path, const std::string& content) {
  std::string out = fix_no_endl(content);
  if (is_header_path(path)) out = fix_pragma_once(out);
  out = fix_unordered_iteration(path, out);
  return out;
}

}  // namespace vmincqr::lint
