// Tests for the elastic-net regressor (coordinate descent) and its CV
// lambda selection.
#include <gtest/gtest.h>

#include <cmath>

#include "models/elastic_net.hpp"
#include "rng/rng.hpp"
#include "stats/metrics.hpp"

namespace vmincqr::models {
namespace {

// Sparse ground truth: only 3 of 40 features matter.
struct SparseProblem {
  Matrix x;
  Vector y;
};

SparseProblem make_sparse(std::size_t n, double noise, std::uint64_t seed) {
  rng::Rng rng(seed);
  SparseProblem p{Matrix(n, 40), Vector(n)};
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t c = 0; c < 40; ++c) p.x(i, c) = rng.normal();
    p.y[i] = 2.0 * p.x(i, 0) - 1.5 * p.x(i, 7) + 0.8 * p.x(i, 21) +
             rng.normal(0.0, noise);
  }
  return p;
}

TEST(ElasticNet, ValidatesConfig) {
  ElasticNetConfig bad;
  bad.lambda = -1.0;
  EXPECT_THROW(ElasticNetRegressor{bad}, std::invalid_argument);
  ElasticNetConfig bad2;
  bad2.l1_ratio = 1.5;
  EXPECT_THROW(ElasticNetRegressor{bad2}, std::invalid_argument);
}

TEST(ElasticNet, NearOlsAtTinyLambda) {
  const auto p = make_sparse(300, 0.05, 1);
  ElasticNetConfig config;
  config.lambda = 1e-6;
  ElasticNetRegressor model(config);
  model.fit(p.x, p.y);
  EXPECT_GT(stats::r_squared(p.y, model.predict(p.x)), 0.995);
}

TEST(ElasticNet, LassoRecoversSupport) {
  const auto p = make_sparse(300, 0.05, 2);
  ElasticNetConfig config;
  config.lambda = 0.05;
  config.l1_ratio = 1.0;  // pure lasso
  ElasticNetRegressor model(config);
  model.fit(p.x, p.y);
  const auto selected = model.selected_features();
  ASSERT_GE(selected.size(), 3u);
  // The three true features must be the strongest ones.
  EXPECT_EQ(selected[0], 0u);
  EXPECT_EQ(selected[1], 7u);
  EXPECT_EQ(selected[2], 21u);
  // Most noise coefficients are exactly zero.
  EXPECT_LT(selected.size(), 12u);
}

TEST(ElasticNet, HeavyLambdaShrinksEverything) {
  const auto p = make_sparse(200, 0.1, 3);
  ElasticNetConfig config;
  config.lambda = 100.0;
  config.l1_ratio = 1.0;
  ElasticNetRegressor model(config);
  model.fit(p.x, p.y);
  EXPECT_TRUE(model.selected_features().empty());
  // Prediction collapses to the label mean.
  const Vector pred = model.predict(p.x);
  for (std::size_t i = 1; i < pred.size(); ++i) {
    EXPECT_NEAR(pred[i], pred[0], 1e-9);
  }
}

TEST(ElasticNet, RidgeModeKeepsAllFeatures) {
  const auto p = make_sparse(200, 0.1, 4);
  ElasticNetConfig config;
  config.lambda = 0.01;
  config.l1_ratio = 0.0;  // pure ridge: no exact zeros
  ElasticNetRegressor model(config);
  model.fit(p.x, p.y);
  EXPECT_EQ(model.selected_features().size(), 40u);
}

TEST(ElasticNet, HandlesConstantColumns) {
  rng::Rng rng(5);
  Matrix x(60, 2);
  Vector y(60);
  for (std::size_t i = 0; i < 60; ++i) {
    x(i, 0) = rng.normal();
    x(i, 1) = 3.0;  // constant
    y[i] = x(i, 0);
  }
  ElasticNetRegressor model;
  model.fit(x, y);
  EXPECT_GT(stats::r_squared(y, model.predict(x)), 0.98);
  EXPECT_DOUBLE_EQ(model.coefficients()[1], 0.0);
}

TEST(ElasticNet, ConvergesAndReportsIterations) {
  const auto p = make_sparse(150, 0.1, 6);
  ElasticNetRegressor model;
  model.fit(p.x, p.y);
  EXPECT_GT(model.iterations_used(), 0);
  EXPECT_LT(model.iterations_used(), 1000);
}

TEST(ElasticNet, CloneConfigBehavesIdentically) {
  const auto p = make_sparse(100, 0.1, 7);
  ElasticNetRegressor model;
  model.fit(p.x, p.y);
  auto clone = model.clone_config();
  clone->fit(p.x, p.y);
  const Vector a = model.predict(p.x), b = clone->predict(p.x);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
}

TEST(ElasticNetCv, PicksAReasonableLambda) {
  const auto train = make_sparse(200, 0.3, 8);
  const auto test = make_sparse(200, 0.3, 9);
  const auto model = elastic_net_cv(train.x, train.y,
                                    {1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0},
                                    /*l1_ratio=*/0.9, /*n_folds=*/4,
                                    /*seed=*/11);
  EXPECT_GT(stats::r_squared(test.y, model.predict(test.x)), 0.9);
  EXPECT_THROW(elastic_net_cv(train.x, train.y, {}, 0.5, 4, 11),
               std::invalid_argument);
}

TEST(ElasticNet, ConstantColumnKeepsZeroCoefficient) {
  // A zero-variance feature has col_sq == 0 after standardization; the
  // coordinate-descent skip must hold its coefficient at exactly zero
  // instead of dividing by the (near-)zero curvature.
  rng::Rng rng(7);
  Matrix x(60, 3);
  Vector y(60);
  for (std::size_t i = 0; i < 60; ++i) {
    x(i, 0) = rng.normal();
    x(i, 1) = 4.2;  // constant
    x(i, 2) = rng.normal();
    y[i] = 1.5 * x(i, 0) - 0.5 * x(i, 2) + rng.normal(0.0, 0.01);
  }
  ElasticNetConfig config;
  config.l1_ratio = 1.0;  // pure lasso: no l2 term to mask a blow-up
  ElasticNetRegressor model(config);
  model.fit(x, y);
  EXPECT_EQ(model.coefficients()[1], 0.0);
  for (const double p : model.predict(x)) EXPECT_TRUE(std::isfinite(p));
}

}  // namespace
}  // namespace vmincqr::models
