#include "silicon/structural.hpp"

#include <cmath>
#include <stdexcept>

#include "netlist/ring_oscillator.hpp"
#include "netlist/sta.hpp"
#include "netlist/vmin_solver.hpp"

namespace vmincqr::silicon {

namespace {

/// Per-chip gate-level state feeding the STA threshold-shift hook.
struct ChipGateState {
  const ChipLatent* chip = nullptr;
  const AgingModel* aging = nullptr;
  const netlist::Netlist* design = nullptr;
  std::vector<double> local_mismatch;  ///< per-gate Vth offset (V)
  double age_shift = 0.0;              ///< chip-level aging dVth at read point

  double operator()(std::size_t gate_index) const {
    const auto& gate = design->gates()[gate_index];
    return chip->dvth + local_mismatch[gate_index] +
           gate.aging_weight * age_shift;
  }
};

}  // namespace

StructuralDataset generate_structural_dataset(const StructuralConfig& config) {
  if (config.n_chips == 0 || config.read_points_hours.empty() ||
      config.vmin_temperatures_c.empty() || config.n_ring_oscillators == 0) {
    throw std::invalid_argument(
        "generate_structural_dataset: empty configuration");
  }

  rng::Rng root(config.seed);
  rng::Rng design_rng = root.fork();
  rng::Rng population_rng = root.fork();
  rng::Rng measurement_rng = root.fork();

  const netlist::Netlist design =
      netlist::Netlist::random(config.design, design_rng);
  const ProcessModel process(config.process);
  const AgingModel aging(config.aging);

  // Derive the clock period: the nominal chip (zero shifts) must close
  // timing exactly at target_nominal_vmin, 25 C.
  const netlist::TimingResult nominal = netlist::run_sta(
      design, config.delay, config.target_nominal_vmin, 25.0, nullptr);
  if (!nominal.functional) {
    throw std::runtime_error(
        "generate_structural_dataset: design not functional at the target "
        "nominal Vmin");
  }
  const double clock_period_ns = nominal.worst_arrival_ns;

  // RO sites: fixed per design (catalogue), with per-site nominal offsets.
  std::vector<netlist::RingOscillator> ros(config.n_ring_oscillators);
  for (auto& ro : ros) {
    ro.n_stages = config.ro_stages;
    ro.stage_mismatch = design_rng.normal(0.0, 0.002);
  }

  std::vector<ChipLatent> latents =
      process.sample_population(config.n_chips, population_rng);

  // Feature catalogue: 3 IDDQ proxies + ROs per read point.
  std::vector<data::FeatureInfo> info;
  info.push_back({"iddq_proxy_a", data::FeatureType::kParametric, 25.0, 0.0});
  info.push_back({"iddq_proxy_b", data::FeatureType::kParametric, 125.0, 0.0});
  info.push_back({"vth_probe", data::FeatureType::kParametric, 25.0, 0.0});
  for (double t : config.read_points_hours) {
    for (std::size_t r = 0; r < ros.size(); ++r) {
      info.push_back({"ro_" + std::to_string(r) + "_t" +
                          std::to_string(static_cast<int>(t)),
                      data::FeatureType::kRodMonitor, 25.0, t});
    }
  }

  linalg::Matrix features(config.n_chips, info.size());
  std::vector<data::LabelSeries> labels;
  for (double t : config.read_points_hours) {
    for (double temp : config.vmin_temperatures_c) {
      labels.push_back({t, temp, linalg::Vector(config.n_chips, 0.0)});
    }
  }

  for (std::size_t chip_idx = 0; chip_idx < config.n_chips; ++chip_idx) {
    rng::Rng chip_rng = measurement_rng.fork();
    const ChipLatent& chip = latents[chip_idx];

    ChipGateState state;
    state.chip = &chip;
    state.aging = &aging;
    state.design = &design;
    state.local_mismatch.resize(design.gates().size());
    const double local_sigma =
        config.local_mismatch_sigma * (0.5 + chip.mismatch);
    for (std::size_t g = 0; g < design.gates().size(); ++g) {
      state.local_mismatch[g] =
          chip_rng.normal(0.0, local_sigma) *
          design.gates()[g].mismatch_sensitivity;
    }

    // Parametric proxies (leakage is exponential in -Vth).
    std::size_t col = 0;
    features(chip_idx, col++) =
        std::exp(-chip.dvth / 0.02) * chip.leak_corner *
        (1.0 + chip_rng.normal(0.0, 0.03));
    features(chip_idx, col++) =
        std::exp(-chip.dvth / 0.015) * chip.leak_corner * 8.0 *
        (1.0 + chip_rng.normal(0.0, 0.03));
    features(chip_idx, col++) =
        0.30 + chip.dvth + chip_rng.normal(0.0, 0.0015);

    // RO frequencies per read point (25 C readout).
    for (double t : config.read_points_hours) {
      const double age = aging.delta_vth(chip, core::Hours{t});
      for (const auto& ro : ros) {
        const double freq = netlist::ring_oscillator_frequency(
            ro, config.delay, config.ro_vdd, chip.dvth + age, 25.0);
        features(chip_idx, col++) =
            freq * (1.0 + chip_rng.normal(0.0, config.ro_noise_rel));
      }
    }
    if (col != info.size()) {
      throw std::logic_error("generate_structural_dataset: column mismatch");
    }

    // Vmin labels from timing closure.
    std::size_t series = 0;
    for (double t : config.read_points_hours) {
      state.age_shift = aging.delta_vth(chip, core::Hours{t});
      for (double temp : config.vmin_temperatures_c) {
        const auto solution = netlist::solve_vmin(
            design, config.delay, clock_period_ns, temp,
            [&state](std::size_t g) { return state(g); });
        double vmin = solution.feasible ? solution.vmin : 1.25;
        vmin += chip_rng.normal(0.0, config.vmin_noise_v);
        labels[series++].values[chip_idx] = vmin;
      }
    }
  }

  StructuralDataset out{
      data::Dataset(std::move(features), std::move(info), std::move(labels)),
      std::move(latents), clock_period_ns};
  return out;
}

}  // namespace vmincqr::silicon
