#include "data/dataset.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>

namespace vmincqr::data {

namespace {
bool key_match(double a, double b) {
  // Read points and temperatures are catalogue values (0, 24, ..., -45, 25,
  // 125); exact comparison with a tiny tolerance guards accumulated
  // arithmetic on the caller side.
  return std::abs(a - b) < 1e-9;
}
}  // namespace

std::string to_string(FeatureType t) {
  switch (t) {
    case FeatureType::kParametric:
      return "parametric";
    case FeatureType::kRodMonitor:
      return "rod";
    case FeatureType::kCpdMonitor:
      return "cpd";
  }
  return "unknown";
}

// vmincqr-lint: allow(matrix-by-value)  (sink parameter, moved below)
Dataset::Dataset(Matrix features, std::vector<FeatureInfo> feature_info,
                 std::vector<LabelSeries> labels)
    : features_(std::move(features)),
      feature_info_(std::move(feature_info)),
      labels_(std::move(labels)) {
  if (feature_info_.size() != features_.cols()) {
    throw std::invalid_argument(
        "Dataset: feature_info size does not match feature columns");
  }
  for (const auto& series : labels_) {
    if (series.values.size() != features_.rows()) {
      throw std::invalid_argument(
          "Dataset: label series length does not match chip count");
    }
  }
}

const LabelSeries& Dataset::label(double read_point_hours,
                                  double temperature_c) const {
  for (const auto& series : labels_) {
    if (key_match(series.read_point_hours, read_point_hours) &&
        key_match(series.temperature_c, temperature_c)) {
      return series;
    }
  }
  throw std::out_of_range("Dataset::label: no series at t=" +
                          std::to_string(read_point_hours) + "h, " +
                          std::to_string(temperature_c) + "C");
}

bool Dataset::has_label(double read_point_hours, double temperature_c) const {
  for (const auto& series : labels_) {
    if (key_match(series.read_point_hours, read_point_hours) &&
        key_match(series.temperature_c, temperature_c)) {
      return true;
    }
  }
  return false;
}

std::vector<double> Dataset::label_read_points() const {
  std::set<double> s;
  for (const auto& series : labels_) s.insert(series.read_point_hours);
  return {s.begin(), s.end()};
}

std::vector<double> Dataset::label_temperatures() const {
  std::set<double> s;
  for (const auto& series : labels_) s.insert(series.temperature_c);
  return {s.begin(), s.end()};
}

std::vector<std::size_t> Dataset::select_features(
    const std::function<bool(const FeatureInfo&)>& pred) const {
  std::vector<std::size_t> out;
  out.reserve(feature_info_.size());
  for (std::size_t j = 0; j < feature_info_.size(); ++j) {
    if (pred(feature_info_[j])) out.push_back(j);
  }
  return out;
}

Dataset Dataset::take_chips(const std::vector<std::size_t>& chip_indices) const {
  Matrix f = features_.take_rows(chip_indices);
  std::vector<LabelSeries> labels = labels_;
  for (auto& series : labels) {
    Vector sub(chip_indices.size());
    for (std::size_t i = 0; i < chip_indices.size(); ++i) {
      if (chip_indices[i] >= series.values.size()) {
        throw std::out_of_range("Dataset::take_chips: index out of range");
      }
      sub[i] = series.values[chip_indices[i]];
    }
    series.values = std::move(sub);
  }
  return Dataset(std::move(f), feature_info_, std::move(labels));
}

Dataset Dataset::take_features(
    const std::vector<std::size_t>& feature_indices) const {
  Matrix f = features_.take_cols(feature_indices);
  std::vector<FeatureInfo> info;
  info.reserve(feature_indices.size());
  for (auto j : feature_indices) info.push_back(feature_info_.at(j));
  return Dataset(std::move(f), std::move(info), labels_);
}

}  // namespace vmincqr::data
