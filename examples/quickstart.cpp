// Quickstart: generate a synthetic chip population, fit CQR on top of
// linear quantile regression, and print calibrated Vmin intervals.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "conformal/cqr.hpp"
#include "core/experiment.hpp"
#include "core/pipeline.hpp"
#include "data/feature_select.hpp"
#include "silicon/dataset_gen.hpp"
#include "stats/metrics.hpp"

using namespace vmincqr;

int main() {
  // 1. Generate the synthetic industrial dataset (156 chips, Table II shape).
  silicon::GeneratorConfig gen_config;
  const auto generated = silicon::generate_dataset(gen_config);
  const data::Dataset& ds = generated.dataset;
  std::printf("dataset: %zu chips x %zu features, %zu label series\n",
              ds.n_chips(), ds.n_features(), ds.labels().size());

  // 2. Pick a scenario: Vmin at 25C after 168 h of stress, all features.
  core::Scenario scenario{168.0, 25.0, core::FeatureSet::kBoth};
  const core::ScenarioData data = core::assemble_scenario(ds, scenario);
  std::printf("scenario %s: %zu legal feature columns\n",
              core::describe(scenario).c_str(), data.columns.size());

  // 3. Split chips: train on the first 120, test on the rest.
  std::vector<std::size_t> train_rows, test_rows;
  for (std::size_t i = 0; i < ds.n_chips(); ++i) {
    (i < 120 ? train_rows : test_rows).push_back(i);
  }
  const auto x_train = data.x.take_rows(train_rows);
  linalg::Vector y_train(train_rows.size());
  for (std::size_t i = 0; i < train_rows.size(); ++i) {
    y_train[i] = data.y[train_rows[i]];
  }
  const auto x_test = data.x.take_rows(test_rows);
  linalg::Vector y_test(test_rows.size());
  for (std::size_t i = 0; i < test_rows.size(); ++i) {
    y_test[i] = data.y[test_rows[i]];
  }

  // 4. CFS feature selection (8 features), then CQR over linear QR.
  const auto cols = data::cfs_select(x_train, y_train, 8);
  const double alpha = 0.1;  // 90% target coverage
  conformal::ConformalizedQuantileRegressor cqr(
      core::MiscoverageAlpha{alpha}, models::make_quantile_pair(models::ModelKind::kLinear, core::MiscoverageAlpha{alpha}));
  cqr.fit(x_train.take_cols(cols), y_train);

  // 5. Predict intervals for the held-out chips.
  const auto band = cqr.predict_interval(x_test.take_cols(cols));
  const double coverage =
      stats::interval_coverage(y_test, band.lower, band.upper);
  const double length = stats::mean_interval_length(band.lower, band.upper);
  std::printf("\nCQR Linear Regression @ alpha=%.2f\n", alpha);
  std::printf("  calibration shift q_hat = %+.2f mV\n", cqr.q_hat() * 1e3);
  std::printf("  test coverage  = %.1f%% (target >= %.0f%%)\n",
              coverage * 100.0, (1.0 - alpha) * 100.0);
  std::printf("  mean interval  = %.2f mV\n\n", length * 1e3);

  std::printf("first 8 held-out chips:\n");
  std::printf("  %-6s %-12s %-12s %-12s %s\n", "chip", "true (V)", "lo (V)",
              "hi (V)", "covered");
  for (std::size_t i = 0; i < 8 && i < y_test.size(); ++i) {
    const bool hit = y_test[i] >= band.lower[i] && y_test[i] <= band.upper[i];
    std::printf("  %-6zu %-12.4f %-12.4f %-12.4f %s\n", test_rows[i],
                y_test[i], band.lower[i], band.upper[i], hit ? "yes" : "NO");
  }
  return 0;
}
