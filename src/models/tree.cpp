#include "models/tree.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <utility>

#include "parallel/parallel_for.hpp"

namespace vmincqr::models {
namespace {

/// Node work (rows x features) below which the split search stays inline:
/// a pool dispatch costs more than the scan itself at the bottom of the
/// tree. Shape-dependent only — the chunk grid, and therefore the chosen
/// split, is identical either way.
constexpr std::size_t kMinParallelSplitWork = 4096;

/// Best split seen by one feature chunk. gain==0 means "no admissible
/// split", matching the sequential search's best_gain <= 0 leaf test.
struct SplitCandidate {
  double gain = 0.0;
  std::size_t feature = 0;
  double threshold = 0.0;
};

}  // namespace

void RegressionTree::fit(const Matrix& x, const Vector& grad,
                         const Vector& hess, const TreeConfig& config,
                         const std::vector<std::size_t>& rows) {
  if (x.rows() == 0 || x.cols() == 0) {
    throw std::invalid_argument("RegressionTree::fit: empty design matrix");
  }
  if (grad.size() != x.rows() || hess.size() != x.rows()) {
    throw std::invalid_argument("RegressionTree::fit: grad/hess size mismatch");
  }
  nodes_.clear();
  leaf_node_index_.clear();
  n_leaves_ = 0;
  train_leaf_ids_.assign(x.rows(), -1);

  std::vector<std::size_t> all_rows = rows;
  if (all_rows.empty()) {
    all_rows.resize(x.rows());
    std::iota(all_rows.begin(), all_rows.end(), std::size_t{0});
  }
  split_sort_scratch_.assign(x.cols(), {});
  build(x, grad, hess, config, all_rows, 0);
  split_sort_scratch_.clear();
  split_sort_scratch_.shrink_to_fit();
  flat_.clear();
  flat_.add_tree(nodes_);
}

// Fast-tier fit path: histogram splits over pre-binned codes relax the
// exact-scan split choice (thresholds limited to binner edges).
// vmincqr: numeric-tier(tolerance)
void RegressionTree::fit_binned(const Matrix& x, const Vector& grad,
                                const Vector& hess, const TreeConfig& config,
                                const core::FeatureBinner& binner,
                                const std::vector<std::uint16_t>& codes,
                                const std::vector<std::size_t>& rows) {
  if (x.rows() == 0 || x.cols() == 0) {
    throw std::invalid_argument(
        "RegressionTree::fit_binned: empty design matrix");
  }
  if (grad.size() != x.rows() || hess.size() != x.rows()) {
    throw std::invalid_argument(
        "RegressionTree::fit_binned: grad/hess size mismatch");
  }
  if (binner.n_features() != x.cols() ||
      codes.size() != x.rows() * x.cols()) {
    throw std::invalid_argument(
        "RegressionTree::fit_binned: binner/codes shape mismatch");
  }
  nodes_.clear();
  leaf_node_index_.clear();
  n_leaves_ = 0;
  train_leaf_ids_.assign(x.rows(), -1);

  std::vector<std::size_t> all_rows = rows;
  if (all_rows.empty()) {
    all_rows.resize(x.rows());
    std::iota(all_rows.begin(), all_rows.end(), std::size_t{0});
  }
  build_binned(grad, hess, config, binner, codes, x.cols(), all_rows, 0);
  flat_.clear();
  flat_.add_tree(nodes_);
}

void RegressionTree::import_nodes(std::vector<TreeNode> nodes) {
  if (nodes.empty()) {
    throw std::invalid_argument("RegressionTree::import_nodes: empty tree");
  }
  const auto n = static_cast<std::int32_t>(nodes.size());
  std::size_t n_leaves = 0;
  for (const auto& node : nodes) {
    if (node.is_leaf) {
      ++n_leaves;
      continue;
    }
    if (node.left < 0 || node.left >= n || node.right < 0 || node.right >= n) {
      throw std::invalid_argument(
          "RegressionTree::import_nodes: dangling child index");
    }
  }
  std::vector<std::int32_t> leaf_index(n_leaves, -1);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const auto& node = nodes[i];
    if (!node.is_leaf) continue;
    if (node.leaf_id < 0 || static_cast<std::size_t>(node.leaf_id) >= n_leaves ||
        leaf_index[static_cast<std::size_t>(node.leaf_id)] != -1) {
      throw std::invalid_argument(
          "RegressionTree::import_nodes: leaf ids not dense");
    }
    leaf_index[static_cast<std::size_t>(node.leaf_id)] =
        static_cast<std::int32_t>(i);
  }
  nodes_ = std::move(nodes);
  leaf_node_index_ = std::move(leaf_index);
  n_leaves_ = n_leaves;
  train_leaf_ids_.clear();
  flat_.clear();
  flat_.add_tree(nodes_);
}

std::int32_t RegressionTree::build(const Matrix& x, const Vector& grad,
                                   const Vector& hess, const TreeConfig& config,
                                   std::vector<std::size_t>& rows, int depth) {
  double g_total = 0.0, h_total = 0.0;
  for (auto r : rows) {
    g_total += grad[r];
    h_total += hess[r];
  }

  const auto make_leaf = [&]() {
    TreeNode leaf;
    leaf.is_leaf = true;
    leaf.value = -g_total / (h_total + config.lambda);
    leaf.leaf_id = static_cast<std::int32_t>(n_leaves_++);
    const auto node_index = static_cast<std::int32_t>(nodes_.size());
    nodes_.push_back(leaf);
    leaf_node_index_.push_back(node_index);
    for (auto r : rows) train_leaf_ids_[r] = leaf.leaf_id;
    return node_index;
  };

  if (depth >= config.max_depth || rows.size() < 2 * config.min_samples_leaf ||
      rows.size() < 2) {
    return make_leaf();
  }

  // Exact greedy split search, parallel across features: each chunk scans
  // its features against a private sort buffer, then the per-chunk bests
  // fold in ascending feature order — so the winner (first strict maximum)
  // matches a sequential feature-order scan at every thread count.
  const double parent_score = g_total * g_total / (h_total + config.lambda);
  const bool use_pool = rows.size() * x.cols() >= kMinParallelSplitWork;
  const SplitCandidate best = parallel::parallel_deterministic_reduce(
      x.cols(), /*grain=*/1, SplitCandidate{},
      [&](std::size_t f_begin, std::size_t f_end) {
        SplitCandidate local;
        for (std::size_t f = f_begin; f < f_end; ++f) {
          std::vector<std::size_t>& sorted = split_sort_scratch_[f];
          sorted.assign(rows.begin(), rows.end());
          // Row index breaks value ties so the scan order is a pure
          // function of the data, not of the previous feature's sort.
          std::sort(sorted.begin(), sorted.end(),
                    [&](std::size_t a, std::size_t b) {
                      if (x(a, f) != x(b, f)) return x(a, f) < x(b, f);
                      return a < b;
                    });
          double g_left = 0.0, h_left = 0.0;
          for (std::size_t i = 0; i + 1 < sorted.size(); ++i) {
            const auto r = sorted[i];
            g_left += grad[r];
            h_left += hess[r];
            const double v = x(r, f);
            const double v_next = x(sorted[i + 1], f);
            if (v == v_next) continue;  // cannot split between equal values
            const std::size_t n_left = i + 1;
            const std::size_t n_right = sorted.size() - n_left;
            if (n_left < config.min_samples_leaf ||
                n_right < config.min_samples_leaf) {
              continue;
            }
            const double g_right = g_total - g_left;
            const double h_right = h_total - h_left;
            if (h_left < config.min_child_weight ||
                h_right < config.min_child_weight) {
              continue;
            }
            const double gain =
                0.5 *
                    (g_left * g_left / (h_left + config.lambda) +
                     g_right * g_right / (h_right + config.lambda) -
                     parent_score) -
                config.gamma;
            if (gain > local.gain) {
              local.gain = gain;
              local.feature = f;
              local.threshold = 0.5 * (v + v_next);
            }
          }
        }
        return local;
      },
      [](SplitCandidate acc, SplitCandidate part) {
        return part.gain > acc.gain ? part : acc;
      },
      use_pool);

  if (best.gain <= 0.0) return make_leaf();

  std::vector<std::size_t> left_rows, right_rows;
  left_rows.reserve(rows.size());
  right_rows.reserve(rows.size());
  for (auto r : rows) {
    (x(r, best.feature) <= best.threshold ? left_rows : right_rows).push_back(r);
  }
  if (left_rows.empty() || right_rows.empty()) return make_leaf();

  const auto node_index = static_cast<std::int32_t>(nodes_.size());
  nodes_.emplace_back();  // placeholder; children may reallocate nodes_
  nodes_[node_index].is_leaf = false;
  nodes_[node_index].feature = best.feature;
  nodes_[node_index].threshold = best.threshold;
  nodes_[node_index].gain = best.gain;

  const std::int32_t left = build(x, grad, hess, config, left_rows, depth + 1);
  const std::int32_t right = build(x, grad, hess, config, right_rows, depth + 1);
  nodes_[node_index].left = left;
  nodes_[node_index].right = right;
  return node_index;
}

std::int32_t RegressionTree::build_binned(
    const Vector& grad, const Vector& hess, const TreeConfig& config,
    const core::FeatureBinner& binner, const std::vector<std::uint16_t>& codes,
    std::size_t n_features, std::vector<std::size_t>& rows, int depth) {
  double g_total = 0.0, h_total = 0.0;
  for (auto r : rows) {
    g_total += grad[r];
    h_total += hess[r];
  }

  const auto make_leaf = [&]() {
    TreeNode leaf;
    leaf.is_leaf = true;
    leaf.value = -g_total / (h_total + config.lambda);
    leaf.leaf_id = static_cast<std::int32_t>(n_leaves_++);
    const auto node_index = static_cast<std::int32_t>(nodes_.size());
    nodes_.push_back(leaf);
    leaf_node_index_.push_back(node_index);
    for (auto r : rows) train_leaf_ids_[r] = leaf.leaf_id;
    return node_index;
  };

  if (depth >= config.max_depth || rows.size() < 2 * config.min_samples_leaf ||
      rows.size() < 2) {
    return make_leaf();
  }

  // Histogram split search, parallel across features like the exact scan:
  // each feature accumulates one G/H/count histogram over the node's rows
  // (O(n)), then sweeps the bin boundaries in ascending order. Per-chunk
  // bests fold in ascending feature order, so the winner is the first strict
  // maximum of a sequential (feature, boundary) scan at every thread count.
  const double parent_score = g_total * g_total / (h_total + config.lambda);
  const bool use_pool = rows.size() * n_features >= kMinParallelSplitWork;
  const SplitCandidate best = parallel::parallel_deterministic_reduce(
      n_features, /*grain=*/1, SplitCandidate{},
      [&](std::size_t f_begin, std::size_t f_end) {
        SplitCandidate local;
        std::vector<double> g_hist, h_hist;
        std::vector<std::size_t> n_hist;
        for (std::size_t f = f_begin; f < f_end; ++f) {
          const std::size_t bins = binner.n_bins(f);
          if (bins < 2) continue;  // constant feature: nothing to split
          g_hist.assign(bins, 0.0);
          h_hist.assign(bins, 0.0);
          n_hist.assign(bins, 0);
          for (auto r : rows) {
            const std::uint16_t b = codes[r * n_features + f];
            g_hist[b] += grad[r];
            h_hist[b] += hess[r];
            ++n_hist[b];
          }
          double g_left = 0.0, h_left = 0.0;
          std::size_t n_left = 0;
          for (std::size_t b = 0; b + 1 < bins; ++b) {
            g_left += g_hist[b];
            h_left += h_hist[b];
            n_left += n_hist[b];
            const std::size_t n_right = rows.size() - n_left;
            if (n_left < config.min_samples_leaf ||
                n_right < config.min_samples_leaf) {
              continue;
            }
            const double g_right = g_total - g_left;
            const double h_right = h_total - h_left;
            if (h_left < config.min_child_weight ||
                h_right < config.min_child_weight) {
              continue;
            }
            const double gain =
                0.5 *
                    (g_left * g_left / (h_left + config.lambda) +
                     g_right * g_right / (h_right + config.lambda) -
                     parent_score) -
                config.gamma;
            if (gain > local.gain) {
              local.gain = gain;
              local.feature = f;
              local.threshold = binner.edge(f, b);
            }
          }
        }
        return local;
      },
      [](SplitCandidate acc, SplitCandidate part) {
        return part.gain > acc.gain ? part : acc;
      },
      use_pool);

  if (best.gain <= 0.0) return make_leaf();

  // Partition on codes: `code <= boundary` IS `x <= edge` by the binner
  // invariant, so the stored threshold and the code partition agree.
  const std::uint16_t boundary = binner.bin_of(best.feature, best.threshold);
  std::vector<std::size_t> left_rows, right_rows;
  left_rows.reserve(rows.size());
  right_rows.reserve(rows.size());
  for (auto r : rows) {
    (codes[r * n_features + best.feature] <= boundary ? left_rows : right_rows)
        .push_back(r);
  }
  if (left_rows.empty() || right_rows.empty()) return make_leaf();

  const auto node_index = static_cast<std::int32_t>(nodes_.size());
  nodes_.emplace_back();  // placeholder; children may reallocate nodes_
  nodes_[node_index].is_leaf = false;
  nodes_[node_index].feature = best.feature;
  nodes_[node_index].threshold = best.threshold;
  nodes_[node_index].gain = best.gain;

  const std::int32_t left = build_binned(grad, hess, config, binner, codes,
                                         n_features, left_rows, depth + 1);
  const std::int32_t right = build_binned(grad, hess, config, binner, codes,
                                          n_features, right_rows, depth + 1);
  nodes_[node_index].left = left;
  nodes_[node_index].right = right;
  return node_index;
}

double RegressionTree::predict_row(const double* row) const {
  std::int32_t idx = 0;
  while (!nodes_[idx].is_leaf) {
    idx = (row[nodes_[idx].feature] <= nodes_[idx].threshold)
              ? nodes_[idx].left
              : nodes_[idx].right;
  }
  return nodes_[idx].value;
}

std::int32_t RegressionTree::leaf_id_for_row(const double* row) const {
  std::int32_t idx = 0;
  while (!nodes_[idx].is_leaf) {
    idx = (row[nodes_[idx].feature] <= nodes_[idx].threshold)
              ? nodes_[idx].left
              : nodes_[idx].right;
  }
  return nodes_[idx].leaf_id;
}

Vector RegressionTree::predict(const Matrix& x) const {
  if (!fitted()) throw std::logic_error("RegressionTree::predict: not fitted");
  Vector out(x.rows());
  // Row-sharded over the flat SoA planes; identical traversals to
  // predict_row, just cache-blocked (see FlatForest).
  parallel::parallel_for(
      x.rows(), /*grain=*/0,
      [&](std::size_t begin, std::size_t end) {
        flat_.predict_rows(x.row_ptr(begin), end - begin, x.cols(),
                           out.data() + begin);
      },
      /*use_pool=*/x.rows() >= 256);
  return out;
}

void RegressionTree::set_leaf_value(std::int32_t leaf_id, double value) {
  if (leaf_id < 0 || static_cast<std::size_t>(leaf_id) >= n_leaves_) {
    throw std::out_of_range("RegressionTree::set_leaf_value: bad leaf id");
  }
  const std::int32_t node_index = leaf_node_index_[leaf_id];
  nodes_[node_index].value = value;
  flat_.set_node_value(0, static_cast<std::size_t>(node_index), value);
}

void RegressionTree::accumulate_feature_gains(
    std::vector<double>& gains) const {
  for (const auto& node : nodes_) {
    if (node.is_leaf) continue;
    if (node.feature >= gains.size()) {
      throw std::invalid_argument(
          "RegressionTree::accumulate_feature_gains: gains vector too small");
    }
    gains[node.feature] += node.gain;
  }
}

double RegressionTree::leaf_value(std::int32_t leaf_id) const {
  if (leaf_id < 0 || static_cast<std::size_t>(leaf_id) >= n_leaves_) {
    throw std::out_of_range("RegressionTree::leaf_value: bad leaf id");
  }
  return nodes_[leaf_node_index_[leaf_id]].value;
}

}  // namespace vmincqr::models
