// Combinational netlist as a layered DAG, plus a seeded random generator —
// the synthetic "design" whose timing closure defines structural SCAN Vmin.
//
// Node numbering: nodes [0, n_inputs) are primary inputs (zero delay);
// nodes [n_inputs, n_inputs + gates.size()) are gates in topological order
// (a gate's fanins always have smaller node ids). Primary outputs are a
// subset of nodes whose arrival times define the critical path.
#pragma once

#include <cstdint>
#include <vector>

#include "rng/rng.hpp"

namespace vmincqr::netlist {

struct Gate {
  std::size_t cell;                  ///< index into standard_cell_library()
  std::vector<std::size_t> fanins;   ///< node ids (strictly smaller)
  double mismatch_sensitivity = 1.0; ///< scales per-chip local Vth mismatch
  double aging_weight = 1.0;         ///< scales stress-induced Vth shift
};

struct RandomNetlistConfig {
  std::size_t n_inputs = 32;
  std::size_t n_gates = 600;
  std::size_t n_outputs = 16;
  std::size_t max_fanin = 3;
  /// Fanin locality: fanins are drawn from the most recent `window` nodes.
  std::size_t window = 120;
};

class Netlist {
 public:
  /// Constructs from parts; validates topological order and fanin bounds.
  /// Throws std::invalid_argument on violations.
  Netlist(std::size_t n_inputs, std::vector<Gate> gates,
          std::vector<std::size_t> outputs);

  /// Seeded random layered DAG. Deterministic in (config, rng state).
  static Netlist random(const RandomNetlistConfig& config, rng::Rng& rng);

  [[nodiscard]] std::size_t n_inputs() const noexcept { return n_inputs_; }
  [[nodiscard]] std::size_t n_nodes() const noexcept { return n_inputs_ + gates_.size(); }
  [[nodiscard]] const std::vector<Gate>& gates() const noexcept { return gates_; }
  [[nodiscard]] const std::vector<std::size_t>& outputs() const noexcept { return outputs_; }

  /// Gate for a node id >= n_inputs(). Throws std::out_of_range.
  [[nodiscard]] const Gate& gate_at(std::size_t node) const;

 private:
  std::size_t n_inputs_;
  std::vector<Gate> gates_;
  std::vector<std::size_t> outputs_;
};

}  // namespace vmincqr::netlist
