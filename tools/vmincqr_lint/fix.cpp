#include "fix.hpp"

#include <cstddef>
#include <map>
#include <sstream>
#include <vector>

#include <algorithm>

#include "callgraph.hpp"
#include "concurrency.hpp"
#include "hotpath.hpp"
#include "parse.hpp"
#include "token.hpp"

namespace vmincqr::lint {
namespace {

bool is_header_path(const std::string& path) {
  return path.size() >= 4 && path.compare(path.size() - 4, 4, ".hpp") == 0;
}

/// Replaces every `std::endl` / `endl` token with `"\n"`. Works on byte
/// offsets from the token stream, so occurrences in comments and string
/// literals are untouched.
std::string fix_no_endl(const std::string& content) {
  const Unit unit = tokenize(content);
  struct Span {
    std::size_t begin;
    std::size_t end;  // half-open byte range to replace
  };
  std::vector<Span> spans;
  const auto& t = unit.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent || t[i].text != "endl") continue;
    if (is_allowed(unit, "no-endl", t[i].line)) continue;
    std::size_t begin = t[i].offset;
    // Swallow a directly preceding `std::` qualifier.
    if (i >= 2 && t[i - 1].text == "::" && t[i - 2].text == "std") {
      begin = t[i - 2].offset;
    }
    spans.push_back({begin, t[i].offset + 4});
  }
  std::string out;
  out.reserve(content.size());
  std::size_t pos = 0;
  for (const Span& span : spans) {
    out += content.substr(pos, span.begin - pos);
    out += "\"\\n\"";
    pos = span.end;
  }
  out += content.substr(pos);
  return out;
}

/// Inserts `#pragma once` after the leading comment block of a header that
/// has none anywhere. A header whose pragma merely sits in the wrong place
/// is left for a human — moving directives around blind is not "safe".
std::string fix_pragma_once(const std::string& content) {
  const Unit unit = tokenize(content);
  for (const auto& [line, text] : unit.directives) {
    (void)line;
    if (text == "#pragma once") return content;
  }
  if (!unit.directives.empty() && is_allowed(unit, "pragma-once",
                                             unit.directives.front().first)) {
    return content;
  }
  // Skip the leading run of full-line comments and blank lines.
  std::size_t pos = 0;
  while (pos < content.size()) {
    // Blank line.
    std::size_t probe = pos;
    while (probe < content.size() &&
           (content[probe] == ' ' || content[probe] == '\t')) {
      ++probe;
    }
    if (probe < content.size() && content[probe] == '\n') {
      pos = probe + 1;
      continue;
    }
    // Line comment.
    if (probe + 1 < content.size() && content[probe] == '/' &&
        content[probe + 1] == '/') {
      const auto nl = content.find('\n', probe);
      if (nl == std::string::npos) break;
      pos = nl + 1;
      continue;
    }
    // Block comment.
    if (probe + 1 < content.size() && content[probe] == '/' &&
        content[probe + 1] == '*') {
      const auto close = content.find("*/", probe + 2);
      if (close == std::string::npos) break;
      const auto nl = content.find('\n', close + 2);
      pos = nl == std::string::npos ? content.size() : nl + 1;
      continue;
    }
    break;
  }
  return content.substr(0, pos) + "#pragma once\n" + content.substr(pos);
}

const std::map<std::string, std::string>& sorted_counterpart() {
  static const std::map<std::string, std::string> m = {
      {"unordered_map", "map"},
      {"unordered_set", "set"},
      {"unordered_multimap", "multimap"},
      {"unordered_multiset", "multiset"}};
  return m;
}

/// Rewrites every std::unordered_{map,set,...} in the TU to its sorted
/// counterpart — declarations, temporaries, and the matching #include lines
/// — when the TU carries at least one live (non-allowed) unordered-iteration
/// finding. The swap is TU-wide because a declaration must flip for any
/// iteration over it to become ordered. It is skipped wholesale when any
/// unordered type passes extra template arguments (a custom hasher or
/// equality has no sorted equivalent; that finding stays diagnose-only).
std::string fix_unordered_iteration(const std::string& path,
                                    const std::string& content) {
  const Unit unit = tokenize(content);
  bool live = false;
  for (const auto& d : concurrency_rules(path, unit)) {
    if (d.rule == "unordered-iteration" && !is_allowed(unit, d.rule, d.line)) {
      live = true;
      break;
    }
  }
  if (!live) return content;

  const auto& t = unit.tokens;
  struct Span {
    std::size_t begin;
    std::size_t end;
    const std::string* replacement;
  };
  std::vector<Span> spans;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent) continue;
    const auto it = sorted_counterpart().find(t[i].text);
    if (it == sorted_counterpart().end()) continue;
    // Count top-level commas in the template argument list: more than one
    // for a map (Key, Value) or more than zero for a set (Key) means a
    // custom hasher — not mechanically rewritable, bail on the whole TU.
    if (i + 1 < t.size() && t[i + 1].text == "<") {
      int depth = 0;
      std::size_t commas = 0;
      for (std::size_t j = i + 1; j < t.size(); ++j) {
        const std::string& x = t[j].text;
        if (x == "<" || x == "(" || x == "[" || x == "{") ++depth;
        if (x == ">" || x == ")" || x == "]" || x == "}") {
          if (--depth == 0) break;
        }
        if (x == "," && depth == 1) ++commas;
      }
      const bool is_map = t[i].text == "unordered_map" ||
                          t[i].text == "unordered_multimap";
      if (commas > (is_map ? 1u : 0u)) return content;
    }
    spans.push_back({t[i].offset, t[i].offset + t[i].text.size(), &it->second});
  }

  std::string out;
  out.reserve(content.size());
  std::size_t pos = 0;
  for (const Span& span : spans) {
    out += content.substr(pos, span.begin - pos);
    out += *span.replacement;
    pos = span.end;
  }
  out += content.substr(pos);

  // The include directives are not tokens; rewrite them line by line.
  std::istringstream in(out);
  std::ostringstream rewritten;
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (!first) rewritten << '\n';
    first = false;
    std::size_t probe = line.find_first_not_of(" \t");
    if (probe != std::string::npos && line.compare(probe, 1, "#") == 0) {
      for (const auto& [unordered, sorted] : sorted_counterpart()) {
        const std::string from = "<" + unordered + ">";
        const std::size_t at = line.find(from);
        if (at != std::string::npos) {
          line.replace(at, from.size(), "<" + sorted + ">");
        }
      }
    }
    rewritten << line;
  }
  if (!out.empty() && out.back() == '\n') rewritten << '\n';
  return rewritten.str();
}

/// The visible trip count of a for-loop head, as a reserve expression:
/// `x.size()` / `x.rows()` / `x.cols()` when the head compares against one,
/// `xs.size()` for a range-for over a plain identifier. Returns "" when the
/// bound is not mechanically derivable; `receiver` names the bounding
/// container so callers can refuse self-referential reserves.
std::string head_bound(const std::vector<Token>& t, std::size_t head_open,
                       std::size_t head_close, std::string* receiver) {
  for (std::size_t k = head_open + 1; k + 2 < head_close; ++k) {
    if (t[k].text == "." &&
        (t[k + 1].text == "rows" || t[k + 1].text == "size" ||
         t[k + 1].text == "cols") &&
        t[k + 2].text == "(" && t[k - 1].kind == TokKind::kIdent) {
      *receiver = t[k - 1].text;
      return t[k - 1].text + "." + t[k + 1].text + "()";
    }
  }
  const int inner = t[head_open].paren_depth + 1;
  for (std::size_t k = head_open + 1; k < head_close; ++k) {
    if (t[k].text != ":" || t[k].paren_depth != inner) continue;
    if (k + 2 == head_close && t[k + 1].kind == TokKind::kIdent) {
      *receiver = t[k + 1].text;
      return t[k + 1].text + ".size()";
    }
    break;
  }
  return "";
}

/// Inserts `name.reserve(bound);` before a for-loop that grows a locally
/// declared, empty, never-reserved heavy container via push_back when the
/// loop head makes the trip count visible (the missed-reserve rule's exact
/// precondition, minus the hot-path gate: a derivable reserve is a safe win
/// anywhere). Idempotent — the inserted reserve marks the container presized
/// on the next run.
std::string fix_insert_reserve(const std::string& content) {
  const Unit unit = tokenize(content);
  const auto& t = unit.tokens;
  struct Insert {
    std::size_t at;
    std::string text;
  };
  std::vector<Insert> inserts;
  for (const FunctionDef& d : extract_definitions(unit)) {
    if (d.body_last >= t.size()) continue;
    // Locally declared heavy containers: name -> presized, plus where the
    // declaration sits (a reserve only helps containers declared before the
    // loop).
    std::map<std::string, bool> presized;
    std::map<std::string, std::size_t> decl_at;
    for (std::size_t i = d.body_first + 1; i < d.body_last; ++i) {
      if (!heavy_type_at(t, i)) continue;
      const std::size_t nx = after_template_args(t, i);
      if (nx >= d.body_last || t[nx].kind != TokKind::kIdent) continue;
      if (nx + 1 >= d.body_last) continue;
      const std::string& after = t[nx + 1].text;
      if (after == "(" || after == "{") {
        presized[t[nx].text] = match_forward(t, nx + 1) > nx + 2;
        decl_at[t[nx].text] = nx;
      } else if (after == "=") {
        presized[t[nx].text] = true;
      } else if (after == ";") {
        presized[t[nx].text] = false;
        decl_at[t[nx].text] = nx;
      }
    }
    for (std::size_t i = d.body_first + 1; i + 3 < d.body_last; ++i) {
      if (t[i].kind != TokKind::kIdent) continue;
      const auto it = presized.find(t[i].text);
      if (it == presized.end()) continue;
      if ((t[i + 1].text == "." || t[i + 1].text == "->") &&
          (t[i + 2].text == "reserve" || t[i + 2].text == "resize" ||
           t[i + 2].text == "assign") &&
          t[i + 3].text == "(") {
        it->second = true;
      }
    }
    // Spans of every loop body in the definition: a reserve is only
    // inserted before a loop with no enclosing loop — when the container
    // accumulates across an outer loop's iterations, a per-iteration
    // reserve of the inner bound is misleading noise.
    std::vector<std::pair<std::size_t, std::size_t>> loop_bodies;
    for (std::size_t i = d.body_first + 1; i < d.body_last; ++i) {
      if (t[i].kind != TokKind::kIdent) continue;
      std::size_t begin;
      if (t[i].text == "for" || t[i].text == "while") {
        if (i + 1 >= d.body_last || t[i + 1].text != "(") continue;
        begin = match_forward(t, i + 1) + 1;
      } else if (t[i].text == "do") {
        begin = i + 1;
      } else {
        continue;
      }
      if (begin >= d.body_last) continue;
      std::size_t end;
      if (t[begin].text == "{") {
        end = std::min(match_forward(t, begin), d.body_last);
      } else {
        end = begin;
        int depth = 0;
        while (end < d.body_last) {
          const std::string& x = t[end].text;
          if (x == "(" || x == "[" || x == "{") ++depth;
          if (x == ")" || x == "]" || x == "}") --depth;
          if (x == ";" && depth == 0) break;
          ++end;
        }
      }
      loop_bodies.emplace_back(begin, end);
    }
    for (std::size_t i = d.body_first + 1; i < d.body_last; ++i) {
      if (t[i].kind != TokKind::kIdent || t[i].text != "for") continue;
      if (i + 1 >= d.body_last || t[i + 1].text != "(") continue;
      bool enclosed = false;
      for (const auto& lb : loop_bodies) {
        if (lb.first <= i && i < lb.second) {
          enclosed = true;
          break;
        }
      }
      if (enclosed) continue;
      const std::size_t head_open = i + 1;
      const std::size_t head_close = match_forward(t, head_open);
      if (head_close + 1 >= d.body_last) continue;
      std::string receiver;
      const std::string bound = head_bound(t, head_open, head_close,
                                           &receiver);
      if (bound.empty()) continue;
      std::size_t body_begin = head_close + 1;
      std::size_t body_end;
      if (t[body_begin].text == "{") {
        body_end = std::min(match_forward(t, body_begin), d.body_last);
        ++body_begin;
      } else {
        body_end = body_begin;
        int depth = 0;
        while (body_end < d.body_last) {
          const std::string& x = t[body_end].text;
          if (x == "(" || x == "[" || x == "{") ++depth;
          if (x == ")" || x == "]" || x == "}") --depth;
          if (x == ";" && depth == 0) break;
          ++body_end;
        }
      }
      for (std::size_t k = body_begin; k < body_end; ++k) {
        if (t[k].text != "push_back" && t[k].text != "emplace_back") continue;
        // Growth inside a nested loop is bounded by that loop, not this
        // head: reserving the outer bound would under-reserve.
        bool in_nested_loop = false;
        for (const auto& lb : loop_bodies) {
          if (lb.first > head_close + 1 && lb.first <= k && k < lb.second) {
            in_nested_loop = true;
            break;
          }
        }
        if (in_nested_loop) continue;
        if (k < 2 || (t[k - 1].text != "." && t[k - 1].text != "->")) continue;
        if (k + 1 >= d.body_last || t[k + 1].text != "(") continue;
        if (t[k - 2].kind != TokKind::kIdent) continue;
        const std::string& name = t[k - 2].text;
        const auto local = presized.find(name);
        if (local == presized.end() || local->second) continue;
        const auto decl = decl_at.find(name);
        if (decl == decl_at.end() || decl->second >= i) continue;
        if (name == receiver) continue;  // reserve(out.size()) is circular
        if (is_allowed(unit, "missed-reserve", t[k].line)) continue;
        // Insert at the start of the `for` line, mirroring its indentation.
        std::size_t line_start = t[i].offset;
        while (line_start > 0 && content[line_start - 1] != '\n') {
          --line_start;
        }
        const std::string indent =
            content.substr(line_start, t[i].offset - line_start);
        if (indent.find_first_not_of(" \t") != std::string::npos) continue;
        inserts.push_back(
            {line_start, indent + name + ".reserve(" + bound + ");\n"});
        local->second = true;  // one reserve per container
      }
    }
  }
  std::stable_sort(inserts.begin(), inserts.end(),
                   [](const Insert& a, const Insert& b) {
                     return a.at < b.at;
                   });
  std::string out;
  out.reserve(content.size());
  std::size_t pos = 0;
  for (const Insert& ins : inserts) {
    out += content.substr(pos, ins.at - pos);
    out += ins.text;
    pos = ins.at;
  }
  out += content.substr(pos);
  return out;
}

/// Rewrites never-mutated by-value heavy parameters to const references.
/// Header definitions only (the caller gates on .hpp): an out-of-line .cpp
/// definition must keep matching its header declaration, and a
/// virtual/override signature must change in lockstep with its base, so
/// both stay diagnose-only.
std::string fix_pass_by_value(const std::string& content) {
  const Unit unit = tokenize(content);
  const auto& t = unit.tokens;
  struct Insert {
    std::size_t at;
    std::string text;
  };
  std::vector<Insert> inserts;
  for (const FunctionDef& d : extract_definitions(unit)) {
    if (d.body_last >= t.size() || d.params_open >= t.size()) continue;
    if (is_allowed(unit, "heavy-pass-by-value", d.line)) continue;
    const std::size_t params_close = match_forward(t, d.params_open);
    if (params_close >= t.size()) continue;
    bool pinned_signature = false;
    for (std::size_t k = params_close; k < d.body_first; ++k) {
      if (t[k].text == "override" || t[k].text == "final") {
        pinned_signature = true;
      }
    }
    for (std::size_t k = d.params_open; k-- > 0;) {
      const std::string& x = t[k].text;
      if (x == ";" || x == "{" || x == "}") break;
      if (x == "virtual") {
        pinned_signature = true;
        break;
      }
    }
    if (pinned_signature) continue;
    // Walk the parameter-list segments tracking token positions (the
    // analyzer's heavy_value_params yields names only).
    std::size_t seg_first = d.params_open + 1;
    int depth = 0;
    int angle = 0;
    auto rewrite = [&](std::size_t seg_last) {
      std::size_t type_tok = t.size();
      bool indirect = false;
      bool has_const = false;
      std::size_t eq = seg_last;
      for (std::size_t k = seg_first; k < seg_last; ++k) {
        if (t[k].text == "&" || t[k].text == "*") indirect = true;
        if (t[k].text == "const") has_const = true;
        if (t[k].text == "=" && eq == seg_last) eq = k;
        if (type_tok == t.size() && heavy_type_at(t, k)) type_tok = k;
      }
      if (type_tok == t.size() || indirect) return;
      std::string name;
      for (std::size_t k = seg_first; k < eq; ++k) {
        if (t[k].kind == TokKind::kIdent) name = t[k].text;
      }
      if (name.empty() || name == t[type_tok].text || name == "Matrix" ||
          name == "Vector" || name == "vector" || name == "string") {
        return;
      }
      if (param_mutated(t, d.body_first, d.body_last, name)) return;
      // `std::vector<double> xs` -> `const std::vector<double>& xs`: const
      // goes before the qualifier chain, '&' right after the template args.
      std::size_t type_start = type_tok;
      while (type_start >= 2 && t[type_start - 1].text == "::" &&
             t[type_start - 2].kind == TokKind::kIdent) {
        type_start -= 2;
      }
      const std::size_t type_end = after_template_args(t, type_tok) - 1;
      if (!has_const) inserts.push_back({t[type_start].offset, "const "});
      inserts.push_back(
          {t[type_end].offset + t[type_end].text.size(), "&"});
    };
    for (std::size_t k = d.params_open + 1; k < params_close; ++k) {
      const std::string& x = t[k].text;
      if (x == "(" || x == "[" || x == "{") ++depth;
      if (x == ")" || x == "]" || x == "}") --depth;
      if (x == "<" && k > 0 && t[k - 1].kind == TokKind::kIdent) ++angle;
      if (x == ">" && angle > 0) --angle;
      if (x == "," && depth == 0 && angle == 0) {
        rewrite(k);
        seg_first = k + 1;
      }
    }
    rewrite(params_close);
  }
  std::stable_sort(inserts.begin(), inserts.end(),
                   [](const Insert& a, const Insert& b) {
                     return a.at < b.at;
                   });
  std::string out;
  out.reserve(content.size());
  std::size_t pos = 0;
  for (const Insert& ins : inserts) {
    out += content.substr(pos, ins.at - pos);
    out += ins.text;
    pos = ins.at;
  }
  out += content.substr(pos);
  return out;
}

}  // namespace

std::string apply_fixes(const std::string& path, const std::string& content) {
  std::string out = fix_no_endl(content);
  if (is_header_path(path)) out = fix_pragma_once(out);
  out = fix_unordered_iteration(path, out);
  out = fix_insert_reserve(out);
  if (is_header_path(path)) out = fix_pass_by_value(out);
  return out;
}

}  // namespace vmincqr::lint
