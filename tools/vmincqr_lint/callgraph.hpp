// Phase-4 cross-TU symbol table and function-level call graph.
//
// Phases 1–3 are one hop deep: the concurrency rules see a parallel
// lambda's body but not the functions it calls, and the serve/artifact
// fit-free contract is checked at include granularity only. This phase
// builds a whole-program (token-level, type-free) call graph on top of the
// existing scope parser and closes both gaps:
//
//   * transitive parallel context — every function reachable from a
//     parallel_for / parallel_deterministic_reduce body inherits the
//     determinism contract: no non-const function-local statics
//     (mutable-static-in-parallel) and no RNG construction whose seed
//     ignores the caller-supplied parameters (rng-in-parallel,
//     transitively).
//   * call-level layering — [call_forbidden] in layers.toml names symbols
//     (fit, calibrate, ...) that serve/artifact functions must not reach
//     through ANY call chain, even when every include edge is legal
//     (call-layer-violation).
//   * numeric-safety tiers — functions reachable from predict/fit entry
//     points run the numeric rules (numeric.hpp): fp-narrowing,
//     float-accumulator, unguarded-division, governed by
//     `// vmincqr: numeric-tier(...)` annotations that must be mirrored in
//     a committed manifest (numeric-tier-manifest).
//
// Resolution semantics (deliberately conservative, documented in
// DESIGN.md §6): overload sets are keyed by unqualified name; a call
// resolves to every overload whose declared arity window [min, max]
// admits the call's argument count. `Class::`-qualified calls prefer
// same-qualifier definitions; member calls (x.f(...)) prefer member
// definitions. A candidate in a module the caller's module may not
// include (per the [allow] DAG) is dropped — a TU cannot call what it
// cannot see. When the arity filter empties the set, the call falls back
// to the whole visible overload set (over-approximation beats a silent
// miss); calls that match no definition at all (std::, external) are
// treated as leaves.
//
// Determinism: per-TU extraction fans out on core::parallel_map (each TU
// is a pure function of its bytes); linking, resolution, BFS, and rule
// evaluation are sequential over sorted containers, so diagnostics, SARIF,
// and the DOT dump are byte-identical at every thread width.
#pragma once

#include <cstddef>
#include <limits>
#include <set>
#include <string>
#include <vector>

#include "diagnostic.hpp"
#include "include_graph.hpp"
#include "numeric.hpp"
#include "token.hpp"

namespace vmincqr::lint {

/// Sentinel for "no function" (a call site outside any definition).
inline constexpr std::size_t kNoFunction =
    std::numeric_limits<std::size_t>::max();

/// One function definition (free function, out-of-line member, or
/// constructor) found in the analyzed file set.
struct FunctionDef {
  std::string name;       // unqualified
  std::string qualifier;  // `Class` for `Class::name`, "" for free functions
  std::string display;    // qualifier::name, or name
  std::size_t tu = 0;     // index into the analyzed file set
  std::size_t line = 0;   // line of the name token
  std::size_t params_open = 0;  // token index of the parameter-list '('
  std::size_t body_first = 0;   // token index of the body '{'
  std::size_t body_last = 0;    // token index of the matching '}'
  std::size_t arity_min = 0;    // parameters without defaults
  std::size_t arity_max = 0;    // all parameters (kNoFunction if variadic)
  std::vector<std::string> params;  // parameter names, for seed analysis
  std::string tier;  // explicit numeric-tier annotation, "" = default
};

/// One call site inside a definition's body.
struct CallSite {
  std::size_t tu = 0;
  std::size_t caller = kNoFunction;  // global def index
  std::string qualifier;  // `Q` for `Q::f(...)` calls, "" otherwise
  std::string name;
  std::size_t line = 0;
  std::size_t arity = 0;
  bool member = false;            // x.f(...) or x->f(...)
  bool in_parallel_body = false;  // lexically inside a parallel lambda body
  std::vector<std::size_t> callees;  // resolved global def indices
};

/// The linked cross-TU graph. Exposed (rather than hidden behind
/// analyze_call_graph) so tests can probe resolution, cycles, and
/// reachability directly.
class CallGraph {
 public:
  /// Extracts and links the graph. `layers` scopes resolution (a caller
  /// never binds to a module it may not include); pass a
  /// default-constructed LayerConfig to resolve across the whole set.
  static CallGraph build(const std::vector<SourceFile>& files,
                         const LayerConfig& layers);

  [[nodiscard]] const std::vector<FunctionDef>& defs() const { return defs_; }
  [[nodiscard]] const std::vector<CallSite>& calls() const { return calls_; }
  [[nodiscard]] const Unit& unit(std::size_t tu) const { return units_[tu]; }
  [[nodiscard]] const std::string& display_of(std::size_t tu) const {
    return displays_[tu];
  }
  [[nodiscard]] const std::string& module_of_tu(std::size_t tu) const {
    return modules_[tu];
  }

  /// Definitions transitively reachable from `roots` (roots included)
  /// through resolved call edges.
  [[nodiscard]] std::set<std::size_t> reachable_from(
      const std::set<std::size_t>& roots) const;

  /// Definitions transitively reachable from parallel lambda bodies.
  [[nodiscard]] std::set<std::size_t> parallel_reachable() const;

  /// Deterministic Graphviz DOT rendering: one cluster per module,
  /// parallel-reachable nodes filled, tolerance-tier nodes dashed.
  [[nodiscard]] std::string to_dot(
      const std::set<std::size_t>& parallel_reach,
      const std::set<std::size_t>& numeric_reach) const;

 private:
  std::vector<Unit> units_;
  std::vector<std::string> displays_;  // per TU
  std::vector<std::string> modules_;   // per TU, "" when unmapped
  std::vector<FunctionDef> defs_;
  std::vector<CallSite> calls_;
};

struct CallGraphOptions {
  LayerConfig layers;
  /// Functions committed as tolerance-tier (parse_tier_manifest). Entries
  /// match a definition's display name or bare name.
  std::set<std::string> tolerance_manifest;
  /// Manifest path for diagnostics (stale entries report against it).
  std::string manifest_display = "numeric_tiers.toml";
  /// Render analysis.dot (skipped by default: the tier-1 run doesn't need
  /// it).
  bool emit_dot = false;
};

struct CallGraphAnalysis {
  /// Sorted by (file, line, rule, message); allow() suppressions applied.
  std::vector<Diagnostic> diagnostics;
  /// Every explicit numeric-tier annotation, sorted by (file, line) —
  /// recorded in SARIF run properties as the bit-exactness audit trail.
  std::vector<TierRecord> tiers;
  /// DOT rendering of the graph when options.emit_dot was set.
  std::string dot;
};

/// Extracts every named function definition from one TU's token stream
/// (`tu` left unset — the caller stamps it). Shared by the phase-4 linker,
/// the phase-5 hot-path analyzer, and the signature-rewriting fixes, so the
/// three can never disagree about where a function's parameters and body
/// sit.
std::vector<FunctionDef> extract_definitions(const Unit& unit);

/// Runs all phase-4 rules over the file set.
CallGraphAnalysis analyze_call_graph(const std::vector<SourceFile>& files,
                                     const CallGraphOptions& options);

/// Convenience: collects .hpp/.cpp files under `root` (rel paths computed
/// against `root`, sorted) and analyzes them. Throws on IO errors.
CallGraphAnalysis analyze_call_graph_directory(const std::string& root,
                                               const CallGraphOptions& options);

}  // namespace vmincqr::lint
