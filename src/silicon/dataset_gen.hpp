// End-to-end generator for the synthetic industrial dataset: samples a chip
// population, runs the simulated burn-in stress experiment, measures
// parametric tests / monitors / SCAN Vmin at every read point, and packages
// everything as a data::Dataset mirroring Table II of the paper.
#pragma once

#include <cstdint>

#include "data/dataset.hpp"
#include "silicon/aging.hpp"
#include "silicon/monitors.hpp"
#include "silicon/parametric.hpp"
#include "silicon/process.hpp"
#include "silicon/vmin_model.hpp"

namespace vmincqr::silicon {

struct GeneratorConfig {
  std::size_t n_chips = 156;  ///< the paper's population size
  std::uint64_t seed = 20240325;
  std::vector<double> read_points_hours = standard_read_points();
  std::vector<double> vmin_temperatures_c = standard_temperatures();
  ProcessConfig process;
  AgingConfig aging;
  ParametricConfig parametric;
  MonitorConfig monitors;
  VminConfig vmin;
};

/// The generated dataset plus its ground truth, kept for tests and
/// diagnostics (the prediction pipeline must never touch `latents`).
struct GeneratedDataset {
  data::Dataset dataset;
  std::vector<ChipLatent> latents;
  GeneratorConfig config;

  /// Ground-truth latent state of one chip, by strongly-typed index (so a
  /// feature-column or read-point index cannot be used by mistake).
  /// Throws std::out_of_range past the population.
  [[nodiscard]] const ChipLatent& latent(core::ChipId chip) const {
    return latents.at(chip.value());
  }
};

/// Generates the full synthetic experiment. Deterministic in config.seed.
///
/// Feature layout (columns, in order):
///   [parametric x (features_per_temperature * #temps)]   read point 0
///   [ROD x n_rod per read point, all read points]        25C
///   [CPD x n_cpd per read point, all read points]        80C
/// Label series: one per (read point, Vmin test temperature).
GeneratedDataset generate_dataset(const GeneratorConfig& config = {});

}  // namespace vmincqr::silicon
