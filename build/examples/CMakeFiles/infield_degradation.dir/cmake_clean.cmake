file(REMOVE_RECURSE
  "CMakeFiles/infield_degradation.dir/infield_degradation.cpp.o"
  "CMakeFiles/infield_degradation.dir/infield_degradation.cpp.o.d"
  "infield_degradation"
  "infield_degradation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/infield_degradation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
