#include "conformal/cv_plus.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/contracts.hpp"

#include "data/split.hpp"
#include "parallel/parallel_for.hpp"

namespace vmincqr::conformal {

CvPlusRegressor::CvPlusRegressor(MiscoverageAlpha alpha,
                                 std::unique_ptr<Regressor> model,
                                 CvPlusConfig config)
    : alpha_(alpha), prototype_(std::move(model)), config_(config) {
  if (!prototype_) throw std::invalid_argument("CvPlusRegressor: null model");
  if (config_.n_folds < 2) {
    throw std::invalid_argument("CvPlusRegressor: n_folds < 2");
  }
}

void CvPlusRegressor::fit(const Matrix& x, const Vector& y) {
  VMINCQR_REQUIRE(x.rows() >= config_.n_folds,
                  "CvPlusRegressor::fit: fewer samples than folds");
  VMINCQR_CHECK_SHAPE(x.rows() == y.size(),
                      "CvPlusRegressor::fit: shape mismatch");
  VMINCQR_CHECK_FINITE(y, "fit: label vector y");
  rng::Rng rng(config_.seed);
  const auto folds = data::k_fold(x.rows(), config_.n_folds, rng);

  fold_models_.clear();
  fold_models_.resize(folds.size());
  fold_of_sample_.assign(x.rows(), 0);
  residuals_.assign(x.rows(), 0.0);

  // Folds are independent fits writing disjoint state: fold k owns
  // fold_models_[k] and the residual/fold slots of its own test samples
  // (k_fold partitions the rows), so fold-parallel training is race-free
  // and order-free.
  parallel::parallel_for(folds.size(), /*grain=*/1, [&](std::size_t begin,
                                                        std::size_t end) {
    for (std::size_t k = begin; k < end; ++k) {
      Vector y_train(folds[k].train.size());
      for (std::size_t i = 0; i < folds[k].train.size(); ++i) {
        y_train[i] = y[folds[k].train[i]];
      }
      auto model = prototype_->clone_config();
      model->fit(x.take_rows(folds[k].train), y_train);

      const Matrix x_test = x.take_rows(folds[k].test);
      const Vector pred = model->predict(x_test);
      for (std::size_t i = 0; i < folds[k].test.size(); ++i) {
        const std::size_t sample = folds[k].test[i];
        fold_of_sample_[sample] = k;
        residuals_[sample] = std::abs(y[sample] - pred[i]);
      }
      fold_models_[k] = std::move(model);
    }
  });
  calibrated_ = true;
}

// Per-chunk lo/hi order-statistic scratch is the sanctioned allocation: the
// sorts must not contend across chunks (hotpath_tiers.toml).
// vmincqr: hot-path(allow-alloc)
IntervalPrediction CvPlusRegressor::predict_interval(const Matrix& x) const {
  if (!calibrated_) throw std::logic_error("CvPlusRegressor: not calibrated");
  const std::size_t n = residuals_.size();
  const std::size_t n_test = x.rows();

  // Precompute each fold model's predictions on all test rows (fold models
  // are independent read-only predictors writing their own slot).
  std::vector<Vector> fold_preds(fold_models_.size());
  parallel::parallel_for(
      fold_models_.size(), /*grain=*/1,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t k = begin; k < end; ++k) {
          // Already batched: one dispatch per fold model predicts every
          // test row at once. vmincqr-lint: allow(virtual-in-inner-loop)
          fold_preds[k] = fold_models_[k]->predict(x);
        }
      });

  IntervalPrediction out;
  out.lower.resize(n_test);
  out.upper.resize(n_test);

  const auto k_lo_rank = static_cast<std::size_t>(
      std::floor(alpha_ * (static_cast<double>(n) + 1.0)));
  const auto k_hi_rank = static_cast<std::size_t>(
      std::ceil((1.0 - alpha_) * (static_cast<double>(n) + 1.0)));

  // Test rows are independent order-statistic computations; each chunk owns
  // private lo/hi scratch so the sorts never contend.
  parallel::parallel_for(
      n_test, /*grain=*/0,
      [&](std::size_t begin, std::size_t end) {
        std::vector<double> lo(n), hi(n);
        for (std::size_t t = begin; t < end; ++t) {
          for (std::size_t i = 0; i < n; ++i) {
            const double mu = fold_preds[fold_of_sample_[i]][t];
            lo[i] = mu - residuals_[i];
            hi[i] = mu + residuals_[i];
          }
          // Jackknife+/CV+ order statistics: lower = floor(alpha (n+1))-th
          // smallest of lo; upper = ceil((1-alpha)(n+1))-th smallest of hi.
          std::sort(lo.begin(), lo.end());
          std::sort(hi.begin(), hi.end());
          out.lower[t] = k_lo_rank >= 1 && k_lo_rank <= n ? lo[k_lo_rank - 1]
                                                          : lo.front();
          out.upper[t] = k_hi_rank >= 1 && k_hi_rank <= n ? hi[k_hi_rank - 1]
                                                          : hi.back();
        }
      },
      /*use_pool=*/n_test >= 8);
  return out;
}

std::unique_ptr<IntervalRegressor> CvPlusRegressor::clone_config() const {
  return std::make_unique<CvPlusRegressor>(alpha_, prototype_->clone_config(),
                                           config_);
}

}  // namespace vmincqr::conformal
