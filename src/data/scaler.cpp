#include "data/scaler.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

#include "core/contracts.hpp"
#include "stats/descriptive.hpp"

namespace vmincqr::data {

void StandardScaler::fit(const Matrix& x) {
  if (x.empty()) throw std::invalid_argument("StandardScaler::fit: empty");
  means_.assign(x.cols(), 0.0);
  scales_.assign(x.cols(), 1.0);
  const auto n = static_cast<double>(x.rows());
  VMINCQR_AUDIT(n > 0.0, "StandardScaler::fit: empty() check let 0 rows by");
  for (std::size_t c = 0; c < x.cols(); ++c) {
    double m = 0.0;
    for (std::size_t r = 0; r < x.rows(); ++r) m += x(r, c);
    m /= n;
    double var = 0.0;
    for (std::size_t r = 0; r < x.rows(); ++r) {
      var += (x(r, c) - m) * (x(r, c) - m);
    }
    var /= n;
    means_[c] = m;
    const double sd = std::sqrt(var);
    scales_[c] = sd > 1e-300 ? sd : 1.0;
  }
  fitted_ = true;
}

Matrix StandardScaler::transform(const Matrix& x) const {
  if (!fitted_) throw std::logic_error("StandardScaler::transform: not fitted");
  if (x.cols() != means_.size()) {
    throw std::invalid_argument("StandardScaler::transform: column mismatch");
  }
  Matrix out(x.rows(), x.cols());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    for (std::size_t c = 0; c < x.cols(); ++c) {
      out(r, c) = (x(r, c) - means_[c]) / scales_[c];
    }
  }
  return out;
}

Matrix StandardScaler::fit_transform(const Matrix& x) {
  VMINCQR_REQUIRE(!x.empty(), "StandardScaler::fit_transform: empty matrix");
  fit(x);
  return transform(x);
}

Matrix StandardScaler::inverse_transform(const Matrix& x) const {
  if (!fitted_) {
    throw std::logic_error("StandardScaler::inverse_transform: not fitted");
  }
  if (x.cols() != means_.size()) {
    throw std::invalid_argument(
        "StandardScaler::inverse_transform: column mismatch");
  }
  Matrix out(x.rows(), x.cols());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    for (std::size_t c = 0; c < x.cols(); ++c) {
      out(r, c) = x(r, c) * scales_[c] + means_[c];
    }
  }
  return out;
}

ScalerParams StandardScaler::export_params() const {
  if (!fitted_) {
    throw std::logic_error("StandardScaler::export_params: not fitted");
  }
  return {means_, scales_};
}

void StandardScaler::import_params(ScalerParams params) {
  if (params.means.empty() || params.means.size() != params.scales.size()) {
    throw std::invalid_argument(
        "StandardScaler::import_params: means/scales size mismatch");
  }
  for (double s : params.scales) {
    if (!(s > 0.0) || !std::isfinite(s)) {
      throw std::invalid_argument(
          "StandardScaler::import_params: non-positive scale");
    }
  }
  means_ = std::move(params.means);
  scales_ = std::move(params.scales);
  fitted_ = true;
}

void LabelScaler::fit(const Vector& y) {
  if (y.empty()) throw std::invalid_argument("LabelScaler::fit: empty");
  mean_ = stats::mean(y);
  const double sd = stats::stddev(y);
  scale_ = sd > 1e-300 ? sd : 1.0;
  fitted_ = true;
}

Vector LabelScaler::transform(const Vector& y) const {
  if (!fitted_) throw std::logic_error("LabelScaler::transform: not fitted");
  VMINCQR_AUDIT(scale_ > 0.0, "LabelScaler::transform: degenerate scale");
  Vector out(y.size());
  for (std::size_t i = 0; i < y.size(); ++i) out[i] = (y[i] - mean_) / scale_;
  return out;
}

Vector LabelScaler::inverse_transform(const Vector& y) const {
  if (!fitted_) {
    throw std::logic_error("LabelScaler::inverse_transform: not fitted");
  }
  Vector out(y.size());
  for (std::size_t i = 0; i < y.size(); ++i) out[i] = y[i] * scale_ + mean_;
  return out;
}

double LabelScaler::inverse_transform(double y) const {
  if (!fitted_) {
    throw std::logic_error("LabelScaler::inverse_transform: not fitted");
  }
  return y * scale_ + mean_;
}

LabelScalerParams LabelScaler::export_params() const {
  if (!fitted_) {
    throw std::logic_error("LabelScaler::export_params: not fitted");
  }
  return {mean_, scale_};
}

void LabelScaler::import_params(LabelScalerParams params) {
  if (!std::isfinite(params.mean) || !(params.scale > 0.0) ||
      !std::isfinite(params.scale)) {
    throw std::invalid_argument("LabelScaler::import_params: bad moments");
  }
  mean_ = params.mean;
  scale_ = params.scale;
  fitted_ = true;
}

}  // namespace vmincqr::data
