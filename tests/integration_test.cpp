// Integration tests: the full pipeline on a reduced chip population,
// verifying the qualitative structure of the paper's results end to end —
// point-prediction quality (Fig. 2), CQR calibration (Table III), and the
// on-chip monitor benefit (Table IV) — at test-suite-friendly sizes.
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "silicon/dataset_gen.hpp"

namespace vmincqr::core {
namespace {

// Reduced experiment: fewer parametric features and monitors, default chip
// count, cheap model settings via the standard config.
silicon::GeneratorConfig integration_config() {
  silicon::GeneratorConfig config;
  config.n_chips = 120;
  config.parametric.features_per_temperature = 80;
  config.monitors.n_rod = 24;
  config.monitors.n_cpd = 4;
  return config;
}

ExperimentConfig cheap_experiment() {
  ExperimentConfig config;
  config.pipeline.tree_prefilter = 24;
  return config;
}

class IntegrationFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    generated_ = new silicon::GeneratedDataset(
        silicon::generate_dataset(integration_config()));
  }
  static void TearDownTestSuite() {
    delete generated_;
    generated_ = nullptr;
  }
  static const data::Dataset& dataset() { return generated_->dataset; }
  static silicon::GeneratedDataset* generated_;
};

silicon::GeneratedDataset* IntegrationFixture::generated_ = nullptr;

TEST_F(IntegrationFixture, LinearPointPredictionIsStrongAtTime0) {
  const Scenario s{0.0, 25.0, FeatureSet::kBoth};
  const auto scores = evaluate_point_models(
      dataset(), s, cheap_experiment(), {models::ModelKind::kLinear});
  ASSERT_EQ(scores.size(), 1u);
  // The generator's Vmin is largely linear in the latents the features
  // expose; LR with CFS should explain most of the variance.
  EXPECT_GT(scores[0].r2, 0.6);
  EXPECT_LT(scores[0].rmse, 0.02);  // < 20 mV
  EXPECT_GE(scores[0].best_k, 1u);
  EXPECT_LE(scores[0].best_k, 10u);
}

TEST_F(IntegrationFixture, DegradationPredictionStaysAccurate) {
  // Paper Sec. IV-D: no clear R^2 reduction out to 1008 h because monitors
  // track the aging state.
  const Scenario late{1008.0, 25.0, FeatureSet::kBoth};
  const auto scores = evaluate_point_models(
      dataset(), late, cheap_experiment(), {models::ModelKind::kLinear});
  EXPECT_GT(scores[0].r2, 0.5);
}

TEST_F(IntegrationFixture, CqrCoversWhereQrFallsShort) {
  const Scenario s{24.0, 25.0, FeatureSet::kBoth};
  const auto config = cheap_experiment();

  const RegionMethodSpec qr{RegionMethodSpec::Family::kQr,
                            models::ModelKind::kLinear};
  const RegionMethodSpec cqr{RegionMethodSpec::Family::kCqr,
                             models::ModelKind::kLinear};
  const auto qr_score = evaluate_region_method(dataset(), s, qr, config);
  const auto cqr_score = evaluate_region_method(dataset(), s, cqr, config);

  // CQR must reach (near) the 90% target; raw QR typically does not.
  EXPECT_GE(cqr_score.coverage_pct, 85.0);
  EXPECT_GE(cqr_score.coverage_pct, qr_score.coverage_pct - 1.0);
  // Interval lengths are in the paper's range (a few mV to ~100 mV).
  EXPECT_GT(cqr_score.mean_length_mv, 1.0);
  EXPECT_LT(cqr_score.mean_length_mv, 150.0);
}

TEST_F(IntegrationFixture, OnChipMonitorsShrinkIntervals) {
  // Table IV story at one scenario: degradation prediction with monitors
  // beats parametric-only.
  const auto config = cheap_experiment();
  const RegionMethodSpec cqr_cb{RegionMethodSpec::Family::kCqr,
                                models::ModelKind::kCatboost};
  const Scenario with_monitors{504.0, 125.0, FeatureSet::kBoth};
  const Scenario par_only{504.0, 125.0, FeatureSet::kParametricOnly};
  const auto with_score =
      evaluate_region_method(dataset(), with_monitors, cqr_cb, config);
  const auto par_score =
      evaluate_region_method(dataset(), par_only, cqr_cb, config);
  EXPECT_LT(with_score.mean_length_mv, par_score.mean_length_mv);
}

TEST_F(IntegrationFixture, AllTable3MethodsRunAtOneScenario) {
  const Scenario s{0.0, 125.0, FeatureSet::kBoth};
  const auto scores = evaluate_region_methods(dataset(), s, cheap_experiment());
  ASSERT_EQ(scores.size(), 9u);
  for (const auto& score : scores) {
    EXPECT_GE(score.coverage_pct, 0.0);
    EXPECT_LE(score.coverage_pct, 100.0);
    EXPECT_GE(score.mean_length_mv, 0.0) << score.method;
  }
  // Every CQR variant respects (near-)target coverage.
  for (const auto& score : scores) {
    if (score.method.rfind("CQR", 0) == 0) {
      EXPECT_GE(score.coverage_pct, 82.0) << score.method;
    }
  }
}

}  // namespace
}  // namespace vmincqr::core
