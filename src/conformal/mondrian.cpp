#include "conformal/mondrian.hpp"

#include <cmath>
#include <stdexcept>

#include "core/contracts.hpp"

#include "conformal/scores.hpp"
#include "data/split.hpp"
#include "stats/quantile.hpp"

namespace vmincqr::conformal {

MondrianCqr::MondrianCqr(MiscoverageAlpha alpha,
                         std::unique_ptr<IntervalRegressor> base,
                         GroupFn group_fn, MondrianConfig config)
    : alpha_(alpha),
      base_(std::move(base)),
      group_fn_(std::move(group_fn)),
      config_(config) {
  if (!base_) throw std::invalid_argument("MondrianCqr: null base");
  if (!group_fn_) throw std::invalid_argument("MondrianCqr: null group_fn");
  if (std::abs(base_->alpha() - alpha) > 1e-9) {
    throw std::invalid_argument("MondrianCqr: base model alpha mismatch");
  }
}

void MondrianCqr::fit(const Matrix& x, const Vector& y) {
  VMINCQR_REQUIRE(x.rows() >= 3, "MondrianCqr::fit: need at least 3 samples");
  VMINCQR_CHECK_SHAPE(x.rows() == y.size(), "MondrianCqr::fit: shape mismatch");
  VMINCQR_CHECK_FINITE(y, "fit: label vector y");
  std::vector<std::size_t> indices(x.rows());
  for (std::size_t i = 0; i < indices.size(); ++i) indices[i] = i;
  rng::Rng rng(config_.split.seed);
  const auto split =
      data::train_calibration_split(indices, config_.split.train_fraction, rng);

  Vector y_train(split.train.size());
  for (std::size_t i = 0; i < split.train.size(); ++i) {
    y_train[i] = y[split.train[i]];
  }
  base_->fit(x.take_rows(split.train), y_train);

  const Matrix x_calib = x.take_rows(split.calibration);
  Vector y_calib(split.calibration.size());
  for (std::size_t i = 0; i < split.calibration.size(); ++i) {
    y_calib[i] = y[split.calibration[i]];
  }
  const IntervalPrediction band = base_->predict_interval(x_calib);
  const auto scores = cqr_scores(y_calib, band.lower, band.upper);

  pooled_q_hat_ = stats::conformal_quantile(scores, alpha_);

  std::map<int, std::vector<double>> group_scores;
  for (std::size_t i = 0; i < scores.size(); ++i) {
    const int g = group_fn_(x_calib.row_ptr(i), x_calib.cols());
    group_scores[g].push_back(scores[i]);
  }
  group_q_hat_.clear();
  for (auto& [group, s] : group_scores) {
    if (s.size() < config_.min_group_size) {
      group_q_hat_[group] = pooled_q_hat_;
    } else {
      group_q_hat_[group] = stats::conformal_quantile(s, alpha_);
    }
  }
  calibrated_ = true;
}

IntervalPrediction MondrianCqr::predict_interval(const Matrix& x) const {
  if (!calibrated_) throw std::logic_error("MondrianCqr: not calibrated");
  IntervalPrediction out = base_->predict_interval(x);
  for (std::size_t i = 0; i < out.lower.size(); ++i) {
    const int g = group_fn_(x.row_ptr(i), x.cols());
    const auto it = group_q_hat_.find(g);
    const double q = it != group_q_hat_.end() ? it->second : pooled_q_hat_;
    out.lower[i] -= q;
    out.upper[i] += q;
    if (out.lower[i] > out.upper[i]) {
      const double mid = 0.5 * (out.lower[i] + out.upper[i]);
      out.lower[i] = mid;
      out.upper[i] = mid;
    }
  }
  return out;
}

std::unique_ptr<IntervalRegressor> MondrianCqr::clone_config() const {
  return std::make_unique<MondrianCqr>(alpha_, base_->clone_config(),
                                       group_fn_, config_);
}

}  // namespace vmincqr::conformal
