#include "artifact/bundle.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "artifact/model_codec.hpp"
#include "core/contracts.hpp"

namespace vmincqr::artifact {

std::vector<std::uint8_t> encode_bundle(const VminBundle& bundle) {
  if (!bundle.predictor) {
    throw std::invalid_argument("encode_bundle: null predictor");
  }
  Writer writer;

  writer.begin_chunk(ChunkKind::kMeta);
  writer.put_f64(bundle.scenario.read_point_hours);
  writer.put_f64(bundle.scenario.temperature_c);
  writer.put_u8(bundle.scenario.feature_set);
  writer.put_f64(bundle.scenario.monitor_horizon_hours);
  writer.put_str(bundle.label);
  writer.end_chunk();

  writer.begin_chunk(ChunkKind::kColumns);
  writer.put_index_vec(bundle.dataset_columns);
  writer.put_index_vec(bundle.selected_features);
  writer.end_chunk();

  if (bundle.has_input_scaler) {
    writer.begin_chunk(ChunkKind::kInputScaler);
    writer.put_vec(bundle.input_scaler.means);
    writer.put_vec(bundle.input_scaler.scales);
    writer.end_chunk();
  }

  writer.begin_chunk(ChunkKind::kPredictor);
  encode_interval_regressor(writer, *bundle.predictor);
  writer.end_chunk();

  return writer.finish();
}

VminBundle decode_bundle(const std::vector<std::uint8_t>& bytes) {
  Reader reader = Reader::open(bytes);
  VminBundle bundle;
  bundle.format_version = reader.format_version();

  bool saw_meta = false;
  bool saw_columns = false;
  while (!reader.at_end()) {
    Reader::Chunk chunk = reader.next_chunk();
    Reader& body = chunk.payload;
    switch (chunk.kind) {
      case ChunkKind::kMeta:
        bundle.scenario.read_point_hours = body.get_f64();
        bundle.scenario.temperature_c = body.get_f64();
        bundle.scenario.feature_set = body.get_u8();
        bundle.scenario.monitor_horizon_hours = body.get_f64();
        bundle.label = body.get_str();
        saw_meta = true;
        break;
      case ChunkKind::kColumns:
        bundle.dataset_columns = body.get_index_vec();
        bundle.selected_features = body.get_index_vec();
        saw_columns = true;
        break;
      case ChunkKind::kInputScaler:
        bundle.input_scaler.means = body.get_vec();
        bundle.input_scaler.scales = body.get_vec();
        bundle.has_input_scaler = true;
        break;
      case ChunkKind::kPredictor:
        if (bundle.predictor) {
          throw ArtifactError("duplicate PRED chunk");
        }
        bundle.predictor = decode_interval_regressor(body);
        break;
      default:
        // Strict for v1: every chunk kind is load-bearing, so an unknown tag
        // means corruption (a future version bump relaxes this to skip).
        throw ArtifactError("unknown bundle chunk '" +
                            chunk_kind_name(chunk.kind) + "'");
    }
  }

  if (!saw_meta) throw ArtifactError("bundle missing META chunk");
  if (!saw_columns) throw ArtifactError("bundle missing COLS chunk");
  if (!bundle.predictor) throw ArtifactError("bundle missing PRED chunk");
  for (const std::size_t selected : bundle.selected_features) {
    if (selected >= bundle.dataset_columns.size()) {
      throw ArtifactError("selected feature index " +
                          std::to_string(selected) +
                          " out of range for " +
                          std::to_string(bundle.dataset_columns.size()) +
                          " dataset columns");
    }
  }
  return bundle;
}

void save_artifact(const VminBundle& bundle, const std::string& path) {
  const std::vector<std::uint8_t> bytes = encode_bundle(bundle);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw ArtifactError("cannot open '" + path + "' for writing");
  }
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) {
    throw ArtifactError("write failed for '" + path + "'");
  }
}

VminBundle load_artifact(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    throw ArtifactError("cannot open '" + path + "' for reading");
  }
  const std::streamsize size = in.tellg();
  in.seekg(0, std::ios::beg);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  if (size > 0 &&
      !in.read(reinterpret_cast<char*>(bytes.data()), size)) {
    throw ArtifactError("read failed for '" + path + "'");
  }
  return decode_bundle(bytes);
}

namespace {

void render_index_list(std::ostringstream& out,
                       const std::vector<std::size_t>& values) {
  constexpr std::size_t kMaxListed = 16;
  out << "[";
  for (std::size_t i = 0; i < values.size() && i < kMaxListed; ++i) {
    if (i > 0) out << ", ";
    out << values[i];
  }
  if (values.size() > kMaxListed) {
    out << ", \"... " << values.size() - kMaxListed << " more\"";
  }
  out << "]";
}

std::string escaped(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

std::string debug_json(const VminBundle& bundle) {
  VMINCQR_REQUIRE(bundle.predictor != nullptr,
                  "debug_json: null predictor in bundle");
  std::ostringstream out;
  out << "{\n";
  out << "  \"format_version\": " << bundle.format_version << ",\n";
  out << "  \"label\": \"" << escaped(bundle.label) << "\",\n";
  out << "  \"scenario\": {\"read_point_hours\": "
      << bundle.scenario.read_point_hours
      << ", \"temperature_c\": " << bundle.scenario.temperature_c
      << ", \"feature_set\": " << static_cast<int>(bundle.scenario.feature_set)
      << ", \"monitor_horizon_hours\": "
      << bundle.scenario.monitor_horizon_hours << "},\n";
  out << "  \"n_dataset_columns\": " << bundle.dataset_columns.size() << ",\n";
  out << "  \"dataset_columns\": ";
  render_index_list(out, bundle.dataset_columns);
  out << ",\n";
  out << "  \"selected_features\": ";
  render_index_list(out, bundle.selected_features);
  out << ",\n";
  out << "  \"has_input_scaler\": "
      << (bundle.has_input_scaler ? "true" : "false") << ",\n";
  out << "  \"predictor\": {\"name\": \"" << escaped(bundle.predictor->name())
      << "\", \"alpha\": " << bundle.predictor->alpha().value() << "}\n";
  out << "}";
  return out.str();
}

}  // namespace vmincqr::artifact
