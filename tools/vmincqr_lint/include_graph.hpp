// Phase-1 preprocessor-aware include-graph analysis over a file set.
//
// Three rules:
//   * layer-violation — the declared layering DAG (layers.toml) is the
//     architecture; an include edge not on it is a cross-layer shortcut.
//     The load-bearing constraint for this repo: `conformal` must never
//     include the silicon/netlist/testgen substrates, or the statistical
//     layer grows a hidden dependency on the simulator it is meant to audit.
//   * include-cycle — a cycle among project headers (pragma once hides it
//     at compile time until a reordering breaks the build).
//   * unused-include — IWYU-lite: a direct quoted include providing no name
//     the including TU mentions. "Provided names" are the header's declared
//     identifiers (types, functions, aliases, macros, constants), so the
//     check is conservative: it only fires when nothing matches.
//
// Suppression works like every other rule: `// vmincqr-lint: allow(<rule>)`
// on the `#include` line (e.g. for deliberate re-export umbrella headers).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "diagnostic.hpp"

namespace vmincqr::lint {

/// One file of the analyzed set. `rel` is the path the include resolver and
/// module mapper use (relative to the include root, `/`-separated);
/// `display` is what diagnostics print.
struct SourceFile {
  std::string display;
  std::string rel;
  std::string content;
};

/// The declared layering DAG, parsed from a layers.toml file:
///
///   [modules]
///   core_base = ["core/units.hpp", "core/contracts.hpp"]
///   linalg    = ["linalg/"]
///   [allow]
///   linalg    = ["core_base"]
///   [call_forbidden]
///   serve     = ["fit", "calibrate"]
///
/// A file maps to the module with the longest matching path prefix (exact
/// file entries beat directory prefixes). Every module may include itself;
/// all other edges must be listed under [allow]. Unmapped files are exempt
/// from the layering rule but still participate in cycle/IWYU analysis.
///
/// [call_forbidden] feeds the phase-4 call-level layering rule
/// (call-layer-violation, callgraph.hpp): functions in the listed module
/// must not transitively *call* any symbol with one of the listed names,
/// even when every include edge is legal.
struct LayerConfig {
  struct Module {
    std::string name;
    std::vector<std::string> prefixes;
  };
  std::vector<Module> modules;
  std::vector<std::pair<std::string, std::vector<std::string>>> allowed;
  /// module -> symbol names its functions must never transitively call.
  std::vector<std::pair<std::string, std::vector<std::string>>>
      call_forbidden;

  /// Module name for a rel path, or "" when unmapped.
  [[nodiscard]] std::string module_of(const std::string& rel) const;
  /// True when module `from` may include module `to`.
  [[nodiscard]] bool edge_allowed(const std::string& from,
                                  const std::string& to) const;
};

/// Parses the layers.toml subset above. Throws std::runtime_error with a
/// line-numbered message on malformed input (unknown section, bad list).
LayerConfig parse_layers(const std::string& toml_text);

/// Reads and parses a layers.toml file. Throws on IO or parse errors.
LayerConfig load_layers(const std::string& path);

/// Runs all three include-graph rules over the file set. Pass a
/// default-constructed LayerConfig (no modules) to skip the layering rule.
/// allow() suppressions on the offending include line are honored.
std::vector<Diagnostic> analyze_include_graph(
    const std::vector<SourceFile>& files, const LayerConfig& config);

/// Convenience: collects .hpp/.cpp files under `root` (rel paths computed
/// against `root`) and analyzes them. Throws on IO errors.
std::vector<Diagnostic> analyze_directory(const std::string& root,
                                          const LayerConfig& config);

}  // namespace vmincqr::lint
