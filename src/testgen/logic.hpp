// Bit-parallel logic simulation over the netlist — the functional view of
// the same design whose timing view lives in netlist/sta.
//
// The paper's Vmin is measured with structural SCAN patterns; this module
// provides the pattern machinery: 64 test patterns are packed per
// std::uint64_t word and evaluated in one pass, the standard trick of
// fault-simulation engines.
//
// Cell logic functions (by library index, n-ary over the gate's fanins):
//   INV_X1  -> NOT(f0)            BUF_X2   -> f0
//   NAND2_X1-> NOT(AND(fanins))   NOR2_X1  -> NOT(OR(fanins))
//   AOI21_X1-> NOT((f0 AND f1) OR flast)
//   DFF_CK2Q-> f0 (transparent: combinational SCAN capture view)
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"

namespace vmincqr::testgen {

/// One packed pattern set: word w, bit b = value of that signal in pattern
/// 64*w_index + b. All vectors are indexed by netlist node id.
using PatternWord = std::uint64_t;

class LogicSimulator {
 public:
  /// Binds to a netlist (kept by reference; must outlive the simulator).
  explicit LogicSimulator(const netlist::Netlist& nl) : netlist_(nl) {}

  /// Simulates one word of 64 packed patterns.
  /// `inputs` holds one word per primary input.
  /// Returns one word per node (inputs echoed through).
  /// Throws std::invalid_argument on input-count mismatch.
  std::vector<PatternWord> simulate(
      const std::vector<PatternWord>& inputs) const;

  /// Same, but with a single stuck-at fault injected at `fault_node`
  /// (its value forced to all-0 or all-1 before fanout).
  std::vector<PatternWord> simulate_with_fault(
      const std::vector<PatternWord>& inputs, std::size_t fault_node,
      bool stuck_value) const;

  /// Extracts the primary-output words from a full node-value vector.
  std::vector<PatternWord> outputs_of(
      const std::vector<PatternWord>& node_values) const;

 private:
  std::vector<PatternWord> simulate_impl(const std::vector<PatternWord>& inputs,
                                         std::size_t fault_node,
                                         bool stuck_value,
                                         bool has_fault) const;

  const netlist::Netlist& netlist_;
};

/// Evaluates one gate's logic function over already-computed fanin words.
/// Exposed for direct unit testing. Throws std::invalid_argument on an
/// unknown cell index.
PatternWord evaluate_gate(std::size_t cell_index,
                          const std::vector<PatternWord>& fanin_values);

}  // namespace vmincqr::testgen
