// Conformal score functions.
//
// Split CP uses the absolute residual (Eq. 7); CQR uses the signed distance
// outside the quantile band (Eq. 9); normalized CP divides the residual by a
// per-sample difficulty estimate. Each score comes with the inverse map that
// expands a heuristic interval by the calibrated quantile q_hat.
#pragma once

#include <vector>

namespace vmincqr::conformal {

/// Eq. (7): s(x, y) = |y - y_hat|.
double absolute_residual_score(double y, double y_hat);

/// Eq. (9): s(x, y) = max(lo - y, y - hi). Negative when y is strictly
/// inside the band — CQR can therefore *shrink* over-wide QR bands.
double cqr_score(double y, double lo, double hi);

/// Normalized residual |y - y_hat| / sigma_hat; sigma_hat must be > 0
/// (callers floor it). Throws std::invalid_argument if sigma_hat <= 0.
double normalized_residual_score(double y, double y_hat, double sigma_hat);

/// Vectorized helpers used by the calibrators.
std::vector<double> absolute_residual_scores(const std::vector<double>& y,
                                             const std::vector<double>& y_hat);
std::vector<double> cqr_scores(const std::vector<double>& y,
                               const std::vector<double>& lo,
                               const std::vector<double>& hi);

}  // namespace vmincqr::conformal
