// Regression tree trained on per-sample gradient/hessian statistics with
// exact greedy splits — the building block of both boosting models.
//
// Split gain and leaf weights follow the XGBoost formulation:
//   leaf weight w* = -G / (H + lambda)
//   gain = 1/2 [ Gl^2/(Hl+l) + Gr^2/(Hr+l) - G^2/(H+l) ] - gamma.
// For pinball-loss boosting, leaf values can be overwritten after structure
// fitting (leaf-quantile refit), which fit() supports via train_leaf_ids().
#pragma once

#include <cstdint>
#include <vector>

#include "core/binning.hpp"
#include "linalg/matrix.hpp"
#include "models/flat_forest.hpp"

namespace vmincqr::models {

using linalg::Matrix;
using linalg::Vector;

struct TreeConfig {
  int max_depth = 6;
  double lambda = 1.0;          ///< L2 regularization on leaf weights
  double gamma = 0.0;           ///< minimum gain to split
  double min_child_weight = 1.0;  ///< minimum sum of hessians per child
  std::size_t min_samples_leaf = 1;
};

/// One node of a fitted tree — the serializable unit a RegressionTree
/// exports and rebuilds from. Index 0 is the root; children index into the
/// same node array.
struct TreeNode {
  bool is_leaf = true;
  std::size_t feature = 0;
  double threshold = 0.0;
  std::int32_t left = -1;
  std::int32_t right = -1;
  double value = 0.0;         ///< leaf weight
  std::int32_t leaf_id = -1;  ///< dense leaf numbering
  double gain = 0.0;          ///< split gain (internal nodes)
};

class RegressionTree {
 public:
  /// Fits the tree structure to (x, grad, hess). All vectors length x.rows().
  /// `rows` restricts training to a subset (empty -> all rows).
  /// Throws std::invalid_argument on shape mismatch.
  void fit(const Matrix& x, const Vector& grad, const Vector& hess,
           const TreeConfig& config,
           const std::vector<std::size_t>& rows = {});

  /// Histogram-split variant of fit(): the split search scans pre-binned
  /// codes (one G/H/count histogram per feature, O(n + bins) instead of the
  /// exact O(n log n) sort scan), with candidate thresholds limited to the
  /// binner's edges. Fully deterministic and thread-count invariant, but the
  /// chosen splits can differ from fit()'s exact scan — fast-tier only
  /// (linalg::KernelPolicy::kFast fit paths route here).
  /// `codes` is the binner's row-major code matrix for x; throws
  /// std::invalid_argument on shape mismatch with x or the binner.
  void fit_binned(const Matrix& x, const Vector& grad, const Vector& hess,
                  const TreeConfig& config, const core::FeatureBinner& binner,
                  const std::vector<std::uint16_t>& codes,
                  const std::vector<std::size_t>& rows = {});

  /// Prediction for one feature row of length d (must equal the training
  /// feature count; unchecked hot path).
  [[nodiscard]] double predict_row(const double* row) const;

  /// Predictions for every row of x. Throws std::logic_error if not fitted.
  [[nodiscard]] Vector predict(const Matrix& x) const;

  /// Leaf id per *training* row index (size = x.rows() passed to fit;
  /// untrained rows get -1 when a row subset was used).
  [[nodiscard]] const std::vector<std::int32_t>& train_leaf_ids() const {
    return train_leaf_ids_;
  }

  /// Leaf id a feature row would land in.
  [[nodiscard]] std::int32_t leaf_id_for_row(const double* row) const;

  [[nodiscard]] std::size_t n_leaves() const noexcept { return n_leaves_; }
  [[nodiscard]] bool fitted() const noexcept { return !nodes_.empty(); }

  /// Overwrites the value of a leaf (by leaf id). Throws std::out_of_range.
  void set_leaf_value(std::int32_t leaf_id, double value);
  [[nodiscard]] double leaf_value(std::int32_t leaf_id) const;

  /// Adds each internal node's split gain to gains[feature]. gains must be
  /// sized to the training feature count. Throws std::invalid_argument on a
  /// too-small vector.
  void accumulate_feature_gains(std::vector<double>& gains) const;

  /// The fitted node array (empty when unfitted).
  [[nodiscard]] const std::vector<TreeNode>& nodes() const noexcept {
    return nodes_;
  }

  /// Rebuilds the tree from an exported node array; leaf bookkeeping is
  /// re-derived from the stored leaf ids (per-training-row ids are not
  /// restored — they are a fit-time-only diagnostic). Throws
  /// std::invalid_argument on dangling children or non-dense leaf ids.
  void import_nodes(std::vector<TreeNode> nodes);

  /// The single-tree SoA planes predict() traverses (rebuilt by fit /
  /// fit_binned / import_nodes, kept in sync by set_leaf_value). Ensemble
  /// models build their own multi-tree FlatForest from nodes() instead.
  [[nodiscard]] const FlatForest& flat() const noexcept { return flat_; }

 private:
  std::int32_t build(const Matrix& x, const Vector& grad, const Vector& hess,
                     const TreeConfig& config, std::vector<std::size_t>& rows,
                     int depth);

  std::int32_t build_binned(const Vector& grad, const Vector& hess,
                            const TreeConfig& config,
                            const core::FeatureBinner& binner,
                            const std::vector<std::uint16_t>& codes,
                            std::size_t n_features,
                            std::vector<std::size_t>& rows, int depth);

  /// Fit-time scratch: one row-order buffer per feature, reused by every
  /// node's split search (the per-feature chunks of one search run
  /// concurrently, so they must not share a buffer). Sized by fit(),
  /// released before fit() returns.
  std::vector<std::vector<std::size_t>> split_sort_scratch_;

  std::vector<TreeNode> nodes_;
  FlatForest flat_;  // single-tree SoA mirror of nodes_ (see flat())
  std::vector<std::int32_t> leaf_node_index_;  // leaf_id -> node index
  std::vector<std::int32_t> train_leaf_ids_;
  std::size_t n_leaves_ = 0;
};

}  // namespace vmincqr::models
