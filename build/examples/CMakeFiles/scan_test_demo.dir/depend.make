# Empty dependencies file for scan_test_demo.
# This may be replaced when dependencies are built.
