// Tests for the structural (STA-based) dataset generator, including an
// end-to-end check that the CQR pipeline behaves the same on timing-derived
// Vmin as on the closed-form response surface.
#include <gtest/gtest.h>

#include "conformal/cqr.hpp"
#include "data/feature_select.hpp"
#include "models/factory.hpp"
#include "silicon/structural.hpp"
#include "stats/descriptive.hpp"
#include "stats/metrics.hpp"

namespace vmincqr::silicon {
namespace {

StructuralConfig small_config() {
  StructuralConfig config;
  config.n_chips = 48;
  config.design.n_gates = 250;
  config.n_ring_oscillators = 12;
  config.read_points_hours = {0.0, 504.0};
  config.vmin_temperatures_c = {-45.0, 25.0};
  return config;
}

class StructuralFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data_ = new StructuralDataset(generate_structural_dataset(small_config()));
  }
  static void TearDownTestSuite() {
    delete data_;
    data_ = nullptr;
  }
  static StructuralDataset* data_;
};

StructuralDataset* StructuralFixture::data_ = nullptr;

TEST_F(StructuralFixture, ShapeMatchesConfig) {
  const auto& ds = data_->dataset;
  EXPECT_EQ(ds.n_chips(), 48u);
  EXPECT_EQ(ds.n_features(), 3u + 12u * 2u);  // 3 proxies + ROs x 2 points
  EXPECT_EQ(ds.labels().size(), 4u);          // 2 read points x 2 temps
  EXPECT_GT(data_->clock_period_ns, 0.0);
}

TEST_F(StructuralFixture, NominalVminNearTarget) {
  // The clock was derived so a zero-shift chip closes at 0.55 V; the
  // population median should sit near it.
  const auto& y = data_->dataset.label(0.0, 25.0).values;
  EXPECT_NEAR(stats::mean(y), 0.55, 0.02);
}

TEST_F(StructuralFixture, PhysicalOrderings) {
  const auto& ds = data_->dataset;
  const auto& room0 = ds.label(0.0, 25.0).values;
  const auto& cold0 = ds.label(0.0, -45.0).values;
  const auto& room_aged = ds.label(504.0, 25.0).values;
  // Cold needs more voltage; stress degrades Vmin — on population averages.
  EXPECT_GT(stats::mean(cold0), stats::mean(room0));
  EXPECT_GT(stats::mean(room_aged), stats::mean(room0));
  // And per chip (noise is small relative to the effects).
  std::size_t cold_worse = 0, aged_worse = 0;
  for (std::size_t i = 0; i < ds.n_chips(); ++i) {
    cold_worse += cold0[i] > room0[i];
    aged_worse += room_aged[i] > room0[i];
  }
  EXPECT_GT(cold_worse, ds.n_chips() * 9 / 10);
  EXPECT_GT(aged_worse, ds.n_chips() * 9 / 10);
}

TEST_F(StructuralFixture, RoFrequenciesTrackProcessCorner) {
  // Fast (low-Vth) chips must show higher RO frequency.
  const auto& ds = data_->dataset;
  std::vector<double> dvth, freq;
  const auto ro_cols = ds.select_features([](const data::FeatureInfo& f) {
    return f.type == data::FeatureType::kRodMonitor &&
           f.read_point_hours == 0.0;
  });
  ASSERT_FALSE(ro_cols.empty());
  for (std::size_t i = 0; i < ds.n_chips(); ++i) {
    dvth.push_back(data_->latents[i].dvth);
    freq.push_back(ds.features()(i, ro_cols[0]));
  }
  EXPECT_LT(stats::pearson(dvth, freq), -0.8);
}

TEST_F(StructuralFixture, RoFrequenciesDropWithAging) {
  const auto& ds = data_->dataset;
  const auto t0 = ds.select_features([](const data::FeatureInfo& f) {
    return f.type == data::FeatureType::kRodMonitor &&
           f.read_point_hours == 0.0;
  });
  const auto t504 = ds.select_features([](const data::FeatureInfo& f) {
    return f.type == data::FeatureType::kRodMonitor &&
           f.read_point_hours == 504.0;
  });
  ASSERT_EQ(t0.size(), t504.size());
  std::size_t dropped = 0, total = 0;
  for (std::size_t i = 0; i < ds.n_chips(); ++i) {
    for (std::size_t r = 0; r < t0.size(); ++r) {
      dropped += ds.features()(i, t504[r]) < ds.features()(i, t0[r]);
      ++total;
    }
  }
  EXPECT_GT(dropped, total * 9 / 10);
}

TEST_F(StructuralFixture, DeterministicInSeed) {
  const auto again = generate_structural_dataset(small_config());
  EXPECT_EQ(again.dataset.features(), data_->dataset.features());
  EXPECT_EQ(again.clock_period_ns, data_->clock_period_ns);
}

TEST_F(StructuralFixture, CqrPipelineWorksOnStructuralVmin) {
  // End to end: CQR over linear QR on timing-derived labels still covers.
  const auto& ds = data_->dataset;
  const auto& y_all = ds.label(504.0, 25.0).values;

  std::vector<std::size_t> train_rows, test_rows;
  for (std::size_t i = 0; i < ds.n_chips(); ++i) {
    (i < 36 ? train_rows : test_rows).push_back(i);
  }
  const auto x_train = ds.features().take_rows(train_rows);
  const auto x_test = ds.features().take_rows(test_rows);
  linalg::Vector y_train(train_rows.size()), y_test(test_rows.size());
  for (std::size_t i = 0; i < train_rows.size(); ++i) {
    y_train[i] = y_all[train_rows[i]];
  }
  for (std::size_t i = 0; i < test_rows.size(); ++i) {
    y_test[i] = y_all[test_rows[i]];
  }

  const auto cols = data::cfs_select(x_train, y_train, 6);
  conformal::CqrConfig config;
  config.split.train_fraction = 0.7;
  conformal::ConformalizedQuantileRegressor cqr(
      core::MiscoverageAlpha{0.2}, models::make_quantile_pair(models::ModelKind::kLinear, core::MiscoverageAlpha{0.2}),
      config);
  cqr.fit(x_train.take_cols(cols), y_train);
  const auto band = cqr.predict_interval(x_test.take_cols(cols));
  const double cov = stats::interval_coverage(y_test, band.lower, band.upper);
  EXPECT_GE(cov, 0.55);  // 12 test chips: generous Monte-Carlo slack
  EXPECT_GT(stats::mean_interval_length(band.lower, band.upper), 0.0);
}

TEST(Structural, ValidatesConfig) {
  StructuralConfig config;
  config.n_chips = 0;
  EXPECT_THROW(generate_structural_dataset(config), std::invalid_argument);
}

}  // namespace
}  // namespace vmincqr::silicon
