// Shallow fully-connected MLP matching the paper's configuration
// (Sec. IV-C.4): one hidden layer of 16 ReLU units, Adam with lr 0.01,
// 3000 epochs, L2 weight penalty 0.1 — full-batch training, manual backprop.
//
// Supports both squared loss (point prediction) and pinball loss (quantile
// regression) through the shared Loss descriptor.
#pragma once

#include <cstdint>

#include "data/scaler.hpp"
#include "models/losses.hpp"
#include "models/regressor.hpp"
#include "rng/rng.hpp"

namespace vmincqr::models {

struct MlpConfig {
  Loss loss = Loss::squared();
  std::size_t hidden_units = 16;
  int epochs = 3000;
  double learning_rate = 0.01;
  double l2_penalty = 0.1;
  std::uint64_t seed = 7;
};

/// Fitted state of an MlpRegressor: both scalers plus the layer weights.
/// The hidden width is implied by b1.size().
struct MlpParams {
  data::ScalerParams scaler;
  data::LabelScalerParams label;
  Matrix w1;  ///< input-to-hidden weights (d x h)
  Vector b1;  ///< hidden biases (h)
  Vector w2;  ///< hidden-to-output weights (h)
  double b2 = 0.0;
};

class MlpRegressor final : public Regressor {
 public:
  explicit MlpRegressor(MlpConfig config = {});

  void fit(const Matrix& x, const Vector& y) override;
  [[nodiscard]] Vector predict(const Matrix& x) const override;
  [[nodiscard]] std::unique_ptr<Regressor> clone_config() const override;
  [[nodiscard]] std::string name() const override { return "Neural Network"; }
  [[nodiscard]] bool fitted() const override { return fitted_; }

  /// Copies out the fitted state. Throws std::logic_error if not fitted.
  [[nodiscard]] MlpParams export_params() const;

  /// Adopts previously exported state and marks the model fitted.
  /// Throws std::invalid_argument on inconsistent layer shapes.
  void import_params(MlpParams params);

 private:
  [[nodiscard]] Vector forward(const Matrix& xs) const;

  MlpConfig config_;
  data::StandardScaler scaler_;
  data::LabelScaler label_scaler_;
  // Parameters: w1 (d x h), b1 (h), w2 (h), b2 (scalar).
  Matrix w1_;
  Vector b1_;
  Vector w2_;
  double b2_ = 0.0;
  std::size_t n_features_ = 0;
  bool fitted_ = false;
};

}  // namespace vmincqr::models
