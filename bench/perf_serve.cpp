// Serving-daemon benchmark: sustained throughput and request latency through
// the VminDaemon front door (bounded queue -> batcher -> predict_batch),
// emitted as machine-readable BENCH_serve.json.
//
// Usage: perf_serve [output.json]     default output: BENCH_serve.json
//
// Four scenarios sweep the two daemon knobs that move serving performance:
// the batch cap (16 = latency-lean coalescing, 256 = throughput-lean) and
// the pool width (1 thread vs this host's max). Each scenario reports
//   * qps       -- closed-set wave: submit kWaveQueries tickets, wait all;
//                  queries / median wall-clock over 3 waves.
//   * p50/p99   -- closed-loop ask() round trips (submit + block), in us.
//   * coverage / mean_width_v -- the statistical outputs of the responses
//                  the daemon actually returned for the wave, against the
//                  wave's known labels. The daemon serves bit-exactly to
//                  serve::VminPredictor at every width, so these must be
//                  IDENTICAL across all four scenarios; bench_compare gates
//                  them per scenario, catching both statistical drift and
//                  any future width-dependent serving bug.
//
// Two further blocks are deterministic by construction (integer leaves, so
// bench_compare gates them exactly, not within a tolerance band):
//   * overload  -- pause-fill-drain on a tiny queue: exact admitted / shed /
//                  batch counts prove backpressure sheds typed responses and
//                  never grows the queue past its bound.
//   * cache     -- scripted install/activate sequence on a 2-slot LRU:
//                  exact hit / miss / eviction counts.
//
// Wall-clock timing is bench/-only by repo policy; the daemon itself stays
// clock-free.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "artifact/bundle.hpp"
#include "conformal/cqr.hpp"
#include "daemon/vmin_daemon.hpp"
#include "models/factory.hpp"
#include "parallel/thread_pool.hpp"
#include "rng/rng.hpp"
#include "serve/vmin_predictor.hpp"
#include "stats/metrics.hpp"

using namespace vmincqr;

namespace {

constexpr std::size_t kTrainRows = 2000;
constexpr std::size_t kFeatures = 13;
constexpr std::size_t kWaveQueries = 4096;
constexpr std::size_t kLatencySamples = 256;
constexpr int kWaveReps = 5;
// Percentiles are computed per repetition and the MEDIAN across reps is
// reported: one scheduler hiccup then moves one rep's p99, not the metric.
constexpr int kLatencyReps = 5;

struct Problem {
  linalg::Matrix x;
  linalg::Vector y;
};

Problem make_problem(std::size_t n, std::size_t d) {
  rng::Rng rng(7);
  Problem p{linalg::Matrix(n, d), linalg::Vector(n)};
  for (std::size_t i = 0; i < n; ++i) {
    double signal = 0.0;
    for (std::size_t c = 0; c < d; ++c) {
      p.x(i, c) = rng.normal();
      signal += (c % 3 == 0 ? 0.3 : 0.05) * p.x(i, c);
    }
    p.y[i] = 0.55 + 0.01 * signal + rng.normal(0.0, 0.003);
  }
  return p;
}

/// Median wall-clock seconds over `reps` runs of `fn` (one warmup first).
double median_seconds(int reps, const std::function<void()>& fn) {
  fn();  // warmup: first run pays allocator/cache/pool-spawn setup
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    const auto stop = std::chrono::steady_clock::now();
    samples.push_back(std::chrono::duration<double>(stop - start).count());
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

std::string json_number(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.6g", value);
  return buffer;
}

/// Trains the CQR-GBT predictor once and freezes it as VQAF bytes; every
/// daemon in this bench installs copies of this one artifact.
std::vector<std::uint8_t> make_artifact_bytes(const Problem& train) {
  const core::MiscoverageAlpha alpha{0.1};
  auto cqr = std::make_unique<conformal::ConformalizedQuantileRegressor>(
      alpha, models::make_quantile_pair(models::ModelKind::kXgboost, alpha));
  cqr->fit(train.x, train.y);
  artifact::VminBundle bundle;
  bundle.label = cqr->name();
  for (std::size_t c = 0; c < kFeatures; ++c) {
    bundle.dataset_columns.push_back(c);
    bundle.selected_features.push_back(c);
  }
  bundle.predictor = std::move(cqr);
  return artifact::encode_bundle(bundle);
}

struct ScenarioResult {
  std::string name;
  std::size_t threads = 0;
  std::size_t max_batch_rows = 0;
  double qps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double coverage = 0.0;
  double mean_width = 0.0;
};

ScenarioResult run_scenario(std::string name, std::size_t width,
                            std::size_t max_batch_rows,
                            const std::vector<std::uint8_t>& artifact_bytes,
                            const Problem& wave) {
  ScenarioResult r;
  r.name = std::move(name);
  r.threads = width;
  r.max_batch_rows = max_batch_rows;

  const std::size_t n = wave.x.rows();
  std::vector<daemon::ChipQuery> queries(n);
  for (std::size_t i = 0; i < n; ++i) {
    queries[i].features.assign(wave.x.row_ptr(i), wave.x.row_ptr(i) + kFeatures);
  }

  // The daemon is the pool's sole external caller while running, so the
  // width is pinned before start() and restored after stop().
  parallel::set_max_threads(width);
  {
    daemon::DaemonConfig config;
    config.queue_capacity = n + 8;  // waves never shed: pure serving numbers
    config.max_batch_rows = max_batch_rows;
    daemon::VminDaemon d(config);
    d.install_bytes("main", artifact_bytes);
    d.start();

    // Throughput: one closed-set wave = submit everything, then wait for
    // everything. The responses of the measured wave double as the
    // statistical sample.
    std::vector<daemon::Ticket> tickets(n);
    linalg::Vector lower(n);
    linalg::Vector upper(n);
    const auto one_wave = [&] {
      for (std::size_t i = 0; i < n; ++i) {
        tickets[i] = d.submit(queries[i]);
      }
      for (std::size_t i = 0; i < n; ++i) {
        const daemon::ServeResponse& response = tickets[i].wait();
        lower[i] = response.interval.lower;
        upper[i] = response.interval.upper;
      }
    };
    const double wave_s = median_seconds(kWaveReps, one_wave);
    r.qps = static_cast<double>(n) / wave_s;
    r.coverage = stats::interval_coverage(wave.y, lower, upper);
    r.mean_width = stats::mean_interval_length(lower, upper);

    // Latency: closed-loop single-chip round trips (one ask() at a time, so
    // every sample pays the full queue -> batch-of-1 -> wake path).
    std::vector<double> p50_reps;
    std::vector<double> p99_reps;
    std::vector<double> lat_us(kLatencySamples);
    (void)d.ask(queries[0]);  // warmup
    for (int rep = 0; rep < kLatencyReps; ++rep) {
      for (std::size_t s = 0; s < kLatencySamples; ++s) {
        const auto start = std::chrono::steady_clock::now();
        (void)d.ask(queries[s % n]);
        const auto stop = std::chrono::steady_clock::now();
        lat_us[s] = 1e6 * std::chrono::duration<double>(stop - start).count();
      }
      std::sort(lat_us.begin(), lat_us.end());
      p50_reps.push_back(lat_us[lat_us.size() / 2]);
      p99_reps.push_back(
          lat_us[std::min(lat_us.size() - 1, lat_us.size() * 99 / 100)]);
    }
    std::sort(p50_reps.begin(), p50_reps.end());
    std::sort(p99_reps.begin(), p99_reps.end());
    r.p50_us = p50_reps[p50_reps.size() / 2];
    r.p99_us = p99_reps[p99_reps.size() / 2];

    d.stop();
  }
  parallel::set_max_threads(0);
  return r;
}

/// Deterministic overload: the batcher is paused before start, the tiny
/// queue is filled past its bound from this thread, and stop() drains.
/// Every count below is exact — no races, no sleeps.
daemon::DaemonStats run_overload_block(
    const std::vector<std::uint8_t>& artifact_bytes, const Problem& wave,
    std::size_t queue_capacity, std::size_t overflow,
    std::size_t max_batch_rows) {
  daemon::DaemonConfig config;
  config.queue_capacity = queue_capacity;
  config.max_batch_rows = max_batch_rows;
  daemon::VminDaemon d(config);
  d.install_bytes("main", artifact_bytes);
  d.pause();
  d.start();
  std::vector<daemon::Ticket> tickets;
  for (std::size_t i = 0; i < queue_capacity + overflow; ++i) {
    daemon::ChipQuery q;
    q.features.assign(wave.x.row_ptr(i), wave.x.row_ptr(i) + kFeatures);
    tickets.push_back(d.submit(q));
  }
  d.stop();  // opens the gate, drains the admitted requests, joins
  for (const auto& t : tickets) {
    (void)t.wait();  // all resolved: typed shed or served
  }
  return d.stats();
}

/// Scripted LRU exercise on a 2-slot cache: install A, B (both resident),
/// re-activate A (hit, refreshes A), install C (evicts LRU = B), activate B
/// (miss: evicted, throws), activate A (hit).
daemon::DaemonStats run_cache_block(
    const std::vector<std::uint8_t>& artifact_bytes) {
  daemon::DaemonConfig config;
  config.cache_capacity = 2;
  daemon::VminDaemon d(config);
  d.install_bytes("A", artifact_bytes);
  d.install_bytes("B", artifact_bytes);
  (void)d.activate("A");
  d.install_bytes("C", artifact_bytes);
  bool evicted_misses = false;
  try {
    (void)d.activate("B");
  } catch (const std::invalid_argument&) {
    evicted_misses = true;
  }
  (void)d.activate("A");
  if (!evicted_misses) {
    std::fprintf(stderr, "cache block: expected B to be evicted\n");
    std::exit(1);
  }
  return d.stats();
}

void write_scenario(std::FILE* out, const ScenarioResult& r, bool last) {
  std::fprintf(out, "    {\n");
  std::fprintf(out, "      \"name\": \"%s\",\n", r.name.c_str());
  std::fprintf(out, "      \"threads\": %zu,\n", r.threads);
  std::fprintf(out, "      \"max_batch_rows\": %zu,\n", r.max_batch_rows);
  std::fprintf(out, "      \"qps\": %s,\n", json_number(r.qps).c_str());
  std::fprintf(out, "      \"p50_us\": %s,\n", json_number(r.p50_us).c_str());
  std::fprintf(out, "      \"p99_us\": %s,\n", json_number(r.p99_us).c_str());
  std::fprintf(out, "      \"coverage\": %s,\n",
               json_number(r.coverage).c_str());
  std::fprintf(out, "      \"mean_width_v\": %s\n",
               json_number(r.mean_width).c_str());
  std::fprintf(out, "    }%s\n", last ? "" : ",");
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_serve.json";
  const std::size_t wide = parallel::max_threads();
  const Problem train = make_problem(kTrainRows, kFeatures);
  const Problem wave = make_problem(kWaveQueries, kFeatures);
  const std::vector<std::uint8_t> artifact_bytes = make_artifact_bytes(train);

  std::vector<ScenarioResult> scenarios;
  scenarios.push_back(
      run_scenario("batch16_w1", 1, 16, artifact_bytes, wave));
  scenarios.push_back(
      run_scenario("batch16_wmax", wide, 16, artifact_bytes, wave));
  scenarios.push_back(
      run_scenario("batch256_w1", 1, 256, artifact_bytes, wave));
  scenarios.push_back(
      run_scenario("batch256_wmax", wide, 256, artifact_bytes, wave));
  for (const auto& r : scenarios) {
    std::printf(
        "%-13s %zu thread(s)  batch %3zu  %9.0f qps  p50 %8.1f us  "
        "p99 %8.1f us  coverage %.4f  width %.6f V\n",
        r.name.c_str(), r.threads, r.max_batch_rows, r.qps, r.p50_us,
        r.p99_us, r.coverage, r.mean_width);
  }

  constexpr std::size_t kOverloadQueue = 8;
  constexpr std::size_t kOverloadOverflow = 5;
  constexpr std::size_t kOverloadBatch = 4;
  const daemon::DaemonStats overload = run_overload_block(
      artifact_bytes, wave, kOverloadQueue, kOverloadOverflow, kOverloadBatch);
  std::printf(
      "overload      submitted %zu  accepted %llu  shed %llu  batches %llu  "
      "max depth %zu\n",
      kOverloadQueue + kOverloadOverflow,
      static_cast<unsigned long long>(overload.accepted),
      static_cast<unsigned long long>(overload.shed_queue_full),
      static_cast<unsigned long long>(overload.batches),
      overload.max_queue_depth);

  const daemon::DaemonStats cache = run_cache_block(artifact_bytes);
  std::printf(
      "cache         installs %llu  activations %llu  hits %llu  misses %llu"
      "  evictions %llu\n",
      static_cast<unsigned long long>(cache.installs),
      static_cast<unsigned long long>(cache.activations),
      static_cast<unsigned long long>(cache.cache.hits),
      static_cast<unsigned long long>(cache.cache.misses),
      static_cast<unsigned long long>(cache.cache.evictions));

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fputs("{\n", out);
  std::fprintf(out, "  \"threads\": %zu,\n", wide);
  std::fprintf(out, "  \"features\": %zu,\n", kFeatures);
  std::fprintf(out, "  \"wave_queries\": %zu,\n", kWaveQueries);
  std::fprintf(out, "  \"latency_samples\": %zu,\n", kLatencySamples);
  std::fprintf(out, "  \"artifact_bytes\": %zu,\n", artifact_bytes.size());
  std::fprintf(out, "  \"scenarios\": [\n");
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    write_scenario(out, scenarios[i], i + 1 == scenarios.size());
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"overload\": {\n");
  std::fprintf(out, "    \"submitted\": %zu,\n",
               kOverloadQueue + kOverloadOverflow);
  std::fprintf(out, "    \"queue_capacity\": %zu,\n", kOverloadQueue);
  std::fprintf(out, "    \"accepted\": %llu,\n",
               static_cast<unsigned long long>(overload.accepted));
  std::fprintf(out, "    \"shed_queue_full\": %llu,\n",
               static_cast<unsigned long long>(overload.shed_queue_full));
  std::fprintf(out, "    \"served_ok\": %llu,\n",
               static_cast<unsigned long long>(overload.served_ok));
  std::fprintf(out, "    \"batches\": %llu,\n",
               static_cast<unsigned long long>(overload.batches));
  std::fprintf(out, "    \"max_queue_depth\": %zu\n",
               overload.max_queue_depth);
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"cache\": {\n");
  std::fprintf(out, "    \"installs\": %llu,\n",
               static_cast<unsigned long long>(cache.installs));
  std::fprintf(out, "    \"activations\": %llu,\n",
               static_cast<unsigned long long>(cache.activations));
  std::fprintf(out, "    \"hits\": %llu,\n",
               static_cast<unsigned long long>(cache.cache.hits));
  std::fprintf(out, "    \"misses\": %llu,\n",
               static_cast<unsigned long long>(cache.cache.misses));
  std::fprintf(out, "    \"evictions\": %llu\n",
               static_cast<unsigned long long>(cache.cache.evictions));
  std::fprintf(out, "  }\n");
  std::fputs("}\n", out);
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
