// Index-level dataset splitting: k-fold cross-validation and the
// train/calibration split used by split conformal prediction.
#pragma once

#include <cstddef>
#include <vector>

#include "rng/rng.hpp"

namespace vmincqr::data {

/// One cross-validation fold as row indices into the full dataset.
struct Fold {
  std::vector<std::size_t> train;
  std::vector<std::size_t> test;
};

/// Shuffled k-fold split of n samples. Folds partition {0..n-1}; sizes
/// differ by at most one. Throws std::invalid_argument if k < 2 or k > n.
std::vector<Fold> k_fold(std::size_t n, std::size_t k, rng::Rng& rng);

/// Pair of disjoint index sets: proper-training and calibration.
struct TrainCalibSplit {
  std::vector<std::size_t> train;
  std::vector<std::size_t> calibration;
};

/// Randomly splits the given indices into train (fraction `train_fraction`)
/// and calibration (the rest). Both parts are guaranteed non-empty when
/// indices.size() >= 2. Throws std::invalid_argument if train_fraction is
/// outside (0, 1) or fewer than 2 indices are supplied.
TrainCalibSplit train_calibration_split(std::vector<std::size_t> indices,
                                        double train_fraction, rng::Rng& rng);

}  // namespace vmincqr::data
