// Chunk encoders/decoders for every fitted predictor the pipeline can
// produce. The chunk tag doubles as the runtime type discriminator, so a
// decoded artifact reconstructs the exact concrete type that was saved:
//
//   point models    LINR ENET GBTR OBST GPRG MLPR
//   interval models QPAR GPIV CQRC SCPC NCPC
//
// Composite predictors (quantile pairs, conformal wrappers) nest their
// children as chunks inside their own payload. Decoded models carry only
// predict-path state (via each model's XxxParams import); they are serve-only
// objects — refitting one uses default hyperparameters.
#pragma once

#include <memory>

#include "artifact/codec.hpp"
#include "models/interval.hpp"
#include "models/regressor.hpp"

namespace vmincqr::artifact {

/// Writes one chunk holding the fitted state of a point regressor.
/// Throws ArtifactError for a concrete type the format cannot represent and
/// std::logic_error if the model is unfitted.
void encode_regressor(Writer& writer, const models::Regressor& model);

/// Reads one point-regressor chunk and reconstructs the concrete model.
/// Throws ArtifactError on an unknown chunk tag or malformed payload.
[[nodiscard]] std::unique_ptr<models::Regressor> decode_regressor(
    Reader& reader);

/// Writes one chunk holding the fitted state of an interval regressor
/// (including its calibration, for conformal wrappers).
/// Throws ArtifactError for an unrepresentable type; std::logic_error if the
/// model is unfitted or uncalibrated.
void encode_interval_regressor(Writer& writer,
                               const models::IntervalRegressor& model);

/// Reads one interval-regressor chunk and reconstructs the concrete model,
/// ready to serve predict_interval(). Throws ArtifactError on an unknown
/// chunk tag or malformed payload.
[[nodiscard]] std::unique_ptr<models::IntervalRegressor>
decode_interval_regressor(Reader& reader);

}  // namespace vmincqr::artifact
