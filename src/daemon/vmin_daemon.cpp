#include "daemon/vmin_daemon.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "core/contracts.hpp"

namespace vmincqr::daemon {

const ServeResponse& Ticket::wait() const {
  VMINCQR_REQUIRE(state_ != nullptr, "Ticket: wait() on an invalid ticket");
  state_->done.wait();
  return state_->response;
}

VminDaemon::VminDaemon(DaemonConfig config)
    : config_(config),
      cache_(config.cache_capacity),
      queue_(config.queue_capacity) {
  VMINCQR_REQUIRE(config.max_batch_rows > 0,
                  "VminDaemon: max_batch_rows must be positive");
}

VminDaemon::~VminDaemon() { stop(); }

void VminDaemon::start() {
  const parallel::ScopedLock lock(control_mutex_);
  VMINCQR_REQUIRE(!started_, "VminDaemon: already started");
  VMINCQR_REQUIRE(!stopped_, "VminDaemon: one-shot lifecycle, cannot restart");
  started_ = true;
  batcher_.start([this] { run_loop(); });
}

void VminDaemon::stop() {
  bool join_batcher = false;
  {
    const parallel::ScopedLock lock(control_mutex_);
    if (stopped_) return;
    stopped_ = true;
    join_batcher = started_;
  }
  queue_.close();
  gate_.open();
  if (join_batcher) batcher_.join();
}

void VminDaemon::pause() { gate_.close(); }

void VminDaemon::resume() { gate_.open(); }

std::uint64_t VminDaemon::install_bytes(const std::string& key,
                                        const std::vector<std::uint8_t>& bytes) {
  // Decode before touching any daemon state: a malformed artifact throws
  // here and the active epoch keeps serving — the swap is all-or-nothing.
  auto predictor = std::make_shared<const serve::VminPredictor>(
      serve::VminPredictor::from_bytes(bytes));
  cache_.put(key, predictor);
  return publish(std::move(predictor), /*is_install=*/true);
}

std::uint64_t VminDaemon::install_file(const std::string& key,
                                       const std::string& path) {
  auto predictor = std::make_shared<const serve::VminPredictor>(
      serve::VminPredictor::load_file(path));
  cache_.put(key, predictor);
  return publish(std::move(predictor), /*is_install=*/true);
}

std::uint64_t VminDaemon::activate(const std::string& key) {
  auto predictor = cache_.get(key);
  if (predictor == nullptr) {
    throw std::invalid_argument(
        "VminDaemon::activate: bundle not resident in cache: " + key);
  }
  return publish(std::move(predictor), /*is_install=*/false);
}

std::uint64_t VminDaemon::publish(
    std::shared_ptr<const serve::VminPredictor> predictor, bool is_install) {
  VMINCQR_REQUIRE(predictor != nullptr, "VminDaemon: null predictor");
  std::uint64_t id = 0;
  {
    const parallel::ScopedLock lock(control_mutex_);
    id = next_epoch_id_;
    ++next_epoch_id_;
    auto epoch = std::make_shared<Epoch>();
    epoch->id = id;
    epoch->predictor = std::move(predictor);
    epoch_cell_.store(std::move(epoch));
  }
  {
    const parallel::ScopedLock lock(stats_mutex_);
    if (is_install) {
      ++stats_.installs;
    } else {
      ++stats_.activations;
    }
  }
  return id;
}

std::uint64_t VminDaemon::active_epoch() const {
  const auto epoch = epoch_cell_.load();
  return epoch == nullptr ? 0 : epoch->id;
}

Ticket VminDaemon::submit(ChipQuery query) {
  auto pending = std::make_shared<detail::Pending>();
  WorkItem item{std::move(query), pending};
  // The sequence stamp runs under the queue lock, before the item becomes
  // poppable: the batcher's later writes to the same response slot are
  // ordered after it, so no lock is needed on the slot itself.
  const parallel::Push outcome = queue_.try_push_sequenced(
      std::move(item), [&pending](std::uint64_t sequence) {
        pending->response.sequence = sequence;
      });
  switch (outcome) {
    case parallel::Push::kAccepted: {
      const parallel::ScopedLock lock(stats_mutex_);
      ++stats_.accepted;
      break;
    }
    case parallel::Push::kFull: {
      pending->response.status = ServeStatus::kShedQueueFull;
      pending->done.set();
      const parallel::ScopedLock lock(stats_mutex_);
      ++stats_.shed_queue_full;
      break;
    }
    case parallel::Push::kClosed: {
      pending->response.status = ServeStatus::kShedShutdown;
      pending->done.set();
      const parallel::ScopedLock lock(stats_mutex_);
      ++stats_.shed_shutdown;
      break;
    }
  }
  return Ticket(std::move(pending));
}

ServeResponse VminDaemon::ask(ChipQuery query) {
  return submit(std::move(query)).wait();
}

DaemonStats VminDaemon::stats() const {
  DaemonStats out;
  {
    const parallel::ScopedLock lock(stats_mutex_);
    out = stats_;
  }
  out.max_queue_depth = queue_.max_depth();
  out.cache = cache_.stats();
  return out;
}

void VminDaemon::run_loop() {
  std::vector<WorkItem> batch;
  for (;;) {
    gate_.wait_open();
    if (queue_.pop_batch(batch, config_.max_batch_rows) == 0) break;
    serve_batch(batch);
  }
}

void VminDaemon::serve_batch(std::vector<WorkItem>& batch) {
  // One epoch snapshot per batch: every response in this batch is computed
  // by exactly this predictor, regardless of concurrent installs. The
  // snapshot's refcount keeps the bundle alive until the batch finishes.
  const auto epoch = epoch_cell_.load();
  const std::size_t width =
      epoch == nullptr ? 0 : epoch->predictor->expected_features();

  std::uint64_t n_bad_width = 0;
  std::uint64_t n_no_artifact = 0;
  std::vector<std::size_t> ok_rows;
  ok_rows.reserve(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    ServeResponse& response = batch[i].pending->response;
    response.served_sequence = next_served_sequence_;
    ++next_served_sequence_;
    if (epoch == nullptr) {
      response.status = ServeStatus::kNoArtifact;
      ++n_no_artifact;
      continue;
    }
    response.epoch = epoch->id;
    if (batch[i].query.features.size() != width) {
      response.status = ServeStatus::kBadWidth;
      ++n_bad_width;
      continue;
    }
    ok_rows.push_back(i);
  }

  std::uint64_t n_ok = 0;
  std::uint64_t n_internal = 0;
  if (!ok_rows.empty()) {
    linalg::Matrix x(ok_rows.size(), width);
    for (std::size_t j = 0; j < ok_rows.size(); ++j) {
      const std::vector<double>& row = batch[ok_rows[j]].query.features;
      std::copy(row.begin(), row.end(), x.row_ptr(j));
    }
    try {
      const std::vector<serve::IntervalPrediction> intervals =
          epoch->predictor->predict_batch(x);
      for (std::size_t j = 0; j < ok_rows.size(); ++j) {
        ServeResponse& response = batch[ok_rows[j]].pending->response;
        response.status = ServeStatus::kOk;
        response.interval = intervals[j];
      }
      n_ok = ok_rows.size();
    } catch (const std::exception&) {
      // A throwing predictor must not take the daemon down: answer the
      // batch with a typed error and keep draining.
      for (const std::size_t i : ok_rows) {
        batch[i].pending->response.status = ServeStatus::kInternalError;
      }
      n_internal = ok_rows.size();
    }
  }

  // Responses are fully written before any waiter wakes.
  for (WorkItem& item : batch) item.pending->done.set();

  const parallel::ScopedLock lock(stats_mutex_);
  ++stats_.batches;
  stats_.served_ok += n_ok;
  stats_.served_bad_width += n_bad_width;
  stats_.served_no_artifact += n_no_artifact;
  stats_.served_internal_error += n_internal;
}

}  // namespace vmincqr::daemon
