// Serve-module roots for the phase-5 fixture tree: every definition in
// this TU seeds the serve-reachable cone, so the core helpers handle()
// calls become hot by reachability. The two annotated functions exercise
// the grant/manifest contract in both directions: shard_scratch is
// committed in hotpath_tiers.toml (granted, silent), rogue_scratch is
// annotated but missing from the manifest -> hot-path-manifest fires on
// the definition while the grant still silences its allocation.

double handle(const Matrix& m, const Model* model,
              const std::vector<double>& xs, double x) {
  double acc = alloc_helper(x, xs.size());
  acc += grow_rows(xs);
  acc += peek_row(m, 0);
  acc += copy_param(m, x);
  acc += inner_dispatch(model, x, xs.size());
  acc += batched_dispatch(model, x, xs.size());
  return acc;
}

// vmincqr: hot-path(allow-alloc)
double shard_scratch(double x, std::size_t n) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> slab(4, x);
    acc += slab[0];
  }
  return acc;
}

// vmincqr: hot-path(allow-alloc)
double rogue_scratch(double x, std::size_t n) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> slab(4, x);
    acc += slab[1];
  }
  return acc;
}
