// Tests for the application layer: screening policies and Vmin binning.
#include <gtest/gtest.h>

#include "core/binning.hpp"
#include "core/screening.hpp"

namespace vmincqr::core {
namespace {

TEST(Screening, IntervalRuleDecisions) {
  const Volt spec{0.65};
  EXPECT_EQ(screen_interval(0.50, 0.60, spec), ScreenDecision::kPass);
  EXPECT_EQ(screen_interval(0.66, 0.70, spec), ScreenDecision::kFail);
  EXPECT_EQ(screen_interval(0.60, 0.70, spec), ScreenDecision::kRetest);
  // Boundary: upper exactly at spec passes; lower exactly at spec retests.
  EXPECT_EQ(screen_interval(0.60, 0.65, spec), ScreenDecision::kPass);
  EXPECT_EQ(screen_interval(0.65, 0.70, spec), ScreenDecision::kRetest);
  EXPECT_THROW(screen_interval(0.7, 0.6, spec), std::invalid_argument);
}

TEST(Screening, PointRuleDecisions) {
  const Volt spec{0.65};
  EXPECT_EQ(screen_point(0.60, Millivolt{20.0}, spec), ScreenDecision::kPass);
  EXPECT_EQ(screen_point(0.64, Millivolt{20.0}, spec), ScreenDecision::kFail);
  EXPECT_THROW(screen_point(0.6, Millivolt{-10.0}, spec),
               std::invalid_argument);
}

TEST(Screening, GuardBandUnitsAreMillivolts) {
  // A 20 mV guard band shifts the effective limit by 0.020 V, not by 20 V:
  // prediction 0.64 + 0.020 exceeds the 0.655 V spec.
  EXPECT_EQ(screen_point(0.64, Millivolt{20.0}, Volt{0.655}),
            ScreenDecision::kFail);
  EXPECT_EQ(screen_point(0.63, Millivolt{20.0}, Volt{0.655}),
            ScreenDecision::kPass);
  EXPECT_DOUBLE_EQ(Millivolt{20.0}.to_volts().value(), 0.020);
  EXPECT_DOUBLE_EQ(Volt{0.655}.to_millivolts().value(), 655.0);
}

TEST(Screening, BatchAccounting) {
  //            chip:      A      B      C      D
  const Vector truth = {0.60, 0.70, 0.60, 0.70};
  const Vector lower = {0.55, 0.55, 0.66, 0.60};
  const Vector upper = {0.62, 0.62, 0.70, 0.70};
  // min_spec 0.65: A pass(good), B pass(bad->underkill),
  // C fail(good->overkill), D retest.
  const auto report = screen_batch_interval(truth, lower, upper, Volt{0.65});
  EXPECT_EQ(report.n_pass, 2u);
  EXPECT_EQ(report.n_fail, 1u);
  EXPECT_EQ(report.n_retest, 1u);
  EXPECT_EQ(report.n_underkill, 1u);
  EXPECT_EQ(report.n_overkill, 1u);
  EXPECT_EQ(report.n_truly_bad, 2u);
  EXPECT_DOUBLE_EQ(report.retest_rate(), 0.25);
  EXPECT_DOUBLE_EQ(report.underkill_rate(), 0.5);
  EXPECT_DOUBLE_EQ(report.overkill_rate(), 0.5);
}

TEST(Screening, BatchValidation) {
  EXPECT_THROW(screen_batch_interval({}, {}, {}, Volt{0.5}),
               std::invalid_argument);
  EXPECT_THROW(screen_batch_interval({1.0}, {1.0, 2.0}, {1.0}, Volt{0.5}),
               std::invalid_argument);
}

TEST(Screening, GuardBandCalibration) {
  // Predictions systematically 30 mV below truth: need >= 0.03 guard band
  // to eliminate underkill.
  Vector truth, pred;
  for (int i = 0; i < 50; ++i) {
    truth.push_back(0.60 + 0.002 * i);
    pred.push_back(truth.back() - 0.03);
  }
  const Millivolt guard = calibrate_guard_band(
      truth, pred, Volt{0.65},
      {Millivolt{0.0}, Millivolt{10.0}, Millivolt{20.0}, Millivolt{30.0},
       Millivolt{50.0}},
      0.0);
  EXPECT_DOUBLE_EQ(guard.value(), 30.0);
  EXPECT_THROW(calibrate_guard_band(truth, pred, Volt{0.65}, {}, 0.0),
               std::invalid_argument);
}

TEST(Binning, AssignsLowestSufficientBin) {
  BinningConfig config{{0.55, 0.60, 0.65}};
  const Vector required = {0.54, 0.55, 0.61, 0.70};
  const Vector truth = {0.53, 0.54, 0.60, 0.69};
  const auto result = bin_chips(required, truth, config);
  EXPECT_EQ(result.bin_of_chip, (std::vector<int>{0, 0, 2, -1}));
  EXPECT_EQ(result.bin_counts, (std::vector<std::size_t>{2, 0, 1}));
  EXPECT_EQ(result.n_unbinnable, 1u);
  EXPECT_NEAR(result.mean_voltage, (0.55 + 0.55 + 0.65) / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(result.violation_rate, 0.0);
}

TEST(Binning, ViolationWhenTruthExceedsBin) {
  BinningConfig config{{0.55, 0.60}};
  const Vector required = {0.54};  // bin 0 (0.55 V)
  const Vector truth = {0.57};     // true Vmin above the allocated bin
  const auto result = bin_chips(required, truth, config);
  EXPECT_DOUBLE_EQ(result.violation_rate, 1.0);
}

TEST(Binning, Validation) {
  EXPECT_THROW(bin_chips({0.5}, {}, BinningConfig{{}}),
               std::invalid_argument);
  EXPECT_THROW(bin_chips({0.5}, {}, BinningConfig{{0.6, 0.6}}),
               std::invalid_argument);
  EXPECT_THROW(bin_chips({0.5}, {}, BinningConfig{{0.6, 0.55}}),
               std::invalid_argument);
  EXPECT_THROW(bin_chips({}, {}, BinningConfig{{0.6}}),
               std::invalid_argument);
  EXPECT_THROW(bin_chips({0.5}, {0.5, 0.6}, BinningConfig{{0.6}}),
               std::invalid_argument);
  EXPECT_THROW(bin_by_point({0.5}, Millivolt{-10.0}, {}, BinningConfig{{0.6}}),
               std::invalid_argument);
}

TEST(Binning, PointRuleAddsGuardBand) {
  BinningConfig config{{0.55, 0.60, 0.65}};
  const Vector predicted = {0.56};
  const auto no_guard = bin_by_point(predicted, Millivolt{0.0}, {}, config);
  const auto guarded = bin_by_point(predicted, Millivolt{50.0}, {}, config);
  EXPECT_EQ(no_guard.bin_of_chip[0], 1);
  EXPECT_EQ(guarded.bin_of_chip[0], 2);
}

TEST(Binning, VoltageSavingComputedOverCommonChips) {
  BinningConfig config{{0.55, 0.60, 0.65}};
  BinningResult a, b;
  a.bin_of_chip = {0, 1, -1};
  b.bin_of_chip = {1, 2, 0};
  // Common chips: 0 and 1; saving = (0.60-0.55) + (0.65-0.60) over 2.
  EXPECT_NEAR(mean_voltage_saving(a, b, config), 0.05, 1e-12);
  BinningResult mismatched;
  mismatched.bin_of_chip = {0};
  EXPECT_THROW(mean_voltage_saving(a, mismatched, config),
               std::invalid_argument);
}

TEST(Screening, DecisionToString) {
  EXPECT_EQ(to_string(ScreenDecision::kPass), "pass");
  EXPECT_EQ(to_string(ScreenDecision::kFail), "fail");
  EXPECT_EQ(to_string(ScreenDecision::kRetest), "retest");
}

}  // namespace
}  // namespace vmincqr::core
