// Structure-of-arrays flattening of fitted tree ensembles — the inference
// kernel behind GBT / ordered-boost / single-tree predict.
//
// A fitted ensemble is pointer-chased AoS (vector<TreeNode>, 56+ bytes per
// node, one heap block per tree). For serving, that layout wastes the cache:
// each traversal touches one bool + one feature + one threshold + one child
// index out of every 56-byte node. Flattening packs the whole forest into
// four contiguous planes (feature / threshold-or-value / left / right,
// ~20 bytes per node) with absolute child indices, so a 100-tree depth-6
// forest fits in L2 and stays there across an entire batch.
//
// The traversal kernel processes a block of rows per plane sweep: rows outer
// in blocks of kTraversalRowBlock, trees inner — the row block stays in L1
// while the node planes stream once per block. Per ROW the accumulation
// order is unchanged from the scalar reference (base term first, then trees
// in round order, one fused multiply-add per tree), so flat predictions are
// BIT-IDENTICAL to the AoS path on every tier; this kernel has no fast
// variant because it reorders nothing.
#pragma once

#include <cstdint>
#include <vector>

namespace vmincqr::models {

struct TreeNode;
struct ObliviousTree;

/// Rows traversed per plane sweep (8 doubles x 13 features x 256 rows ~ 26KB
/// of row data resident in L1/L2 while the node planes stream).
inline constexpr std::size_t kTraversalRowBlock = 256;

/// SoA flattening of a binary-tree ensemble (RegressionTree node arrays).
///
/// Nodes are renumbered breadth-first so SIBLINGS ARE ADJACENT: an internal
/// node stores only its left child's absolute index, and one traversal step
/// is pure arithmetic —
///
///   idx = child[idx] + (row[feature[idx]] > threshold[idx])
///
/// (`<=` goes left, `>` lands on left + 1 == right; the same predicate as
/// the AoS reference, so the same leaf is reached). Leaves store threshold
/// = +infinity (the comparison is always false) and child = their own index,
/// i.e. they SELF-LOOP: stepping past a leaf is a no-op. That lets the
/// traversal run a FIXED number of steps (the tree's recorded depth) with
/// no data-dependent exit branch to mispredict — the compare feeds a setcc,
/// never a jump — and several rows' chains interleave to hide load latency.
class FlatForest {
 public:
  /// Appends a tree. Throws std::invalid_argument on an empty node array or
  /// dangling child indices (same contract as RegressionTree::import_nodes).
  void add_tree(const std::vector<TreeNode>& nodes);

  void clear();

  [[nodiscard]] std::size_t n_trees() const noexcept { return roots_.size(); }
  [[nodiscard]] bool empty() const noexcept { return roots_.empty(); }

  /// out[r] += scale * (sum over trees of the leaf value row r lands in),
  /// for rows x[r * stride .. r * stride + d). Per row, trees accumulate in
  /// insertion order — the exact summation order of the scalar reference.
  void accumulate(const double* x, std::size_t n_rows, std::size_t stride,
                  double scale, double* out) const;

  /// out[r] = unscaled sum over trees for row r (insertion order). The
  /// first tree ASSIGNS rather than adding into a zero, so a single-tree
  /// forest reproduces the reference's pure assignment bit-for-bit (adding
  /// a -0.0 leaf into 0.0 would normalize its sign).
  void predict_rows(const double* x, std::size_t n_rows, std::size_t stride,
                    double* out) const;

  /// Unscaled single-row sum over all trees (insertion order).
  [[nodiscard]] double predict_row(const double* row) const;

  /// Overwrites the value plane of node `node_index` of tree `tree` — keeps
  /// the flat planes in sync with leaf refits (RegressionTree::
  /// set_leaf_value). Unchecked beyond debug contracts; hot only at fit time.
  void set_node_value(std::size_t tree, std::size_t node_index, double value);

 private:
  std::vector<std::int32_t> feature_;
  std::vector<double> threshold_;   ///< leaf: +infinity (compare always false)
  std::vector<std::int32_t> child_;  ///< left child (right = +1); leaf: self
  std::vector<double> value_;        ///< leaf value; internal: 0.0
  std::vector<std::int32_t> roots_;  ///< root node index per tree
  std::vector<std::int32_t> depth_;  ///< max root-to-leaf edges per tree
  /// Original node index -> BFS-renumbered LOCAL index, concatenated per
  /// tree at the same base as the planes (set_node_value's lookup).
  std::vector<std::int32_t> remap_;
};

/// SoA flattening of a CatBoost-style oblivious forest: per-tree level
/// planes (feature, threshold) plus one contiguous leaf-value pool. The
/// d-bit leaf mask is computed exactly as ObliviousTree::leaf_index.
class FlatObliviousForest {
 public:
  /// Appends a tree. Throws std::invalid_argument when leaf_values.size()
  /// != 2^levels.
  void add_tree(const ObliviousTree& tree);

  void clear();

  [[nodiscard]] std::size_t n_trees() const noexcept {
    return level_offset_.empty() ? 0 : level_offset_.size() - 1;
  }
  [[nodiscard]] bool empty() const noexcept { return n_trees() == 0; }

  /// out[r] += scale * (sum over trees of the leaf value row r lands in);
  /// same contract and ordering guarantee as FlatForest::accumulate.
  void accumulate(const double* x, std::size_t n_rows, std::size_t stride,
                  double scale, double* out) const;

  [[nodiscard]] double predict_row(const double* row) const;

 private:
  std::vector<std::int32_t> feature_;    ///< concatenated per-level tests
  std::vector<double> threshold_;
  std::vector<double> leaf_values_;      ///< concatenated 2^depth pools
  std::vector<std::size_t> level_offset_;  ///< size n_trees + 1
  std::vector<std::size_t> leaf_offset_;   ///< size n_trees + 1
};

}  // namespace vmincqr::models
