// Negative fixture for the phase-3 concurrency rules: every sanctioned
// idiom the analyzer must NOT flag. Zero diagnostics expected.
#include <map>
#include <vector>

namespace demo {

// By-reference capture with per-chunk indexed writes: the contract's
// sanctioned pattern — disjoint slots, deterministic at any width.
void square_into(const std::vector<double>& xs, std::vector<double>& out) {
  parallel::parallel_for(xs.size(), 1024, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      out[i] = xs[i] * xs[i];
    }
  });
}

// By-value capture of a pointer-like handle: the handle itself is a copy,
// and each chunk writes its own slots through it (the capture-list
// false-positive case — a naive analyzer would flag any write through a
// captured handle).
void scale_through_handle(double* out, std::size_t n) {
  parallel::parallel_for(n, 1024, [out](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      out[i] = 2.0 * static_cast<double>(i);
    }
  });
}

// Deterministic reduction: accumulate into a chunk-local, let the pool
// combine partials in fixed chunk order.
double sum(const std::vector<double>& xs) {
  return parallel::parallel_deterministic_reduce(
      xs.size(), 2048, 0.0,
      [&](std::size_t b, std::size_t e) {
        double acc = 0.0;
        for (std::size_t i = b; i < e; ++i) {
          acc += xs[i];
        }
        return acc;
      },
      [](double a, double b) { return a + b; });
}

// Per-chunk RNG constructed from a chunk-derived seed: stream assignment is
// a pure function of the chunk grid, never of the schedule.
void jitter(std::uint64_t base_seed, std::vector<double>& out) {
  parallel::parallel_for(out.size(), 512, [&](std::size_t b, std::size_t e) {
    rng::Rng child(base_seed + 1000003u * b);
    for (std::size_t i = b; i < e; ++i) {
      out[i] = child.normal();
    }
  });
}

// Ordered container: iteration order is part of the value, so reductions
// over it are reproducible.
double keyed_total(const std::map<int, double>& weights) {
  double total = 0.0;
  for (const auto& kv : weights) {
    total = total + kv.second;
  }
  return total;
}

}  // namespace demo
