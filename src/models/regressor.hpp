// Point-regressor interface shared by every model in the zoo (Sec. IV-C of
// the paper: LR, GP, XGBoost, CatBoost, NN).
//
// Models are value-configured, then fitted; `clone()` produces a fresh
// unfitted model with the same configuration, which is what cross-validation
// and conformal wrappers need to retrain per fold without aliasing state.
#pragma once

#include <memory>
#include <string>

#include "linalg/matrix.hpp"

namespace vmincqr::models {

using linalg::Matrix;
using linalg::Vector;

class Regressor {
 public:
  virtual ~Regressor() = default;

  /// Fits the model. X is (n x d), y is length n.
  /// Throws std::invalid_argument on shape mismatch or empty data.
  virtual void fit(const Matrix& x, const Vector& y) = 0;

  /// Predicts one value per row. Throws std::logic_error if not fitted,
  /// std::invalid_argument on column-count mismatch.
  virtual Vector predict(const Matrix& x) const = 0;

  /// Fresh unfitted model with identical configuration.
  virtual std::unique_ptr<Regressor> clone_config() const = 0;

  /// Short model name for reports, e.g. "Linear Regression".
  virtual std::string name() const = 0;

  virtual bool fitted() const = 0;

 protected:
  /// Shared argument validation for fit().
  static void check_fit_args(const Matrix& x, const Vector& y);
  /// Shared argument validation for predict().
  static void check_predict_args(const Matrix& x, std::size_t expected_cols,
                                 bool is_fitted);
};

}  // namespace vmincqr::models
