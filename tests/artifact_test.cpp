// Artifact layer tests: codec primitives, per-model save->load->predict
// bit-exactness, bundle round-trips, the checked-in golden fixture (format
// stability), and rejection of truncated / corrupted / wrong-version bytes.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <fstream>
#include <limits>
#include <memory>
#include <utility>

#include "artifact/bundle.hpp"
#include "artifact/codec.hpp"
#include "artifact/model_codec.hpp"
#include "conformal/cqr.hpp"
#include "conformal/normalized.hpp"
#include "conformal/split_cp.hpp"
#include "core/pipeline.hpp"
#include "models/elastic_net.hpp"
#include "models/factory.hpp"
#include "models/gbt.hpp"
#include "models/linear.hpp"
#include "models/region.hpp"
#include "rng/rng.hpp"
#include "silicon/dataset_gen.hpp"

using namespace vmincqr;

namespace {

struct Problem {
  linalg::Matrix x;
  linalg::Vector y;
};

Problem make_problem(std::size_t n, std::size_t d, std::uint64_t seed = 7) {
  rng::Rng rng(seed);
  Problem p{linalg::Matrix(n, d), linalg::Vector(n)};
  for (std::size_t i = 0; i < n; ++i) {
    double signal = 0.0;
    for (std::size_t c = 0; c < d; ++c) {
      p.x(i, c) = rng.normal();
      signal += (c % 3 == 0 ? 0.3 : 0.05) * p.x(i, c);
    }
    p.y[i] = 0.55 + 0.01 * signal + rng.normal(0.0, 0.003);
  }
  return p;
}

std::unique_ptr<models::Regressor> roundtrip_point(
    const models::Regressor& model) {
  artifact::Writer writer;
  artifact::encode_regressor(writer, model);
  const auto bytes = writer.finish();
  artifact::Reader reader = artifact::Reader::open(bytes);
  auto decoded = artifact::decode_regressor(reader);
  EXPECT_TRUE(reader.at_end());
  return decoded;
}

std::unique_ptr<models::IntervalRegressor> roundtrip_interval(
    const models::IntervalRegressor& model) {
  artifact::Writer writer;
  artifact::encode_interval_regressor(writer, model);
  const auto bytes = writer.finish();
  artifact::Reader reader = artifact::Reader::open(bytes);
  auto decoded = artifact::decode_interval_regressor(reader);
  EXPECT_TRUE(reader.at_end());
  return decoded;
}

void expect_bitexact(const linalg::Vector& a, const linalg::Vector& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    // EXPECT_EQ on doubles: exact bit-for-bit agreement, not a tolerance.
    EXPECT_EQ(a[i], b[i]) << "row " << i;
  }
}

/// Recomputes the trailing CSUM seal of a v3 artifact after the test has
/// deliberately corrupted payload bytes — so the corruption reaches the
/// parser it targets instead of being caught by the checksum gate.
void reseal(std::vector<std::uint8_t>& bytes) {
  constexpr std::size_t kSealBytes = 4 + 8 + 4;  // kind + size + crc
  ASSERT_GE(bytes.size(), kSealBytes);
  const std::size_t protected_size = bytes.size() - kSealBytes;
  const std::uint32_t crc = artifact::crc32(bytes.data(), protected_size);
  for (std::size_t i = 0; i < 4; ++i) {
    bytes[bytes.size() - 4 + i] =
        static_cast<std::uint8_t>((crc >> (8 * i)) & 0xFFU);
  }
}

// --- codec primitives -------------------------------------------------------

TEST(ArtifactCodec, PrimitivesRoundTripBitExact) {
  artifact::Writer writer;
  writer.begin_chunk(artifact::ChunkKind::kMeta);
  writer.put_u8(0xAB);
  writer.put_u32(0xDEADBEEF);
  writer.put_u64(0x0123456789ABCDEFULL);
  writer.put_f64(-0.0);
  writer.put_f64(std::numeric_limits<double>::denorm_min());
  writer.put_f64(std::numeric_limits<double>::quiet_NaN());
  writer.put_str("Vmin \"screen\"");
  writer.put_vec({1.5, -2.25, 1e-300});
  writer.put_index_vec({0, 42, 1u << 20});
  linalg::Matrix m{{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};
  writer.put_matrix(m);
  writer.end_chunk();
  const auto bytes = writer.finish();

  artifact::Reader reader = artifact::Reader::open(bytes);
  artifact::Reader body = reader.expect_chunk(artifact::ChunkKind::kMeta);
  EXPECT_TRUE(reader.at_end());
  EXPECT_EQ(body.get_u8(), 0xAB);
  EXPECT_EQ(body.get_u32(), 0xDEADBEEFU);
  EXPECT_EQ(body.get_u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(body.get_f64()),
            std::bit_cast<std::uint64_t>(-0.0));
  EXPECT_EQ(body.get_f64(), std::numeric_limits<double>::denorm_min());
  EXPECT_EQ(std::bit_cast<std::uint64_t>(body.get_f64()),
            std::bit_cast<std::uint64_t>(
                std::numeric_limits<double>::quiet_NaN()));
  EXPECT_EQ(body.get_str(), "Vmin \"screen\"");
  EXPECT_EQ(body.get_vec(), (linalg::Vector{1.5, -2.25, 1e-300}));
  EXPECT_EQ(body.get_index_vec(),
            (std::vector<std::size_t>{0, 42, 1u << 20}));
  EXPECT_EQ(body.get_matrix(), m);
  EXPECT_TRUE(body.at_end());
}

TEST(ArtifactCodec, FinishRejectsUnclosedChunk) {
  artifact::Writer writer;
  writer.begin_chunk(artifact::ChunkKind::kMeta);
  EXPECT_THROW((void)writer.finish(), std::invalid_argument);
}

TEST(ArtifactCodec, OpenRejectsBadMagic) {
  std::vector<std::uint8_t> bytes = {'N', 'O', 'P', 'E', 1, 0, 0, 0};
  EXPECT_THROW((void)artifact::Reader::open(bytes), artifact::ArtifactError);
}

TEST(ArtifactCodec, OpenRejectsFutureFormatVersion) {
  artifact::Writer writer;
  auto bytes = writer.finish();
  bytes[4] = 99;  // format version field, little-endian
  EXPECT_THROW((void)artifact::Reader::open(bytes), artifact::ArtifactError);
}

TEST(ArtifactCodec, OpenRejectsTruncatedHeader) {
  const std::vector<std::uint8_t> bytes = {'V', 'Q', 'A', 'F', 1};
  EXPECT_THROW((void)artifact::Reader::open(bytes), artifact::ArtifactError);
}

TEST(ArtifactCodec, ReaderRejectsCorruptEmbeddedLength) {
  artifact::Writer writer;
  writer.begin_chunk(artifact::ChunkKind::kColumns);
  writer.put_vec({1.0, 2.0});
  writer.end_chunk();
  auto bytes = writer.finish();
  // The vec length u64 sits right after the 12-byte chunk header; blow it up
  // (and reseal, so the length guard is what fires, not the checksum).
  bytes[8 + 12] = 0xFF;
  reseal(bytes);
  artifact::Reader reader = artifact::Reader::open(bytes);
  artifact::Reader body = reader.expect_chunk(artifact::ChunkKind::kColumns);
  EXPECT_THROW((void)body.get_vec(), artifact::ArtifactError);
}

TEST(ArtifactCodec, ChunkTreeJsonShowsNesting) {
  artifact::Writer writer;
  writer.begin_chunk(artifact::ChunkKind::kPredictor);
  writer.begin_chunk(artifact::ChunkKind::kLinear);
  writer.put_f64(1.0);
  writer.end_chunk();
  writer.end_chunk();
  const std::string json = artifact::chunk_tree_json(writer.finish());
  EXPECT_NE(json.find("\"PRED\""), std::string::npos);
  EXPECT_NE(json.find("\"LINR\""), std::string::npos);
  EXPECT_NE(json.find("\"children\""), std::string::npos);
}

// --- per-model round-trips --------------------------------------------------

class PointModelRoundTrip
    : public ::testing::TestWithParam<models::ModelKind> {};

TEST_P(PointModelRoundTrip, SaveLoadPredictBitExact) {
  const Problem train = make_problem(60, 6);
  const Problem fresh = make_problem(25, 6, 11);
  auto model = models::make_point_regressor(GetParam());
  model->fit(train.x, train.y);
  const auto decoded = roundtrip_point(*model);
  expect_bitexact(model->predict(fresh.x), decoded->predict(fresh.x));
  EXPECT_TRUE(decoded->fitted());
  EXPECT_EQ(decoded->name(), model->name());
}

std::string kind_suffix(models::ModelKind kind) {
  switch (kind) {
    case models::ModelKind::kLinear:
      return "Linear";
    case models::ModelKind::kGp:
      return "Gp";
    case models::ModelKind::kXgboost:
      return "Xgboost";
    case models::ModelKind::kCatboost:
      return "Catboost";
    case models::ModelKind::kMlp:
      return "Mlp";
  }
  return "Unknown";
}

INSTANTIATE_TEST_SUITE_P(AllKinds, PointModelRoundTrip,
                         ::testing::ValuesIn(models::point_model_zoo()),
                         [](const auto& param_info) {
                           return kind_suffix(param_info.param);
                         });

TEST(ArtifactModels, ElasticNetRoundTripBitExact) {
  const Problem train = make_problem(60, 6);
  const Problem fresh = make_problem(25, 6, 11);
  models::ElasticNetRegressor model;
  model.fit(train.x, train.y);
  const auto decoded = roundtrip_point(model);
  expect_bitexact(model.predict(fresh.x), decoded->predict(fresh.x));
}

TEST(ArtifactModels, UnfittedModelRefusesToEncode) {
  models::LinearRegressor unfitted;
  artifact::Writer writer;
  EXPECT_THROW(artifact::encode_regressor(writer, unfitted), std::logic_error);
}

TEST(ArtifactModels, QuantilePairRoundTripBitExact) {
  const Problem train = make_problem(60, 6);
  const Problem fresh = make_problem(25, 6, 11);
  auto pair = models::make_quantile_pair(models::ModelKind::kLinear,
                                         core::MiscoverageAlpha{0.1});
  pair->fit(train.x, train.y);
  const auto decoded = roundtrip_interval(*pair);
  const auto a = pair->predict_interval(fresh.x);
  const auto b = decoded->predict_interval(fresh.x);
  expect_bitexact(a.lower, b.lower);
  expect_bitexact(a.upper, b.upper);
  EXPECT_EQ(decoded->name(), pair->name());
}

TEST(ArtifactModels, GpIntervalRoundTripBitExact) {
  const Problem train = make_problem(60, 6);
  const Problem fresh = make_problem(25, 6, 11);
  models::GpIntervalRegressor gp(core::MiscoverageAlpha{0.1});
  gp.fit(train.x, train.y);
  const auto decoded = roundtrip_interval(gp);
  const auto a = gp.predict_interval(fresh.x);
  const auto b = decoded->predict_interval(fresh.x);
  expect_bitexact(a.lower, b.lower);
  expect_bitexact(a.upper, b.upper);
}

class CqrRoundTrip : public ::testing::TestWithParam<conformal::CqrMode> {};

TEST_P(CqrRoundTrip, CalibrationSurvivesSaveLoad) {
  const Problem train = make_problem(80, 6);
  const Problem fresh = make_problem(25, 6, 11);
  conformal::CqrConfig config;
  config.mode = GetParam();
  conformal::ConformalizedQuantileRegressor cqr(
      core::MiscoverageAlpha{0.1},
      models::make_quantile_pair(models::ModelKind::kLinear,
                                 core::MiscoverageAlpha{0.1}),
      config);
  cqr.fit(train.x, train.y);
  const auto decoded = roundtrip_interval(cqr);
  const auto a = cqr.predict_interval(fresh.x);
  const auto b = decoded->predict_interval(fresh.x);
  expect_bitexact(a.lower, b.lower);
  expect_bitexact(a.upper, b.upper);
  const auto* decoded_cqr =
      dynamic_cast<const conformal::ConformalizedQuantileRegressor*>(
          decoded.get());
  ASSERT_NE(decoded_cqr, nullptr);
  EXPECT_EQ(decoded_cqr->mode(), GetParam());
  EXPECT_EQ(decoded_cqr->q_hat_lower(), cqr.q_hat_lower());
  EXPECT_EQ(decoded_cqr->q_hat_upper(), cqr.q_hat_upper());
}

INSTANTIATE_TEST_SUITE_P(BothModes, CqrRoundTrip,
                         ::testing::Values(conformal::CqrMode::kSymmetric,
                                           conformal::CqrMode::kAsymmetric),
                         [](const auto& param_info) {
                           return param_info.param ==
                                          conformal::CqrMode::kSymmetric
                                      ? std::string("Symmetric")
                                      : std::string("Asymmetric");
                         });

TEST(ArtifactModels, SplitCpRoundTripBitExact) {
  const Problem train = make_problem(80, 6);
  const Problem fresh = make_problem(25, 6, 11);
  conformal::SplitConformalRegressor cp(
      core::MiscoverageAlpha{0.1},
      models::make_point_regressor(models::ModelKind::kLinear));
  cp.fit(train.x, train.y);
  const auto decoded = roundtrip_interval(cp);
  const auto a = cp.predict_interval(fresh.x);
  const auto b = decoded->predict_interval(fresh.x);
  expect_bitexact(a.lower, b.lower);
  expect_bitexact(a.upper, b.upper);
}

TEST(ArtifactModels, NormalizedCpRoundTripBitExact) {
  const Problem train = make_problem(80, 6);
  const Problem fresh = make_problem(25, 6, 11);
  conformal::NormalizedConformalRegressor ncp(
      core::MiscoverageAlpha{0.1},
      models::make_point_regressor(models::ModelKind::kLinear),
      models::make_point_regressor(models::ModelKind::kLinear));
  ncp.fit(train.x, train.y);
  const auto decoded = roundtrip_interval(ncp);
  const auto a = ncp.predict_interval(fresh.x);
  const auto b = decoded->predict_interval(fresh.x);
  expect_bitexact(a.lower, b.lower);
  expect_bitexact(a.upper, b.upper);
}

TEST(ArtifactModels, DecodeRejectsBadCqrModeByte) {
  conformal::ConformalizedQuantileRegressor cqr(
      core::MiscoverageAlpha{0.1},
      models::make_quantile_pair(models::ModelKind::kLinear,
                                 core::MiscoverageAlpha{0.1}));
  const Problem train = make_problem(80, 6);
  cqr.fit(train.x, train.y);
  artifact::Writer writer;
  artifact::encode_interval_regressor(writer, cqr);
  auto bytes = writer.finish();
  // CQRC payload layout: alpha f64, then the mode byte at offset 8. Reseal
  // so the decoder's own mode validation fires, not the checksum gate.
  bytes[8 + 12 + 8] = 7;
  reseal(bytes);
  artifact::Reader reader = artifact::Reader::open(bytes);
  EXPECT_THROW((void)artifact::decode_interval_regressor(reader),
               artifact::ArtifactError);
}

// --- bundle round-trips -----------------------------------------------------

artifact::VminBundle fitted_bundle() {
  silicon::GeneratorConfig gen_config;
  gen_config.n_chips = 40;
  gen_config.seed = 123;
  const auto generated = silicon::generate_dataset(gen_config);
  const core::Scenario scenario{48.0, 25.0, core::FeatureSet::kBoth};
  const auto data = core::assemble_scenario(generated.dataset, scenario);
  core::PipelineConfig config;
  auto screen =
      core::fit_screen(data, models::ModelKind::kLinear, config, 4);
  return core::make_screen_bundle(scenario, data, std::move(screen));
}

TEST(ArtifactBundle, EncodeDecodeRoundTrip) {
  const auto bundle = fitted_bundle();
  const auto bytes = artifact::encode_bundle(bundle);
  const auto decoded = artifact::decode_bundle(bytes);
  EXPECT_EQ(decoded.format_version, artifact::kFormatVersion);
  EXPECT_EQ(decoded.label, bundle.label);
  EXPECT_EQ(decoded.scenario.read_point_hours, 48.0);
  EXPECT_EQ(decoded.scenario.temperature_c, 25.0);
  EXPECT_EQ(decoded.dataset_columns, bundle.dataset_columns);
  EXPECT_EQ(decoded.selected_features, bundle.selected_features);
  ASSERT_NE(decoded.predictor, nullptr);
  // Decoded and original predictors agree bit-for-bit on fresh input.
  const Problem fresh =
      make_problem(10, bundle.selected_features.size(), 11);
  const auto a = bundle.predictor->predict_interval(fresh.x);
  const auto b = decoded.predictor->predict_interval(fresh.x);
  expect_bitexact(a.lower, b.lower);
  expect_bitexact(a.upper, b.upper);
  // Re-encoding the decoded bundle reproduces the bytes exactly.
  EXPECT_EQ(artifact::encode_bundle(decoded), bytes);
}

TEST(ArtifactBundle, SaveLoadFileRoundTrip) {
  const auto bundle = fitted_bundle();
  const std::string path = ::testing::TempDir() + "/bundle_roundtrip.vqa";
  artifact::save_artifact(bundle, path);
  const auto loaded = artifact::load_artifact(path);
  EXPECT_EQ(artifact::encode_bundle(loaded), artifact::encode_bundle(bundle));
}

TEST(ArtifactBundle, TruncatedBytesRejectedAtEveryPrefix) {
  const auto bytes = artifact::encode_bundle(fitted_bundle());
  // Every strict prefix must be rejected, never crash or mis-decode. Step
  // through a spread of cut points including all short ones.
  for (std::size_t cut = 0; cut < bytes.size();
       cut += (cut < 64 ? 1 : 97)) {
    const std::vector<std::uint8_t> truncated(bytes.begin(),
                                              bytes.begin() +
                                                  static_cast<std::ptrdiff_t>(cut));
    EXPECT_THROW((void)artifact::decode_bundle(truncated),
                 artifact::ArtifactError)
        << "prefix length " << cut;
  }
}

TEST(ArtifactBundle, CorruptedChunkKindRejected) {
  auto bytes = artifact::encode_bundle(fitted_bundle());
  bytes[8] = 'Z';  // first chunk tag ("META") -> unknown kind
  reseal(bytes);   // exercise the unknown-kind path, not the checksum gate
  EXPECT_THROW((void)artifact::decode_bundle(bytes), artifact::ArtifactError);
}

TEST(ArtifactBundle, MissingPredictorRejected) {
  artifact::Writer writer;
  writer.begin_chunk(artifact::ChunkKind::kMeta);
  writer.put_f64(0.0);
  writer.put_f64(25.0);
  writer.put_u8(2);
  writer.put_f64(-1.0);
  writer.put_str("no predictor");
  writer.end_chunk();
  writer.begin_chunk(artifact::ChunkKind::kColumns);
  writer.put_index_vec({0, 1});
  writer.put_index_vec({0});
  writer.end_chunk();
  EXPECT_THROW((void)artifact::decode_bundle(writer.finish()),
               artifact::ArtifactError);
}

TEST(ArtifactBundle, DebugJsonRendersDecodedValues) {
  const auto bundle = fitted_bundle();
  const std::string json = artifact::debug_json(bundle);
  EXPECT_NE(json.find("\"format_version\": 3"), std::string::npos);
  EXPECT_NE(json.find("CQR"), std::string::npos);
  EXPECT_NE(json.find("\"read_point_hours\": 48"), std::string::npos);
  EXPECT_NE(json.find("\"selected_features\""), std::string::npos);
}

// --- golden fixture ---------------------------------------------------------

std::unique_ptr<models::LinearRegressor> golden_linear(double intercept) {
  models::LinearParams params;
  params.scaler.means = {1.0, -2.0};
  params.scaler.scales = {2.0, 4.0};
  params.label.mean = 0.5;
  params.label.scale = 0.05;
  params.coef = {intercept, 0.0625, -0.25};
  auto model = std::make_unique<models::LinearRegressor>();
  model->import_params(std::move(params));
  return model;
}

/// The exact bundle the checked-in fixture was generated from — every value
/// an exact binary fraction, so the bytes are platform-independent.
artifact::VminBundle golden_bundle() {
  const core::MiscoverageAlpha level{0.2};
  auto pair = std::make_unique<models::QuantilePairRegressor>(
      level, golden_linear(-0.5), golden_linear(0.5), "QR Linear Regression");
  auto cqr = std::make_unique<conformal::ConformalizedQuantileRegressor>(
      level, std::move(pair));
  cqr->import_calibration({0.015625, 0.015625});

  artifact::VminBundle bundle;
  bundle.scenario = {48.0, 25.0, 2, -1.0};
  bundle.label = "golden CQR linear";
  bundle.dataset_columns = {0, 1, 2, 3};
  bundle.selected_features = {1, 3};
  bundle.predictor = std::move(cqr);
  return bundle;
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

TEST(ArtifactGolden, CheckedInFixtureDecodesToExpectedPredictions) {
  const auto bytes =
      read_file(std::string(VMINCQR_ARTIFACT_FIXTURE_DIR) +
                "/golden_cqr_linear.vqa");
  const auto bundle = artifact::decode_bundle(bytes);
  EXPECT_EQ(bundle.label, "golden CQR linear");
  EXPECT_EQ(bundle.selected_features, (std::vector<std::size_t>{1, 3}));

  const linalg::Matrix x{{0.0, 1.0, 2.0, 3.0},
                         {1.0, -1.0, 0.5, -0.5},
                         {-2.0, 0.25, 4.0, 8.0}};
  const auto band =
      bundle.predictor->predict_interval(x.take_cols(bundle.selected_features));
  // Hard-coded expectations (%.17g) — the fixture's frozen forward pass.
  const double expected[3][2] = {
      {0.44374999999999998, 0.52500000000000002},
      {0.45156249999999998, 0.53281250000000002},
      {0.42695312499999999, 0.50820312499999998},
  };
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(band.lower[i], expected[i][0]) << "row " << i;
    EXPECT_EQ(band.upper[i], expected[i][1]) << "row " << i;
  }
}

TEST(ArtifactGolden, V1FixtureStillDecodesToExpectedPredictions) {
  // The pre-SoA (format version 1) fixture must keep decoding through the
  // legacy path: Reader::open accepts [1, kFormatVersion] and the decoders
  // branch on format_version(). Same frozen forward pass as the current
  // fixture.
  const auto bytes =
      read_file(std::string(VMINCQR_ARTIFACT_FIXTURE_DIR) +
                "/golden_cqr_linear_v1.vqa");
  const auto bundle = artifact::decode_bundle(bytes);
  EXPECT_EQ(bundle.format_version, 1u);
  EXPECT_EQ(bundle.label, "golden CQR linear");

  const linalg::Matrix x{{0.0, 1.0, 2.0, 3.0},
                         {1.0, -1.0, 0.5, -0.5},
                         {-2.0, 0.25, 4.0, 8.0}};
  const auto band =
      bundle.predictor->predict_interval(x.take_cols(bundle.selected_features));
  const double expected[3][2] = {
      {0.44374999999999998, 0.52500000000000002},
      {0.45156249999999998, 0.53281250000000002},
      {0.42695312499999999, 0.50820312499999998},
  };
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(band.lower[i], expected[i][0]) << "row " << i;
    EXPECT_EQ(band.upper[i], expected[i][1]) << "row " << i;
  }
}

TEST(ArtifactGolden, V2FixtureStillDecodesToExpectedPredictions) {
  // The pre-checksum (format version 2) fixture: no trailing CSUM chunk, so
  // Reader::open must not demand one, and the decode must match the same
  // frozen forward pass.
  const auto bytes =
      read_file(std::string(VMINCQR_ARTIFACT_FIXTURE_DIR) +
                "/golden_cqr_linear_v2.vqa");
  const auto bundle = artifact::decode_bundle(bytes);
  EXPECT_EQ(bundle.format_version, 2u);
  EXPECT_EQ(bundle.label, "golden CQR linear");

  const linalg::Matrix x{{0.0, 1.0, 2.0, 3.0},
                         {1.0, -1.0, 0.5, -0.5},
                         {-2.0, 0.25, 4.0, 8.0}};
  const auto band =
      bundle.predictor->predict_interval(x.take_cols(bundle.selected_features));
  const double expected[3][2] = {
      {0.44374999999999998, 0.52500000000000002},
      {0.45156249999999998, 0.53281250000000002},
      {0.42695312499999999, 0.50820312499999998},
  };
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(band.lower[i], expected[i][0]) << "row " << i;
    EXPECT_EQ(band.upper[i], expected[i][1]) << "row " << i;
  }
}

TEST(ArtifactModels, GbtV1InterleavedRecordsDecode) {
  // Hand-encode a fitted GBT with the v1 interleaved per-node record layout,
  // stamp the header as version 1, and check the legacy decoder reproduces
  // the live model bit for bit.
  const Problem p = make_problem(80, 4);
  models::GbtConfig config;
  config.n_rounds = 5;
  models::GradientBoostedTrees model(config);
  model.fit(p.x, p.y);
  const models::GbtParams params = model.export_params();

  artifact::Writer writer;
  writer.begin_chunk(artifact::ChunkKind::kGbt);
  writer.put_f64(params.base_score);
  writer.put_f64(params.learning_rate);
  writer.put_u64(params.n_features);
  writer.put_u64(params.trees.size());
  for (const auto& nodes : params.trees) {
    writer.put_u64(nodes.size());
    for (const models::TreeNode& node : nodes) {
      writer.put_u8(node.is_leaf ? 1 : 0);
      writer.put_u64(node.feature);
      writer.put_f64(node.threshold);
      writer.put_u32(static_cast<std::uint32_t>(node.left));
      writer.put_u32(static_cast<std::uint32_t>(node.right));
      writer.put_f64(node.value);
      writer.put_u32(static_cast<std::uint32_t>(node.leaf_id));
      writer.put_f64(node.gain);
    }
  }
  writer.end_chunk();
  auto bytes = writer.finish();
  bytes[4] = 1;  // rewrite the header: declare format version 1

  artifact::Reader reader = artifact::Reader::open(bytes);
  EXPECT_EQ(reader.format_version(), 1u);
  const auto decoded = artifact::decode_regressor(reader);
  EXPECT_EQ(decoded->predict(p.x), model.predict(p.x));
}

TEST(ArtifactGolden, FormatIsByteStableAgainstFixture) {
  // Re-encoding the hand-specified golden bundle must reproduce the
  // checked-in file byte for byte: any codec change that alters the wire
  // format of existing chunks fails here and requires a format-version bump.
  const auto fixture =
      read_file(std::string(VMINCQR_ARTIFACT_FIXTURE_DIR) +
                "/golden_cqr_linear.vqa");
  EXPECT_EQ(artifact::encode_bundle(golden_bundle()), fixture);
}

// --- corruption fuzzing -----------------------------------------------------
//
// The v3 CRC-32 seal is what makes this battery provable: a CRC-32 detects
// every burst error up to 32 bits, so ANY single corrupted byte — header,
// chunk framing, or payload (e.g. a damaged IEEE-754 coefficient that would
// otherwise parse silently) — must surface as ArtifactError. Before v3 a
// payload flip could decode into a plausible-but-wrong predictor.

TEST(ArtifactFuzz, EveryByteInversionIsRejected) {
  // Exhaustive single-byte sweep over the golden fixture: inverting any one
  // byte (covers every chunk-header field and every payload byte) must
  // throw, never crash, never yield a bundle.
  const auto fixture =
      read_file(std::string(VMINCQR_ARTIFACT_FIXTURE_DIR) +
                "/golden_cqr_linear.vqa");
  ASSERT_FALSE(fixture.empty());
  for (std::size_t i = 0; i < fixture.size(); ++i) {
    auto corrupted = fixture;
    corrupted[i] ^= 0xFFU;
    EXPECT_THROW((void)artifact::decode_bundle(corrupted),
                 artifact::ArtifactError)
        << "inverted byte " << i;
  }
}

TEST(ArtifactFuzz, SeededSingleBitFlipsAreRejected) {
  // 64 seeded random single-BIT flips: subtler than whole-byte inversion
  // (a one-bit mantissa flip is the classic silent corruption). The stream
  // is deterministic, so a failure reproduces exactly.
  const auto fixture =
      read_file(std::string(VMINCQR_ARTIFACT_FIXTURE_DIR) +
                "/golden_cqr_linear.vqa");
  ASSERT_FALSE(fixture.empty());
  std::uint64_t state = 0x5EEDBEEFCAFEF00DULL;
  for (int flip = 0; flip < 64; ++flip) {
    const std::uint64_t draw = rng::splitmix64(state);
    const std::size_t byte = static_cast<std::size_t>(draw % fixture.size());
    const unsigned bit = static_cast<unsigned>((draw >> 32) % 8);
    auto corrupted = fixture;
    corrupted[byte] ^= static_cast<std::uint8_t>(1U << bit);
    EXPECT_THROW((void)artifact::decode_bundle(corrupted),
                 artifact::ArtifactError)
        << "flip " << flip << ": byte " << byte << " bit " << bit;
  }
}

TEST(ArtifactFuzz, VersionByteFlipsCannotSkipVerification) {
  // Flipping the version field is the one corruption that could disable the
  // checksum gate itself. Every reachable value must still reject: 0 and
  // >kFormatVersion fail open(); 1 and 2 parse without the gate but then
  // trip over the CSUM chunk, which is unknown to pre-v3 decoders.
  const auto fixture =
      read_file(std::string(VMINCQR_ARTIFACT_FIXTURE_DIR) +
                "/golden_cqr_linear.vqa");
  ASSERT_GE(fixture.size(), 8u);
  ASSERT_EQ(fixture[4], 3u);  // little-endian version field
  for (unsigned bit = 0; bit < 8; ++bit) {
    auto corrupted = fixture;
    corrupted[4] ^= static_cast<std::uint8_t>(1U << bit);
    EXPECT_THROW((void)artifact::decode_bundle(corrupted),
                 artifact::ArtifactError)
        << "version flipped to " << static_cast<unsigned>(corrupted[4]);
  }
}

TEST(ArtifactFuzz, TruncatedSealRejected) {
  // Cutting anywhere inside the trailing CSUM chunk (or removing it
  // entirely) must fail the "v3 artifact missing trailing CSUM" gate.
  const auto fixture =
      read_file(std::string(VMINCQR_ARTIFACT_FIXTURE_DIR) +
                "/golden_cqr_linear.vqa");
  constexpr std::size_t kSealBytes = 4 + 8 + 4;
  ASSERT_GT(fixture.size(), kSealBytes);
  for (std::size_t cut = 0; cut <= kSealBytes; ++cut) {
    const std::vector<std::uint8_t> truncated(
        fixture.begin(),
        fixture.end() - static_cast<std::ptrdiff_t>(cut + 1));
    EXPECT_THROW((void)artifact::decode_bundle(truncated),
                 artifact::ArtifactError)
        << "cut " << cut + 1 << " bytes off the tail";
  }
}

}  // namespace
