// Fixture: std::endl in an output statement. Fires no-endl exactly once.
#include <iostream>

void fixture_log() {
  std::cout << "hello" << std::endl;
}
