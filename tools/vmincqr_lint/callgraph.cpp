#include "callgraph.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <tuple>
#include <utility>

#include "concurrency.hpp"
#include "core/experiment.hpp"
#include "dataflow.hpp"
#include "parse.hpp"

namespace vmincqr::lint {
namespace {

namespace fs = std::filesystem;

/// Identifiers that can precede a '(' without being a function name. Keeps
/// both the definition walker and the call-site scanner from mistaking
/// control flow, casts, and declarations for calls.
bool is_non_call_keyword(const std::string& s) {
  static const std::set<std::string> kws = {
      "alignas",      "alignof",        "auto",       "bool",
      "case",         "catch",          "char",       "class",
      "co_await",     "co_return",      "co_yield",   "const",
      "const_cast",   "consteval",      "constexpr",  "constinit",
      "decltype",     "default",        "delete",     "do",
      "double",       "dynamic_cast",   "else",       "enum",
      "explicit",     "extern",         "false",      "final",
      "float",        "for",            "friend",     "goto",
      "if",           "inline",         "int",        "long",
      "mutable",      "namespace",      "new",        "noexcept",
      "nullptr",      "operator",       "override",   "private",
      "protected",    "public",         "register",   "reinterpret_cast",
      "requires",     "return",         "short",      "signed",
      "sizeof",       "static",         "static_assert",
      "static_cast",  "struct",         "switch",     "template",
      "this",         "thread_local",   "throw",      "true",
      "try",          "typedef",        "typeid",     "typename",
      "union",        "unsigned",       "using",      "virtual",
      "void",         "volatile",       "while"};
  return kws.count(s) > 0;
}

bool is_trailing_qualifier(const std::string& s) {
  static const std::set<std::string> quals = {"const", "noexcept", "override",
                                              "final", "mutable"};
  return quals.count(s) > 0;
}

/// Identifiers after which a '(' still starts a call expression (as opposed
/// to declaring a variable of the preceding type).
bool call_may_follow(const std::string& s) {
  static const std::set<std::string> kws = {
      "return", "co_return", "co_await", "co_yield",
      "throw",  "else",      "do",       "new",
      "case"};
  return kws.count(s) > 0;
}

/// Index of the token matching the closer at `close` (')', ']', '}'), or 0
/// when unbalanced — callers treat 0 as "give up".
std::size_t match_backward(const std::vector<Token>& t, std::size_t close) {
  const std::string& c = t[close].text;
  const std::string open = c == ")" ? "(" : c == "]" ? "[" : "{";
  int depth = 0;
  for (std::size_t i = close + 1; i-- > 0;) {
    if (t[i].text == c) {
      ++depth;
    } else if (t[i].text == open && --depth == 0) {
      return i;
    }
    if (i == 0) break;
  }
  return 0;
}

/// Given the ')' that directly precedes a function body (qualifiers already
/// skipped), returns the '(' of the function's parameter list — hopping
/// backward over a constructor member-initializer list when one sits in
/// between: `Model(int n) : a_(n), b_(n) {`.
std::size_t find_params_open(const std::vector<Token>& t, std::size_t rparen) {
  std::size_t p = match_backward(t, rparen);
  while (p > 0) {
    const std::size_t name = p - 1;
    if (t[name].kind != TokKind::kIdent || name == 0) return p;
    const std::string& before = t[name - 1].text;
    if (before == ":") {
      // `) : first_(x) {` — the real parameter list closes right before ':'.
      if (name >= 2 && t[name - 2].text == ")") {
        return match_backward(t, name - 2);
      }
      return p;
    }
    if (before == ",") {
      // Previous initializer entry; keep hopping toward the ':'.
      if (name >= 2 && t[name - 2].text == ")") {
        p = match_backward(t, name - 2);
        continue;
      }
      return p;
    }
    return p;
  }
  return p;
}

/// Counts top-level commas in (open, close); tracks the first top-level '='
/// (start of defaulted parameters) and C-style variadics. The '<' depth
/// heuristic (an ident before '<' opens a template argument list) keeps
/// commas inside `std::pair<A, B>` from splitting parameters.
struct ArgScan {
  std::size_t commas = 0;
  bool any = false;
  bool variadic = false;
  std::size_t commas_before_default = kNoFunction;
};

ArgScan scan_args(const std::vector<Token>& t, std::size_t open,
                  std::size_t close) {
  ArgScan s;
  int paren = 0;
  int angle = 0;
  int brack = 0;
  int brace = 0;
  for (std::size_t i = open + 1; i < close; ++i) {
    const std::string& x = t[i].text;
    if (x == "(") {
      ++paren;
    } else if (x == ")") {
      --paren;
    } else if (x == "[") {
      ++brack;
    } else if (x == "]") {
      --brack;
    } else if (x == "{") {
      ++brace;
    } else if (x == "}") {
      --brace;
    } else if (x == "<" && i > 0 && t[i - 1].kind == TokKind::kIdent) {
      ++angle;
    } else if (x == ">" && angle > 0) {
      --angle;
    }
    if (paren > 0 || angle > 0 || brack > 0 || brace > 0) {
      s.any = true;
      continue;
    }
    if (x == ",") {
      ++s.commas;
    } else if (x == "=" && s.commas_before_default == kNoFunction) {
      s.commas_before_default = s.commas;
    } else if (x == "." && i + 1 < close && t[i + 1].text == ".") {
      s.variadic = true;
    }
    s.any = true;
  }
  return s;
}

/// `(open, close)` ranges of every class/struct definition body, with the
/// class name — so inline member functions get their qualifier.
struct ClassSpan {
  std::size_t open = 0;
  std::size_t close = 0;
  std::string name;
};

std::vector<ClassSpan> class_spans(const std::vector<Token>& t) {
  std::vector<ClassSpan> spans;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent ||
        (t[i].text != "class" && t[i].text != "struct")) {
      continue;
    }
    if (i > 0 && t[i - 1].text == "enum") continue;  // enum class: no methods
    std::size_t j = i + 1;
    if (j >= t.size() || t[j].kind != TokKind::kIdent) continue;
    const std::string name = t[j].text;
    ++j;
    // Walk to the defining '{'. Anything that ends the declarator first —
    // `;` (forward decl), `,`/`>` (template parameter), `(`/`=`/`)` — means
    // this keyword did not open a class body.
    while (j < t.size()) {
      const std::string& x = t[j].text;
      if (x == "<") {
        j = match_forward(t, j);
        if (j >= t.size()) break;
        ++j;
        continue;
      }
      if (x == "{") {
        spans.push_back({j, match_forward(t, j), name});
        break;
      }
      if (x == ";" || x == "," || x == ")" || x == "(" || x == "=" ||
          x == ">") {
        break;
      }
      ++j;
    }
  }
  return spans;
}

std::string innermost_class(const std::vector<ClassSpan>& spans,
                            std::size_t pos) {
  std::string best;
  std::size_t best_open = 0;
  for (const ClassSpan& s : spans) {
    if (s.open < pos && pos < s.close && s.open >= best_open) {
      best = s.name;
      best_open = s.open;
    }
  }
  return best;
}

/// Per-TU extraction result; pure function of the file bytes, so it can fan
/// out on the deterministic pool.
struct TuExtract {
  Unit unit;
  std::vector<FunctionDef> defs;    // def.tu unset; stamped at link time
  std::vector<CallSite> calls;      // caller = TU-local def index
};

TuExtract extract_tu(const std::string& content) {
  TuExtract out;
  out.unit = tokenize(content);
  const auto& t = out.unit.tokens;
  const auto scopes = function_scopes(out.unit);

  // --- Definitions: the shared walker, then scope index -> local def index
  // (kNoFunction when the scope is not a named definition we model:
  // lambdas, operators, destructors). A def's body brace IS its scope's
  // opening brace, so the two align by body_first.
  out.defs = extract_definitions(out.unit);
  std::map<std::size_t, std::size_t> def_by_body;
  for (std::size_t di = 0; di < out.defs.size(); ++di) {
    def_by_body[out.defs[di].body_first] = di;
  }
  std::vector<std::size_t> def_of_scope(scopes.size(), kNoFunction);
  for (std::size_t si = 0; si < scopes.size(); ++si) {
    const auto it = def_by_body.find(scopes[si].first);
    if (it != def_by_body.end()) def_of_scope[si] = it->second;
  }

  // --- Call sites, attributed to the enclosing scope's definition. ---
  std::vector<std::pair<std::size_t, std::size_t>> parallel_spans;
  for (const ParallelBody& b : find_parallel_bodies(t)) {
    parallel_spans.emplace_back(b.body_first, b.body_last);
  }
  for (std::size_t si = 0; si < scopes.size(); ++si) {
    const FunctionScope& s = scopes[si];
    for (std::size_t i = s.first + 1; i + 1 < s.last; ++i) {
      if (t[i].kind != TokKind::kIdent) continue;
      if (is_non_call_keyword(t[i].text)) continue;
      // `name(` or `name<T>(` both start a call expression.
      std::size_t args_open = kNoFunction;
      if (t[i + 1].text == "(") {
        args_open = i + 1;
      } else if (t[i + 1].text == "<") {
        const std::size_t c = match_forward(t, i + 1);
        if (c + 1 < t.size() && t[c + 1].text == "(") args_open = c + 1;
      }
      if (args_open == kNoFunction) continue;
      const Token& prev = t[i - 1];
      if (prev.text == "~") continue;  // destructor call
      CallSite call;
      if (prev.text == "::") {
        if (i >= 2 && t[i - 2].kind == TokKind::kIdent) {
          call.qualifier = t[i - 2].text;
        }
        // std:: (and any unresolvable namespace) is a leaf; std:: names
        // would otherwise collide with repo functions (min, sort, ...).
        if (call.qualifier == "std") continue;
      } else if (prev.text == "." || prev.text == "->") {
        call.member = true;
      } else if (prev.kind == TokKind::kIdent &&
                 !call_may_follow(prev.text)) {
        continue;  // `Type name(args)` — a declaration, not a call
      } else if (prev.text == "&" || prev.text == "*" || prev.text == ">") {
        continue;  // `Type* name(...)`, `Type& name(...)`, `T<U> name(...)`
      }
      call.name = t[i].text;
      call.line = t[i].line;
      call.caller = def_of_scope[si];
      const std::size_t args_close = match_forward(t, args_open);
      const ArgScan as = scan_args(t, args_open, args_close);
      call.arity = as.any ? as.commas + 1 : 0;
      for (const auto& span : parallel_spans) {
        if (i > span.first && i < span.second) {
          call.in_parallel_body = true;
          break;
        }
      }
      out.calls.push_back(std::move(call));
    }
  }
  return out;
}

/// Resolved call edges grouped by caller definition, for BFS.
std::map<std::size_t, std::vector<std::size_t>> calls_by_caller(
    const std::vector<CallSite>& calls) {
  std::map<std::size_t, std::vector<std::size_t>> by_caller;
  for (std::size_t ci = 0; ci < calls.size(); ++ci) {
    if (calls[ci].caller != kNoFunction) {
      by_caller[calls[ci].caller].push_back(ci);
    }
  }
  return by_caller;
}

/// BFS bookkeeping: how each reached definition was first entered, so
/// diagnostics can print the full call chain.
struct ReachInfo {
  std::set<std::size_t> reached;
  std::map<std::size_t, std::size_t> parent;    // def -> parent def
  std::map<std::size_t, std::size_t> via_call;  // def -> call index used
};

ReachInfo bfs(const CallGraph& g,
              const std::vector<std::pair<std::size_t, std::size_t>>& roots) {
  ReachInfo info;
  const auto by_caller = calls_by_caller(g.calls());
  std::vector<std::size_t> frontier;
  for (const auto& [d, via] : roots) {
    if (info.reached.insert(d).second) {
      info.parent[d] = kNoFunction;
      info.via_call[d] = via;
      frontier.push_back(d);
    }
  }
  while (!frontier.empty()) {
    std::vector<std::size_t> next;
    for (std::size_t d : frontier) {
      const auto it = by_caller.find(d);
      if (it == by_caller.end()) continue;
      for (std::size_t ci : it->second) {
        for (std::size_t callee : g.calls()[ci].callees) {
          if (info.reached.insert(callee).second) {
            info.parent[callee] = d;
            info.via_call[callee] = ci;
            next.push_back(callee);
          }
        }
      }
    }
    frontier = std::move(next);
  }
  return info;
}

/// Root-to-`d` chain of display names, e.g. "run_chunk -> norm -> scale".
std::string chain_of(const CallGraph& g, const ReachInfo& info,
                     std::size_t d) {
  std::vector<std::string> names;
  for (std::size_t cur = d; cur != kNoFunction;
       cur = info.parent.at(cur)) {
    names.push_back(g.defs()[cur].display);
  }
  std::string out;
  for (std::size_t i = names.size(); i-- > 0;) {
    if (!out.empty()) out += " -> ";
    out += names[i];
  }
  return out;
}

/// True when `display` path has a `parallel` directory component — the pool
/// implementation itself legitimately owns a static singleton.
bool in_parallel_dir(const std::string& display) {
  std::string comp;
  std::stringstream ss(display);
  while (std::getline(ss, comp, '/')) {
    if (comp == "parallel") return true;
  }
  return false;
}

const std::set<std::string>& numeric_entry_names() {
  static const std::set<std::string> names = {
      "fit",           "fit_with_split", "fit_transform",
      "calibrate",     "predict",        "predict_interval",
      "predict_point", "predict_sigma",  "predict_batch"};
  return names;
}

}  // namespace

std::vector<FunctionDef> extract_definitions(const Unit& unit) {
  std::vector<FunctionDef> defs;
  const auto& t = unit.tokens;
  const auto scopes = function_scopes(unit);
  const auto classes = class_spans(t);

  // Walk back from each body '{' to the signature; scopes that are not a
  // named definition we model (lambdas, operators, destructors) are skipped.
  for (const FunctionScope& s : scopes) {
    if (s.first == 0) continue;
    std::size_t j = s.first - 1;
    while (j > 0 && t[j].kind == TokKind::kIdent &&
           is_trailing_qualifier(t[j].text)) {
      --j;
    }
    // Trailing return type: hop back over `-> Type` to the params ')'.
    {
      std::size_t k = j;
      std::size_t steps = 0;
      while (k > 0 && steps++ < 24) {
        const std::string& x = t[k].text;
        if (x == "->") {
          j = k - 1;
          while (j > 0 && t[j].kind == TokKind::kIdent &&
                 is_trailing_qualifier(t[j].text)) {
            --j;
          }
          break;
        }
        if (t[k].kind != TokKind::kIdent && x != "::" && x != "<" &&
            x != ">" && x != "," && x != "*" && x != "&") {
          break;
        }
        --k;
      }
    }
    if (t[j].text != ")") continue;  // lambda ([]) or something unmodelled
    const std::size_t params_open = find_params_open(t, j);
    if (params_open == 0) continue;
    const std::size_t name_idx = params_open - 1;
    if (t[name_idx].kind != TokKind::kIdent) continue;
    if (is_non_call_keyword(t[name_idx].text)) continue;
    if (name_idx > 0 &&
        (t[name_idx - 1].text == "~" || t[name_idx - 1].text == "operator")) {
      continue;  // destructors and operator overloads: never called by name
    }
    FunctionDef d;
    d.name = t[name_idx].text;
    if (name_idx >= 2 && t[name_idx - 1].text == "::" &&
        t[name_idx - 2].kind == TokKind::kIdent) {
      d.qualifier = t[name_idx - 2].text;  // out-of-line member
    } else {
      d.qualifier = innermost_class(classes, name_idx);  // inline member
    }
    d.display = d.qualifier.empty() || d.qualifier == d.name
                    ? d.name
                    : d.qualifier + "::" + d.name;
    d.line = t[name_idx].line;
    d.params_open = params_open;
    d.body_first = s.first;
    d.body_last = s.last;
    const std::size_t params_close = match_forward(t, params_open);
    const ArgScan ps = scan_args(t, params_open, params_close);
    const bool lone_void =
        params_close == params_open + 2 && t[params_open + 1].text == "void";
    const std::size_t n_params = ps.any && !lone_void ? ps.commas + 1 : 0;
    d.arity_max = ps.variadic ? kNoFunction : n_params;
    d.arity_min = ps.commas_before_default != kNoFunction
                      ? ps.commas_before_default
                      : n_params;
    for (std::size_t i = params_open + 1; i < params_close; ++i) {
      if (t[i].kind != TokKind::kIdent) continue;
      const std::string& nx = t[i + 1].text;
      if ((nx == "," || nx == ")" || nx == "=") &&
          !is_non_call_keyword(t[i].text)) {
        d.params.push_back(t[i].text);
      }
    }
    d.tier = numeric_tier_at(unit, d.line);
    defs.push_back(std::move(d));
  }
  return defs;
}

CallGraph CallGraph::build(const std::vector<SourceFile>& files,
                           const LayerConfig& layers) {
  CallGraph g;
  const auto extracts = core::parallel_map<TuExtract>(
      files.size(), [&](std::size_t i) { return extract_tu(files[i].content); });

  // Link: stamp TU indices and rebase TU-local caller indices to global.
  for (std::size_t tu = 0; tu < files.size(); ++tu) {
    const std::size_t def_base = g.defs_.size();
    g.units_.push_back(extracts[tu].unit);
    g.displays_.push_back(files[tu].display);
    g.modules_.push_back(layers.module_of(files[tu].rel));
    for (FunctionDef d : extracts[tu].defs) {
      d.tu = tu;
      g.defs_.push_back(std::move(d));
    }
    for (CallSite c : extracts[tu].calls) {
      c.tu = tu;
      if (c.caller != kNoFunction) c.caller += def_base;
      g.calls_.push_back(std::move(c));
    }
  }

  // Overload sets keyed by unqualified name.
  std::map<std::string, std::vector<std::size_t>> by_name;
  for (std::size_t di = 0; di < g.defs_.size(); ++di) {
    by_name[g.defs_[di].name].push_back(di);
  }

  // Resolve every call against its visible overload set.
  for (CallSite& c : g.calls_) {
    const auto it = by_name.find(c.name);
    if (it == by_name.end()) continue;  // external / std — a leaf
    std::vector<std::size_t> cands = it->second;
    // `Q::f(...)`: same-qualifier definitions win when any exist (a
    // namespace qualifier matches nothing and keeps the whole set).
    if (!c.qualifier.empty()) {
      std::vector<std::size_t> scoped;
      for (std::size_t di : cands) {
        if (g.defs_[di].qualifier == c.qualifier) scoped.push_back(di);
      }
      if (!scoped.empty()) cands = std::move(scoped);
    } else if (c.member) {
      // `x.f(...)`: member definitions win when any exist.
      std::vector<std::size_t> members;
      for (std::size_t di : cands) {
        if (!g.defs_[di].qualifier.empty()) members.push_back(di);
      }
      if (!members.empty()) cands = std::move(members);
    }
    // Layer visibility: a TU cannot call a definition its module may not
    // include, so such candidates are noise, not edges.
    const std::string& caller_mod = g.modules_[c.tu];
    if (!caller_mod.empty()) {
      std::vector<std::size_t> visible;
      for (std::size_t di : cands) {
        const std::string& callee_mod = g.modules_[g.defs_[di].tu];
        if (callee_mod.empty() || callee_mod == caller_mod ||
            layers.edge_allowed(caller_mod, callee_mod)) {
          visible.push_back(di);
        }
      }
      cands = std::move(visible);
    }
    // Arity window; on mismatch fall back to the whole visible set — an
    // over-approximation beats silently dropping the edge.
    std::vector<std::size_t> by_arity;
    for (std::size_t di : cands) {
      const FunctionDef& d = g.defs_[di];
      if (c.arity >= d.arity_min &&
          (d.arity_max == kNoFunction || c.arity <= d.arity_max)) {
        by_arity.push_back(di);
      }
    }
    c.callees = by_arity.empty() ? std::move(cands) : std::move(by_arity);
  }
  return g;
}

std::set<std::size_t> CallGraph::reachable_from(
    const std::set<std::size_t>& roots) const {
  std::vector<std::pair<std::size_t, std::size_t>> seeds;
  for (std::size_t d : roots) seeds.emplace_back(d, kNoFunction);
  return bfs(*this, seeds).reached;
}

std::set<std::size_t> CallGraph::parallel_reachable() const {
  std::vector<std::pair<std::size_t, std::size_t>> seeds;
  for (std::size_t ci = 0; ci < calls_.size(); ++ci) {
    if (!calls_[ci].in_parallel_body) continue;
    for (std::size_t callee : calls_[ci].callees) {
      seeds.emplace_back(callee, ci);
    }
  }
  return bfs(*this, seeds).reached;
}

std::string CallGraph::to_dot(const std::set<std::size_t>& parallel_reach,
                              const std::set<std::size_t>& numeric_reach) const {
  std::ostringstream dot;
  dot << "digraph vmincqr_callgraph {\n"
      << "  rankdir=LR;\n"
      << "  node [shape=box, fontsize=9, fontname=\"monospace\"];\n";
  // One cluster per module, unmapped definitions at top level; all orderings
  // come from sorted containers, so the rendering is deterministic.
  std::map<std::string, std::vector<std::size_t>> by_module;
  for (std::size_t di = 0; di < defs_.size(); ++di) {
    by_module[modules_[defs_[di].tu]].push_back(di);
  }
  auto emit_node = [&](std::ostream& os, std::size_t di,
                       const char* indent) {
    const FunctionDef& d = defs_[di];
    os << indent << "n" << di << " [label=\"" << d.display << "\\n"
       << displays_[d.tu] << ":" << d.line << "\"";
    std::string style;
    if (parallel_reach.count(di) > 0) style = "filled";
    if (d.tier == "tolerance") style += style.empty() ? "dashed" : ",dashed";
    if (!style.empty()) os << ", style=\"" << style << "\"";
    if (parallel_reach.count(di) > 0) os << ", fillcolor=\"#fce5cd\"";
    if (numeric_reach.count(di) > 0) os << ", color=\"#1155cc\"";
    os << "];\n";
  };
  for (const auto& [mod, dis] : by_module) {
    if (mod.empty()) {
      for (std::size_t di : dis) emit_node(dot, di, "  ");
      continue;
    }
    dot << "  subgraph cluster_" << mod << " {\n"
        << "    label=\"" << mod << "\";\n";
    for (std::size_t di : dis) emit_node(dot, di, "    ");
    dot << "  }\n";
  }
  std::set<std::pair<std::size_t, std::size_t>> edges;
  for (const CallSite& c : calls_) {
    if (c.caller == kNoFunction) continue;
    for (std::size_t callee : c.callees) edges.emplace(c.caller, callee);
  }
  for (const auto& [from, to] : edges) {
    dot << "  n" << from << " -> n" << to << ";\n";
  }
  dot << "}\n";
  return dot.str();
}

CallGraphAnalysis analyze_call_graph(const std::vector<SourceFile>& files,
                                     const CallGraphOptions& options) {
  const CallGraph g = CallGraph::build(files, options.layers);
  CallGraphAnalysis out;
  std::vector<Diagnostic> raw;
  const auto& defs = g.defs();
  const auto& calls = g.calls();

  // Parallel-body spans per TU, so the transitive RNG rule never re-reports
  // a construction the phase-3 lexical rule already covers.
  std::map<std::size_t, std::vector<std::pair<std::size_t, std::size_t>>>
      spans_cache;
  auto parallel_spans_of = [&](std::size_t tu)
      -> const std::vector<std::pair<std::size_t, std::size_t>>& {
    auto it = spans_cache.find(tu);
    if (it == spans_cache.end()) {
      std::vector<std::pair<std::size_t, std::size_t>> spans;
      for (const ParallelBody& b : find_parallel_bodies(g.unit(tu).tokens)) {
        spans.emplace_back(b.body_first, b.body_last);
      }
      it = spans_cache.emplace(tu, std::move(spans)).first;
    }
    return it->second;
  };
  auto lexically_parallel = [&](std::size_t tu, std::size_t tok) {
    for (const auto& span : parallel_spans_of(tu)) {
      if (tok > span.first && tok < span.second) return true;
    }
    return false;
  };

  // --- Transitive parallel-context rules. ---
  {
    std::vector<std::pair<std::size_t, std::size_t>> seeds;
    for (std::size_t ci = 0; ci < calls.size(); ++ci) {
      if (!calls[ci].in_parallel_body) continue;
      for (std::size_t callee : calls[ci].callees) {
        seeds.emplace_back(callee, ci);
      }
    }
    const ReachInfo reach = bfs(g, seeds);
    for (std::size_t di : reach.reached) {
      const FunctionDef& d = defs[di];
      const Unit& u = g.unit(d.tu);
      const auto& t = u.tokens;
      const std::string& file = g.display_of(d.tu);
      const std::string chain = chain_of(g, reach, di);
      // mutable-static-in-parallel: a function-local static that is not
      // const is initialized and mutated concurrently once this function
      // runs under the pool. The pool implementation itself is exempt —
      // its singleton is the sanctioned one.
      if (!in_parallel_dir(file)) {
        for (std::size_t i = d.body_first + 1; i < d.body_last; ++i) {
          if (t[i].text != "static") continue;
          if (i + 1 < d.body_last && (t[i + 1].text == "const" ||
                                      t[i + 1].text == "constexpr")) {
            continue;
          }
          raw.push_back(
              {file, t[i].line, "mutable-static-in-parallel",
               "non-const function-local static in '" + d.display +
                   "', which is reachable from a parallel body (chain: " +
                   chain + "); concurrent chunks race on its "
                   "initialization and state — hoist it or make it const"});
        }
      }
      // Transitive rng-in-parallel: an RNG constructed here with a seed
      // that ignores every parameter draws a schedule-dependent stream.
      for (std::size_t i = d.body_first + 1; i + 1 < d.body_last; ++i) {
        if (t[i].kind != TokKind::kIdent ||
            !is_rng_engine_type(t[i].text)) {
          continue;
        }
        if (lexically_parallel(d.tu, i)) continue;  // phase 3 owns it
        std::size_t args_open = kNoFunction;
        if (t[i + 1].text == "(" || t[i + 1].text == "{") {
          args_open = i + 1;  // Rng(seed) temporary
        } else if (t[i + 1].kind == TokKind::kIdent && i + 2 < d.body_last &&
                   (t[i + 2].text == "(" || t[i + 2].text == "{")) {
          args_open = i + 2;  // Rng rng(seed) declaration
        }
        if (args_open == kNoFunction) continue;
        const std::size_t args_close = match_forward(t, args_open);
        // A seed that mentions any identifier (parameter, member config,
        // chunk index) can carry per-chunk or per-instance identity and is
        // deterministic under any schedule. Only a seed with NO identifier
        // — a hardcoded literal or nothing — guarantees every chunk draws
        // the very same stream: correlated draws masquerading as
        // independent ones.
        bool seeded_from_state = false;
        for (std::size_t k = args_open + 1; k < args_close; ++k) {
          if (t[k].kind == TokKind::kIdent) {
            seeded_from_state = true;
            break;
          }
        }
        if (!seeded_from_state) {
          raw.push_back(
              {file, t[i].line, "rng-in-parallel",
               "'" + t[i].text + "' constructed in '" + d.display +
                   "', which is reachable from a parallel body (chain: " +
                   chain + "), with a hardcoded seed; every chunk draws an "
                   "identical stream — thread a per-chunk or per-instance "
                   "seed through instead"});
        }
      }
    }
  }

  // --- Call-level layering: [call_forbidden] modules must not reach the
  // listed symbols through any call chain. ---
  for (const auto& [mod, names] : options.layers.call_forbidden) {
    const std::set<std::string> forbidden(names.begin(), names.end());
    std::vector<std::pair<std::size_t, std::size_t>> seeds;
    for (std::size_t di = 0; di < defs.size(); ++di) {
      if (g.module_of_tu(defs[di].tu) == mod) {
        seeds.emplace_back(di, kNoFunction);
      }
    }
    const ReachInfo reach = bfs(g, seeds);
    std::set<std::pair<std::size_t, std::string>> reported;  // (root, name)
    for (std::size_t di : reach.reached) {
      for (std::size_t ci = 0; ci < calls.size(); ++ci) {
        const CallSite& c = calls[ci];
        if (c.caller != di || forbidden.count(c.name) == 0) continue;
        // Walk to the root definition inside the guarded module, and to
        // the first hop below it (whose via_call anchors the diagnostic).
        std::size_t root = di;
        std::size_t first_hop = kNoFunction;
        while (reach.parent.at(root) != kNoFunction) {
          first_hop = root;
          root = reach.parent.at(root);
        }
        if (reported.emplace(root, c.name).second == false) continue;
        const std::size_t at_line =
            first_hop == kNoFunction
                ? c.line
                : calls[reach.via_call.at(first_hop)].line;
        raw.push_back(
            {g.display_of(defs[root].tu), at_line, "call-layer-violation",
             "'" + defs[root].display + "' (module '" + mod +
                 "') transitively calls training symbol '" + c.name +
                 "' (chain: " + chain_of(g, reach, di) + " -> " + c.name +
                 " at " + g.display_of(defs[di].tu) + ":" +
                 std::to_string(c.line) +
                 "); this module is declared fit-free in layers.toml "
                 "[call_forbidden]"});
      }
    }
  }

  // --- Numeric-safety rules on predict/fit-reachable functions. ---
  std::set<std::size_t> numeric_reach;
  {
    std::set<std::size_t> roots;
    for (std::size_t di = 0; di < defs.size(); ++di) {
      if (numeric_entry_names().count(defs[di].name) > 0) roots.insert(di);
    }
    numeric_reach = g.reachable_from(roots);
    for (std::size_t di : numeric_reach) {
      const FunctionDef& d = defs[di];
      const std::string tier = d.tier.empty() ? "bit_exact" : d.tier;
      numeric_rules_for_function(g.display_of(d.tu), g.unit(d.tu),
                                 d.params_open, d.body_first, d.body_last,
                                 d.display, tier, raw);
    }
  }

  // --- Tier records + manifest enforcement (every annotated definition,
  // reachable or not: the manifest is the reviewable source of truth). ---
  {
    std::set<std::string> used_entries;
    for (std::size_t di = 0; di < defs.size(); ++di) {
      const FunctionDef& d = defs[di];
      if (d.tier.empty()) continue;
      out.tiers.push_back({d.display, g.display_of(d.tu), d.line, d.tier});
      if (d.tier != "tolerance") continue;
      if (options.tolerance_manifest.count(d.display) > 0) {
        used_entries.insert(d.display);
      } else if (options.tolerance_manifest.count(d.name) > 0) {
        used_entries.insert(d.name);
      } else {
        raw.push_back(
            {g.display_of(d.tu), d.line, "numeric-tier-manifest",
             "'" + d.display + "' is annotated numeric-tier(tolerance) but "
                 "is not listed in " + options.manifest_display +
                 "; every bit-exactness opt-out must be committed to the "
                 "manifest so the relaxation is reviewable in one place"});
      }
    }
    for (const std::string& entry : options.tolerance_manifest) {
      if (used_entries.count(entry) == 0) {
        raw.push_back(
            {options.manifest_display, 1, "numeric-tier-manifest",
             "manifest entry '" + entry + "' matches no function annotated "
                 "numeric-tier(tolerance); remove the stale entry or "
                 "annotate the function"});
      }
    }
    std::sort(out.tiers.begin(), out.tiers.end(),
              [](const TierRecord& a, const TierRecord& b) {
                return std::tie(a.file, a.line, a.function) <
                       std::tie(b.file, b.line, b.function);
              });
  }

  // --- allow() suppressions, then the canonical total order. ---
  std::map<std::string, std::size_t> tu_of_display;
  for (std::size_t tu = 0; tu < files.size(); ++tu) {
    tu_of_display[g.display_of(tu)] = tu;
  }
  for (Diagnostic& d : raw) {
    const auto it = tu_of_display.find(d.file);
    if (it != tu_of_display.end() &&
        is_allowed(g.unit(it->second), d.rule, d.line)) {
      continue;
    }
    out.diagnostics.push_back(std::move(d));
  }
  std::sort(out.diagnostics.begin(), out.diagnostics.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              return std::tie(a.file, a.line, a.rule, a.message) <
                     std::tie(b.file, b.line, b.rule, b.message);
            });
  out.diagnostics.erase(
      std::unique(out.diagnostics.begin(), out.diagnostics.end(),
                  [](const Diagnostic& a, const Diagnostic& b) {
                    return std::tie(a.file, a.line, a.rule, a.message) ==
                           std::tie(b.file, b.line, b.rule, b.message);
                  }),
      out.diagnostics.end());

  if (options.emit_dot) {
    out.dot = g.to_dot(g.parallel_reachable(), numeric_reach);
  }
  return out;
}

CallGraphAnalysis analyze_call_graph_directory(
    const std::string& root, const CallGraphOptions& options) {
  std::vector<SourceFile> files;
  const fs::path base(root);
  for (const auto& entry : fs::recursive_directory_iterator(base)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext != ".hpp" && ext != ".cpp") continue;
    std::ifstream in(entry.path(), std::ios::binary);
    if (!in) {
      throw std::runtime_error("vmincqr_lint: cannot read " +
                               entry.path().string());
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    files.push_back({entry.path().string(),
                     entry.path().lexically_relative(base).generic_string(),
                     ss.str()});
  }
  std::sort(files.begin(), files.end(),
            [](const SourceFile& a, const SourceFile& b) {
              return a.rel < b.rel;
            });
  return analyze_call_graph(files, options);
}

}  // namespace vmincqr::lint
