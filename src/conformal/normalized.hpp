// Normalized (locally-weighted) split conformal prediction — an extension
// beyond the paper, included as an alternative route to input-adaptive
// interval widths: scores are residuals scaled by a learned per-sample
// difficulty estimate sigma_hat(x), so the calibrated interval is
// [mu(x) - q_hat sigma_hat(x), mu(x) + q_hat sigma_hat(x)].
#pragma once

#include <cstdint>
#include <memory>

#include "core/units.hpp"
#include "models/region.hpp"
#include "models/regressor.hpp"

namespace vmincqr::conformal {

using core::MiscoverageAlpha;
using models::IntervalPrediction;
using models::IntervalRegressor;
using models::Matrix;
using models::Regressor;
using models::Vector;

struct NormalizedConfig {
  double train_fraction = 0.75;
  std::uint64_t seed = 42;
  double sigma_floor = 1e-6;  ///< lower bound on sigma_hat (volts)
};

class NormalizedConformalRegressor final : public IntervalRegressor {
 public:
  /// `mean_model` predicts y; `sigma_model` is trained on |residuals| of the
  /// mean model over the proper-training set. Throws std::invalid_argument
  /// on null models.
  NormalizedConformalRegressor(MiscoverageAlpha alpha,
                               std::unique_ptr<Regressor> mean_model,
                               std::unique_ptr<Regressor> sigma_model,
                               NormalizedConfig config = {});

  void fit(const Matrix& x, const Vector& y) override;
  [[nodiscard]] IntervalPrediction predict_interval(const Matrix& x) const override;
  [[nodiscard]] std::unique_ptr<IntervalRegressor> clone_config() const override;
  [[nodiscard]] std::string name() const override {
    return "Normalized CP " + mean_model_->name();
  }
  [[nodiscard]] MiscoverageAlpha alpha() const override { return alpha_; }

  [[nodiscard]] double q_hat() const;

 private:
  [[nodiscard]] Vector predict_sigma(const Matrix& x) const;

  MiscoverageAlpha alpha_;
  std::unique_ptr<Regressor> mean_model_;
  std::unique_ptr<Regressor> sigma_model_;
  NormalizedConfig config_;
  double q_hat_ = 0.0;
  bool calibrated_ = false;
};

}  // namespace vmincqr::conformal
