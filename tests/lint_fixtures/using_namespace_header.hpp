// Fixture: 'using namespace' in a header. Fires using-namespace-header once.
#pragma once

#include <string>

using namespace std;

inline string fixture_name() { return "bad"; }
