// Static timing analysis over the netlist DAG: longest-path arrival times
// under a given supply voltage, temperature, and per-gate effective
// threshold shift.
#pragma once

#include <functional>

#include "netlist/cell.hpp"
#include "netlist/netlist.hpp"

namespace vmincqr::netlist {

/// Per-gate effective Vth shift (V) added to the nominal threshold — the
/// hook through which chip-level process shift, local mismatch, and aging
/// enter timing. Index is the GATE index (0-based, not the node id).
using GateVthShift = std::function<double(std::size_t gate_index)>;

struct TimingResult {
  double worst_arrival_ns = 0.0;  ///< max arrival over primary outputs
  std::vector<double> arrival;    ///< arrival per node (inputs are 0)
  std::size_t worst_output = 0;   ///< node id of the limiting output
  /// True if any gate on a used path was non-functional (infinite delay)
  /// at this supply.
  bool functional = true;

  /// Critical path as node ids from a primary input to worst_output.
  std::vector<std::size_t> critical_path;
};

/// Runs longest-path STA. `vth_shift` may be null for a zero shift.
/// Throws std::invalid_argument for vdd <= 0.
TimingResult run_sta(const Netlist& netlist, const DelayModelConfig& config,
                     double vdd, double temp_c,
                     const GateVthShift& vth_shift = nullptr);

}  // namespace vmincqr::netlist
