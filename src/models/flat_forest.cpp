#include "models/flat_forest.hpp"

#include <limits>
#include <stdexcept>

#include "core/contracts.hpp"
#include "models/ordered_boost.hpp"
#include "models/tree.hpp"

namespace vmincqr::models {

void FlatForest::add_tree(const std::vector<TreeNode>& nodes) {
  if (nodes.empty()) {
    throw std::invalid_argument("FlatForest::add_tree: empty tree");
  }
  const auto base = static_cast<std::int32_t>(feature_.size());
  const auto n = static_cast<std::int32_t>(nodes.size());
  for (const TreeNode& node : nodes) {
    if (!node.is_leaf && (node.left < 0 || node.left >= n || node.right < 0 ||
                          node.right >= n)) {
      throw std::invalid_argument("FlatForest::add_tree: dangling child");
    }
  }

  // BFS renumbering: a split's two children land in consecutive slots, so
  // the traversal needs only the left child's index (right = left + 1).
  // order[new_local] = original index; remap = the inverse.
  std::vector<std::int32_t> order;
  std::vector<std::int32_t> remap(nodes.size(), -1);
  std::vector<std::int32_t> bfs_depth(nodes.size(), 0);
  order.reserve(nodes.size());
  order.push_back(0);
  remap[0] = 0;
  std::int32_t max_depth = 0;
  for (std::size_t q = 0; q < order.size(); ++q) {
    const std::int32_t old_i = order[q];
    const TreeNode& node = nodes[static_cast<std::size_t>(old_i)];
    if (node.is_leaf) continue;
    const std::int32_t d = bfs_depth[static_cast<std::size_t>(old_i)] + 1;
    max_depth = d > max_depth ? d : max_depth;
    for (const std::int32_t c : {node.left, node.right}) {
      remap[static_cast<std::size_t>(c)] =
          static_cast<std::int32_t>(order.size());
      bfs_depth[static_cast<std::size_t>(c)] = d;
      order.push_back(c);
    }
  }
  // Nodes unreachable from the root (tolerated by the AoS layout) keep a
  // slot at the end so per-tree indexing — and set_node_value — stays total.
  for (std::int32_t i = 0; i < n; ++i) {
    if (remap[static_cast<std::size_t>(i)] < 0) {
      remap[static_cast<std::size_t>(i)] =
          static_cast<std::int32_t>(order.size());
      order.push_back(i);
    }
  }

  feature_.resize(feature_.size() + nodes.size());
  threshold_.resize(threshold_.size() + nodes.size());
  child_.resize(child_.size() + nodes.size());
  value_.resize(value_.size() + nodes.size());
  for (std::int32_t i = 0; i < n; ++i) {
    const TreeNode& node = nodes[static_cast<std::size_t>(i)];
    const auto at = static_cast<std::size_t>(
        base + remap[static_cast<std::size_t>(i)]);
    if (node.is_leaf) {
      feature_[at] = 0;
      threshold_[at] = std::numeric_limits<double>::infinity();
      child_[at] = static_cast<std::int32_t>(at);  // self-loop
      value_[at] = node.value;
    } else {
      feature_[at] = static_cast<std::int32_t>(node.feature);
      threshold_[at] = node.threshold;
      child_[at] = base + remap[static_cast<std::size_t>(node.left)];
      value_[at] = 0.0;
    }
  }
  remap_.insert(remap_.end(), remap.begin(), remap.end());
  roots_.push_back(base);
  depth_.push_back(max_depth);
}

void FlatForest::clear() {
  feature_.clear();
  threshold_.clear();
  child_.clear();
  value_.clear();
  roots_.clear();
  depth_.clear();
  remap_.clear();
}

namespace {

/// One arithmetic traversal step (see the class comment): `<=` stays at the
/// left child, `>` adds one to reach the adjacent right sibling; a leaf's
/// +infinity threshold makes the comparison false and its self-loop child
/// keeps the chain parked. The compare feeds a setcc + add — there is no
/// data-dependent branch to mispredict.
inline std::int32_t step(const double* row, const std::int32_t* feature,
                         const double* threshold, const std::int32_t* child,
                         std::int32_t idx) {
  return child[idx] +
         static_cast<std::int32_t>(row[feature[idx]] > threshold[idx]);
}

}  // namespace

void FlatForest::accumulate(const double* x, std::size_t n_rows,
                            std::size_t stride, double scale,
                            double* out) const {
  const std::int32_t* feature = feature_.data();
  const double* threshold = threshold_.data();
  const std::int32_t* child = child_.data();
  const double* value = value_.data();
  for (std::size_t r0 = 0; r0 < n_rows; r0 += kTraversalRowBlock) {
    const std::size_t r1 = r0 + kTraversalRowBlock < n_rows
                               ? r0 + kTraversalRowBlock
                               : n_rows;
    for (std::size_t t = 0; t < roots_.size(); ++t) {
      const std::int32_t root = roots_[t];
      const std::int32_t depth = depth_[t];
      std::size_t r = r0;
      // Eight interleaved fixed-depth chains: each chain is a serial
      // dependent-load sequence (~3 loads deep per step), so running eight
      // rows abreast keeps the load ports busy instead of serializing on
      // one chain's round-trip latency to the node planes.
      for (; r + 8 <= r1; r += 8) {
        const double* row0 = x + r * stride;
        const double* row1 = row0 + stride;
        const double* row2 = row1 + stride;
        const double* row3 = row2 + stride;
        const double* row4 = row3 + stride;
        const double* row5 = row4 + stride;
        const double* row6 = row5 + stride;
        const double* row7 = row6 + stride;
        std::int32_t i0 = root, i1 = root, i2 = root, i3 = root;
        std::int32_t i4 = root, i5 = root, i6 = root, i7 = root;
        for (std::int32_t d = 0; d < depth; ++d) {
          i0 = step(row0, feature, threshold, child, i0);
          i1 = step(row1, feature, threshold, child, i1);
          i2 = step(row2, feature, threshold, child, i2);
          i3 = step(row3, feature, threshold, child, i3);
          i4 = step(row4, feature, threshold, child, i4);
          i5 = step(row5, feature, threshold, child, i5);
          i6 = step(row6, feature, threshold, child, i6);
          i7 = step(row7, feature, threshold, child, i7);
        }
        out[r + 0] += scale * value[i0];
        out[r + 1] += scale * value[i1];
        out[r + 2] += scale * value[i2];
        out[r + 3] += scale * value[i3];
        out[r + 4] += scale * value[i4];
        out[r + 5] += scale * value[i5];
        out[r + 6] += scale * value[i6];
        out[r + 7] += scale * value[i7];
      }
      for (; r < r1; ++r) {
        const double* row = x + r * stride;
        std::int32_t idx = root;
        for (std::int32_t d = 0; d < depth; ++d) {
          idx = step(row, feature, threshold, child, idx);
        }
        out[r] += scale * value[idx];
      }
    }
  }
}

void FlatForest::predict_rows(const double* x, std::size_t n_rows,
                              std::size_t stride, double* out) const {
  VMINCQR_REQUIRE(!roots_.empty(), "FlatForest::predict_rows: empty forest");
  const std::int32_t* feature = feature_.data();
  const double* threshold = threshold_.data();
  const std::int32_t* child = child_.data();
  const double* value = value_.data();
  for (std::size_t r0 = 0; r0 < n_rows; r0 += kTraversalRowBlock) {
    const std::size_t r1 = r0 + kTraversalRowBlock < n_rows
                               ? r0 + kTraversalRowBlock
                               : n_rows;
    for (std::size_t t = 0; t < roots_.size(); ++t) {
      const std::int32_t root = roots_[t];
      const std::int32_t depth = depth_[t];
      for (std::size_t r = r0; r < r1; ++r) {
        const double* row = x + r * stride;
        std::int32_t idx = root;
        for (std::int32_t d = 0; d < depth; ++d) {
          idx = step(row, feature, threshold, child, idx);
        }
        if (t == 0) {
          out[r] = value[idx];
        } else {
          out[r] += value[idx];
        }
      }
    }
  }
}

double FlatForest::predict_row(const double* row) const {
  const std::int32_t* feature = feature_.data();
  const double* threshold = threshold_.data();
  const std::int32_t* child = child_.data();
  const double* value = value_.data();
  double acc = 0.0;
  for (std::size_t t = 0; t < roots_.size(); ++t) {
    std::int32_t idx = roots_[t];
    const std::int32_t depth = depth_[t];
    for (std::int32_t d = 0; d < depth; ++d) {
      idx = step(row, feature, threshold, child, idx);
    }
    acc += value[idx];
  }
  return acc;
}

void FlatForest::set_node_value(std::size_t tree, std::size_t node_index,
                                double value) {
  VMINCQR_REQUIRE(tree < roots_.size(),
                  "FlatForest::set_node_value: tree out of range");
  // node_index is in the ORIGINAL (AoS) numbering; remap_ translates to the
  // BFS-renumbered slot at the same per-tree base.
  const auto base = static_cast<std::size_t>(roots_[tree]);
  VMINCQR_REQUIRE(base + node_index < remap_.size(),
                  "FlatForest::set_node_value: node out of range");
  const std::size_t at =
      base + static_cast<std::size_t>(remap_[base + node_index]);
  VMINCQR_REQUIRE(at < value_.size(),
                  "FlatForest::set_node_value: node out of range");
  value_[at] = value;
}

void FlatObliviousForest::add_tree(const ObliviousTree& tree) {
  const std::size_t leaves = std::size_t{1} << tree.features.size();
  if (tree.leaf_values.size() != leaves ||
      tree.thresholds.size() != tree.features.size()) {
    throw std::invalid_argument(
        "FlatObliviousForest::add_tree: malformed oblivious tree");
  }
  if (level_offset_.empty()) {
    level_offset_.push_back(0);
    leaf_offset_.push_back(0);
  }
  for (std::size_t l = 0; l < tree.features.size(); ++l) {
    feature_.push_back(static_cast<std::int32_t>(tree.features[l]));
    threshold_.push_back(tree.thresholds[l]);
  }
  leaf_values_.insert(leaf_values_.end(), tree.leaf_values.begin(),
                      tree.leaf_values.end());
  level_offset_.push_back(feature_.size());
  leaf_offset_.push_back(leaf_values_.size());
}

void FlatObliviousForest::clear() {
  feature_.clear();
  threshold_.clear();
  leaf_values_.clear();
  level_offset_.clear();
  leaf_offset_.clear();
}

void FlatObliviousForest::accumulate(const double* x, std::size_t n_rows,
                                     std::size_t stride, double scale,
                                     double* out) const {
  const std::size_t trees = n_trees();
  for (std::size_t r0 = 0; r0 < n_rows; r0 += kTraversalRowBlock) {
    const std::size_t r1 = r0 + kTraversalRowBlock < n_rows
                               ? r0 + kTraversalRowBlock
                               : n_rows;
    for (std::size_t t = 0; t < trees; ++t) {
      const std::size_t lvl0 = level_offset_[t];
      const std::size_t lvl1 = level_offset_[t + 1];
      const double* leaves = leaf_values_.data() + leaf_offset_[t];
      for (std::size_t r = r0; r < r1; ++r) {
        const double* row = x + r * stride;
        std::size_t idx = 0;
        for (std::size_t l = lvl0; l < lvl1; ++l) {
          idx |= static_cast<std::size_t>(
                     row[feature_[l]] > threshold_[l])
                 << (l - lvl0);
        }
        out[r] += scale * leaves[idx];
      }
    }
  }
}

double FlatObliviousForest::predict_row(const double* row) const {
  double acc = 0.0;
  const std::size_t trees = n_trees();
  for (std::size_t t = 0; t < trees; ++t) {
    const std::size_t lvl0 = level_offset_[t];
    const std::size_t lvl1 = level_offset_[t + 1];
    std::size_t idx = 0;
    for (std::size_t l = lvl0; l < lvl1; ++l) {
      idx |= static_cast<std::size_t>(row[feature_[l]] > threshold_[l])
             << (l - lvl0);
    }
    acc += leaf_values_[leaf_offset_[t] + idx];
  }
  return acc;
}

}  // namespace vmincqr::models
