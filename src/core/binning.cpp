#include "core/binning.hpp"

#include <algorithm>
#include <stdexcept>

namespace vmincqr::core {

namespace {

void check_config(const BinningConfig& config) {
  if (config.bin_voltages.empty()) {
    throw std::invalid_argument("bin_chips: no bin voltages");
  }
  if (!std::is_sorted(config.bin_voltages.begin(), config.bin_voltages.end()) ||
      std::adjacent_find(config.bin_voltages.begin(),
                         config.bin_voltages.end()) !=
          config.bin_voltages.end()) {
    throw std::invalid_argument("bin_chips: bins must be strictly ascending");
  }
}

}  // namespace

BinningResult bin_chips(const Vector& required_voltage, const Vector& truth,
                        const BinningConfig& config) {
  check_config(config);
  if (required_voltage.empty()) {
    throw std::invalid_argument("bin_chips: empty batch");
  }
  if (!truth.empty() && truth.size() != required_voltage.size()) {
    throw std::invalid_argument("bin_chips: truth length mismatch");
  }

  BinningResult result;
  result.bin_of_chip.assign(required_voltage.size(), -1);
  result.bin_counts.assign(config.bin_voltages.size(), 0);

  double voltage_sum = 0.0;
  std::size_t binnable = 0;
  std::size_t violations = 0;

  for (std::size_t i = 0; i < required_voltage.size(); ++i) {
    const auto it =
        std::lower_bound(config.bin_voltages.begin(),
                         config.bin_voltages.end(), required_voltage[i]);
    if (it == config.bin_voltages.end()) {
      ++result.n_unbinnable;
      continue;
    }
    const auto bin =
        static_cast<std::size_t>(it - config.bin_voltages.begin());
    result.bin_of_chip[i] = static_cast<int>(bin);
    ++result.bin_counts[bin];
    voltage_sum += config.bin_voltages[bin];
    ++binnable;
    if (!truth.empty() && truth[i] > config.bin_voltages[bin]) ++violations;
  }

  if (binnable > 0) {
    result.mean_voltage = voltage_sum / static_cast<double>(binnable);
    result.violation_rate =
        static_cast<double>(violations) / static_cast<double>(binnable);
  }
  return result;
}

BinningResult bin_by_point(const Vector& predicted, Millivolt guard_band,
                           const Vector& truth, const BinningConfig& config) {
  if (guard_band.value() < 0.0) {
    throw std::invalid_argument("bin_by_point: negative guard band");
  }
  Vector required(predicted.size());
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    required[i] = predicted[i] + guard_band.to_volts();
  }
  return bin_chips(required, truth, config);
}

double mean_voltage_saving(const BinningResult& a, const BinningResult& b,
                           const BinningConfig& config) {
  if (a.bin_of_chip.size() != b.bin_of_chip.size()) {
    throw std::invalid_argument("mean_voltage_saving: batch size mismatch");
  }
  double saving = 0.0;
  std::size_t common = 0;
  for (std::size_t i = 0; i < a.bin_of_chip.size(); ++i) {
    if (a.bin_of_chip[i] < 0 || b.bin_of_chip[i] < 0) continue;
    saving += config.bin_voltages[static_cast<std::size_t>(b.bin_of_chip[i])] -
              config.bin_voltages[static_cast<std::size_t>(a.bin_of_chip[i])];
    ++common;
  }
  return common ? saving / static_cast<double>(common) : 0.0;
}

}  // namespace vmincqr::core
