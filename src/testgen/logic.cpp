#include "testgen/logic.hpp"

#include <stdexcept>

namespace vmincqr::testgen {

PatternWord evaluate_gate(std::size_t cell_index,
                          const std::vector<PatternWord>& fanin_values) {
  if (fanin_values.empty()) {
    throw std::invalid_argument("evaluate_gate: no fanins");
  }
  switch (cell_index) {
    case 0:  // INV_X1
      return ~fanin_values[0];
    case 1:  // BUF_X2
      return fanin_values[0];
    case 2: {  // NAND2_X1 (n-ary)
      PatternWord acc = ~PatternWord{0};
      for (auto v : fanin_values) acc &= v;
      return ~acc;
    }
    case 3: {  // NOR2_X1 (n-ary)
      PatternWord acc = 0;
      for (auto v : fanin_values) acc |= v;
      return ~acc;
    }
    case 4: {  // AOI21_X1: !((f0 & f1) | flast)
      const PatternWord a = fanin_values[0];
      const PatternWord b = fanin_values.size() > 1 ? fanin_values[1] : a;
      const PatternWord c = fanin_values.back();
      return ~((a & b) | c);
    }
    case 5:  // DFF_CK2Q (transparent)
      return fanin_values[0];
    default:
      throw std::invalid_argument("evaluate_gate: unknown cell index");
  }
}

std::vector<PatternWord> LogicSimulator::simulate_impl(
    const std::vector<PatternWord>& inputs, std::size_t fault_node,
    bool stuck_value, bool has_fault) const {
  if (inputs.size() != netlist_.n_inputs()) {
    throw std::invalid_argument("LogicSimulator: input count mismatch");
  }
  std::vector<PatternWord> values(netlist_.n_nodes(), 0);
  for (std::size_t i = 0; i < inputs.size(); ++i) values[i] = inputs[i];
  if (has_fault && fault_node < netlist_.n_inputs()) {
    values[fault_node] = stuck_value ? ~PatternWord{0} : PatternWord{0};
  }

  std::vector<PatternWord> fanin_values;
  const auto& gates = netlist_.gates();
  fanin_values.reserve(gates.size());
  for (std::size_t g = 0; g < gates.size(); ++g) {
    const std::size_t node = netlist_.n_inputs() + g;
    fanin_values.clear();
    for (auto fanin : gates[g].fanins) fanin_values.push_back(values[fanin]);
    values[node] = evaluate_gate(gates[g].cell, fanin_values);
    if (has_fault && node == fault_node) {
      values[node] = stuck_value ? ~PatternWord{0} : PatternWord{0};
    }
  }
  return values;
}

std::vector<PatternWord> LogicSimulator::simulate(
    const std::vector<PatternWord>& inputs) const {
  return simulate_impl(inputs, 0, false, false);
}

std::vector<PatternWord> LogicSimulator::simulate_with_fault(
    const std::vector<PatternWord>& inputs, std::size_t fault_node,
    bool stuck_value) const {
  if (fault_node >= netlist_.n_nodes()) {
    throw std::invalid_argument("LogicSimulator: fault node out of range");
  }
  return simulate_impl(inputs, fault_node, stuck_value, true);
}

std::vector<PatternWord> LogicSimulator::outputs_of(
    const std::vector<PatternWord>& node_values) const {
  if (node_values.size() != netlist_.n_nodes()) {
    throw std::invalid_argument("LogicSimulator: node value size mismatch");
  }
  std::vector<PatternWord> out;
  out.reserve(netlist_.outputs().size());
  for (auto node : netlist_.outputs()) out.push_back(node_values[node]);
  return out;
}

}  // namespace vmincqr::testgen
