// Fixture: every violation below carries an allow() suppression — the file
// must lint clean. Exercises both same-line and previous-line placement.
#include <cstdlib>
#include <iostream>

bool fixture_exact(double x) {
  return x == 0.0;  // vmincqr-lint: allow(float-equality)
}

int fixture_noise() {
  // vmincqr-lint: allow(no-rand)
  return rand() % 7;
}

void fixture_log() {
  std::cout << "x" << std::endl;  // vmincqr-lint: allow(no-endl)
}
